// Command energyprof is an ARO/PowerTutor-style per-app network energy
// profiler for a single device trace: it replays the trace through a radio
// power model and prints each app's energy, data, efficiency and
// foreground/background split.
//
// Usage:
//
//	energyprof -trace data/u00.metr [-radio lte|3g|wifi] [-top 20]
//	energyprof -trace capture.pcap        # pcap input (single unknown app)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"netenergy/internal/energy"
	"netenergy/internal/flows"
	"netenergy/internal/pcapio"
	"netenergy/internal/radio"
	"netenergy/internal/report"
	"netenergy/internal/trace"
)

func main() {
	var (
		path     = flag.String("trace", "", "METR trace file to profile (required)")
		radioArg = flag.String("radio", "lte", "radio model: lte, 3g or wifi")
		top      = flag.Int("top", 20, "number of apps to print")
		topFlows = flag.Int("flows", 0, "also print the top N flows by energy")
	)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	var params radio.Params
	switch *radioArg {
	case "lte":
		params = radio.LTE()
	case "3g":
		params = radio.ThreeG()
	case "wifi":
		params = radio.WiFi()
	default:
		fmt.Fprintf(os.Stderr, "energyprof: unknown radio model %q\n", *radioArg)
		os.Exit(2)
	}

	dt, err := readTrace(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "energyprof:", err)
		os.Exit(1)
	}
	opts := energy.DefaultOptions()
	opts.Radio = params
	opts.KeepPackets = *topFlows > 0
	res, err := energy.Process(dt, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "energyprof:", err)
		os.Exit(1)
	}

	l := res.Ledger
	fmt.Printf("device %s: %.0f J attributed over %.1f days (%s model, idle baseline %.0f J, %d decode errors)\n",
		dt.Device, l.Total, res.Span[1].Sub(res.Span[0])/86400, params.Name, l.IdleEnergy, res.DecodeErrors)
	fmt.Printf("background share: %.1f%%\n\n", 100*l.BackgroundFraction())

	type row struct {
		app    uint32
		energy float64
	}
	rows := make([]row, 0, len(l.ByApp))
	for app, e := range l.ByApp {
		rows = append(rows, row{app, e})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].energy != rows[j].energy {
			return rows[i].energy > rows[j].energy
		}
		return rows[i].app < rows[j].app
	})
	if *top > 0 && len(rows) > *top {
		rows = rows[:*top]
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		bytes := l.BytesByApp[r.app]
		eff := 0.0
		if bytes > 0 {
			eff = r.energy / (float64(bytes) / 1e6)
		}
		out = append(out, []string{
			dt.Apps.Name(r.app),
			fmt.Sprintf("%.0f", r.energy),
			fmt.Sprintf("%.1f", float64(bytes)/1e6),
			fmt.Sprintf("%.2f", eff),
			fmt.Sprintf("%.0f%%", 100*l.AppBackgroundFraction(r.app)),
		})
	}
	if err := report.Table(os.Stdout, []string{"app", "J", "MB", "J/MB", "bg"}, out); err != nil {
		fmt.Fprintln(os.Stderr, "energyprof:", err)
		os.Exit(1)
	}

	if *topFlows > 0 {
		if err := printTopFlows(dt, res, *topFlows); err != nil {
			fmt.Fprintln(os.Stderr, "energyprof:", err)
			os.Exit(1)
		}
	}
}

// printTopFlows assembles flows from the attributed packets and prints the
// costliest — the per-flow view Table 1 is built from.
func printTopFlows(dt *trace.DeviceTrace, res *energy.Result, n int) error {
	asm := flows.NewAssembler(flows.DefaultConfig())
	for i := range res.Packets {
		p := &res.Packets[i]
		asm.Add(flows.PacketInfo{
			TS: p.TS, App: p.App, Tuple: p.Tuple, Dir: p.Dir,
			Bytes: p.Bytes, State: p.State, Energy: p.Energy,
		})
	}
	fs := asm.Flows()
	sort.Slice(fs, func(i, j int) bool { return fs[i].Energy > fs[j].Energy })
	if len(fs) > n {
		fs = fs[:n]
	}
	fmt.Printf("\ntop %d flows by energy:\n", len(fs))
	rows := make([][]string, 0, len(fs))
	for _, f := range fs {
		rows = append(rows, []string{
			dt.Apps.Name(f.App),
			f.Tuple.String(),
			fmt.Sprintf("%.1f J", f.Energy),
			fmt.Sprintf("%.2f MB", float64(f.Bytes())/1e6),
			fmt.Sprintf("%.0f s", f.Duration()),
			fmt.Sprintf("%d pkts", f.Packets),
		})
	}
	return report.Table(os.Stdout, []string{"app", "flow", "energy", "data", "duration", "packets"}, rows)
}

// readTrace loads a METR or pcap file, detected by extension.
func readTrace(path string) (*trace.DeviceTrace, error) {
	if strings.HasSuffix(path, ".pcap") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return pcapio.ToTrace(f, path)
	}
	return trace.ReadFile(path)
}
