// Command fleetsim is the fleet load generator: it synthesises N device
// traces (the same generator the batch study uses) and streams them to an
// ingestd through resumable sessions, optionally time-compressed and
// optionally through a fault injector (drops, corruption, latency, partial
// writes), then reports achieved throughput and recovery behaviour. With
// -admin it cross-checks the server's per-device counters against what was
// sent and exits non-zero on any discrepancy — the repo's end-to-end load
// and fault benchmark.
//
// Usage:
//
//	fleetsim -addr localhost:9009 -devices 200 -days 1
//	fleetsim -addr localhost:9009 -admin http://localhost:9010 -devices 200
//	fleetsim -devices 50 -speedup 86400   # one trace-day per wall-second
//	fleetsim -chaos-drop 0.05 -chaos-corrupt 0.01 -admin http://localhost:9010
//
// Cluster mode drives the population across a hash ring of nodes: each
// session dials its device's ring owner first and follows redirect acks,
// and the reconciliation runs against the aggregator's merged exposition
// instead of a single node's:
//
//	fleetsim -nodes h1:9009,h2:9009,h3:9009 -aggregator http://localhost:9020
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"netenergy/internal/chaos"
	"netenergy/internal/ingest"
	"netenergy/internal/obs"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

// counters is the client-side metric set. Everything the exit-time
// reconciliation reads goes through one obs.Registry — the same registry
// -stats-json dumps — so the numbers fleetsim reports, the numbers it
// checks against the server and the numbers it persists can never diverge.
type counters struct {
	reg *obs.Registry

	sentRecords *obs.Counter
	sentBytes   *obs.Counter
	conns       *obs.Counter
	resumed     *obs.Counter
	retrans     *obs.Counter
	throttled   *obs.Counter
	redirected  *obs.Counter
	failed      *obs.Counter
}

func newCounters() *counters {
	reg := obs.New()
	return &counters{
		reg:         reg,
		sentRecords: reg.Counter("fleetsim_records_sent_total", "unique records acked by the server"),
		sentBytes:   reg.Counter("fleetsim_bytes_sent_total", "frame bytes written, retransmissions included"),
		conns:       reg.Counter("fleetsim_conns_total", "connections used across all sessions"),
		resumed:     reg.Counter("fleetsim_resumes_total", "reconnects that found prior progress"),
		retrans:     reg.Counter("fleetsim_retransmitted_total", "records sent more than once"),
		throttled:   reg.Counter("fleetsim_throttled_total", "handshakes the server refused for rate limiting"),
		redirected:  reg.Counter("fleetsim_redirects_total", "handshakes answered with a redirect ack"),
		failed:      reg.Counter("fleetsim_failed_devices_total", "device sessions that gave up"),
	}
}

func main() {
	var (
		addr    = flag.String("addr", "localhost:9009", "ingestd stream address")
		admin   = flag.String("admin", "", "ingestd admin base URL for the drop cross-check (e.g. http://localhost:9010)")
		nodes   = flag.String("nodes", "", "comma-separated cluster stream addresses; sessions route by the shared hash ring (overrides -addr)")
		aggrURL = flag.String("aggregator", "", "aggregatord base URL: reconcile sent counters against the merged fleet exposition")
		headOut = flag.String("headline-json", "", "write the final headline JSON (aggregator's when -aggregator is set, else -admin's) to this path")
		devices = flag.Int("devices", 20, "synthetic devices to stream concurrently")
		days    = flag.Int("days", 1, "trace days per device")
		seed    = flag.Uint64("seed", 20151028, "generator seed")
		speedup = flag.Float64("speedup", 0, "time-compression factor: trace-seconds per wall-second (0: unpaced, as fast as possible)")
		timeout = flag.Duration("connect-timeout", 10*time.Second, "per-attempt dial budget (sessions retry with backoff)")
		deadlin = flag.Duration("deadline", 2*time.Minute, "per-device session budget including retries (0: unlimited)")

		chaosDrop    = flag.Float64("chaos-drop", 0, "per-write probability of dropping the connection")
		chaosCorrupt = flag.Float64("chaos-corrupt", 0, "per-write probability of flipping one bit")
		chaosPartial = flag.Float64("chaos-partial", 0, "per-write probability of splitting the write")
		chaosLatency = flag.Duration("chaos-latency", 0, "max injected per-write latency")
		chaosSeed    = flag.Int64("chaos-seed", 1, "fault schedule seed")

		statsOut = flag.String("stats-json", "", "write end-of-run client metrics as JSON to this path, or - for stderr")
	)
	flag.Parse()

	cfg := synthgen.Default()
	cfg.Users = *devices
	cfg.Days = *days
	cfg.Seed = *seed

	chaosOn := *chaosDrop > 0 || *chaosCorrupt > 0 || *chaosPartial > 0 || *chaosLatency > 0
	var injector *chaos.Injector
	if chaosOn {
		injector = chaos.New(chaos.Config{
			DropRate:    *chaosDrop,
			CorruptRate: *chaosCorrupt,
			PartialRate: *chaosPartial,
			MaxLatency:  *chaosLatency,
			Seed:        *chaosSeed,
		})
	}

	var nodeList []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, n)
		}
	}

	c := newCounters()
	perDevice := make(map[string]int64, *devices)
	var perDeviceMu sync.Mutex
	gen := make(chan struct{}, runtime.GOMAXPROCS(0)) // bound concurrent generation
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen <- struct{}{}
			dt := synthgen.GenerateDevice(cfg, i)
			<-gen
			st, err := streamDevice(*addr, nodeList, dt, *speedup, *timeout, *deadlin, injector)
			c.conns.Add(int64(st.Conns))
			c.resumed.Add(int64(st.Resumed))
			c.retrans.Add(st.Retransmitted)
			c.throttled.Add(int64(st.Throttled))
			c.redirected.Add(int64(st.Redirected))
			c.sentBytes.Add(st.Bytes)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fleetsim: %s: %v\n", dt.Device, err)
				c.failed.Add(1)
				return
			}
			c.sentRecords.Add(st.Records)
			perDeviceMu.Lock()
			perDevice[dt.Device] = st.Records
			perDeviceMu.Unlock()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	c.reg.GaugeFunc("fleetsim_wall_seconds", "load-generation wall time",
		func() float64 { return wall.Seconds() })

	recs := c.sentRecords.Load()
	fmt.Printf("fleetsim: %d devices x %d days: %d records in %.2fs (%.0f records/s, %.2f MB on the wire)\n",
		*devices, *days, recs, wall.Seconds(), float64(recs)/wall.Seconds(),
		float64(c.sentBytes.Load())/1e6)
	if chaosOn {
		drops, corr, parts, delays := injector.Stats()
		fmt.Printf("fleetsim: chaos injected %d drops, %d corruptions, %d partial writes, %d delays; sessions used %d conns, %d resumes, %d retransmitted records\n",
			drops, corr, parts, delays, c.conns.Load(), c.resumed.Load(), c.retrans.Load())
	}
	if *statsOut != "" {
		dumpStats(c.reg, *statsOut)
	}
	if c.failed.Load() > 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: %d device streams failed\n", c.failed.Load())
		os.Exit(1)
	}

	if len(nodeList) > 0 {
		fmt.Printf("fleetsim: cluster routing over %d nodes: %d redirects, %d resumes, %d conns\n",
			len(nodeList), c.redirected.Load(), c.resumed.Load(), c.conns.Load())
	}

	if *admin != "" {
		if err := crossCheck(*admin, c, perDevice, chaosOn); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim:", err)
			os.Exit(1)
		}
	}
	if *aggrURL != "" {
		if err := crossCheckFleet(*aggrURL, c); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim:", err)
			os.Exit(1)
		}
	}
	if *headOut != "" {
		base := *aggrURL
		if base == "" {
			base = *admin
		}
		if base == "" {
			fmt.Fprintln(os.Stderr, "fleetsim: -headline-json needs -aggregator or -admin")
			os.Exit(1)
		}
		if err := dumpHeadline(base+"/headline", *headOut); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim: headline-json:", err)
			os.Exit(1)
		}
	}
}

// crossCheckFleet polls the aggregator's merged exposition until the fleet
// record count equals what every session got acked, then verifies the
// fleet headline agrees — cluster-mode exactly-once, checked end to end
// across node deaths, redirects and checkpoint handoffs. Equality is
// exact: one lost or double-counted record anywhere in the fleet fails
// the run.
func crossCheckFleet(aggr string, c *counters) error {
	sent := c.sentRecords.Load()
	deadline := time.Now().Add(60 * time.Second)
	var m map[string]float64
	for {
		var err error
		m, err = scrapeMetrics(aggr + "/metrics")
		if err != nil {
			return err
		}
		if int64(m["aggregator_records"]) == sent {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("aggregator did not settle: aggregator_records %.0f, sent %d",
				m["aggregator_records"], sent)
		}
		time.Sleep(200 * time.Millisecond)
	}
	var h struct {
		ingest.LiveHeadline
		Epoch     uint64 `json:"epoch"`
		NodesLive int    `json:"nodes_live"`
	}
	if err := getJSON(aggr+"/headline", &h); err != nil {
		return err
	}
	if h.Records != sent {
		return fmt.Errorf("fleet headline records %d != sent %d", h.Records, sent)
	}
	fmt.Printf("fleet headline: %d devices, %d records, %.0f J, background fraction %.3f, first-minute %.3f (epoch %d, %d nodes live)\n",
		h.Devices, h.Records, h.TotalEnergyJ, h.BackgroundFraction, h.FirstMinuteFraction, h.Epoch, h.NodesLive)
	fmt.Printf("fleetsim: aggregator reconciled %d records across %d live nodes (%.0f pull errors)\n",
		sent, int(m["aggregator_nodes_live"]), m["aggregator_pull_errors_total"])
	// Surface the fault-recovery machinery the reconcile rode through:
	// exactly-once holding *because* a handoff shipped (and maybe retried)
	// or a zombie was fenced reads very differently from a clean run.
	if n := m["aggregator_handoffs_total"]; n > 0 {
		fmt.Printf("fleetsim: fleet recovered through %.0f checkpoint handoff(s) (%.0f transfer retries, %.0f pull retries)\n",
			n, m["aggregator_handoff_retries_total"], m["aggregator_pull_retries_total"])
	}
	if n := m["aggregator_fenced_skips_total"]; n > 0 {
		fmt.Printf("fleetsim: aggregator fenced resurrected member(s) out of the merge %.0f time(s)\n", n)
	}
	return nil
}

// dumpHeadline writes the raw /headline JSON body to path — the artifact
// smoke.sh compares between the cluster run and the single-node reference.
func dumpHeadline(url, path string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// dumpStats writes the registry snapshot as indented JSON (to stderr when
// path is "-", keeping stdout clean for the run summary).
func dumpStats(reg *obs.Registry, path string) {
	out, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim: stats-json:", err)
		return
	}
	out = append(out, '\n')
	if path == "-" {
		os.Stderr.Write(out) //nolint:errcheck
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim: stats-json:", err)
	}
}

// streamDevice delivers one device trace through a resumable session,
// pacing by the time-compression factor when one is set. With a node list
// the session routes by the shared hash ring and follows redirect acks.
func streamDevice(addr string, nodes []string, dt *trace.DeviceTrace, speedup float64, timeout, deadline time.Duration, injector *chaos.Injector) (ingest.SessionStats, error) {
	cfg := ingest.SessionConfig{
		Addr:           addr,
		Nodes:          nodes,
		Device:         dt.Device,
		Start:          dt.Start,
		ConnectTimeout: timeout,
		Deadline:       deadline,
	}
	if injector != nil {
		cfg.WrapConn = injector.Wrap
	}
	if speedup > 0 {
		wallStart := time.Now()
		cfg.Pace = func(i int) time.Duration {
			due := wallStart.Add(time.Duration(dt.Records[i].TS.Sub(dt.Start) / speedup * float64(time.Second)))
			return time.Until(due)
		}
	}
	return ingest.StreamTrace(cfg, dt.Records)
}

// crossCheck fetches the server's counters and live headline and verifies
// every record every session believes was acked is accounted for — in
// aggregate, per device, and against the Prometheus /metrics exposition
// (two independent render paths over the server's registry must agree). The
// server may still be flushing shard queues when the last connection closes,
// so the record counter is polled until it settles. Under chaos,
// protocol-error counters are expected to be nonzero (that is the point);
// what must still hold is zero lost records.
func crossCheck(admin string, c *counters, perDevice map[string]int64, chaosOn bool) error {
	sent := c.sentRecords.Load()
	var st ingest.Stats
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := getJSON(admin+"/stats?devices=1", &st); err != nil {
			return err
		}
		if st.Records >= sent || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	var h ingest.LiveHeadline
	if err := getJSON(admin+"/headline", &h); err != nil {
		return err
	}
	fmt.Printf("server: %d records accepted, %d duplicates dropped, %d resumes, %d severs, %d crc errors, %d decode errors, shard depths %v\n",
		st.Records, st.Duplicates, st.Resumes, st.Severs, st.CRCErrors, st.DecodeErrors, st.ShardDepths)
	if st.Checkpoint != nil {
		fmt.Printf("server: checkpoint generation %d (%.1fs old, %d bytes, %d errors)\n",
			st.Checkpoint.Generation, st.Checkpoint.AgeSec, st.Checkpoint.Bytes, st.Checkpoint.Errors)
	}
	fmt.Printf("live headline: %.0f J, background fraction %.3f, first-minute %.3f, screen-off bytes %.1f%%\n",
		h.TotalEnergyJ, h.BackgroundFraction, h.FirstMinuteFraction, 100*h.ScreenOffByteShare)

	// Per-device reconciliation: log every delta so a failure names the
	// device and the exact record count on each side.
	var mismatched []string
	for dev, want := range perDevice {
		got, ok := st.PerDevice[dev]
		switch {
		case !ok:
			mismatched = append(mismatched, dev)
			fmt.Fprintf(os.Stderr, "fleetsim: device %s: sent %d records, server has no trace of it\n", dev, want)
		case got.Records != want:
			mismatched = append(mismatched, dev)
			fmt.Fprintf(os.Stderr, "fleetsim: device %s: sent %d records, server accepted %d (delta %+d)\n",
				dev, want, got.Records, got.Records-want)
		}
	}
	sort.Strings(mismatched)
	if len(mismatched) > 0 {
		return fmt.Errorf("record cross-check failed for %d device(s): %v", len(mismatched), mismatched)
	}
	if dropped := sent - st.Records; dropped > 0 {
		return fmt.Errorf("dropped records: sent %d, server accepted %d (diff %d)", sent, st.Records, dropped)
	}
	if !chaosOn && (st.CRCErrors != 0 || st.DecodeErrors != 0 || st.FrameErrors != 0) {
		return fmt.Errorf("server rejected frames: %d crc, %d decode, %d frame errors",
			st.CRCErrors, st.DecodeErrors, st.FrameErrors)
	}

	// The scraped exposition must agree with the JSON stats document and
	// with what this side sent.
	m, err := scrapeMetrics(admin + "/metrics")
	if err != nil {
		return err
	}
	if got := int64(m["ingest_records_total"]); got != st.Records || got != sent {
		return fmt.Errorf("/metrics disagrees: ingest_records_total %d, /stats records %d, sent %d",
			got, st.Records, sent)
	}
	fmt.Printf("fleetsim: zero lost records (/metrics reconciled: %d records)\n", sent)
	return nil
}

// scrapeMetrics fetches and parses a Prometheus text exposition.
func scrapeMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return obs.ParseText(resp.Body)
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
