// Command fleetsim is the fleet load generator: it synthesises N device
// traces (the same generator the batch study uses) and streams them to an
// ingestd concurrently, optionally time-compressed, then reports achieved
// throughput. With -admin it cross-checks the server's counters against
// what was sent and exits non-zero on any dropped or rejected record —
// the repo's end-to-end load benchmark.
//
// Usage:
//
//	fleetsim -addr localhost:9009 -devices 200 -days 1
//	fleetsim -addr localhost:9009 -admin http://localhost:9010 -devices 200
//	fleetsim -devices 50 -speedup 86400   # one trace-day per wall-second
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netenergy/internal/ingest"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:9009", "ingestd stream address")
		admin   = flag.String("admin", "", "ingestd admin base URL for the drop cross-check (e.g. http://localhost:9010)")
		devices = flag.Int("devices", 20, "synthetic devices to stream concurrently")
		days    = flag.Int("days", 1, "trace days per device")
		seed    = flag.Uint64("seed", 20151028, "generator seed")
		speedup = flag.Float64("speedup", 0, "time-compression factor: trace-seconds per wall-second (0: unpaced, as fast as possible)")
		timeout = flag.Duration("connect-timeout", 10*time.Second, "dial retry budget (lets fleetsim start before ingestd binds)")
	)
	flag.Parse()

	cfg := synthgen.Default()
	cfg.Users = *devices
	cfg.Days = *days
	cfg.Seed = *seed

	var sentRecords, sentBytes, failed atomic.Int64
	gen := make(chan struct{}, runtime.GOMAXPROCS(0)) // bound concurrent generation
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen <- struct{}{}
			dt := synthgen.GenerateDevice(cfg, i)
			<-gen
			if err := streamDevice(*addr, dt, *speedup, *timeout); err != nil {
				fmt.Fprintf(os.Stderr, "fleetsim: %s: %v\n", dt.Device, err)
				failed.Add(1)
				return
			}
			sentRecords.Add(int64(len(dt.Records)))
			var bytes int64
			for j := range dt.Records {
				bytes += int64(len(dt.Records[j].Payload))
			}
			sentBytes.Add(bytes)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	recs := sentRecords.Load()
	fmt.Printf("fleetsim: %d devices x %d days: %d records in %.2fs (%.0f records/s, %.2f MB payload)\n",
		*devices, *days, recs, wall.Seconds(), float64(recs)/wall.Seconds(),
		float64(sentBytes.Load())/1e6)
	if failed.Load() > 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: %d device streams failed\n", failed.Load())
		os.Exit(1)
	}

	if *admin != "" {
		if err := crossCheck(*admin, recs); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim:", err)
			os.Exit(1)
		}
	}
}

// streamDevice sends one device trace, pacing by the time-compression
// factor when one is set.
func streamDevice(addr string, dt *trace.DeviceTrace, speedup float64, timeout time.Duration) error {
	c, err := ingest.Dial(addr, dt.Device, dt.Start, timeout)
	if err != nil {
		return err
	}
	wallStart := time.Now()
	for i := range dt.Records {
		if speedup > 0 {
			due := wallStart.Add(time.Duration(dt.Records[i].TS.Sub(dt.Start) / speedup * float64(time.Second)))
			if ahead := time.Until(due); ahead > 5*time.Millisecond {
				if err := c.Flush(); err != nil {
					return err
				}
				time.Sleep(ahead)
			}
		}
		if err := c.Send(&dt.Records[i]); err != nil {
			return err
		}
	}
	return c.Close()
}

// crossCheck fetches the server's counters and live headline and verifies
// nothing sent was dropped or rejected. The server may still be draining
// socket buffers when the last connection closes, so the record counter is
// polled until it settles.
func crossCheck(admin string, sent int64) error {
	var st ingest.Stats
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := getJSON(admin+"/stats", &st); err != nil {
			return err
		}
		if st.Records >= sent || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	var h ingest.LiveHeadline
	if err := getJSON(admin+"/headline", &h); err != nil {
		return err
	}
	fmt.Printf("server: %d records accepted, %d crc errors, %d decode errors, shard depths %v\n",
		st.Records, st.CRCErrors, st.DecodeErrors, st.ShardDepths)
	fmt.Printf("live headline: %.0f J, background fraction %.3f, first-minute %.3f, screen-off bytes %.1f%%\n",
		h.TotalEnergyJ, h.BackgroundFraction, h.FirstMinuteFraction, 100*h.ScreenOffByteShare)
	if dropped := sent - st.Records; dropped != 0 {
		return fmt.Errorf("dropped records: sent %d, server accepted %d (diff %d)", sent, st.Records, dropped)
	}
	if st.CRCErrors != 0 || st.DecodeErrors != 0 || st.FrameErrors != 0 {
		return fmt.Errorf("server rejected frames: %d crc, %d decode, %d frame errors",
			st.CRCErrors, st.DecodeErrors, st.FrameErrors)
	}
	fmt.Println("fleetsim: zero dropped records")
	return nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
