// Command ingestd is the live fleet-ingest daemon: it accepts METR record
// streams over TCP from many concurrent devices, routes them through a
// sharded analysis pipeline, and serves the paper's headline statistics
// live over an HTTP admin endpoint while the fleet streams.
//
// Usage:
//
//	ingestd -listen :9009 -admin :9010
//	ingestd -checkpoint-dir /var/lib/ingestd   # crash-safe: resumes on restart
//	ingestd -segment-dir /var/lib/ingestd-seg  # on-disk history, enables /query
//	curl http://localhost:9010/headline   # live fleet headline
//	curl http://localhost:9010/stats      # counters, rates, queue depths
//	curl http://localhost:9010/metrics    # Prometheus text exposition
//	curl http://localhost:9010/events     # recent structured events
//	curl 'http://localhost:9010/query?last=-1h&window=hour&topn=10'
//
// With -segment-dir every accepted record is also appended to per-device
// METR-3 segment files, and the admin /query endpoint answers windowed,
// filtered time-series queries over that history (sealed segments plus
// the live, still-open tail). See the tsq package and DESIGN.md §12.
//
// With -checkpoint-dir the daemon periodically persists every device
// stream's analysis state and sequence number; after a crash (SIGKILL,
// OOM, power loss) the next start replays the latest valid checkpoint and
// clients resume mid-stream, retransmitting at most one checkpoint
// interval of records.
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting,
// severs device connections, flushes every shard queue, finalises all
// device streams and prints the final fleet headline before exiting.
//
// Cluster mode joins N daemons into one fleet:
//
//	ingestd -node-id n1 -cluster n1=h1:9009/h1:9010,n2=h2:9009/h2:9010,n3=h3:9009/h3:9010 \
//	  -checkpoint-dir /var/lib/ingestd-n1
//
// The member entry for -node-id supplies the listen addresses. Each node
// probes its peers' admin endpoints, owns the devices the shared
// consistent-hash ring assigns to its live view, and answers handshakes
// for foreign devices with a redirect ack naming the owner. On graceful
// drain the node ships its final checkpoint to the live peers
// (-handoff-on-drain) and leaves a tombstone in its own checkpoint dir,
// so its devices' state moves to the new owners without waiting for an
// aggregatord-triggered handoff and a later restart cannot resurrect it.
//
// With -durable-fin a session's FIN is acknowledged only after its final
// records are in a fsynced checkpoint (group-committed across concurrent
// FINs), so a node crash immediately after the ack cannot lose a
// completed session's tail. A node whose state was handed off while it
// was partitioned is fenced by aggregatord when it resurfaces: it stops
// serving streams, archives its checkpoint dir behind the tombstone, and
// rejoins with a fresh incarnation on restart — no operator wipe needed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netenergy/internal/cluster"
	"netenergy/internal/ingest"
	"netenergy/internal/ingest/checkpoint"
)

func main() {
	var (
		listen  = flag.String("listen", ":9009", "TCP listen address for device streams")
		admin   = flag.String("admin", ":9010", "HTTP admin listen address (empty: disabled)")
		shards  = flag.Int("shards", 8, "worker shards (consistent-hashed by device ID)")
		queue   = flag.Int("queue", 256, "per-shard queue depth (bounded; full queue = backpressure)")
		batch   = flag.Int("batch", 128, "records per shard hand-off batch")
		timeout = flag.Duration("read-timeout", 60*time.Second, "per-frame read deadline")
		drain   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")

		segDir       = flag.String("segment-dir", "", "directory for METR-3 history segments (empty: /query disabled)")
		segMax       = flag.Int64("segment-max-bytes", 0, "roll a device's segment file past this size (0: 64 MiB)")
		ckptDir      = flag.String("checkpoint-dir", "", "directory for crash-safe checkpoints (empty: durability off)")
		ckptInterval = flag.Duration("checkpoint-interval", 10*time.Second, "checkpoint cadence (max progress lost to a crash)")
		durableFIN   = flag.Bool("durable-fin", false, "checkpoint a session's final records before acking its FIN (needs -checkpoint-dir; closes the FIN-ack durability window at some ack latency cost)")
		rateLimit    = flag.Float64("rate-limit", 0, "per-device connection admissions per second (0: unlimited)")
		rateBurst    = flag.Int("rate-burst", 3, "per-device admission token-bucket depth")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under the admin server's /debug/pprof/")

		nodeID        = flag.String("node-id", "", "this node's ID in -cluster (enables cluster mode)")
		clusterFlag   = flag.String("cluster", "", "member list: id=streamHost:port/adminHost:port,...")
		heartbeat     = flag.Duration("heartbeat", time.Second, "peer liveness probe cadence")
		probeMax      = flag.Duration("probe-max", 0, "re-probe interval cap for dead peers (0: 10x heartbeat)")
		failThreshold = flag.Int("fail-threshold", 3, "consecutive probe failures that declare a peer dead")
		handoffDrain  = flag.Bool("handoff-on-drain", true, "ship the final checkpoint to live peers on graceful drain (cluster mode)")
	)
	flag.Parse()

	cfg := ingest.Config{
		Addr:               *listen,
		AdminAddr:          *admin,
		Shards:             *shards,
		QueueDepth:         *queue,
		BatchSize:          *batch,
		ReadTimeout:        *timeout,
		SegmentDir:         *segDir,
		SegmentMaxBytes:    *segMax,
		CheckpointDir:      *ckptDir,
		CheckpointInterval: *ckptInterval,
		DurableFIN:         *durableFIN,
		RateLimit:          *rateLimit,
		RateBurst:          *rateBurst,
		EnablePprof:        *pprofOn,
	}

	// Cluster mode: the member entry for -node-id supplies the listen
	// addresses, and the live membership view supplies the routing hook.
	var prober *cluster.Prober
	var self cluster.Member
	if (*nodeID == "") != (*clusterFlag == "") {
		fmt.Fprintln(os.Stderr, "ingestd: -node-id and -cluster must be set together")
		os.Exit(1)
	}
	if *nodeID != "" {
		members, err := cluster.ParseMembers(*clusterFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ingestd:", err)
			os.Exit(1)
		}
		m, ok := cluster.MemberByID(members, *nodeID)
		if !ok {
			fmt.Fprintf(os.Stderr, "ingestd: node-id %q not in -cluster\n", *nodeID)
			os.Exit(1)
		}
		self = m
		cfg.Addr = self.Stream
		cfg.AdminAddr = self.Admin
		cfg.NodeID = self.ID
		prober = cluster.NewProber(cluster.ProberConfig{
			Members:       members,
			Interval:      *heartbeat,
			MaxInterval:   *probeMax,
			FailThreshold: *failThreshold,
		})
		cfg.Route = cluster.NewView(self, prober).Route
		cfg.ClusterEpoch = prober.Epoch
		cfg.OnFenced = func(reason string) {
			fmt.Fprintln(os.Stderr, "ingestd: FENCED:", reason)
			fmt.Fprintln(os.Stderr, "ingestd: this node's state was handed off to the survivors; its checkpoint dir is archived — restart to rejoin with a fresh incarnation")
		}
	}
	if *durableFIN && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "ingestd: -durable-fin requires -checkpoint-dir")
		os.Exit(1)
	}

	srv := ingest.NewServer(cfg)
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "ingestd:", err)
		os.Exit(1)
	}
	if prober != nil {
		prober.Start()
		defer prober.Stop()
		fmt.Printf("ingestd: cluster node %s joined (heartbeat %s)\n", self.ID, *heartbeat)
	}
	fmt.Printf("ingestd: streaming on %s", srv.Addr())
	if a := srv.AdminAddr(); a != nil {
		fmt.Printf(", admin on http://%s", a)
	}
	fmt.Printf(" (%d shards)\n", *shards)
	if *segDir != "" {
		fmt.Printf("ingestd: writing history segments to %s (/query enabled)\n", *segDir)
	}
	if *ckptDir != "" {
		st := srv.Stats(false)
		if st.Checkpoint != nil && st.Checkpoint.Generation > 0 {
			fmt.Printf("ingestd: recovered checkpoint generation %d from %s (%d records replayed into %d devices)\n",
				st.Checkpoint.Generation, *ckptDir, st.Records, st.Devices)
		} else {
			fmt.Printf("ingestd: checkpointing to %s every %s\n", *ckptDir, *ckptInterval)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("ingestd: draining...")

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	final, err := srv.Shutdown(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingestd: drain failed:", err)
		os.Exit(1)
	}
	st := srv.Stats(false)
	h := ingest.HeadlineOf(final, st.Devices, st.Records)
	fmt.Printf("ingestd: drained %d devices, %d records, %d bytes (%d crc errors, %d decode errors)\n",
		st.Devices, st.Records, st.Bytes, st.CRCErrors, st.DecodeErrors)
	fmt.Printf("final headline: %.0f J attributed, background fraction %.3f, first-minute %.3f, screen-off bytes %.1f%%\n",
		h.TotalEnergyJ, h.BackgroundFraction, h.FirstMinuteFraction, 100*h.ScreenOffByteShare)

	// Cluster drain handoff: ship the final checkpoint (written by
	// Shutdown above) to the live peers so this node's devices resume on
	// their new owners without waiting for a dead-member detection cycle.
	if prober != nil && *handoffDrain && *ckptDir != "" {
		if srv.Fenced() {
			// A fenced node's state already lives on the survivors; shipping
			// it again would double-count every adopted record.
			fmt.Fprintln(os.Stderr, "ingestd: drain handoff skipped: node is fenced (state already handed off)")
		} else {
			shipDrainCheckpoint(prober, self, *ckptDir)
		}
	}
}

// shipDrainCheckpoint delivers this node's latest checkpoint to every live
// peer (self excluded), retrying transient failures, and on success leaves
// a tombstone in its own checkpoint dir: the shipped state now lives on
// the peers, so a later restart from this dir must archive it rather than
// resurrect records the fleet already counts elsewhere.
func shipDrainCheckpoint(prober *cluster.Prober, self cluster.Member, dir string) {
	store, err := checkpoint.Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingestd: drain handoff:", err)
		return
	}
	file, gen, err := store.LoadLatestRaw()
	if err != nil || file == nil {
		fmt.Fprintln(os.Stderr, "ingestd: drain handoff: no valid checkpoint to ship")
		return
	}
	var peers []cluster.Member
	for _, m := range prober.Live() {
		if m.ID != self.ID {
			peers = append(peers, m)
		}
	}
	if len(peers) == 0 {
		fmt.Fprintln(os.Stderr, "ingestd: drain handoff: no live peers")
		return
	}
	results, err := cluster.ShipCheckpointRetry(nil, file, peers, cluster.ShipPolicy{
		Attempts: 3,
		OnAttempt: func(member string, attempt int, err error) {
			fmt.Fprintf(os.Stderr, "ingestd: drain handoff -> %s attempt %d: %v\n", member, attempt, err)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingestd: drain handoff:", err)
	}
	var adopted int
	for _, r := range results {
		adopted += r.AcceptedDevices
	}
	fmt.Printf("ingestd: drain handoff shipped checkpoint gen %d to %d peers (%d device states adopted)\n",
		gen, len(results), adopted)
	if len(results) == 0 {
		return
	}
	tomb := checkpoint.Tombstone{Node: self.ID, Generation: gen, UnixNano: time.Now().UnixNano()}
	if snap, derr := checkpoint.DecodeFile(file); derr == nil {
		tomb.Incarnation = snap.Fence.Incarnation
		tomb.Epoch = snap.Fence.Epoch
	}
	if err := checkpoint.WriteTombstone(dir, tomb); err != nil {
		fmt.Fprintln(os.Stderr, "ingestd: drain handoff: tombstone write failed:", err)
		return
	}
	fmt.Printf("ingestd: tombstone written (gen %d); a restart from %s archives the shipped state and rejoins fresh\n", gen, dir)
}
