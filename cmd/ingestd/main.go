// Command ingestd is the live fleet-ingest daemon: it accepts METR record
// streams over TCP from many concurrent devices, routes them through a
// sharded analysis pipeline, and serves the paper's headline statistics
// live over an HTTP admin endpoint while the fleet streams.
//
// Usage:
//
//	ingestd -listen :9009 -admin :9010
//	ingestd -checkpoint-dir /var/lib/ingestd   # crash-safe: resumes on restart
//	curl http://localhost:9010/headline   # live fleet headline
//	curl http://localhost:9010/stats      # counters, rates, queue depths
//	curl http://localhost:9010/metrics    # Prometheus text exposition
//	curl http://localhost:9010/events     # recent structured events
//
// With -checkpoint-dir the daemon periodically persists every device
// stream's analysis state and sequence number; after a crash (SIGKILL,
// OOM, power loss) the next start replays the latest valid checkpoint and
// clients resume mid-stream, retransmitting at most one checkpoint
// interval of records.
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting,
// severs device connections, flushes every shard queue, finalises all
// device streams and prints the final fleet headline before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netenergy/internal/ingest"
)

func main() {
	var (
		listen  = flag.String("listen", ":9009", "TCP listen address for device streams")
		admin   = flag.String("admin", ":9010", "HTTP admin listen address (empty: disabled)")
		shards  = flag.Int("shards", 8, "worker shards (consistent-hashed by device ID)")
		queue   = flag.Int("queue", 256, "per-shard queue depth (bounded; full queue = backpressure)")
		batch   = flag.Int("batch", 128, "records per shard hand-off batch")
		timeout = flag.Duration("read-timeout", 60*time.Second, "per-frame read deadline")
		drain   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")

		ckptDir      = flag.String("checkpoint-dir", "", "directory for crash-safe checkpoints (empty: durability off)")
		ckptInterval = flag.Duration("checkpoint-interval", 10*time.Second, "checkpoint cadence (max progress lost to a crash)")
		rateLimit    = flag.Float64("rate-limit", 0, "per-device connection admissions per second (0: unlimited)")
		rateBurst    = flag.Int("rate-burst", 3, "per-device admission token-bucket depth")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under the admin server's /debug/pprof/")
	)
	flag.Parse()

	srv := ingest.NewServer(ingest.Config{
		Addr:               *listen,
		AdminAddr:          *admin,
		Shards:             *shards,
		QueueDepth:         *queue,
		BatchSize:          *batch,
		ReadTimeout:        *timeout,
		CheckpointDir:      *ckptDir,
		CheckpointInterval: *ckptInterval,
		RateLimit:          *rateLimit,
		RateBurst:          *rateBurst,
		EnablePprof:        *pprofOn,
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "ingestd:", err)
		os.Exit(1)
	}
	fmt.Printf("ingestd: streaming on %s", srv.Addr())
	if a := srv.AdminAddr(); a != nil {
		fmt.Printf(", admin on http://%s", a)
	}
	fmt.Printf(" (%d shards)\n", *shards)
	if *ckptDir != "" {
		st := srv.Stats(false)
		if st.Checkpoint != nil && st.Checkpoint.Generation > 0 {
			fmt.Printf("ingestd: recovered checkpoint generation %d from %s (%d records replayed into %d devices)\n",
				st.Checkpoint.Generation, *ckptDir, st.Records, st.Devices)
		} else {
			fmt.Printf("ingestd: checkpointing to %s every %s\n", *ckptDir, *ckptInterval)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("ingestd: draining...")

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	final, err := srv.Shutdown(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingestd: drain failed:", err)
		os.Exit(1)
	}
	st := srv.Stats(false)
	h := ingest.HeadlineOf(final, st.Devices, st.Records)
	fmt.Printf("ingestd: drained %d devices, %d records, %d bytes (%d crc errors, %d decode errors)\n",
		st.Devices, st.Records, st.Bytes, st.CRCErrors, st.DecodeErrors)
	fmt.Printf("final headline: %.0f J attributed, background fraction %.3f, first-minute %.3f, screen-off bytes %.1f%%\n",
		h.TotalEnergyJ, h.BackgroundFraction, h.FirstMinuteFraction, 100*h.ScreenOffByteShare)
}
