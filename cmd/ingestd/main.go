// Command ingestd is the live fleet-ingest daemon: it accepts METR record
// streams over TCP from many concurrent devices, routes them through a
// sharded analysis pipeline, and serves the paper's headline statistics
// live over an HTTP admin endpoint while the fleet streams.
//
// Usage:
//
//	ingestd -listen :9009 -admin :9010
//	curl http://localhost:9010/headline   # live fleet headline
//	curl http://localhost:9010/stats      # counters, rates, queue depths
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting,
// severs device connections, flushes every shard queue, finalises all
// device streams and prints the final fleet headline before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netenergy/internal/ingest"
)

func main() {
	var (
		listen  = flag.String("listen", ":9009", "TCP listen address for device streams")
		admin   = flag.String("admin", ":9010", "HTTP admin listen address (empty: disabled)")
		shards  = flag.Int("shards", 8, "worker shards (consistent-hashed by device ID)")
		queue   = flag.Int("queue", 256, "per-shard queue depth (bounded; full queue = backpressure)")
		batch   = flag.Int("batch", 128, "records per shard hand-off batch")
		timeout = flag.Duration("read-timeout", 60*time.Second, "per-frame read deadline")
		drain   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	srv := ingest.NewServer(ingest.Config{
		Addr:        *listen,
		AdminAddr:   *admin,
		Shards:      *shards,
		QueueDepth:  *queue,
		BatchSize:   *batch,
		ReadTimeout: *timeout,
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "ingestd:", err)
		os.Exit(1)
	}
	fmt.Printf("ingestd: streaming on %s", srv.Addr())
	if a := srv.AdminAddr(); a != nil {
		fmt.Printf(", admin on http://%s", a)
	}
	fmt.Printf(" (%d shards)\n", *shards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("ingestd: draining...")

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	final, err := srv.Shutdown(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingestd: drain failed:", err)
		os.Exit(1)
	}
	st := srv.Stats(false)
	h := ingest.HeadlineOf(final, st.Devices, st.Records)
	fmt.Printf("ingestd: drained %d devices, %d records, %d bytes (%d crc errors, %d decode errors)\n",
		st.Devices, st.Records, st.Bytes, st.CRCErrors, st.DecodeErrors)
	fmt.Printf("final headline: %.0f J attributed, background fraction %.3f, first-minute %.3f, screen-off bytes %.1f%%\n",
		h.TotalEnergyJ, h.BackgroundFraction, h.FirstMinuteFraction, 100*h.ScreenOffByteShare)
}
