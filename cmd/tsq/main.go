// Command tsq runs time-series queries over an on-disk METR segment
// directory offline — the same engine that backs the ingestd admin
// /query endpoint, pointed at the files directly. It also applies the
// retention policy: sealed segments older than a cutoff are folded into
// the directory's downsampled rollup and deleted.
//
// Usage:
//
//	tsq -dir /var/lib/ingestd-seg                      # last hour, all apps
//	tsq -dir seg/ -from 2012-12-01T00:00:00Z -to 2012-12-02T00:00:00Z
//	tsq -dir seg/ -last -24h -window hour -topn 10
//	tsq -dir seg/ -apps 3,17 -json                     # raw Result JSON
//	tsq -dir seg/ -retain 720h -retain-window day      # fold month-old history
//
// Time bounds accept RFC3339, raw unix microseconds, or an offset
// relative to now ("-24h"); -window accepts "hour", "day" or a Go
// duration. The flags are assembled into the exact query-string grammar
// the HTTP endpoint speaks, so tsq and curl answers are interchangeable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/url"
	"os"
	"time"

	"netenergy/internal/energy"
	"netenergy/internal/trace"
	"netenergy/internal/tsq"
)

func main() {
	var (
		dir     = flag.String("dir", "", "segment directory to query (required)")
		from    = flag.String("from", "", "range start: RFC3339, unix microseconds, or offset like -24h")
		to      = flag.String("to", "", "range end (exclusive), same forms as -from")
		last    = flag.String("last", "", "shorthand for -from <offset> -to now (e.g. -last -6h)")
		window  = flag.String("window", "", "rollup width: hour, day, or a duration (empty: whole-range totals)")
		apps    = flag.String("apps", "", "comma-separated app IDs to keep (empty: all)")
		topn    = flag.Int("topn", 0, "keep only the N highest-energy apps (0: all)")
		jsonOut = flag.Bool("json", false, "print the raw Result JSON instead of the table")

		retain       = flag.Duration("retain", 0, "retention mode: fold sealed segments older than this into the rollup and delete them")
		retainWindow = flag.String("retain-window", "day", "rollup window width for -retain")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "tsq: -dir is required")
		os.Exit(1)
	}
	now := time.Now()
	eng := tsq.Engine{Opts: energy.DefaultOptions()}

	if *retain > 0 {
		q, err := tsq.ParseQuery(url.Values{"window": {*retainWindow}}, now)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsq:", err)
			os.Exit(1)
		}
		cutoff := trace.TimestampOf(now.Add(-*retain))
		rep, err := eng.ApplyRetention(*dir, cutoff, q.Window)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsq: retention:", err)
			os.Exit(1)
		}
		fmt.Printf("tsq: folded %d records from %d segments into the rollup (%d segments kept)\n",
			rep.RecordsFolded, rep.FilesRemoved, rep.FilesKept)
		return
	}

	// Assemble the flags into the HTTP query grammar: ParseQuery is the
	// single source of validation and defaulting.
	vals := url.Values{}
	for k, v := range map[string]string{
		"from": *from, "to": *to, "last": *last, "window": *window, "apps": *apps,
	} {
		if v != "" {
			vals.Set(k, v)
		}
	}
	if *topn > 0 {
		vals.Set("topn", fmt.Sprint(*topn))
	}
	q, err := tsq.ParseQuery(vals, now)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsq:", err)
		os.Exit(1)
	}
	res, err := eng.QueryDir(*dir, q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsq:", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "tsq:", err)
			os.Exit(1)
		}
		return
	}
	printResult(res)
}

func printResult(res *tsq.Result) {
	fmt.Printf("range   [%s, %s)\n", fmtUS(res.FromUS), fmtUS(res.ToUS))
	fmt.Printf("scanned %d devices, %d records (%d/%d blocks pruned by the seek index)\n",
		res.Devices, res.Records, res.Scan.BlocksSkipped, res.Scan.BlocksTotal)
	if res.Downsampled {
		fmt.Println("note    result includes downsampled rollup history (window-granular bounds)")
	}
	fmt.Printf("total   %.3f J attributed, %d wire bytes\n", res.TotalEnergyJ, res.TotalBytes)
	if len(res.Apps) > 0 {
		fmt.Printf("\n%-8s %-24s %14s %14s\n", "app", "name", "energy (J)", "bytes")
		for _, a := range res.Apps {
			fmt.Printf("%-8d %-24s %14.3f %14d\n", a.App, a.Name, a.EnergyJ, a.Bytes)
		}
	}
	for _, w := range res.Windows {
		fmt.Printf("\nwindow [%s, %s): %.3f J, %d bytes\n", fmtUS(w.StartUS), fmtUS(w.EndUS), w.EnergyJ, w.Bytes)
		for _, a := range w.Apps {
			fmt.Printf("  %-8d %-24s %14.3f %14d\n", a.App, a.Name, a.EnergyJ, a.Bytes)
		}
	}
}

func fmtUS(us int64) string {
	return time.UnixMicro(us).UTC().Format(time.RFC3339)
}
