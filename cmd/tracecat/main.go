// Command tracecat inspects METR trace files: summary statistics, record
// dumps, per-app breakdowns and NDJSON export.
//
// Usage:
//
//	tracecat -trace data/u00.metr                 # summary stats
//	tracecat -trace data/u00.metr -head 20        # first 20 records
//	tracecat -trace data/u00.metr -app com.sina.weibo -head 50
//	tracecat -trace data/u00.metr -ndjson > u00.ndjson
//	tracecat -trace data/u00.metr -convert u00.metr2 -format metr2
//
// With -convert, the trace is rewritten into the container named by
// -format (flat, deflate, metr2 or metr3); records survive bit-identically, only
// the container changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"netenergy/internal/report"
	"netenergy/internal/trace"
)

func main() {
	var (
		path   = flag.String("trace", "", "METR trace file (required)")
		head   = flag.Int("head", 0, "print the first N records")
		appPkg = flag.String("app", "", "restrict -head output to one app package")
		ndjson  = flag.Bool("ndjson", false, "dump the whole trace as NDJSON to stdout")
		convert = flag.String("convert", "", "rewrite the trace into this file using -format")
		format  = flag.String("format", "", "target container for -convert: flat, deflate, metr2 or metr3")
	)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	dt, err := trace.ReadFile(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecat:", err)
		os.Exit(1)
	}
	switch {
	case *convert != "":
		err = convertTrace(dt, *path, *convert, *format)
	case *ndjson:
		err = dt.ExportNDJSON(os.Stdout)
	case *head > 0:
		err = printHead(dt, *head, *appPkg)
	default:
		err = printStats(dt, *path)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecat:", err)
		os.Exit(1)
	}
}

// convertTrace rewrites dt into dst using the named container format.
func convertTrace(dt *trace.DeviceTrace, src, dst, formatName string) error {
	if formatName == "" {
		return fmt.Errorf("-convert requires -format (flat, deflate, metr2 or metr3)")
	}
	f, err := trace.ParseFormat(formatName)
	if err != nil {
		return err
	}
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if err := dt.SerializeFormat(out, f); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	st, err := os.Stat(dst)
	if err != nil {
		return err
	}
	from, err := trace.DetectFileFormat(src)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracecat: %s (%s) -> %s (%s), %d records, %.1f MB\n",
		src, from, dst, f, len(dt.Records), float64(st.Size())/1e6)
	return nil
}

func printHead(dt *trace.DeviceTrace, n int, appPkg string) error {
	appFilter := int64(-1)
	if appPkg != "" {
		for i := 0; i < dt.Apps.Len(); i++ {
			if dt.Apps.Name(uint32(i)) == appPkg {
				appFilter = int64(i)
			}
		}
		if appFilter < 0 {
			return fmt.Errorf("app %q not in trace", appPkg)
		}
	}
	printed := 0
	for i := range dt.Records {
		r := &dt.Records[i]
		if appFilter >= 0 {
			if r.Type == trace.RecScreen || uint32(appFilter) != r.App {
				continue
			}
		}
		fmt.Printf("%12.3f  %s\n", r.TS.Sub(dt.Start), r.String())
		if printed++; printed >= n {
			break
		}
	}
	return nil
}

func printStats(dt *trace.DeviceTrace, path string) error {
	counts := map[trace.RecordType]int{}
	bytesByApp := map[uint32]int64{}
	pktsByApp := map[uint32]int{}
	var firstTS, lastTS trace.Timestamp
	var totalStored int64
	for i := range dt.Records {
		r := &dt.Records[i]
		counts[r.Type]++
		if firstTS == 0 || r.TS < firstTS {
			firstTS = r.TS
		}
		if r.TS > lastTS {
			lastTS = r.TS
		}
		if r.Type == trace.RecPacket {
			bytesByApp[r.App] += int64(len(r.Payload))
			pktsByApp[r.App]++
			totalStored += int64(len(r.Payload))
		}
	}
	container := "?"
	if f, err := trace.DetectFileFormat(path); err == nil {
		container = f.String()
	}
	fmt.Printf("device %s: %d records over %.1f days (%d apps registered, %s container)\n",
		dt.Device, len(dt.Records), lastTS.Sub(firstTS)/86400, dt.Apps.Len(), container)
	for _, rt := range []trace.RecordType{trace.RecAppName, trace.RecPacket, trace.RecProcState, trace.RecUIEvent, trace.RecScreen} {
		fmt.Printf("  %-10s %d\n", rt.String(), counts[rt])
	}
	fmt.Printf("  stored packet bytes: %.1f MB (snap-length captures)\n\n", float64(totalStored)/1e6)

	type row struct {
		app  uint32
		pkts int
	}
	rows := make([]row, 0, len(pktsByApp))
	for app, n := range pktsByApp {
		rows = append(rows, row{app, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].pkts != rows[j].pkts {
			return rows[i].pkts > rows[j].pkts
		}
		return rows[i].app < rows[j].app
	})
	if len(rows) > 15 {
		rows = rows[:15]
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			dt.Apps.Name(r.app),
			fmt.Sprintf("%d", r.pkts),
			fmt.Sprintf("%.2f MB", float64(bytesByApp[r.app])/1e6),
		})
	}
	return report.Table(os.Stdout, []string{"app", "packets", "stored"}, out)
}
