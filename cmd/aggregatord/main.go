// Command aggregatord is the fleet-wide merge daemon for a multi-node
// ingest cluster: it probes every configured ingestd's admin endpoint for
// liveness, periodically pulls each live node's binary StreamResult
// snapshot, merges them into one fleet headline, and serves the result
// over HTTP. It also owns the ownership-handoff trigger: when a member is
// declared dead, its latest checkpoint file is shipped to the survivors
// (given -handoff-dirs pointing at the nodes' checkpoint directories,
// e.g. on shared storage).
//
// Usage:
//
//	aggregatord -listen :9020 \
//	  -cluster n1=h1:9009/h1:9010,n2=h2:9009/h2:9010,n3=h3:9009/h3:9010 \
//	  -handoff-dirs n1=/var/lib/ingestd-n1,n2=/var/lib/ingestd-n2,n3=/var/lib/ingestd-n3
//	curl http://localhost:9020/headline   # merged fleet headline
//	curl http://localhost:9020/metrics    # aggregator_* exposition
//	curl http://localhost:9020/nodes      # membership status + epoch
//	curl 'http://localhost:9020/query?last=-1h&window=hour&topn=10'
//
// GET /query fans the time-series query out to every live member's
// segment store and merges the answers: with no parameters it returns the
// fleet-wide per-app energy ranking over the last hour; add topn=N,
// window=hour|day, from/to/last bounds and app filters exactly as on the
// single-node ingestd /query endpoint (members must run -segment-dir).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netenergy/internal/cluster"
)

func main() {
	var (
		listen        = flag.String("listen", ":9020", "HTTP listen address")
		clusterFlag   = flag.String("cluster", "", "member list: id=streamHost:port/adminHost:port,... (required)")
		interval      = flag.Duration("interval", 2*time.Second, "snapshot pull-and-merge cadence")
		heartbeat     = flag.Duration("heartbeat", time.Second, "liveness probe cadence for healthy members")
		probeMax      = flag.Duration("probe-max", 0, "re-probe interval cap for dead members (0: 10x heartbeat)")
		failThreshold = flag.Int("fail-threshold", 3, "consecutive probe failures that declare a member dead")
		handoffDirs   = flag.String("handoff-dirs", "", "id=checkpointDir,... for dead-member checkpoint handoff")
		pullAttempts  = flag.Int("pull-attempts", 2, "snapshot pull attempts per node per cycle (retries with backoff)")
		shipAttempts  = flag.Int("handoff-attempts", 3, "checkpoint handoff transfer attempts per survivor (retries with backoff)")
	)
	flag.Parse()

	members, err := cluster.ParseMembers(*clusterFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggregatord:", err)
		os.Exit(1)
	}
	dirs, err := parseDirs(*handoffDirs, members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggregatord:", err)
		os.Exit(1)
	}

	prober := cluster.NewProber(cluster.ProberConfig{
		Members:       members,
		Interval:      *heartbeat,
		MaxInterval:   *probeMax,
		FailThreshold: *failThreshold,
	})
	prober.Start()
	agg := cluster.NewAggregator(cluster.AggregatorConfig{
		Prober:          prober,
		Interval:        *interval,
		HandoffDirs:     dirs,
		PullAttempts:    *pullAttempts,
		HandoffAttempts: *shipAttempts,
	})
	agg.Start()

	srv := &http.Server{Addr: *listen, Handler: agg.Mux()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("aggregatord: serving on %s, %d members, pulling every %s\n",
		*listen, len(members), *interval)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "aggregatord:", err)
		prober.Stop()
		agg.Stop()
		os.Exit(1)
	}
	fmt.Println("aggregatord: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx) //nolint:errcheck // best effort
	agg.Stop()
	prober.Stop()
	if h, ok := agg.Headline(); ok {
		fmt.Printf("aggregatord: final fleet headline: %d devices, %d records, %.0f J (epoch %d, %d nodes live)\n",
			h.Devices, h.Records, h.TotalEnergyJ, h.Epoch, h.NodesLive)
	}
}

// parseDirs parses "id=dir,..." and validates every id names a member.
func parseDirs(s string, members []cluster.Member) (map[string]string, error) {
	out := map[string]string{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	ids := map[string]bool{}
	for _, m := range members {
		ids[m.ID] = true
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, dir, ok := strings.Cut(part, "=")
		if !ok || id == "" || dir == "" {
			return nil, fmt.Errorf("handoff-dirs entry %q: want id=dir", part)
		}
		if !ids[id] {
			return nil, fmt.Errorf("handoff-dirs entry %q: unknown member %q", part, id)
		}
		out[id] = dir
	}
	return out, nil
}
