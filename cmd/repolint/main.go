// Command repolint runs the repo's static-analysis suite (internal/lint):
// determinism, noalloc, severerr, units, obscopy, plus the dataflow
// analyzers wiresize, goexit and lockhold. It speaks two protocols:
//
//	repolint [packages]           standalone: load via the go command and
//	                              analyze the matched packages (default ./...)
//	repolint -json [packages]     standalone, machine-readable: one JSON
//	                              array of findings on stdout, suppressed
//	                              findings included with their justification
//	repolint -audit [packages]    list every //repolint: directive (test
//	                              files included) with its justification;
//	                              exit 1 if any escape hatch lacks one
//	go vet -vettool=$(pwd)/bin/repolint ./...
//	                              vettool: analyze one compilation unit per
//	                              .cfg file handed over by go vet, riding
//	                              go vet's per-package result cache
//
// The vettool protocol also requires answering `-flags` (extra flags the
// tool accepts; none) and `-V=full` (a version line that must change when
// the tool changes — derived here from the binary's own content hash so
// stale caches cannot survive a rebuild).
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strings"

	"netenergy/internal/lint"
)

func main() {
	// One-shot process: the whole-module parse and type-check allocate
	// furiously and almost nothing dies before the process does, so GC
	// cycles are pure overhead. Keep the collector nearly idle unless the
	// caller asked for something specific.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(800)
	}
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	version := fs.String("V", "", "print version and exit (go vet protocol; use -V=full)")
	printFlags := fs.Bool("flags", false, "print the tool's extra flags as JSON and exit (go vet protocol)")
	listAnalyzers := fs.Bool("list", false, "list the analyzers in the suite and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout (suppressed findings included)")
	audit := fs.Bool("audit", false, "list every //repolint: directive with its justification; exit 1 on any missing one")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repolint [packages]   (default ./...)\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=/abs/path/to/repolint [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *version != "":
		// go vet hashes this line into its cache key (see toolID in
		// cmd/go): field 3 must not be "devel".
		fmt.Printf("repolint version %s\n", selfID())
		return 0
	case *printFlags:
		// go vet always queries the tool's extra flags; repolint has none.
		fmt.Println("[]")
		return 0
	case *listAnalyzers:
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0])
	}
	if *audit {
		return runAudit(rest)
	}
	return runStandalone(rest, *jsonOut)
}

// runVet analyzes the single compilation unit go vet described in cfg.
func runVet(cfg string) int {
	n, err := lint.RunVet(cfg, lint.All(), os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 2
	}
	if n > 0 {
		return 1
	}
	return 0
}

// runStandalone loads the patterns through the go command and analyzes
// every matched package. With jsonOut the full diagnostic set — suppressed
// findings included — goes to stdout as a JSON array; the exit status is
// still decided by the active (unsuppressed) findings alone.
func runStandalone(patterns []string, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, fset, err := lint.RunAll(".", patterns, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 2
	}
	active := 0
	for _, d := range diags {
		if !d.Suppressed {
			active++
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lint.Findings(diags, fset)); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if active > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", active)
		return 1
	}
	return 0
}

// runAudit lists every //repolint: directive in the matched packages, test
// files included. The audit fails (exit 1) when an escape hatch carries no
// written justification.
func runAudit(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	sups, err := lint.Audit(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 2
	}
	bad := 0
	for _, s := range sups {
		why := s.Justification
		if why == "" {
			why = "(no justification)"
			if s.NeedsJustification() {
				bad++
			}
		}
		name := s.Directive
		if s.Analyzer != "" {
			name += " " + s.Analyzer
		}
		fmt.Printf("%s:%d: %-20s %s\n", s.File, s.Line, name, why)
	}
	fmt.Printf("repolint: %d suppression(s), %d missing justification\n", len(sups), bad)
	if bad > 0 {
		return 1
	}
	return 0
}

// selfID hashes the running binary so the version line — and with it go
// vet's cache key — changes whenever repolint is rebuilt with different
// code.
func selfID() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil))[:16]
			}
		}
	}
	// Hashing ourselves failed; answer something cache-safe but unstable
	// is not an option (go vet would fatal on "devel"), so fall back to a
	// fixed id and rely on the Makefile rebuilding bin/repolint.
	return "unhashed"
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
