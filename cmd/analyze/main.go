// Command analyze reproduces the paper's evaluation artifacts over a
// dataset: every figure series, both tables and the headline statistics.
//
// Usage:
//
//	analyze -data data/               # full report over an on-disk fleet
//	analyze -gen -users 10 -days 28   # generate in memory, then analyse
//	analyze -data data/ -fig 5        # a single figure
//	analyze -data data/ -table 1      # a single table
//	analyze -data data/ -headline     # headline statistics only
//	analyze -data data/ -stream       # bounded-memory single-pass summary
//	analyze -data data/ -csv fig6.csv -fig 6
//	analyze -data data/ -workers 8    # load device files in parallel
//	analyze -data data/ -stream -csv fig6.csv  # stream mode CSV export
//	analyze -gen -stats-json stats.json        # dump per-stage timings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"netenergy/internal/analysis"
	"netenergy/internal/core"
	"netenergy/internal/energy"
	"netenergy/internal/obs"
	"netenergy/internal/report"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

func main() {
	var (
		data     = flag.String("data", "", "directory of .metr trace files")
		gen      = flag.Bool("gen", false, "generate the dataset in memory instead of reading -data")
		users    = flag.Int("users", 20, "users for -gen")
		days     = flag.Int("days", 126, "days for -gen")
		seed     = flag.Uint64("seed", 20151028, "seed for -gen")
		fig      = flag.Int("fig", 0, "print only figure N (1-6)")
		table    = flag.Int("table", 0, "print only table N (1-2)")
		headline = flag.Bool("headline", false, "print only the headline statistics")
		hosts    = flag.Bool("hosts", false, "print only the Chrome leak-traffic host attribution")
		stream   = flag.Bool("stream", false, "bounded-memory single-pass summary of an on-disk fleet")
		device   = flag.String("device", "", "restrict analyses to one device (e.g. u03)")
		kill     = flag.Int("kill", 3, "kill-after-days threshold for table 2")
		csvPath  = flag.String("csv", "", "also write the selected figure's raw series as CSV")
		workers  = flag.Int("workers", runtime.NumCPU(), "device files loaded in parallel (per-device files are independent)")
		statsOut = flag.String("stats-json", "", "write end-of-run metrics (per-stage timings) as JSON to this path, or - for stderr")
	)
	flag.Parse()

	if *stream {
		if err := runStream(*data, *csvPath); err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		return
	}

	study, err := load(*data, *gen, *users, *days, *seed, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	var reg *obs.Registry
	if *statsOut != "" {
		reg = obs.New()
		study.Instrument(reg)
	}
	if *device != "" {
		var kept []*analysis.DeviceData
		for _, d := range study.Devices {
			if d.Device == *device {
				kept = append(kept, d)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "analyze: device %q not in dataset\n", *device)
			os.Exit(1)
		}
		study.Devices = kept
	}
	w := os.Stdout
	switch {
	case *headline:
		err = report.Headline(w, study.Headline())
	case *hosts:
		err = report.HostBreakdown(w, study.LeakHosts())
	case *fig != 0:
		err = printFigure(w, study, *fig, *csvPath)
	case *table == 1:
		err = report.CaseStudies(w, study.Table1())
	case *table == 2:
		err = report.WhatIf(w, study.Table2(*kill), *kill)
	default:
		err = study.WriteReport(w)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	if reg != nil {
		dumpStats(reg, *statsOut)
	}
}

// dumpStats writes the registry snapshot as indented JSON (to stderr when
// path is "-", keeping stdout clean for the report).
func dumpStats(reg *obs.Registry, path string) {
	snap := reg.Snapshot()
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze: stats-json:", err)
		return
	}
	out = append(out, '\n')
	if path == "-" {
		os.Stderr.Write(out) //nolint:errcheck
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "analyze: stats-json:", err)
	}
}

func load(data string, gen bool, users, days int, seed uint64, workers int) (*core.Study, error) {
	if gen || data == "" {
		cfg := synthgen.Default()
		cfg.Users = users
		cfg.Days = days
		cfg.Seed = seed
		fmt.Fprintf(os.Stderr, "analyze: generating %d users x %d days in memory\n", users, days)
		return core.Run(cfg)
	}
	return core.OpenParallel(data, workers)
}

func printFigure(w io.Writer, s *core.Study, n int, csvPath string) error {
	var csvW io.Writer
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		csvW = f
	}
	switch n {
	case 1:
		return report.TopApps(w, s.Fig1())
	case 2:
		return report.HungryApps(w, s.Fig2())
	case 3:
		return report.StateBreakdowns(w, s.Fig3())
	case 4:
		tl, ok := s.Fig4()
		if !ok {
			return fmt.Errorf("no Chrome background transition in dataset")
		}
		if csvW != nil {
			rows := make([][]string, len(tl.Offsets))
			for i := range tl.Offsets {
				power := 0.0
				if i < len(tl.PowerW) {
					power = tl.PowerW[i]
				}
				rows[i] = []string{
					fmt.Sprintf("%.0f", tl.Offsets[i]-tl.Before),
					fmt.Sprintf("%.0f", tl.Bytes[i]),
					fmt.Sprintf("%.4f", power),
				}
			}
			if err := report.CSV(csvW, []string{"t_rel_s", "bytes", "radio_power_w"}, rows); err != nil {
				return err
			}
		}
		return report.Timeline(w, tl)
	case 5:
		res := s.Fig5()
		if csvW != nil {
			xs, ps := res.CDF.Points(200)
			rows := make([][]string, len(xs))
			for i := range xs {
				rows[i] = []string{fmt.Sprintf("%.1f", xs[i]), fmt.Sprintf("%.5f", ps[i])}
			}
			if err := report.CSV(csvW, []string{"persistence_s", "cdf"}, rows); err != nil {
				return err
			}
		}
		return report.Persistence(w, res)
	case 6:
		res := s.Fig6()
		if csvW != nil {
			rows := make([][]string, len(res.Offsets))
			for i := range res.Offsets {
				rows[i] = []string{
					fmt.Sprintf("%.0f", res.Offsets[i]),
					fmt.Sprintf("%.0f", res.Bytes[i]),
				}
			}
			if err := report.CSV(csvW, []string{"since_fg_s", "bg_bytes"}, rows); err != nil {
				return err
			}
		}
		return report.SinceForeground(w, res)
	default:
		return fmt.Errorf("unknown figure %d (valid: 1-6)", n)
	}
}

// runStream computes the bounded-memory summary: headline energy shares,
// the Figure 6 aggregates, the first-minute criterion and the screen split,
// in one sequential pass per trace file. With csvPath the Fig. 6 series is
// exported in the same shape as the batch mode's -fig 6 -csv.
func runStream(data, csvPath string) error {
	if data == "" {
		return fmt.Errorf("-stream requires -data")
	}
	fleet, err := trace.OpenFleet(data)
	if err != nil {
		return err
	}
	opts := energy.DefaultOptions()
	opts.KeepPackets = false
	res, err := analysis.StreamFleet(fleet, opts)
	if err != nil {
		return err
	}
	fmt.Printf("streamed %d devices: %.0f J attributed (%d decode errors)\n",
		len(fleet.Paths), res.Ledger.Total, res.DecodeErrors)
	fmt.Printf("background energy fraction: %.3f  (paper: 0.84)\n", res.Ledger.BackgroundFraction())
	fmt.Printf("apps >=80%% bg bytes in 60s: %.3f  (paper: 0.84)\n", res.FirstMinuteFraction(0.8))
	f6 := res.SinceForeground()
	fmt.Printf("fig6 first-minute share: %.1f%%  spike@5min %.1fx  spike@10min %.1fx\n",
		100*f6.FirstMinute, f6.Spike5m, f6.Spike10m)
	total := res.OffBytes + res.OnBytes
	if total > 0 {
		fmt.Printf("screen-off bytes: %.1f%%\n", 100*float64(res.OffBytes)/float64(total))
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		rows := make([][]string, len(f6.Offsets))
		for i := range f6.Offsets {
			rows[i] = []string{
				fmt.Sprintf("%.0f", f6.Offsets[i]),
				fmt.Sprintf("%.0f", f6.Bytes[i]),
			}
		}
		if err := report.CSV(f, []string{"since_fg_s", "bg_bytes"}, rows); err != nil {
			return err
		}
		fmt.Printf("wrote fig6 series to %s\n", csvPath)
	}
	return nil
}
