// Command metr2pcap converts between this repository's METR trace format
// and classic libpcap captures, so traces can be inspected with
// tcpdump/Wireshark and real captures can be fed to the energy profiler.
//
// Usage:
//
//	metr2pcap -in data/u00.metr -out u00.pcap            # export (cellular only)
//	metr2pcap -in data/u00.metr -out u00.pcap -all       # export all interfaces
//	metr2pcap -in capture.pcap -out capture.metr -import # import a pcap
//	metr2pcap -in capture.pcap -out c.metr -import -format metr2
//
// Exports read any METR container (flat, deflate, blocked METR-2);
// imports write the container named by -format (default flat).
//
// pcap has no process mappings, directions or process states: exports drop
// them, imports assign all packets to a single synthetic app.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"netenergy/internal/pcapio"
	"netenergy/internal/trace"
)

func main() {
	var (
		in    = flag.String("in", "", "input file (required)")
		out   = flag.String("out", "", "output file (required)")
		all    = flag.Bool("all", false, "export all interfaces, not just cellular")
		imprt  = flag.Bool("import", false, "convert pcap -> METR instead of METR -> pcap")
		format = flag.String("format", "flat", "container written by -import: flat, deflate or metr2")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := trace.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metr2pcap:", err)
		os.Exit(2)
	}
	if err := run(*in, *out, *all, *imprt, f); err != nil {
		fmt.Fprintln(os.Stderr, "metr2pcap:", err)
		os.Exit(1)
	}
}

func run(in, out string, all, imprt bool, format trace.Format) error {
	if imprt {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		device := strings.TrimSuffix(in, ".pcap")
		dt, err := pcapio.ToTrace(f, device)
		if err != nil {
			return err
		}
		of, err := os.Create(out)
		if err != nil {
			return err
		}
		defer of.Close()
		if err := dt.SerializeFormat(of, format); err != nil {
			return err
		}
		fmt.Printf("imported %d packets into %s\n", len(dt.Packets()), out)
		return nil
	}

	dt, err := trace.ReadFile(in)
	if err != nil {
		return err
	}
	of, err := os.Create(out)
	if err != nil {
		return err
	}
	defer of.Close()
	n, err := pcapio.FromTrace(of, dt, trace.NetCellular, !all)
	if err != nil {
		return err
	}
	fmt.Printf("exported %d packets to %s\n", n, out)
	return nil
}
