// Command gentrace synthesises a study dataset: one METR trace file per
// simulated device, standing in for the paper's proprietary 20-user,
// 623-day capture.
//
// Usage:
//
//	gentrace -out data/ [-users 20] [-days 126] [-seed 20151028] [-ndjson]
//	gentrace -dump-profiles           # write the built-in app profiles as JSON
//	gentrace -out data/ -profiles custom.json
//
// With -ndjson, an .ndjson sidecar is written next to each trace for
// inspection with standard text tools. With -profiles, the app population
// is loaded from a JSON file (see -dump-profiles for the schema) instead
// of the built-in calibrated profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"netenergy/internal/appmodel"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

func main() {
	var (
		out      = flag.String("out", "data", "output directory for .metr trace files")
		users    = flag.Int("users", 20, "number of simulated users/devices")
		days     = flag.Int("days", 126, "study length in days")
		seed     = flag.Uint64("seed", 20151028, "master random seed")
		ndjson   = flag.Bool("ndjson", false, "also write .ndjson sidecars")
		profiles = flag.String("profiles", "", "JSON file defining the app population (default: built-ins)")
		compress = flag.Bool("compress", false, "write DEFLATE-compressed traces (auto-detected on read)")
		format   = flag.String("format", "", "container format: flat, deflate, metr2 or metr3 (default flat; overrides -compress)")
		dump     = flag.Bool("dump-profiles", false, "print the built-in case-study profiles as JSON and exit")
	)
	flag.Parse()

	if *dump {
		if err := appmodel.SaveProfiles(os.Stdout, appmodel.CaseStudies()); err != nil {
			fmt.Fprintln(os.Stderr, "gentrace:", err)
			os.Exit(1)
		}
		return
	}

	cfg := synthgen.Default()
	cfg.Users = *users
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.Compress = *compress
	if *format != "" {
		f, err := trace.ParseFormat(*format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gentrace:", err)
			os.Exit(2)
		}
		cfg.Format = f
	}
	if *profiles != "" {
		f, err := os.Open(*profiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gentrace:", err)
			os.Exit(1)
		}
		ps, err := appmodel.LoadProfiles(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gentrace:", err)
			os.Exit(1)
		}
		cfg.Profiles = ps
		fmt.Fprintf(os.Stderr, "loaded %d profiles from %s\n", len(ps), *profiles)
	}

	fmt.Fprintf(os.Stderr, "generating %d users x %d days into %s (seed %d)\n",
		cfg.Users, cfg.Days, *out, cfg.Seed)
	fleet, err := synthgen.GenerateFleet(cfg, *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gentrace:", err)
		os.Exit(1)
	}
	var total int64
	for _, p := range fleet.Paths {
		st, err := os.Stat(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gentrace:", err)
			os.Exit(1)
		}
		total += st.Size()
		fmt.Printf("%s  %.1f MB\n", p, float64(st.Size())/1e6)
	}
	fmt.Printf("total: %d devices, %.1f MB\n", len(fleet.Paths), float64(total)/1e6)

	if *ndjson {
		err := fleet.EachDevice(func(dt *trace.DeviceTrace) error {
			path := filepath.Join(*out, strings.TrimSuffix(dt.Device, ".metr")+".ndjson")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			return dt.ExportNDJSON(f)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gentrace: ndjson:", err)
			os.Exit(1)
		}
	}
}
