// Command whatif runs the §5 policy simulation: suppress an app's
// background traffic after N consecutive days without foreground use, and
// report the recovered energy — Table 2 plus a threshold sweep.
//
// Usage:
//
//	whatif -data data/                 # Table 2 with the default 3-day kill
//	whatif -data data/ -kill 5         # a different threshold
//	whatif -data data/ -sweep 7        # fleet savings for thresholds 1..7
//	whatif -data data/ -doze           # Android-M-style Doze simulation
//	whatif -gen -users 10 -days 28     # generate in memory first
package main

import (
	"flag"
	"fmt"
	"os"

	"netenergy/internal/core"
	"netenergy/internal/radio"
	"netenergy/internal/report"
	"netenergy/internal/synthgen"
	"netenergy/internal/whatif"
)

func main() {
	var (
		data  = flag.String("data", "", "directory of .metr trace files")
		gen   = flag.Bool("gen", false, "generate the dataset in memory instead of reading -data")
		users = flag.Int("users", 20, "users for -gen")
		days  = flag.Int("days", 126, "days for -gen")
		seed  = flag.Uint64("seed", 20151028, "seed for -gen")
		kill  = flag.Int("kill", 3, "suppress background traffic after this many idle days")
		sweep = flag.Int("sweep", 0, "also sweep thresholds 1..N and print fleet savings")
		doze  = flag.Bool("doze", false, "also simulate an Android-M-style Doze policy")
		cands = flag.Int("candidates", 0, "also list the top N isolation candidates")
	)
	flag.Parse()

	var (
		study *core.Study
		err   error
	)
	if *gen || *data == "" {
		cfg := synthgen.Default()
		cfg.Users = *users
		cfg.Days = *days
		cfg.Seed = *seed
		fmt.Fprintf(os.Stderr, "whatif: generating %d users x %d days in memory\n", *users, *days)
		study, err = core.Run(cfg)
	} else {
		study, err = core.Open(*data)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(1)
	}

	if err := report.WhatIf(os.Stdout, study.Table2(*kill), *kill); err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(1)
	}
	if *sweep > 0 {
		fmt.Println()
		fmt.Println("Threshold sweep (all apps, fleet-wide):")
		rows := [][]string{}
		for _, p := range study.Sweep(*sweep) {
			rows = append(rows, []string{
				fmt.Sprintf("%d days", p.KillAfterDays),
				fmt.Sprintf("%.0f J", p.FleetSavedJ),
				fmt.Sprintf("%.2f%%", p.FleetSavedPct),
			})
		}
		if err := report.Table(os.Stdout, []string{"kill after", "saved", "of fleet"}, rows); err != nil {
			fmt.Fprintln(os.Stderr, "whatif:", err)
			os.Exit(1)
		}
	}
	// Per-user savings distribution (the paper: benefits "depend greatly
	// ... on user behavior").
	savings := whatif.PerUserSavings(study.Devices, *kill)
	if len(savings) > 0 {
		var min, max, sum float64
		min = savings[0]
		for _, v := range savings {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		fmt.Printf("\nper-user total-energy savings at %d days: min %.1f%%, mean %.1f%%, max %.1f%%\n",
			*kill, 100*min, 100*sum/float64(len(savings)), 100*max)
	}

	if *cands > 0 {
		fmt.Println()
		list := whatif.IsolationCandidates(study.Devices, 3, 100)
		if err := report.Candidates(os.Stdout, list, *cands); err != nil {
			fmt.Fprintln(os.Stderr, "whatif:", err)
			os.Exit(1)
		}
	}

	if *doze {
		fmt.Println()
		res := whatif.SimulateDozeFleet(study.Devices, radio.LTE(), whatif.DefaultDoze())
		fmt.Println("Doze simulation (idle 1 h, 10-min maintenance every 6 h):")
		fmt.Printf("  suppressed %d of %d packets\n", res.Suppressed, res.TotalPackets)
		fmt.Printf("  fleet energy %.0f J -> %.0f J (saved %.1f%%)\n",
			res.BaselineJ, res.DozedJ, res.SavedPct)
	}
}
