// Golden end-to-end harness: a fixed-seed fleet is evaluated through BOTH
// pipelines — the batch Study and the streamed ingest server — and every
// headline number, figure series and what-if row is compared against the
// checked-in testdata/golden.json. Any unintended change to generation,
// energy attribution, analysis or the ingest path shows up as a diff here.
//
// Regenerate after an intended change with:
//
//	go test -run TestGolden -update
//
// Integer quantities must match exactly. Floats are compared with a 1e-9
// relative tolerance: the streamed pipeline merges per-device results in
// shard-map iteration order, so the final float sums differ across runs in
// the last bits (addition is not associative), and the batch pipeline is
// kept to the same tolerance for symmetry.
package netenergy_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"netenergy/internal/core"
	"netenergy/internal/energy"
	"netenergy/internal/ingest"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
	"netenergy/internal/tsq"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.json with freshly computed values")

const goldenPath = "testdata/golden.json"

// goldenUsers/goldenDays size the fixed fleet: big enough that every
// artifact is non-degenerate (Chrome transitions exist, Table 2 apps have
// bg-only days), small enough that the test runs in a few seconds.
const (
	goldenUsers = 5
	goldenDays  = 10
)

type goldenTable2Row struct {
	Label                string  `json:"label"`
	Users                int     `json:"users"`
	PctBgOnlyDays        float64 `json:"pct_bg_only_days"`
	MaxConsecutiveBgDays int     `json:"max_consecutive_bg_days"`
	AvgReductionPct      float64 `json:"avg_energy_reduction_pct"`
	FleetReductionPct    float64 `json:"fleet_energy_reduction_pct"`
}

type goldenBatch struct {
	TotalEnergyJ        float64 `json:"total_energy_j"`
	BackgroundFraction  float64 `json:"background_fraction"`
	PerceptibleFraction float64 `json:"perceptible_fraction"`
	ServiceFraction     float64 `json:"service_fraction"`
	FirstMinuteFraction float64 `json:"first_minute_fraction"`

	Fig4Found   bool      `json:"fig4_found"`
	Fig4Offsets []float64 `json:"fig4_offsets"`
	Fig4Bytes   []float64 `json:"fig4_bytes"`

	Fig5Transitions int     `json:"fig5_transitions"`
	Fig5P50         float64 `json:"fig5_p50"`
	Fig5P90         float64 `json:"fig5_p90"`
	Fig5P99         float64 `json:"fig5_p99"`

	Fig6FirstMinute  float64   `json:"fig6_first_minute"`
	Fig6Spike5m      float64   `json:"fig6_spike_5m"`
	Fig6Spike10m     float64   `json:"fig6_spike_10m"`
	Fig6TotalBgBytes float64   `json:"fig6_total_bg_bytes"`
	Fig6Bytes        []float64 `json:"fig6_bytes"`

	Table2 []goldenTable2Row `json:"table2"`
}

type goldenStream struct {
	Devices             int     `json:"devices"`
	Records             int64   `json:"records"`
	TotalEnergyJ        float64 `json:"total_energy_j"`
	BackgroundFraction  float64 `json:"background_fraction"`
	FirstMinuteFraction float64 `json:"first_minute_fraction"`
	Fig6FirstMinute     float64 `json:"fig6_first_minute"`
	Fig6Spike5m         float64 `json:"fig6_spike_5m"`
	Fig6Spike10m        float64 `json:"fig6_spike_10m"`
	ScreenOffByteShare  float64 `json:"screen_off_byte_share"`
}

// goldenQuery pins the tsq engine's answer over the same fixed-seed
// fleet written to METR-3 segment files: whole-span totals, the top-app
// ranking, and a narrow sub-window that must exercise block pushdown.
type goldenQuery struct {
	Records      int64        `json:"records"`
	Devices      int          `json:"devices"`
	TotalEnergyJ float64      `json:"total_energy_j"`
	TotalBytes   int64        `json:"total_bytes"`
	TopApps      []tsq.AppRow `json:"top_apps"`
	HourWindows  int          `json:"hour_windows"`
	SubRecords   int64        `json:"sub_records"`
	SubEnergyJ   float64      `json:"sub_energy_j"`
}

type goldenFile struct {
	Users  int          `json:"users"`
	Days   int          `json:"days"`
	Seed   uint64       `json:"seed"`
	Batch  goldenBatch  `json:"batch"`
	Stream goldenStream `json:"stream"`
	Query  goldenQuery  `json:"query"`
}

func computeGoldenBatch(t *testing.T, cfg synthgen.Config) goldenBatch {
	t.Helper()
	study, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := study.Headline()
	var g goldenBatch
	g.TotalEnergyJ = h.TotalEnergyJ
	g.BackgroundFraction = h.BackgroundFraction
	g.PerceptibleFraction = h.PerceptibleFraction
	g.ServiceFraction = h.ServiceFraction
	g.FirstMinuteFraction = h.FirstMinute.Fraction

	if tl, ok := study.Fig4(); ok {
		g.Fig4Found = true
		g.Fig4Offsets = tl.Offsets
		g.Fig4Bytes = tl.Bytes
	}
	f5 := study.Fig5()
	g.Fig5Transitions = len(f5.Durations)
	g.Fig5P50 = f5.CDF.Quantile(0.50)
	g.Fig5P90 = f5.CDF.Quantile(0.90)
	g.Fig5P99 = f5.CDF.Quantile(0.99)

	f6 := study.Fig6()
	g.Fig6FirstMinute = f6.FirstMinute
	g.Fig6Spike5m = f6.Spike5m
	g.Fig6Spike10m = f6.Spike10m
	g.Fig6TotalBgBytes = f6.TotalBgBytes
	g.Fig6Bytes = f6.Bytes

	for _, row := range study.Table2(3) {
		g.Table2 = append(g.Table2, goldenTable2Row{
			Label:                row.Label,
			Users:                row.Users,
			PctBgOnlyDays:        row.PctBgOnlyDays,
			MaxConsecutiveBgDays: row.MaxConsecutiveBgDays,
			AvgReductionPct:      row.AvgEnergyReductionPct,
			FleetReductionPct:    row.FleetEnergyReductionPct,
		})
	}
	return g
}

// computeGoldenStream delivers the same fleet through a real in-process
// ingest server — TCP, framing, sharding, drain — and evaluates the live
// headline over the drained result.
func computeGoldenStream(t *testing.T, cfg synthgen.Config) goldenStream {
	t.Helper()
	srv := ingest.NewServer(ingest.Config{Addr: "127.0.0.1:0", Shards: 4, QueueDepth: 64, BatchSize: 64})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	fleet := synthgen.GenerateInMemory(cfg)
	var want int64
	var wg sync.WaitGroup
	for _, dt := range fleet {
		want += int64(len(dt.Records))
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := ingest.StreamTrace(ingest.SessionConfig{
				Addr:   srv.Addr().String(),
				Device: dt.Device,
				Start:  dt.Start,
			}, dt.Records)
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := srv.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats(false)
	if st.Records != want {
		t.Fatalf("stream accepted %d records, sent %d", st.Records, want)
	}
	h := ingest.HeadlineOf(res, st.Devices, st.Records)
	return goldenStream{
		Devices:             h.Devices,
		Records:             h.Records,
		TotalEnergyJ:        h.TotalEnergyJ,
		BackgroundFraction:  h.BackgroundFraction,
		FirstMinuteFraction: h.FirstMinuteFraction,
		Fig6FirstMinute:     h.Fig6FirstMinute,
		Fig6Spike5m:         h.Fig6Spike5m,
		Fig6Spike10m:        h.Fig6Spike10m,
		ScreenOffByteShare:  h.ScreenOffByteShare,
	}
}

// computeGoldenQuery writes the fleet to per-device METR-3 segment files
// and runs the tsq engine over them offline — the same code path the
// ingestd /query endpoint and the tsq CLI use.
func computeGoldenQuery(t *testing.T, cfg synthgen.Config) goldenQuery {
	t.Helper()
	mem := synthgen.GenerateInMemory(cfg)
	dir := t.TempDir()
	minTS := trace.Timestamp(math.MaxInt64)
	var maxTS trace.Timestamp
	for _, dt := range mem {
		for i := range dt.Records {
			if dt.Records[i].TS < minTS {
				minTS = dt.Records[i].TS
			}
			if dt.Records[i].TS > maxTS {
				maxTS = dt.Records[i].TS
			}
		}
		f, err := os.Create(filepath.Join(dir, dt.Device+"-000000.metr3"))
		if err != nil {
			t.Fatal(err)
		}
		w, err := trace.NewColumnWriter(f, dt.Device, dt.Start)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dt.Records {
			if err := w.Write(&dt.Records[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	eng := tsq.Engine{Opts: energy.DefaultOptions()}
	hour := trace.Timestamp(time.Hour / time.Microsecond)
	// Totals come from the unwindowed query: windowed results restart the
	// radio accountant at each window edge (per-window restricted-run
	// semantics), so their sum differs from the whole-trace total by the
	// energy of radio tails cut at window boundaries.
	full, err := eng.QueryDir(dir, tsq.Query{From: minTS, To: maxTS + 1, TopN: 5})
	if err != nil {
		t.Fatal(err)
	}
	win, err := eng.QueryDir(dir, tsq.Query{From: minTS, To: maxTS + 1, Window: hour})
	if err != nil {
		t.Fatal(err)
	}
	// A six-hour slice from the middle of the span must prune blocks via
	// the per-block firstTS/lastTS seek index.
	span := maxTS + 1 - minTS
	sub, err := eng.QueryDir(dir, tsq.Query{From: minTS + span/4, To: minTS + span/4 + 6*hour})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Scan.BlocksSkipped == 0 {
		t.Errorf("sub-window query skipped no blocks: %+v", sub.Scan)
	}
	return goldenQuery{
		Records:      full.Records,
		Devices:      full.Devices,
		TotalEnergyJ: full.TotalEnergyJ,
		TotalBytes:   full.TotalBytes,
		TopApps:      full.Apps,
		HourWindows:  len(win.Windows),
		SubRecords:   sub.Records,
		SubEnergyJ:   sub.TotalEnergyJ,
	}
}

func TestGolden(t *testing.T) {
	cfg := synthgen.Small(goldenUsers, goldenDays)
	got := goldenFile{
		Users:  goldenUsers,
		Days:   goldenDays,
		Seed:   cfg.Seed,
		Batch:  computeGoldenBatch(t, cfg),
		Stream: computeGoldenStream(t, cfg),
		Query:  computeGoldenQuery(t, cfg),
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update` to create it)", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if want.Users != got.Users || want.Days != got.Days || want.Seed != got.Seed {
		t.Fatalf("golden fleet config drifted: file has %d users x %d days seed %d, test uses %d x %d seed %d — regenerate with -update",
			want.Users, want.Days, want.Seed, got.Users, got.Days, got.Seed)
	}

	cmp := newGoldenCmp(t)
	b, wb := got.Batch, want.Batch
	cmp.float("batch.total_energy_j", b.TotalEnergyJ, wb.TotalEnergyJ)
	cmp.float("batch.background_fraction", b.BackgroundFraction, wb.BackgroundFraction)
	cmp.float("batch.perceptible_fraction", b.PerceptibleFraction, wb.PerceptibleFraction)
	cmp.float("batch.service_fraction", b.ServiceFraction, wb.ServiceFraction)
	cmp.float("batch.first_minute_fraction", b.FirstMinuteFraction, wb.FirstMinuteFraction)
	if b.Fig4Found != wb.Fig4Found {
		t.Errorf("fig4 found = %v, golden %v", b.Fig4Found, wb.Fig4Found)
	}
	cmp.floats("batch.fig4_offsets", b.Fig4Offsets, wb.Fig4Offsets)
	cmp.floats("batch.fig4_bytes", b.Fig4Bytes, wb.Fig4Bytes)
	cmp.ints("batch.fig5_transitions", int64(b.Fig5Transitions), int64(wb.Fig5Transitions))
	cmp.float("batch.fig5_p50", b.Fig5P50, wb.Fig5P50)
	cmp.float("batch.fig5_p90", b.Fig5P90, wb.Fig5P90)
	cmp.float("batch.fig5_p99", b.Fig5P99, wb.Fig5P99)
	cmp.float("batch.fig6_first_minute", b.Fig6FirstMinute, wb.Fig6FirstMinute)
	cmp.float("batch.fig6_spike_5m", b.Fig6Spike5m, wb.Fig6Spike5m)
	cmp.float("batch.fig6_spike_10m", b.Fig6Spike10m, wb.Fig6Spike10m)
	cmp.float("batch.fig6_total_bg_bytes", b.Fig6TotalBgBytes, wb.Fig6TotalBgBytes)
	cmp.floats("batch.fig6_bytes", b.Fig6Bytes, wb.Fig6Bytes)
	if len(b.Table2) != len(wb.Table2) {
		t.Fatalf("table2 rows = %d, golden %d", len(b.Table2), len(wb.Table2))
	}
	for i := range b.Table2 {
		r, wr := b.Table2[i], wb.Table2[i]
		pfx := fmt.Sprintf("batch.table2[%s]", wr.Label)
		if r.Label != wr.Label {
			t.Errorf("%s: label %q", pfx, r.Label)
		}
		cmp.ints(pfx+".users", int64(r.Users), int64(wr.Users))
		cmp.ints(pfx+".max_consecutive", int64(r.MaxConsecutiveBgDays), int64(wr.MaxConsecutiveBgDays))
		cmp.float(pfx+".pct_bg_only_days", r.PctBgOnlyDays, wr.PctBgOnlyDays)
		cmp.float(pfx+".avg_reduction", r.AvgReductionPct, wr.AvgReductionPct)
		cmp.float(pfx+".fleet_reduction", r.FleetReductionPct, wr.FleetReductionPct)
	}

	s, ws := got.Stream, want.Stream
	cmp.ints("stream.devices", int64(s.Devices), int64(ws.Devices))
	cmp.ints("stream.records", s.Records, ws.Records)
	cmp.float("stream.total_energy_j", s.TotalEnergyJ, ws.TotalEnergyJ)
	cmp.float("stream.background_fraction", s.BackgroundFraction, ws.BackgroundFraction)
	cmp.float("stream.first_minute_fraction", s.FirstMinuteFraction, ws.FirstMinuteFraction)
	cmp.float("stream.fig6_first_minute", s.Fig6FirstMinute, ws.Fig6FirstMinute)
	cmp.float("stream.fig6_spike_5m", s.Fig6Spike5m, ws.Fig6Spike5m)
	cmp.float("stream.fig6_spike_10m", s.Fig6Spike10m, ws.Fig6Spike10m)
	cmp.float("stream.screen_off_byte_share", s.ScreenOffByteShare, ws.ScreenOffByteShare)

	qr, wq := got.Query, want.Query
	cmp.ints("query.records", qr.Records, wq.Records)
	cmp.ints("query.devices", int64(qr.Devices), int64(wq.Devices))
	cmp.float("query.total_energy_j", qr.TotalEnergyJ, wq.TotalEnergyJ)
	cmp.ints("query.total_bytes", qr.TotalBytes, wq.TotalBytes)
	cmp.ints("query.hour_windows", int64(qr.HourWindows), int64(wq.HourWindows))
	cmp.ints("query.sub_records", qr.SubRecords, wq.SubRecords)
	cmp.float("query.sub_energy_j", qr.SubEnergyJ, wq.SubEnergyJ)
	if len(qr.TopApps) != len(wq.TopApps) {
		t.Fatalf("query.top_apps rows = %d, golden %d", len(qr.TopApps), len(wq.TopApps))
	}
	for i := range qr.TopApps {
		pfx := fmt.Sprintf("query.top_apps[%d]", i)
		cmp.ints(pfx+".app", int64(qr.TopApps[i].App), int64(wq.TopApps[i].App))
		if qr.TopApps[i].Name != wq.TopApps[i].Name {
			t.Errorf("%s.name = %q, golden %q", pfx, qr.TopApps[i].Name, wq.TopApps[i].Name)
		}
		cmp.float(pfx+".energy_j", qr.TopApps[i].EnergyJ, wq.TopApps[i].EnergyJ)
		cmp.ints(pfx+".bytes", qr.TopApps[i].Bytes, wq.TopApps[i].Bytes)
	}

	// The pipelines must agree with each other, not just with the file:
	// batch Study, streamed ingest, and the segment query engine all
	// attribute the same total over the same fleet.
	cmp.float("batch-vs-stream total_energy_j", got.Batch.TotalEnergyJ, got.Stream.TotalEnergyJ)
	cmp.float("batch-vs-stream background_fraction", got.Batch.BackgroundFraction, got.Stream.BackgroundFraction)
	cmp.float("query-vs-batch total_energy_j", got.Query.TotalEnergyJ, got.Batch.TotalEnergyJ)
}

// TestGoldenMETR2 routes the same fixed-seed fleet through the blocked
// METR-2 container on disk: every record must survive the round trip
// bit-identically, and a Study opened with block-parallel decoding must
// reproduce the golden batch headline. This pins the new container to the
// same end-to-end contract as the original flat path.
func TestGoldenMETR2(t *testing.T) {
	cfg := synthgen.Small(goldenUsers, goldenDays)
	cfg.Format = trace.FormatBlocked
	dir := t.TempDir()
	fleet, err := synthgen.GenerateFleet(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	mem := synthgen.GenerateInMemory(cfg)
	if len(fleet.Paths) != len(mem) {
		t.Fatalf("fleet has %d files, generated %d devices", len(fleet.Paths), len(mem))
	}
	for i, path := range fleet.Paths {
		if f, err := trace.DetectFileFormat(path); err != nil || f != trace.FormatBlocked {
			t.Fatalf("%s: format %v, err %v", path, f, err)
		}
		got, err := trace.ReadFileParallel(path, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := mem[i]
		if got.Device != want.Device || len(got.Records) != len(want.Records) {
			t.Fatalf("%s: device %q records %d, want %q %d",
				path, got.Device, len(got.Records), want.Device, len(want.Records))
		}
		for j := range want.Records {
			a, b := &want.Records[j], &got.Records[j]
			if a.Type != b.Type || a.TS != b.TS || a.App != b.App || a.Dir != b.Dir ||
				a.Net != b.Net || a.State != b.State || a.ScreenOn != b.ScreenOn ||
				a.AppName != b.AppName || !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("%s: record %d differs after METR-2 round trip", path, j)
			}
		}
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Skipf("no golden file: %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	study, err := core.OpenParallel(dir, 16) // 16 > 5 files: intra-file block parallelism
	if err != nil {
		t.Fatal(err)
	}
	h := study.Headline()
	cmp := newGoldenCmp(t)
	cmp.float("metr2.total_energy_j", h.TotalEnergyJ, want.Batch.TotalEnergyJ)
	cmp.float("metr2.background_fraction", h.BackgroundFraction, want.Batch.BackgroundFraction)
	cmp.float("metr2.first_minute_fraction", h.FirstMinute.Fraction, want.Batch.FirstMinuteFraction)
}

// TestGoldenMETR3 routes the same fixed-seed fleet through the columnar
// METR-3 container on disk: every record must survive the round trip
// bit-identically, and a Study opened with block-parallel columnar
// decoding must reproduce the golden batch headline — the end-to-end
// contract the row formats already carry, now pinned to the column codec.
func TestGoldenMETR3(t *testing.T) {
	cfg := synthgen.Small(goldenUsers, goldenDays)
	cfg.Format = trace.FormatColumnar
	dir := t.TempDir()
	fleet, err := synthgen.GenerateFleet(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	mem := synthgen.GenerateInMemory(cfg)
	if len(fleet.Paths) != len(mem) {
		t.Fatalf("fleet has %d files, generated %d devices", len(fleet.Paths), len(mem))
	}
	for i, path := range fleet.Paths {
		if f, err := trace.DetectFileFormat(path); err != nil || f != trace.FormatColumnar {
			t.Fatalf("%s: format %v, err %v", path, f, err)
		}
		got, err := trace.ReadFileParallel(path, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := mem[i]
		if got.Device != want.Device || len(got.Records) != len(want.Records) {
			t.Fatalf("%s: device %q records %d, want %q %d",
				path, got.Device, len(got.Records), want.Device, len(want.Records))
		}
		for j := range want.Records {
			a, b := &want.Records[j], &got.Records[j]
			if a.Type != b.Type || a.TS != b.TS || a.App != b.App || a.Dir != b.Dir ||
				a.Net != b.Net || a.State != b.State || a.ScreenOn != b.ScreenOn ||
				a.AppName != b.AppName || !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("%s: record %d differs after METR-3 round trip", path, j)
			}
		}
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Skipf("no golden file: %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	study, err := core.OpenParallel(dir, 16) // 16 > 5 files: intra-file block parallelism
	if err != nil {
		t.Fatal(err)
	}
	h := study.Headline()
	cmp := newGoldenCmp(t)
	cmp.float("metr3.total_energy_j", h.TotalEnergyJ, want.Batch.TotalEnergyJ)
	cmp.float("metr3.background_fraction", h.BackgroundFraction, want.Batch.BackgroundFraction)
	cmp.float("metr3.first_minute_fraction", h.FirstMinute.Fraction, want.Batch.FirstMinuteFraction)
}

// goldenCmp compares quantities with a relative float tolerance and exact
// integers, reporting every mismatch by name.
type goldenCmp struct{ t *testing.T }

func newGoldenCmp(t *testing.T) goldenCmp { return goldenCmp{t} }

const goldenRelTol = 1e-9

func (c goldenCmp) float(name string, got, want float64) {
	c.t.Helper()
	if got == want {
		return
	}
	diff := math.Abs(got - want)
	scale := math.Max(math.Abs(got), math.Abs(want))
	if diff > goldenRelTol*scale+1e-12 {
		c.t.Errorf("%s = %v, golden %v (diff %g)", name, got, want, diff)
	}
}

func (c goldenCmp) floats(name string, got, want []float64) {
	c.t.Helper()
	if len(got) != len(want) {
		c.t.Errorf("%s: length %d, golden %d", name, len(got), len(want))
		return
	}
	for i := range got {
		c.float(fmt.Sprintf("%s[%d]", name, i), got[i], want[i])
	}
}

func (c goldenCmp) ints(name string, got, want int64) {
	c.t.Helper()
	if got != want {
		c.t.Errorf("%s = %d, golden %d", name, got, want)
	}
}
