package netenergy_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"netenergy"
)

func TestFacadeRun(t *testing.T) {
	study, err := netenergy.Run(netenergy.SmallConfig(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	h := study.Headline()
	if h.TotalEnergyJ <= 0 {
		t.Error("no energy")
	}
	var buf bytes.Buffer
	if err := netenergy.WriteReport(study, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("report missing Table 1")
	}
}

func TestFacadeGenerateAndOpen(t *testing.T) {
	dir := t.TempDir()
	if err := netenergy.GenerateFleet(netenergy.SmallConfig(2, 2), dir); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.metr"))
	if err != nil || len(files) != 2 {
		t.Fatalf("fleet files: %v %v", files, err)
	}
	study, err := netenergy.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := study.Headline().TotalEnergyJ; got <= 0 {
		t.Errorf("energy = %v", got)
	}
}

func TestDefaultConfigShape(t *testing.T) {
	cfg := netenergy.DefaultConfig()
	if cfg.Users != 20 || cfg.Days != 126 {
		t.Errorf("default config = %+v", cfg)
	}
	small := netenergy.SmallConfig(3, 4)
	if small.Users != 3 || small.Days != 4 {
		t.Errorf("small config = %+v", small)
	}
	if small.Seed != cfg.Seed {
		t.Error("small config should inherit the default seed")
	}
}
