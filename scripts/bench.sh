#!/usr/bin/env bash
# Benchmark suite runner: executes the hot-path benchmarks (wire protocol,
# shard apply, streaming analyzer, checkpoint store, obs primitives, e2e
# ingest, durable-FIN session pair, handoff retry, tsq query engine) and
# records the results
# as BENCH_<date>.json in the repo root — including the derived
# durable_fin_overhead_pct (price of -durable-fin per session) and
# handoff_retry_total (retries per shipped handoff under a flaky survivor).
#
# The apply pair (BenchmarkApplyInstrumented vs BenchmarkApplyBare) is the
# instrumentation budget check from DESIGN.md: the instrumented shard apply
# path must stay within 3% of the bare baseline and allocate nothing. Each
# benchmark runs COUNT times and the fastest run is recorded, which damps
# scheduler noise on shared machines.
#
# After writing the new JSON the script compares it against the most
# recent previous BENCH_*.json and fails on a >15% regression in the apply
# budget pair (ns_per_op), any decode throughput (decode_mbps) metric,
# the aggregator merge cycle (aggregate_merge_ms), or the tsq windowed
# query latency (query_p50_ms), so a slow decoder, a merge that goes
# quadratic in devices, or a query plan that stops pruning blocks can't
# land silently. -no-compare skips that gate (first run on a new machine,
# or a deliberate trade-off).
#
# Usage: scripts/bench.sh [-no-compare] [out.json]
#   BENCHTIME=2s COUNT=5 scripts/bench.sh   # longer, steadier runs
set -euo pipefail
cd "$(dirname "$0")/.."

COMPARE=1
OUT=""
for arg in "$@"; do
  case "$arg" in
    -no-compare) COMPARE=0 ;;
    *) OUT=$arg ;;
  esac
done
OUT=${OUT:-BENCH_$(date +%F).json}
BENCHTIME=${BENCHTIME:-1s}
COUNT=${COUNT:-3}
RAW=$(mktemp)
PREV=$(mktemp)
trap 'rm -f "$RAW" "$PREV"' EXIT

# Snapshot the newest previous run before $OUT overwrites it (same-day
# reruns share the file name).
PREV_NAME=""
for f in $(ls -1t BENCH_*.json 2>/dev/null); do
  PREV_NAME=$f
  cp "$f" "$PREV"
  break
done

echo "bench: hot-path packages (benchtime=$BENCHTIME count=$COUNT)" >&2
go test -run '^$' -bench . -benchmem -benchtime="$BENCHTIME" -count="$COUNT" \
  ./internal/obs/ ./internal/ingest/ ./internal/analysis/ | tee "$RAW" >&2

# The apply pair gets extra, longer samples: the overhead being measured
# (~150ns per 20µs batch) is well under run-to-run scheduler jitter, so the
# budget check needs many runs and takes the fastest of each. On a noisy
# (single-core, shared) machine even that flakes, so an over-budget
# estimate triggers resampling: samples accumulate across attempts and
# the fastest-of estimate only improves, so a genuine regression still
# fails after APPLY_ATTEMPTS rounds.
APPLY_BENCHTIME=${APPLY_BENCHTIME:-2s}
APPLY_COUNT=${APPLY_COUNT:-5}
APPLY_ATTEMPTS=${APPLY_ATTEMPTS:-3}
attempt=1
while :; do
  echo "bench: apply budget pair (benchtime=$APPLY_BENCHTIME count=$APPLY_COUNT attempt=$attempt/$APPLY_ATTEMPTS)" >&2
  go test -run '^$' -bench 'BenchmarkApply(Instrumented|Bare)$' -benchmem \
    -benchtime="$APPLY_BENCHTIME" -count="$APPLY_COUNT" ./internal/ingest/ | tee -a "$RAW" >&2
  est=$(awk '
    /^BenchmarkApply(Instrumented|Bare)/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      ns = ""
      for (i = 3; i < NF; i++) if ($(i+1) == "ns/op") ns = $i
      if (ns != "" && (!(name in best) || ns + 0 < best[name] + 0)) best[name] = ns
    }
    END {
      b = best["BenchmarkApplyBare"]; ins = best["BenchmarkApplyInstrumented"]
      if (b + 0 > 0 && ins != "") printf "%.2f", 100 * (ins - b) / b
    }' "$RAW")
  if [ -z "$est" ] || awk -v p="$est" 'BEGIN { exit (p + 0 <= 3.0 ? 0 : 1) }'; then
    break
  fi
  if [ "$attempt" -ge "$APPLY_ATTEMPTS" ]; then
    break
  fi
  echo "bench: apply overhead estimate ${est}% over budget — resampling" >&2
  attempt=$((attempt + 1))
done

# Container decode throughput: the v1 readers vs blocked METR-2, serial
# and block-parallel. Each reports decode_mbps (flat-container MB of the
# same logical records decoded per second), so the formats are directly
# comparable; the fixture is ~50 MB, so a few fixed iterations beat a
# time-based budget here.
TRACE_BENCHTIME=${TRACE_BENCHTIME:-3x}
TRACE_COUNT=${TRACE_COUNT:-3}
echo "bench: trace container decode (benchtime=$TRACE_BENCHTIME count=$TRACE_COUNT)" >&2
go test -run '^$' -bench 'BenchmarkDecode' -benchmem \
  -benchtime="$TRACE_BENCHTIME" -count="$TRACE_COUNT" ./internal/trace/ | tee -a "$RAW" >&2

# Durable FIN cost pair: identical session workloads with the FIN-ack
# checkpoint commit on and off. Fixed iterations: each op is 8 concurrent
# real TCP sessions ending in a (possibly fsynced) FIN commit, so a
# time-based budget would wildly vary b.N between the two variants.
FIN_BENCHTIME=${FIN_BENCHTIME:-30x}
echo "bench: durable FIN pair (benchtime=$FIN_BENCHTIME count=$COUNT)" >&2
go test -run '^$' -bench 'BenchmarkFin(Durable|Volatile)$' -benchmem \
  -benchtime="$FIN_BENCHTIME" -count="$COUNT" ./internal/ingest/ | tee -a "$RAW" >&2

# Dead-member handoff with a flaky survivor: each op ships a checkpoint
# through one 503-then-succeed retry; handoff_retry_total records retries
# per shipped handoff.
echo "bench: checkpoint handoff retry (benchtime=5x count=$COUNT)" >&2
go test -run '^$' -bench 'BenchmarkShipCheckpointRetry$' -benchmem \
  -benchtime=5x -count="$COUNT" ./internal/cluster/ | tee -a "$RAW" >&2

# Fleet merge cycle: aggregatord's pull-and-merge loop against three
# in-process nodes. Reports aggregate_merge_ms (wall time of one full
# cycle), which bounds fleet-headline staleness at a given pull interval;
# iteration-counted because each cycle does real HTTP round trips.
MERGE_BENCHTIME=${MERGE_BENCHTIME:-5x}
echo "bench: aggregator merge cycle (benchtime=$MERGE_BENCHTIME count=$COUNT)" >&2
go test -run '^$' -bench 'BenchmarkAggregateMerge' -benchmem \
  -benchtime="$MERGE_BENCHTIME" -count="$COUNT" ./internal/cluster/ | tee -a "$RAW" >&2

# Time-series query engine: a whole-span hour-windowed top-N query over a
# fixed on-disk segment fixture (reports query_p50_ms), plus the narrow
# pushdown query that asserts blocks actually get pruned. Iteration-
# counted: each op re-reads real files.
TSQ_BENCHTIME=${TSQ_BENCHTIME:-5x}
echo "bench: tsq query engine (benchtime=$TSQ_BENCHTIME count=$COUNT)" >&2
go test -run '^$' -bench 'BenchmarkQuery' -benchmem \
  -benchtime="$TSQ_BENCHTIME" -count="$COUNT" ./internal/tsq/ | tee -a "$RAW" >&2

echo "bench: paper-artifact benchmarks (1 iteration each)" >&2
go test -run '^$' -bench . -benchmem -benchtime=1x . | tee -a "$RAW" >&2

# Record the static-analysis suite's wall time alongside the runtime
# numbers: repolint loads and type-checks the whole module, so an analyzer
# that goes quadratic shows up here before it starts dragging `make ci`.
echo "bench: repolint wall time (full module, standalone)" >&2
mkdir -p bin
go build -o bin/repolint ./cmd/repolint
t0=$(date +%s.%N)
./bin/repolint ./...
t1=$(date +%s.%N)
REPOLINT_SECONDS=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')
echo "bench: repolint ./... took ${REPOLINT_SECONDS}s" >&2

awk -v date="$(date +%F)" -v gover="$(go version | awk '{print $3}')" \
    -v repolint_s="$REPOLINT_SECONDS" '
BEGIN { n = 0 }
/^pkg: / { pkg = $2 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
  ns = ""; bop = ""; aop = ""; extra_k = ""; extra_v = ""; mbps = ""; merge_ms = ""
  fin_ms = ""; retry = ""; qp50 = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    else if ($(i+1) == "B/op") bop = $i
    else if ($(i+1) == "allocs/op") aop = $i
    else if ($(i+1) == "decode_mbps") mbps = $i
    else if ($(i+1) == "aggregate_merge_ms") merge_ms = $i
    else if ($(i+1) == "fin_session_ms") fin_ms = $i
    else if ($(i+1) == "handoff_retry_total") retry = $i
    else if ($(i+1) == "query_p50_ms") qp50 = $i
    else if ($(i+1) ~ /\//) { extra_k = $(i+1); extra_v = $i }
  }
  if (ns == "") next
  key = pkg "\t" name
  if (!(key in best) || ns + 0 < best[key] + 0) {
    best[key] = ns
    line = sprintf("    {\"package\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %s", pkg, name, ns)
    if (bop != "") line = line sprintf(", \"bytes_per_op\": %s", bop)
    if (aop != "") line = line sprintf(", \"allocs_per_op\": %s", aop)
    if (mbps != "") line = line sprintf(", \"decode_mbps\": %s", mbps)
    if (merge_ms != "") line = line sprintf(", \"aggregate_merge_ms\": %s", merge_ms)
    if (fin_ms != "") line = line sprintf(", \"fin_session_ms\": %s", fin_ms)
    if (retry != "") line = line sprintf(", \"handoff_retry_total\": %s", retry)
    if (qp50 != "") line = line sprintf(", \"query_p50_ms\": %s", qp50)
    if (extra_k != "") line = line sprintf(", \"%s\": %s", extra_k, extra_v)
    line = line "}"
    out[key] = line
    if (!(key in seen)) { order[n++] = key; seen[key] = 1 }
  }
  if (name == "BenchmarkApplyInstrumented") instr = best[key]
  if (name == "BenchmarkApplyBare") bare = best[key]
  if (name == "BenchmarkFinDurable") fin_dur = best[key]
  if (name == "BenchmarkFinVolatile") fin_vol = best[key]
}
END {
  printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n", date, gover
  if (repolint_s != "") printf "  \"repolint_seconds\": %s,\n", repolint_s
  if (bare + 0 > 0) {
    pct = 100 * (instr - bare) / bare
    if (pct < 0) pct = 0
    printf "  \"apply_instrumentation_overhead_pct\": %.2f,\n", pct
    printf "  \"apply_overhead_budget_pct\": 3.0,\n"
  }
  # The -durable-fin cost: extra per-session latency of the FIN-ack group
  # commit, as a percentage of the volatile session. Dominated by fsync, so
  # it is an absolute-latency trade (see fin_session_ms), not a throughput
  # budget like the apply pair.
  if (fin_vol + 0 > 0 && fin_dur != "") {
    pct = 100 * (fin_dur - fin_vol) / fin_vol
    if (pct < 0) pct = 0
    printf "  \"durable_fin_overhead_pct\": %.2f,\n", pct
  }
  printf "  \"benchmarks\": [\n"
  for (i = 0; i < n; i++) printf "%s%s\n", out[order[i]], (i < n - 1 ? "," : "")
  printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "bench: wrote $OUT" >&2

# Enforce the instrumentation budget recorded above.
pct=$(awk -F'[:,]' '/apply_instrumentation_overhead_pct/ {print $2}' "$OUT" | tr -d ' ')
if [ -n "$pct" ]; then
  awk -v p="$pct" 'BEGIN { exit (p + 0 <= 3.0 ? 0 : 1) }' || {
    echo "bench: FAIL apply instrumentation overhead ${pct}% exceeds 3% budget" >&2
    exit 1
  }
  echo "bench: apply instrumentation overhead ${pct}% (budget 3%)" >&2
fi

# Trajectory gate: compare against the previous run. The apply pair may
# not get >15% slower (ns_per_op up), no decode throughput may drop >15%
# (decode_mbps down), the aggregator merge cycle may not stretch >15%
# (aggregate_merge_ms up), and the static-analysis suite may not slow >15%
# (repolint_seconds up — new analyzers must pay for themselves with
# parallelism); metrics absent from either side are skipped, so the first
# run that introduces a benchmark just records its baseline.
if [ "$COMPARE" = 1 ] && [ -n "$PREV_NAME" ]; then
  echo "bench: comparing against $PREV_NAME (fail on >15% regression; -no-compare skips)" >&2
  awk '
  function metric(line, key,   m) {
    if (match(line, "\"" key "\": [0-9.]+")) {
      m = substr(line, RSTART, RLENGTH)
      sub("\"" key "\": ", "", m)
      return m
    }
    return ""
  }
  /"name": / {
    if (!match($0, /"name": "[^"]+"/)) next
    name = substr($0, RSTART + 9, RLENGTH - 10)
    if (FNR == NR) {
      old_ns[name] = metric($0, "ns_per_op")
      old_mbps[name] = metric($0, "decode_mbps")
      old_merge[name] = metric($0, "aggregate_merge_ms")
      old_qp50[name] = metric($0, "query_p50_ms")
      next
    }
    ns = metric($0, "ns_per_op"); mbps = metric($0, "decode_mbps")
    merge = metric($0, "aggregate_merge_ms")
    qp50 = metric($0, "query_p50_ms")
    if (name ~ /^BenchmarkApply(Instrumented|Bare)$/ && ns != "" && old_ns[name] != "" && old_ns[name] + 0 > 0) {
      pct = 100 * (ns - old_ns[name]) / old_ns[name]
      printf "bench: %s ns_per_op %s -> %s (%+.1f%%)\n", name, old_ns[name], ns, pct > "/dev/stderr"
      if (pct > 15) { printf "bench: FAIL %s regressed %.1f%% (>15%%)\n", name, pct > "/dev/stderr"; bad = 1 }
    }
    if (mbps != "" && old_mbps[name] != "" && old_mbps[name] + 0 > 0) {
      pct = 100 * (old_mbps[name] - mbps) / old_mbps[name]
      printf "bench: %s decode_mbps %s -> %s (%+.1f%% throughput)\n", name, old_mbps[name], mbps, -pct > "/dev/stderr"
      if (pct > 15) { printf "bench: FAIL %s decode throughput fell %.1f%% (>15%%)\n", name, pct > "/dev/stderr"; bad = 1 }
    }
    if (merge != "" && old_merge[name] != "" && old_merge[name] + 0 > 0) {
      pct = 100 * (merge - old_merge[name]) / old_merge[name]
      printf "bench: %s aggregate_merge_ms %s -> %s (%+.1f%%)\n", name, old_merge[name], merge, pct > "/dev/stderr"
      if (pct > 15) { printf "bench: FAIL %s merge cycle stretched %.1f%% (>15%%)\n", name, pct > "/dev/stderr"; bad = 1 }
    }
    if (qp50 != "" && old_qp50[name] != "" && old_qp50[name] + 0 > 0) {
      pct = 100 * (qp50 - old_qp50[name]) / old_qp50[name]
      printf "bench: %s query_p50_ms %s -> %s (%+.1f%%)\n", name, old_qp50[name], qp50, pct > "/dev/stderr"
      if (pct > 15) { printf "bench: FAIL %s query latency stretched %.1f%% (>15%%)\n", name, pct > "/dev/stderr"; bad = 1 }
    }
  }
  END { exit bad ? 1 : 0 }
  ' "$PREV" "$OUT" || { echo "bench: FAIL regression vs $PREV_NAME" >&2; exit 1; }
  old_rs=$(awk -F'[:,]' '/"repolint_seconds"/ {print $2; exit}' "$PREV" | tr -d ' ')
  new_rs=$(awk -F'[:,]' '/"repolint_seconds"/ {print $2; exit}' "$OUT" | tr -d ' ')
  if [ -n "$old_rs" ] && [ -n "$new_rs" ]; then
    awk -v a="$old_rs" -v b="$new_rs" 'BEGIN {
      pct = 100 * (b - a) / a
      printf "bench: repolint_seconds %s -> %s (%+.1f%%)\n", a, b, pct > "/dev/stderr"
      exit (pct <= 15 ? 0 : 1)
    }' || { echo "bench: FAIL repolint wall time regressed >15% vs $PREV_NAME" >&2; exit 1; }
  fi
elif [ "$COMPARE" = 1 ]; then
  echo "bench: no previous BENCH_*.json to compare against" >&2
fi
