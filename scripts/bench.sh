#!/usr/bin/env bash
# Benchmark suite runner: executes the hot-path benchmarks (wire protocol,
# shard apply, streaming analyzer, checkpoint store, obs primitives, e2e
# ingest) and records the results as BENCH_<date>.json in the repo root.
#
# The apply pair (BenchmarkApplyInstrumented vs BenchmarkApplyBare) is the
# instrumentation budget check from DESIGN.md: the instrumented shard apply
# path must stay within 3% of the bare baseline and allocate nothing. Each
# benchmark runs COUNT times and the fastest run is recorded, which damps
# scheduler noise on shared machines.
#
# Usage: scripts/bench.sh [out.json]
#   BENCHTIME=2s COUNT=5 scripts/bench.sh   # longer, steadier runs
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_$(date +%F).json}
BENCHTIME=${BENCHTIME:-1s}
COUNT=${COUNT:-3}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "bench: hot-path packages (benchtime=$BENCHTIME count=$COUNT)" >&2
go test -run '^$' -bench . -benchmem -benchtime="$BENCHTIME" -count="$COUNT" \
  ./internal/obs/ ./internal/ingest/ ./internal/analysis/ | tee "$RAW" >&2

# The apply pair gets extra, longer samples: the overhead being measured
# (~150ns per 20µs batch) is well under run-to-run scheduler jitter, so the
# budget check needs many runs and takes the fastest of each.
APPLY_BENCHTIME=${APPLY_BENCHTIME:-2s}
APPLY_COUNT=${APPLY_COUNT:-5}
echo "bench: apply budget pair (benchtime=$APPLY_BENCHTIME count=$APPLY_COUNT)" >&2
go test -run '^$' -bench 'BenchmarkApply(Instrumented|Bare)$' -benchmem \
  -benchtime="$APPLY_BENCHTIME" -count="$APPLY_COUNT" ./internal/ingest/ | tee -a "$RAW" >&2

echo "bench: paper-artifact benchmarks (1 iteration each)" >&2
go test -run '^$' -bench . -benchmem -benchtime=1x . | tee -a "$RAW" >&2

# Record the static-analysis suite's wall time alongside the runtime
# numbers: repolint loads and type-checks the whole module, so an analyzer
# that goes quadratic shows up here before it starts dragging `make ci`.
echo "bench: repolint wall time (full module, standalone)" >&2
mkdir -p bin
go build -o bin/repolint ./cmd/repolint
t0=$(date +%s.%N)
./bin/repolint ./...
t1=$(date +%s.%N)
REPOLINT_SECONDS=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')
echo "bench: repolint ./... took ${REPOLINT_SECONDS}s" >&2

awk -v date="$(date +%F)" -v gover="$(go version | awk '{print $3}')" \
    -v repolint_s="$REPOLINT_SECONDS" '
BEGIN { n = 0 }
/^pkg: / { pkg = $2 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
  ns = ""; bop = ""; aop = ""; extra_k = ""; extra_v = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    else if ($(i+1) == "B/op") bop = $i
    else if ($(i+1) == "allocs/op") aop = $i
    else if ($(i+1) ~ /\//) { extra_k = $(i+1); extra_v = $i }
  }
  if (ns == "") next
  key = pkg "\t" name
  if (!(key in best) || ns + 0 < best[key] + 0) {
    best[key] = ns
    line = sprintf("    {\"package\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %s", pkg, name, ns)
    if (bop != "") line = line sprintf(", \"bytes_per_op\": %s", bop)
    if (aop != "") line = line sprintf(", \"allocs_per_op\": %s", aop)
    if (extra_k != "") line = line sprintf(", \"%s\": %s", extra_k, extra_v)
    line = line "}"
    out[key] = line
    if (!(key in seen)) { order[n++] = key; seen[key] = 1 }
  }
  if (name == "BenchmarkApplyInstrumented") instr = best[key]
  if (name == "BenchmarkApplyBare") bare = best[key]
}
END {
  printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n", date, gover
  if (repolint_s != "") printf "  \"repolint_seconds\": %s,\n", repolint_s
  if (bare + 0 > 0) {
    pct = 100 * (instr - bare) / bare
    if (pct < 0) pct = 0
    printf "  \"apply_instrumentation_overhead_pct\": %.2f,\n", pct
    printf "  \"apply_overhead_budget_pct\": 3.0,\n"
  }
  printf "  \"benchmarks\": [\n"
  for (i = 0; i < n; i++) printf "%s%s\n", out[order[i]], (i < n - 1 ? "," : "")
  printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "bench: wrote $OUT" >&2

# Enforce the instrumentation budget recorded above.
pct=$(awk -F'[:,]' '/apply_instrumentation_overhead_pct/ {print $2}' "$OUT" | tr -d ' ')
if [ -n "$pct" ]; then
  awk -v p="$pct" 'BEGIN { exit (p + 0 <= 3.0 ? 0 : 1) }' || {
    echo "bench: FAIL apply instrumentation overhead ${pct}% exceeds 3% budget" >&2
    exit 1
  }
  echo "bench: apply instrumentation overhead ${pct}% (budget 3%)" >&2
fi
