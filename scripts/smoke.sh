#!/usr/bin/env bash
# End-to-end ingest smoke test, six phases:
#   1. golden: batch and streamed analysis must still reproduce
#      testdata/golden.json;
#   1b. convert: a small generated fleet is rewritten METR-2 -> METR-3 ->
#      flat with tracecat -convert; every container must report the same
#      NDJSON record stream, proving the columnar codec round-trips through
#      the CLI tooling, not just the library tests;
#   2. clean: stream a 200-device synthetic fleet into a local ingestd and
#      require zero dropped records and a clean SIGTERM drain (the final
#      headline is kept as the cluster phase's reference);
#   2b. query: same fleet into an ingestd running -segment-dir; the admin
#      /query over the whole span must report the same record count and
#      attributed total energy as /headline (two independent paths: shard
#      accumulators vs the tsq engine re-reading the METR-3 segments),
#      the block seek index must be in play, and after the drain the tsq
#      CLI over the sealed directory must agree with the live answer;
#   3. chaos: same fleet against a FRESH server (the devices restart their
#      streams from sequence 0) through the fault injector — drops and bit
#      corruption on the wire — and require the sever/resume/dedup loop to
#      still deliver every record exactly once;
#   4. cluster: same fleet across a three-node cluster behind aggregatord,
#      with one node kill -9'd as soon as it has accepted records and
#      written a checkpoint. The probers must declare it dead, its
#      checkpoint must hand off to the survivors, the sessions must walk
#      their ring preference and resume, and the merged fleet headline
#      must equal the single-node reference from phase 2 — ints exactly,
#      floats within 1e-6 relative;
#   5. chaos-cluster: same fleet across a fresh three-node -durable-fin
#      cluster, with one node SIGSTOP'd mid-run — the partition analogue: the
#      process stays alive holding its state while the fleet routes around
#      it. Its checkpoint hands off to the survivors; on SIGCONT the zombie
#      resurfaces and the aggregator must fence it (not merge it twice). The
#      settled fleet headline must again equal the phase-2 reference, and
#      the fenced node must still drain cleanly.
# Run via `make smoke` (needs ./bin built).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${SMOKE_ADDR:-127.0.0.1:19909}
ADMIN=${SMOKE_ADMIN:-127.0.0.1:19910}
AGG=${SMOKE_AGG:-127.0.0.1:19920}
DEVICES=${SMOKE_DEVICES:-200}
DAYS=${SMOKE_DAYS:-1}

WORK=$(mktemp -d)
pid=
pids=()
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  for p in "${pids[@]+"${pids[@]}"}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

run_phase() { # name, extra fleetsim flags...
  local name=$1
  shift
  ./bin/ingestd -listen "$ADDR" -admin "$ADMIN" &
  pid=$!
  # fleetsim retries the dial with backoff, so no readiness poll is
  # needed. It exits non-zero if the server's accepted-record counters
  # disagree per device with what was acked client-side.
  ./bin/fleetsim -addr "$ADDR" -admin "http://$ADMIN" \
    -devices "$DEVICES" -days "$DAYS" -seed 7 "$@"

  # Graceful drain: SIGTERM must flush shard state and exit zero.
  kill -TERM "$pid"
  if ! wait "$pid"; then
    echo "smoke: ingestd did not drain cleanly ($name phase)" >&2
    exit 1
  fi
  pid=
  echo "smoke: $name phase ok"
}

# jfield extracts one numeric field from an indented JSON headline.
jfield() { # file key
  grep -o "\"$2\":[[:space:]]*[-0-9.eE+]*" "$1" | head -1 | sed 's/.*:[[:space:]]*//'
}

# require_headline_match compares a fleet headline against the phase-2
# single-node reference: ints exactly, floats within 1e-6 relative.
require_headline_match() { # fleet headline file
  local f=$1 k a b
  for k in devices records; do
    a=$(jfield "$WORK/ref.json" "$k"); b=$(jfield "$f" "$k")
    if [ "$a" != "$b" ]; then
      echo "smoke: fleet headline $k = $b, single-node reference $a" >&2
      exit 1
    fi
  done
  for k in total_energy_j background_fraction first_minute_fraction; do
    a=$(jfield "$WORK/ref.json" "$k"); b=$(jfield "$f" "$k")
    if ! awk -v a="$a" -v b="$b" 'BEGIN {
      d = a - b; if (d < 0) d = -d
      m = a; if (m < 0) m = -m
      exit (d <= 1e-6 * (1 + m) ? 0 : 1)
    }'; then
      echo "smoke: fleet headline $k = $b, single-node reference $a (>1e-6 relative)" >&2
      exit 1
    fi
  done
}

# require_close compares two floats within 1e-6 relative.
require_close() { # label a b
  if ! awk -v a="$2" -v b="$3" 'BEGIN {
    d = a - b; if (d < 0) d = -d
    m = a; if (m < 0) m = -m
    exit (d <= 1e-6 * (1 + m) ? 0 : 1)
  }'; then
    echo "smoke: $1 = $3, want $2 (>1e-6 relative)" >&2
    exit 1
  fi
}

run_query() {
  local segdir="$WORK/seg"
  mkdir -p "$segdir"
  ./bin/ingestd -listen "$ADDR" -admin "$ADMIN" -segment-dir "$segdir" &
  pid=$!
  ./bin/fleetsim -addr "$ADDR" -admin "http://$ADMIN" \
    -devices "$DEVICES" -days "$DAYS" -seed 7

  # Live: /query over everything vs /headline — same totals, two
  # independent computations. The query range must cover ALL records, not
  # just [span_start, span_end]: the headline span tracks network
  # activity, and devices emit app-name/proc-state records outside it, so
  # the upper bound is pushed a day past the span end.
  curl -fsS "http://$ADMIN/headline" > "$WORK/qhead.json"
  local span_end to recs qrecs blocks skipped
  span_end=$(jfield "$WORK/qhead.json" span_end_us)
  to=$((span_end + 86400000000))
  curl -fsS "http://$ADMIN/query?from=0&to=$to" > "$WORK/query.json"
  recs=$(jfield "$WORK/qhead.json" records)
  qrecs=$(jfield "$WORK/query.json" records)
  if [ "$recs" != "$qrecs" ]; then
    echo "smoke: /query saw $qrecs records, /headline $recs" >&2
    exit 1
  fi
  require_close "live query total_energy_j" \
    "$(jfield "$WORK/qhead.json" total_energy_j)" "$(jfield "$WORK/query.json" total_energy_j)"
  blocks=$(jfield "$WORK/query.json" blocks_total)
  if [ "${blocks:-0}" -le 0 ]; then
    echo "smoke: /query scanned no indexed blocks (blocks_total=$blocks)" >&2
    exit 1
  fi
  # A narrow window must actually prune blocks via the seek index.
  skipped=$(curl -fsS "http://$ADMIN/query?from=$((span_end - 3600000000))&to=$to" | grep -o '"blocks_skipped":[[:space:]]*[0-9]*' | head -1 | tr -dc 0-9)
  if [ "${skipped:-0}" -le 0 ]; then
    echo "smoke: narrow /query skipped no blocks (blocks_skipped=$skipped)" >&2
    exit 1
  fi

  kill -TERM "$pid"
  if ! wait "$pid"; then
    echo "smoke: ingestd did not drain cleanly (query phase)" >&2
    exit 1
  fi
  pid=

  # Offline: the tsq CLI over the sealed directory must agree with the
  # live endpoint's answer.
  ./bin/tsq -dir "$segdir" -from 0 -to "$to" -json > "$WORK/query-offline.json"
  if [ "$(jfield "$WORK/query-offline.json" records)" != "$recs" ]; then
    echo "smoke: offline tsq saw $(jfield "$WORK/query-offline.json" records) records, want $recs" >&2
    exit 1
  fi
  require_close "offline tsq total_energy_j" \
    "$(jfield "$WORK/query.json" total_energy_j)" "$(jfield "$WORK/query-offline.json" total_energy_j)"
  echo "smoke: query phase ok ($recs records, $skipped blocks pruned on the narrow window)"
}

run_cluster() {
  local cluster="n1=127.0.0.1:19911/127.0.0.1:19912,n2=127.0.0.1:19913/127.0.0.1:19914,n3=127.0.0.1:19915/127.0.0.1:19916"
  local streams="127.0.0.1:19911,127.0.0.1:19913,127.0.0.1:19915"
  local dirs=("$WORK/n1" "$WORK/n2" "$WORK/n3")
  mkdir -p "${dirs[@]}"

  # -handoff-on-drain=false: this phase exercises the crash handoff (the
  # aggregator ships the dead node's checkpoint); the survivors' graceful
  # drain at the end has no live peers left to ship to.
  local i
  for i in 1 2 3; do
    ./bin/ingestd -listen "127.0.0.1:199$((9 + 2 * i))" -admin "127.0.0.1:199$((10 + 2 * i))" \
      -node-id "n$i" -cluster "$cluster" -shards 4 \
      -checkpoint-dir "${dirs[$((i - 1))]}" -checkpoint-interval 250ms \
      -heartbeat 250ms -fail-threshold 2 -handoff-on-drain=false &
    pids+=($!)
  done
  local victim=${pids[1]} # n2, admin 127.0.0.1:19914
  ./bin/aggregatord -listen "$AGG" -cluster "$cluster" \
    -handoff-dirs "n1=${dirs[0]},n2=${dirs[1]},n3=${dirs[2]}" \
    -interval 400ms -heartbeat 250ms -fail-threshold 2 &
  pids+=($!)

  # Chaos step: pull n2's plug (SIGKILL, no drain) the moment it has
  # accepted records AND written a durable checkpoint, so the death lands
  # mid-run with state on disk to hand off.
  (
    for _ in $(seq 1 600); do
      st=$(curl -fsS "http://127.0.0.1:19914/stats" 2>/dev/null || true)
      recs=$(printf '%s' "$st" | grep -o '"records":[[:space:]]*[0-9]*' | head -1 | tr -dc 0-9)
      gen=$(printf '%s' "$st" | grep -o '"generation":[[:space:]]*[0-9]*' | head -1 | tr -dc 0-9)
      if [ -n "${recs:-}" ] && [ "$recs" -gt 0 ] && [ -n "${gen:-}" ] && [ "$gen" -ge 1 ]; then
        kill -9 "$victim"
        exit 0
      fi
      sleep 0.05
    done
    exit 1
  ) &
  local killer=$!

  # fleetsim routes every session by the shared ring, follows redirect
  # acks, and reconciles its acked-record counters against the
  # aggregator's merged exposition — exactly-once across the node death.
  # -speedup paces each device's day over ~10s of wall time so the kill
  # lands while every stream is still active: an active session
  # retransmits what the dead node acked past its last checkpoint,
  # whereas a completed session's records in that window are gone with
  # the node (FIN ack ≠ durable — durability is the checkpoint; see
  # DESIGN.md). Unpaced, small devices finish inside the first
  # checkpoint interval and the kill loses their tail nondeterministically.
  ./bin/fleetsim -nodes "$streams" -aggregator "http://$AGG" \
    -devices "$DEVICES" -days "$DAYS" -seed 7 -deadline 5m -speedup 8640

  if ! wait "$killer"; then
    echo "smoke: victim node was never killed (no records/checkpoint observed on n2)" >&2
    exit 1
  fi

  # The kill can land after fleetsim's reconcile; settle again so the
  # comparison below always sees the post-death, post-handoff fleet.
  local want_records live recs
  want_records=$(jfield "$WORK/ref.json" records)
  for _ in $(seq 1 300); do
    m=$(curl -fsS "http://$AGG/metrics" 2>/dev/null || true)
    live=$(printf '%s' "$m" | awk '/^aggregator_nodes_live /{print int($2)}')
    recs=$(printf '%s' "$m" | awk '/^aggregator_records /{print int($2)}')
    if [ "${live:-3}" -eq 2 ] && [ "${recs:-0}" -eq "$want_records" ]; then break; fi
    sleep 0.1
  done
  if [ "${live:-3}" -ne 2 ] || [ "${recs:-0}" -ne "$want_records" ]; then
    echo "smoke: cluster did not settle after kill (nodes_live=${live:-?} records=${recs:-?}, want 2/$want_records)" >&2
    exit 1
  fi
  curl -fsS "http://$AGG/headline" > "$WORK/fleet.json"

  require_headline_match "$WORK/fleet.json"
  echo "smoke: fleet headline matches single-node reference ($want_records records across survivors)"

  # Graceful drain of the survivors and the aggregator: all must exit 0.
  local p
  for p in "${pids[@]}"; do
    [ "$p" = "$victim" ] && continue
    kill -TERM "$p" 2>/dev/null || true
  done
  for p in "${pids[@]}"; do
    [ "$p" = "$victim" ] && continue
    if ! wait "$p"; then
      echo "smoke: cluster process $p did not drain cleanly" >&2
      exit 1
    fi
  done
  pids=()
  echo "smoke: cluster phase ok"
}

run_chaos_cluster() {
  local cluster="n1=127.0.0.1:19911/127.0.0.1:19912,n2=127.0.0.1:19913/127.0.0.1:19914,n3=127.0.0.1:19915/127.0.0.1:19916"
  local streams="127.0.0.1:19911,127.0.0.1:19913,127.0.0.1:19915"
  local dirs=("$WORK/c1" "$WORK/c2" "$WORK/c3")
  mkdir -p "${dirs[@]}"

  local i
  for i in 1 2 3; do
    ./bin/ingestd -listen "127.0.0.1:199$((9 + 2 * i))" -admin "127.0.0.1:199$((10 + 2 * i))" \
      -node-id "n$i" -cluster "$cluster" -shards 4 \
      -checkpoint-dir "${dirs[$((i - 1))]}" -checkpoint-interval 250ms -durable-fin \
      -heartbeat 250ms -fail-threshold 2 -handoff-on-drain=false &
    pids+=($!)
  done
  local victim=${pids[1]} # n2, admin 127.0.0.1:19914
  ./bin/aggregatord -listen "$AGG" -cluster "$cluster" \
    -handoff-dirs "n1=${dirs[0]},n2=${dirs[1]},n3=${dirs[2]}" \
    -interval 400ms -heartbeat 250ms -fail-threshold 2 \
    -pull-attempts 3 -handoff-attempts 4 &
  pids+=($!)

  # Partition step: freeze n2 (SIGSTOP, sockets stay open, state stays in
  # memory) the moment it has accepted records and written a checkpoint.
  # Unlike the kill phase's SIGKILL, the process survives to resurface
  # later holding already-handed-off state — the zombie the fence exists for.
  (
    for _ in $(seq 1 600); do
      st=$(curl -fsS "http://127.0.0.1:19914/stats" 2>/dev/null || true)
      recs=$(printf '%s' "$st" | grep -o '"records":[[:space:]]*[0-9]*' | head -1 | tr -dc 0-9)
      gen=$(printf '%s' "$st" | grep -o '"generation":[[:space:]]*[0-9]*' | head -1 | tr -dc 0-9)
      if [ -n "${recs:-}" ] && [ "$recs" -gt 0 ] && [ -n "${gen:-}" ] && [ "$gen" -ge 1 ]; then
        kill -STOP "$victim"
        exit 0
      fi
      sleep 0.05
    done
    exit 1
  ) &
  local freezer=$!

  # With -durable-fin every FIN ack is backed by a checkpoint, so even the
  # frozen node's completed sessions survive intact through the handoff:
  # the fleet must reconcile exactly, not just approximately.
  ./bin/fleetsim -nodes "$streams" -aggregator "http://$AGG" \
    -devices "$DEVICES" -days "$DAYS" -seed 7 -deadline 5m -speedup 8640

  if ! wait "$freezer"; then
    echo "smoke: victim node was never frozen (no records/checkpoint observed on n2)" >&2
    exit 1
  fi

  # Wait for the frozen node's checkpoint to hand off to the survivors,
  # then heal the partition: the zombie resurfaces and must be fenced
  # before its stale snapshot can re-enter a merge.
  local m handoffs fenced
  for _ in $(seq 1 300); do
    m=$(curl -fsS "http://$AGG/metrics" 2>/dev/null || true)
    handoffs=$(printf '%s' "$m" | awk '/^aggregator_handoffs_total /{print int($2)}')
    if [ "${handoffs:-0}" -ge 1 ]; then break; fi
    sleep 0.1
  done
  if [ "${handoffs:-0}" -lt 1 ]; then
    echo "smoke: frozen node's checkpoint never handed off" >&2
    exit 1
  fi
  kill -CONT "$victim"

  # Settle: the fenced zombie is excluded from the live merge (nodes_live
  # drops to 2 even though all three processes answer /healthz) and the
  # record count must hold at the reference — no double count.
  local want_records live recs
  want_records=$(jfield "$WORK/ref.json" records)
  for _ in $(seq 1 300); do
    m=$(curl -fsS "http://$AGG/metrics" 2>/dev/null || true)
    live=$(printf '%s' "$m" | awk '/^aggregator_nodes_live /{print int($2)}')
    recs=$(printf '%s' "$m" | awk '/^aggregator_records /{print int($2)}')
    fenced=$(printf '%s' "$m" | awk '/^aggregator_fenced_skips_total /{print int($2)}')
    if [ "${live:-3}" -eq 2 ] && [ "${recs:-0}" -eq "$want_records" ] && [ "${fenced:-0}" -ge 1 ]; then break; fi
    sleep 0.1
  done
  if [ "${live:-3}" -ne 2 ] || [ "${recs:-0}" -ne "$want_records" ] || [ "${fenced:-0}" -lt 1 ]; then
    echo "smoke: cluster did not settle after heal (nodes_live=${live:-?} records=${recs:-?} fenced_skips=${fenced:-?}, want 2/$want_records/>=1)" >&2
    exit 1
  fi

  # Durable FIN must have actually engaged on the survivors.
  local findur
  findur=$(curl -fsS "http://127.0.0.1:19912/metrics" "http://127.0.0.1:19916/metrics" 2>/dev/null |
    awk '/^ingest_fin_durable_total /{n += $2} END {print int(n)}')
  if [ "${findur:-0}" -lt 1 ]; then
    echo "smoke: ingest_fin_durable_total = ${findur:-0} across survivors, want >= 1 (-durable-fin not engaged)" >&2
    exit 1
  fi

  curl -fsS "http://$AGG/headline" > "$WORK/fleet-chaos.json"
  require_headline_match "$WORK/fleet-chaos.json"
  echo "smoke: fleet headline matches single-node reference through freeze + fence ($want_records records)"

  # Graceful drain: every process — including the fenced zombie — must
  # exit 0. A fenced node skips its final checkpoint (the archive already
  # holds its history) but still drains its shards cleanly.
  local p
  for p in "${pids[@]}"; do
    kill -TERM "$p" 2>/dev/null || true
  done
  for p in "${pids[@]}"; do
    if ! wait "$p"; then
      echo "smoke: chaos-cluster process $p did not drain cleanly" >&2
      exit 1
    fi
  done
  pids=()
  echo "smoke: chaos-cluster phase ok"
}

# Golden end-to-end check: batch and streamed analysis of the fixed-seed
# fleet must still reproduce testdata/golden.json bit-for-bit (ints) /
# within 1e-9 (floats). Catches silent drift in the numeric pipeline that
# the load phases below cannot see.
go test -run '^TestGolden$' -count=1 .
echo "smoke: golden phase ok"

# Convert phase: METR-2 -> METR-3 -> flat through the CLI; the NDJSON dump
# of every container must be byte-identical.
gen_dir="$WORK/convert"
./bin/gentrace -out "$gen_dir" -users 2 -days 2 -seed 7 -format metr2
for f in "$gen_dir"/*.metr; do
  base=$(basename "$f" .metr)
  ./bin/tracecat -trace "$f" -convert "$gen_dir/$base.metr3" -format metr3
  ./bin/tracecat -trace "$gen_dir/$base.metr3" -convert "$gen_dir/$base.flat" -format flat
  ./bin/tracecat -trace "$f" -ndjson > "$gen_dir/$base.a.ndjson"
  ./bin/tracecat -trace "$gen_dir/$base.metr3" -ndjson > "$gen_dir/$base.b.ndjson"
  ./bin/tracecat -trace "$gen_dir/$base.flat" -ndjson > "$gen_dir/$base.c.ndjson"
  if ! cmp -s "$gen_dir/$base.a.ndjson" "$gen_dir/$base.b.ndjson" ||
     ! cmp -s "$gen_dir/$base.a.ndjson" "$gen_dir/$base.c.ndjson"; then
    echo "smoke: $base: records differ across metr2/metr3/flat containers" >&2
    exit 1
  fi
done
echo "smoke: convert phase ok (metr2 -> metr3 -> flat round trip)"

run_phase clean -headline-json "$WORK/ref.json"
run_query
run_phase chaos -chaos-drop 0.05 -chaos-corrupt 0.01 -chaos-seed 7 -deadline 5m
run_cluster
run_chaos_cluster
trap - EXIT
rm -rf "$WORK"
echo "smoke: ok"
