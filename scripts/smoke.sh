#!/usr/bin/env bash
# End-to-end ingest smoke test, two phases:
#   1. clean: stream a 200-device synthetic fleet into a local ingestd and
#      require zero dropped records and a clean SIGTERM drain;
#   2. chaos: same fleet against a FRESH server (the devices restart their
#      streams from sequence 0) through the fault injector — drops and bit
#      corruption on the wire — and require the sever/resume/dedup loop to
#      still deliver every record exactly once.
# Run via `make smoke` (needs ./bin built).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${SMOKE_ADDR:-127.0.0.1:19909}
ADMIN=${SMOKE_ADMIN:-127.0.0.1:19910}
DEVICES=${SMOKE_DEVICES:-200}
DAYS=${SMOKE_DAYS:-1}

pid=
cleanup() { [ -n "$pid" ] && kill "$pid" 2>/dev/null || true; }
trap cleanup EXIT

run_phase() { # name, extra fleetsim flags...
  local name=$1
  shift
  ./bin/ingestd -listen "$ADDR" -admin "$ADMIN" &
  pid=$!
  # fleetsim retries the dial with backoff, so no readiness poll is
  # needed. It exits non-zero if the server's accepted-record counters
  # disagree per device with what was acked client-side.
  ./bin/fleetsim -addr "$ADDR" -admin "http://$ADMIN" \
    -devices "$DEVICES" -days "$DAYS" -seed 7 "$@"

  # Graceful drain: SIGTERM must flush shard state and exit zero.
  kill -TERM "$pid"
  if ! wait "$pid"; then
    echo "smoke: ingestd did not drain cleanly ($name phase)" >&2
    exit 1
  fi
  pid=
  echo "smoke: $name phase ok"
}

# Golden end-to-end check: batch and streamed analysis of the fixed-seed
# fleet must still reproduce testdata/golden.json bit-for-bit (ints) /
# within 1e-9 (floats). Catches silent drift in the numeric pipeline that
# the load phases below cannot see.
go test -run '^TestGolden$' -count=1 .
echo "smoke: golden phase ok"

run_phase clean
run_phase chaos -chaos-drop 0.05 -chaos-corrupt 0.01 -chaos-seed 7 -deadline 5m
trap - EXIT
echo "smoke: ok"
