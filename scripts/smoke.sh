#!/usr/bin/env bash
# End-to-end ingest smoke test: stream a 200-device synthetic fleet into a
# local ingestd and require zero dropped records, then check the daemon
# drains cleanly on SIGTERM. Run via `make smoke` (needs ./bin built).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${SMOKE_ADDR:-127.0.0.1:19909}
ADMIN=${SMOKE_ADMIN:-127.0.0.1:19910}
DEVICES=${SMOKE_DEVICES:-200}
DAYS=${SMOKE_DAYS:-1}

./bin/ingestd -listen "$ADDR" -admin "$ADMIN" &
pid=$!
cleanup() { kill "$pid" 2>/dev/null || true; }
trap cleanup EXIT

# fleetsim retries the dial for up to 10s, so no readiness poll is needed.
# It exits non-zero if the server's accepted-record count, CRC or decode
# error counters disagree with what was sent.
./bin/fleetsim -addr "$ADDR" -admin "http://$ADMIN" \
  -devices "$DEVICES" -days "$DAYS" -seed 7

# Graceful drain: SIGTERM must flush shard state and exit zero.
kill -TERM "$pid"
if ! wait "$pid"; then
  echo "smoke: ingestd did not drain cleanly" >&2
  exit 1
fi
trap - EXIT
echo "smoke: ok"
