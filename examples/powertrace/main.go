// Powertrace reconstructs the Monsoon-monitor view the paper's power model
// was derived from: the radio's state and power timeline for a short
// packet sequence — one isolated poll, then a pair of polls close enough
// to share a tail. It prints the spans, the per-phase energy split and the
// cross-check against the accounting engine.
package main

import (
	"fmt"
	"os"

	"netenergy/internal/radio"
	"netenergy/internal/report"
)

func main() {
	p := radio.LTE()
	tb := radio.NewTimelineBuilder(p)
	acct := radio.NewAccountant(p)

	// An isolated 50 KB poll at t=1, then two polls at t=60 and t=65
	// (the second rides the first's tail).
	type pkt struct {
		t float64
		n int
		d radio.Dir
	}
	pkts := []pkt{
		{1, 2000, radio.Up}, {1.01, 50000, radio.Down},
		{60, 2000, radio.Up}, {60.01, 50000, radio.Down},
		{65, 2000, radio.Up}, {65.01, 50000, radio.Down},
	}
	for _, pk := range pkts {
		tb.OnPacket(pk.t, pk.n, pk.d)
		acct.OnPacket(pk.t, pk.n, pk.d)
	}
	spans := tb.Finish()
	acct.Finish()

	fmt.Println("LTE radio state/power timeline (three 50 KB polls):")
	rows := make([][]string, 0, len(spans))
	perState := map[radio.State]float64{}
	for _, s := range spans {
		perState[s.State] += s.Energy()
		rows = append(rows, []string{
			fmt.Sprintf("%8.3f", s.Start),
			fmt.Sprintf("%8.3f", s.End),
			s.State.String(),
			fmt.Sprintf("%.3f W", s.Power),
			fmt.Sprintf("%.3f J", s.Energy()),
		})
	}
	if err := report.Table(os.Stdout, []string{"start", "end", "state", "power", "energy"}, rows); err != nil {
		os.Exit(1)
	}

	fmt.Println("\nEnergy by phase:")
	total := radio.TotalEnergy(spans)
	for _, st := range []radio.State{radio.Promoting, radio.Active, radio.Tail} {
		fmt.Printf("  %-10s %6.2f J  (%4.1f%%)\n", st, perState[st], 100*perState[st]/total)
	}
	fmt.Printf("  %-10s %6.2f J  (total, excl. idle baseline)\n", "sum", total)
	fmt.Printf("\nAccounting engine cross-check: %.2f J (must match)\n", acct.TotalEnergy())
	fmt.Println("\nNote how the tail dominates: this is why batching background")
	fmt.Println("updates is the paper's central recommendation.")
}
