// Quickstart: run a small end-to-end study (5 users, 14 days), print the
// headline statistics and the two tables — the 60-second tour of the
// library.
package main

import (
	"fmt"
	"os"

	"netenergy"

	"netenergy/internal/report"
)

func main() {
	fmt.Println("Generating a 5-user, 14-day synthetic study...")
	study, err := netenergy.Run(netenergy.SmallConfig(5, 14))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	h := study.Headline()
	fmt.Printf("\nFleet network energy: %.0f kJ\n", h.TotalEnergyJ/1000)
	fmt.Printf("Consumed in background states: %.0f%%  (paper: 84%%)\n", 100*h.BackgroundFraction)
	fmt.Printf("Apps sending >=80%% of bg bytes within 60 s: %.0f%%  (paper: 84%%)\n",
		100*h.FirstMinute.Fraction)
	fmt.Printf("Chrome background energy share: %.0f%%  (paper: ~30%%)\n\n",
		100*h.BrowserBgShares["com.android.chrome"])

	if err := report.CaseStudies(os.Stdout, study.Table1()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	if err := report.WhatIf(os.Stdout, study.Table2(3), 3); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
