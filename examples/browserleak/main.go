// Browserleak reproduces §4.1 in miniature: a single device runs Chrome (a
// browser whose background tabs keep polling), Firefox and the stock
// browser (which suspend tabs) through identical browsing schedules. The
// example prints each browser's background energy share, Chrome's
// persistence distribution (the Figure 5 view) and the packet timeline
// around one leaky transition (the Figure 4 view).
package main

import (
	"fmt"
	"os"

	"netenergy/internal/analysis"
	"netenergy/internal/appmodel"
	"netenergy/internal/energy"
	"netenergy/internal/report"
	"netenergy/internal/rng"
	"netenergy/internal/trace"
)

func main() {
	const days = 14
	dt := &trace.DeviceTrace{Device: "lab", Start: 0, Apps: trace.NewAppTable()}
	src := rng.New(42)
	g := appmodel.NewGen(dt, src)

	// One browsing schedule shared by all three browsers: six sessions a
	// day (offset per browser so their traffic does not interleave).
	mkSessions := func(offset float64) []appmodel.Session {
		var out []appmodel.Session
		for d := 0; d < days; d++ {
			for _, hour := range []float64{9, 12.5, 15, 18, 20, 22} {
				start := trace.Timestamp(0).AddSeconds(float64(d)*86400 + hour*3600 + offset)
				out = append(out, appmodel.Session{Start: start, End: start.AddSeconds(240)})
			}
		}
		return out
	}

	browsers := []struct {
		pkg     string
		label   string
		offset  float64
		leaking bool
	}{
		{appmodel.PkgChrome, "Chrome (leaky)", 0, true},
		{appmodel.PkgFirefox, "Firefox (suspends tabs)", 900, false},
		{appmodel.PkgStockBrowser, "Stock browser (suspends tabs)", 1800, false},
	}
	for _, b := range browsers {
		app := dt.Apps.Intern(b.pkg)
		dt.Records = append(dt.Records, trace.Record{Type: trace.RecAppName, App: app, AppName: b.pkg})
		model := &appmodel.Browser{
			PageLoadPeriod: 35, PageUpBytes: 6000, PageDownBytes: 700000,
		}
		if b.leaking {
			model.LeakProb = 0.5
			model.LeakPeriod = 7
			model.LeakUpBytes = 1200
			model.LeakDownBytes = 6000
			model.LeakMedian = 120
			model.LeakSigma = 2.2
			model.Residual = appmodel.ResidualCfg{Bursts: 2, Window: 12, Up: 2000, Down: 30000}
		}
		model.Generate(g, app, mkSessions(b.offset), 0, trace.Timestamp(0).AddSeconds(days*86400))
	}
	dt.SortByTime()

	dd, err := analysis.Load(dt, energy.DefaultOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	devs := []*analysis.DeviceData{dd}

	fmt.Println("Identical browsing schedules, three browsers, LTE model:")
	shares := analysis.BrowserShares(devs, []string{
		appmodel.PkgChrome, appmodel.PkgFirefox, appmodel.PkgStockBrowser,
	})
	merged := analysis.MergedLedger(devs)
	for _, b := range browsers {
		app := uint32(0)
		for i := 0; i < dd.Apps.Len(); i++ {
			if dd.Apps.Name(uint32(i)) == b.pkg {
				app = uint32(i)
			}
		}
		fmt.Printf("  %-30s %8.0f J total, %4.1f%% in background\n",
			b.label, merged.ByApp[app], 100*shares[b.pkg])
	}

	fmt.Println()
	if err := report.Persistence(os.Stdout, analysis.Persistence(devs, appmodel.PkgChrome)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println()
	if tl, ok := analysis.Timeline(devs, appmodel.PkgChrome, 120, 600, 20); ok {
		if err := report.Timeline(os.Stdout, tl); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
