// Weathersync explores §4.2's central efficiency lever: how the *schedule*
// of background updates, not their volume, sets the energy bill. It runs a
// weather service through a sweep of update periods and batching factors on
// one device and prints joules per day for each design — the ablation
// behind the paper's "batch your background updates" recommendation.
package main

import (
	"fmt"
	"os"

	"netenergy/internal/appmodel"
	"netenergy/internal/energy"
	"netenergy/internal/radio"
	"netenergy/internal/report"
	"netenergy/internal/rng"
	"netenergy/internal/trace"
)

const days = 7

// runPoller generates a fresh single-app trace with the given poller and
// returns its average energy per day and total data.
func runPoller(p *appmodel.PeriodicPoller) (jPerDay float64, mb float64) {
	dt := &trace.DeviceTrace{Device: "lab", Start: 0, Apps: trace.NewAppTable()}
	g := appmodel.NewGen(dt, rng.New(7))
	app := dt.Apps.Intern("com.example.weather")
	p.Generate(g, app, nil, 0, trace.Timestamp(0).AddSeconds(days*86400))
	dt.SortByTime()
	opts := energy.DefaultOptions()
	opts.KeepPackets = false
	res, err := energy.Process(dt, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res.Ledger.Total / days, float64(res.Ledger.BytesByApp[app]) / 1e6 / days
}

func main() {
	// The same daily data volume (~25 MB/day) delivered at different
	// update periods: energy is dominated by how often the radio wakes.
	fmt.Println("Same data volume, different update periods (LTE):")
	rows := [][]string{}
	const dailyBytes = 25e6
	for _, period := range []float64{300, 600, 1800, 3600, 10800} {
		updatesPerDay := 86400 / period
		per := int64(dailyBytes / updatesPerDay)
		j, mb := runPoller(&appmodel.PeriodicPoller{
			Period: period, Jitter: 0.1,
			UpBytes: 1500, DownBytes: per,
			UpdatesPerConn: 4, BgState: trace.StateService,
		})
		rows = append(rows, []string{
			report.FmtPeriod(period, true),
			fmt.Sprintf("%.0f", updatesPerDay),
			fmt.Sprintf("%.1f MB", mb),
			fmt.Sprintf("%.0f J", j),
		})
	}
	if err := report.Table(os.Stdout, []string{"period", "updates/day", "data/day", "energy/day"}, rows); err != nil {
		os.Exit(1)
	}

	// Batching: a 5-minute poller that coalesces k updates into one burst
	// every k*5 minutes. Energy falls almost linearly in k; data does not
	// change.
	fmt.Println("\nBatching factor for a 5-minute weather poller:")
	rows = rows[:0]
	for _, k := range []int{1, 2, 4, 8, 16} {
		j, mb := runPoller(&appmodel.PeriodicPoller{
			Period: 300 * float64(k), Jitter: 0.1,
			UpBytes: 1500 * int64(k), DownBytes: 140000 * int64(k),
			UpdatesPerConn: 4, BgState: trace.StateService,
		})
		rows = append(rows, []string{
			fmt.Sprintf("x%d", k),
			fmt.Sprintf("%.1f MB", mb),
			fmt.Sprintf("%.0f J", j),
		})
	}
	if err := report.Table(os.Stdout, []string{"batch", "data/day", "energy/day"}, rows); err != nil {
		os.Exit(1)
	}

	// The marginal cost of one extra wakeup on each radio, the quantity
	// behind all of the above.
	fmt.Println("\nIsolated 10 KB burst cost per radio model:")
	rows = rows[:0]
	for _, p := range []radio.Params{radio.LTE(), radio.ThreeG(), radio.WiFi()} {
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%.2f J", radio.BurstEnergy(p, 10000, radio.Down)),
			fmt.Sprintf("%.1f s tail", p.TailTime()),
		})
	}
	if err := report.Table(os.Stdout, []string{"radio", "burst cost", "tail"}, rows); err != nil {
		os.Exit(1)
	}
}
