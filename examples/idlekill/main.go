// Idlekill reproduces the §5 what-if analysis on a focused scenario: a user
// who installs a Weibo-like 6-minute poller but only opens it every couple
// of weeks. It sweeps the OS kill threshold from 1 to 7 idle days and
// prints the app-level energy recovered — the Table 2 row C mechanism, plus
// the Doze-style policy comparison the paper's conclusion anticipates.
package main

import (
	"fmt"
	"os"

	"netenergy/internal/analysis"
	"netenergy/internal/appmodel"
	"netenergy/internal/energy"
	"netenergy/internal/report"
	"netenergy/internal/rng"
	"netenergy/internal/trace"
	"netenergy/internal/whatif"
)

const days = 56

func buildUser() *analysis.DeviceData {
	dt := &trace.DeviceTrace{Device: "idler", Start: 0, Apps: trace.NewAppTable()}
	g := appmodel.NewGen(dt, rng.New(11))
	app := dt.Apps.Intern("com.sina.weibo")
	dt.Records = append(dt.Records, trace.Record{Type: trace.RecAppName, App: app, AppName: "com.sina.weibo"})

	// The user opens the app on days 0, 16, 17 and 40 only.
	var sessions []appmodel.Session
	for _, d := range []int{0, 16, 17, 40} {
		start := trace.Timestamp(0).AddSeconds(float64(d)*86400 + 19*3600)
		sessions = append(sessions, appmodel.Session{Start: start, End: start.AddSeconds(180)})
	}
	poller := &appmodel.PeriodicPoller{
		Period: 370, Jitter: 0.3, UpBytes: 2500, DownBytes: 88000,
		UpdatesPerConn: 3, BgState: trace.StateService,
		Sessions: appmodel.SessionCfg{
			BurstPeriod: 25, BurstUp: 3000, BurstDown: 250000,
			BgState:  trace.StateService,
			Residual: appmodel.ResidualCfg{Bursts: 2, Window: 20, Up: 2000, Down: 40000},
		},
	}
	poller.Generate(g, app, sessions, 0, trace.Timestamp(0).AddSeconds(days*86400))
	dt.SortByTime()

	dd, err := analysis.Load(dt, energy.DefaultOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return dd
}

func main() {
	dd := buildUser()
	devs := []*analysis.DeviceData{dd}

	total := dd.Energy.Ledger.Total
	fmt.Printf("A Weibo-like poller, opened 4 times in %d days: %.0f J total network energy\n\n", days, total)

	fmt.Println("Kill the app after N consecutive days without foreground use:")
	rows := [][]string{}
	for k := 1; k <= 7; k++ {
		res := whatif.Evaluate(devs, []string{"com.sina.weibo"}, []string{"Weibo"}, k)[0]
		rows = append(rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f%%", res.AvgEnergyReductionPct),
		})
	}
	if err := report.Table(os.Stdout, []string{"kill after (days)", "energy recovered"}, rows); err != nil {
		os.Exit(1)
	}

	res := whatif.Evaluate(devs, []string{"com.sina.weibo"}, []string{"Weibo"}, 3)[0]
	fmt.Printf("\nTable 2 view at the paper's 3-day threshold:\n")
	fmt.Printf("  A: days with only background traffic: %.0f%%\n", res.PctBgOnlyDays)
	fmt.Printf("  B: max consecutive background-only days: %d\n", res.MaxConsecutiveBgDays)
	fmt.Printf("  C: energy reduction: %.0f%% (paper: 54%% for Weibo; >half of its energy was idle polling)\n",
		res.AvgEnergyReductionPct)
}
