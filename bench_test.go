// Benchmark harness: one benchmark per paper artifact (Figures 1-6, Tables
// 1-2, headline statistics) plus the ablations DESIGN.md calls out. Each
// benchmark regenerates its artifact on a fixed-seed fleet and reports the
// key measured quantity via b.ReportMetric, so `go test -bench=.` doubles
// as the reproduction run.
//
// The fleet is generated once and shared; per-iteration work is the
// analysis itself (the interesting cost), not the synthesis.
package netenergy_test

import (
	"sync"
	"testing"

	"netenergy/internal/analysis"
	"netenergy/internal/appmodel"
	"netenergy/internal/core"
	"netenergy/internal/energy"
	"netenergy/internal/radio"
	"netenergy/internal/rng"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
	"netenergy/internal/whatif"
)

var (
	benchOnce  sync.Once
	benchStudy *core.Study
)

// benchFleet returns a shared 8-user, 21-day study (seeded, deterministic).
func benchFleet(b *testing.B) *core.Study {
	b.Helper()
	benchOnce.Do(func() {
		s, err := core.Run(synthgen.Small(8, 21))
		if err != nil {
			panic(err)
		}
		benchStudy = s
	})
	return benchStudy
}

// --- Figures ---

func BenchmarkFig1TopApps(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(s.Fig1().Counts)
	}
	b.ReportMetric(float64(n), "apps_in_top10s")
}

func BenchmarkFig2DataEnergy(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var topJ float64
	for i := 0; i < b.N; i++ {
		res := s.Fig2()
		topJ = res.ByEnergy[0].Energy
	}
	b.ReportMetric(topJ, "top_app_J")
}

func BenchmarkFig3StateBreakdown(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var bg float64
	for i := 0; i < b.N; i++ {
		sbs := s.Fig3()
		bg = 0
		for _, sb := range sbs {
			bg += sb.BackgroundShare()
		}
		bg /= float64(len(sbs))
	}
	b.ReportMetric(bg, "mean_bg_share")
}

func BenchmarkFig4ChromeTimeline(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var post float64
	for i := 0; i < b.N; i++ {
		tl, ok := s.Fig4()
		if !ok {
			b.Fatal("no Chrome transition")
		}
		post = 0
		for j, off := range tl.Offsets {
			if off >= tl.Before {
				post += tl.Bytes[j]
			}
		}
	}
	b.ReportMetric(post, "post_bg_bytes")
}

func BenchmarkFig5PersistCDF(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var p99 float64
	for i := 0; i < b.N; i++ {
		res := s.Fig5()
		p99 = res.CDF.Quantile(0.99)
	}
	b.ReportMetric(p99, "p99_persist_s")
}

func BenchmarkFig6SinceForeground(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var res analysis.SinceForegroundResult
	for i := 0; i < b.N; i++ {
		res = s.Fig6()
	}
	b.ReportMetric(100*res.FirstMinute, "first_min_pct")
	b.ReportMetric(res.Spike5m, "spike5m_x")
	b.ReportMetric(res.Spike10m, "spike10m_x")
}

// --- Tables ---

func BenchmarkTable1CaseStudies(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var weiboJday, twitterJday float64
	for i := 0; i < b.N; i++ {
		rows := s.Table1()
		for _, r := range rows {
			switch r.Label {
			case "Weibo":
				weiboJday = r.JPerDay
			case "Twitter":
				twitterJday = r.JPerDay
			}
		}
	}
	b.ReportMetric(weiboJday, "weibo_J_day")
	b.ReportMetric(twitterJday, "twitter_J_day")
}

func BenchmarkTable2WhatIf(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var weiboCut float64
	for i := 0; i < b.N; i++ {
		rows := s.Table2(3)
		for _, r := range rows {
			if r.Label == "Weibo" {
				weiboCut = r.AvgEnergyReductionPct
			}
		}
	}
	b.ReportMetric(weiboCut, "weibo_reduction_pct")
}

// --- Headline statistics ---

func BenchmarkHeadlineStateShares(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var h analysis.Headline
	for i := 0; i < b.N; i++ {
		h = s.Headline()
	}
	b.ReportMetric(100*h.BackgroundFraction, "bg_pct")
	b.ReportMetric(100*h.PerceptibleFraction, "perceptible_pct")
	b.ReportMetric(100*h.ServiceFraction, "service_pct")
}

func BenchmarkHeadlineFirstMinute(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var f float64
	for i := 0; i < b.N; i++ {
		f = analysis.FirstMinute(s.Devices, 60, 0.8).Fraction
	}
	b.ReportMetric(100*f, "apps_meeting_pct")
}

func BenchmarkHeadlineBrowserShares(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var chrome, firefox float64
	for i := 0; i < b.N; i++ {
		shares := analysis.BrowserShares(s.Devices, []string{
			appmodel.PkgChrome, appmodel.PkgFirefox, appmodel.PkgStockBrowser,
		})
		chrome, firefox = shares[appmodel.PkgChrome], shares[appmodel.PkgFirefox]
	}
	b.ReportMetric(100*chrome, "chrome_bg_pct")
	b.ReportMetric(100*firefox, "firefox_bg_pct")
}

// --- Ablations ---

// BenchmarkAblationAttribution contrasts the paper's shared-radio tail
// attribution (tail energy to the last packet across all apps) with naive
// per-app accounting where every app is billed as if it had the radio to
// itself — the double-counting the paper's rule avoids.
func BenchmarkAblationAttribution(b *testing.B) {
	s := benchFleet(b)
	dev := s.Devices[0]
	b.ResetTimer()
	var shared, isolated float64
	for i := 0; i < b.N; i++ {
		shared = dev.Energy.Ledger.Total
		// Naive: run an independent accountant per app.
		accts := map[uint32]*radio.Accountant{}
		isolated = 0
		for j := range dev.Energy.Packets {
			p := &dev.Energy.Packets[j]
			a := accts[p.App]
			if a == nil {
				a = radio.NewAccountant(radio.LTE())
				accts[p.App] = a
			}
			dir := radio.Down
			if p.Dir == trace.DirUp {
				dir = radio.Up
			}
			a.OnPacket(p.TS.Seconds(), p.Bytes, dir)
		}
		for _, a := range accts {
			a.Finish()
			isolated += a.TotalEnergy()
		}
	}
	b.ReportMetric(shared, "shared_J")
	b.ReportMetric(isolated, "isolated_J")
	if isolated < shared {
		b.Fatalf("isolated accounting (%v) should never be below shared (%v)", isolated, shared)
	}
}

// BenchmarkAblationBatching sweeps the batching factor of a 5-minute poller
// (same bytes per day) and reports the energy ratio between unbatched and
// 8x-batched schedules.
func BenchmarkAblationBatching(b *testing.B) {
	run := func(k int) float64 {
		dt := &trace.DeviceTrace{Device: "bench", Start: 0, Apps: trace.NewAppTable()}
		g := appmodel.NewGen(dt, rng.New(3))
		app := dt.Apps.Intern("bench.app")
		p := &appmodel.PeriodicPoller{
			Period: 300 * float64(k), Jitter: 0.1,
			UpBytes: 1500 * int64(k), DownBytes: 140000 * int64(k),
			UpdatesPerConn: 4, BgState: trace.StateService,
		}
		p.Generate(g, app, nil, 0, trace.Timestamp(0).AddSeconds(2*86400))
		dt.SortByTime()
		opts := energy.DefaultOptions()
		opts.KeepPackets = false
		res, err := energy.Process(dt, opts)
		if err != nil {
			b.Fatal(err)
		}
		return res.Ledger.Total
	}
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = run(1) / run(8)
	}
	b.ReportMetric(ratio, "x1_vs_x8_ratio")
}

// BenchmarkAblationRadioModels replays the same device trace against the
// LTE, 3G and WiFi models.
func BenchmarkAblationRadioModels(b *testing.B) {
	dt := synthgen.GenerateDevice(synthgen.Small(1, 3), 0)
	models := []radio.Params{radio.LTE(), radio.ThreeG(), radio.WiFi()}
	totals := make([]float64, len(models))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for mi, m := range models {
			opts := energy.DefaultOptions()
			opts.Radio = m
			opts.KeepPackets = false
			res, err := energy.Process(dt, opts)
			if err != nil {
				b.Fatal(err)
			}
			totals[mi] = res.Ledger.Total
		}
	}
	b.ReportMetric(totals[0], "lte_J")
	b.ReportMetric(totals[1], "threeg_J")
	b.ReportMetric(totals[2], "wifi_J")
}

// BenchmarkAblationKillThreshold sweeps the §5 policy threshold 1..7 days.
func BenchmarkAblationKillThreshold(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var pts []whatif.SweepPoint
	for i := 0; i < b.N; i++ {
		pts = s.Sweep(7)
	}
	b.ReportMetric(pts[0].FleetSavedPct, "kill1d_fleet_pct")
	b.ReportMetric(pts[2].FleetSavedPct, "kill3d_fleet_pct")
	b.ReportMetric(pts[6].FleetSavedPct, "kill7d_fleet_pct")
}

// --- Pipeline micro/macro benches ---

func BenchmarkGenerateDevice(b *testing.B) {
	cfg := synthgen.Small(1, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dt := synthgen.GenerateDevice(cfg, i%4)
		if len(dt.Records) == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkProcessDevice(b *testing.B) {
	dt := synthgen.GenerateDevice(synthgen.Small(1, 7), 0)
	pkts := 0
	for i := range dt.Records {
		if dt.Records[i].Type == trace.RecPacket {
			pkts++
		}
	}
	opts := energy.DefaultOptions()
	opts.KeepPackets = false
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := energy.Process(dt, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pkts), "packets")
}

func BenchmarkLoadDevice(b *testing.B) {
	dt := synthgen.GenerateDevice(synthgen.Small(1, 7), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Load(dt, energy.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDoze simulates the Android M Doze policy the paper's
// conclusion anticipates: suppress background traffic after 1 h of device
// idleness with 6-hourly maintenance windows, re-accounting radio energy
// over the surviving packets.
func BenchmarkAblationDoze(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var res whatif.DozeResult
	for i := 0; i < b.N; i++ {
		res = whatif.SimulateDozeFleet(s.Devices, radio.LTE(), whatif.DefaultDoze())
	}
	b.ReportMetric(res.SavedPct, "doze_saved_pct")
	b.ReportMetric(float64(res.Suppressed), "suppressed_pkts")
}

// BenchmarkAblationFastDormancy shortens the LTE tail to 3 s (the
// radio-layer energy-saving feature the paper's conclusion cites) and
// reports the energy ratio against the standard 11.576 s tail.
func BenchmarkAblationFastDormancy(b *testing.B) {
	dt := synthgen.GenerateDevice(synthgen.Small(1, 3), 0)
	std := radio.LTE()
	fast := radio.LTE()
	fast.TailPhases = []radio.TailPhase{
		{Duration: 0.2, Power: 1.28804},
		{Duration: 2.8, Power: 1.06004},
	}
	run := func(p radio.Params) float64 {
		opts := energy.DefaultOptions()
		opts.Radio = p
		opts.KeepPackets = false
		res, err := energy.Process(dt, opts)
		if err != nil {
			b.Fatal(err)
		}
		return res.Ledger.Total
	}
	b.ResetTimer()
	var stdJ, fastJ float64
	for i := 0; i < b.N; i++ {
		stdJ = run(std)
		fastJ = run(fast)
	}
	b.ReportMetric(stdJ, "standard_J")
	b.ReportMetric(fastJ, "fast_dormancy_J")
	b.ReportMetric(100*(stdJ-fastJ)/stdJ, "saved_pct")
	if fastJ >= stdJ {
		b.Fatal("fast dormancy should reduce energy")
	}
}

// BenchmarkExtensionScreenOff measures the screen-off traffic share — the
// related-work view (Huang et al., IMC'12) the study's dataset supports.
func BenchmarkExtensionScreenOff(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var res analysis.ScreenOffResult
	for i := 0; i < b.N; i++ {
		res = analysis.ScreenOff(s.Devices, 10)
	}
	b.ReportMetric(100*res.OffEnergyFraction(), "off_energy_pct")
	b.ReportMetric(100*res.OffByteFraction(), "off_bytes_pct")
}

// BenchmarkExtensionLeakHosts measures the ad/analytics share of Chrome's
// leaked background traffic (§4.1's in-lab validation).
func BenchmarkExtensionLeakHosts(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var third float64
	for i := 0; i < b.N; i++ {
		third = s.LeakHosts().ThirdPartyShare()
	}
	b.ReportMetric(100*third, "third_party_pct")
}

// BenchmarkExtensionRetransmissions measures wasted wire bytes and energy
// from TCP retransmissions across the fleet.
func BenchmarkExtensionRetransmissions(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var res analysis.RetransResult
	for i := 0; i < b.N; i++ {
		res = s.Retrans()
	}
	b.ReportMetric(100*res.Total.RetransFraction(), "retrans_pct")
	b.ReportMetric(res.WastedEnergyJ, "wasted_J")
}

// BenchmarkExtensionDNS measures resolver-traffic overhead.
func BenchmarkExtensionDNS(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var res analysis.DNSResult
	for i := 0; i < b.N; i++ {
		res = s.DNSOverhead()
	}
	b.ReportMetric(float64(res.Lookups), "lookups")
	b.ReportMetric(100*res.WakeFraction(), "wake_pct")
	b.ReportMetric(res.Energy, "dns_J")
}

// BenchmarkExtensionBatchPolicy simulates fleet-wide 4x background batching
// (the §6 recommendation) with full energy re-accounting.
func BenchmarkExtensionBatchPolicy(b *testing.B) {
	s := benchFleet(b)
	b.ResetTimer()
	var res whatif.BatchResult
	for i := 0; i < b.N; i++ {
		res = s.Batching(4)
	}
	b.ReportMetric(res.SavedPct, "saved_pct")
	b.ReportMetric(res.MaxDelayS, "max_delay_s")
}

// BenchmarkAblationCarrierVariants replays one device against three LTE
// parameter sets — the paper's "values vary by device and carrier" caveat
// quantified.
func BenchmarkAblationCarrierVariants(b *testing.B) {
	dt := synthgen.GenerateDevice(synthgen.Small(1, 3), 0)
	variants := radio.LTEVariants()
	totals := make([]float64, len(variants))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for vi, v := range variants {
			opts := energy.DefaultOptions()
			opts.Radio = v
			opts.KeepPackets = false
			res, err := energy.Process(dt, opts)
			if err != nil {
				b.Fatal(err)
			}
			totals[vi] = res.Ledger.Total
		}
	}
	b.ReportMetric(totals[0], "std_J")
	b.ReportMetric(totals[1], "short_tail_J")
	b.ReportMetric(totals[2], "hot_idle_J")
}
