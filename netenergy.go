// Package netenergy reproduces "Revisiting Network Energy Efficiency of
// Mobile Apps: Performance in the Wild" (Rosen et al., IMC 2015): a
// measurement pipeline that attributes cellular network energy to apps by
// replaying packet traces through an LTE RRC power model, plus the
// synthetic device-fleet generator that stands in for the paper's
// proprietary 20-user dataset.
//
// This top-level package is a thin facade over the implementation packages:
//
//   - internal/trace     — collector record streams and the METR file format
//   - internal/netparse  — gopacket-style IPv4/IPv6 + TCP/UDP codec
//   - internal/radio     — LTE/3G/WiFi RRC power models and energy accounting
//   - internal/energy    — per-(app, state, day) energy attribution
//   - internal/procstate — Android process-state timelines
//   - internal/flows     — five-tuple flow assembly
//   - internal/appmodel  — calibrated per-app behaviour models
//   - internal/usermodel — user session/engagement simulation
//   - internal/synthgen  — fleet dataset generation
//   - internal/analysis  — one analysis per paper figure/table
//   - internal/whatif    — §5 kill-idle-apps policy simulation
//   - internal/core      — the end-to-end Study orchestration
//
// Typical use:
//
//	study, err := netenergy.Run(netenergy.SmallConfig(5, 14))
//	if err != nil { ... }
//	h := study.Headline()
//	fmt.Printf("background energy share: %.0f%%\n", 100*h.BackgroundFraction)
package netenergy

import (
	"io"

	"netenergy/internal/core"
	"netenergy/internal/synthgen"
)

// Study is the loaded dataset plus every analysis of the paper's
// evaluation. See internal/core for the full method set: Headline, Fig1-6,
// Table1, Table2, Sweep and WriteReport.
type Study = core.Study

// Config controls dataset synthesis (users, days, seed, app population).
type Config = synthgen.Config

// DefaultConfig is the full-study configuration: 20 users, 126 days,
// the calibrated 342-app population.
func DefaultConfig() Config { return synthgen.Default() }

// SmallConfig scales the study down for quick experiments and tests.
func SmallConfig(users, days int) Config { return synthgen.Small(users, days) }

// Run generates the configured fleet in memory and evaluates it.
func Run(cfg Config) (*Study, error) { return core.Run(cfg) }

// Open loads a fleet previously written to disk by cmd/gentrace or
// GenerateFleet.
func Open(dir string) (*Study, error) { return core.Open(dir) }

// GenerateFleet writes the configured fleet to dir as METR files.
func GenerateFleet(cfg Config, dir string) error {
	_, err := synthgen.GenerateFleet(cfg, dir)
	return err
}

// WriteReport renders the full evaluation (headline statistics, Figures
// 1-6, Tables 1-2) for a study.
func WriteReport(s *Study, w io.Writer) error { return s.WriteReport(w) }
