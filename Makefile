# Tier-1 check for this repo: `make ci` (lint + build + race tests + the
# fleetsim -> ingestd smoke run). The plain seed check `go build ./... &&
# go test ./...` remains a subset of this.

GO ?= go

.PHONY: ci vet lint repolint build test race cover equiv smoke fuzz fuzz-smoke bench bench-report clean

ci: lint build race equiv cover fuzz-smoke smoke bench-report

vet:
	$(GO) vet ./...

# Static-analysis gate: plain `go vet` plus the eight repolint analyzers
# (determinism, noalloc, severerr, units, obscopy, wiresize, goexit,
# lockhold — see DESIGN.md "Statically enforced invariants") driven through
# go vet's -vettool protocol, so per-package results are cached in the build
# cache like any other vet run. `make lint` is a strict superset of
# `make vet`. The human-readable vet pass gates the build; the -json pass
# archives the full finding set — suppressed findings and their
# justifications included — to bin/repolint_findings.json for CI to track.
lint: vet repolint
	$(GO) vet -vettool=$(abspath bin/repolint) ./...
	@bin/repolint -json ./... > bin/repolint_findings.json
	@echo "lint: findings archived to bin/repolint_findings.json"

repolint:
	@mkdir -p bin
	$(GO) build -o bin/repolint ./cmd/repolint

build:
	$(GO) build ./...
	@mkdir -p bin
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Statement-coverage gate: the total must not fall below the floor in
# scripts/coverage_floor.txt (set ~3 points under the measured total, so
# normal churn passes but a PR that deletes tests or lands an untested
# subsystem fails).
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	floor=$$(cat scripts/coverage_floor.txt); \
	echo "coverage: $$total% (floor $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit (t + 0 >= f + 0 ? 0 : 1) }' || \
	  { echo "coverage $$total% is below the $$floor% floor" >&2; exit 1; }

# Columnar equivalence harness: 120 randomized fixed-seed traces through
# the per-record, FeedBatch and METR-3 StreamBatches paths must produce
# bit-identical accumulator state and results (see
# internal/analysis/equiv_test.go). Run with -count=1 so a cached pass
# never masks a codec change.
equiv:
	$(GO) test -run 'TestColumnarEquivalence' -count=1 ./internal/analysis/

# End-to-end load smoke: 200 synthetic devices stream one trace-day each
# into a local ingestd — once clean, once through the fault injector;
# fleetsim exits non-zero on any dropped or rejected record, and ingestd
# must drain gracefully on SIGTERM both times.
smoke: build
	./scripts/smoke.sh

# Short runs of every fuzz target (trace reader, METR-3 columnar decoder,
# parallel file reader, LZ codec, pcap reader, packet parser, ingest frame
# decoder, checkpoint decoder, tsq query parser).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzReader -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run=NONE -fuzz=FuzzMETR3Decoder -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run=NONE -fuzz=FuzzReadFileParallel -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run=NONE -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/lz/
	$(GO) test -run=NONE -fuzz=FuzzDecompress -fuzztime=$(FUZZTIME) ./internal/lz/
	$(GO) test -run=NONE -fuzz=FuzzReader -fuzztime=$(FUZZTIME) ./internal/pcapio/
	$(GO) test -run=NONE -fuzz=FuzzDecodePacket -fuzztime=$(FUZZTIME) ./internal/netparse/
	$(GO) test -run=NONE -fuzz=FuzzFrameDecoder -fuzztime=$(FUZZTIME) ./internal/ingest/
	$(GO) test -run=NONE -fuzz=FuzzCheckpointDecoder -fuzztime=$(FUZZTIME) ./internal/ingest/checkpoint/
	$(GO) test -run=NONE -fuzz=FuzzQueryParse -fuzztime=$(FUZZTIME) ./internal/tsq/

# The ci gate fuzzes the most network-exposed decoder briefly; run `make
# fuzz` for the full set.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzFrameDecoder -fuzztime=10s ./internal/ingest/

# Full benchmark suite with the regression gate: records BENCH_<date>.json
# and fails on a >15% regression in the apply pair or decode throughput
# against the previous run (scripts/bench.sh -no-compare to skip).
bench:
	./scripts/bench.sh

# Quick advisory run for ci: single iterations, output parked in /tmp so
# throwaway numbers never enter the BENCH_*.json history, and the leading
# '-' keeps a noisy shared machine from failing the gate.
bench-report:
	-BENCHTIME=1x COUNT=1 APPLY_BENCHTIME=1x APPLY_COUNT=1 \
	  TRACE_BENCHTIME=1x TRACE_COUNT=1 \
	  ./scripts/bench.sh -no-compare /tmp/netenergy_bench_ci.json

clean:
	rm -rf bin
