module netenergy

go 1.22
