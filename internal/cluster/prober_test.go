package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeNode is an admin endpoint whose health can be toggled, standing in
// for an ingestd that hangs up (503) without releasing its port.
type fakeNode struct {
	srv *httptest.Server
	up  atomic.Bool
}

func newFakeNode(t *testing.T) *fakeNode {
	t.Helper()
	n := &fakeNode{}
	n.up.Store(true)
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !n.up.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n")) //nolint:errcheck
	}))
	t.Cleanup(n.srv.Close)
	return n
}

func (n *fakeNode) admin() string { return n.srv.Listener.Addr().String() }

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestProberLifecycle drives the full membership state machine: everyone
// starts presumed alive, a failing node is declared dead only after
// FailThreshold consecutive misses, each transition bumps the epoch, and a
// dead node that recovers rejoins without operator action (sticky
// membership via the capped re-probe schedule).
func TestProberLifecycle(t *testing.T) {
	a, b := newFakeNode(t), newFakeNode(t)
	p := NewProber(ProberConfig{
		Members: []Member{
			{ID: "n1", Stream: "s1", Admin: a.admin()},
			{ID: "n2", Stream: "s2", Admin: b.admin()},
		},
		Interval:      5 * time.Millisecond,
		MaxInterval:   40 * time.Millisecond,
		FailThreshold: 2,
		Timeout:       250 * time.Millisecond,
	})
	if got := len(p.Live()); got != 2 {
		t.Fatalf("boot live set = %d members, want 2 (presumed alive)", got)
	}
	if got := p.Epoch(); got != 1 {
		t.Fatalf("boot epoch = %d, want 1", got)
	}

	p.Start()
	defer p.Stop()

	// Healthy steady state: probes succeed, nothing flips.
	time.Sleep(40 * time.Millisecond)
	if got := p.Epoch(); got != 1 {
		t.Fatalf("healthy cluster epoch moved to %d", got)
	}

	b.up.Store(false)
	waitFor(t, 5*time.Second, "n2 declared dead", func() bool {
		live := p.Live()
		return len(live) == 1 && live[0].ID == "n1"
	})
	if got := p.Epoch(); got != 2 {
		t.Errorf("epoch after death = %d, want 2", got)
	}
	var n2 NodeStatus
	for _, st := range p.Status() {
		if st.ID == "n2" {
			n2 = st
		}
	}
	if n2.Alive || n2.Failures < 2 || n2.LastErr == "" {
		t.Errorf("dead member status = %+v", n2)
	}

	// The dead member keeps being probed: recovery rejoins it.
	b.up.Store(true)
	waitFor(t, 5*time.Second, "n2 rejoined", func() bool {
		return len(p.Live()) == 2
	})
	if got := p.Epoch(); got != 3 {
		t.Errorf("epoch after rejoin = %d, want 3", got)
	}
}

// TestProberBelowThreshold: fewer consecutive failures than FailThreshold
// must not flip a member — one lost heartbeat is not a death.
func TestProberBelowThreshold(t *testing.T) {
	p := NewProber(ProberConfig{
		Members:       []Member{{ID: "n1", Stream: "s1", Admin: "a1"}},
		Interval:      10 * time.Millisecond,
		FailThreshold: 3,
	})
	st := p.st[0]
	now := time.Now()
	p.apply(st, errProbe, now)
	p.apply(st, errProbe, now)
	if !st.alive || p.Epoch() != 1 {
		t.Fatalf("member flipped after %d failures (threshold 3)", st.failures)
	}
	p.apply(st, errProbe, now)
	if st.alive || p.Epoch() != 2 {
		t.Fatalf("member not dead after 3 failures: alive=%v epoch=%d", st.alive, p.Epoch())
	}
	// A single success resurrects regardless of the failure streak.
	p.apply(st, nil, now)
	if !st.alive || st.failures != 0 || p.Epoch() != 3 {
		t.Fatalf("recovery: alive=%v failures=%d epoch=%d", st.alive, st.failures, p.Epoch())
	}
}

// TestProberFlapEpochMonotonic pins the epoch contract under rapid
// die/resurrect/die flapping: the epoch moves by exactly one on every
// alive<->dead transition, never moves otherwise, and never goes
// backwards — so a consumer that cached state at epoch E can trust that
// equal epochs mean an identical live set, even through a flap storm. A
// flapping member must also never perturb a stable peer's state.
func TestProberFlapEpochMonotonic(t *testing.T) {
	p := NewProber(ProberConfig{
		Members: []Member{
			{ID: "n1", Stream: "s1", Admin: "a1"},
			{ID: "n2", Stream: "s2", Admin: "a2"},
		},
		Interval:      10 * time.Millisecond,
		FailThreshold: 2,
	})
	flap, stable := p.st[0], p.st[1]
	now := time.Now()
	last := p.Epoch()
	if last != 1 {
		t.Fatalf("boot epoch = %d, want 1", last)
	}
	const cycles = 25
	for i := 0; i < cycles; i++ {
		// One failure below threshold: no transition, no bump.
		p.apply(flap, errProbe, now)
		if e := p.Epoch(); e != last {
			t.Fatalf("cycle %d: epoch %d after sub-threshold failure, want %d", i, e, last)
		}
		// Threshold reached: dead, exactly one bump.
		p.apply(flap, errProbe, now)
		if e := p.Epoch(); e != last+1 || flap.alive {
			t.Fatalf("cycle %d: death epoch %d (alive=%v), want %d", i, e, flap.alive, last+1)
		}
		last++
		// Further failures while dead: no bump (dead is idempotent).
		p.apply(flap, errProbe, now)
		p.apply(flap, errProbe, now)
		if e := p.Epoch(); e != last {
			t.Fatalf("cycle %d: epoch %d after post-death failures, want %d", i, e, last)
		}
		// Resurrect: exactly one bump, failure streak cleared.
		p.apply(flap, nil, now)
		if e := p.Epoch(); e != last+1 || !flap.alive || flap.failures != 0 {
			t.Fatalf("cycle %d: rejoin epoch %d (alive=%v failures=%d), want %d",
				i, e, flap.alive, flap.failures, last+1)
		}
		last++
		// Repeated success: no bump (alive is idempotent).
		p.apply(flap, nil, now)
		if e := p.Epoch(); e != last {
			t.Fatalf("cycle %d: epoch %d after post-rejoin success, want %d", i, e, last)
		}
	}
	if got, want := p.Epoch(), uint64(1+2*cycles); got != want {
		t.Errorf("final epoch = %d, want %d (two transitions per cycle)", got, want)
	}
	if !stable.alive || stable.failures != 0 {
		t.Errorf("stable peer perturbed by flapping: alive=%v failures=%d", stable.alive, stable.failures)
	}
	if live := p.Live(); len(live) != 2 {
		t.Errorf("live set after settling = %d members, want 2", len(live))
	}
}

// TestReprobeEscalation: consecutive failures double the re-probe interval,
// capped at MaxInterval — cheap vigilance on the living, cheap patience
// with the dead.
func TestReprobeEscalation(t *testing.T) {
	p := NewProber(ProberConfig{
		Members:     []Member{{ID: "n1", Stream: "s1", Admin: "a1"}},
		Interval:    10 * time.Millisecond,
		MaxInterval: 60 * time.Millisecond,
	})
	want := []time.Duration{
		10 * time.Millisecond, // 1 failure
		20 * time.Millisecond,
		40 * time.Millisecond,
		60 * time.Millisecond, // capped (80 would exceed MaxInterval)
		60 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.reprobeDelay(i + 1); got != w {
			t.Errorf("reprobeDelay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

var errProbe = &probeErr{}

type probeErr struct{}

func (*probeErr) Error() string { return "connection refused" }
