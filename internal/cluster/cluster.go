// Package cluster turns N independent ingestd processes into one ingest
// fleet. It supplies the three pieces the single-process server does not
// have:
//
//   - membership: a static member list plus a liveness prober with
//     escalating re-probe intervals, producing a monotonically-versioned
//     live set (the "epoch");
//   - placement: a View that projects the live set onto the shared
//     consistent-hash NodeRing (the same ring clients walk), answering
//     "who owns this device" for the server's redirect hook;
//   - reconciliation: an Aggregator that pulls each live node's binary
//     StreamResult snapshot over the admin surface and merges them into
//     one fleet headline, and a checkpoint handoff path that ships a dead
//     node's last checkpoint file to the surviving owners.
//
// The package depends on internal/ingest for the ring, the wire types and
// the checkpoint container; ingest never depends back on cluster — the
// server sees the cluster only through its Config.Route hook.
package cluster

import (
	"fmt"
	"strings"
)

// Member is one statically-configured cluster node: a stable ID, the TCP
// address devices stream to (the ring key — every client and server hashes
// this exact string), and the admin HTTP address used for liveness probes,
// snapshot pulls and checkpoint transfer.
type Member struct {
	ID     string `json:"id"`
	Stream string `json:"stream"`
	Admin  string `json:"admin"`
}

// ParseMembers parses the cluster flag syntax:
//
//	id=streamHost:port/adminHost:port[,id=streamHost:port/adminHost:port...]
//
// IDs and both addresses must be non-empty and unique across the list.
func ParseMembers(s string) ([]Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	var out []Member
	seen := map[string]string{} // id/addr -> role, for duplicate detection
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addrs, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: member %q: want id=stream/admin", part)
		}
		stream, admin, ok := strings.Cut(addrs, "/")
		if !ok {
			return nil, fmt.Errorf("cluster: member %q: want id=stream/admin", part)
		}
		id, stream, admin = strings.TrimSpace(id), strings.TrimSpace(stream), strings.TrimSpace(admin)
		if id == "" || stream == "" || admin == "" {
			return nil, fmt.Errorf("cluster: member %q: empty field", part)
		}
		for _, key := range []string{"id:" + id, "addr:" + stream, "addr:" + admin} {
			if prev, dup := seen[key]; dup {
				return nil, fmt.Errorf("cluster: member %q: %s already used by %s", part, key, prev)
			}
			seen[key] = id
		}
		out = append(out, Member{ID: id, Stream: stream, Admin: admin})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	return out, nil
}

// MemberByID returns the member with the given ID, or false.
func MemberByID(members []Member, id string) (Member, bool) {
	for _, m := range members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}
