package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/ingest"
	"netenergy/internal/ingest/checkpoint"
	"netenergy/internal/obs"
	"netenergy/internal/tsq"
)

// AggregatorConfig tunes the fleet aggregator. Zero values select defaults.
type AggregatorConfig struct {
	// Prober supplies the live set and epoch (required).
	Prober *Prober
	// Interval is the pull-and-merge cadence (default 2s).
	Interval time.Duration
	// Timeout bounds one node's snapshot pull (default 10s).
	Timeout time.Duration
	// HandoffDirs maps member IDs to their checkpoint directories. When a
	// member transitions alive→dead, the aggregator reads that node's
	// latest valid checkpoint file and ships it to every survivor — the
	// ownership-handoff trigger. Members without an entry rely purely on
	// client retransmission after a death (records since their last ack
	// are replayed to the new owners; finalized history is lost).
	HandoffDirs map[string]string
	// PullAttempts bounds tries per node per cycle (default 2): one retry
	// covers a transient admin-plane fault without letting a dead node
	// stall the cycle — the next cycle retries anyway.
	PullAttempts int
	// HandoffAttempts bounds transfer tries per survivor (default 3).
	// Handoffs are one-shot per death, so they retry harder than pulls.
	HandoffAttempts int
	// Transport overrides the admin-plane HTTP transport — the
	// chaos-injection seam (nil: http.DefaultTransport).
	Transport http.RoundTripper
}

func (c AggregatorConfig) withDefaults() AggregatorConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.PullAttempts <= 0 {
		c.PullAttempts = 2
	}
	if c.HandoffAttempts <= 0 {
		c.HandoffAttempts = 3
	}
	return c
}

// NodeContribution is one node's share of a merged fleet headline.
type NodeContribution struct {
	NodeID  string `json:"node_id"`
	Devices int    `json:"devices"`
	Records int64  `json:"records"`
}

// FleetHeadline is the aggregator's /headline document: the single-node
// LiveHeadline evaluated over the merge of every live node's snapshot,
// stamped with the membership epoch and the per-node contributions that
// make double-count bugs attributable.
type FleetHeadline struct {
	ingest.LiveHeadline
	Epoch     uint64             `json:"epoch"`
	NodesLive int                `json:"nodes_live"`
	Nodes     []NodeContribution `json:"nodes"`
}

// Aggregator periodically pulls each live node's binary StreamResult
// snapshot over the admin surface, CRC-checks it, and merges the set into
// one fleet-wide headline. Each cycle is a fresh pull-and-merge — no
// incremental state — so a cycle observed after the fleet settles is exact
// regardless of what churn happened before it. The aggregator also owns
// the handoff trigger: when the prober declares a member dead, its last
// checkpoint file is shipped to the survivors (see ShipCheckpoint).
type Aggregator struct {
	cfg    AggregatorConfig
	client *http.Client
	reg    *obs.Registry
	events *obs.EventLog

	mergeSeconds   *obs.Histogram
	pulls          *obs.Counter
	pullErrors     *obs.Counter
	pullRetries    *obs.Counter
	handoffs       *obs.Counter
	handoffErrors  *obs.Counter
	handoffRetries *obs.Counter
	fencePosts     *obs.Counter
	fencedSkips    *obs.Counter
	fleetQueries   *obs.Counter
	queryNodeErrs  *obs.Counter
	gRecords       *obs.Gauge
	gDevices       *obs.Gauge
	gNodesLive     *obs.Gauge
	gEpoch         *obs.Gauge
	nodeRecords    map[string]*obs.Gauge

	mu       sync.RWMutex
	headline FleetHeadline
	have     bool
	prevLive map[string]bool

	// pendingHandoffs tracks dead members whose checkpoint has not been
	// shipped yet: a handoff that fails outright (unreadable dir, every
	// survivor unreachable) is retried each cycle while the member stays
	// dead, instead of being lost with the one-shot death transition. Only
	// touched from the pull cycle goroutine.
	pendingHandoffs map[string]bool

	// tombstones remembers the fence owed to each handed-off member: after
	// its checkpoint is shipped, that incarnation must never contribute a
	// snapshot again. Only touched from the pull cycle goroutine.
	tombstones map[string]checkpoint.Tombstone

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// nodePull is one node's decoded snapshot contribution. fenced marks a
// node that answered but advertised X-Fenced — alive, but its state is
// already owned by the survivors.
type nodePull struct {
	id      string
	devices int
	records int64
	fenced  bool
	res     *analysis.StreamResult
}

// NewAggregator builds an aggregator over the prober's membership.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	cfg = cfg.withDefaults()
	reg := obs.New()
	a := &Aggregator{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout, Transport: cfg.Transport},
		reg:    reg,
		events: obs.NewEventLog(256),

		mergeSeconds:   reg.Histogram("aggregator_merge_seconds", "one pull-and-merge cycle duration", obs.DurationBuckets()),
		pulls:          reg.Counter("aggregator_pulls_total", "successful node snapshot pulls"),
		pullErrors:     reg.Counter("aggregator_pull_errors_total", "failed node snapshot pulls"),
		pullRetries:    reg.Counter("aggregator_pull_retries_total", "snapshot pull attempts beyond the first"),
		handoffs:       reg.Counter("aggregator_handoffs_total", "checkpoint handoffs shipped for dead members"),
		handoffErrors:  reg.Counter("aggregator_handoff_errors_total", "checkpoint handoffs that failed"),
		handoffRetries: reg.Counter("aggregator_handoff_retries_total", "handoff transfer attempts beyond the first"),
		fencePosts:     reg.Counter("aggregator_fence_posts_total", "fence requests posted to resurrected members"),
		fencedSkips:    reg.Counter("aggregator_fenced_skips_total", "pull cycles that excluded a fenced member"),
		fleetQueries:   reg.Counter("aggregator_queries_total", "fleet query fan-outs served"),
		queryNodeErrs:  reg.Counter("aggregator_query_node_errors_total", "member /query fetches dropped from a fleet query"),
		gRecords:       reg.Gauge("aggregator_records", "fleet records at the last merge"),
		gDevices:       reg.Gauge("aggregator_devices", "fleet devices at the last merge"),
		gNodesLive:     reg.Gauge("aggregator_nodes_live", "live members at the last merge"),
		gEpoch:         reg.Gauge("aggregator_epoch", "membership epoch at the last merge"),
		nodeRecords:    map[string]*obs.Gauge{},

		pendingHandoffs: map[string]bool{},
		tombstones:      map[string]checkpoint.Tombstone{},

		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	reg.GaugeFunc("aggregator_cluster_epoch", "live membership epoch from the prober",
		func() float64 { return float64(cfg.Prober.Epoch()) })
	for _, m := range cfg.Prober.Members() {
		a.nodeRecords[m.ID] = reg.Gauge(
			fmt.Sprintf("aggregator_node_records{node=%q}", m.ID),
			"records contributed by one node at the last merge")
		id := m.ID
		reg.GaugeFunc(
			fmt.Sprintf("aggregator_member_failures{node=%q}", id),
			"consecutive probe failures for one member",
			func() float64 {
				for _, st := range cfg.Prober.Status() {
					if st.ID == id {
						return float64(st.Failures)
					}
				}
				return 0
			})
	}
	a.events.RegisterEventMetrics(reg, "aggregator_events_total", "events logged by level")
	return a
}

// Metrics returns the aggregator's registry (the /metrics content).
func (a *Aggregator) Metrics() *obs.Registry { return a.reg }

// Events returns the aggregator's structured event log.
func (a *Aggregator) Events() *obs.EventLog { return a.events }

// Start launches the periodic pull loop.
func (a *Aggregator) Start() { go a.run() }

// Stop halts the pull loop and waits for it to exit. Idempotent.
func (a *Aggregator) Stop() {
	a.once.Do(func() { close(a.stop) })
	<-a.done
}

func (a *Aggregator) run() {
	defer close(a.done)
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	a.PullOnce()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.PullOnce()
		}
	}
}

// PullOnce runs one pull-and-merge cycle (and the handoff check) and
// returns the resulting fleet headline. Nodes that fail to deliver a
// valid, CRC-clean snapshot are dropped from this cycle and counted — a
// corrupt snapshot must never blend into the merge.
func (a *Aggregator) PullOnce() FleetHeadline {
	t0 := time.Now()
	live := a.enforceFences(a.cfg.Prober.Live())
	epoch := a.cfg.Prober.Epoch()
	merged := analysis.NewStreamResult("fleet")
	contribs := make([]NodeContribution, 0, len(live))
	var devices int
	var records int64
	for _, m := range live {
		np, err := a.pullNode(m)
		var bo ingest.Backoff
		for attempt := 2; err != nil && attempt <= a.cfg.PullAttempts; attempt++ {
			a.pullRetries.Inc()
			time.Sleep(bo.Next())
			np, err = a.pullNode(m)
		}
		if err != nil {
			a.pullErrors.Inc()
			a.events.Logf(obs.LevelWarn, "pull %s: %v", m.ID, err)
			continue
		}
		if np.fenced {
			// A fenced process may still hold shipped state in memory; its
			// snapshot must never blend into the merge again.
			a.fencedSkips.Inc()
			a.events.Logf(obs.LevelWarn, "pull %s: node is fenced, excluded from merge", m.ID)
			continue
		}
		a.pulls.Inc()
		merged.Merge(np.res)
		devices += np.devices
		records += np.records
		contribs = append(contribs, NodeContribution{NodeID: np.id, Devices: np.devices, Records: np.records})
		if g := a.nodeRecords[m.ID]; g != nil {
			g.Set(np.records)
		}
	}
	a.mergeSeconds.Observe(time.Since(t0).Seconds())

	h := FleetHeadline{
		LiveHeadline: ingest.HeadlineOf(merged, devices, records),
		Epoch:        epoch,
		NodesLive:    len(live),
		Nodes:        contribs,
	}
	h.NodeID = "fleet"
	a.gRecords.Set(records)
	a.gDevices.Set(int64(devices))
	a.gNodesLive.Set(int64(len(live)))
	a.gEpoch.Set(int64(epoch))

	a.mu.Lock()
	a.headline = h
	a.have = true
	a.mu.Unlock()

	a.checkHandoff(live)
	return h
}

// pullNode fetches and verifies one node's snapshot.
func (a *Aggregator) pullNode(m Member) (nodePull, error) {
	resp, err := a.client.Get("http://" + m.Admin + "/snapshot")
	if err != nil {
		return nodePull{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nodePull{}, fmt.Errorf("snapshot status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Fenced") != "" {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nodePull{id: m.ID, fenced: true}, nil
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nodePull{}, err
	}
	wantCRC, err := strconv.ParseUint(resp.Header.Get("X-Snapshot-CRC32"), 10, 32)
	if err != nil {
		return nodePull{}, fmt.Errorf("snapshot crc header: %w", err)
	}
	if crc32.ChecksumIEEE(body) != uint32(wantCRC) {
		return nodePull{}, fmt.Errorf("snapshot crc mismatch (%d bytes)", len(body))
	}
	res, err := analysis.DecodeStreamResult(body)
	if err != nil {
		return nodePull{}, err
	}
	devices, err := strconv.Atoi(resp.Header.Get("X-Devices"))
	if err != nil {
		return nodePull{}, fmt.Errorf("snapshot devices header: %w", err)
	}
	records, err := strconv.ParseInt(resp.Header.Get("X-Records"), 10, 64)
	if err != nil {
		return nodePull{}, fmt.Errorf("snapshot records header: %w", err)
	}
	id := resp.Header.Get("X-Node-ID")
	if id == "" {
		id = m.ID
	}
	return nodePull{id: id, devices: devices, records: records, res: res}, nil
}

// enforceFences handles resurrected members whose state was handed off: a
// node that comes back alive after its checkpoint was shipped must be
// fenced before its snapshot can re-enter the merge, or every record the
// survivors adopted would count twice. For each live member owing a fence,
// the remembered tombstone is posted to its /fence endpoint: the shipped
// incarnation acknowledges the fence and is excluded from this cycle; a
// fresh incarnation (the node genuinely restarted, its own startup check
// consumed the on-disk tombstone) clears the debt and rejoins; an
// unreachable member is conservatively excluded until it answers.
func (a *Aggregator) enforceFences(live []Member) []Member {
	if len(a.tombstones) == 0 {
		return live
	}
	out := live[:0]
	for _, m := range live {
		tomb, owed := a.tombstones[m.ID]
		if !owed {
			out = append(out, m)
			continue
		}
		a.fencePosts.Inc()
		fr, err := postFence(a.client, m, ingest.FenceRequest{
			Incarnation: tomb.Incarnation, Generation: tomb.Generation,
		})
		switch {
		case err != nil:
			a.events.Logf(obs.LevelWarn, "fence %s: %v (excluded this cycle)", m.ID, err)
		case fr.Fenced:
			a.fencedSkips.Inc()
			a.events.Logf(obs.LevelWarn, "member %s resurrected with shipped state; fenced (incarnation %s)",
				m.ID, fr.Incarnation)
		default:
			delete(a.tombstones, m.ID)
			a.events.Logf(obs.LevelInfo, "member %s rejoined with fresh incarnation %s; fence cleared",
				m.ID, fr.Incarnation)
			out = append(out, m)
		}
	}
	return out
}

// postFence posts one fence request to a member's admin plane.
func postFence(client *http.Client, m Member, req ingest.FenceRequest) (ingest.FenceResponse, error) {
	var fr ingest.FenceResponse
	body, err := json.Marshal(req)
	if err != nil {
		return fr, err
	}
	resp, err := client.Post("http://"+m.Admin+"/fence", "application/json", bytes.NewReader(body))
	if err != nil {
		return fr, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fr, fmt.Errorf("fence status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		return fr, err
	}
	return fr, nil
}

// checkHandoff diffs the live set against the previous cycle, queues every
// newly-dead member, and ships the checkpoint of every queued member to
// the survivors — a handoff that fails outright stays queued and is
// retried next cycle while the member remains dead. Only called from the
// pull cycle (single goroutine); prevLive and the queues need no lock.
func (a *Aggregator) checkHandoff(live []Member) {
	cur := make(map[string]bool, len(live))
	for _, m := range live {
		cur[m.ID] = true
	}
	prev := a.prevLive
	a.prevLive = cur
	if prev == nil {
		return // first cycle: baseline only
	}
	for id := range prev {
		if !cur[id] {
			a.pendingHandoffs[id] = true
		}
	}
	for id := range a.pendingHandoffs {
		if cur[id] {
			// Back alive before anything shipped: the survivors hold none
			// of its state, so no handoff and no fence are owed.
			delete(a.pendingHandoffs, id)
			a.events.Logf(obs.LevelInfo, "member %s rejoined before its handoff shipped; dropped", id)
			continue
		}
		if a.handoff(id, live) {
			delete(a.pendingHandoffs, id)
		}
	}
}

// handoff ships a dead member's latest checkpoint to the survivors. It
// returns false when nothing entered the fleet and the attempt should be
// retried next cycle.
func (a *Aggregator) handoff(deadID string, survivors []Member) bool {
	dir := a.cfg.HandoffDirs[deadID]
	if dir == "" {
		a.events.Logf(obs.LevelWarn,
			"member %s died with no checkpoint dir configured; relying on client retransmission", deadID)
		return true // nothing will ever ship: don't retry
	}
	if len(survivors) == 0 {
		a.handoffErrors.Inc()
		a.events.Logf(obs.LevelError, "member %s died with no survivors to hand off to", deadID)
		return false
	}
	st, err := checkpoint.Open(dir)
	if err != nil {
		a.handoffErrors.Inc()
		a.events.Logf(obs.LevelError, "handoff %s: open checkpoint dir: %v", deadID, err)
		return false
	}
	file, gen, err := st.LoadLatestRaw()
	if err != nil || file == nil {
		a.handoffErrors.Inc()
		a.events.Logf(obs.LevelError, "handoff %s: no valid checkpoint in %s: %v", deadID, dir, err)
		return false
	}
	// Decode up front: the fence stamp below needs the snapshot's
	// incarnation, and a checkpoint we cannot decode should not be
	// shipped anywhere. Abandoning the attempt keeps the member queued
	// so the next cycle retries (shipping is content-CRC idempotent).
	snap, err := checkpoint.DecodeFile(file)
	if err != nil {
		a.handoffErrors.Inc()
		a.events.Logf(obs.LevelError, "handoff %s: decode checkpoint gen %d: %v", deadID, gen, err)
		return false
	}
	results, err := ShipCheckpointRetry(a.client, file, survivors, ShipPolicy{
		Attempts: a.cfg.HandoffAttempts,
		OnAttempt: func(member string, attempt int, err error) {
			a.handoffRetries.Inc()
			a.events.Logf(obs.LevelWarn, "handoff %s -> %s attempt %d: %v", deadID, member, attempt, err)
		},
	})
	if err != nil {
		a.handoffErrors.Inc()
		a.events.Logf(obs.LevelError, "handoff %s gen %d: %v", deadID, gen, err)
	}
	var adopted int
	for _, r := range results {
		adopted += r.AcceptedDevices
	}
	a.handoffs.Inc()
	a.events.Logf(obs.LevelInfo, "handoff %s gen %d: %d survivors adopted %d devices",
		deadID, gen, len(results), adopted)

	if len(results) == 0 && err != nil {
		// Nothing entered the fleet: no fence is owed yet, and the caller
		// keeps the member queued so next cycle re-ships.
		return false
	}
	// Shipped state is now (at least partially) owned by the survivors.
	// Record the fence — on disk, so the dead process archives itself at
	// restart, and in memory, so a live zombie of the shipped incarnation
	// is fenced before it can re-enter a merge.
	tomb := checkpoint.Tombstone{
		Node: deadID, Generation: gen, UnixNano: time.Now().UnixNano(),
		Incarnation: snap.Fence.Incarnation, Epoch: snap.Fence.Epoch,
	}
	if werr := checkpoint.WriteTombstone(dir, tomb); werr != nil {
		a.events.Logf(obs.LevelError, "handoff %s: tombstone write failed: %v", deadID, werr)
	}
	a.tombstones[deadID] = tomb
	return true
}

// FleetQueryResult is the aggregator's /query document: the merged
// per-node tsq results, stamped with the membership epoch and the IDs of
// the members that actually contributed — a partial answer (some member
// unreachable or running without a segment store) is visible, never
// silent.
type FleetQueryResult struct {
	tsq.Result
	Epoch     uint64   `json:"epoch"`
	NodesLive int      `json:"nodes_live"`
	Nodes     []string `json:"nodes"`
}

// QueryFleet fans q out to every live member's admin /query endpoint and
// merges the per-node results into one fleet document. Top-N truncation
// is deliberately NOT pushed down (Values(false)): a per-node top-N could
// drop an app that ranks fleet-wide, so every node returns its full app
// table and the cut happens once, after the merge. A member that cannot
// answer — unreachable, no segment store, or a malformed response — is
// dropped from this query and counted in
// aggregator_query_node_errors_total.
//
// Queries read each node's local segment store, so unlike /headline the
// answer covers only records that survived on disk where they were first
// ingested: checkpoint handoff moves accumulator state, not segment
// files (see DESIGN.md §12 for the exact guarantee).
func (a *Aggregator) QueryFleet(q tsq.Query) (FleetQueryResult, error) {
	live := a.cfg.Prober.Live()
	out := FleetQueryResult{Epoch: a.cfg.Prober.Epoch(), NodesLive: len(live), Nodes: []string{}}
	vals := q.Values(false)
	first := true
	for _, m := range live {
		res, err := a.queryNode(m, vals.Encode())
		if err != nil {
			a.queryNodeErrs.Inc()
			a.events.Logf(obs.LevelWarn, "query %s: %v", m.ID, err)
			continue
		}
		if first {
			out.Result = res
			first = false
		} else {
			out.Result.Merge(&res)
		}
		out.Nodes = append(out.Nodes, m.ID)
	}
	if first {
		return out, fmt.Errorf("no live member answered the query (%d live)", len(live))
	}
	out.Result.Node = "fleet"
	out.Result.Finalize(q.TopN)
	a.fleetQueries.Inc()
	return out, nil
}

// queryNode fetches one member's /query answer.
func (a *Aggregator) queryNode(m Member, rawQuery string) (tsq.Result, error) {
	var res tsq.Result
	resp, err := a.client.Get("http://" + m.Admin + "/query?" + rawQuery)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return res, fmt.Errorf("query status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&res); err != nil {
		return res, fmt.Errorf("query body: %w", err)
	}
	return res, nil
}

// Headline returns the last merged fleet headline; ok is false before the
// first completed cycle.
func (a *Aggregator) Headline() (FleetHeadline, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.headline, a.have
}

// Mux serves the aggregator's HTTP surface:
//
//	GET /healthz  -> 200 "ok"
//	GET /metrics  -> Prometheus text exposition (aggregator_* families)
//	GET /headline -> FleetHeadline JSON (503 before the first merge)
//	GET /query    -> FleetQueryResult JSON: the tsq query fanned out to
//	                 every live member and merged (same parameters as the
//	                 ingest /query endpoint; defaults to the last hour;
//	                 400 on a bad query, 503 when no member answers)
//	GET /nodes    -> membership status JSON ({epoch, nodes: [...]})
func (a *Aggregator) Mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		a.reg.WriteText(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/headline", func(w http.ResponseWriter, r *http.Request) {
		h, ok := a.Headline()
		if !ok {
			http.Error(w, "no merge cycle completed yet", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, h)
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		q, err := tsq.ParseQuery(r.URL.Query(), time.Now())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := a.QueryFleet(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Epoch uint64       `json:"epoch"`
			Nodes []NodeStatus `json:"nodes"`
		}{a.cfg.Prober.Epoch(), a.cfg.Prober.Status()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}
