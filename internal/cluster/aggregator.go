package cluster

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/ingest"
	"netenergy/internal/ingest/checkpoint"
	"netenergy/internal/obs"
)

// AggregatorConfig tunes the fleet aggregator. Zero values select defaults.
type AggregatorConfig struct {
	// Prober supplies the live set and epoch (required).
	Prober *Prober
	// Interval is the pull-and-merge cadence (default 2s).
	Interval time.Duration
	// Timeout bounds one node's snapshot pull (default 10s).
	Timeout time.Duration
	// HandoffDirs maps member IDs to their checkpoint directories. When a
	// member transitions alive→dead, the aggregator reads that node's
	// latest valid checkpoint file and ships it to every survivor — the
	// ownership-handoff trigger. Members without an entry rely purely on
	// client retransmission after a death (records since their last ack
	// are replayed to the new owners; finalized history is lost).
	HandoffDirs map[string]string
}

func (c AggregatorConfig) withDefaults() AggregatorConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	return c
}

// NodeContribution is one node's share of a merged fleet headline.
type NodeContribution struct {
	NodeID  string `json:"node_id"`
	Devices int    `json:"devices"`
	Records int64  `json:"records"`
}

// FleetHeadline is the aggregator's /headline document: the single-node
// LiveHeadline evaluated over the merge of every live node's snapshot,
// stamped with the membership epoch and the per-node contributions that
// make double-count bugs attributable.
type FleetHeadline struct {
	ingest.LiveHeadline
	Epoch     uint64             `json:"epoch"`
	NodesLive int                `json:"nodes_live"`
	Nodes     []NodeContribution `json:"nodes"`
}

// Aggregator periodically pulls each live node's binary StreamResult
// snapshot over the admin surface, CRC-checks it, and merges the set into
// one fleet-wide headline. Each cycle is a fresh pull-and-merge — no
// incremental state — so a cycle observed after the fleet settles is exact
// regardless of what churn happened before it. The aggregator also owns
// the handoff trigger: when the prober declares a member dead, its last
// checkpoint file is shipped to the survivors (see ShipCheckpoint).
type Aggregator struct {
	cfg    AggregatorConfig
	client *http.Client
	reg    *obs.Registry
	events *obs.EventLog

	mergeSeconds  *obs.Histogram
	pulls         *obs.Counter
	pullErrors    *obs.Counter
	handoffs      *obs.Counter
	handoffErrors *obs.Counter
	gRecords      *obs.Gauge
	gDevices      *obs.Gauge
	gNodesLive    *obs.Gauge
	gEpoch        *obs.Gauge
	nodeRecords   map[string]*obs.Gauge

	mu       sync.RWMutex
	headline FleetHeadline
	have     bool
	prevLive map[string]bool

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// nodePull is one node's decoded snapshot contribution.
type nodePull struct {
	id      string
	devices int
	records int64
	res     *analysis.StreamResult
}

// NewAggregator builds an aggregator over the prober's membership.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	cfg = cfg.withDefaults()
	reg := obs.New()
	a := &Aggregator{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout},
		reg:    reg,
		events: obs.NewEventLog(256),

		mergeSeconds:  reg.Histogram("aggregator_merge_seconds", "one pull-and-merge cycle duration", obs.DurationBuckets()),
		pulls:         reg.Counter("aggregator_pulls_total", "successful node snapshot pulls"),
		pullErrors:    reg.Counter("aggregator_pull_errors_total", "failed node snapshot pulls"),
		handoffs:      reg.Counter("aggregator_handoffs_total", "checkpoint handoffs shipped for dead members"),
		handoffErrors: reg.Counter("aggregator_handoff_errors_total", "checkpoint handoffs that failed"),
		gRecords:      reg.Gauge("aggregator_records", "fleet records at the last merge"),
		gDevices:      reg.Gauge("aggregator_devices", "fleet devices at the last merge"),
		gNodesLive:    reg.Gauge("aggregator_nodes_live", "live members at the last merge"),
		gEpoch:        reg.Gauge("aggregator_epoch", "membership epoch at the last merge"),
		nodeRecords:   map[string]*obs.Gauge{},

		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, m := range cfg.Prober.Members() {
		a.nodeRecords[m.ID] = reg.Gauge(
			fmt.Sprintf("aggregator_node_records{node=%q}", m.ID),
			"records contributed by one node at the last merge")
	}
	a.events.RegisterEventMetrics(reg, "aggregator_events_total", "events logged by level")
	return a
}

// Metrics returns the aggregator's registry (the /metrics content).
func (a *Aggregator) Metrics() *obs.Registry { return a.reg }

// Events returns the aggregator's structured event log.
func (a *Aggregator) Events() *obs.EventLog { return a.events }

// Start launches the periodic pull loop.
func (a *Aggregator) Start() { go a.run() }

// Stop halts the pull loop and waits for it to exit. Idempotent.
func (a *Aggregator) Stop() {
	a.once.Do(func() { close(a.stop) })
	<-a.done
}

func (a *Aggregator) run() {
	defer close(a.done)
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	a.PullOnce()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.PullOnce()
		}
	}
}

// PullOnce runs one pull-and-merge cycle (and the handoff check) and
// returns the resulting fleet headline. Nodes that fail to deliver a
// valid, CRC-clean snapshot are dropped from this cycle and counted — a
// corrupt snapshot must never blend into the merge.
func (a *Aggregator) PullOnce() FleetHeadline {
	t0 := time.Now()
	live := a.cfg.Prober.Live()
	epoch := a.cfg.Prober.Epoch()
	merged := analysis.NewStreamResult("fleet")
	contribs := make([]NodeContribution, 0, len(live))
	var devices int
	var records int64
	for _, m := range live {
		np, err := a.pullNode(m)
		if err != nil {
			a.pullErrors.Inc()
			a.events.Logf(obs.LevelWarn, "pull %s: %v", m.ID, err)
			continue
		}
		a.pulls.Inc()
		merged.Merge(np.res)
		devices += np.devices
		records += np.records
		contribs = append(contribs, NodeContribution{NodeID: np.id, Devices: np.devices, Records: np.records})
		if g := a.nodeRecords[m.ID]; g != nil {
			g.Set(np.records)
		}
	}
	a.mergeSeconds.Observe(time.Since(t0).Seconds())

	h := FleetHeadline{
		LiveHeadline: ingest.HeadlineOf(merged, devices, records),
		Epoch:        epoch,
		NodesLive:    len(live),
		Nodes:        contribs,
	}
	h.NodeID = "fleet"
	a.gRecords.Set(records)
	a.gDevices.Set(int64(devices))
	a.gNodesLive.Set(int64(len(live)))
	a.gEpoch.Set(int64(epoch))

	a.mu.Lock()
	a.headline = h
	a.have = true
	a.mu.Unlock()

	a.checkHandoff(live)
	return h
}

// pullNode fetches and verifies one node's snapshot.
func (a *Aggregator) pullNode(m Member) (nodePull, error) {
	resp, err := a.client.Get("http://" + m.Admin + "/snapshot")
	if err != nil {
		return nodePull{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nodePull{}, fmt.Errorf("snapshot status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nodePull{}, err
	}
	wantCRC, err := strconv.ParseUint(resp.Header.Get("X-Snapshot-CRC32"), 10, 32)
	if err != nil {
		return nodePull{}, fmt.Errorf("snapshot crc header: %w", err)
	}
	if crc32.ChecksumIEEE(body) != uint32(wantCRC) {
		return nodePull{}, fmt.Errorf("snapshot crc mismatch (%d bytes)", len(body))
	}
	res, err := analysis.DecodeStreamResult(body)
	if err != nil {
		return nodePull{}, err
	}
	devices, err := strconv.Atoi(resp.Header.Get("X-Devices"))
	if err != nil {
		return nodePull{}, fmt.Errorf("snapshot devices header: %w", err)
	}
	records, err := strconv.ParseInt(resp.Header.Get("X-Records"), 10, 64)
	if err != nil {
		return nodePull{}, fmt.Errorf("snapshot records header: %w", err)
	}
	id := resp.Header.Get("X-Node-ID")
	if id == "" {
		id = m.ID
	}
	return nodePull{id: id, devices: devices, records: records, res: res}, nil
}

// checkHandoff diffs the live set against the previous cycle and ships the
// checkpoint of every newly-dead member to the survivors. Only called from
// the pull cycle (single goroutine); prevLive needs no lock of its own.
func (a *Aggregator) checkHandoff(live []Member) {
	cur := make(map[string]bool, len(live))
	for _, m := range live {
		cur[m.ID] = true
	}
	prev := a.prevLive
	a.prevLive = cur
	if prev == nil {
		return // first cycle: baseline only
	}
	for id := range prev {
		if cur[id] {
			continue
		}
		a.handoff(id, live)
	}
}

// handoff ships a dead member's latest checkpoint to the survivors.
func (a *Aggregator) handoff(deadID string, survivors []Member) {
	dir := a.cfg.HandoffDirs[deadID]
	if dir == "" {
		a.events.Logf(obs.LevelWarn,
			"member %s died with no checkpoint dir configured; relying on client retransmission", deadID)
		return
	}
	if len(survivors) == 0 {
		a.handoffErrors.Inc()
		a.events.Logf(obs.LevelError, "member %s died with no survivors to hand off to", deadID)
		return
	}
	st, err := checkpoint.Open(dir)
	if err != nil {
		a.handoffErrors.Inc()
		a.events.Logf(obs.LevelError, "handoff %s: open checkpoint dir: %v", deadID, err)
		return
	}
	file, gen, err := st.LoadLatestRaw()
	if err != nil || file == nil {
		a.handoffErrors.Inc()
		a.events.Logf(obs.LevelError, "handoff %s: no valid checkpoint in %s: %v", deadID, dir, err)
		return
	}
	results, err := ShipCheckpoint(a.client, file, survivors)
	if err != nil {
		a.handoffErrors.Inc()
		a.events.Logf(obs.LevelError, "handoff %s gen %d: %v", deadID, gen, err)
	}
	var adopted int
	for _, r := range results {
		adopted += r.AcceptedDevices
	}
	a.handoffs.Inc()
	a.events.Logf(obs.LevelInfo, "handoff %s gen %d: %d survivors adopted %d devices",
		deadID, gen, len(results), adopted)
}

// Headline returns the last merged fleet headline; ok is false before the
// first completed cycle.
func (a *Aggregator) Headline() (FleetHeadline, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.headline, a.have
}

// Mux serves the aggregator's HTTP surface:
//
//	GET /healthz  -> 200 "ok"
//	GET /metrics  -> Prometheus text exposition (aggregator_* families)
//	GET /headline -> FleetHeadline JSON (503 before the first merge)
//	GET /nodes    -> membership status JSON ({epoch, nodes: [...]})
func (a *Aggregator) Mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		a.reg.WriteText(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/headline", func(w http.ResponseWriter, r *http.Request) {
		h, ok := a.Headline()
		if !ok {
			http.Error(w, "no merge cycle completed yet", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, h)
	})
	mux.HandleFunc("/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Epoch uint64       `json:"epoch"`
			Nodes []NodeStatus `json:"nodes"`
		}{a.cfg.Prober.Epoch(), a.cfg.Prober.Status()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}
