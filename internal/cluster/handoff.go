package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"netenergy/internal/ingest"
)

// ShipPolicy bounds the per-survivor retry loop around a checkpoint
// handoff. The zero value means one attempt per survivor, no retries.
type ShipPolicy struct {
	// Attempts is the total tries per survivor (default 1). Re-delivery is
	// idempotent on the receiver (positional rule, retirement ledger,
	// content-CRC dedup of the legacy aggregate), so retrying a transfer
	// whose reply was lost cannot double-count.
	Attempts int
	// Backoff paces the retries (zero value: 50ms base, 5s cap, jittered).
	Backoff ingest.Backoff
	// OnAttempt, when set, observes every attempt after the first — the
	// per-attempt metrics hook (attempt is 2-based by the time it fires).
	OnAttempt func(member string, attempt int, err error)
}

func (p ShipPolicy) withDefaults() ShipPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 1
	}
	return p
}

// ShipCheckpoint delivers checkpoint-file bytes (the exact atomic
// fsync-rename format, CRC and all) to every survivor's admin /transfer
// endpoint — the ownership-handoff send path, used both by the aggregator
// when a member dies and by a draining node shipping its own final
// checkpoint to its peers. Single-attempt; see ShipCheckpointRetry for the
// bounded-retry variant.
//
// The same file goes to every survivor: each receiver keeps only the
// devices it owns under its current ring, so nothing is stranded and no
// device lands twice. Survivors are contacted in ID order and only the
// first receives the legacy retired aggregate (the rest get
// ?skip_retired=1) — exactly one copy of unattributed finalized energy may
// enter the fleet; ledger-held retirements are ownership-routed per device
// and ride every copy. Every survivor is attempted even after a failure
// (partial delivery beats none, and re-delivery is idempotent); the
// failures come back joined into one error.
func ShipCheckpoint(client *http.Client, file []byte, survivors []Member) ([]ingest.TransferResult, error) {
	return ShipCheckpointRetry(client, file, survivors, ShipPolicy{})
}

// ShipCheckpointRetry is ShipCheckpoint with a bounded per-survivor
// retry-with-backoff loop: a transient transport error, a 5xx, or a torn
// reply is retried up to policy.Attempts times before the survivor is
// given up on. Deterministic rejections (4xx: the file itself is bad) are
// not retried — the same bytes would bounce again.
func ShipCheckpointRetry(client *http.Client, file []byte, survivors []Member, policy ShipPolicy) ([]ingest.TransferResult, error) {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	policy = policy.withDefaults()
	sorted := append([]Member(nil), survivors...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	var results []ingest.TransferResult
	var errs []error
	for i, m := range sorted {
		url := "http://" + m.Admin + "/transfer"
		if i > 0 {
			url += "?skip_retired=1"
		}
		bo := policy.Backoff
		var tr ingest.TransferResult
		var err error
		for attempt := 1; ; attempt++ {
			var retriable bool
			tr, retriable, err = postTransfer(client, url, file)
			if err == nil || !retriable || attempt >= policy.Attempts {
				break
			}
			if policy.OnAttempt != nil {
				policy.OnAttempt(m.ID, attempt+1, err)
			}
			time.Sleep(bo.Next())
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", m.ID, err))
			continue
		}
		results = append(results, tr)
	}
	return results, errors.Join(errs...)
}

// postTransfer performs one transfer attempt; retriable distinguishes
// transient failures (worth retrying with the same bytes) from
// deterministic rejections.
func postTransfer(client *http.Client, url string, file []byte) (tr ingest.TransferResult, retriable bool, err error) {
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(file))
	if err != nil {
		return tr, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return tr, resp.StatusCode >= 500, fmt.Errorf("transfer status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return tr, true, fmt.Errorf("transfer reply: %w", err)
	}
	return tr, false, nil
}
