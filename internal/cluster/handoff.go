package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"netenergy/internal/ingest"
)

// ShipCheckpoint delivers checkpoint-file bytes (the exact atomic
// fsync-rename format, CRC and all) to every survivor's admin /transfer
// endpoint — the ownership-handoff send path, used both by the aggregator
// when a member dies and by a draining node shipping its own final
// checkpoint to its peers.
//
// The same file goes to every survivor: each receiver keeps only the
// devices it owns under its current ring, so nothing is stranded and no
// device lands twice. Survivors are contacted in ID order and only the
// first receives the retired aggregate (the rest get ?skip_retired=1) —
// exactly one copy of finalized energy may enter the fleet. Every survivor
// is attempted even after a failure (partial delivery beats none, and
// re-delivery is idempotent: the receivers' positional rule drops stale
// device entries and the retired aggregate is deduplicated by content CRC);
// the failures come back joined into one error.
func ShipCheckpoint(client *http.Client, file []byte, survivors []Member) ([]ingest.TransferResult, error) {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	sorted := append([]Member(nil), survivors...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	var results []ingest.TransferResult
	var errs []error
	for i, m := range sorted {
		url := "http://" + m.Admin + "/transfer"
		if i > 0 {
			url += "?skip_retired=1"
		}
		resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(file))
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", m.ID, err))
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			errs = append(errs, fmt.Errorf("%s: transfer status %d", m.ID, resp.StatusCode))
			continue
		}
		var tr ingest.TransferResult
		err = json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: transfer reply: %w", m.ID, err))
			continue
		}
		results = append(results, tr)
	}
	return results, errors.Join(errs...)
}
