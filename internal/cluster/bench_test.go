package cluster

import (
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"netenergy/internal/ingest"
	"netenergy/internal/ingest/checkpoint"
	"netenergy/internal/synthgen"
)

// BenchmarkAggregateMerge measures one full aggregator cycle — pulling a
// binary snapshot from every live node over admin HTTP and merging them
// into the fleet headline — against three in-process nodes that have each
// ingested a third of a synthetic fleet. The reported aggregate_merge_ms
// is the end-to-end cycle latency bench.sh records in BENCH_*.json and
// gates on: it bounds how stale the fleet headline can be at a given pull
// interval, so a merge that quietly goes quadratic in devices fails the
// trajectory check instead of silently stretching the staleness window.
func BenchmarkAggregateMerge(b *testing.B) {
	const n = 3
	var srvs [n]*ingest.Server
	members := make([]Member, n)
	for i := 0; i < n; i++ {
		srvs[i] = startIngest(b, ingest.Config{
			NodeID: nodeID(i), Shards: 2, QueueDepth: 64, BatchSize: 32,
		})
		defer srvs[i].Kill()
		members[i] = Member{ID: nodeID(i), Stream: srvs[i].Addr().String(), Admin: srvs[i].AdminAddr().String()}
	}

	dts := synthgen.GenerateInMemory(synthgen.Small(12, 2))
	var sent int64
	for i, dt := range dts {
		sent += int64(len(dt.Records))
		streamAll(b, srvs[i%n].Addr().String(), dt)
	}

	// The prober is never started: all members stay presumed alive, so
	// every iteration pulls from all three nodes and nothing re-probes
	// mid-measurement.
	p := NewProber(ProberConfig{Members: members, Interval: time.Hour})
	agg := NewAggregator(AggregatorConfig{Prober: p, Timeout: 10 * time.Second})

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := agg.PullOnce()
		if h.Records != sent {
			b.Fatalf("merge lost records: %d, want %d", h.Records, sent)
		}
	}
	b.StopTimer()
	b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "aggregate_merge_ms")
}

// BenchmarkShipCheckpointRetry measures one dead-member checkpoint handoff
// through a flaky survivor admin plane: a front end 503s every other
// transfer POST, so every iteration pays exactly one retry (plus its
// backoff) before the survivor adopts. The reported handoff_retry_total is
// retries per shipped handoff — bench.sh records it in BENCH_*.json so the
// retry loop's existence (and its per-attempt cost) stays visible.
func BenchmarkShipCheckpointRetry(b *testing.B) {
	survivor := startIngest(b, ingest.Config{
		NodeID: "s1", Shards: 2, QueueDepth: 64, BatchSize: 32,
	})
	defer survivor.Kill()

	// Build a realistic checkpoint: a node ingests one device, persists,
	// and dies; its latest generation is what every iteration ships.
	dir := b.TempDir()
	dead := startIngest(b, ingest.Config{
		NodeID: "d1", Shards: 2, QueueDepth: 64, BatchSize: 32,
		CheckpointDir: dir, CheckpointInterval: time.Hour,
	})
	dt := synthgen.GenerateDevice(synthgen.Small(1, 2), 0)
	streamAll(b, dead.Addr().String(), dt)
	if err := dead.SaveCheckpoint(); err != nil {
		b.Fatal(err)
	}
	dead.Kill()
	st, err := checkpoint.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	file, _, err := st.LoadLatestRaw()
	if err != nil || file == nil {
		b.Fatalf("no checkpoint to ship: %v", err)
	}

	var calls atomic.Int64
	proxy := httputil.NewSingleHostReverseProxy(&url.URL{
		Scheme: "http", Host: survivor.AdminAddr().String(),
	})
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%2 == 1 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	defer front.Close()
	members := []Member{{ID: "s1", Stream: survivor.Addr().String(), Admin: front.Listener.Addr().String()}}

	var retries int64
	policy := ShipPolicy{
		Attempts:  3,
		Backoff:   ingest.Backoff{Base: 100 * time.Microsecond, Max: 100 * time.Microsecond},
		OnAttempt: func(string, int, error) { retries++ },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ShipCheckpointRetry(nil, file, members, policy); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(retries)/float64(b.N), "handoff_retry_total")
}
