package cluster

import (
	"testing"
	"time"

	"netenergy/internal/ingest"
	"netenergy/internal/synthgen"
)

// BenchmarkAggregateMerge measures one full aggregator cycle — pulling a
// binary snapshot from every live node over admin HTTP and merging them
// into the fleet headline — against three in-process nodes that have each
// ingested a third of a synthetic fleet. The reported aggregate_merge_ms
// is the end-to-end cycle latency bench.sh records in BENCH_*.json and
// gates on: it bounds how stale the fleet headline can be at a given pull
// interval, so a merge that quietly goes quadratic in devices fails the
// trajectory check instead of silently stretching the staleness window.
func BenchmarkAggregateMerge(b *testing.B) {
	const n = 3
	var srvs [n]*ingest.Server
	members := make([]Member, n)
	for i := 0; i < n; i++ {
		srvs[i] = startIngest(b, ingest.Config{
			NodeID: nodeID(i), Shards: 2, QueueDepth: 64, BatchSize: 32,
		})
		defer srvs[i].Kill()
		members[i] = Member{ID: nodeID(i), Stream: srvs[i].Addr().String(), Admin: srvs[i].AdminAddr().String()}
	}

	dts := synthgen.GenerateInMemory(synthgen.Small(12, 2))
	var sent int64
	for i, dt := range dts {
		sent += int64(len(dt.Records))
		streamAll(b, srvs[i%n].Addr().String(), dt)
	}

	// The prober is never started: all members stay presumed alive, so
	// every iteration pulls from all three nodes and nothing re-probes
	// mid-measurement.
	p := NewProber(ProberConfig{Members: members, Interval: time.Hour})
	agg := NewAggregator(AggregatorConfig{Prober: p, Timeout: 10 * time.Second})

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := agg.PullOnce()
		if h.Records != sent {
			b.Fatalf("merge lost records: %d, want %d", h.Records, sent)
		}
	}
	b.StopTimer()
	b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "aggregate_merge_ms")
}
