package cluster

import (
	"encoding/json"
	"hash/crc32"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/ingest"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
	"netenergy/internal/tsq"
)

// TestFleetQuery: a tsq query fanned out over two nodes, each holding a
// disjoint half of a fixed-seed fleet in its segment store, must merge to
// the same totals as the fleet headline — and top-N truncation must
// happen after the merge, so the fleet ranking is a prefix of the full
// fleet ranking, not a blend of per-node prefixes.
func TestFleetQuery(t *testing.T) {
	s1 := startIngest(t, ingest.Config{NodeID: "n1", Shards: 2, QueueDepth: 16, BatchSize: 8, SegmentDir: t.TempDir()})
	s2 := startIngest(t, ingest.Config{NodeID: "n2", Shards: 2, QueueDepth: 16, BatchSize: 8, SegmentDir: t.TempDir()})
	defer s1.Kill()
	defer s2.Kill()

	dts := synthgen.GenerateInMemory(synthgen.Small(4, 1))
	var sent int64
	var maxTS trace.Timestamp
	minTS := trace.Timestamp(math.MaxInt64)
	for i, dt := range dts {
		sent += int64(len(dt.Records))
		for j := range dt.Records {
			if dt.Records[j].TS > maxTS {
				maxTS = dt.Records[j].TS
			}
			if dt.Records[j].TS < minTS {
				minTS = dt.Records[j].TS
			}
		}
		if i%2 == 0 {
			streamAll(t, s1.Addr().String(), dt)
		} else {
			streamAll(t, s2.Addr().String(), dt)
		}
	}

	members := []Member{
		{ID: "n1", Stream: s1.Addr().String(), Admin: s1.AdminAddr().String()},
		{ID: "n2", Stream: s2.Addr().String(), Admin: s2.AdminAddr().String()},
		{ID: "n3", Stream: "127.0.0.1:1", Admin: "127.0.0.1:1"}, // nothing listens here
	}
	p := NewProber(ProberConfig{Members: members, Interval: time.Hour})
	agg := NewAggregator(AggregatorConfig{Prober: p, Timeout: 2 * time.Second})
	head := agg.PullOnce()

	q := tsq.Query{From: 0, To: maxTS + 1}
	res, err := agg.QueryFleet(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != sent || res.Devices != len(dts) {
		t.Fatalf("fleet query %d devices / %d records, want %d / %d", res.Devices, res.Records, len(dts), sent)
	}
	if d := math.Abs(res.TotalEnergyJ - head.TotalEnergyJ); d > 1e-6*(1+head.TotalEnergyJ) {
		t.Fatalf("fleet query total %v vs fleet headline %v", res.TotalEnergyJ, head.TotalEnergyJ)
	}
	if res.Node != "fleet" || res.Epoch != 1 || res.NodesLive != 3 {
		t.Errorf("fleet stamp: node=%q epoch=%d nodes_live=%d", res.Node, res.Epoch, res.NodesLive)
	}
	if len(res.Nodes) != 2 || res.Nodes[0] != "n1" || res.Nodes[1] != "n2" {
		t.Errorf("contributing nodes %v, want [n1 n2]", res.Nodes)
	}

	// Top-N is a prefix of the untruncated fleet ranking.
	top, err := agg.QueryFleet(tsq.Query{From: 0, To: maxTS + 1, TopN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) > 2 && len(top.Apps) != 2 {
		t.Fatalf("top-2 query returned %d apps", len(top.Apps))
	}
	for i := range top.Apps {
		if top.Apps[i] != res.Apps[i] {
			t.Fatalf("top-N row %d: %+v != full ranking %+v", i, top.Apps[i], res.Apps[i])
		}
	}

	// Windowed fan-out: per-node windows are epoch-aligned, so the merged
	// rows partition the total exactly. (From must be the true span start
	// here — from=0 with hour windows would blow the window-count cap.)
	win, err := agg.QueryFleet(tsq.Query{From: minTS, To: maxTS + 1, Window: trace.Timestamp(time.Hour / time.Microsecond)})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range win.Windows {
		sum += w.EnergyJ
	}
	if d := math.Abs(sum - res.TotalEnergyJ); d > 1e-6*(1+res.TotalEnergyJ) {
		t.Fatalf("window sum %v vs total %v", sum, res.TotalEnergyJ)
	}

	m := scrapeAgg(t, agg)
	if m["aggregator_query_node_errors_total"] != 3 { // n3 unreachable, 3 queries
		t.Errorf("aggregator_query_node_errors_total = %v, want 3", m["aggregator_query_node_errors_total"])
	}
	if m["aggregator_queries_total"] != 3 {
		t.Errorf("aggregator_queries_total = %v, want 3", m["aggregator_queries_total"])
	}

	// The HTTP surface: an explicit window answers, and the parameterless
	// default (last hour, wall clock) parses fine and returns zero rows
	// for 2012-dated data.
	ts := httptest.NewServer(agg.Mux())
	defer ts.Close()
	var doc FleetQueryResult
	resp, err := http.Get(ts.URL + "/query?from=0&to=" + strconv.FormatInt(int64(maxTS+1), 10))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Records != sent || doc.Node != "fleet" {
		t.Errorf("/query = %d records node=%q", doc.Records, doc.Node)
	}
	resp2, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var empty FleetQueryResult
	if err := json.NewDecoder(resp2.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK || empty.Records != 0 {
		t.Errorf("default /query: status %d, %d records", resp2.StatusCode, empty.Records)
	}
	resp3, err := http.Get(ts.URL + "/query?from=10&to=5")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("inverted /query range: status %d, want 400", resp3.StatusCode)
	}
}

// TestFleetQueryNoSegmentStore: members running without -segment-dir
// answer /query with 503; with no member able to answer, the fleet query
// fails loudly instead of returning a silent zero.
func TestFleetQueryNoSegmentStore(t *testing.T) {
	s := startIngest(t, ingest.Config{NodeID: "n1", Shards: 1})
	defer s.Kill()
	p := NewProber(ProberConfig{
		Members:  []Member{{ID: "n1", Stream: s.Addr().String(), Admin: s.AdminAddr().String()}},
		Interval: time.Hour,
	})
	agg := NewAggregator(AggregatorConfig{Prober: p, Timeout: 2 * time.Second})
	if _, err := agg.QueryFleet(tsq.Query{From: 0, To: 10}); err == nil {
		t.Fatal("fleet query over store-less members succeeded")
	}
	if m := scrapeAgg(t, agg); m["aggregator_query_node_errors_total"] != 1 {
		t.Errorf("aggregator_query_node_errors_total = %v, want 1", m["aggregator_query_node_errors_total"])
	}
}

// TestAggregatorCorruptHeadersSeverPull: a member whose /snapshot reply
// carries malformed X-Devices or X-Records headers must be severed from
// the cycle entirely — the body may be CRC-clean, but per-node
// contribution accounting would silently drift if the headers were
// guessed at. (internal/lint's severerr analyzer covers this package, so
// pullNode's header errors must propagate, never be swallowed.)
func TestAggregatorCorruptHeadersSeverPull(t *testing.T) {
	body := analysis.NewStreamResult("hx").AppendBinary(nil)
	crc := strconv.FormatUint(uint64(crc32.ChecksumIEEE(body)), 10)

	cases := map[string]map[string]string{
		"devices-garbage": {"X-Devices": "12x", "X-Records": "0"},
		"devices-missing": {"X-Records": "0"},
		"records-garbage": {"X-Devices": "0", "X-Records": "1e9"},
		"records-missing": {"X-Devices": "0"},
	}
	for name, hdrs := range cases {
		t.Run(name, func(t *testing.T) {
			fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("X-Node-ID", "hx")
				w.Header().Set("X-Snapshot-CRC32", crc)
				for k, v := range hdrs {
					w.Header().Set(k, v)
				}
				w.Write(body) //nolint:errcheck
			}))
			defer fake.Close()

			p := NewProber(ProberConfig{
				Members:  []Member{{ID: "hx", Admin: strings.TrimPrefix(fake.URL, "http://")}},
				Interval: time.Hour,
			})
			agg := NewAggregator(AggregatorConfig{Prober: p, Timeout: 2 * time.Second, PullAttempts: 1})
			h := agg.PullOnce()
			if len(h.Nodes) != 0 || h.Records != 0 {
				t.Fatalf("corrupt-header node blended into the merge: %+v", h.Nodes)
			}
			if m := scrapeAgg(t, agg); m["aggregator_pull_errors_total"] != 1 {
				t.Errorf("aggregator_pull_errors_total = %v, want 1", m["aggregator_pull_errors_total"])
			}
		})
	}
}
