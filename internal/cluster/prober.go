package cluster

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"netenergy/internal/obs"
)

// ProberConfig tunes the liveness loop. Zero values select defaults.
type ProberConfig struct {
	// Members is the static cluster roster. Every member starts presumed
	// alive (the cluster boots with its full ring) and is probed from the
	// first tick.
	Members []Member

	// Interval is the heartbeat cadence for healthy members (default 1s).
	Interval time.Duration
	// MaxInterval caps the escalated re-probe interval for failing and
	// dead members (default 10×Interval). Dead members keep being probed
	// at this decaying cadence — membership is sticky, not final, so a
	// restarted node rejoins without operator action.
	MaxInterval time.Duration
	// FailThreshold is how many consecutive probe failures declare a
	// member dead (default 3). One lost heartbeat must not trigger a
	// handoff: transferring ownership is expensive and churns clients.
	FailThreshold int
	// Timeout bounds one probe HTTP round-trip (default min(Interval, 2s)).
	Timeout time.Duration

	// Transport overrides the probe HTTP transport — the chaos-injection
	// seam (nil: http.DefaultTransport).
	Transport http.RoundTripper

	// Events receives membership transitions (optional).
	Events *obs.EventLog
}

func (c ProberConfig) withDefaults() ProberConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = 10 * c.Interval
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
		if c.Timeout > 2*time.Second {
			c.Timeout = 2 * time.Second
		}
	}
	if c.Events == nil {
		c.Events = obs.NewEventLog(64)
	}
	return c
}

// NodeStatus is one member's liveness as the prober sees it (the
// aggregator's /nodes document).
type NodeStatus struct {
	Member
	Alive    bool   `json:"alive"`
	Failures int    `json:"failures"`
	LastErr  string `json:"last_err,omitempty"`
}

// memberState is the prober's per-member bookkeeping, guarded by Prober.mu.
type memberState struct {
	m        Member
	alive    bool
	failures int // consecutive probe failures
	lastErr  string
	next     time.Time // when the next probe is due
}

// Prober is the liveness loop: one goroutine probing every member's admin
// /healthz. A healthy member is probed every Interval; a failing one on an
// escalating (doubling) schedule capped at MaxInterval — cheap vigilance on
// the living, cheap patience with the dead. FailThreshold consecutive
// failures flip a member to dead; any success flips it back. Every flip
// increments the epoch, the version number consumers (View, Aggregator)
// use to notice membership changed without re-reading the whole list.
type Prober struct {
	cfg    ProberConfig
	client *http.Client

	mu    sync.Mutex
	st    []*memberState
	epoch uint64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewProber builds a prober over the configured members.
func NewProber(cfg ProberConfig) *Prober {
	cfg = cfg.withDefaults()
	p := &Prober{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout, Transport: cfg.Transport},
		epoch:  1,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	now := time.Now()
	for _, m := range cfg.Members {
		p.st = append(p.st, &memberState{m: m, alive: true, next: now})
	}
	return p
}

// Start launches the probe loop.
func (p *Prober) Start() { go p.run() }

// Stop halts the probe loop and waits for it to exit. Idempotent.
func (p *Prober) Stop() {
	p.once.Do(func() { close(p.stop) })
	<-p.done
}

// Epoch returns the membership version: it increments on every alive/dead
// transition, so equal epochs guarantee an identical live set.
func (p *Prober) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Live returns the currently-alive members, sorted by ID.
func (p *Prober) Live() []Member {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Member
	for _, st := range p.st {
		if st.alive {
			out = append(out, st.m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Members returns the full static roster, sorted by ID.
func (p *Prober) Members() []Member {
	out := append([]Member(nil), p.cfg.Members...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Status reports every member's liveness, sorted by ID.
func (p *Prober) Status() []NodeStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]NodeStatus, 0, len(p.st))
	for _, st := range p.st {
		out = append(out, NodeStatus{
			Member: st.m, Alive: st.alive, Failures: st.failures, LastErr: st.lastErr,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (p *Prober) run() {
	defer close(p.done)
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-timer.C:
		}
		now := time.Now()
		for _, st := range p.due(now) {
			err := p.probe(st.m)
			p.apply(st, err, time.Now())
		}
		timer.Reset(p.untilNext(time.Now()))
	}
}

// due returns the members whose next probe time has arrived.
func (p *Prober) due(now time.Time) []*memberState {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*memberState
	for _, st := range p.st {
		if !st.next.After(now) {
			out = append(out, st)
		}
	}
	return out
}

// untilNext returns how long until the earliest pending probe.
func (p *Prober) untilNext(now time.Time) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := p.cfg.Interval
	for _, st := range p.st {
		if left := st.next.Sub(now); left < d {
			d = left
		}
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// probe performs one liveness check against a member's admin endpoint.
func (p *Prober) probe(m Member) error {
	resp, err := p.client.Get("http://" + m.Admin + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// apply folds one probe result into the member's state, escalating the
// re-probe interval on failure and bumping the epoch on transitions.
func (p *Prober) apply(st *memberState, err error, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err == nil {
		st.failures = 0
		st.lastErr = ""
		st.next = now.Add(p.cfg.Interval)
		if !st.alive {
			st.alive = true
			p.epoch++
			p.cfg.Events.Logf(obs.LevelInfo, "member %s rejoined (epoch %d)", st.m.ID, p.epoch)
		}
		return
	}
	st.failures++
	st.lastErr = err.Error()
	if st.alive && st.failures >= p.cfg.FailThreshold {
		st.alive = false
		p.epoch++
		p.cfg.Events.Logf(obs.LevelWarn, "member %s declared dead after %d failures (epoch %d): %v",
			st.m.ID, st.failures, p.epoch, err)
	}
	st.next = now.Add(p.reprobeDelay(st.failures))
}

// reprobeDelay escalates with consecutive failures: Interval, 2×, 4×, ...
// capped at MaxInterval.
func (p *Prober) reprobeDelay(failures int) time.Duration {
	d := p.cfg.Interval
	for i := 1; i < failures && d < p.cfg.MaxInterval; i++ {
		d *= 2
	}
	if d > p.cfg.MaxInterval {
		d = p.cfg.MaxInterval
	}
	return d
}
