package cluster

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/ingest"
	"netenergy/internal/obs"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

func startIngest(t testing.TB, cfg ingest.Config) *ingest.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.AdminAddr == "" {
		cfg.AdminAddr = "127.0.0.1:0"
	}
	s := ingest.NewServer(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func streamAll(t testing.TB, addr string, dt *trace.DeviceTrace) {
	t.Helper()
	c, err := ingest.Dial(addr, dt.Device, dt.Start, 10*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", dt.Device, err)
	}
	for i := range dt.Records {
		if err := c.Send(&dt.Records[i]); err != nil {
			t.Fatalf("send %s: %v", dt.Device, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close %s: %v", dt.Device, err)
	}
}

// TestAggregatorMerge: the fleet headline over two nodes, each ingesting a
// disjoint half of a generated fleet, must equal the batch pipeline over
// the whole fleet — the merge may not lose, duplicate or distort anything.
// A third, unreachable member must be dropped from the cycle and counted,
// never blended in.
func TestAggregatorMerge(t *testing.T) {
	s1 := startIngest(t, ingest.Config{NodeID: "n1", Shards: 2, QueueDepth: 16, BatchSize: 8})
	s2 := startIngest(t, ingest.Config{NodeID: "n2", Shards: 2, QueueDepth: 16, BatchSize: 8})
	defer s1.Kill()
	defer s2.Kill()

	dts := synthgen.GenerateInMemory(synthgen.Small(4, 1))
	var sent int64
	var devs1, devs2 int
	var recs1 int64
	for i, dt := range dts {
		sent += int64(len(dt.Records))
		if i%2 == 0 {
			streamAll(t, s1.Addr().String(), dt)
			devs1++
			recs1 += int64(len(dt.Records))
		} else {
			streamAll(t, s2.Addr().String(), dt)
			devs2++
		}
	}

	members := []Member{
		{ID: "n1", Stream: s1.Addr().String(), Admin: s1.AdminAddr().String()},
		{ID: "n2", Stream: s2.Addr().String(), Admin: s2.AdminAddr().String()},
		{ID: "n3", Stream: "127.0.0.1:1", Admin: "127.0.0.1:1"}, // nothing listens here
	}
	// The prober is never started: all members stay presumed-alive, so the
	// aggregator must discover n3's unreachability at pull time.
	p := NewProber(ProberConfig{Members: members, Interval: time.Hour})
	agg := NewAggregator(AggregatorConfig{Prober: p, Timeout: 2 * time.Second})

	if _, ok := agg.Headline(); ok {
		t.Fatal("headline available before any cycle")
	}
	h := agg.PullOnce()

	if h.Records != sent || h.Devices != len(dts) {
		t.Fatalf("fleet merge %d devices / %d records, want %d / %d", h.Devices, h.Records, len(dts), sent)
	}
	if h.NodeID != "fleet" || h.NodesLive != 3 || h.Epoch != 1 {
		t.Errorf("fleet stamp: node_id=%q nodes_live=%d epoch=%d", h.NodeID, h.NodesLive, h.Epoch)
	}
	if len(h.Nodes) != 2 {
		t.Fatalf("contributions from %d nodes, want 2 (n3 unreachable)", len(h.Nodes))
	}
	for _, c := range h.Nodes {
		switch c.NodeID {
		case "n1":
			if c.Devices != devs1 || c.Records != recs1 {
				t.Errorf("n1 contribution %+v, want %d devices / %d records", c, devs1, recs1)
			}
		case "n2":
			if c.Devices != devs2 || c.Records != sent-recs1 {
				t.Errorf("n2 contribution %+v, want %d devices / %d records", c, devs2, sent-recs1)
			}
		default:
			t.Errorf("contribution from unexpected node %q", c.NodeID)
		}
	}

	// Batch reference over the identical dataset.
	devs, err := analysis.LoadAll(dts, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.ComputeHeadline(devs)
	if d := math.Abs(h.TotalEnergyJ - want.TotalEnergyJ); d > 1e-6*(1+want.TotalEnergyJ) {
		t.Errorf("total energy: fleet %v vs batch %v", h.TotalEnergyJ, want.TotalEnergyJ)
	}
	if d := math.Abs(h.BackgroundFraction - want.BackgroundFraction); d > 0.01*want.BackgroundFraction {
		t.Errorf("background fraction: fleet %v vs batch %v", h.BackgroundFraction, want.BackgroundFraction)
	}
	if d := math.Abs(h.FirstMinuteFraction - want.FirstMinute.Fraction); d > 1e-9 {
		t.Errorf("first minute: fleet %v vs batch %v", h.FirstMinuteFraction, want.FirstMinute.Fraction)
	}

	// The failed pull is visible in the exposition, and the HTTP surface
	// serves the merged document.
	m := scrapeAgg(t, agg)
	if m["aggregator_pull_errors_total"] != 1 {
		t.Errorf("aggregator_pull_errors_total = %v, want 1", m["aggregator_pull_errors_total"])
	}
	if m["aggregator_pulls_total"] != 2 {
		t.Errorf("aggregator_pulls_total = %v, want 2", m["aggregator_pulls_total"])
	}
	if int64(m["aggregator_records"]) != sent {
		t.Errorf("aggregator_records = %v, want %d", m["aggregator_records"], sent)
	}

	ts := httptest.NewServer(agg.Mux())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/headline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc FleetHeadline
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Records != sent || doc.NodeID != "fleet" {
		t.Errorf("/headline = %d records node_id=%q", doc.Records, doc.NodeID)
	}
	var nodesDoc struct {
		Epoch uint64       `json:"epoch"`
		Nodes []NodeStatus `json:"nodes"`
	}
	resp2, err := http.Get(ts.URL + "/nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&nodesDoc); err != nil {
		t.Fatal(err)
	}
	if nodesDoc.Epoch != 1 || len(nodesDoc.Nodes) != 3 {
		t.Errorf("/nodes epoch=%d members=%d", nodesDoc.Epoch, len(nodesDoc.Nodes))
	}
}

func scrapeAgg(t *testing.T, agg *Aggregator) map[string]float64 {
	t.Helper()
	var sb strings.Builder
	if err := agg.Metrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	m, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return m
}
