package cluster

import (
	"strings"
	"testing"
)

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers(" n1=h1:9009/h1:9010 , n2=h2:9009/h2:9010 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("parsed %d members, want 2", len(ms))
	}
	want := []Member{
		{ID: "n1", Stream: "h1:9009", Admin: "h1:9010"},
		{ID: "n2", Stream: "h2:9009", Admin: "h2:9010"},
	}
	for i, m := range ms {
		if m != want[i] {
			t.Errorf("member %d = %+v, want %+v", i, m, want[i])
		}
	}
	if m, ok := MemberByID(ms, "n2"); !ok || m.Stream != "h2:9009" {
		t.Errorf("MemberByID(n2) = %+v, %v", m, ok)
	}
	if _, ok := MemberByID(ms, "n9"); ok {
		t.Error("MemberByID found a member that does not exist")
	}
}

func TestParseMembersRejects(t *testing.T) {
	cases := []struct {
		in   string
		frag string
	}{
		{"", "empty member list"},
		{"  , ", "empty member list"},
		{"n1=h1:9009", "want id=stream/admin"},
		{"h1:9009/h1:9010", "want id=stream/admin"},
		{"n1=/h1:9010", "empty field"},
		{"n1=h1:9009/h1:9010,n1=h2:9009/h2:9010", "id:n1 already used"},
		{"n1=h1:9009/h1:9010,n2=h1:9009/h2:9010", "addr:h1:9009 already used"},
		{"n1=h1:9009/h1:9010,n2=h2:9009/h1:9010", "addr:h1:9010 already used"},
	}
	for _, c := range cases {
		_, err := ParseMembers(c.in)
		if err == nil {
			t.Errorf("ParseMembers(%q) accepted", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ParseMembers(%q) error %q, want fragment %q", c.in, err, c.frag)
		}
	}
}
