package cluster

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/energy"
	"netenergy/internal/ingest"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

// TestClusterHandoffKillNode is the cluster tier's acceptance test, the
// three-node analogue of ingest's TestCrashRecovery: a fleet streams across
// a three-node cluster (every session routing by the shared ring, every
// node redirecting misrouted devices), then the node owning the most
// devices is killed mid-stream with no drain. The probers declare it dead,
// the aggregator ships its last checkpoint to the survivors, sessions walk
// their ring preference to the inheriting nodes and resume, and the final
// merged fleet headline must equal the batch pipeline over the same
// dataset — the death, the handoff and the retransmission must all be
// invisible in the result.
func TestClusterHandoffKillNode(t *testing.T) {
	const n = 3
	dirs := [n]string{t.TempDir(), t.TempDir(), t.TempDir()}

	// Each server's Route hook is wired to its View only after the cluster
	// addresses are known (the servers bind :0); until then every node
	// claims every device, which is moot because no client connects before
	// the wiring below.
	var routeHooks [n]atomic.Pointer[func(string) (string, bool)]
	var srvs [n]*ingest.Server
	for i := 0; i < n; i++ {
		i := i
		srvs[i] = startIngest(t, ingest.Config{
			NodeID: nodeID(i), Shards: 2, QueueDepth: 16, BatchSize: 16,
			CheckpointDir: dirs[i], CheckpointInterval: 25 * time.Millisecond,
			Route: func(device string) (string, bool) {
				if f := routeHooks[i].Load(); f != nil {
					return (*f)(device)
				}
				return "", true
			},
		})
	}

	members := make([]Member, n)
	streams := make([]string, n)
	handoffDirs := map[string]string{}
	for i := 0; i < n; i++ {
		members[i] = Member{ID: nodeID(i), Stream: srvs[i].Addr().String(), Admin: srvs[i].AdminAddr().String()}
		streams[i] = members[i].Stream
		handoffDirs[members[i].ID] = dirs[i]
	}
	proberCfg := ProberConfig{
		Members:       members,
		Interval:      20 * time.Millisecond,
		MaxInterval:   200 * time.Millisecond,
		FailThreshold: 2,
		Timeout:       500 * time.Millisecond,
	}
	for i := 0; i < n; i++ {
		p := NewProber(proberCfg)
		route := NewView(members[i], p).Route
		routeHooks[i].Store(&route)
		p.Start()
		defer p.Stop()
	}
	aggProber := NewProber(proberCfg)
	aggProber.Start()
	defer aggProber.Stop()
	agg := NewAggregator(AggregatorConfig{
		Prober:      aggProber,
		Interval:    50 * time.Millisecond,
		Timeout:     2 * time.Second,
		HandoffDirs: handoffDirs,
	})
	agg.Start()
	defer agg.Stop()

	dts := synthgen.GenerateInMemory(synthgen.Small(8, 2))
	var sent int64
	for _, dt := range dts {
		sent += int64(len(dt.Records))
	}

	// Kill the node that owns the most devices so the death is guaranteed
	// to disrupt sessions and move state.
	ring := ingest.NewNodeRing(streams)
	owned := map[string]int{}
	for _, dt := range dts {
		owned[ring.Owner(dt.Device)]++
	}
	killIdx := 0
	for i, s := range streams {
		if owned[s] > owned[streams[killIdx]] {
			killIdx = i
		}
	}
	if owned[streams[killIdx]] == 0 {
		t.Fatal("placement degenerate: no node owns any devices")
	}

	var wg sync.WaitGroup
	stats := make([]ingest.SessionStats, len(dts))
	errs := make([]error, len(dts))
	for i, dt := range dts {
		wg.Add(1)
		go func(i int, dt *trace.DeviceTrace) {
			defer wg.Done()
			stats[i], errs[i] = ingest.StreamTrace(ingest.SessionConfig{
				Nodes:    streams,
				Device:   dt.Device,
				Start:    dt.Start,
				Deadline: 2 * time.Minute,
				Backoff:  ingest.Backoff{Base: 5 * time.Millisecond, Max: 80 * time.Millisecond},
				Pace: func(j int) time.Duration {
					if j%8 == 0 {
						return 400 * time.Microsecond
					}
					return 0
				},
			}, dt.Records)
		}(i, dt)
	}

	// Let the fleet get roughly a third of the way in, with the victim
	// holding at least one durable checkpoint, then pull the plug.
	victim := srvs[killIdx]
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var total int64
		for _, s := range srvs {
			total += s.Stats(false).Records
		}
		vst := victim.Stats(false)
		if total >= sent/3 && vst.Records > 0 && vst.Checkpoint != nil && vst.Checkpoint.Generation >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.Kill()
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %s: %v", dts[i].Device, err)
		}
	}
	var conns int
	for _, st := range stats {
		conns += st.Conns
	}
	if conns <= len(dts) {
		t.Errorf("no session reconnected (conns=%d over %d devices) — kill landed too early/late", conns, len(dts))
	}

	// The aggregator settles: once every session has finished and the
	// handoff landed, a full pull cycle is exact.
	waitFor(t, 60*time.Second, "fleet headline settles", func() bool {
		h, ok := agg.Headline()
		return ok && h.Records == sent && h.Devices == len(dts) && h.NodesLive == n-1
	})
	h, _ := agg.Headline()
	if h.Epoch < 2 {
		t.Errorf("epoch = %d after a death, want >= 2", h.Epoch)
	}
	for _, c := range h.Nodes {
		if c.NodeID == nodeID(killIdx) {
			t.Errorf("dead node %s still contributing", c.NodeID)
		}
	}

	// The handoff actually moved: the aggregator shipped one, and each
	// survivor processed a transfer.
	m := scrapeAgg(t, agg)
	if m["aggregator_handoffs_total"] < 1 {
		t.Errorf("aggregator_handoffs_total = %v, want >= 1", m["aggregator_handoffs_total"])
	}
	if m["aggregator_handoff_errors_total"] != 0 {
		t.Errorf("aggregator_handoff_errors_total = %v, want 0", m["aggregator_handoff_errors_total"])
	}
	for i, s := range srvs {
		if i == killIdx {
			continue
		}
		if got := s.Stats(false).Transfers; got < 1 {
			t.Errorf("survivor %s transfers = %d, want >= 1", nodeID(i), got)
		}
	}

	// Every record accounted for exactly once on exactly one survivor.
	for _, dt := range dts {
		var got int64
		for i, s := range srvs {
			if i != killIdx {
				got += s.DeviceRecords(dt.Device)
			}
		}
		if got != int64(len(dt.Records)) {
			t.Errorf("device %s: survivors hold %d records, sent %d", dt.Device, got, len(dt.Records))
		}
	}

	// Batch reference over the identical dataset: the merged fleet headline
	// must match within the same tolerances as single-node crash recovery.
	devs, err := analysis.LoadAll(dts, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.ComputeHeadline(devs)
	if d := math.Abs(h.TotalEnergyJ - want.TotalEnergyJ); d > 1e-6*(1+want.TotalEnergyJ) {
		t.Errorf("total energy: fleet %v vs batch %v", h.TotalEnergyJ, want.TotalEnergyJ)
	}
	if d := math.Abs(h.BackgroundFraction - want.BackgroundFraction); d > 0.01*want.BackgroundFraction {
		t.Errorf("background fraction: fleet %v vs batch %v", h.BackgroundFraction, want.BackgroundFraction)
	}
	if d := math.Abs(h.FirstMinuteFraction - want.FirstMinute.Fraction); d > 1e-9 {
		t.Errorf("first minute: fleet %v vs batch %v", h.FirstMinuteFraction, want.FirstMinute.Fraction)
	}
}

func nodeID(i int) string { return "n" + string(rune('1'+i)) }
