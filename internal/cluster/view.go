package cluster

import (
	"sync"

	"netenergy/internal/ingest"
)

// View is one node's placement function: the live membership projected
// onto the shared NodeRing, rebuilt lazily whenever the prober's epoch
// moves. Its Route method plugs directly into ingest.Config.Route, giving
// the server its redirect decisions without ingest ever importing cluster.
//
// The ring is keyed by stream addresses — the one identifier clients and
// servers both hold — and always includes this node's own address even if
// the prober has (transiently) declared it dead: a node never redirects a
// device to a ring it has excluded itself from, it just keeps serving
// until the operator stops it.
type View struct {
	self   Member
	prober *Prober

	mu    sync.Mutex
	epoch uint64
	ring  *ingest.NodeRing
}

// NewView builds the placement view for self over the prober's live set.
func NewView(self Member, p *Prober) *View {
	return &View{self: self, prober: p}
}

// Route reports the stream address owning device under the current live
// ring and whether that owner is this node. It is safe for concurrent use
// by every connection handler.
func (v *View) Route(device string) (addr string, self bool) {
	owner := v.currentRing().Owner(device)
	return owner, owner == v.self.Stream
}

// Ring returns the current live ring (rebuilding it if the epoch moved).
func (v *View) Ring() *ingest.NodeRing { return v.currentRing() }

func (v *View) currentRing() *ingest.NodeRing {
	e := v.prober.Epoch()
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.ring == nil || e != v.epoch {
		live := v.prober.Live()
		addrs := make([]string, 0, len(live)+1)
		for _, m := range live {
			addrs = append(addrs, m.Stream)
		}
		addrs = append(addrs, v.self.Stream) // NodeRing dedups
		v.ring = ingest.NewNodeRing(addrs)
		v.epoch = e
	}
	return v.ring
}
