package cluster

import (
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/chaos"
	"netenergy/internal/energy"
	"netenergy/internal/ingest"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

// TestClusterPartitionHeals is the partition-grade acceptance test: a
// three-node durable-FIN cluster streams a fleet while the admin plane
// suffers injected timeouts, corrupt bodies and slow responses; mid-stream
// the busiest node is partitioned away (both planes) WITHOUT dying — the
// nastier cousin of a kill, because the isolated node keeps running with
// its state. The survivors declare it dead, adopt its checkpoint, and
// finish the fleet. When the partition heals, the victim resurrects into
// the membership with already-handed-off state — the double-count window —
// and the aggregator must fence it before its snapshot re-enters a merge.
// The settled fleet headline must equal the batch pipeline bit-for-bit
// within the standard tolerances.
func TestClusterPartitionHeals(t *testing.T) {
	const n = 3
	dirs := [n]string{t.TempDir(), t.TempDir(), t.TempDir()}
	faults := chaos.NewAdmin(chaos.AdminConfig{
		TimeoutRate: 0.05,
		CorruptRate: 0.05,
		SlowRate:    0.2,
		MaxDelay:    5 * time.Millisecond,
		Seed:        42,
	})

	var routeHooks [n]atomic.Pointer[func(string) (string, bool)]
	var srvs [n]*ingest.Server
	for i := 0; i < n; i++ {
		i := i
		srvs[i] = startIngest(t, ingest.Config{
			NodeID: nodeID(i), Shards: 2, QueueDepth: 16, BatchSize: 16,
			CheckpointDir: dirs[i], CheckpointInterval: 25 * time.Millisecond,
			DurableFIN: true,
			Route: func(device string) (string, bool) {
				if f := routeHooks[i].Load(); f != nil {
					return (*f)(device)
				}
				return "", true
			},
		})
	}

	members := make([]Member, n)
	streams := make([]string, n)
	handoffDirs := map[string]string{}
	for i := 0; i < n; i++ {
		members[i] = Member{ID: nodeID(i), Stream: srvs[i].Addr().String(), Admin: srvs[i].AdminAddr().String()}
		streams[i] = members[i].Stream
		handoffDirs[members[i].ID] = dirs[i]
	}
	proberCfg := func(self string) ProberConfig {
		return ProberConfig{
			Members:       members,
			Interval:      20 * time.Millisecond,
			MaxInterval:   200 * time.Millisecond,
			FailThreshold: 2,
			Timeout:       500 * time.Millisecond,
			// Partition-only: probes decide membership, so probabilistic
			// faults there would fabricate churn unrelated to the cut.
			Transport: faults.PartitionOnlyTransport(self, nil),
		}
	}
	for i := 0; i < n; i++ {
		p := NewProber(proberCfg(members[i].Admin))
		route := NewView(members[i], p).Route
		routeHooks[i].Store(&route)
		p.Start()
		defer p.Stop()
	}
	aggProber := NewProber(proberCfg("aggregator"))
	aggProber.Start()
	defer aggProber.Stop()
	agg := NewAggregator(AggregatorConfig{
		Prober:          aggProber,
		Interval:        50 * time.Millisecond,
		Timeout:         2 * time.Second,
		HandoffDirs:     handoffDirs,
		PullAttempts:    3,
		HandoffAttempts: 4,
		// The full fault menu rides the aggregator's plane: pulls, handoff
		// transfers and fence posts all see timeouts, corruption and delays.
		Transport: faults.Transport("aggregator", nil),
	})
	agg.Start()
	defer agg.Stop()

	dts := synthgen.GenerateInMemory(synthgen.Small(8, 2))
	var sent int64
	for _, dt := range dts {
		sent += int64(len(dt.Records))
	}

	// Partition the node that owns the most devices.
	ring := ingest.NewNodeRing(streams)
	owned := map[string]int{}
	for _, dt := range dts {
		owned[ring.Owner(dt.Device)]++
	}
	victimIdx := 0
	for i, s := range streams {
		if owned[s] > owned[streams[victimIdx]] {
			victimIdx = i
		}
	}
	if owned[streams[victimIdx]] == 0 {
		t.Fatal("placement degenerate: no node owns any devices")
	}

	var wg sync.WaitGroup
	errs := make([]error, len(dts))
	for i, dt := range dts {
		wg.Add(1)
		go func(i int, dt *trace.DeviceTrace) {
			defer wg.Done()
			_, errs[i] = ingest.StreamTrace(ingest.SessionConfig{
				Nodes:    streams,
				Device:   dt.Device,
				Start:    dt.Start,
				Deadline: 2 * time.Minute,
				Backoff:  ingest.Backoff{Base: 5 * time.Millisecond, Max: 80 * time.Millisecond},
				WrapConn: func(c net.Conn) net.Conn { return faults.WrapStream("client", c) },
				Pace: func(j int) time.Duration {
					if j%8 == 0 {
						return 400 * time.Microsecond
					}
					return 0
				},
			}, dt.Records)
		}(i, dt)
	}

	// Let the fleet get underway with the victim holding a durable
	// checkpoint, then cut both of its planes.
	victim := srvs[victimIdx]
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var total int64
		for _, s := range srvs {
			total += s.Stats(false).Records
		}
		vst := victim.Stats(false)
		if total >= sent/3 && vst.Records > 0 && vst.Checkpoint != nil && vst.Checkpoint.Generation >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	faults.Partition(members[victimIdx].Stream, true)
	faults.Partition(members[victimIdx].Admin, true)

	// The survivors inherit: the aggregator declares the victim dead and
	// ships its checkpoint (retrying through the injected faults), while
	// sessions walk the ring and finish on the survivors.
	waitFor(t, 60*time.Second, "handoff ships through the partition", func() bool {
		return scrapeAgg(t, agg)["aggregator_handoffs_total"] >= 1
	})
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %s: %v", dts[i].Device, err)
		}
	}

	// Heal. The victim resurrects still holding its pre-partition state —
	// the aggregator must fence it before it contributes to a merge again.
	faults.Heal()
	waitFor(t, 60*time.Second, "resurrected victim is fenced", victim.Fenced)
	waitFor(t, 60*time.Second, "fleet headline settles", func() bool {
		h, ok := agg.Headline()
		return ok && h.Records == sent && h.Devices == len(dts) && h.NodesLive == n-1
	})

	// The aggregator re-posts the fence every cycle the zombie stays live;
	// any single exchange can lose its reply to an injected fault, so the
	// skip accounting is eventually-consistent — wait, don't sample.
	waitFor(t, 60*time.Second, "fence accounting", func() bool {
		m := scrapeAgg(t, agg)
		return m["aggregator_fence_posts_total"] >= 1 && m["aggregator_fenced_skips_total"] >= 1
	})
	timeouts, corruptions, slows, blocked := faults.Stats()
	if timeouts+corruptions+slows == 0 || blocked == 0 {
		t.Errorf("chaos injected nothing (timeouts=%d corruptions=%d slows=%d blocked=%d) — test ran clean",
			timeouts, corruptions, slows, blocked)
	}

	// Every record accounted for exactly once across the survivors; the
	// fenced victim contributes nothing.
	for _, dt := range dts {
		var got int64
		for i, s := range srvs {
			if i != victimIdx {
				got += s.DeviceRecords(dt.Device)
			}
		}
		if got != int64(len(dt.Records)) {
			t.Errorf("device %s: survivors hold %d records, sent %d", dt.Device, got, len(dt.Records))
		}
	}

	// Batch reference over the identical dataset.
	devs, err := analysis.LoadAll(dts, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.ComputeHeadline(devs)
	h, _ := agg.Headline()
	if d := math.Abs(h.TotalEnergyJ - want.TotalEnergyJ); d > 1e-6*(1+want.TotalEnergyJ) {
		t.Errorf("total energy: fleet %v vs batch %v", h.TotalEnergyJ, want.TotalEnergyJ)
	}
	if d := math.Abs(h.BackgroundFraction - want.BackgroundFraction); d > 0.01*want.BackgroundFraction {
		t.Errorf("background fraction: fleet %v vs batch %v", h.BackgroundFraction, want.BackgroundFraction)
	}
	if d := math.Abs(h.FirstMinuteFraction - want.FirstMinute.Fraction); d > 1e-9 {
		t.Errorf("first minute: fleet %v vs batch %v", h.FirstMinuteFraction, want.FirstMinute.Fraction)
	}
}
