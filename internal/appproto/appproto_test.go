package appproto

import (
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	req := Request("GET", "api.weibo.example", "/poll")
	if !IsRequest(req) {
		t.Error("generated request not recognised")
	}
	host, ok := ParseHost(req)
	if !ok || host != "api.weibo.example" {
		t.Errorf("host = %q, ok=%v", host, ok)
	}
}

func TestRequestDefaults(t *testing.T) {
	req := Request("", "h.example", "")
	if string(req[:4]) != "GET " {
		t.Errorf("default method: %q", req)
	}
	if host, ok := ParseHost(req); !ok || host != "h.example" {
		t.Errorf("host = %q", host)
	}
}

func TestParseHostTruncated(t *testing.T) {
	req := Request("GET", "a-long-hostname.content.example", "/x")
	// Cut mid-hostname: must report not-ok rather than a partial host.
	cut := req[:len(req)-8]
	if host, ok := ParseHost(cut); ok {
		t.Errorf("truncated host parsed as %q", host)
	}
	if _, ok := ParseHost(nil); ok {
		t.Error("empty payload parsed")
	}
	if _, ok := ParseHost([]byte("Host: \r\n")); ok {
		t.Error("empty host accepted")
	}
}

func TestIsRequest(t *testing.T) {
	if IsRequest([]byte{0, 0, 0}) {
		t.Error("binary junk recognised as request")
	}
	if !IsRequest([]byte("POST /u HTTP/1.1\r\n")) {
		t.Error("POST not recognised")
	}
	if IsRequest([]byte("GE")) {
		t.Error("too-short payload recognised")
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]Category{
		"pix.adserver.example":      CatAds,
		"banner.ads.example":        CatAds,
		"sync.doubleclick.test":     CatAds,
		"t.metrics.example":         CatAnalytics,
		"collect.analytics.example": CatAnalytics,
		"static.cdn.example":        CatCDN,
		"gw.push.example":           CatPush,
		"api.weibo.example":         CatContent,
		"www.transit-times.example": CatContent,
		"":                          CatUnknown,
	}
	for host, want := range cases {
		if got := Classify(host); got != want {
			t.Errorf("Classify(%q) = %v, want %v", host, got, want)
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	for c, want := range map[Category]string{
		CatUnknown: "unknown", CatContent: "content", CatAds: "ads",
		CatAnalytics: "analytics", CatCDN: "cdn", CatPush: "push",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestRequestFitsSnapWindow(t *testing.T) {
	// Every well-known host must produce a prefix that fits in the 56
	// payload bytes the default 96-byte snap length leaves.
	hosts := append(append([]string{}, AdHosts...), AnalyticsHosts...)
	for _, h := range hosts {
		req := Request("GET", h, "/r")
		if len(req) > 56 {
			t.Errorf("request for %s is %d bytes; exceeds snap window", h, len(req))
		}
	}
}
