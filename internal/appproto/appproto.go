// Package appproto generates and parses the compact HTTP/1.1 request
// prefixes the synthetic apps embed in their first uplink packet, and
// classifies the hostnames they target.
//
// The paper's collector "collects complete network traces... including
// packet payloads", and §4.1 traces Chrome's background leaks to
// "auto-refreshing content, including some ad and analytics content".
// Reproducing that attribution requires application-layer bytes in the
// capture: the generator writes a minimal request line + Host header into
// each burst's first packet (within the snap length), and the analyzer
// parses it back out and buckets the host into a category.
package appproto

import (
	"bytes"
	"strings"
)

// Category classifies a request's destination service.
type Category uint8

// Host categories. Content covers first-party app/service traffic.
const (
	CatUnknown Category = iota
	CatContent
	CatAds
	CatAnalytics
	CatCDN
	CatPush
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatContent:
		return "content"
	case CatAds:
		return "ads"
	case CatAnalytics:
		return "analytics"
	case CatCDN:
		return "cdn"
	case CatPush:
		return "push"
	default:
		return "unknown"
	}
}

// Well-known synthetic host suffixes by category. These mirror the kinds
// of third-party domains the paper's in-lab validation observed in leaked
// browser traffic.
var categorySuffixes = map[string]Category{
	".adserver.example":  CatAds,
	".ads.example":       CatAds,
	".doubleclick.test":  CatAds,
	".metrics.example":   CatAnalytics,
	".analytics.example": CatAnalytics,
	".beacon.example":    CatAnalytics,
	".cdn.example":       CatCDN,
	".push.example":      CatPush,
}

// Classify buckets a hostname by suffix; hosts with no known suffix are
// first-party content.
func Classify(host string) Category {
	if host == "" {
		return CatUnknown
	}
	for suffix, cat := range categorySuffixes {
		if strings.HasSuffix(host, suffix) {
			return cat
		}
	}
	return CatContent
}

// AdHosts and AnalyticsHosts are the third-party hosts leaky web pages
// call out to; the browser model samples from them.
var (
	AdHosts = []string{
		"pix.adserver.example", "banner.ads.example", "sync.doubleclick.test",
	}
	AnalyticsHosts = []string{
		"t.metrics.example", "collect.analytics.example", "ping.beacon.example",
	}
)

// Request renders a minimal HTTP/1.1 request prefix. Hosts and paths are
// kept short so the prefix survives the default 96-byte snap length (40
// bytes of headers leave 56 for the prefix).
func Request(method, host, path string) []byte {
	if method == "" {
		method = "GET"
	}
	if path == "" {
		path = "/"
	}
	var b bytes.Buffer
	b.WriteString(method)
	b.WriteByte(' ')
	b.WriteString(path)
	b.WriteString(" HTTP/1.1\r\nHost: ")
	b.WriteString(host)
	b.WriteString("\r\n")
	return b.Bytes()
}

// ParseHost extracts the Host header value from a (possibly truncated)
// request prefix. ok is false when no complete Host header is present in
// the captured bytes.
func ParseHost(payload []byte) (host string, ok bool) {
	const marker = "Host: "
	i := bytes.Index(payload, []byte(marker))
	if i < 0 {
		return "", false
	}
	rest := payload[i+len(marker):]
	end := bytes.IndexByte(rest, '\r')
	if end < 0 {
		// Header truncated by the snap length.
		return "", false
	}
	h := string(rest[:end])
	if h == "" {
		return "", false
	}
	return h, true
}

// IsRequest reports whether the payload begins with a plausible HTTP
// request line.
func IsRequest(payload []byte) bool {
	for _, m := range [...]string{"GET ", "POST ", "HEAD ", "PUT "} {
		if len(payload) >= len(m) && string(payload[:len(m)]) == m {
			return true
		}
	}
	return false
}
