package appmodel

import (
	"bytes"
	"strings"
	"testing"

	"netenergy/internal/netparse"
	"netenergy/internal/rng"
	"netenergy/internal/trace"
)

const sec = trace.Timestamp(1_000_000)
const day = 86400 * sec

func newGen(seed uint64) (*Gen, *trace.DeviceTrace) {
	dt := &trace.DeviceTrace{Device: "t", Start: 0, Apps: trace.NewAppTable()}
	return NewGen(dt, rng.New(seed)), dt
}

// decodeAll parses every packet record with a snap-aware parser, failing the
// test on any decode error.
func decodeAll(t *testing.T, dt *trace.DeviceTrace) (packets int, bytes int64) {
	t.Helper()
	p := netparse.NewParser()
	p.Snap = true
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type != trace.RecPacket {
			continue
		}
		d, err := p.DecodePacket(r.Payload)
		if err != nil {
			t.Fatalf("record %d undecodable: %v", i, err)
		}
		packets++
		bytes += int64(d.WireLen)
	}
	return packets, bytes
}

func TestEmitBurstSegmentsAndDecodes(t *testing.T) {
	g, dt := newGen(1)
	conn := g.NewConn(ServerIP(7), 443)
	end := g.EmitBurst(5, 100*sec, trace.StateService, conn, 1000, 150000)
	if end <= 100*sec {
		t.Error("burst end did not advance")
	}
	n, bytes := decodeAll(t, dt)
	// 1 up packet + ceil(150000/60000)=3 down packets.
	if n != 4 {
		t.Errorf("packets = %d, want 4", n)
	}
	// Wire bytes = payloads + 40 B of headers each.
	if want := int64(1000 + 150000 + 4*40); bytes != want {
		t.Errorf("wire bytes = %d, want %d", bytes, want)
	}
	// Stored records are snapped.
	for i := range dt.Records {
		if r := &dt.Records[i]; r.Type == trace.RecPacket && len(r.Payload) > DefaultSnaplen {
			t.Errorf("record %d stored %d bytes > snaplen", i, len(r.Payload))
		}
	}
}

func TestEmitBurstTimestampsOrdered(t *testing.T) {
	g, dt := newGen(2)
	conn := g.NewConn(ServerIP(9), 443)
	g.EmitBurst(1, 0, trace.StateService, conn, 500, 500000)
	var prev trace.Timestamp = -1
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.TS < prev {
			t.Fatalf("timestamps regress at record %d", i)
		}
		prev = r.TS
	}
}

func TestConnRotationChangesTuple(t *testing.T) {
	g, _ := newGen(3)
	c1 := g.NewConn(ServerIP(1), 443)
	c2 := g.NewConn(ServerIP(1), 443)
	if c1.LocalPort == c2.LocalPort {
		t.Error("connections share a local port")
	}
}

func TestPeriodicPollerCadence(t *testing.T) {
	g, dt := newGen(4)
	pp := &PeriodicPoller{
		Period: 600, Jitter: 0.1, UpBytes: 1000, DownBytes: 5000,
		UpdatesPerConn: 4, BgState: trace.StateService,
	}
	pp.Generate(g, 1, nil, 0, day)
	n, _ := decodeAll(t, dt)
	// ~144 updates/day, 2+ packets each.
	if n < 200 || n > 600 {
		t.Errorf("packet count = %d", n)
	}
	// All background-state packets labelled service.
	for i := range dt.Records {
		if r := &dt.Records[i]; r.Type == trace.RecPacket && r.State != trace.StateService {
			t.Errorf("record %d state = %v", i, r.State)
		}
	}
	// Initial procstate event present for a session-less service.
	if dt.Records[0].Type != trace.RecProcState || dt.Records[0].State != trace.StateService {
		t.Errorf("first record = %v", dt.Records[0])
	}
}

func TestPeriodicPollerPeriodSwitch(t *testing.T) {
	g, dt := newGen(5)
	pp := &PeriodicPoller{
		Period: 300, Period2: 3600, SwitchFrac: 0.5, Jitter: 0.05,
		UpBytes: 500, DownBytes: 500, UpdatesPerConn: 1, BgState: trace.StateService,
	}
	pp.Generate(g, 1, nil, 0, 10*day)
	// Count bursts per half.
	var firstHalf, secondHalf int
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type != trace.RecPacket || r.Dir != trace.DirUp {
			continue
		}
		if r.TS < 5*day {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	if firstHalf < 5*secondHalf {
		t.Errorf("period switch not visible: %d vs %d", firstHalf, secondHalf)
	}
}

func TestPeriodicPollerSessionsLabelForeground(t *testing.T) {
	g, dt := newGen(6)
	sessions := []Session{{Start: 1000 * sec, End: 2000 * sec}}
	pp := &PeriodicPoller{
		Period: 100, Jitter: 0.05, UpBytes: 500, DownBytes: 500,
		UpdatesPerConn: 1, BgState: trace.StateService,
		Sessions: SessionCfg{BurstPeriod: 50, BurstUp: 500, BurstDown: 1000,
			BgState: trace.StateService, Residual: ResidualCfg{Bursts: 1, Window: 10, Up: 500, Down: 500}},
	}
	pp.Generate(g, 1, sessions, 0, 4000*sec)
	sawFgPoll, sawBgPoll, sawLaunch := false, false, false
	for i := range dt.Records {
		r := &dt.Records[i]
		switch r.Type {
		case trace.RecPacket:
			in := r.TS >= 1000*sec && r.TS < 2000*sec
			if in && r.State == trace.StateForeground {
				sawFgPoll = true
			}
			if !in && r.State == trace.StateService && r.TS > 2100*sec {
				sawBgPoll = true
			}
		case trace.RecUIEvent:
			if r.UIKind == trace.UILaunch {
				sawLaunch = true
			}
		}
	}
	if !sawFgPoll || !sawBgPoll || !sawLaunch {
		t.Errorf("fgPoll=%v bgPoll=%v launch=%v", sawFgPoll, sawBgPoll, sawLaunch)
	}
}

func TestPeriodicPollerDailyKill(t *testing.T) {
	g, dt := newGen(7)
	pp := &PeriodicPoller{
		Period: 600, Jitter: 0.05, UpBytes: 500, DownBytes: 500,
		UpdatesPerConn: 1, BgState: trace.StateService, DailyKillProb: 1.0,
	}
	// No sessions: once killed (first midnight), silence forever.
	pp.Generate(g, 1, nil, 0, 10*day)
	var lastPacket trace.Timestamp
	for i := range dt.Records {
		if r := &dt.Records[i]; r.Type == trace.RecPacket {
			lastPacket = r.TS
		}
	}
	if lastPacket >= day+sec {
		t.Errorf("polling continued past guaranteed kill: last at %v", lastPacket)
	}
}

func TestStreamerStates(t *testing.T) {
	g, dt := newGen(8)
	st := &Streamer{ChunkPeriod: 60, ChunkBytes: 1000000, InitialBytes: 500000}
	st.Generate(g, 1, []Session{{Start: 0, End: 1800 * sec}}, 0, day)
	n, bytes := decodeAll(t, dt)
	if n == 0 {
		t.Fatal("no packets")
	}
	if bytes < 10_000_000 {
		t.Errorf("streamed only %d bytes", bytes)
	}
	sawPerceptible := false
	for i := range dt.Records {
		if r := &dt.Records[i]; r.Type == trace.RecPacket && r.State == trace.StatePerceptible {
			sawPerceptible = true
		}
	}
	if !sawPerceptible {
		t.Error("no perceptible-state packets during playback")
	}
}

func TestPodcastWholeVsChunked(t *testing.T) {
	bursts := func(chunked bool) int {
		g, dt := newGen(9)
		p := &Podcast{CheckPeriod: 0, EpisodesPday: 100, EpisodeBytes: 30000000}
		if chunked {
			p.ChunkBytes = 2000000
			p.ChunkPeriod = 600
		}
		p.Generate(g, 1, nil, 0, day)
		// Count up-direction packets as burst starts.
		n := 0
		for i := range dt.Records {
			if r := &dt.Records[i]; r.Type == trace.RecPacket && r.Dir == trace.DirUp {
				n++
			}
		}
		return n
	}
	whole, chunked := bursts(false), bursts(true)
	if chunked < 5*whole {
		t.Errorf("chunked bursts (%d) should dwarf whole-episode bursts (%d)", chunked, whole)
	}
}

func TestBrowserLeak(t *testing.T) {
	leakPackets := func(prob float64) int {
		g, dt := newGen(10)
		b := &Browser{
			PageLoadPeriod: 30, PageUpBytes: 2000, PageDownBytes: 100000,
			LeakProb: prob, LeakPeriod: 5, LeakUpBytes: 500, LeakDownBytes: 2000,
			LeakMedian: 600, LeakSigma: 1.0,
		}
		b.Generate(g, 1, []Session{{Start: 0, End: 300 * sec}}, 0, day)
		n := 0
		for i := range dt.Records {
			// Leak traffic: background-state packets well after the
			// residual window.
			if r := &dt.Records[i]; r.Type == trace.RecPacket &&
				r.State == trace.StateBackground && r.TS > 400*sec {
				n++
			}
		}
		return n
	}
	if got := leakPackets(0); got != 0 {
		t.Errorf("non-leaky browser leaked %d packets", got)
	}
	if got := leakPackets(1); got < 10 {
		t.Errorf("leaky browser produced only %d leak packets", got)
	}
}

func TestBrowserLeakStopsAtNextSession(t *testing.T) {
	g, dt := newGen(11)
	b := &Browser{
		PageLoadPeriod: 1e12, // no page loads, isolate the leak
		LeakProb:       1, LeakPeriod: 5, LeakUpBytes: 500, LeakDownBytes: 500,
		LeakMedian: 1e6, LeakSigma: 0.01, // essentially infinite
	}
	sessions := []Session{
		{Start: 0, End: 100 * sec},
		{Start: 2000 * sec, End: 2100 * sec},
	}
	b.Generate(g, 1, sessions, 0, day)
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type == trace.RecPacket && r.State == trace.StateBackground &&
			r.TS > 2000*sec && r.TS < 2100*sec {
			t.Fatalf("leak continued into the next foreground session at %v", r.TS)
		}
	}
}

func TestGenericResidualFirstMinute(t *testing.T) {
	g, dt := newGen(12)
	a := &Generic{
		BurstPeriod: 20, BurstUp: 1000, BurstDown: 50000,
		Residual: ResidualCfg{Bursts: 2, Window: 20, Up: 1000, Down: 20000},
	}
	a.Generate(g, 1, []Session{{Start: 0, End: 120 * sec}}, 0, day)
	var bgFirstMin, bgLater int64
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type != trace.RecPacket || !r.State.IsBackground() {
			continue
		}
		if r.TS <= 180*sec {
			bgFirstMin += int64(len(r.Payload))
		} else {
			bgLater += int64(len(r.Payload))
		}
	}
	if bgFirstMin == 0 {
		t.Error("no residual traffic after backgrounding")
	}
	if bgLater > 0 {
		t.Errorf("generic app sent %d bg bytes long after backgrounding", bgLater)
	}
}

func TestProfilesSane(t *testing.T) {
	all := AllProfiles()
	if len(all) != 342 {
		t.Errorf("profile count = %d, want 342", len(all))
	}
	seen := map[string]bool{}
	for i := range all {
		p := &all[i]
		if p.Package == "" || p.Behavior == nil {
			t.Errorf("profile %d incomplete: %+v", i, p)
		}
		if seen[p.Package] {
			t.Errorf("duplicate package %s", p.Package)
		}
		seen[p.Package] = true
		if p.InstallProb <= 0 || p.InstallProb > 1 {
			t.Errorf("%s install prob %v", p.Label, p.InstallProb)
		}
		if !p.NeverForeground && p.SessionsPerDay <= 0 {
			t.Errorf("%s has no sessions but is foregroundable", p.Label)
		}
	}
}

func TestCaseStudyProfilesGenerate(t *testing.T) {
	// Every named behaviour must generate decodable traffic without panics.
	for _, prof := range CaseStudies() {
		prof := prof
		t.Run(prof.Label, func(t *testing.T) {
			g, dt := newGen(99)
			// Device-level activity windows (for ActiveOnly behaviours).
			for h := trace.Timestamp(0); h < 48; h += 2 {
				g.ActivePeriods = append(g.ActivePeriods,
					Session{Start: h * 3600 * sec, End: h*3600*sec + 900*sec})
			}
			var sessions []Session
			if !prof.NeverForeground {
				sessions = []Session{
					{Start: 3600 * sec, End: 3600*sec + trace.Timestamp(prof.SessionMean)*sec},
					{Start: 10 * 3600 * sec, End: 10*3600*sec + trace.Timestamp(prof.SessionMean)*sec},
				}
			}
			prof.Behavior.Generate(g, 1, sessions, 0, 2*day)
			dt.SortByTime()
			n, _ := decodeAll(t, dt)
			if n == 0 {
				t.Error("profile generated no packets")
			}
		})
	}
}

func TestServerIPPublic(t *testing.T) {
	ip := ServerIP(12345)
	if ip[0] != 23 {
		t.Errorf("server IP = %v", ip)
	}
	if ServerIP(1) == ServerIP(2) {
		t.Error("distinct seeds should give distinct servers")
	}
}

func TestActiveOnlyPollerSkipsIdleTime(t *testing.T) {
	runWidget := func(active []Session) int {
		g, dt := newGen(20)
		g.ActivePeriods = active
		pp := &PeriodicPoller{
			Period: 300, Jitter: 0.05, UpBytes: 500, DownBytes: 500,
			UpdatesPerConn: 1, BgState: trace.StateService, ActiveOnly: true,
		}
		pp.Generate(g, 1, nil, 0, day)
		n := 0
		for i := range dt.Records {
			if dt.Records[i].Type == trace.RecPacket {
				n++
			}
		}
		return n
	}
	// No activity at all: the widget never refreshes.
	if n := runWidget(nil); n != 0 {
		t.Errorf("idle device widget sent %d packets", n)
	}
	// Two 1-hour active windows: ~24 refresh opportunities.
	active := []Session{
		{Start: 9 * 3600 * sec, End: 10 * 3600 * sec},
		{Start: 18 * 3600 * sec, End: 19 * 3600 * sec},
	}
	n := runWidget(active)
	if n < 10 || n > 80 {
		t.Errorf("active-window widget packets = %d, want ~24 bursts", n)
	}
}

func TestAlignToBackgroundPhaseLock(t *testing.T) {
	g, dt := newGen(21)
	sessions := []Session{{Start: 1000 * sec, End: 1600 * sec}}
	pp := &PeriodicPoller{
		Period: 300, UpBytes: 400, DownBytes: 400,
		UpdatesPerConn: 1, BgState: trace.StateService,
		AlignToBackground: true,
	}
	pp.Generate(g, 1, sessions, 0, 4000*sec)
	// After the session ends at t=1600, polls must land near exact
	// multiples of 300 s from the session end.
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type != trace.RecPacket || r.Dir != trace.DirUp || r.TS <= 1600*sec {
			continue
		}
		off := r.TS.Sub(1600 * sec)
		k := int(off/300 + 0.5)
		if k < 1 {
			continue
		}
		drift := off - float64(k)*300
		if drift < -30 || drift > 30 {
			t.Errorf("poll at +%.0f s drifts %.0f s from the %d x 300 s phase", off, drift, k)
		}
	}
}

func TestDeviceActiveSlack(t *testing.T) {
	g, _ := newGen(22)
	g.ActivePeriods = []Session{{Start: 1000 * sec, End: 2000 * sec}}
	cases := []struct {
		ts    trace.Timestamp
		slack float64
		want  bool
	}{
		{1500 * sec, 0, true},
		{900 * sec, 0, false},
		{900 * sec, 120, true},
		{2100 * sec, 120, true},
		{2200 * sec, 120, false},
		{100 * sec, 0, false},
	}
	for _, c := range cases {
		if got := g.DeviceActive(c.ts, c.slack); got != c.want {
			t.Errorf("DeviceActive(%d, %v) = %v, want %v", c.ts, c.slack, got, c.want)
		}
	}
}

func TestGenericPostSessionSyncAligned(t *testing.T) {
	g, dt := newGen(23)
	a := &Generic{
		BurstPeriod: 1e9, // no fg bursts
		SyncPeriod:  300, SyncUp: 500, SyncDown: 500, SyncDurMean: 3000,
		Residual: ResidualCfg{},
	}
	sessions := []Session{{Start: 0, End: 100 * sec}}
	a.Generate(g, 1, sessions, 0, day)
	syncs := 0
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type != trace.RecPacket || r.Dir != trace.DirUp {
			continue
		}
		off := r.TS.Sub(100 * sec)
		if off <= 0 {
			continue
		}
		syncs++
		k := int(off/300 + 0.5)
		drift := off - float64(k)*300
		if drift < -30 || drift > 30 {
			t.Errorf("sync at +%.0fs drifts %.0fs from phase", off, drift)
		}
	}
	if syncs == 0 {
		t.Error("no post-session syncs emitted")
	}
}

func TestBrowserInfiniteLeakRunsToNextSession(t *testing.T) {
	g, dt := newGen(24)
	b := &Browser{
		PageLoadPeriod: 1e12,
		LeakProb:       1, LeakPeriod: 30, LeakUpBytes: 400, LeakDownBytes: 400,
		LeakMedian: 1, LeakSigma: 0.0001, // finite leaks end immediately
		LeakInfinitePortion: 1, LeakInfinitePeriod: 60,
	}
	sessions := []Session{
		{Start: 0, End: 100 * sec},
		{Start: 7200 * sec, End: 7300 * sec},
	}
	b.Generate(g, 1, sessions, 0, day)
	var last trace.Timestamp
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type == trace.RecPacket && r.State == trace.StateBackground {
			last = r.TS
		}
	}
	// The infinite leak should run right up to (but not into) the next
	// session at t=7200.
	if last < 6000*sec {
		t.Errorf("infinite leak stopped early at %v", last)
	}
	if last >= 7200*sec && last < 7300*sec {
		t.Error("leak ran into the next foreground session")
	}
}

func TestRetransmitProbEmitsDuplicates(t *testing.T) {
	g, dt := newGen(30)
	g.RetransmitProb = 1.0 // every segment retransmitted once
	conn := g.NewConn(ServerIP(5), 443)
	g.EmitBurst(1, 0, trace.StateService, conn, 1000, 1000)
	p := netparse.NewParser()
	p.Snap = true
	seqs := map[uint32]int{}
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type != trace.RecPacket {
			continue
		}
		d, err := p.DecodePacket(r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		seqs[d.TCP.Seq]++
	}
	for seq, n := range seqs {
		if n != 2 {
			t.Errorf("seq %d emitted %d times, want 2", seq, n)
		}
	}
	if len(seqs) != 2 { // one up + one down segment
		t.Errorf("distinct segments = %d", len(seqs))
	}
}

func TestEmitHTTPBurstCarriesHost(t *testing.T) {
	g, dt := newGen(31)
	conn := g.NewConn(ServerIP(5), 443)
	req := []byte("GET /x HTTP/1.1\r\nHost: api.test.example\r\n")
	g.EmitHTTPBurst(1, 0, trace.StateService, conn, req, 500, 120000)
	p := netparse.NewParser()
	p.Snap = true
	hosts := 0
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type != trace.RecPacket {
			continue
		}
		d, err := p.DecodePacket(r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if d.Transport == netparse.LayerTypeTCP && r.Dir == trace.DirUp &&
			len(d.Payload) > 0 && d.Payload[0] == 'G' {
			hosts++
		}
	}
	// Exactly the first uplink segment carries the request line.
	if hosts != 1 {
		t.Errorf("request-bearing packets = %d, want 1", hosts)
	}
}

func TestDNSEmission(t *testing.T) {
	g, dt := newGen(40)
	g.EmitDNS = true
	server := ServerIP(9)
	// Two bursts on one conn: DNS once. A new conn to the same server
	// within the TTL: no new lookup. A conn 10 minutes later: fresh lookup.
	c1 := g.NewConn(server, 443)
	g.EmitBurst(1, 0, trace.StateService, c1, 500, 500)
	g.EmitBurst(1, 10*sec, trace.StateService, c1, 500, 500)
	c2 := g.NewConn(server, 443)
	g.EmitBurst(1, 60*sec, trace.StateService, c2, 500, 500)
	c3 := g.NewConn(server, 443)
	g.EmitBurst(1, 900*sec, trace.StateService, c3, 500, 500)

	p := netparse.NewParser()
	p.Snap = true
	dns := 0
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type != trace.RecPacket {
			continue
		}
		d, err := p.DecodePacket(r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if d.Transport == netparse.LayerTypeUDP && (d.Tuple.PortA == 53 || d.Tuple.PortB == 53) {
			dns++
		}
	}
	// Two lookups (t=0 and t=900), query+response each.
	if dns != 4 {
		t.Errorf("dns packets = %d, want 4", dns)
	}
}

func TestDNSDisabledByDefault(t *testing.T) {
	g, dt := newGen(41)
	c := g.NewConn(ServerIP(9), 443)
	g.EmitBurst(1, 0, trace.StateService, c, 500, 500)
	p := netparse.NewParser()
	p.Snap = true
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type != trace.RecPacket {
			continue
		}
		d, err := p.DecodePacket(r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if d.Transport == netparse.LayerTypeUDP {
			t.Fatal("DNS emitted despite EmitDNS=false")
		}
	}
}

func TestProfileConfigRoundTrip(t *testing.T) {
	orig := CaseStudies()
	var buf bytes.Buffer
	if err := SaveProfiles(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(orig) {
		t.Fatalf("loaded %d profiles, want %d", len(loaded), len(orig))
	}
	for i := range orig {
		if loaded[i].Package != orig[i].Package {
			t.Errorf("profile %d package %q != %q", i, loaded[i].Package, orig[i].Package)
		}
		if loaded[i].InstallProb != orig[i].InstallProb {
			t.Errorf("%s install prob changed", orig[i].Package)
		}
	}
	// The loaded Weibo poller must behave like the original.
	var w *Profile
	for i := range loaded {
		if loaded[i].Package == PkgWeibo {
			w = &loaded[i]
		}
	}
	if w == nil {
		t.Fatal("Weibo missing after round trip")
	}
	pp, ok := w.Behavior.(*PeriodicPoller)
	if !ok {
		t.Fatalf("Weibo behavior type %T", w.Behavior)
	}
	if pp.Period != 370 || pp.UpdatesPerConn != 3 {
		t.Errorf("Weibo poller params lost: %+v", pp)
	}
}

func TestLoadProfilesValidation(t *testing.T) {
	cases := map[string]string{
		"missing package":  `[{"behavior":{"type":"generic","generic":{}},"install_prob":0.5}]`,
		"bad install prob": `[{"package":"a","behavior":{"type":"generic","generic":{}},"install_prob":1.5,"never_foreground":true}]`,
		"unknown behavior": `[{"package":"a","behavior":{"type":"magic"},"install_prob":0.5,"never_foreground":true}]`,
		"missing params":   `[{"package":"a","behavior":{"type":"poller"},"install_prob":0.5,"never_foreground":true}]`,
		"no sessions":      `[{"package":"a","behavior":{"type":"generic","generic":{}},"install_prob":0.5}]`,
		"duplicate": `[
			{"package":"a","behavior":{"type":"generic","generic":{}},"install_prob":0.5,"never_foreground":true},
			{"package":"a","behavior":{"type":"generic","generic":{}},"install_prob":0.5,"never_foreground":true}]`,
		"unknown field": `[{"package":"a","behavior":{"type":"generic","generic":{}},"install_prob":0.5,"never_foreground":true,"bogus":1}]`,
	}
	for name, js := range cases {
		if _, err := LoadProfiles(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted invalid config", name)
		}
	}
}

func TestLoadProfilesDefaults(t *testing.T) {
	js := `[{"package":"com.custom","behavior":{"type":"poller","poller":{"Period":600,"UpBytes":100,"DownBytes":100,"UpdatesPerConn":1}},"install_prob":1,"never_foreground":true}]`
	ps, err := LoadProfiles(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	p := ps[0]
	if p.Label != "com.custom" {
		t.Errorf("default label = %q", p.Label)
	}
	if p.UseDaysMean != 30 || p.GapDaysMean != 0.5 {
		t.Errorf("engagement defaults: %v/%v", p.UseDaysMean, p.GapDaysMean)
	}
	// The profile must actually generate traffic.
	g, dt := newGen(50)
	p.Behavior.Generate(g, 1, nil, 0, day)
	if len(dt.Records) == 0 {
		t.Error("custom profile generated nothing")
	}
}
