// Package appmodel contains per-app network behaviour models: the traffic
// and process-state patterns of the apps the paper studies (§4's case
// studies: social media pollers, push services, widgets, streamers, podcast
// downloaders, leaky browsers) plus a generic population model for the long
// tail of the 342 observed apps.
//
// Each Behavior, given an app's foreground session schedule, emits the same
// record streams the paper's on-device collector captured: serialised IP
// packets (with a capture snap length, like tcpdump -s), process-state
// transitions and UI events. Behaviour parameters are calibrated against
// the values Table 1 reports (update period, bytes per flow, flows per
// day).
package appmodel

import (
	"netenergy/internal/netparse"
	"netenergy/internal/rng"
	"netenergy/internal/trace"
)

// Session is one foreground usage session of an app, produced by the user
// model: the user launches the app at Start and leaves it at End.
type Session struct {
	Start, End trace.Timestamp
}

// Duration returns the session length in seconds.
func (s Session) Duration() float64 { return s.End.Sub(s.Start) }

// DefaultSnaplen is the capture snap length the generator stores: full
// headers plus a sliver of payload, exactly like a header-only tcpdump
// capture. The IP header's total-length field preserves the wire size.
const DefaultSnaplen = 96

// maxSegment is the largest single packet the generator emits. Real traces
// show GRO/LRO-coalesced captures with segments far above the MTU; using
// large segments keeps long traces tractable without changing burst-level
// energy (transfer energy depends on bytes and rate, not segmentation).
const maxSegment = 60000

// Gen emits trace records for one device. It is shared by all app models on
// the device so that ephemeral ports do not collide.
type Gen struct {
	DT      *trace.DeviceTrace
	Rng     *rng.Source
	LocalIP [4]byte
	Snaplen int
	Net     trace.Network // default interface for emitted packets

	// WiFiPeriods are sorted time spans during which the device routes
	// traffic over WiFi instead of Net (e.g. nights at home). The study
	// analyses cellular traffic, so these packets are present in the trace
	// but filtered out by the energy engine — as in the real dataset.
	WiFiPeriods []Session

	// ActivePeriods are the user's merged foreground sessions across all
	// apps. Behaviours that only act while the device is in use (home
	// screen widgets refreshing a visible surface) consult these via
	// DeviceActive.
	ActivePeriods []Session

	// RetransmitProb is the per-segment probability of emitting a TCP
	// retransmission (same sequence number, one RTT later) — wire bytes
	// that cost radio energy but deliver no new data.
	RetransmitProb float64

	// EmitDNS enables DNS lookups: the first burst on a connection to a
	// not-recently-resolved server is preceded by a UDP query/response
	// exchange with the carrier resolver. Isolated lookups wake the radio
	// just like any other packet — small requests, full tail price.
	EmitDNS bool

	// dnsCache maps server address -> cache expiry time.
	dnsCache map[[4]byte]trace.Timestamp

	nextPort uint16
	buf      []byte
}

// netAt returns the interface in use at ts.
func (g *Gen) netAt(ts trace.Timestamp) trace.Network {
	i := sortSearchSessions(g.WiFiPeriods, ts)
	if i < len(g.WiFiPeriods) && g.WiFiPeriods[i].Start <= ts {
		return trace.NetWiFi
	}
	return g.Net
}

// DeviceActive reports whether the user was interacting with the device at
// ts, within slack seconds of any session. Widget updates that happen while
// the radio is already busy with foreground traffic share its tail — the
// mechanism behind the paper's cheap-but-frequent widget updates.
func (g *Gen) DeviceActive(ts trace.Timestamp, slack float64) bool {
	i := sortSearchSessions(g.ActivePeriods, ts.AddSeconds(-slack))
	if i >= len(g.ActivePeriods) {
		return false
	}
	p := g.ActivePeriods[i]
	return p.Start.AddSeconds(-slack) <= ts && ts <= p.End.AddSeconds(slack)
}

// sortSearchSessions returns the index of the first session whose End is
// after ts.
func sortSearchSessions(ss []Session, ts trace.Timestamp) int {
	lo, hi := 0, len(ss)
	for lo < hi {
		mid := (lo + hi) / 2
		if ss[mid].End <= ts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// NewGen returns a generator appending to dt.
func NewGen(dt *trace.DeviceTrace, src *rng.Source) *Gen {
	return &Gen{
		DT: dt, Rng: src,
		LocalIP:  [4]byte{10, 32, byte(src.Intn(250)), byte(1 + src.Intn(250))},
		Snaplen:  DefaultSnaplen,
		Net:      trace.NetCellular,
		nextPort: 32768,
		buf:      make([]byte, 65536),
	}
}

// Conn is one TCP connection an app model reuses across updates; reusing a
// connection keeps consecutive updates in the same five-tuple flow, which
// is how "one flow may not correspond to one periodic update" (Table 1)
// arises in the real traces.
type Conn struct {
	ServerIP   [4]byte
	ServerPort uint16
	LocalPort  uint16
	seq        uint32
	resolved   bool // DNS already performed for this connection
}

// ResolverIP is the carrier DNS resolver the generator targets.
var ResolverIP = [4]byte{198, 51, 100, 53}

// dnsTTL is how long a resolved name stays cached on the device.
const dnsTTL = 300.0

// maybeEmitDNS emits a DNS query/response pair before ts if the server is
// not in the device's resolver cache, returning the time the exchange ends.
func (g *Gen) maybeEmitDNS(app uint32, ts trace.Timestamp, state trace.ProcState, c *Conn) trace.Timestamp {
	if !g.EmitDNS || c.resolved {
		return ts
	}
	c.resolved = true
	if g.dnsCache == nil {
		g.dnsCache = make(map[[4]byte]trace.Timestamp)
	}
	if exp, ok := g.dnsCache[c.ServerIP]; ok && ts < exp {
		return ts
	}
	g.dnsCache[c.ServerIP] = ts.AddSeconds(dnsTTL)
	g.nextPort++
	qLen := 28 + 12 + 30 // IP+UDP headers + DNS header + QNAME-ish
	rLen := qLen + 60
	q, err := netparse.BuildUDPv4(g.buf, g.LocalIP, ResolverIP, g.nextPort, 53, qLen-28)
	if err != nil {
		panic("appmodel: dns build failed: " + err.Error())
	}
	g.appendRaw(app, ts, state, trace.DirUp, g.buf[:q])
	t := ts.AddSeconds(float64(qLen) * 8 / 5.64e6)
	r, err := netparse.BuildUDPv4(g.buf, ResolverIP, g.LocalIP, 53, g.nextPort, rLen-28)
	if err != nil {
		panic("appmodel: dns build failed: " + err.Error())
	}
	// Resolver round trip ~40 ms.
	t = t.AddSeconds(0.02 + g.Rng.Exp(0.02))
	g.appendRaw(app, t, state, trace.DirDown, g.buf[:r])
	return t.AddSeconds(float64(rLen) * 8 / 12.74e6)
}

// appendRaw stores a fully serialised packet as a record.
func (g *Gen) appendRaw(app uint32, ts trace.Timestamp, state trace.ProcState, dir trace.Direction, pkt []byte) {
	payload := make([]byte, len(netparse.Snap(pkt, g.Snaplen)))
	copy(payload, pkt)
	g.DT.Records = append(g.DT.Records, trace.Record{
		Type: trace.RecPacket, TS: ts, App: app,
		Dir: dir, Net: g.netAt(ts), State: state, Payload: payload,
	})
}

// NewConn opens a new connection identity to the given server.
func (g *Gen) NewConn(server [4]byte, port uint16) *Conn {
	g.nextPort++
	if g.nextPort < 32768 {
		g.nextPort = 32768
	}
	return &Conn{ServerIP: server, ServerPort: port, LocalPort: g.nextPort}
}

// ServerIP derives a stable pseudo-random public server address from a
// service label hash, so each app talks to its own server(s).
func ServerIP(seed uint32) [4]byte {
	// Keep out of private ranges: 23.x.y.z is public (Akamai space).
	return [4]byte{23, byte(seed >> 16), byte(seed >> 8), byte(1 + seed%250)}
}

// SetState appends a process-state transition record.
func (g *Gen) SetState(app uint32, ts trace.Timestamp, s trace.ProcState) {
	g.DT.Records = append(g.DT.Records, trace.Record{
		Type: trace.RecProcState, TS: ts, App: app, State: s,
	})
}

// UIEvent appends a user-input record.
func (g *Gen) UIEvent(app uint32, ts trace.Timestamp, kind trace.UIEventKind) {
	g.DT.Records = append(g.DT.Records, trace.Record{
		Type: trace.RecUIEvent, TS: ts, App: app, UIKind: kind,
	})
}

// Screen appends a screen on/off record.
func (g *Gen) Screen(ts trace.Timestamp, on bool) {
	g.DT.Records = append(g.DT.Records, trace.Record{
		Type: trace.RecScreen, TS: ts, ScreenOn: on,
	})
}

// emitPacket serialises and appends one packet record with the given
// sequence number, returning the time the transmission ends. prefix, if
// non-nil, is embedded at the start of the payload (an application-layer
// request line).
func (g *Gen) emitPacket(app uint32, ts trace.Timestamp, state trace.ProcState,
	c *Conn, dir trace.Direction, prefix []byte, payloadLen int, seq uint32) trace.Timestamp {
	var stored, wire int
	var err error
	if dir == trace.DirUp {
		stored, wire, err = netparse.BuildTCPv4SnappedPayload(g.buf, g.LocalIP, c.ServerIP,
			c.LocalPort, c.ServerPort, seq, netparse.TCPAck|netparse.TCPPsh, prefix, payloadLen, g.Snaplen)
	} else {
		stored, wire, err = netparse.BuildTCPv4SnappedPayload(g.buf, c.ServerIP, g.LocalIP,
			c.ServerPort, c.LocalPort, seq, netparse.TCPAck, prefix, payloadLen, g.Snaplen)
	}
	if err != nil {
		panic("appmodel: packet build failed: " + err.Error())
	}
	payload := make([]byte, stored)
	copy(payload, g.buf[:stored])
	g.DT.Records = append(g.DT.Records, trace.Record{
		Type: trace.RecPacket, TS: ts, App: app,
		Dir: dir, Net: g.netAt(ts), State: state, Payload: payload,
	})
	// Advance time by the transmission duration at a nominal LTE link rate
	// so packets within a burst do not collapse onto one instant.
	rate := 12.74e6 // bit/s down
	if dir == trace.DirUp {
		rate = 5.64e6
	}
	return ts.AddSeconds(float64(wire) * 8 / rate)
}

// EmitBurst emits one request/response exchange on conn: upBytes of request
// followed by downBytes of response, segmented into at-most-maxSegment
// packets. It returns the time the burst completes.
func (g *Gen) EmitBurst(app uint32, ts trace.Timestamp, state trace.ProcState,
	c *Conn, upBytes, downBytes int64) trace.Timestamp {
	return g.EmitHTTPBurst(app, ts, state, c, nil, upBytes, downBytes)
}

// EmitHTTPBurst is EmitBurst with an application-layer request prefix
// embedded in the first uplink packet, so the analyzer can recover the
// destination host from the capture (appproto.ParseHost).
func (g *Gen) EmitHTTPBurst(app uint32, ts trace.Timestamp, state trace.ProcState,
	c *Conn, request []byte, upBytes, downBytes int64) trace.Timestamp {
	t := g.maybeEmitDNS(app, ts, state, c)
	t = g.emitSegments(app, t, state, c, trace.DirUp, request, upBytes)
	t = g.emitSegments(app, t, state, c, trace.DirDown, nil, downBytes)
	return t
}

func (g *Gen) emitSegments(app uint32, ts trace.Timestamp, state trace.ProcState,
	c *Conn, dir trace.Direction, prefix []byte, bytes int64) trace.Timestamp {
	t := ts
	if int64(len(prefix)) > bytes {
		bytes = int64(len(prefix))
	}
	for bytes > 0 {
		seg := bytes
		if seg > maxSegment {
			seg = maxSegment
		}
		seq := c.seq
		t = g.emitPacket(app, t, state, c, dir, prefix, int(seg), seq)
		c.seq = seq + uint32(seg)
		if g.RetransmitProb > 0 && g.Rng.Bool(g.RetransmitProb) {
			// One RTT later the same segment is retransmitted: identical
			// sequence number, fresh wire bytes.
			t = g.emitPacket(app, t.AddSeconds(0.05+g.Rng.Exp(0.15)), state, c, dir, prefix, int(seg), seq)
		}
		prefix = nil // only the first segment carries the request line
		bytes -= seg
	}
	return t
}
