package appmodel

import (
	"encoding/json"
	"fmt"
	"io"
)

// BehaviorConfig is the JSON-serialisable form of a Behavior: a type tag
// plus exactly one populated parameter struct.
type BehaviorConfig struct {
	Type     string          `json:"type"` // poller | streamer | podcast | browser | generic
	Poller   *PeriodicPoller `json:"poller,omitempty"`
	Streamer *Streamer       `json:"streamer,omitempty"`
	Podcast  *Podcast        `json:"podcast,omitempty"`
	Browser  *Browser        `json:"browser,omitempty"`
	Generic  *Generic        `json:"generic,omitempty"`
}

// behavior materialises the configured Behavior.
func (bc *BehaviorConfig) behavior() (Behavior, error) {
	switch bc.Type {
	case "poller":
		if bc.Poller == nil {
			return nil, fmt.Errorf("appmodel: poller config missing")
		}
		return bc.Poller, nil
	case "streamer":
		if bc.Streamer == nil {
			return nil, fmt.Errorf("appmodel: streamer config missing")
		}
		return bc.Streamer, nil
	case "podcast":
		if bc.Podcast == nil {
			return nil, fmt.Errorf("appmodel: podcast config missing")
		}
		return bc.Podcast, nil
	case "browser":
		if bc.Browser == nil {
			return nil, fmt.Errorf("appmodel: browser config missing")
		}
		return bc.Browser, nil
	case "generic":
		if bc.Generic == nil {
			return nil, fmt.Errorf("appmodel: generic config missing")
		}
		return bc.Generic, nil
	default:
		return nil, fmt.Errorf("appmodel: unknown behavior type %q", bc.Type)
	}
}

// configOf reverses behavior() for the built-in behaviour types.
func configOf(b Behavior) (BehaviorConfig, error) {
	switch v := b.(type) {
	case *PeriodicPoller:
		return BehaviorConfig{Type: "poller", Poller: v}, nil
	case *Streamer:
		return BehaviorConfig{Type: "streamer", Streamer: v}, nil
	case *Podcast:
		return BehaviorConfig{Type: "podcast", Podcast: v}, nil
	case *Browser:
		return BehaviorConfig{Type: "browser", Browser: v}, nil
	case *Generic:
		return BehaviorConfig{Type: "generic", Generic: v}, nil
	default:
		return BehaviorConfig{}, fmt.Errorf("appmodel: behavior %T is not serialisable", b)
	}
}

// ProfileConfig is the JSON-serialisable form of a Profile.
type ProfileConfig struct {
	Package         string         `json:"package"`
	Label           string         `json:"label,omitempty"`
	Behavior        BehaviorConfig `json:"behavior"`
	InstallProb     float64        `json:"install_prob"`
	SessionsPerDay  float64        `json:"sessions_per_day,omitempty"`
	SessionMean     float64        `json:"session_mean_s,omitempty"`
	NeverForeground bool           `json:"never_foreground,omitempty"`
	UseDaysMean     float64        `json:"use_days_mean,omitempty"`
	GapDaysMean     float64        `json:"gap_days_mean,omitempty"`
}

// validate rejects configurations that would generate degenerate traces.
func (pc *ProfileConfig) validate() error {
	if pc.Package == "" {
		return fmt.Errorf("appmodel: profile missing package name")
	}
	if pc.InstallProb <= 0 || pc.InstallProb > 1 {
		return fmt.Errorf("appmodel: %s: install_prob %v outside (0, 1]", pc.Package, pc.InstallProb)
	}
	if !pc.NeverForeground && pc.SessionsPerDay <= 0 {
		return fmt.Errorf("appmodel: %s: foregroundable profile needs sessions_per_day > 0", pc.Package)
	}
	if !pc.NeverForeground && pc.SessionMean <= 0 {
		return fmt.Errorf("appmodel: %s: foregroundable profile needs session_mean_s > 0", pc.Package)
	}
	return nil
}

// LoadProfiles decodes a JSON array of profile configurations into
// Profiles usable by the generator. Engagement-day means default to
// "always engaged" (UseDaysMean 30, GapDaysMean 0.5) when omitted.
func LoadProfiles(r io.Reader) ([]Profile, error) {
	var cfgs []ProfileConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfgs); err != nil {
		return nil, fmt.Errorf("appmodel: decoding profiles: %w", err)
	}
	seen := map[string]bool{}
	out := make([]Profile, 0, len(cfgs))
	for i := range cfgs {
		pc := &cfgs[i]
		if err := pc.validate(); err != nil {
			return nil, err
		}
		if seen[pc.Package] {
			return nil, fmt.Errorf("appmodel: duplicate package %q", pc.Package)
		}
		seen[pc.Package] = true
		b, err := pc.Behavior.behavior()
		if err != nil {
			return nil, fmt.Errorf("appmodel: %s: %w", pc.Package, err)
		}
		p := Profile{
			Package: pc.Package, Label: pc.Label, Behavior: b,
			InstallProb: pc.InstallProb, SessionsPerDay: pc.SessionsPerDay,
			SessionMean: pc.SessionMean, NeverForeground: pc.NeverForeground,
			UseDaysMean: pc.UseDaysMean, GapDaysMean: pc.GapDaysMean,
		}
		if p.Label == "" {
			p.Label = p.Package
		}
		if p.UseDaysMean <= 0 {
			p.UseDaysMean = 30
		}
		if p.GapDaysMean <= 0 {
			p.GapDaysMean = 0.5
		}
		out = append(out, p)
	}
	return out, nil
}

// SaveProfiles encodes profiles as indented JSON, the inverse of
// LoadProfiles. It fails on custom Behavior implementations.
func SaveProfiles(w io.Writer, profiles []Profile) error {
	cfgs := make([]ProfileConfig, 0, len(profiles))
	for i := range profiles {
		p := &profiles[i]
		bc, err := configOf(p.Behavior)
		if err != nil {
			return fmt.Errorf("%s: %w", p.Package, err)
		}
		cfgs = append(cfgs, ProfileConfig{
			Package: p.Package, Label: p.Label, Behavior: bc,
			InstallProb: p.InstallProb, SessionsPerDay: p.SessionsPerDay,
			SessionMean: p.SessionMean, NeverForeground: p.NeverForeground,
			UseDaysMean: p.UseDaysMean, GapDaysMean: p.GapDaysMean,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cfgs)
}
