package appmodel

import (
	"fmt"

	"netenergy/internal/trace"
)

// Profile describes one app: its package name, its traffic behaviour, and
// the usage parameters the user model needs to schedule foreground sessions
// for it. Parameters for the named case-study apps are calibrated against
// the paper's Table 1 (update period, bytes per flow, flows per day) and
// §4.1/§5 narratives.
type Profile struct {
	Package string // Android package name used in the trace app table
	Label   string // short display name used in reports

	Behavior Behavior

	// InstallProb is the fraction of users who have the app at all.
	InstallProb float64

	// SessionsPerDay is the mean number of foreground sessions on a day
	// the user is engaged with the app; SessionMean is the mean session
	// length in seconds (log-normal distributed).
	SessionsPerDay float64
	SessionMean    float64

	// NeverForeground marks widgets and pure services that have no
	// foreground sessions of their own.
	NeverForeground bool

	// UseDaysMean/GapDaysMean model engagement runs: the user actively
	// uses the app for ~UseDaysMean consecutive days, then ignores it for
	// ~GapDaysMean days (both exponential). Large gaps produce the §5
	// "days with only background traffic" the what-if analysis exploits.
	UseDaysMean float64
	GapDaysMean float64
}

// String returns the profile label.
func (p *Profile) String() string { return fmt.Sprintf("profile %s (%s)", p.Label, p.Package) }

// Named package constants for apps the analyses reference directly.
const (
	PkgWeibo         = "com.sina.weibo"
	PkgTwitter       = "com.twitter.android"
	PkgFacebook      = "com.facebook.katana"
	PkgPlus          = "com.google.android.apps.plus"
	PkgSamsungPush   = "com.sec.spp.push"
	PkgUrbanairship  = "com.urbanairship.airmail"
	PkgMaps          = "com.google.android.apps.maps"
	PkgGmail         = "com.google.android.gm"
	PkgGoWeatherWdg  = "com.gau.go.launcherex.gowidget.weatherwidget"
	PkgGoWeather     = "com.gau.go.weather"
	PkgAccuweather   = "com.accuweather.android"
	PkgAccuweatherW  = "com.accuweather.widget"
	PkgSpotify       = "com.spotify.music"
	PkgPandora       = "com.pandora.android"
	PkgPocketcasts   = "au.com.shiftyjelly.pocketcasts"
	PkgPodcastaddict = "com.bambuna.podcastaddict"
	PkgChrome        = "com.android.chrome"
	PkgFirefox       = "org.mozilla.firefox"
	PkgStockBrowser  = "com.android.browser"
	PkgMediaServer   = "android.process.media"
	PkgEmail         = "com.android.email"
	PkgPlay          = "com.android.vending"
	PkgDropbox       = "com.dropbox.android"
	PkgMessenger     = "com.example.messenger"
	PkgESPN          = "com.espn.score_center"
	PkgForecast      = "com.example.forecast"
)

// CaseStudies returns the calibrated profiles for every named app in the
// paper: Table 1's sixteen case studies, the three §4.1 browsers, the §5
// what-if apps, and the built-in services from Figures 1-3.
func CaseStudies() []Profile {
	return []Profile{
		// --- Social media (Table 1) ---
		{
			Package: PkgWeibo, Label: "Weibo",
			// "Frequent, nearly-empty requests" every 5-10 min; flows span
			// a few updates via connection reuse.
			Behavior: &PeriodicPoller{
				Period: 370, Jitter: 0.35, UpBytes: 2500, DownBytes: 88000,
				UpdatesPerConn: 3, BgState: trace.StateBackground,
				Sessions: SessionCfg{BurstPeriod: 25, BurstUp: 3000, BurstDown: 250000,
					BgState:  trace.StateBackground,
					Residual: ResidualCfg{Bursts: 2, Window: 20, Up: 2000, Down: 40000}},
			},
			InstallProb: 0.25, SessionsPerDay: 3, SessionMean: 120,
			UseDaysMean: 2, GapDaysMean: 11,
		},
		{
			Package: PkgTwitter, Label: "Twitter",
			Behavior: &PeriodicPoller{
				Period: 3600, Jitter: 0.25, UpBytes: 4000, DownBytes: 1500000,
				UpdatesPerConn: 1, BgState: trace.StateBackground, DailyKillProb: 0.25,
				Sessions: SessionCfg{BurstPeriod: 45, BurstUp: 3000, BurstDown: 300000,
					BgState:  trace.StateBackground,
					Residual: ResidualCfg{Bursts: 2, Window: 20, Up: 2000, Down: 50000}},
			},
			InstallProb: 0.5, SessionsPerDay: 5, SessionMean: 150,
			UseDaysMean: 10, GapDaysMean: 2,
		},
		{
			Package: PkgFacebook, Label: "Facebook",
			// Improved over the study: 5-minute polling early, hourly later.
			Behavior: &PeriodicPoller{
				Period: 300, Period2: 3600, SwitchFrac: 0.25, Jitter: 0.3,
				UpBytes: 3500, DownBytes: 300000,
				UpdatesPerConn: 4, BgState: trace.StateBackground,
				Sessions: SessionCfg{BurstPeriod: 35, BurstUp: 4000, BurstDown: 250000,
					BgState:  trace.StateBackground,
					Residual: ResidualCfg{Bursts: 3, Window: 25, Up: 3000, Down: 80000}},
			},
			InstallProb: 0.85, SessionsPerDay: 6, SessionMean: 180,
			UseDaysMean: 30, GapDaysMean: 1,
		},
		{
			Package: PkgPlus, Label: "Plus",
			// "Rarely actively used but installed by default."
			Behavior: &PeriodicPoller{
				Period: 3600, Jitter: 0.3, UpBytes: 3000, DownBytes: 800000,
				UpdatesPerConn: 1, BgState: trace.StateBackground,
			},
			InstallProb: 1.0, SessionsPerDay: 0.1, SessionMean: 60,
			UseDaysMean: 1, GapDaysMean: 25,
		},

		// --- Periodic update services (Table 1) ---
		{
			Package: PkgSamsungPush, Label: "SamsungPush",
			Behavior: &PeriodicPoller{
				Period: 900, Jitter: 0.9, UpBytes: 1500, DownBytes: 18000,
				NotifyProb: 0.04, NotifyBytes: 400000,
				UpdatesPerConn: 10, BgState: trace.StateService,
				Host: "gw.push.example",
				Sessions: SessionCfg{BurstPeriod: 30, BurstUp: 1500, BurstDown: 30000,
					BgState:  trace.StateService,
					Residual: ResidualCfg{Bursts: 1, Window: 10, Up: 1000, Down: 5000}},
			},
			// The push hub's settings UI is opened now and then, so its
			// background-only day runs are foreground-bounded (§5 Table 2).
			InstallProb: 1.0, SessionsPerDay: 1.2, SessionMean: 40,
			UseDaysMean: 5, GapDaysMean: 5,
		},
		{
			Package: PkgUrbanairship, Label: "Urbanairship",
			// "Library; period varies by app" — nearly empty HTTP requests
			// every 5-30 minutes, in-lab validated.
			Behavior: &PeriodicPoller{
				Period: 720, Jitter: 0.8, UpBytes: 900, DownBytes: 2500,
				NotifyProb: 0.01, NotifyBytes: 120000,
				UpdatesPerConn: 24, BgState: trace.StateService,
				Host: "hello.push.example",
			},
			InstallProb: 0.6, NeverForeground: true,
		},
		{
			Package: PkgMaps, Label: "Maps",
			// Background location uploads every 20-30 min, decreasing to a
			// few hours near the end of the study.
			Behavior: &PeriodicPoller{
				Period: 1500, Period2: 10800, SwitchFrac: 0.35, Jitter: 0.3,
				UpBytes: 30000, DownBytes: 500000,
				UpdatesPerConn: 2, BgState: trace.StateService,
				Sessions: SessionCfg{BurstPeriod: 10, BurstUp: 8000, BurstDown: 900000,
					BgState:  trace.StateService,
					Residual: ResidualCfg{Bursts: 2, Window: 20, Up: 5000, Down: 100000}},
			},
			InstallProb: 1.0, SessionsPerDay: 1, SessionMean: 200,
			UseDaysMean: 5, GapDaysMean: 3,
		},
		{
			Package: PkgGmail, Label: "Gmail",
			// 30-minute checks early; later on-demand (modelled as a much
			// longer, highly jittered period).
			Behavior: &PeriodicPoller{
				Period: 1800, Period2: 7200, SwitchFrac: 0.5, Jitter: 0.9,
				UpBytes: 5000, DownBytes: 250000,
				UpdatesPerConn: 2, BgState: trace.StateService,
				Sessions: SessionCfg{BurstPeriod: 30, BurstUp: 5000, BurstDown: 200000,
					BgState:  trace.StateService,
					Residual: ResidualCfg{Bursts: 2, Window: 15, Up: 3000, Down: 30000}},
			},
			InstallProb: 0.9, SessionsPerDay: 4, SessionMean: 90,
			UseDaysMean: 20, GapDaysMean: 1,
		},

		// --- Widgets (Table 1) ---
		{
			Package: PkgGoWeatherWdg, Label: "GoWeatherWidget",
			// Refreshes every 5 minutes, but only while the home screen is
			// in use: most updates ride on tails other traffic already
			// paid for, which is why its J/day is an order of magnitude
			// below Weibo's despite the same nominal period (Table 1).
			Behavior: &PeriodicPoller{
				Period: 300, Jitter: 0.2, UpBytes: 2000, DownBytes: 130000,
				UpdatesPerConn: 11, BgState: trace.StateService,
				ActiveOnly: true,
			},
			InstallProb: 0.3, NeverForeground: true,
		},
		{
			Package: PkgGoWeather, Label: "GoWeather",
			// "Switched push notification approaches": 5 min -> 40 min.
			Behavior: &PeriodicPoller{
				Period: 300, Period2: 2400, SwitchFrac: 0.4, Jitter: 0.25,
				UpBytes: 3000, DownBytes: 450000,
				UpdatesPerConn: 12, BgState: trace.StateBackground,
				Sessions: SessionCfg{BurstPeriod: 20, BurstUp: 2000, BurstDown: 300000,
					BgState:  trace.StateBackground,
					Residual: ResidualCfg{Bursts: 1, Window: 15, Up: 1500, Down: 30000}},
			},
			InstallProb: 0.3, SessionsPerDay: 1.5, SessionMean: 45,
			UseDaysMean: 15, GapDaysMean: 3,
		},
		{
			Package: PkgAccuweather, Label: "Accuweather",
			Behavior: &PeriodicPoller{
				Period: 420, Jitter: 0.9, UpBytes: 3000, DownBytes: 180000,
				UpdatesPerConn: 4, BgState: trace.StateBackground, DailyKillProb: 0.15,
				Sessions: SessionCfg{BurstPeriod: 20, BurstUp: 2000, BurstDown: 350000,
					BgState:  trace.StateBackground,
					Residual: ResidualCfg{Bursts: 1, Window: 15, Up: 1500, Down: 30000}},
			},
			InstallProb: 0.25, SessionsPerDay: 2, SessionMean: 60,
			UseDaysMean: 15, GapDaysMean: 3,
		},
		{
			Package: PkgAccuweatherW, Label: "AccuweatherWidget",
			// "More efficient than the app": ~3 h batched refreshes.
			Behavior: &PeriodicPoller{
				Period: 10800, Jitter: 0.3, UpBytes: 4000, DownBytes: 900000,
				UpdatesPerConn: 2, BgState: trace.StateService,
			},
			InstallProb: 0.25, NeverForeground: true,
		},

		// --- Streaming (Table 1) ---
		{
			Package: PkgSpotify, Label: "Spotify",
			Behavior: &Streamer{
				ChunkPeriod: 300, ChunkPeriod2: 2400, SwitchFrac: 0.5,
				ChunkBytes: 9000000, InitialBytes: 6000000,
			},
			InstallProb: 0.25, SessionsPerDay: 1.5, SessionMean: 2400,
			UseDaysMean: 4, GapDaysMean: 8,
		},
		{
			Package: PkgPandora, Label: "Pandora",
			// "Previously every 1 min in 2012" -> two-hourly batches.
			Behavior: &Streamer{
				ChunkPeriod: 60, ChunkPeriod2: 7200, SwitchFrac: 0.3,
				ChunkBytes: 1800000, InitialBytes: 4000000,
			},
			InstallProb: 0.25, SessionsPerDay: 0.7, SessionMean: 1800,
			UseDaysMean: 3, GapDaysMean: 10,
		},

		// --- Podcasts (Table 1) ---
		{
			Package: PkgPocketcasts, Label: "Pocketcasts",
			// Whole episode in one chunk: cheap per byte.
			Behavior: &Podcast{
				CheckPeriod: 28800, EpisodesPday: 0.6, EpisodeBytes: 45000000,
				ChunkBytes: 0,
			},
			InstallProb: 0.2, SessionsPerDay: 1.5, SessionMean: 300,
			UseDaysMean: 10, GapDaysMean: 4,
		},
		{
			Package: PkgPodcastaddict, Label: "Podcastaddict",
			// Chunks "as needed" every ~12 minutes: many radio wakeups.
			Behavior: &Podcast{
				CheckPeriod: 14400, EpisodesPday: 0.6, EpisodeBytes: 40000000,
				ChunkBytes: 2000000, ChunkPeriod: 720,
			},
			InstallProb: 0.2, SessionsPerDay: 1.5, SessionMean: 300,
			UseDaysMean: 10, GapDaysMean: 4,
		},

		// --- Browsers (§4.1) ---
		{
			Package: PkgChrome, Label: "Chrome",
			Behavior: &Browser{
				PageLoadPeriod: 35, PageUpBytes: 6000, PageDownBytes: 700000,
				LeakProb: 0.08, LeakPeriod: 7, LeakUpBytes: 1200, LeakDownBytes: 6000,
				LeakMedian: 20, LeakSigma: 2.8,
				LeakInfinitePortion: 0.03, LeakInfinitePeriod: 90,
				Residual: ResidualCfg{Bursts: 2, Window: 12, Up: 2000, Down: 30000},
			},
			InstallProb: 0.8, SessionsPerDay: 5, SessionMean: 240,
			UseDaysMean: 30, GapDaysMean: 1,
		},
		{
			Package: PkgFirefox, Label: "Firefox",
			// Suspends background tabs: no leak.
			Behavior: &Browser{
				PageLoadPeriod: 35, PageUpBytes: 6000, PageDownBytes: 700000,
				LeakProb: 0,
			},
			InstallProb: 0.25, SessionsPerDay: 3, SessionMean: 200,
			UseDaysMean: 20, GapDaysMean: 2,
		},
		{
			Package: PkgStockBrowser, Label: "Browser",
			Behavior: &Browser{
				PageLoadPeriod: 40, PageUpBytes: 5000, PageDownBytes: 600000,
				LeakProb: 0,
			},
			InstallProb: 0.6, SessionsPerDay: 2, SessionMean: 180,
			UseDaysMean: 25, GapDaysMean: 2,
		},

		// --- Built-ins and §5 what-if apps ---
		{
			Package: PkgMediaServer, Label: "MediaServer",
			// The built-in media service: huge data, efficient per byte
			// (Figure 2's contrast with email).
			Behavior: &Streamer{
				ChunkPeriod: 60, ChunkBytes: 4000000, InitialBytes: 8000000,
				ServiceOnly: true,
			},
			InstallProb: 1.0, SessionsPerDay: 2.4, SessionMean: 1800,
			UseDaysMean: 8, GapDaysMean: 2,
		},
		{
			Package: PkgEmail, Label: "Email",
			// Disproportionate energy per byte (Figure 2).
			Behavior: &PeriodicPoller{
				Period: 600, Jitter: 0.25, UpBytes: 2000, DownBytes: 15000,
				UpdatesPerConn: 6, BgState: trace.StateService,
				Sessions: SessionCfg{BurstPeriod: 30, BurstUp: 3000, BurstDown: 120000,
					BgState:  trace.StateService,
					Residual: ResidualCfg{Bursts: 1, Window: 15, Up: 1500, Down: 15000}},
			},
			InstallProb: 0.9, SessionsPerDay: 3, SessionMean: 90,
			UseDaysMean: 20, GapDaysMean: 2,
		},
		{
			Package: PkgPlay, Label: "GooglePlay",
			// Daily app-update downloads plus periodic checks.
			Behavior: &PeriodicPoller{
				Period: 43200, Jitter: 0.5, UpBytes: 6000, DownBytes: 20000000,
				UpdatesPerConn: 1, BgState: trace.StateService,
				Sessions: SessionCfg{BurstPeriod: 25, BurstUp: 4000, BurstDown: 2000000,
					BgState:  trace.StateService,
					Residual: ResidualCfg{Bursts: 2, Window: 30, Up: 3000, Down: 400000}},
			},
			InstallProb: 1.0, SessionsPerDay: 0.6, SessionMean: 150,
			UseDaysMean: 10, GapDaysMean: 3,
		},
		{
			Package: PkgDropbox, Label: "Dropbox",
			// §4.1 singles out Dropbox as an app "which may have valid
			// reasons to upload content immediately after the app is
			// closed": its post-background residual is large, legitimate
			// upload traffic (camera-roll sync).
			Behavior: &Generic{
				BurstPeriod: 20, BurstUp: 50000, BurstDown: 200000,
				Residual: ResidualCfg{Bursts: 3, Window: 50, Up: 2500000, Down: 20000},
			},
			InstallProb: 0.35, SessionsPerDay: 1, SessionMean: 90,
			UseDaysMean: 6, GapDaysMean: 4,
		},
		{
			Package: PkgMessenger, Label: "Messenger",
			// §5 "Meso.": a chat app kept installed but unused for long
			// stretches (84 consecutive background days for one user).
			Behavior: &PeriodicPoller{
				Period: 1200, Jitter: 0.4, UpBytes: 1800, DownBytes: 25000,
				NotifyProb: 0.05, NotifyBytes: 150000,
				UpdatesPerConn: 6, BgState: trace.StateService,
				Sessions: SessionCfg{BurstPeriod: 15, BurstUp: 3000, BurstDown: 60000,
					BgState:  trace.StateService,
					Residual: ResidualCfg{Bursts: 2, Window: 15, Up: 1500, Down: 20000}},
			},
			InstallProb: 0.4, SessionsPerDay: 4, SessionMean: 100,
			UseDaysMean: 3, GapDaysMean: 9,
		},
		{
			Package: PkgESPN, Label: "ESPN",
			// §5 "ESP.": frequently used, small idle gaps.
			Behavior: &PeriodicPoller{
				Period: 1800, Jitter: 0.4, UpBytes: 2500, DownBytes: 300000,
				UpdatesPerConn: 3, BgState: trace.StateService,
				Sessions: SessionCfg{BurstPeriod: 20, BurstUp: 2500, BurstDown: 400000,
					BgState:  trace.StateService,
					Residual: ResidualCfg{Bursts: 2, Window: 20, Up: 2000, Down: 40000}},
			},
			InstallProb: 0.3, SessionsPerDay: 3, SessionMean: 150,
			UseDaysMean: 12, GapDaysMean: 1.6,
		},
		{
			Package: PkgForecast, Label: "Forecast",
			// §5 "4com": a weather-ish poller with medium idle gaps.
			Behavior: &PeriodicPoller{
				Period: 1200, Jitter: 0.4, UpBytes: 2200, DownBytes: 150000,
				UpdatesPerConn: 4, BgState: trace.StateService,
				Sessions: SessionCfg{BurstPeriod: 25, BurstUp: 2000, BurstDown: 250000,
					BgState:  trace.StateService,
					Residual: ResidualCfg{Bursts: 1, Window: 15, Up: 1500, Down: 25000}},
			},
			InstallProb: 0.35, SessionsPerDay: 2, SessionMean: 60,
			UseDaysMean: 4, GapDaysMean: 3.5,
		},
	}
}

// Population returns n generic long-tail app profiles with varying usage
// and light background behaviour, modelling the rest of the 342 observed
// apps. Most send the bulk of their background bytes in the first minute
// after backgrounding (the §4.1 84% criterion); a minority run periodic
// syncs.
func Population(n int) []Profile {
	out := make([]Profile, 0, n)
	for i := 0; i < n; i++ {
		p := Profile{
			Package: fmt.Sprintf("com.longtail.app%03d", i),
			Label:   fmt.Sprintf("app%03d", i),
			// Popularity and usage vary across the population; the values
			// are deterministic functions of the index so profiles are
			// stable across runs (per-user variation comes from the user
			// model's seed).
			InstallProb:    0.05 + 0.9*float64((i*2654435761)%100)/100,
			SessionsPerDay: 0.02 + 0.4*float64((i*40503)%100)/100,
			SessionMean:    20 + 12*float64(i%10),
			UseDaysMean:    2 + float64(i%28),
			GapDaysMean:    0.5 + float64((i*7)%20),
		}
		g := &Generic{
			BurstPeriod: 30 + float64(i%50),
			BurstUp:     1000 + int64(i%7)*800,
			BurstDown:   30000 + int64(i%11)*60000,
			Residual: ResidualCfg{
				Bursts: 1 + i%3, Window: 10 + float64(i%4)*10,
				Up: 1000, Down: 10000 + int64(i%5)*15000,
			},
			Server: uint32(i) * 97,
		}
		// Roughly one in eight long-tail apps keeps polling after being
		// backgrounded, phase-locked at a 5- or 10-minute interval for a
		// while — these apps fail the first-minute criterion and build
		// Figure 6's 5/10-minute spikes.
		if i%8 == 7 {
			g.SyncPeriod = 300
			if i%16 == 15 {
				g.SyncPeriod = 600
			}
			g.SyncUp = 1500
			g.SyncDown = 100000
			g.SyncDurMean = 5400
		}
		p.Behavior = g
		out = append(out, p)
	}
	return out
}

// AllProfiles returns the case studies plus a long-tail population sized so
// the total app count matches the paper's 342 unique apps.
func AllProfiles() []Profile {
	cs := CaseStudies()
	return append(cs, Population(342-len(cs))...)
}
