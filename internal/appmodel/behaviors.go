package appmodel

import (
	"fmt"
	"math"
	"sort"

	"netenergy/internal/appproto"
	"netenergy/internal/trace"
)

// Behavior generates one app's records over [start, end) given the user's
// foreground sessions for that app (sorted, non-overlapping; may be empty
// for pure background services and widgets).
type Behavior interface {
	Generate(g *Gen, app uint32, sessions []Session, start, end trace.Timestamp)
}

// hostFor derives a stable synthetic hostname for a service from its
// server seed, so the analyzer can attribute traffic to hosts.
func hostFor(kind string, seed uint32) string {
	return fmt.Sprintf("%s-%06x.content.example", kind, seed&0xffffff)
}

// stateAt returns Foreground if ts falls inside any session, else bg.
func stateAt(sessions []Session, ts trace.Timestamp, bg trace.ProcState) trace.ProcState {
	i := sort.Search(len(sessions), func(i int) bool { return sessions[i].End > ts })
	if i < len(sessions) && sessions[i].Start <= ts {
		return trace.StateForeground
	}
	return bg
}

// nextSessionAfter returns the first session starting at or after ts, or ok=false.
func nextSessionAfter(sessions []Session, ts trace.Timestamp) (Session, bool) {
	i := sort.Search(len(sessions), func(i int) bool { return sessions[i].Start >= ts })
	if i < len(sessions) {
		return sessions[i], true
	}
	return Session{}, false
}

// ResidualCfg describes the traffic an app emits right after it is sent to
// the background: in-flight responses completing, final syncs, analytics
// beacons. This is the ubiquitous §4.1 pattern — "over 80% of apps transmit
// more than 80% of their background data in the first minute after the app
// is sent to a background state".
type ResidualCfg struct {
	Bursts   int     // mean number of residual bursts per transition
	Window   float64 // seconds over which they arrive (exp-distributed)
	Up, Down int64   // bytes per residual burst
}

// SessionCfg describes generic foreground behaviour plus the post-session
// residual.
type SessionCfg struct {
	BurstPeriod float64 // mean seconds between foreground bursts
	BurstUp     int64
	BurstDown   int64
	BgState     trace.ProcState // state after the session ends
	Residual    ResidualCfg
	// Host labels the app's interactive traffic (defaults to a host
	// derived from the server address).
	Host string
}

// emitSessions produces UI events, process-state transitions, foreground
// traffic and post-background residual traffic for every session.
func emitSessions(g *Gen, app uint32, sessions []Session, cfg SessionCfg, server [4]byte) {
	host := cfg.Host
	if host == "" {
		host = hostFor("app", uint32(server[1])<<16|uint32(server[2])<<8|uint32(server[3]))
	}
	req := appproto.Request("GET", host, "/view")
	for _, s := range sessions {
		g.UIEvent(app, s.Start, trace.UILaunch)
		g.SetState(app, s.Start, trace.StateForeground)
		if cfg.BurstPeriod > 0 && cfg.BurstDown+cfg.BurstUp > 0 {
			conn := g.NewConn(server, 443)
			t := s.Start.AddSeconds(g.Rng.Exp(2))
			for t < s.End {
				up := int64(g.Rng.Jitter(float64(cfg.BurstUp), 0.5))
				down := int64(g.Rng.Jitter(float64(cfg.BurstDown), 0.5))
				g.EmitHTTPBurst(app, t, trace.StateForeground, conn, req, up, down)
				t = t.AddSeconds(g.Rng.Exp(cfg.BurstPeriod))
			}
		}
		g.SetState(app, s.End, cfg.BgState)
		emitResidual(g, app, s.End, cfg.Residual, cfg.BgState, server, host)
	}
}

// emitResidual emits the first-minute post-background traffic.
func emitResidual(g *Gen, app uint32, after trace.Timestamp, r ResidualCfg, bg trace.ProcState, server [4]byte, host string) {
	if r.Bursts <= 0 || r.Up+r.Down == 0 {
		return
	}
	req := appproto.Request("POST", host, "/sync")
	n := g.Rng.Poisson(float64(r.Bursts))
	if n == 0 {
		n = 1
	}
	conn := g.NewConn(server, 443)
	for i := 0; i < n; i++ {
		dt := g.Rng.Exp(r.Window / 3)
		if dt > r.Window*2 {
			dt = r.Window * 2
		}
		t := after.AddSeconds(0.5 + dt)
		g.EmitHTTPBurst(app, t, bg, conn, req,
			int64(g.Rng.Jitter(float64(r.Up), 0.4)),
			int64(g.Rng.Jitter(float64(r.Down), 0.4)))
	}
}

// PeriodicPoller models the dominant background pattern of §4.2: an app (or
// a push library it embeds) that wakes the radio on a timer. Social apps,
// push notification services, widgets, mail checkers and location services
// are all instances with different periods and payloads.
type PeriodicPoller struct {
	Period  float64 // mean seconds between updates
	Jitter  float64 // relative jitter on the period (0..1)
	Period2 float64 // if > 0, period after SwitchFrac of the span
	// SwitchFrac is the fraction of [start,end) at which the app's update
	// period changes — modelling the longitudinal behaviour changes the
	// paper observed (Facebook 5 min -> 1 h, Pandora 1 min -> 2 h).
	SwitchFrac float64

	UpBytes   int64
	DownBytes int64

	// NotifyProb adds an occasional larger payload (a real push
	// notification landing) of NotifyBytes on top of the near-empty poll.
	NotifyProb  float64
	NotifyBytes int64

	// UpdatesPerConn controls connection reuse: how many consecutive
	// updates share a five-tuple (and therefore a flow).
	UpdatesPerConn int

	// BgState is the process state background polls are labelled with.
	BgState trace.ProcState

	// DailyKillProb is the chance, each midnight, that the OS or user
	// kills the background process; polling then stops until the next
	// foreground session.
	DailyKillProb float64

	// ActiveOnly restricts updates to times the user is interacting with
	// the device (within a few minutes of any app's session). Home-screen
	// widgets behave this way: they refresh a visible surface, so their
	// frequent updates ride on radio tails that foreground traffic already
	// paid for — which is how a 5-minute widget can cost a tenth of a
	// 5-minute social poller (Table 1: Go Weather widget vs Weibo).
	ActiveOnly bool

	// AlignToBackground restarts the update timer at each foreground
	// session end, so updates land at exact multiples of Period after the
	// app is backgrounded — producing Figure 6's spikes at the 5- and
	// 10-minute marks.
	AlignToBackground bool

	// Sessions describes foreground usage traffic (zero value: none).
	Sessions SessionCfg

	// Host labels the poll traffic's destination (defaults to a derived
	// content host; push services should use a *.push.example host).
	Host string

	// Server differentiates the app's backend; 0 derives one from the app ID.
	Server uint32
}

// Generate implements Behavior.
func (p *PeriodicPoller) Generate(g *Gen, app uint32, sessions []Session, start, end trace.Timestamp) {
	server := ServerIP(p.Server + app*2654435761)
	cfg := p.Sessions
	if cfg.BgState == trace.StateUnknown {
		cfg.BgState = p.BgState
	}
	emitSessions(g, app, sessions, cfg, server)

	if p.Period <= 0 {
		return
	}
	bg := p.BgState
	if bg == trace.StateUnknown {
		bg = trace.StateService
	}
	// Pure background apps (no sessions) still need an initial state.
	if len(sessions) == 0 {
		g.SetState(app, start, bg)
	}
	switchTS := end
	if p.Period2 > 0 && p.SwitchFrac > 0 && p.SwitchFrac < 1 {
		switchTS = start.AddSeconds(p.SwitchFrac * end.Sub(start))
	}
	pollHost := p.Host
	if pollHost == "" {
		pollHost = hostFor("api", p.Server+app)
	}
	pollReq := appproto.Request("GET", pollHost, "/poll")
	conn := g.NewConn(server, 443)
	onConn := 0
	perConn := p.UpdatesPerConn
	if perConn <= 0 {
		perConn = 1
	}
	t := start.AddSeconds(g.Rng.Float64() * p.Period)
	nextMidnight := midnightAfter(t)
	// Alignment bookkeeping: index of the next session end to anchor on.
	nextAnchor := 0
	for t < end {
		if p.AlignToBackground && nextAnchor < len(sessions) && t >= sessions[nextAnchor].End {
			// Restart the phase at the session end we just passed.
			anchor := sessions[nextAnchor].End
			for nextAnchor < len(sessions) && t >= sessions[nextAnchor].End {
				anchor = sessions[nextAnchor].End
				nextAnchor++
			}
			t = anchor.AddSeconds(g.Rng.Jitter(p.Period, 0.02))
			if t >= end {
				break
			}
		}
		if p.DailyKillProb > 0 && t >= nextMidnight {
			nextMidnight = midnightAfter(t)
			if g.Rng.Bool(p.DailyKillProb) {
				// Killed: silent until the next foreground session revives
				// the background service.
				s, ok := nextSessionAfter(sessions, t)
				if !ok {
					return
				}
				t = s.End
				conn = g.NewConn(server, 443)
				onConn = 0
				nextMidnight = midnightAfter(t)
				continue
			}
		}
		if p.ActiveOnly && !g.DeviceActive(t, 120) {
			// The device is idle; the widget waits for the next use.
			t = t.AddSeconds(g.Rng.Jitter(p.Period, p.Jitter))
			continue
		}
		up := int64(g.Rng.Jitter(float64(p.UpBytes), 0.3))
		down := int64(g.Rng.Jitter(float64(p.DownBytes), 0.3))
		if p.NotifyProb > 0 && g.Rng.Bool(p.NotifyProb) {
			down += p.NotifyBytes
		}
		st := stateAt(sessions, t, bg)
		g.EmitHTTPBurst(app, t, st, conn, pollReq, up, down)
		onConn++
		if onConn >= perConn {
			conn = g.NewConn(server, 443)
			onConn = 0
		}
		period := p.Period
		if t >= switchTS {
			period = p.Period2
		}
		jit := p.Jitter
		if p.AlignToBackground {
			jit = 0.02 // stay phase-locked to the backgrounding instant
		}
		t = t.AddSeconds(g.Rng.Jitter(period, jit))
	}
}

// midnightAfter returns the first UTC midnight strictly after ts.
func midnightAfter(ts trace.Timestamp) trace.Timestamp {
	const day = int64(86400 * 1e6)
	return trace.Timestamp((int64(ts)/day + 1) * day)
}

// Streamer models music/media streaming (§4.2 "Streaming"): listening
// sessions during which the app is perceptible (audio with the screen off)
// and downloads content in chunks. The 2012->2014 shift from continuous
// small chunks to larger batched downloads is expressed with Period2.
type Streamer struct {
	ChunkPeriod  float64 // seconds between chunk downloads while listening
	ChunkPeriod2 float64 // period after SwitchFrac (batching era)
	SwitchFrac   float64
	ChunkBytes   int64
	InitialBytes int64 // buffer filled at session start

	// ServiceOnly models delegated system services (the built-in media
	// server): playback happens on the app's schedule but the process
	// never owns a foreground UI — the paper notes such traffic is
	// labelled by the service it came from, not the requesting app.
	ServiceOnly bool

	Server uint32
}

// Generate implements Behavior. Sessions are interpreted as listening
// sessions.
func (m *Streamer) Generate(g *Gen, app uint32, sessions []Session, start, end trace.Timestamp) {
	server := ServerIP(m.Server + app*2654435761)
	switchTS := end
	if m.ChunkPeriod2 > 0 && m.SwitchFrac > 0 && m.SwitchFrac < 1 {
		switchTS = start.AddSeconds(m.SwitchFrac * end.Sub(start))
	}
	cdnHost := "media-" + fmt.Sprintf("%04x", m.Server&0xffff) + ".cdn.example"
	chunkReq := appproto.Request("GET", cdnHost, "/seg")
	for _, s := range sessions {
		startState := trace.StateForeground
		if m.ServiceOnly {
			startState = trace.StatePerceptible
			g.SetState(app, s.Start, trace.StatePerceptible)
		} else {
			g.UIEvent(app, s.Start, trace.UILaunch)
			g.SetState(app, s.Start, trace.StateForeground)
		}
		conn := g.NewConn(server, 443)
		// Initial buffering happens while the user still faces the app.
		t := g.EmitHTTPBurst(app, s.Start.AddSeconds(1), startState, conn, chunkReq, 2000, m.InitialBytes)
		// Playback continues perceptibly (screen off, audio on).
		percepAt := s.Start.AddSeconds(20)
		if percepAt > s.End {
			percepAt = s.End
		}
		g.SetState(app, percepAt, trace.StatePerceptible)
		period := m.ChunkPeriod
		if s.Start >= switchTS {
			period = m.ChunkPeriod2
		}
		if t < percepAt {
			t = percepAt
		}
		for t = t.AddSeconds(g.Rng.Jitter(period, 0.2)); t < s.End; t = t.AddSeconds(g.Rng.Jitter(period, 0.2)) {
			chunk := int64(g.Rng.Jitter(float64(m.ChunkBytes), 0.3))
			g.EmitHTTPBurst(app, t, trace.StatePerceptible, conn, chunkReq, 500, chunk)
		}
		g.SetState(app, s.End, trace.StateService)
	}
}

// Podcast models podcast apps (§4.2 "Podcasts"): periodic feed checks plus
// episode downloads, either as one large chunk (Pocketcasts) or as many
// small chunks spread over the day (Podcastaddict) — the design contrast
// the paper highlights.
type Podcast struct {
	CheckPeriod  float64 // seconds between feed refreshes
	EpisodesPday float64 // mean episodes downloaded per day
	EpisodeBytes int64
	ChunkBytes   int64   // 0: whole episode at once; else chunked
	ChunkPeriod  float64 // seconds between chunks
	Server       uint32
}

// Generate implements Behavior.
func (p *Podcast) Generate(g *Gen, app uint32, sessions []Session, start, end trace.Timestamp) {
	server := ServerIP(p.Server + app*2654435761)
	emitSessions(g, app, sessions, SessionCfg{
		BurstPeriod: 30, BurstUp: 2000, BurstDown: 50000,
		BgState:  trace.StateBackground,
		Residual: ResidualCfg{Bursts: 2, Window: 20, Up: 1000, Down: 20000},
	}, server)
	if len(sessions) == 0 {
		g.SetState(app, start, trace.StateBackground)
	}
	// Feed checks.
	feedReq := appproto.Request("GET", hostFor("feeds", p.Server+app), "/rss")
	epReq := appproto.Request("GET", "episodes-"+fmt.Sprintf("%04x", (p.Server+app)&0xffff)+".cdn.example", "/ep")
	if p.CheckPeriod > 0 {
		conn := g.NewConn(server, 443)
		n := 0
		for t := start.AddSeconds(g.Rng.Float64() * p.CheckPeriod); t < end; t = t.AddSeconds(g.Rng.Jitter(p.CheckPeriod, 0.3)) {
			g.EmitHTTPBurst(app, t, stateAt(sessions, t, trace.StateBackground), conn, feedReq, 1500, 8000)
			if n++; n%8 == 0 {
				conn = g.NewConn(server, 443)
			}
		}
	}
	// Episode downloads.
	const daySec = 86400.0
	days := int(end.Sub(start) / daySec)
	for d := 0; d < days; d++ {
		eps := g.Rng.Poisson(p.EpisodesPday)
		for e := 0; e < eps; e++ {
			at := start.AddSeconds(float64(d)*daySec + g.Rng.Float64()*daySec)
			size := int64(g.Rng.Jitter(float64(p.EpisodeBytes), 0.4))
			conn := g.NewConn(server, 443)
			if p.ChunkBytes <= 0 {
				// One large batch: efficient (Pocketcasts).
				g.EmitHTTPBurst(app, at, stateAt(sessions, at, trace.StateBackground), conn, epReq, 2000, size)
				continue
			}
			// Chunked on demand: many radio wakeups (Podcastaddict).
			t := at
			for remaining := size; remaining > 0 && t < end; remaining -= p.ChunkBytes {
				chunk := p.ChunkBytes
				if chunk > remaining {
					chunk = remaining
				}
				g.EmitHTTPBurst(app, t, stateAt(sessions, t, trace.StateBackground), conn, epReq, 800, chunk)
				t = t.AddSeconds(g.Rng.Jitter(p.ChunkPeriod, 0.3))
			}
		}
	}
}

// Browser models §4.1's headline finding. During sessions the user loads
// pages; when the app is backgrounded, with probability LeakProb an open
// tab keeps issuing requests (auto-refreshing content, ads, analytics) on a
// short period, for a heavy-tailed duration that can exceed a day. Firefox
// and the stock browser set LeakProb to 0 — they suspend background tabs.
type Browser struct {
	PageLoadPeriod float64 // mean seconds between page loads in a session
	PageUpBytes    int64
	PageDownBytes  int64

	LeakProb      float64 // probability a background transition leaks
	LeakPeriod    float64 // seconds between leaked requests
	LeakUpBytes   int64
	LeakDownBytes int64
	// Leak duration is log-normal: exp(N(ln(LeakMedian), LeakSigma)).
	LeakMedian float64 // seconds
	LeakSigma  float64

	// Residual is the in-flight completion traffic every browser emits
	// right after backgrounding; browsers that suspend background tabs
	// (Firefox, the stock browser) keep this tiny.
	Residual ResidualCfg

	// LeakInfinitePortion is the fraction of leaks that never stop on
	// their own — the paper's egregious case, a page that refreshes
	// "indefinitely, keeping the cellular radio alive and draining the
	// battery until the app is killed or the tab is closed". These run at
	// LeakInfinitePeriod until the user next opens the browser.
	LeakInfinitePortion float64
	LeakInfinitePeriod  float64

	Server uint32
}

// Generate implements Behavior.
func (b *Browser) Generate(g *Gen, app uint32, sessions []Session, start, end trace.Timestamp) {
	server := ServerIP(b.Server + app*2654435761)
	// A small stable set of first-party sites the user browses.
	var pageHosts []string
	for i := 0; i < 4; i++ {
		pageHosts = append(pageHosts, hostFor("www", b.Server+uint32(i)*7919))
	}
	for _, s := range sessions {
		g.UIEvent(app, s.Start, trace.UILaunch)
		g.SetState(app, s.Start, trace.StateForeground)
		conn := g.NewConn(server, 443)
		for t := s.Start.AddSeconds(1 + g.Rng.Exp(2)); t < s.End; t = t.AddSeconds(g.Rng.Exp(b.PageLoadPeriod)) {
			up := int64(g.Rng.Jitter(float64(b.PageUpBytes), 0.5))
			down := int64(g.Rng.LogNormalMean(float64(b.PageDownBytes), 1.0))
			req := appproto.Request("GET", pageHosts[g.Rng.Intn(len(pageHosts))], "/page")
			g.EmitHTTPBurst(app, t, trace.StateForeground, conn, req, up, down)
		}
		leaking := g.Rng.Bool(b.LeakProb)
		var lc *Conn
		var leakReq []byte
		if leaking {
			// The auto-refreshing page opened its connection while the
			// user was still browsing: the leaked flow *starts in the
			// foreground* and persists into the background — exactly the
			// §4.1 phenomenon Figures 4 and 5 quantify. Leaked requests
			// target auto-refreshing content, ads or analytics beacons
			// ("including some ad and analytics content", §4.1).
			leakHost := pageHosts[0]
			switch g.Rng.Intn(3) {
			case 0:
				leakHost = appproto.AdHosts[g.Rng.Intn(len(appproto.AdHosts))]
			case 1:
				leakHost = appproto.AnalyticsHosts[g.Rng.Intn(len(appproto.AnalyticsHosts))]
			}
			leakReq = appproto.Request("GET", leakHost, "/refresh")
			lc = g.NewConn(server, 443)
			openAt := s.End.AddSeconds(-g.Rng.Jitter(minFloat(30, s.Duration()/2), 0.5))
			if openAt < s.Start {
				openAt = s.Start
			}
			g.EmitHTTPBurst(app, openAt, trace.StateForeground, lc, leakReq,
				b.LeakUpBytes, b.LeakDownBytes)
		}
		g.SetState(app, s.End, trace.StateBackground)
		emitResidual(g, app, s.End, b.Residual, trace.StateBackground, server, pageHosts[0])

		if !leaking {
			continue
		}
		// The leaky tab keeps refreshing until its duration expires, the
		// user returns to the app, or the trace ends. A small fraction of
		// leaks are unbounded and only stop at the next session — these are
		// the multi-day persistence cases in Figure 5's tail.
		period := b.LeakPeriod
		var leakEnd trace.Timestamp
		if b.LeakInfinitePortion > 0 && g.Rng.Bool(b.LeakInfinitePortion) {
			leakEnd = end
			if b.LeakInfinitePeriod > 0 {
				period = b.LeakInfinitePeriod
			}
		} else {
			dur := g.Rng.LogNormal(lnOr(b.LeakMedian, 120), b.LeakSigma)
			leakEnd = s.End.AddSeconds(dur)
		}
		if next, ok := nextSessionAfter(sessions, s.End); ok && next.Start < leakEnd {
			leakEnd = next.Start
		}
		if leakEnd > end {
			leakEnd = end
		}
		for t := s.End.AddSeconds(g.Rng.Jitter(period, 0.2)); t < leakEnd; t = t.AddSeconds(g.Rng.Jitter(period, 0.2)) {
			g.EmitHTTPBurst(app, t, trace.StateBackground, lc, leakReq,
				int64(g.Rng.Jitter(float64(b.LeakUpBytes), 0.3)),
				int64(g.Rng.Jitter(float64(b.LeakDownBytes), 0.3)))
		}
	}
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// lnOr returns ln(v), substituting def when v is not positive. It converts
// a median duration into the mu parameter of a log-normal distribution.
func lnOr(v, def float64) float64 {
	if v <= 0 {
		v = def
	}
	return math.Log(v)
}

// Generic models the long tail of apps: traffic while used, a residual
// after backgrounding, and (for a subset) a post-session sync: the app
// keeps refreshing at exact multiples of SyncPeriod after being
// backgrounded, for a limited time — the behaviour behind Figure 6's 5- and
// 10-minute spikes and its rapid fall-off.
type Generic struct {
	BurstPeriod float64
	BurstUp     int64
	BurstDown   int64

	// SyncPeriod enables post-session polling at this exact interval
	// (0: none). SyncDurMean is the mean duration (seconds) the polling
	// continues after each session before the app gives up.
	SyncPeriod  float64
	SyncUp      int64
	SyncDown    int64
	SyncDurMean float64

	Residual ResidualCfg
	Server   uint32
}

// Generate implements Behavior.
func (a *Generic) Generate(g *Gen, app uint32, sessions []Session, start, end trace.Timestamp) {
	server := ServerIP(a.Server + app*2654435761)
	emitSessions(g, app, sessions, SessionCfg{
		BurstPeriod: a.BurstPeriod, BurstUp: a.BurstUp, BurstDown: a.BurstDown,
		BgState:  trace.StateBackground,
		Residual: a.Residual,
	}, server)
	if a.SyncPeriod <= 0 {
		return
	}
	durMean := a.SyncDurMean
	if durMean <= 0 {
		durMean = 4 * a.SyncPeriod
	}
	for si, s := range sessions {
		stop := s.End.AddSeconds(g.Rng.Exp(durMean))
		if next, ok := nextSessionAfter(sessions, s.End); ok && next.Start < stop {
			stop = next.Start
		}
		if stop > end {
			stop = end
		}
		conn := g.NewConn(server, 443)
		syncReq := appproto.Request("POST", hostFor("sync", a.Server+app), "/refresh")
		for k := 1; ; k++ {
			// Exact multiples of the sync period with a few seconds of
			// alarm slop — the phase-locked pattern behind Figure 6's
			// spikes.
			t := s.End.AddSeconds(float64(k)*a.SyncPeriod + g.Rng.Norm(0, 4))
			if t >= stop {
				break
			}
			g.EmitHTTPBurst(app, t, trace.StateBackground, conn, syncReq,
				int64(g.Rng.Jitter(float64(a.SyncUp), 0.3)),
				int64(g.Rng.Jitter(float64(a.SyncDown), 0.3)))
		}
		_ = si
	}
}
