// Package radio models the power behaviour of cellular and WiFi radio
// interfaces, following the measurement-derived LTE model of Huang et al.
// (MobiSys 2012) that the paper uses (§3.1, "We use a standard power model
// for LTE supported by measurements gathered with a Monsoon power monitor").
//
// The central abstraction is the RRC-style state machine: the radio is IDLE
// until traffic arrives, pays a fixed-duration promotion to reach the
// connected state, transmits at a rate-dependent power, and after the last
// packet lingers through one or more tail phases (continuous reception,
// short DRX, long DRX for LTE; DCH and FACH inactivity timers for 3G)
// before demoting back to IDLE. For intermittent traffic the tail dominates
// total energy — which is exactly the phenomenon the paper studies.
//
// The Accountant type turns a timestamped packet sequence into per-packet
// energy charges with the paper's attribution rule: tail energy is assigned
// to the last packet transmitted before the tail, never double-counted
// across concurrent flows.
package radio

import "fmt"

// TailPhase is one segment of the post-transfer tail: the radio spends
// Duration seconds at Power watts (unless interrupted by new traffic).
type TailPhase struct {
	Duration float64 // seconds
	Power    float64 // watts
}

// Params describes one radio interface's power model. All powers are in
// watts, durations in seconds, rates in Mbps.
type Params struct {
	Name string

	// Promotion from IDLE to the connected state.
	PromotionTime  float64
	PromotionPower float64

	// Power during active transfer is Base + AlphaUp*rateUp + AlphaDown*rateDown
	// where rates are the instantaneous link throughput in Mbps.
	Base      float64 // watts
	AlphaUp   float64 // watts per Mbps of uplink throughput
	AlphaDown float64 // watts per Mbps of downlink throughput

	// Link rates used to convert packet sizes to transmission times.
	UplinkMbps   float64
	DownlinkMbps float64

	// TailPhases the radio walks through after the last transmission.
	TailPhases []TailPhase

	// IdlePower is the baseline (paging DRX) power in IDLE. It is reported
	// separately and not attributed to apps: it is paid regardless of
	// traffic.
	IdlePower float64
}

// TailTime returns the total tail duration (sum of phases).
func (p *Params) TailTime() float64 {
	var t float64
	for _, ph := range p.TailPhases {
		t += ph.Duration
	}
	return t
}

// tailEnergy returns the energy spent in the tail between offsets a and b
// seconds after the end of a transmission (clamped to the tail length).
func (p *Params) tailEnergy(a, b float64) float64 {
	if b <= a {
		return 0
	}
	var e, off float64
	for _, ph := range p.TailPhases {
		lo, hi := off, off+ph.Duration
		s := max64(a, lo)
		t := min64(b, hi)
		if t > s {
			e += (t - s) * ph.Power
		}
		off = hi
	}
	return e
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// LTE returns the 4G LTE model with the published parameters from
// Huang et al., MobiSys 2012 (the model the paper uses): promotion
// 1210.7 mW for 260.1 ms; transfer power 1288.04 mW + 438.39 mW/Mbps up +
// 51.97 mW/Mbps down; an 11.576 s tail at 1060.04 mW; idle 11.36 mW.
// The tail is split into a short continuous-reception phase at the base
// power followed by the DRX tail, matching the shape of the published
// power traces.
func LTE() Params {
	return Params{
		Name:           "LTE",
		PromotionTime:  0.2601,
		PromotionPower: 1.2107,
		Base:           1.28804,
		AlphaUp:        0.43839,
		AlphaDown:      0.05197,
		UplinkMbps:     5.64,
		DownlinkMbps:   12.74,
		TailPhases: []TailPhase{
			{Duration: 0.2, Power: 1.28804},    // continuous reception before DRX
			{Duration: 11.376, Power: 1.06004}, // short + long DRX tail
		},
		IdlePower: 0.01136,
	}
}

// ThreeG returns a 3G UMTS model (RRC IDLE/FACH/DCH) with representative
// published parameters: ~2 s promotion to DCH at 800 mW; DCH transfer
// ~800 mW base; a 5 s DCH inactivity tail followed by a 12 s FACH tail at
// 460 mW.
func ThreeG() Params {
	return Params{
		Name:           "3G",
		PromotionTime:  2.0,
		PromotionPower: 0.8,
		Base:           0.8,
		AlphaUp:        0.25,
		AlphaDown:      0.05,
		UplinkMbps:     1.1,
		DownlinkMbps:   3.8,
		TailPhases: []TailPhase{
			{Duration: 5.0, Power: 0.8},   // DCH inactivity
			{Duration: 12.0, Power: 0.46}, // FACH inactivity
		},
		IdlePower: 0.01,
	}
}

// WiFi returns an 802.11 PSM model with the published MobiSys 2012
// parameters: negligible promotion, 132.86 mW base transfer power,
// 283.17 mW/Mbps up, 137.01 mW/Mbps down, and a 238 ms tail at 119.31 mW.
func WiFi() Params {
	return Params{
		Name:           "WiFi",
		PromotionTime:  0.079,
		PromotionPower: 0.1248,
		Base:           0.13286,
		AlphaUp:        0.28317,
		AlphaDown:      0.13701,
		UplinkMbps:     14.3,
		DownlinkMbps:   24.9,
		TailPhases: []TailPhase{
			{Duration: 0.238, Power: 0.11931},
		},
		IdlePower: 0.003,
	}
}

// Dir is the transfer direction as seen by the radio.
type Dir uint8

// Transfer directions.
const (
	Up Dir = iota
	Down
)

// txTime returns the transmission time in seconds for a packet of n bytes.
func (p *Params) txTime(n int, d Dir) float64 {
	rate := p.DownlinkMbps
	if d == Up {
		rate = p.UplinkMbps
	}
	if rate <= 0 {
		return 0
	}
	return float64(n) * 8 / (rate * 1e6)
}

// txPower returns the instantaneous power during a transfer in direction d.
func (p *Params) txPower(d Dir) float64 {
	if d == Up {
		return p.Base + p.AlphaUp*p.UplinkMbps
	}
	return p.Base + p.AlphaDown*p.DownlinkMbps
}

// TransferEnergy returns the transfer-phase energy (J) for n bytes in
// direction d, excluding promotion and tail.
func (p *Params) TransferEnergy(n int, d Dir) float64 {
	return p.txTime(n, d) * p.txPower(d)
}

// PromotionEnergy returns the energy of one IDLE->CONNECTED promotion.
func (p *Params) PromotionEnergy() float64 {
	return p.PromotionTime * p.PromotionPower
}

// FullTailEnergy returns the energy of one complete uninterrupted tail.
func (p *Params) FullTailEnergy() float64 {
	return p.tailEnergy(0, p.TailTime())
}

// String names the model.
func (p *Params) String() string { return fmt.Sprintf("radio model %s", p.Name) }

// State is the radio's RRC-style macro state.
type State uint8

// Radio states.
const (
	Idle State = iota
	Promoting
	Active // transferring
	Tail
)

// String names the state.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Promoting:
		return "promoting"
	case Active:
		return "active"
	case Tail:
		return "tail"
	default:
		return "invalid"
	}
}

// LTEVariants returns the default model plus two carrier-style variants —
// the paper's caveat that "energy consumption values vary by device and
// carrier" made concrete. VariantShortTail uses a more aggressive network
// inactivity timer; VariantHotIdle reflects a chattier DRX configuration.
func LTEVariants() []Params {
	std := LTE()

	short := LTE()
	short.Name = "LTE-shortTail"
	short.TailPhases = []TailPhase{
		{Duration: 0.2, Power: 1.28804},
		{Duration: 7.8, Power: 1.06004},
	}

	hot := LTE()
	hot.Name = "LTE-hotIdle"
	hot.TailPhases = []TailPhase{
		{Duration: 0.3, Power: 1.32},
		{Duration: 12.7, Power: 1.12},
	}
	hot.PromotionTime = 0.4

	return []Params{std, short, hot}
}
