package radio

import (
	"math"
	"testing"
	"testing/quick"

	"netenergy/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLTEParameters(t *testing.T) {
	p := LTE()
	if !almost(p.TailTime(), 11.576, 1e-9) {
		t.Errorf("LTE tail time = %v, want 11.576", p.TailTime())
	}
	if !almost(p.PromotionEnergy(), 1.2107*0.2601, 1e-9) {
		t.Errorf("promotion energy = %v", p.PromotionEnergy())
	}
	// Full tail: 0.2 s at base + 11.376 s at DRX power.
	want := 0.2*1.28804 + 11.376*1.06004
	if !almost(p.FullTailEnergy(), want, 1e-9) {
		t.Errorf("full tail = %v, want %v", p.FullTailEnergy(), want)
	}
	// An isolated small burst on LTE costs ~12.6 J — the magnitude the
	// paper's Table 1 per-flow numbers reflect (Twitter: 11 J/flow).
	e := BurstEnergy(p, 2000, Up)
	if e < 11 || e > 14 {
		t.Errorf("isolated LTE burst = %v J, want 11-14 J", e)
	}
}

func TestTailEnergySegments(t *testing.T) {
	p := LTE()
	// First 0.1 s is in the continuous-reception phase.
	if got := p.tailEnergy(0, 0.1); !almost(got, 0.1*1.28804, 1e-12) {
		t.Errorf("tail[0,0.1] = %v", got)
	}
	// Straddling both phases.
	want := 0.1*1.28804 + 0.3*1.06004
	if got := p.tailEnergy(0.1, 0.5); !almost(got, want, 1e-12) {
		t.Errorf("tail[0.1,0.5] = %v, want %v", got, want)
	}
	// Beyond the tail end contributes nothing.
	if got := p.tailEnergy(11.576, 100); got != 0 {
		t.Errorf("tail beyond end = %v", got)
	}
	if got := p.tailEnergy(5, 5); got != 0 {
		t.Errorf("empty interval = %v", got)
	}
	if got := p.tailEnergy(5, 4); got != 0 {
		t.Errorf("inverted interval = %v", got)
	}
}

func TestTransferEnergyDirections(t *testing.T) {
	p := LTE()
	// Uplink is slower and more power-hungry per Mbps: same bytes must cost
	// more energy up than down.
	up := p.TransferEnergy(100000, Up)
	down := p.TransferEnergy(100000, Down)
	if up <= down {
		t.Errorf("uplink energy %v should exceed downlink %v", up, down)
	}
	if p.TransferEnergy(0, Up) != 0 {
		t.Error("zero bytes should cost zero transfer energy")
	}
}

func TestTxTimeZeroRate(t *testing.T) {
	p := Params{UplinkMbps: 0, DownlinkMbps: 0}
	if p.txTime(1000, Up) != 0 || p.txTime(1000, Down) != 0 {
		t.Error("zero-rate link should have zero tx time, not Inf")
	}
}

func TestAccountantIsolatedBurst(t *testing.T) {
	p := LTE()
	a := NewAccountant(p)
	c := a.OnPacket(100, 1000, Up)
	if c.Promotion != p.PromotionEnergy() {
		t.Errorf("first packet promotion = %v", c.Promotion)
	}
	if c.GapTail != 0 {
		t.Errorf("first packet gap tail = %v", c.GapTail)
	}
	fin := a.Finish()
	if !almost(fin, p.FullTailEnergy(), 1e-9) {
		t.Errorf("finish tail = %v", fin)
	}
	wantTotal := BurstEnergy(p, 1000, Up)
	if !almost(a.TotalEnergy(), wantTotal, 1e-9) {
		t.Errorf("total = %v, want %v", a.TotalEnergy(), wantTotal)
	}
	if a.State() != Idle {
		t.Errorf("state after finish = %v", a.State())
	}
}

func TestAccountantWithinTail(t *testing.T) {
	p := LTE()
	a := NewAccountant(p)
	a.OnPacket(0, 100, Up)
	// 2 s later: still in tail, no promotion, gap energy for ~2 s.
	c := a.OnPacket(2, 100, Up)
	if c.Promotion != 0 {
		t.Errorf("promotion within tail = %v", c.Promotion)
	}
	gapWant := p.tailEnergy(0, 2-p.txTime(100, Up))
	if !almost(c.GapTail, gapWant, 1e-9) {
		t.Errorf("gap tail = %v, want %v", c.GapTail, gapWant)
	}
}

func TestAccountantAfterFullTail(t *testing.T) {
	p := LTE()
	a := NewAccountant(p)
	a.OnPacket(0, 100, Up)
	// 60 s later: tail completed, radio idle, fresh promotion.
	c := a.OnPacket(60, 100, Up)
	if c.Promotion != p.PromotionEnergy() {
		t.Errorf("promotion after idle = %v", c.Promotion)
	}
	if !almost(c.GapTail, p.FullTailEnergy(), 1e-9) {
		t.Errorf("gap tail = %v, want full tail %v", c.GapTail, p.FullTailEnergy())
	}
}

func TestAccountantOverlappingPackets(t *testing.T) {
	p := LTE()
	a := NewAccountant(p)
	a.OnPacket(0, 1_000_000, Down) // ~0.63 s transmission
	// Next packet arrives "during" the first transmission.
	c := a.OnPacket(0.0001, 1000, Down)
	if c.GapTail != 0 || c.Promotion != 0 {
		t.Errorf("overlapping packet charged gap=%v promo=%v", c.GapTail, c.Promotion)
	}
}

func TestAccountantFinishIdempotent(t *testing.T) {
	a := NewAccountant(LTE())
	if a.Finish() != 0 {
		t.Error("finish with no packets should be 0")
	}
	a.OnPacket(0, 10, Up)
	a.Finish()
	if a.Finish() != 0 {
		t.Error("second finish should be 0")
	}
}

func TestEnergyConservationProperty(t *testing.T) {
	// Sum of all returned charges must equal the accountant's total, and
	// adding packets must never decrease total energy.
	src := rng.New(77)
	models := []Params{LTE(), ThreeG(), WiFi()}
	f := func(n uint8) bool {
		p := models[src.Intn(len(models))]
		a := NewAccountant(p)
		count := int(n)%100 + 1
		tm := 0.0
		var sum float64
		prevTotal := 0.0
		for i := 0; i < count; i++ {
			tm += src.Exp(8)
			c := a.OnPacket(tm, 1+src.Intn(1400), Dir(src.Intn(2)))
			sum += c.Total()
			if a.TotalEnergy() < prevTotal-1e-12 {
				return false
			}
			prevTotal = a.TotalEnergy()
		}
		sum += a.Finish()
		return almost(sum, a.TotalEnergy(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBatchingSavesEnergy(t *testing.T) {
	// The paper's core efficiency claim: sending the same bytes in fewer,
	// batched bursts costs less energy than spreading them out beyond the
	// tail. 10 isolated 1 KB bursts vs one 10 KB burst.
	p := LTE()
	spread := NewAccountant(p)
	for i := 0; i < 10; i++ {
		spread.OnPacket(float64(i)*60, 1000, Up)
	}
	spread.Finish()

	batched := NewAccountant(p)
	for i := 0; i < 10; i++ {
		batched.OnPacket(float64(i)*0.01, 1000, Up)
	}
	batched.Finish()

	if spread.TotalEnergy() < 8*batched.TotalEnergy() {
		t.Errorf("spread=%v J batched=%v J; expected ~10x difference",
			spread.TotalEnergy(), batched.TotalEnergy())
	}
}

func TestModelOrdering(t *testing.T) {
	// For an identical intermittent workload, LTE should cost more than
	// WiFi (longer, hotter tail), with 3G in the same order of magnitude
	// as LTE.
	run := func(p Params) float64 {
		a := NewAccountant(p)
		for i := 0; i < 20; i++ {
			a.OnPacket(float64(i)*30, 2000, Up)
		}
		a.Finish()
		return a.TotalEnergy()
	}
	lte, wifi := run(LTE()), run(WiFi())
	if lte < 20*wifi {
		t.Errorf("LTE (%v J) should dwarf WiFi (%v J) on intermittent traffic", lte, wifi)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Idle: "idle", Promoting: "promoting", Active: "active", Tail: "tail", State(99): "invalid"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	p := LTE()
	if p.String() != "radio model LTE" {
		t.Errorf("Params.String = %q", p.String())
	}
}

func BenchmarkAccountantOnPacket(b *testing.B) {
	a := NewAccountant(LTE())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.OnPacket(float64(i)*0.5, 1200, Dir(i&1))
	}
}

func TestTimelineMatchesAccountant(t *testing.T) {
	// The timeline's integral must equal the accountant's total for the
	// same packet stream (both implement the same state machine).
	src := rng.New(17)
	for trial := 0; trial < 20; trial++ {
		p := []Params{LTE(), ThreeG(), WiFi()}[trial%3]
		acct := NewAccountant(p)
		tb := NewTimelineBuilder(p)
		tm := 0.0
		for i := 0; i < 50; i++ {
			tm += src.Exp(10)
			n := 1 + src.Intn(5000)
			d := Dir(src.Intn(2))
			acct.OnPacket(tm, n, d)
			tb.OnPacket(tm, n, d)
		}
		acct.Finish()
		spans := tb.Finish()
		got := TotalEnergy(spans)
		want := acct.TotalEnergy()
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d (%s): timeline %v J vs accountant %v J", trial, p.Name, got, want)
		}
	}
}

func TestTimelineSpansContiguousWhileBusy(t *testing.T) {
	p := LTE()
	tb := NewTimelineBuilder(p)
	tb.OnPacket(100, 1000, Up)
	tb.OnPacket(105, 1000, Down) // within the tail
	spans := tb.Finish()
	if len(spans) < 4 {
		t.Fatalf("spans = %+v", spans)
	}
	for i := 1; i < len(spans); i++ {
		if math.Abs(spans[i].Start-spans[i-1].End) > 1e-9 {
			t.Errorf("gap between spans %d and %d: %v -> %v", i-1, i, spans[i-1].End, spans[i].Start)
		}
	}
	// First span is the promotion ending exactly at the first packet.
	if spans[0].State != Promoting || math.Abs(spans[0].End-100) > 1e-9 {
		t.Errorf("first span = %+v", spans[0])
	}
	// Last span is the end of the tail.
	last := spans[len(spans)-1]
	if last.State != Tail {
		t.Errorf("last span = %+v", last)
	}
}

func TestTimelineIdleBetweenBursts(t *testing.T) {
	p := LTE()
	tb := NewTimelineBuilder(p)
	tb.OnPacket(0, 100, Up)
	tb.OnPacket(100, 100, Up) // far beyond the tail: idle gap + re-promotion
	spans := tb.Finish()
	sawIdle := false
	for _, s := range spans {
		if s.State == Idle {
			sawIdle = true
			if s.Duration() < 80 {
				t.Errorf("idle span too short: %+v", s)
			}
		}
	}
	if !sawIdle {
		t.Error("no idle span between distant bursts")
	}
	if e := TotalEnergy(spans); e <= 2*p.FullTailEnergy() {
		t.Errorf("two isolated bursts energy = %v", e)
	}
}

func TestTimelineEmpty(t *testing.T) {
	tb := NewTimelineBuilder(LTE())
	if spans := tb.Finish(); spans != nil {
		t.Errorf("empty timeline = %+v", spans)
	}
	if TotalEnergy(nil) != 0 {
		t.Error("empty energy != 0")
	}
}

func TestStateSpanHelpers(t *testing.T) {
	s := StateSpan{Start: 1, End: 3, State: Active, Power: 2}
	if s.Duration() != 2 || s.Energy() != 4 {
		t.Errorf("span helpers: dur=%v e=%v", s.Duration(), s.Energy())
	}
}

func TestLTEVariantsOrdering(t *testing.T) {
	variants := LTEVariants()
	if len(variants) != 3 {
		t.Fatalf("variants = %d", len(variants))
	}
	burst := func(p Params) float64 { return BurstEnergy(p, 2000, Up) }
	std, short, hot := burst(variants[0]), burst(variants[1]), burst(variants[2])
	if !(short < std && std < hot) {
		t.Errorf("burst costs: short=%v std=%v hot=%v, want short<std<hot", short, std, hot)
	}
	names := map[string]bool{}
	for i := range variants {
		names[variants[i].Name] = true
	}
	if !names["LTE"] || !names["LTE-shortTail"] || !names["LTE-hotIdle"] {
		t.Errorf("variant names: %v", names)
	}
}
