package radio

// StateSpan is one interval of the radio's state timeline with its power
// draw — the "power trace" view a Monsoon monitor would record.
type StateSpan struct {
	Start, End float64 // seconds
	State      State
	Power      float64 // watts during the span
}

// Duration returns the span length in seconds.
func (s StateSpan) Duration() float64 { return s.End - s.Start }

// Energy returns the span's energy in joules.
func (s StateSpan) Energy() float64 { return s.Duration() * s.Power }

// TimelineBuilder reconstructs the radio's full state/power timeline from a
// packet stream — promotion, transfer, tail phases and idle — for
// visualisation and for validating the Accountant's integral accounting.
// Feed packets in time order; call Finish to close the final tail.
type TimelineBuilder struct {
	p       Params
	spans   []StateSpan
	started bool
	lastEnd float64
}

// NewTimelineBuilder returns a builder for the given radio parameters.
func NewTimelineBuilder(p Params) *TimelineBuilder {
	return &TimelineBuilder{p: p}
}

// push appends a span, merging zero-length ones away.
func (b *TimelineBuilder) push(start, end float64, st State, power float64) {
	if end <= start {
		return
	}
	b.spans = append(b.spans, StateSpan{Start: start, End: end, State: st, Power: power})
}

// tailSpans appends the tail phases covering [0, upto) seconds after a
// transmission ending at base.
func (b *TimelineBuilder) tailSpans(base, upto float64) {
	off := 0.0
	for _, ph := range b.p.TailPhases {
		if off >= upto {
			break
		}
		end := off + ph.Duration
		if end > upto {
			end = upto
		}
		b.push(base+off, base+end, Tail, ph.Power)
		off += ph.Duration
	}
}

// OnPacket records a packet of n bytes in direction d at time t seconds.
func (b *TimelineBuilder) OnPacket(t float64, n int, d Dir) {
	tx := b.p.txTime(n, d)
	if !b.started {
		b.started = true
		b.push(t-b.p.PromotionTime, t, Promoting, b.p.PromotionPower)
		b.push(t, t+tx, Active, b.p.txPower(d))
		b.lastEnd = t + tx
		return
	}
	if t < b.lastEnd {
		t = b.lastEnd
	}
	gap := t - b.lastEnd
	tail := b.p.TailTime()
	if gap >= tail {
		b.tailSpans(b.lastEnd, tail)
		b.push(b.lastEnd+tail, t-b.p.PromotionTime, Idle, b.p.IdlePower)
		b.push(t-b.p.PromotionTime, t, Promoting, b.p.PromotionPower)
	} else {
		b.tailSpans(b.lastEnd, gap)
	}
	b.push(t, t+tx, Active, b.p.txPower(d))
	b.lastEnd = t + tx
}

// Finish closes the final tail and returns the completed timeline.
func (b *TimelineBuilder) Finish() []StateSpan {
	if b.started {
		b.tailSpans(b.lastEnd, b.p.TailTime())
		b.started = false
	}
	return b.spans
}

// TotalEnergy integrates the timeline, excluding idle baseline spans —
// comparable to Accountant.TotalEnergy over the same packets.
func TotalEnergy(spans []StateSpan) float64 {
	var e float64
	for _, s := range spans {
		if s.State == Idle {
			continue
		}
		e += s.Energy()
	}
	return e
}
