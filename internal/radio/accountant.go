package radio

// Charges is the energy charged when one packet is observed.
//
// Promotion and Transfer belong to the packet just observed. GapTail is the
// connected/tail energy spent between the end of the previous transmission
// and this packet (or the end of the tail, if the radio went idle in
// between); per the paper's attribution rule it belongs to the *previous*
// packet — "we assign any tail energy to the last packet sent during the
// tail period to avoid double-counting energy when there are multiple
// concurrent flows" (§3.1).
type Charges struct {
	Promotion float64 // J, charged to this packet's app
	Transfer  float64 // J, charged to this packet's app
	GapTail   float64 // J, charged to the previous packet's app
}

// Total returns the sum of all charge components.
func (c Charges) Total() float64 { return c.Promotion + c.Transfer + c.GapTail }

// Accountant drives one radio interface's state machine over a timestamped
// packet stream and emits per-packet energy charges. One Accountant models
// one device's one interface; packets from all apps on the device flow
// through it in timestamp order, which is what makes the tail attribution
// rule meaningful. Accountant is not safe for concurrent use.
type Accountant struct {
	p Params

	started bool
	state   State
	lastEnd float64 // when the previous transmission finished
	total   float64 // all energy charged so far (for conservation checks)
}

// NewAccountant returns an Accountant for the given radio parameters.
func NewAccountant(p Params) *Accountant {
	return &Accountant{p: p, state: Idle}
}

// Params returns the model parameters in use.
func (a *Accountant) Params() *Params { return &a.p }

// State returns the radio state as of the last processed event.
func (a *Accountant) State() State { return a.state }

// TotalEnergy returns the cumulative energy (J) charged so far across all
// packets, including the final tail only after Finish has been called.
func (a *Accountant) TotalEnergy() float64 { return a.total }

// OnPacket processes a packet of n bytes in direction d at time t (seconds;
// any epoch, but non-decreasing across calls — out-of-order packets are
// treated as arriving at the previous transmission end). It returns the
// energy charges this packet triggers.
func (a *Accountant) OnPacket(t float64, n int, d Dir) Charges {
	var c Charges
	if !a.started {
		a.started = true
		c.Promotion = a.p.PromotionEnergy()
		a.state = Active
		a.lastEnd = t + a.p.txTime(n, d)
		c.Transfer = a.p.TransferEnergy(n, d)
		a.total += c.Total()
		return c
	}
	if t < a.lastEnd {
		// Overlapping or out-of-order packet: the radio is still busy;
		// no gap energy accrues, the transfer just extends the busy period.
		t = a.lastEnd
	}
	gap := t - a.lastEnd
	tail := a.p.TailTime()
	if gap >= tail {
		// The radio completed a full tail and went idle; this packet pays
		// a fresh promotion. The completed tail belongs to the previous
		// packet.
		c.GapTail = a.p.FullTailEnergy()
		c.Promotion = a.p.PromotionEnergy()
	} else {
		// Still within the tail: charge the elapsed portion to the
		// previous packet; no promotion needed.
		c.GapTail = a.p.tailEnergy(0, gap)
	}
	c.Transfer = a.p.TransferEnergy(n, d)
	a.state = Active
	a.lastEnd = t + a.p.txTime(n, d)
	a.total += c.Total()
	return c
}

// AccountantState is the serializable position of the radio state machine,
// captured by SaveState and reinstalled by RestoreState. It exists so a
// streaming analyzer can checkpoint mid-stream and resume in a new process
// with bit-identical accounting: the four fields are the Accountant's
// complete mutable state.
type AccountantState struct {
	Started bool
	State   State
	LastEnd float64
	Total   float64
}

// SaveState captures the accountant's mutable state.
func (a *Accountant) SaveState() AccountantState {
	return AccountantState{Started: a.started, State: a.state, LastEnd: a.lastEnd, Total: a.total}
}

// RestoreState reinstalls a state captured by SaveState. The accountant must
// have been built with the same Params as the one the state came from;
// subsequent OnPacket calls then charge exactly as the original would have.
func (a *Accountant) RestoreState(s AccountantState) {
	a.started, a.state, a.lastEnd, a.total = s.Started, s.State, s.LastEnd, s.Total
}

// Finish closes the stream: the radio rides its final tail to completion
// and demotes to idle. The returned energy (J) belongs to the last packet
// observed. Calling Finish on a stream with no packets returns 0.
func (a *Accountant) Finish() float64 {
	if !a.started || a.state == Idle {
		return 0
	}
	e := a.p.FullTailEnergy()
	a.state = Idle
	a.total += e
	return e
}

// BurstEnergy is a convenience that returns the total energy of an isolated
// burst of n bytes in direction d — promotion + transfer + full tail. This
// is the marginal cost of one more wakeup, the quantity the paper's
// batching recommendations are about.
func BurstEnergy(p Params, n int, d Dir) float64 {
	return p.PromotionEnergy() + p.TransferEnergy(n, d) + p.FullTailEnergy()
}
