package radio_test

import (
	"fmt"

	"netenergy/internal/radio"
)

// The marginal cost of one isolated background update: promotion + transfer
// + the full tail. On LTE the tail dominates regardless of payload size —
// the paper's central observation.
func ExampleBurstEnergy() {
	lte := radio.LTE()
	for _, bytes := range []int{100, 10_000, 1_000_000} {
		fmt.Printf("%7d B -> %.2f J\n", bytes, radio.BurstEnergy(lte, bytes, radio.Down))
	}
	// Output:
	//     100 B -> 12.63 J
	//   10000 B -> 12.64 J
	// 1000000 B -> 13.86 J
}

// An Accountant charges each packet incrementally; tail energy between
// packets belongs to the earlier packet (the paper's §3.1 rule).
func ExampleAccountant() {
	a := radio.NewAccountant(radio.LTE())
	first := a.OnPacket(0, 1000, radio.Up)
	second := a.OnPacket(5, 1000, radio.Up) // 5 s later, within the tail
	final := a.Finish()
	fmt.Printf("first packet pays promotion: %v\n", first.Promotion > 0)
	fmt.Printf("second packet pays no promotion: %v\n", second.Promotion == 0)
	fmt.Printf("gap tail charged to the previous packet: %.1f J\n", second.GapTail)
	fmt.Printf("final tail: %.1f J\n", final)
	// Output:
	// first packet pays promotion: true
	// second packet pays no promotion: true
	// gap tail charged to the previous packet: 5.3 J
	// final tail: 12.3 J
}
