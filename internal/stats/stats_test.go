package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"netenergy/internal/rng"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	cases := []struct {
		x, want float64
	}{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Quantile(0.5) != 0 || c.Min() != 0 || c.Max() != 0 {
		t.Error("empty CDF should return zeros everywhere")
	}
	xs, ps := c.Points(10)
	if xs != nil || ps != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestCDFDoesNotMutateInput(t *testing.T) {
	in := []float64{5, 1, 3}
	NewCDF(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Errorf("q1 = %v", got)
	}
	if got := c.Quantile(0.5); got != 30 {
		t.Errorf("median = %v", got)
	}
	if got := c.Quantile(0.25); got != 20 {
		t.Errorf("q25 = %v", got)
	}
	// Interpolated quantile.
	if got := c.Quantile(0.375); math.Abs(got-25) > 1e-9 {
		t.Errorf("q37.5 = %v, want 25", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	src := rng.New(1)
	f := func(seedDelta uint8) bool {
		n := 1 + int(seedDelta)%64
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Float64() * 1000
		}
		c := NewCDF(xs)
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.At(c.Quantile(q))
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		// At() itself monotone in x.
		prevAt := -1.0
		for x := c.Min() - 1; x <= c.Max()+1; x += (c.Max() - c.Min() + 2) / 37 {
			v := c.At(x)
			if v < prevAt-1e-12 {
				return false
			}
			prevAt = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	xs, ps := c.Points(5)
	if len(xs) != 5 || len(ps) != 5 {
		t.Fatalf("want 5 points, got %d/%d", len(xs), len(ps))
	}
	if !sort.Float64sAreSorted(xs) || !sort.Float64sAreSorted(ps) {
		t.Errorf("points not sorted: %v %v", xs, ps)
	}
	if ps[len(ps)-1] != 1 {
		t.Errorf("last p = %v, want 1", ps[len(ps)-1])
	}
}

func TestMeanSumVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Sum(xs) != 40 {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if Variance(xs) != 4 {
		t.Errorf("Variance = %v", Variance(xs))
	}
	if Stddev(xs) != 2 {
		t.Errorf("Stddev = %v", Stddev(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("even median wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.BinWidth() != 2 {
		t.Errorf("BinWidth = %v", h.BinWidth())
	}
	if h.BinCenter(0) != 1 {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if h.MaxBin() != 0 {
		t.Errorf("MaxBin = %d", h.MaxBin())
	}
}

func TestHistogramConservationProperty(t *testing.T) {
	src := rng.New(2)
	f := func(n uint16) bool {
		h := NewHistogram(-5, 5, 10)
		k := int(n % 500)
		for i := 0; i < k; i++ {
			h.Add(src.Norm(0, 3))
		}
		var sum uint64 = h.Under + h.Over
		for _, c := range h.Counts {
			sum += c
		}
		return sum == h.Total() && h.Total() == uint64(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTimeBins(t *testing.T) {
	tb := NewTimeBins(10, 6) // 60 seconds in 10 s bins
	tb.Add(0, 5)
	tb.Add(9.99, 5)
	tb.Add(10, 1)
	tb.Add(59.9, 2)
	tb.Add(60, 100) // dropped
	tb.Add(-1, 100) // dropped
	ts, vs := tb.Series()
	if len(ts) != 6 {
		t.Fatalf("series length %d", len(ts))
	}
	if vs[0] != 10 || vs[1] != 1 || vs[5] != 2 {
		t.Errorf("vals = %v", vs)
	}
	if ts[3] != 30 {
		t.Errorf("ts[3] = %v", ts[3])
	}
	if Sum(vs) != 13 {
		t.Errorf("out-of-range samples leaked: %v", vs)
	}
}

func TestTopK(t *testing.T) {
	m := map[string]float64{"a": 1, "b": 5, "c": 3, "d": 5}
	got := TopK(m, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	// Ties broken by key: b before d.
	if got[0].Key != "b" || got[1].Key != "d" || got[2].Key != "c" {
		t.Errorf("order = %v", got)
	}
	all := TopK(m, 0)
	if len(all) != 4 {
		t.Errorf("k=0 should return all, got %d", len(all))
	}
}

func TestAutocorrelationPeriodic(t *testing.T) {
	// Period-8 square wave: autocorrelation should peak at lag 8 vs lag 4.
	xs := make([]float64, 256)
	for i := range xs {
		if i%8 < 4 {
			xs[i] = 1
		}
	}
	ac := Autocorrelation(xs, []int{0, 4, 8})
	if ac[0] != 1 {
		t.Errorf("lag0 = %v", ac[0])
	}
	if ac[2] <= ac[1] {
		t.Errorf("lag8 (%v) should exceed lag4 (%v)", ac[2], ac[1])
	}
	if ac[2] < 0.8 {
		t.Errorf("lag8 = %v, want near 1", ac[2])
	}
}

func TestAutocorrelationDegenerate(t *testing.T) {
	flat := []float64{2, 2, 2, 2}
	ac := Autocorrelation(flat, []int{0, 1, 2})
	if ac[0] != 1 || ac[1] != 0 || ac[2] != 0 {
		t.Errorf("flat series ac = %v", ac)
	}
	if got := Autocorrelation(nil, []int{0, 1}); got[0] != 0 {
		t.Errorf("empty series lag0 = %v", got[0])
	}
	// Out-of-range lags are zero.
	short := Autocorrelation([]float64{1, 2}, []int{5, -1})
	if short[0] != 0 || short[1] != 0 {
		t.Errorf("out of range lags = %v", short)
	}
}
