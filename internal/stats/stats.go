// Package stats provides the small statistical toolkit the study analyses
// rely on: empirical CDFs, quantiles, fixed-width histograms, time-series
// binning, top-k selection and simple autocorrelation. All functions are
// deterministic and allocation-conscious; none of them mutate their inputs
// unless documented.
package stats

import (
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution over float64 samples.
// Construct with NewCDF; the zero value is an empty distribution.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples. The input slice is copied.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), i.e. the fraction of samples <= x.
// An empty CDF returns 0.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (q in [0,1]) using nearest-rank with
// linear interpolation. An empty CDF returns 0.
func (c *CDF) Quantile(q float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := pos - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Min returns the smallest sample (0 if empty).
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[0]
}

// Max returns the largest sample (0 if empty).
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Points returns up to n evenly spaced (x, P(X<=x)) points suitable for
// plotting the CDF curve. Fewer points are returned if there are fewer
// samples. The returned slices are freshly allocated.
func (c *CDF) Points(n int) (xs, ps []float64) {
	m := len(c.sorted)
	if m == 0 || n <= 0 {
		return nil, nil
	}
	if n > m {
		n = m
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		idx := i * (m - 1) / maxInt(n-1, 1)
		xs[i] = c.sorted[idx]
		ps[i] = float64(idx+1) / float64(m)
	}
	return xs, ps
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Mean returns the arithmetic mean of xs, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs, 0 for fewer than 2 samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs without mutating it.
func Median(xs []float64) float64 { return NewCDF(xs).Quantile(0.5) }

// Histogram is a fixed-width histogram over [Min, Max) with uniform bins.
type Histogram struct {
	Min, Max float64
	Counts   []uint64
	// Under and Over count samples outside [Min, Max).
	Under, Over uint64
	total       uint64
}

// NewHistogram creates a histogram with nbins uniform bins covering
// [min, max). It panics if nbins <= 0 or max <= min.
func NewHistogram(min, max float64, nbins int) *Histogram {
	if nbins <= 0 {
		panic("stats: NewHistogram with non-positive bin count")
	}
	if max <= min {
		panic("stats: NewHistogram with max <= min")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]uint64, nbins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Min:
		h.Under++
	case x >= h.Max:
		h.Over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // guard float rounding at the upper edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() uint64 { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Max - h.Min) / float64(len(h.Counts)) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.BinWidth()
}

// MaxBin returns the index of the fullest bin (-1 if all bins are empty).
func (h *Histogram) MaxBin() int {
	best, idx := uint64(0), -1
	for i, c := range h.Counts {
		if c > best {
			best, idx = c, i
		}
	}
	return idx
}

// TimeBins accumulates a value series into fixed-duration bins indexed from
// a shared origin. It is used for "bytes per 10-second bin since event X"
// style figures.
type TimeBins struct {
	Width float64 // bin width in seconds
	Vals  []float64
}

// NewTimeBins creates n bins of the given width (seconds).
func NewTimeBins(width float64, n int) *TimeBins {
	if width <= 0 || n <= 0 {
		panic("stats: NewTimeBins with non-positive width or count")
	}
	return &TimeBins{Width: width, Vals: make([]float64, n)}
}

// Add accumulates v at offset seconds from the origin. Samples beyond the
// last bin or before 0 are dropped (they belong to the figure's cropped
// region).
func (tb *TimeBins) Add(offset, v float64) {
	if offset < 0 {
		return
	}
	i := int(offset / tb.Width)
	if i >= len(tb.Vals) {
		return
	}
	tb.Vals[i] += v
}

// Series returns (binStartSeconds, value) pairs for the whole range.
func (tb *TimeBins) Series() (ts, vs []float64) {
	ts = make([]float64, len(tb.Vals))
	vs = make([]float64, len(tb.Vals))
	for i := range tb.Vals {
		ts[i] = float64(i) * tb.Width
		vs[i] = tb.Vals[i]
	}
	return ts, vs
}

// KV is a generic labelled value used by Top-K selections.
type KV struct {
	Key string
	Val float64
}

// TopK returns the k largest entries of m by value, descending; ties broken
// by key for determinism. k <= 0 returns all entries sorted.
func TopK(m map[string]float64, k int) []KV {
	out := make([]KV, 0, len(m))
	for key, v := range m {
		out = append(out, KV{key, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Val != out[j].Val {
			return out[i].Val > out[j].Val
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Autocorrelation returns the normalised autocorrelation of xs at the given
// lags. The output is 1 at lag 0 by construction; series with zero variance
// return 0 at all non-zero lags.
func Autocorrelation(xs []float64, lags []int) []float64 {
	n := len(xs)
	out := make([]float64, len(lags))
	if n == 0 {
		return out
	}
	mean := Mean(xs)
	var denom float64
	for _, x := range xs {
		d := x - mean
		denom += d * d
	}
	for li, lag := range lags {
		if lag < 0 || lag >= n {
			continue
		}
		if lag == 0 {
			out[li] = 1
			continue
		}
		if denom == 0 {
			continue
		}
		var num float64
		for i := 0; i+lag < n; i++ {
			num += (xs[i] - mean) * (xs[i+lag] - mean)
		}
		out[li] = num / denom
	}
	return out
}
