package trace

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// writeColumnar serialises recs into a METR-3 buffer.
func writeColumnar(t *testing.T, device string, start Timestamp, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewColumnWriter(&buf, device, start)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("writer count %d, wrote %d", w.Count(), len(recs))
	}
	return buf.Bytes()
}

func requireRecordsEqual(t *testing.T, want, got []Record) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("record count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		w, g := &want[i], &got[i]
		if w.Type != g.Type || w.TS != g.TS || w.App != g.App || w.AppName != g.AppName ||
			w.Dir != g.Dir || w.Net != g.Net || w.State != g.State ||
			w.UIKind != g.UIKind || w.ScreenOn != g.ScreenOn || !bytes.Equal(w.Payload, g.Payload) {
			t.Fatalf("record %d mismatch:\nwant %+v\ngot  %+v", i, *w, *g)
		}
	}
}

func TestColumnarRoundTripStreaming(t *testing.T) {
	recs := genRecords(12000)
	data := writeColumnar(t, "dev-3", recs[0].TS, recs)

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Device() != "dev-3" || r.Format() != FormatColumnar {
		t.Fatalf("header: device=%q format=%v", r.Device(), r.Format())
	}
	var got []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		cp := *rec
		cp.Payload = append([]byte(nil), rec.Payload...)
		if cp.Payload != nil && len(cp.Payload) == 0 {
			cp.Payload = nil
		}
		got = append(got, cp)
	}
	// Canonicalise empty payloads on the expected side too: the batch
	// materialises a packet's empty payload as an empty (non-nil) slice.
	want := make([]Record, len(recs))
	copy(want, recs)
	requireRecordsEqual(t, want, got)
}

func TestColumnarRoundTripParallel(t *testing.T) {
	recs := genRecords(30000)
	data := writeColumnar(t, "dev-par", recs[0].TS, recs)
	dir := t.TempDir()
	path := filepath.Join(dir, "dev.metr")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if f, err := DetectFileFormat(path); err != nil || f != FormatColumnar {
		t.Fatalf("DetectFileFormat: %v %v", f, err)
	}
	dt, err := ReadFileParallel(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]Record, len(dt.Records))
	copy(got, dt.Records)
	for i := range got {
		if got[i].Type == RecPacket && got[i].Payload != nil && len(got[i].Payload) == 0 {
			got[i].Payload = nil
		}
	}
	requireRecordsEqual(t, recs, got)

	// The parallel result must match the sequential read bit for bit.
	seq, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	requireRecordsEqual(t, seq.Records, dt.Records)
	if dt.Device != "dev-par" || dt.Start != recs[0].TS {
		t.Fatalf("header: %q %d", dt.Device, dt.Start)
	}
	// App table rebuilt from RecAppName records.
	if dt.Apps.Len() == 0 {
		t.Fatal("app table empty after parallel read")
	}
}

func TestColumnarBatchReader(t *testing.T) {
	recs := genRecords(9000)
	data := writeColumnar(t, "dev-b", recs[0].TS, recs)
	br, err := NewBatchReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if br.Format() != FormatColumnar || br.Device() != "dev-b" {
		t.Fatalf("header: %v %q", br.Format(), br.Device())
	}
	var got []Record
	var rec Record
	for {
		b, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() == 0 {
			t.Fatal("empty batch")
		}
		for i := 0; i < b.Len(); i++ {
			b.Record(i, &rec)
			cp := rec
			cp.Payload = append([]byte(nil), rec.Payload...)
			if cp.Payload != nil && len(cp.Payload) == 0 {
				cp.Payload = nil
			}
			got = append(got, cp)
		}
	}
	requireRecordsEqual(t, recs, got)
}

func TestBatchReaderRowFormats(t *testing.T) {
	recs := genRecords(6000)
	for _, f := range []Format{FormatFlat, FormatDeflate, FormatBlocked} {
		dt := &DeviceTrace{Device: "dev-row", Start: recs[0].TS, Records: recs}
		var buf bytes.Buffer
		if err := dt.SerializeFormat(&buf, f); err != nil {
			t.Fatal(err)
		}
		br, err := NewBatchReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var got []Record
		var rec Record
		for {
			b, err := br.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < b.Len(); i++ {
				b.Record(i, &rec)
				cp := rec
				cp.Payload = append([]byte(nil), rec.Payload...)
				if cp.Payload != nil && len(cp.Payload) == 0 {
					cp.Payload = nil
				}
				got = append(got, cp)
			}
		}
		requireRecordsEqual(t, recs, got)
	}
}

func TestBatchSliceAndAppend(t *testing.T) {
	recs := genRecords(100)
	var b RecordBatch
	for i := range recs {
		b.Append(&recs[i])
	}
	if b.Len() != len(recs) {
		t.Fatalf("batch len %d", b.Len())
	}
	view := b.Slice(10, 60)
	if view.Len() != 50 {
		t.Fatalf("view len %d", view.Len())
	}
	var rec Record
	for i := 0; i < view.Len(); i++ {
		view.Record(i, &rec)
		w := recs[10+i]
		if rec.Type != w.Type || rec.TS != w.TS || rec.App != w.App {
			t.Fatalf("view record %d: %+v vs %+v", i, rec, w)
		}
		if w.Type == RecPacket && !bytes.Equal(rec.Payload, w.Payload) {
			t.Fatalf("view payload %d mismatch", i)
		}
	}
}

// TestColumnarWideTimestamps exercises the 58+ bit unpack path and the
// w=64 pack path with extreme (forward) timestamp jumps. Backward jumps
// are no longer representable: the writer rejects out-of-order records
// so the seek index's first/last stay honest min/max.
func TestColumnarWideTimestamps(t *testing.T) {
	recs := []Record{
		{Type: RecScreen, TS: 0, ScreenOn: true},
		{Type: RecScreen, TS: 10, ScreenOn: false},
		{Type: RecScreen, TS: math.MaxInt64 / 2, ScreenOn: true},
		{Type: RecScreen, TS: math.MaxInt64/2 + 7, ScreenOn: false},
	}
	data := writeColumnar(t, "wide", 0, recs)
	dt, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	requireRecordsEqual(t, recs, dt.Records)
}

// TestColumnarRejectsCorrupt flips bytes across a valid file and
// requires every corruption to surface as a trace error, never a panic
// or silent success with different records.
func TestColumnarRejectsCorrupt(t *testing.T) {
	recs := genRecords(3000)
	data := writeColumnar(t, "dev-c", recs[0].TS, recs)
	for off := len(magicColumnar); off < len(data); off += 97 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xff
		r, err := NewReader(bytes.NewReader(mut))
		if err != nil {
			continue // header corruption detected at open
		}
		n := 0
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				break // detected — good
			}
			n++
			if n > len(recs) {
				t.Fatalf("offset %d: decoded more records than written", off)
			}
		}
	}
}

// TestColumnDecodeAllocFree pins the steady-state allocation behaviour of
// the columnar block decode: once the reused batch and scratch have grown
// to the block's shape, decodeColumns must not allocate at all — this is
// what lets the streaming decoder and the ingest hot path recycle one
// RecordBatch per connection indefinitely.
func TestColumnDecodeAllocFree(t *testing.T) {
	recs := genRecords(2000)
	var src RecordBatch
	for i := range recs {
		src.Append(&recs[i])
	}
	first := recs[0].TS
	raw, _ := appendColumns(nil, &src, first, nil)
	h := blockHeader{
		ulen: len(raw), count: src.Len(),
		first: first, lastTS: recs[len(recs)-1].TS,
	}

	var dst RecordBatch
	var u64 []uint64
	var decErr error
	decode := func() {
		u64, decErr = decodeColumns(raw, h, &dst, u64)
	}
	decode() // warm: grow columns and scratch to the block's shape
	if decErr != nil {
		t.Fatal(decErr)
	}
	if allocs := testing.AllocsPerRun(100, decode); allocs > 0 {
		t.Fatalf("steady-state column decode allocates %.2f times per block, want 0", allocs)
	}
	if decErr != nil {
		t.Fatal(decErr)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("decoded %d records, want %d", dst.Len(), src.Len())
	}
}
