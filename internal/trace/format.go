package trace

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The METR binary format, version 1:
//
//	file   := header record*
//	header := "METR1\n" deviceLen:uvarint device:bytes start:varint
//	record := type:byte len:uvarint body:bytes crc:uint32le
//
// Record bodies are varint-packed. Timestamps are delta-encoded against the
// previous record's timestamp (signed varint), which keeps long traces small
// — the collector in the paper stored months of packets per device.
// The CRC32 (IEEE) covers the type byte and body, so a torn or corrupted
// record is detected at read time rather than silently mis-parsed.
//
// Version 2 ("METR2") is the blocked container defined in block.go: the
// same record bodies grouped into independently compressed, CRC-protected
// blocks with a seekable footer index. NewReader accepts all three
// containers transparently.

// Format errors.
var (
	ErrBadMagic  = errors.New("trace: bad magic (not a METR file)")
	ErrCorrupt   = errors.New("trace: corrupt record (crc mismatch)")
	ErrTruncated = errors.New("trace: truncated record")

	// ErrOutOfOrder is returned by the blocked writers (METR-2/METR-3)
	// when a record's timestamp precedes the previous record's. The block
	// headers carry positional firstTS/lastTS, and range-pushdown scans
	// prune blocks by treating those as min/max — an out-of-order record
	// would silently vanish from every windowed query, so the writers
	// reject it instead of recording it. The flat v1 container has no seek
	// index and still accepts any order.
	ErrOutOfOrder = errors.New("trace: record timestamp out of order")
)

var (
	magic     = []byte("METR1\n")
	magicFlat = []byte("METZ1\n") // DEFLATE-compressed container
)

const (
	maxRecordLen = 1 << 20 // sanity cap: no record is near 1 MiB

	// maxDeviceName caps the header device field. The cap is enforced
	// symmetrically: NewWriter and NewBlockWriter reject longer names, so
	// no writer can produce a file a reader refuses to open.
	maxDeviceName = 4096

	// maxContainerDepth caps compressed-container nesting. Exactly one
	// layer is legitimate (v1-deflate wraps a v1-flat stream); a file whose
	// decompressed stream opens another container is crafted or corrupt,
	// and following it would nest flate readers without bound.
	maxContainerDepth = 1
)

// Format identifies an on-disk trace container.
type Format uint8

// Container formats, oldest first. All are sniffed by NewReader; writers
// pick one explicitly.
const (
	FormatFlat     Format = iota // "METR1": uncompressed record stream
	FormatDeflate                // "METZ1": one DEFLATE layer around a METR1 stream
	FormatBlocked                // "METR2": blocked container with per-block CRC + footer index
	FormatColumnar               // "METR3": columnar blocked container (bitpacked columns + LZ)
)

// String names the format as accepted by ParseFormat.
func (f Format) String() string {
	switch f {
	case FormatFlat:
		return "flat"
	case FormatDeflate:
		return "deflate"
	case FormatBlocked:
		return "metr2"
	case FormatColumnar:
		return "metr3"
	default:
		return fmt.Sprintf("format(%d)", uint8(f))
	}
}

// ParseFormat parses a format name as used by the -format command flags.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "flat", "v1", "metr1":
		return FormatFlat, nil
	case "deflate", "v1z", "metz1":
		return FormatDeflate, nil
	case "metr2", "blocked", "v2":
		return FormatBlocked, nil
	case "metr3", "columnar", "v3":
		return FormatColumnar, nil
	default:
		return 0, fmt.Errorf("trace: unknown format %q (want flat, deflate, metr2 or metr3)", s)
	}
}

// ioFailure reports whether err is a real I/O failure rather than an
// EOF-shaped end of data. EOF-shaped errors indicate truncation or a short
// file — corruption territory; anything else (a failing disk, a closed
// socket) must be surfaced to the caller, not collapsed into a format error.
func ioFailure(err error) bool {
	return err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF)
}

// mapReadErr classifies a read failure at a point in the stream: EOF-shaped
// errors become eofAs (ErrBadMagic/ErrTruncated, depending on where the
// stream ended), DEFLATE stream errors become ErrCorrupt, and genuine I/O
// failures are wrapped with %w so callers can errors.Is/As the underlying
// cause and distinguish a transient read failure from a corrupt file.
func mapReadErr(err error, eofAs error, ctx string) error {
	var ce flate.CorruptInputError
	var ie flate.InternalError
	switch {
	case !ioFailure(err):
		return eofAs
	case errors.As(err, &ce), errors.As(err, &ie):
		return fmt.Errorf("trace: %s: %v: %w", ctx, err, ErrCorrupt)
	default:
		return fmt.Errorf("trace: %s: %w", ctx, err)
	}
}

// Writer streams trace records to an underlying io.Writer in METR format.
// Records must be written in non-decreasing timestamp order for best
// compression, but the format itself permits any order.
type Writer struct {
	w       *bufio.Writer
	fw      *flate.Writer // non-nil for compressed output
	lastTS  Timestamp
	scratch []byte
	err     error
	count   uint64
}

// checkDeviceName enforces the shared header cap at write time, so writers
// cannot produce files the reader refuses to open.
func checkDeviceName(device string) error {
	if len(device) > maxDeviceName {
		return fmt.Errorf("trace: device name is %d bytes, exceeds the %d-byte header cap", len(device), maxDeviceName)
	}
	return nil
}

// appendFileHeader appends the post-magic file header shared by every
// container: deviceLen:uvarint device:bytes start:varint.
func appendFileHeader(b []byte, device string, start Timestamp) []byte {
	b = binary.AppendUvarint(b, uint64(len(device)))
	b = append(b, device...)
	b = binary.AppendVarint(b, int64(start))
	return b
}

// NewWriter writes the file header for the given device and returns a
// Writer. The caller must call Flush (or Close on the underlying file)
// when done.
func NewWriter(w io.Writer, device string, start Timestamp) (*Writer, error) {
	if err := checkDeviceName(device); err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic); err != nil {
		return nil, err
	}
	if _, err := bw.Write(appendFileHeader(nil, device, start)); err != nil {
		return nil, err
	}
	return &Writer{w: bw, lastTS: start, scratch: make([]byte, 0, 4096)}, nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered records to the underlying writer. For compressed
// writers this also terminates the DEFLATE stream, so Flush must be the
// final call.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.fw != nil {
		return w.fw.Close()
	}
	return nil
}

// NewCompressedWriter is NewWriter with a DEFLATE-compressed container
// ("METZ1" magic). The reader auto-detects both forms. Compressed traces
// are a few times smaller at some CPU cost.
func NewCompressedWriter(w io.Writer, device string, start Timestamp) (*Writer, error) {
	if err := checkDeviceName(device); err != nil {
		return nil, err
	}
	if _, err := w.Write(magicFlat); err != nil {
		return nil, err
	}
	fw, err := flate.NewWriter(w, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	tw, err := NewWriter(fw, device, start)
	if err != nil {
		return nil, err
	}
	tw.fw = fw
	return tw, nil
}

// appendBody appends the varint-packed body of r to b, with the timestamp
// delta-encoded against last. It is the single encoding routine shared by
// the file Writer and the wire-protocol RecordEncoder.
func appendBody(b []byte, r *Record, last Timestamp) ([]byte, error) {
	b = binary.AppendVarint(b, int64(r.TS-last))
	switch r.Type {
	case RecAppName:
		b = binary.AppendUvarint(b, uint64(r.App))
		b = binary.AppendUvarint(b, uint64(len(r.AppName)))
		b = append(b, r.AppName...)
	case RecPacket:
		b = binary.AppendUvarint(b, uint64(r.App))
		b = append(b, byte(r.Dir), byte(r.Net), byte(r.State))
		b = binary.AppendUvarint(b, uint64(len(r.Payload)))
		b = append(b, r.Payload...)
	case RecProcState:
		b = binary.AppendUvarint(b, uint64(r.App))
		b = append(b, byte(r.State))
	case RecUIEvent:
		b = binary.AppendUvarint(b, uint64(r.App))
		b = append(b, byte(r.UIKind))
	case RecScreen:
		if r.ScreenOn {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	default:
		return nil, fmt.Errorf("trace: cannot write record type %v", r.Type)
	}
	return b, nil
}

// decodeBody parses a record body as produced by appendBody into rec and
// returns the record's absolute timestamp. Packet payloads alias body.
func decodeBody(typ RecordType, body []byte, last Timestamp, rec *Record) (Timestamp, error) {
	*rec = Record{Type: typ}
	delta, n := binary.Varint(body)
	if n <= 0 {
		return 0, ErrCorrupt
	}
	body = body[n:]
	ts := last + Timestamp(delta)
	rec.TS = ts

	readUvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(body)
		if n <= 0 {
			return 0, false
		}
		body = body[n:]
		return v, true
	}
	readByte := func() (byte, bool) {
		if len(body) == 0 {
			return 0, false
		}
		b := body[0]
		body = body[1:]
		return b, true
	}

	switch typ {
	case RecAppName:
		app, ok := readUvarint()
		if !ok {
			return 0, ErrCorrupt
		}
		nlen, ok := readUvarint()
		if !ok || uint64(len(body)) < nlen {
			return 0, ErrCorrupt
		}
		rec.App = uint32(app)
		rec.AppName = string(body[:nlen])
	case RecPacket:
		app, ok := readUvarint()
		if !ok {
			return 0, ErrCorrupt
		}
		rec.App = uint32(app)
		d, ok1 := readByte()
		nw, ok2 := readByte()
		st, ok3 := readByte()
		if !ok1 || !ok2 || !ok3 {
			return 0, ErrCorrupt
		}
		rec.Dir, rec.Net, rec.State = Direction(d), Network(nw), ProcState(st)
		plen, ok := readUvarint()
		if !ok || uint64(len(body)) < plen {
			return 0, ErrCorrupt
		}
		rec.Payload = body[:plen]
	case RecProcState:
		app, ok := readUvarint()
		if !ok {
			return 0, ErrCorrupt
		}
		st, ok2 := readByte()
		if !ok2 {
			return 0, ErrCorrupt
		}
		rec.App = uint32(app)
		rec.State = ProcState(st)
	case RecUIEvent:
		app, ok := readUvarint()
		if !ok {
			return 0, ErrCorrupt
		}
		k, ok2 := readByte()
		if !ok2 {
			return 0, ErrCorrupt
		}
		rec.App = uint32(app)
		rec.UIKind = UIEventKind(k)
	case RecScreen:
		on, ok := readByte()
		if !ok {
			return 0, ErrCorrupt
		}
		rec.ScreenOn = on != 0
	default:
		return 0, ErrCorrupt
	}
	return ts, nil
}

// Write encodes one record. It returns the first error encountered and is a
// no-op afterwards.
func (w *Writer) Write(r *Record) error {
	if w.err != nil {
		return w.err
	}
	b, err := appendBody(w.scratch[:0], r, w.lastTS)
	if err != nil {
		return err
	}
	w.scratch = b // keep grown capacity

	var frame []byte
	frame = append(frame, byte(r.Type))
	frame = binary.AppendUvarint(frame, uint64(len(b)))
	if _, err := w.w.Write(frame); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(b); err != nil {
		w.err = err
		return err
	}
	crc := crc32.ChecksumIEEE([]byte{byte(r.Type)})
	crc = crc32.Update(crc, crc32.IEEETable, b)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc)
	if _, err := w.w.Write(crcb[:]); err != nil {
		w.err = err
		return err
	}
	w.lastTS = r.TS
	w.count++
	return nil
}

// Reader streams records from a METR file. Next returns records in file
// order; the Payload slice of packet records aliases an internal buffer
// that is overwritten by the following Next call.
type Reader struct {
	r      *bufio.Reader
	device string
	start  Timestamp
	lastTS Timestamp
	format Format
	buf    []byte
	rec    Record
	blk    *blockDecoder  // non-nil when reading a METR-2 container
	col    *columnDecoder // non-nil when reading a METR-3 container
}

// NewReader validates the header and returns a streaming Reader. All four
// containers are accepted: plain ("METR1"), DEFLATE-compressed ("METZ1"),
// blocked ("METR2") and columnar ("METR3"). Blocked and columnar files are
// streamed block by block in file order; use ReadFileParallel for
// index-driven parallel decoding.
func NewReader(r io.Reader) (*Reader, error) { return newReader(r, 0) }

func newReader(r io.Reader, depth int) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [6]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, mapReadErr(err, ErrBadMagic, "reading magic")
	}
	switch string(m[:]) {
	case string(magicFlat):
		if depth >= maxContainerDepth {
			return nil, fmt.Errorf("trace: compressed container nested %d deep (max %d): %w",
				depth+1, maxContainerDepth, ErrCorrupt)
		}
		return newReader(flate.NewReader(br), depth+1)
	case string(magicBlocked):
		if depth > 0 {
			return nil, fmt.Errorf("trace: blocked container inside a compressed container: %w", ErrCorrupt)
		}
		device, start, err := readFileHeader(br)
		if err != nil {
			return nil, err
		}
		return &Reader{device: device, start: start, format: FormatBlocked,
			blk: newBlockDecoder(br)}, nil
	case string(magicColumnar):
		if depth > 0 {
			return nil, fmt.Errorf("trace: columnar container inside a compressed container: %w", ErrCorrupt)
		}
		device, start, err := readFileHeader(br)
		if err != nil {
			return nil, err
		}
		return &Reader{device: device, start: start, format: FormatColumnar,
			col: newColumnDecoder(br)}, nil
	case string(magic):
		device, start, err := readFileHeader(br)
		if err != nil {
			return nil, err
		}
		format := FormatFlat
		if depth > 0 {
			format = FormatDeflate
		}
		return &Reader{r: br, device: device, start: start, lastTS: start, format: format}, nil
	default:
		return nil, ErrBadMagic
	}
}

// readFileHeader parses the post-magic header (device name, start
// timestamp) shared by every container.
func readFileHeader(br *bufio.Reader) (string, Timestamp, error) {
	dlen, err := binary.ReadUvarint(br)
	if err != nil {
		return "", 0, mapReadErr(err, ErrBadMagic, "reading header")
	}
	if dlen > maxDeviceName {
		return "", 0, ErrBadMagic
	}
	dev := make([]byte, dlen)
	if _, err := io.ReadFull(br, dev); err != nil {
		return "", 0, mapReadErr(err, ErrTruncated, "reading header")
	}
	start, err := binary.ReadVarint(br)
	if err != nil {
		return "", 0, mapReadErr(err, ErrTruncated, "reading header")
	}
	return string(dev), Timestamp(start), nil
}

// Device returns the device identifier from the file header.
func (r *Reader) Device() string { return r.device }

// Start returns the trace start timestamp from the file header.
func (r *Reader) Start() Timestamp { return r.start }

// Format returns the container format the reader sniffed.
func (r *Reader) Format() Format { return r.format }

// Next returns the next record, or io.EOF at a clean end of stream. The
// returned pointer and any Payload it carries are only valid until the next
// call.
func (r *Reader) Next() (*Record, error) {
	if r.blk != nil {
		return r.blk.next()
	}
	if r.col != nil {
		return r.col.next()
	}
	tb, err := r.r.ReadByte()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, mapReadErr(err, ErrTruncated, "reading record")
	}
	blen, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, mapReadErr(err, ErrTruncated, "reading record")
	}
	if blen > maxRecordLen {
		return nil, ErrCorrupt
	}
	if cap(r.buf) < int(blen) {
		r.buf = make([]byte, blen)
	}
	body := r.buf[:blen]
	if _, err := io.ReadFull(r.r, body); err != nil {
		return nil, mapReadErr(err, ErrTruncated, "reading record")
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r.r, crcb[:]); err != nil {
		return nil, mapReadErr(err, ErrTruncated, "reading record")
	}
	crc := crc32.ChecksumIEEE([]byte{tb})
	crc = crc32.Update(crc, crc32.IEEETable, body)
	if binary.LittleEndian.Uint32(crcb[:]) != crc {
		return nil, ErrCorrupt
	}

	ts, err := decodeBody(RecordType(tb), body, r.lastTS, &r.rec)
	if err != nil {
		return nil, err
	}
	r.lastTS = ts
	return &r.rec, nil
}
