package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"netenergy/internal/lz"
)

// Range-pushdown scan over a single trace file: the footer index's
// per-block firstTS/lastTS (honest min/max — the writers reject
// out-of-order records) prune blocks wholly outside a half-open time
// window [From, To) before any byte of the block is read or inflated.
// Within a surviving block, records are trimmed to the window by binary
// search on the (sorted) timestamp column, and an optional app predicate
// is applied column-at-a-time before any row assembly. Files without an
// intact footer — flat v1 containers and blocked files still being
// written (the ingest segment store's live tail) — fall back to a
// streaming scan with the same record-level semantics, just without
// block skips.

// TimeRange is a half-open query window [From, To) in trace timestamps.
type TimeRange struct {
	From Timestamp // inclusive
	To   Timestamp // exclusive
}

// Contains reports whether ts falls inside the window: From <= ts < To.
// A record exactly at To is out; a record exactly at From is in.
func (t TimeRange) Contains(ts Timestamp) bool {
	return ts >= t.From && ts < t.To
}

// overlapsBlock reports whether a block spanning [first, last]
// (inclusive on both ends — these are record timestamps, not bounds)
// can hold an in-window record. A block whose last == From must still
// be scanned (that record is in the window); a block whose first == To
// is skipped (every record is at or past the exclusive bound).
func (t TimeRange) overlapsBlock(first, last Timestamp) bool {
	return first < t.To && last >= t.From
}

// ScanStats counts pushdown effectiveness across one or more scans.
// BlocksSkipped is the proof the seek index worked: blocks never read,
// decompressed or decoded because their advertised range missed the
// window.
type ScanStats struct {
	Files          int   // files opened
	BlocksTotal    int   // index entries examined (indexed files only)
	BlocksSkipped  int   // blocks pruned by the [From, To) overlap test
	BlocksScanned  int   // blocks decoded
	RecordsScanned int64 // records decoded before trimming/filtering
	RecordsMatched int64 // records delivered to the callback
}

// Add accumulates o into s (for merging per-file or per-node stats).
func (s *ScanStats) Add(o ScanStats) {
	s.Files += o.Files
	s.BlocksTotal += o.BlocksTotal
	s.BlocksSkipped += o.BlocksSkipped
	s.BlocksScanned += o.BlocksScanned
	s.RecordsScanned += o.RecordsScanned
	s.RecordsMatched += o.RecordsMatched
}

// ScanOptions selects the records a scan delivers.
type ScanOptions struct {
	// Range is the half-open window; records with Range.Contains(TS)
	// pass.
	Range TimeRange

	// Apps, when non-empty, keeps only records attributable to these app
	// IDs. RecScreen records are device-global (no app column meaning)
	// and always pass, as do RecAppName registrations for selected apps
	// — the name table is how query results get labelled.
	Apps []uint32
}

// appFilter is the materialised app predicate; nil means "all apps".
type appFilter map[uint32]struct{}

func newAppFilter(apps []uint32) appFilter {
	if len(apps) == 0 {
		return nil
	}
	f := make(appFilter, len(apps))
	for _, a := range apps {
		f[a] = struct{}{}
	}
	return f
}

// keep reports whether record i of b passes the predicate. The check is
// purely columnar: type and app columns only.
func (f appFilter) keep(b *RecordBatch, i int) bool {
	if f == nil {
		return true
	}
	if b.Types[i] == RecScreen {
		return true
	}
	_, ok := f[b.App[i]]
	return ok
}

// ScanFile scans one trace file, delivering the in-window (and
// app-matching) records to fn as read-only batches valid only for the
// duration of the call. It returns the device name from the file
// header. stats may be nil.
func ScanFile(path string, opt ScanOptions, stats *ScanStats, fn func(*RecordBatch) error) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return "", err
	}
	if stats != nil {
		stats.Files++
	}
	device, _, blocks, format, ok, err := readBlockIndexFmt(f, st.Size())
	if err != nil {
		return device, err
	}
	if !ok {
		return scanStream(f, opt, stats, fn)
	}
	return device, scanIndexed(f, st.Size(), blocks, format, opt, stats, fn)
}

// scanStream is the no-index fallback: decode front to back, trim and
// filter each batch. Flat v1 files and unsealed (in-progress) segments
// land here — nothing can be skipped without an index, but the record
// semantics are identical.
func scanStream(f *os.File, opt ScanOptions, stats *ScanStats, fn func(*RecordBatch) error) (string, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return "", err
	}
	br, err := NewBatchReader(bufio.NewReaderSize(f, 256<<10))
	if err != nil {
		return "", err
	}
	filter := newAppFilter(opt.Apps)
	var scratch RecordBatch
	for {
		b, err := br.Next()
		if err == io.EOF {
			return br.Device(), nil
		}
		if err != nil {
			return br.Device(), err
		}
		if err := emitTrimmed(b, opt.Range, filter, &scratch, stats, fn); err != nil {
			return br.Device(), err
		}
	}
}

// scanIndexed prunes blocks via the footer index and decodes only the
// survivors.
func scanIndexed(f *os.File, size int64, blocks []BlockInfo, format Format, opt ScanOptions, stats *ScanStats, fn func(*RecordBatch) error) error {
	// Each block ends where the next begins; the last ends at the index,
	// whose offset the footer names.
	var foot [footerLen]byte
	if _, err := f.ReadAt(foot[:], size-footerLen); err != nil {
		return err
	}
	idxOff := size - footerLen - int64(binary.LittleEndian.Uint64(foot[:8]))

	filter := newAppFilter(opt.Apps)
	var scratch, out RecordBatch
	var raw []byte
	var recs []Record
	for i, b := range blocks {
		if stats != nil {
			stats.BlocksTotal++
		}
		if !opt.Range.overlapsBlock(b.First, b.Last) {
			if stats != nil {
				stats.BlocksSkipped++
			}
			continue
		}
		if stats != nil {
			stats.BlocksScanned++
		}
		next := idxOff
		if i+1 < len(blocks) {
			next = blocks[i+1].Offset
		}
		scratch.Reset()
		if format == FormatColumnar {
			var err error
			raw, err = decodeColumnBatchAt(f, b, next, &scratch, raw)
			if err != nil {
				return err
			}
		} else {
			recs = sliceCap(recs, b.Count)
			if err := decodeBlockAt(f, b, next, recs); err != nil {
				return err
			}
			for j := range recs {
				scratch.Append(&recs[j])
			}
		}
		if err := emitTrimmed(&scratch, opt.Range, filter, &out, stats, fn); err != nil {
			return err
		}
	}
	return nil
}

// decodeColumnBatchAt reads, verifies and decodes one indexed METR-3
// block straight into dst's columns — the row-assembly-free sibling of
// decodeColumnBlockAt, so the app filter can run before any Record is
// built. raw is a reusable decompression buffer; the (possibly grown)
// buffer is returned and dst's Blob aliases it until the next call.
func decodeColumnBatchAt(ra io.ReaderAt, b BlockInfo, next int64, dst *RecordBatch, raw []byte) ([]byte, error) {
	span := next - b.Offset
	if span <= 0 || span > maxBlockLen+64 {
		return raw, ErrCorrupt
	}
	sc := blockScratchPool.Get().(*blockScratch)
	defer blockScratchPool.Put(sc)
	if cap(sc.buf) < int(span) {
		sc.buf = make([]byte, span)
	}
	buf := sc.buf[:span]
	if _, err := ra.ReadAt(buf, b.Offset); err != nil {
		return raw, fmt.Errorf("trace: reading block at %d: %w", b.Offset, err)
	}
	if buf[0] != blockTag {
		return raw, ErrCorrupt
	}
	h, hdrLen, err := parseBlockHeader(buf[1:])
	if err != nil {
		return raw, err
	}
	if h.clen != b.CompLen || h.ulen != b.UncompLen || h.count != b.Count {
		return raw, fmt.Errorf("trace: block header disagrees with index at offset %d: %w", b.Offset, ErrCorrupt)
	}
	if len(buf) < 1+hdrLen+h.clen {
		return raw, ErrTruncated
	}
	comp := buf[1+hdrLen : 1+hdrLen+h.clen]
	if crc32.Checksum(comp, castagnoli) != h.crc {
		return raw, ErrCorrupt
	}
	raw = sliceCap(raw, h.ulen)
	if err := lz.Decompress(raw, comp); err != nil {
		return raw, ErrCorrupt
	}
	cs := columnScratchPool.Get().(*columnScratch)
	defer columnScratchPool.Put(cs)
	if cs.u64, err = decodeColumns(raw, h, dst, cs.u64); err != nil {
		return raw, err
	}
	return raw, nil
}

// emitTrimmed trims b to the window by binary search on the sorted
// timestamp column, applies the app filter columnar-ly (compacting into
// out only when the filter drops rows — the unfiltered in-window run is
// delivered as a zero-copy view), and hands the result to fn.
func emitTrimmed(b *RecordBatch, r TimeRange, filter appFilter, out *RecordBatch, stats *ScanStats, fn func(*RecordBatch) error) error {
	n := b.Len()
	if stats != nil {
		stats.RecordsScanned += int64(n)
	}
	if n == 0 {
		return nil
	}
	// Timestamps within a batch are non-decreasing (writer-enforced), so
	// the in-window run is contiguous: [lo, hi).
	lo := sort.Search(n, func(i int) bool { return b.TS[i] >= r.From })
	hi := sort.Search(n, func(i int) bool { return b.TS[i] >= r.To })
	if lo >= hi {
		return nil
	}
	if filter == nil {
		view := b.Slice(lo, hi)
		if stats != nil {
			stats.RecordsMatched += int64(view.Len())
		}
		return fn(&view)
	}
	out.Reset()
	for i := lo; i < hi; i++ {
		if filter.keep(b, i) {
			out.AppendFrom(b, i)
		}
	}
	if out.Len() == 0 {
		return nil
	}
	if stats != nil {
		stats.RecordsMatched += int64(out.Len())
	}
	return fn(out)
}
