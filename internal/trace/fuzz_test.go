package trace

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"

	"netenergy/internal/lz"
)

// FuzzReader feeds arbitrary bytes to the METR reader: every input must
// yield records or a clean error, never a panic or unbounded allocation.
func FuzzReader(f *testing.F) {
	// Seed: a valid small trace.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "dev", 1000)
	w.Write(&Record{Type: RecAppName, TS: 1000, App: 0, AppName: "com.a"})
	w.Write(&Record{Type: RecPacket, TS: 2000, App: 0, Dir: DirUp,
		Net: NetCellular, State: StateService, Payload: []byte{0x45, 0, 0, 20}})
	w.Write(&Record{Type: RecScreen, TS: 3000, ScreenOn: true})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("METR1\n"))
	f.Add([]byte{})

	// Seed: a valid blocked (METR-2) trace, so the fuzzer explores the
	// block decoder too.
	var bbuf bytes.Buffer
	bw, _ := NewBlockWriter(&bbuf, "dev", 1000)
	bw.Write(&Record{Type: RecAppName, TS: 1000, App: 0, AppName: "com.a"})
	bw.Write(&Record{Type: RecPacket, TS: 2000, App: 0, Dir: DirUp,
		Net: NetCellular, State: StateService, Payload: []byte{0x45, 0, 0, 20}})
	bw.Flush()
	f.Add(bbuf.Bytes())

	// Seed: the nesting attack — a compressed container whose decompressed
	// stream opens another compressed container. The reader must reject it
	// at the depth cap instead of nesting flate readers without bound.
	f.Add(nestedContainer(3, buf.Bytes()))
	f.Add(nestedContainer(1, bbuf.Bytes()))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			rec, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if rec.Type == RecPacket && len(rec.Payload) > maxRecordLen {
				t.Fatalf("oversized payload accepted: %d", len(rec.Payload))
			}
		}
	})
}

// FuzzReadFileParallel feeds arbitrary bytes to the seeking (footer-index)
// path used by core.OpenParallel — ReadBlockIndex plus the parallel block
// decode. Every input must yield records or a clean error, never a panic
// or an allocation sized by attacker-controlled index fields (the index is
// CRC-protected against corruption, not against being crafted whole).
func FuzzReadFileParallel(f *testing.F) {
	// Seed: a valid multi-block METR-2 file so the fuzzer starts from an
	// intact footer index and mutates its fields.
	var bbuf bytes.Buffer
	bw, _ := NewBlockWriter(&bbuf, "dev", 1000)
	bw.Write(&Record{Type: RecAppName, TS: 1000, App: 0, AppName: "com.a"})
	bw.Write(&Record{Type: RecPacket, TS: 2000, App: 0, Dir: DirUp,
		Net: NetCellular, State: StateService, Payload: []byte{0x45, 0, 0, 20}})
	bw.Write(&Record{Type: RecScreen, TS: 3000, ScreenOn: true})
	bw.Flush()
	f.Add(bbuf.Bytes())

	// Seed: a v1 file, covering the streaming fallback behind the same API.
	var vbuf bytes.Buffer
	w, _ := NewWriter(&vbuf, "dev", 1000)
	w.Write(&Record{Type: RecScreen, TS: 2000, ScreenOn: true})
	w.Flush()
	f.Add(vbuf.Bytes())

	// Seeds: the two index attacks from the bug sweep — a crafted footer
	// declaring a ~1 TiB block offset resp. a 2^50 record count, each of
	// which previously drove a fatal OOM out of a ~30-byte file.
	f.Add(craftIndexFile(1, []rawIndexEntry{{od: 1 << 40, ul: 16, cl: 16, rc: 1}}))
	f.Add(craftIndexFile(1, []rawIndexEntry{{od: 5, ul: 16, cl: 16, rc: 1 << 50}}))
	f.Add([]byte{})

	// Seeds: a valid METR-3 file plus the same index attacks against its
	// footer, so the fuzzer reaches the columnar parallel decode path
	// (decodeColumnBlockAt) and the columnar index validation too.
	f.Add(metr3Sample())
	f.Add(craftColumnIndexFile(1, []rawIndexEntry{{od: 1 << 40, ul: 16, cl: 16, rc: 1}}))
	f.Add(craftColumnIndexFile(1, []rawIndexEntry{{od: 5, ul: 16, cl: 16, rc: 1 << 50}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.metr")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		dt, err := ReadFileParallel(path, 4)
		if err != nil {
			return
		}
		for i := range dt.Records {
			if dt.Records[i].Type == RecPacket && len(dt.Records[i].Payload) > maxRecordLen {
				t.Fatalf("oversized payload accepted: %d", len(dt.Records[i].Payload))
			}
		}
	})
}

// metr3Sample builds a small valid METR-3 file covering every record type,
// the common seed for the columnar fuzzers.
func metr3Sample() []byte {
	var buf bytes.Buffer
	w, _ := NewColumnWriter(&buf, "dev", 1000)
	w.Write(&Record{Type: RecAppName, TS: 1000, App: 0, AppName: "com.a"})
	w.Write(&Record{Type: RecProcState, TS: 1500, App: 0, State: StateForeground})
	w.Write(&Record{Type: RecPacket, TS: 2000, App: 0, Dir: DirUp,
		Net: NetCellular, State: StateService, Payload: []byte{0x45, 0, 0, 20}})
	w.Write(&Record{Type: RecUIEvent, TS: 2500, App: 0, UIKind: 1})
	w.Write(&Record{Type: RecScreen, TS: 3000, ScreenOn: true})
	w.Flush()
	return buf.Bytes()
}

// craftColumnFile assembles a METR-3 file with one hand-built block whose
// uncompressed columnar image is raw and whose CRC-intact header declares
// count/first/last, plus a matching footer index — the tool for probing
// decodeColumns with images the writer would never produce.
func craftColumnFile(raw []byte, count int, first, last Timestamp) []byte {
	var lza lz.Appender
	payload := lza.Compress(nil, raw)

	out := append([]byte(nil), magicColumnar...)
	out = appendFileHeader(out, "d", 0)
	blkOff := int64(len(out))
	out = append(out, blockTag)
	out = binary.AppendUvarint(out, uint64(len(raw)))
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	out = binary.AppendVarint(out, int64(first))
	out = binary.AppendVarint(out, int64(last))
	out = binary.AppendUvarint(out, uint64(count))
	out = append(out, payload...)

	idx := []byte{indexTag}
	idx = binary.AppendUvarint(idx, 1)
	idx = binary.AppendUvarint(idx, uint64(blkOff))
	idx = binary.AppendUvarint(idx, uint64(len(raw)))
	idx = binary.AppendUvarint(idx, uint64(len(payload)))
	idx = binary.AppendVarint(idx, int64(first))
	idx = binary.AppendVarint(idx, int64(last))
	idx = binary.AppendUvarint(idx, uint64(count))
	idx = binary.LittleEndian.AppendUint64(idx, uint64(len(idx)))
	idx = binary.LittleEndian.AppendUint32(idx, crc32.Checksum(idx[:len(idx)-8], castagnoli))
	idx = append(idx, footerMagicColumnar...)
	return append(out, idx...)
}

// craftColumnIndexFile is craftIndexFile for the METR-3 container: header
// plus a CRC-intact footer index carrying the given raw entries, no blocks.
func craftColumnIndexFile(declaredCount uint64, entries []rawIndexEntry) []byte {
	out := append([]byte(nil), magicColumnar...)
	out = appendFileHeader(out, "d", 0)
	idx := []byte{indexTag}
	idx = binary.AppendUvarint(idx, declaredCount)
	for _, e := range entries {
		idx = binary.AppendUvarint(idx, e.od)
		idx = binary.AppendUvarint(idx, e.ul)
		idx = binary.AppendUvarint(idx, e.cl)
		idx = binary.AppendVarint(idx, e.ft)
		idx = binary.AppendVarint(idx, e.lt)
		idx = binary.AppendUvarint(idx, e.rc)
	}
	idx = binary.LittleEndian.AppendUint64(idx, uint64(len(idx)))
	idx = binary.LittleEndian.AppendUint32(idx, crc32.Checksum(idx[:len(idx)-8], castagnoli))
	idx = append(idx, footerMagicColumnar...)
	return append(out, idx...)
}

// FuzzMETR3Decoder feeds arbitrary bytes to the METR-3 columnar decoder
// through both the per-record reader and the zero-copy batch reader. Every
// input must yield records or a clean error (crafted inputs as ErrCorrupt),
// never a panic or an allocation sized by unvalidated header fields.
func FuzzMETR3Decoder(f *testing.F) {
	sample := metr3Sample()
	f.Add(sample)
	f.Add([]byte("METR3\n"))
	f.Add([]byte{})

	// Seed: bitpack width overflow — a CRC-intact block whose timestamp
	// column declares a 200-bit width; the decoder must reject widths over
	// 64 before unpacking rather than index out of the packed bytes.
	f.Add(craftColumnFile([]byte{byte(RecScreen), 0, 1, 200}, 1, 100, 100))
	// Seed: maximum width with no packed bytes behind it (truncated column).
	f.Add(craftColumnFile([]byte{byte(RecScreen), 0, 1, 64}, 1, 100, 100))
	// Seed: a length column assigning blob bytes to a record type that
	// carries none.
	f.Add(craftColumnFile([]byte{byte(RecScreen), 0, 1, 0, 0, 8, 0xFF, 0xAA}, 1, 100, 100))
	// Seed: the nested-bomb — a compressed container whose payload is a
	// METR-3 file; the depth cap must refuse it like any other nesting.
	f.Add(nestedContainer(2, sample))
	// Seeds: crafted footer indexes declaring a ~1 TiB offset resp. a 2^50
	// record count — the METR-2 OOM attacks aimed at the columnar footer.
	f.Add(craftColumnIndexFile(1, []rawIndexEntry{{od: 1 << 40, ul: 16, cl: 16, rc: 1}}))
	f.Add(craftColumnIndexFile(1, []rawIndexEntry{{od: 5, ul: 16, cl: 16, rc: 1 << 50}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Per-record streaming path.
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			for i := 0; i < 10000; i++ {
				rec, err := r.Next()
				if err != nil {
					break
				}
				if rec.Type == RecPacket && len(rec.Payload) > maxRecordLen {
					t.Fatalf("oversized payload accepted: %d", len(rec.Payload))
				}
			}
		}
		// Batch path: the zero-copy block server must fail just as cleanly.
		br, err := NewBatchReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			b, err := br.Next()
			if err != nil {
				return
			}
			for j := 0; j < b.Len(); j++ {
				if len(b.Bytes(j)) > maxRecordLen {
					t.Fatalf("oversized batch payload accepted: %d", len(b.Bytes(j)))
				}
			}
		}
	})
}
