package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the METR reader: every input must
// yield records or a clean error, never a panic or unbounded allocation.
func FuzzReader(f *testing.F) {
	// Seed: a valid small trace.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "dev", 1000)
	w.Write(&Record{Type: RecAppName, TS: 1000, App: 0, AppName: "com.a"})
	w.Write(&Record{Type: RecPacket, TS: 2000, App: 0, Dir: DirUp,
		Net: NetCellular, State: StateService, Payload: []byte{0x45, 0, 0, 20}})
	w.Write(&Record{Type: RecScreen, TS: 3000, ScreenOn: true})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("METR1\n"))
	f.Add([]byte{})

	// Seed: a valid blocked (METR-2) trace, so the fuzzer explores the
	// block decoder too.
	var bbuf bytes.Buffer
	bw, _ := NewBlockWriter(&bbuf, "dev", 1000)
	bw.Write(&Record{Type: RecAppName, TS: 1000, App: 0, AppName: "com.a"})
	bw.Write(&Record{Type: RecPacket, TS: 2000, App: 0, Dir: DirUp,
		Net: NetCellular, State: StateService, Payload: []byte{0x45, 0, 0, 20}})
	bw.Flush()
	f.Add(bbuf.Bytes())

	// Seed: the nesting attack — a compressed container whose decompressed
	// stream opens another compressed container. The reader must reject it
	// at the depth cap instead of nesting flate readers without bound.
	f.Add(nestedContainer(3, buf.Bytes()))
	f.Add(nestedContainer(1, bbuf.Bytes()))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			rec, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if rec.Type == RecPacket && len(rec.Payload) > maxRecordLen {
				t.Fatalf("oversized payload accepted: %d", len(rec.Payload))
			}
		}
	})
}

// FuzzReadFileParallel feeds arbitrary bytes to the seeking (footer-index)
// path used by core.OpenParallel — ReadBlockIndex plus the parallel block
// decode. Every input must yield records or a clean error, never a panic
// or an allocation sized by attacker-controlled index fields (the index is
// CRC-protected against corruption, not against being crafted whole).
func FuzzReadFileParallel(f *testing.F) {
	// Seed: a valid multi-block METR-2 file so the fuzzer starts from an
	// intact footer index and mutates its fields.
	var bbuf bytes.Buffer
	bw, _ := NewBlockWriter(&bbuf, "dev", 1000)
	bw.Write(&Record{Type: RecAppName, TS: 1000, App: 0, AppName: "com.a"})
	bw.Write(&Record{Type: RecPacket, TS: 2000, App: 0, Dir: DirUp,
		Net: NetCellular, State: StateService, Payload: []byte{0x45, 0, 0, 20}})
	bw.Write(&Record{Type: RecScreen, TS: 3000, ScreenOn: true})
	bw.Flush()
	f.Add(bbuf.Bytes())

	// Seed: a v1 file, covering the streaming fallback behind the same API.
	var vbuf bytes.Buffer
	w, _ := NewWriter(&vbuf, "dev", 1000)
	w.Write(&Record{Type: RecScreen, TS: 2000, ScreenOn: true})
	w.Flush()
	f.Add(vbuf.Bytes())

	// Seeds: the two index attacks from the bug sweep — a crafted footer
	// declaring a ~1 TiB block offset resp. a 2^50 record count, each of
	// which previously drove a fatal OOM out of a ~30-byte file.
	f.Add(craftIndexFile(1, []rawIndexEntry{{od: 1 << 40, ul: 16, cl: 16, rc: 1}}))
	f.Add(craftIndexFile(1, []rawIndexEntry{{od: 5, ul: 16, cl: 16, rc: 1 << 50}}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.metr")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		dt, err := ReadFileParallel(path, 4)
		if err != nil {
			return
		}
		for i := range dt.Records {
			if dt.Records[i].Type == RecPacket && len(dt.Records[i].Payload) > maxRecordLen {
				t.Fatalf("oversized payload accepted: %d", len(dt.Records[i].Payload))
			}
		}
	})
}
