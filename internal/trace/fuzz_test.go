package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the METR reader: every input must
// yield records or a clean error, never a panic or unbounded allocation.
func FuzzReader(f *testing.F) {
	// Seed: a valid small trace.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "dev", 1000)
	w.Write(&Record{Type: RecAppName, TS: 1000, App: 0, AppName: "com.a"})
	w.Write(&Record{Type: RecPacket, TS: 2000, App: 0, Dir: DirUp,
		Net: NetCellular, State: StateService, Payload: []byte{0x45, 0, 0, 20}})
	w.Write(&Record{Type: RecScreen, TS: 3000, ScreenOn: true})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("METR1\n"))
	f.Add([]byte{})

	// Seed: a valid blocked (METR-2) trace, so the fuzzer explores the
	// block decoder too.
	var bbuf bytes.Buffer
	bw, _ := NewBlockWriter(&bbuf, "dev", 1000)
	bw.Write(&Record{Type: RecAppName, TS: 1000, App: 0, AppName: "com.a"})
	bw.Write(&Record{Type: RecPacket, TS: 2000, App: 0, Dir: DirUp,
		Net: NetCellular, State: StateService, Payload: []byte{0x45, 0, 0, 20}})
	bw.Flush()
	f.Add(bbuf.Bytes())

	// Seed: the nesting attack — a compressed container whose decompressed
	// stream opens another compressed container. The reader must reject it
	// at the depth cap instead of nesting flate readers without bound.
	f.Add(nestedContainer(3, buf.Bytes()))
	f.Add(nestedContainer(1, bbuf.Bytes()))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			rec, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if rec.Type == RecPacket && len(rec.Payload) > maxRecordLen {
				t.Fatalf("oversized payload accepted: %d", len(rec.Payload))
			}
		}
	})
}
