package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAppTableIntern(t *testing.T) {
	tab := NewAppTable()
	a := tab.Intern("com.foo")
	b := tab.Intern("com.bar")
	if a == b {
		t.Fatal("distinct names share an ID")
	}
	if tab.Intern("com.foo") != a {
		t.Error("Intern not idempotent")
	}
	if tab.Name(a) != "com.foo" || tab.Name(b) != "com.bar" {
		t.Error("Name lookup wrong")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestAppTableRegisterSparse(t *testing.T) {
	tab := NewAppTable()
	tab.Register(5, "com.sparse")
	if tab.Name(5) != "com.sparse" {
		t.Errorf("Name(5) = %q", tab.Name(5))
	}
	if got := tab.Name(3); got != "app3" {
		t.Errorf("unregistered Name(3) = %q", got)
	}
	if tab.Name(99) != "app99" {
		t.Errorf("out-of-range Name = %q", tab.Name(99))
	}
}

func TestAppTableNamesCopy(t *testing.T) {
	tab := NewAppTable()
	tab.Intern("a")
	names := tab.Names()
	names[0] = "mutated"
	if tab.Name(0) != "a" {
		t.Error("Names must return a copy")
	}
}

func makeDeviceTrace() *DeviceTrace {
	dt := &DeviceTrace{Device: "dev-1", Start: 100, Apps: NewAppTable()}
	id := dt.Apps.Intern("com.example")
	dt.Records = []Record{
		{Type: RecAppName, TS: 100, App: id, AppName: "com.example"},
		{Type: RecPacket, TS: 300, App: id, Dir: DirUp, Net: NetCellular,
			State: StateForeground, Payload: []byte{1, 2, 3}},
		{Type: RecPacket, TS: 200, App: id, Dir: DirDown, Net: NetCellular,
			State: StateForeground, Payload: []byte{4, 5}},
		{Type: RecScreen, TS: 400, ScreenOn: true},
	}
	return dt
}

func TestDeviceTraceEncodeReadAll(t *testing.T) {
	dt := makeDeviceTrace()
	data, err := dt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Device != "dev-1" || got.Start != 100 {
		t.Errorf("header: %q %d", got.Device, got.Start)
	}
	if len(got.Records) != len(dt.Records) {
		t.Fatalf("records: %d vs %d", len(got.Records), len(dt.Records))
	}
	if got.Apps.Name(0) != "com.example" {
		t.Errorf("app table not rebuilt: %q", got.Apps.Name(0))
	}
	// Payload must be an owned copy (valid beyond reader lifetime).
	if !bytes.Equal(got.Records[1].Payload, []byte{1, 2, 3}) {
		t.Errorf("payload = %v", got.Records[1].Payload)
	}
}

func TestSortByTime(t *testing.T) {
	dt := makeDeviceTrace()
	dt.SortByTime()
	for i := 1; i < len(dt.Records); i++ {
		if dt.Records[i].TS < dt.Records[i-1].TS {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestPacketsIndices(t *testing.T) {
	dt := makeDeviceTrace()
	idx := dt.Packets()
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 2 {
		t.Errorf("Packets = %v", idx)
	}
}

func TestExportNDJSON(t *testing.T) {
	dt := makeDeviceTrace()
	var buf bytes.Buffer
	if err := dt.ExportNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(dt.Records) {
		t.Fatalf("%d lines for %d records", len(lines), len(dt.Records))
	}
	if !strings.Contains(lines[1], `"type":"packet"`) || !strings.Contains(lines[1], `"app":"com.example"`) {
		t.Errorf("packet line = %s", lines[1])
	}
	if !strings.Contains(lines[3], `"screen_on":true`) {
		t.Errorf("screen line = %s", lines[3])
	}
}

func TestFleetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"u01", "u02"} {
		dt := makeDeviceTrace()
		dt.Device = name
		data, err := dt.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".metr"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fleet, err := OpenFleet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Paths) != 2 {
		t.Fatalf("paths = %v", fleet.Paths)
	}
	var devices []string
	err = fleet.EachDevice(func(dt *DeviceTrace) error {
		devices = append(devices, dt.Device)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) != 2 || devices[0] != "u01" || devices[1] != "u02" {
		t.Errorf("devices = %v", devices)
	}
}

func TestOpenFleetEmpty(t *testing.T) {
	if _, err := OpenFleet(t.TempDir()); err == nil {
		t.Error("empty dir should error")
	}
}

func TestTimestampHelpers(t *testing.T) {
	ts := Timestamp(86400_000_000 + 500_000) // day 1 + 0.5 s
	if ts.Day() != 1 {
		t.Errorf("Day = %d", ts.Day())
	}
	if ts.Seconds() != 86400.5 {
		t.Errorf("Seconds = %v", ts.Seconds())
	}
	if got := ts.AddSeconds(1.5); got != ts+1_500_000 {
		t.Errorf("AddSeconds = %d", got)
	}
	if d := ts.Sub(ts - 2_000_000); d != 2 {
		t.Errorf("Sub = %v", d)
	}
	tm := ts.Time()
	if TimestampOf(tm) != ts {
		t.Error("TimestampOf(Time()) not identity")
	}
}

func TestProcStateClassification(t *testing.T) {
	fg := []ProcState{StateForeground, StateVisible}
	bg := []ProcState{StatePerceptible, StateService, StateBackground}
	for _, s := range fg {
		if !s.IsForeground() || s.IsBackground() {
			t.Errorf("%v misclassified", s)
		}
	}
	for _, s := range bg {
		if s.IsForeground() || !s.IsBackground() {
			t.Errorf("%v misclassified", s)
		}
	}
	if StateUnknown.IsForeground() || StateUnknown.IsBackground() {
		t.Error("unknown state should be neither")
	}
	if len(AllStates) != 5 {
		t.Errorf("AllStates = %v", AllStates)
	}
}

func TestStringers(t *testing.T) {
	if StateService.String() != "service" || StateUnknown.String() != "unknown" {
		t.Error("ProcState.String wrong")
	}
	if DirUp.String() != "up" || DirDown.String() != "down" {
		t.Error("Direction.String wrong")
	}
	if NetCellular.String() != "cellular" || NetWiFi.String() != "wifi" {
		t.Error("Network.String wrong")
	}
	if RecPacket.String() != "packet" || RecInvalid.String() != "invalid" {
		t.Error("RecordType.String wrong")
	}
	r := Record{Type: RecPacket, TS: 5, App: 2, Payload: []byte{1}}
	if !strings.Contains(r.String(), "packet") {
		t.Errorf("Record.String = %q", r.String())
	}
}

func TestFilterApp(t *testing.T) {
	dt := &DeviceTrace{Device: "d", Start: 0, Apps: NewAppTable()}
	a := dt.Apps.Intern("com.a")
	b := dt.Apps.Intern("com.b")
	dt.Records = []Record{
		{Type: RecAppName, App: a, AppName: "com.a"},
		{Type: RecAppName, App: b, AppName: "com.b"},
		{Type: RecPacket, TS: 10, App: a, Payload: []byte{1}},
		{Type: RecPacket, TS: 20, App: b, Payload: []byte{2}},
		{Type: RecProcState, TS: 30, App: a, State: StateService},
		{Type: RecScreen, TS: 40, ScreenOn: true},
	}
	got := dt.FilterApp(a)
	if len(got.Records) != 4 { // appname(a), packet(a), procstate(a), screen
		t.Fatalf("records = %d: %v", len(got.Records), got.Records)
	}
	for _, r := range got.Records {
		if r.Type != RecScreen && r.App != a {
			t.Errorf("foreign record leaked: %v", r)
		}
	}
}

func TestWindow(t *testing.T) {
	dt := &DeviceTrace{Device: "d", Start: 0, Apps: NewAppTable()}
	a := dt.Apps.Intern("com.a")
	dt.Records = []Record{
		{Type: RecAppName, App: a, AppName: "com.a"},
		{Type: RecPacket, TS: 10, App: a, Payload: []byte{1}},
		{Type: RecPacket, TS: 20, App: a, Payload: []byte{2}},
		{Type: RecPacket, TS: 30, App: a, Payload: []byte{3}},
	}
	got := dt.Window(15, 30)
	// appname + packet@20 only.
	if len(got.Records) != 2 {
		t.Fatalf("records = %v", got.Records)
	}
	if got.Start != 15 {
		t.Errorf("start = %d", got.Start)
	}
}
