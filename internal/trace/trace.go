// Package trace defines the record streams the on-device collector in the
// paper produced — packets with packet→process mappings, Android process
// state transitions, user input events and screen state — together with a
// compact binary file format ("METR") for storing and streaming them.
//
// The paper's study consumed 125 GB of such traces from 20 devices over 623
// days. In this reproduction the records are produced by the synthetic fleet
// generator (internal/synthgen) and consumed by the analysis pipeline
// exactly as real capture files would be: serialised to disk (or a buffer)
// and re-read through the streaming Reader.
package trace

import (
	"fmt"
	"time"
)

// ProcState is the Android process importance state of an app at a point in
// time, per ActivityManager.RunningAppProcessInfo (paper §4). The paper
// groups foreground+visible as "foreground" and the rest as "background".
type ProcState uint8

// Android process states, ordered from most to least user-visible.
const (
	StateUnknown ProcState = iota
	StateForeground
	StateVisible
	StatePerceptible
	StateService
	StateBackground
)

// String returns the Android name of the state.
func (s ProcState) String() string {
	switch s {
	case StateForeground:
		return "foreground"
	case StateVisible:
		return "visible"
	case StatePerceptible:
		return "perceptible"
	case StateService:
		return "service"
	case StateBackground:
		return "background"
	default:
		return "unknown"
	}
}

// IsForeground reports whether the paper classifies this state as
// foreground (foreground or visible; §4: "We refer to the first two
// categories as 'foreground' processes and the last three as 'background'").
func (s ProcState) IsForeground() bool {
	return s == StateForeground || s == StateVisible
}

// IsBackground reports whether the paper classifies this state as
// background (perceptible, service, or background).
func (s ProcState) IsBackground() bool {
	return s == StatePerceptible || s == StateService || s == StateBackground
}

// AllStates lists the five real states in display order.
var AllStates = []ProcState{StateForeground, StateVisible, StatePerceptible, StateService, StateBackground}

// Direction is the direction of a packet relative to the device.
type Direction uint8

// Packet directions.
const (
	DirUp   Direction = iota // device -> network
	DirDown                  // network -> device
)

// String returns "up" or "down".
func (d Direction) String() string {
	if d == DirUp {
		return "up"
	}
	return "down"
}

// Network is the radio interface a packet traversed.
type Network uint8

// Network interfaces. The study focuses on cellular; WiFi records exist so
// filtering is a real operation.
const (
	NetCellular Network = iota
	NetWiFi
)

// String returns "cellular" or "wifi".
func (n Network) String() string {
	if n == NetCellular {
		return "cellular"
	}
	return "wifi"
}

// Timestamp is microseconds since the Unix epoch. All trace records carry
// Timestamps; analyses convert to seconds as needed.
type Timestamp int64

// TimestampOf converts a time.Time to a trace Timestamp.
func TimestampOf(t time.Time) Timestamp { return Timestamp(t.UnixMicro()) }

// Time converts the timestamp back to a time.Time in UTC.
func (ts Timestamp) Time() time.Time { return time.UnixMicro(int64(ts)).UTC() }

// Seconds returns the timestamp as floating-point seconds since the epoch.
func (ts Timestamp) Seconds() float64 { return float64(ts) / 1e6 }

// Sub returns ts - other as a float64 number of seconds.
func (ts Timestamp) Sub(other Timestamp) float64 { return float64(ts-other) / 1e6 }

// AddSeconds returns the timestamp advanced by s seconds.
func (ts Timestamp) AddSeconds(s float64) Timestamp { return ts + Timestamp(s*1e6) }

// Day returns the number of whole days since the epoch, used for per-day
// ledgers. Days are UTC-aligned, matching the generator.
func (ts Timestamp) Day() int { return int(int64(ts) / (86400 * 1e6)) }

// RecordType discriminates records in a trace stream.
type RecordType uint8

// Record types in a METR stream.
const (
	RecInvalid   RecordType = iota
	RecAppName              // registers an app ID -> package name mapping
	RecPacket               // one captured IP packet with its process mapping
	RecProcState            // an app's process state changed
	RecUIEvent              // user input delivered to an app
	RecScreen               // screen turned on or off
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecAppName:
		return "appname"
	case RecPacket:
		return "packet"
	case RecProcState:
		return "procstate"
	case RecUIEvent:
		return "uievent"
	case RecScreen:
		return "screen"
	default:
		return "invalid"
	}
}

// UIEventKind classifies user input events.
type UIEventKind uint8

// UI event kinds recorded by the collector.
const (
	UITouch UIEventKind = iota
	UIKey
	UILaunch // app brought to foreground by the user
	UIClose  // app explicitly dismissed by the user
)

// Record is one trace record. Exactly the fields relevant to its Type are
// meaningful; the rest are zero. A flat struct (rather than an interface)
// keeps the streaming reader allocation-free.
type Record struct {
	Type RecordType
	TS   Timestamp

	// App identifies the owning app for Packet/ProcState/UIEvent records,
	// as an index into the trace's app-name table.
	App uint32

	// AppName carries the package name for RecAppName records.
	AppName string

	// Packet fields.
	Dir     Direction
	Net     Network
	State   ProcState // process state of the owning app at capture time
	Payload []byte    // raw IP packet bytes; aliased to the reader's buffer

	// ProcState events reuse State. UI events use UIKind. Screen events
	// use ScreenOn.
	UIKind   UIEventKind
	ScreenOn bool
}

// String renders a compact human-readable form, mainly for debugging.
func (r Record) String() string {
	switch r.Type {
	case RecAppName:
		return fmt.Sprintf("appname app=%d name=%s", r.App, r.AppName)
	case RecPacket:
		return fmt.Sprintf("packet ts=%d app=%d dir=%s net=%s state=%s len=%d",
			r.TS, r.App, r.Dir, r.Net, r.State, len(r.Payload))
	case RecProcState:
		return fmt.Sprintf("procstate ts=%d app=%d state=%s", r.TS, r.App, r.State)
	case RecUIEvent:
		return fmt.Sprintf("uievent ts=%d app=%d kind=%d", r.TS, r.App, r.UIKind)
	case RecScreen:
		return fmt.Sprintf("screen ts=%d on=%v", r.TS, r.ScreenOn)
	default:
		return "invalid"
	}
}
