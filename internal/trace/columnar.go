package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"sync"

	"netenergy/internal/lz"
)

// The METR-3 columnar container:
//
//	file    := "METR3\n" header block* index footer
//	header  := deviceLen:uvarint device:bytes start:varint
//	block   := 'B' ulen:uvarint clen:uvarint crc32c:uint32le
//	           firstTS:varint lastTS:varint count:uvarint payload:clen-bytes
//	payload := LZ(columns)                                (internal/lz)
//	columns := types:count-bytes flags:count-bytes aux:count-bytes
//	           tsWidth:byte   tsDeltas:bitpacked          (zigzag of TS[i]-TS[i-1], anchored at firstTS)
//	           appWidth:byte  apps:bitpacked
//	           lenWidth:byte  lens:bitpacked              (payload / app-name byte counts)
//	           blob:bytes                                 (concatenated payloads and names, sum(lens) bytes)
//	index   := 'I' count:uvarint entry*                   (as METR-2)
//	footer  := indexLen:uint64le indexCRC32C:uint32le "3RTEM\n"
//
// The block, index and footer skeleton is METR-2's exactly — same
// header fields, same CRC32C over the compressed payload, same
// delta-anchoring of timestamps at firstTS so blocks decode
// independently — but the payload is column-oriented: one slice per
// field, bitpacked where the values are narrow, compressed with the
// dependency-free byte-oriented LZ codec instead of DEFLATE. A block
// therefore decodes straight into a RecordBatch (the in-memory columnar
// form) with no per-record varint walk, which is where the multi-GB/s
// decode rate comes from; the flat Record view is materialised only at
// the edges that still want rows.
//
// Every field of a hostile block is validated against the block's own
// declared ulen before any allocation is sized from it: column widths
// are capped, the three byte columns and three packed columns must fit
// inside ulen, and the blob must be exactly the declared lengths' sum.
// Malformed blocks fail as ErrCorrupt, never panic or over-allocate.

var (
	magicColumnar       = []byte("METR3\n")
	footerMagicColumnar = []byte("3RTEM\n")
)

// zigzagEnc maps a signed delta to an unsigned value with small
// magnitudes staying small.
func zigzagEnc(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// zigzagDec inverts zigzagEnc.
func zigzagDec(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// packBits appends len(vals) values of w bits each to dst, little-endian
// bit order. Every value must be < 1<<w (w == 64 admits all).
//
//repolint:noalloc
func packBits(dst []byte, vals []uint64, w uint) []byte {
	if w == 0 {
		return dst
	}
	base := len(dst)
	total := (len(vals)*int(w) + 7) / 8
	for len(dst) < base+total {
		dst = append(dst, 0)
	}
	buf := dst[base:]
	bit := 0
	for _, v := range vals {
		rem := int(w)
		for rem > 0 {
			bi := bit >> 3
			sh := bit & 7
			take := 8 - sh
			if take > rem {
				take = rem
			}
			buf[bi] |= byte(v << sh)
			v >>= uint(take)
			bit += take
			rem -= take
		}
	}
	return dst
}

// unpackBits fills dst with len(dst) w-bit values from src, which must
// hold exactly (len(dst)*w+7)/8 bytes.
//
//repolint:noalloc
func unpackBits(dst []uint64, src []byte, w uint) {
	if w == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if w >= 58 {
		// Wide values cannot use the single-load fast path (shift+width
		// may exceed 64 bits); gather byte-wise.
		for i := range dst {
			dst[i] = gatherBits(src, i*int(w), w)
		}
		return
	}
	mask := uint64(1)<<w - 1
	bit := 0
	for i := range dst {
		bi := bit >> 3
		if bi+8 <= len(src) {
			dst[i] = binary.LittleEndian.Uint64(src[bi:]) >> uint(bit&7) & mask
		} else {
			dst[i] = gatherBits(src, bit, w)
		}
		bit += int(w)
	}
}

// gatherBits extracts w bits starting at bit offset bit from src,
// byte-at-a-time (used near the end of the packed region, where an
// 8-byte load would run past the slice).
//
//repolint:noalloc
func gatherBits(src []byte, bit int, w uint) uint64 {
	var v uint64
	var got uint
	for got < w {
		bi := bit >> 3
		sh := uint(bit & 7)
		take := 8 - sh
		if take > w-got {
			take = w - got
		}
		v |= uint64(src[bi]>>sh) & (1<<take - 1) << got
		got += uint(take)
		bit += int(take)
	}
	return v
}

// maxWidth returns the bit width needed for the widest value.
//
//repolint:noalloc
func maxWidth(vals []uint64) uint {
	w := 0
	for _, v := range vals {
		if n := bits.Len64(v); n > w {
			w = n
		}
	}
	return uint(w)
}

// appendColumns appends the uncompressed columnar image of b (anchored
// at first) to dst, reusing scratch for the value staging. It returns
// the extended dst and scratch.
func appendColumns(dst []byte, b *RecordBatch, first Timestamp, scratch []uint64) ([]byte, []uint64) {
	n := b.Len()
	for _, t := range b.Types {
		dst = append(dst, byte(t))
	}
	dst = append(dst, b.Flags...)
	dst = append(dst, b.Aux...)

	scratch = scratch[:0]
	prev := first
	for _, ts := range b.TS {
		scratch = append(scratch, zigzagEnc(int64(ts-prev)))
		prev = ts
	}
	w := maxWidth(scratch)
	dst = append(dst, byte(w))
	dst = packBits(dst, scratch, w)

	scratch = scratch[:0]
	for _, a := range b.App {
		scratch = append(scratch, uint64(a))
	}
	w = maxWidth(scratch)
	dst = append(dst, byte(w))
	dst = packBits(dst, scratch, w)

	scratch = scratch[:0]
	for i := 0; i < n; i++ {
		scratch = append(scratch, uint64(b.Off[i+1]-b.Off[i]))
	}
	w = maxWidth(scratch)
	dst = append(dst, byte(w))
	dst = packBits(dst, scratch, w)

	return append(dst, b.Blob...), scratch
}

// decodeColumns decodes the columnar image raw (one block's
// uncompressed payload) into b, whose Blob will alias raw. u64 is
// scratch for unpacked values and is returned grown.
func decodeColumns(raw []byte, h blockHeader, b *RecordBatch, u64 []uint64) ([]uint64, error) {
	n := h.count
	b.Reset()
	if n == 0 {
		if len(raw) != 0 {
			return u64, ErrCorrupt
		}
		return u64, nil
	}
	// Three byte columns plus three width bytes is the floor; anything
	// smaller cannot hold n records.
	if len(raw) < 3*n+3 {
		return u64, ErrCorrupt
	}
	if cap(u64) < n {
		u64 = make([]uint64, n)
	}
	u64 = u64[:n]
	b.Types = sliceCap(b.Types, n)
	b.TS = sliceCap(b.TS, n)
	b.App = sliceCap(b.App, n)
	b.Flags = sliceCap(b.Flags, n)
	b.Aux = sliceCap(b.Aux, n)
	b.Off = sliceCap(b.Off, n+1)

	p := 0
	for i := 0; i < n; i++ {
		t := raw[p+i]
		if t == 0 || t > byte(RecScreen) {
			return u64, ErrCorrupt
		}
		b.Types[i] = RecordType(t)
	}
	p += n
	copy(b.Flags, raw[p:p+n])
	p += n
	copy(b.Aux, raw[p:p+n])
	p += n

	// Timestamp deltas.
	w := uint(raw[p])
	p++
	if w > 64 {
		return u64, ErrCorrupt
	}
	nb := (n*int(w) + 7) / 8
	if len(raw)-p < nb {
		return u64, ErrCorrupt
	}
	unpackBits(u64, raw[p:p+nb], w)
	p += nb
	prev := h.first
	for i := 0; i < n; i++ {
		prev += Timestamp(zigzagDec(u64[i]))
		b.TS[i] = prev
	}
	if prev != h.lastTS {
		return u64, ErrCorrupt
	}

	// App IDs.
	if len(raw)-p < 1 {
		return u64, ErrCorrupt
	}
	w = uint(raw[p])
	p++
	if w > 32 {
		return u64, ErrCorrupt
	}
	nb = (n*int(w) + 7) / 8
	if len(raw)-p < nb {
		return u64, ErrCorrupt
	}
	unpackBits(u64, raw[p:p+nb], w)
	p += nb
	for i := 0; i < n; i++ {
		b.App[i] = uint32(u64[i])
	}

	// Variable-length byte counts, validated per record type, then the
	// blob itself, which must be exactly the declared lengths' sum.
	if len(raw)-p < 1 {
		return u64, ErrCorrupt
	}
	w = uint(raw[p])
	p++
	if w > 32 {
		return u64, ErrCorrupt
	}
	nb = (n*int(w) + 7) / 8
	if len(raw)-p < nb {
		return u64, ErrCorrupt
	}
	unpackBits(u64, raw[p:p+nb], w)
	p += nb
	var sum uint64
	b.Off[0] = 0
	for i := 0; i < n; i++ {
		l := u64[i]
		if l > maxRecordLen {
			return u64, ErrCorrupt
		}
		if l != 0 && b.Types[i] != RecAppName && b.Types[i] != RecPacket {
			return u64, ErrCorrupt
		}
		sum += l
		if sum > uint64(len(raw)-p) {
			return u64, ErrCorrupt
		}
		b.Off[i+1] = uint32(sum)
	}
	if sum != uint64(len(raw)-p) {
		return u64, ErrCorrupt
	}
	b.Blob = raw[p:]
	return u64, nil
}

// sliceCap resizes s to length n, reallocating only when capacity is
// short.
func sliceCap[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// ColumnWriter streams records into a METR-3 columnar container. It
// satisfies the RecordWriter contract; Flush must be the final call.
type ColumnWriter struct {
	w     io.Writer
	off   int64
	batch RecordBatch
	blob  int // Blob bytes at the start of the current batch (always 0)
	raw   []byte
	comp  []byte
	hdr   []byte
	u64   []uint64
	lza   *lz.Appender
	first Timestamp
	last  Timestamp
	count uint64
	index []BlockInfo
	err   error
}

// NewColumnWriter writes the METR-3 file header and returns a
// ColumnWriter.
func NewColumnWriter(w io.Writer, device string, start Timestamp) (*ColumnWriter, error) {
	if err := checkDeviceName(device); err != nil {
		return nil, err
	}
	hdr := append([]byte(nil), magicColumnar...)
	hdr = appendFileHeader(hdr, device, start)
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return &ColumnWriter{w: w, off: int64(len(hdr)), lza: new(lz.Appender)}, nil
}

// Count returns the number of records written so far.
func (w *ColumnWriter) Count() uint64 { return w.count }

// Write appends one record to the current block, cutting a block when
// the estimated uncompressed image reaches the target size. It returns
// the first error encountered and is a no-op afterwards.
func (w *ColumnWriter) Write(r *Record) error {
	if w.err != nil {
		return w.err
	}
	if r.Type == RecInvalid || r.Type > RecScreen {
		w.err = fmt.Errorf("trace: cannot write record type %v", r.Type)
		return w.err
	}
	// Same monotonicity gate as BlockWriter.Write: pushdown scans treat
	// the positional first/last block timestamps as min/max, so an
	// out-of-order record would be silently skipped by windowed queries.
	// w.last survives block cuts (unlike w.first), so it is the reference.
	if w.count > 0 && r.TS < w.last {
		w.err = fmt.Errorf("trace: record %d (ts=%d) precedes ts=%d: %w",
			w.count, r.TS, w.last, ErrOutOfOrder)
		return w.err
	}
	if w.batch.Len() == 0 {
		w.first = r.TS
	}
	w.batch.Append(r)
	w.last = r.TS
	w.count++
	// ~11 bytes/record covers the three byte columns plus typical packed
	// timestamp/app/len widths; the blob dominates for packet-heavy data.
	if len(w.batch.Blob)+11*w.batch.Len() >= targetBlockSize {
		if err := w.cutBlock(); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

// cutBlock encodes, compresses and writes the accumulated batch as one
// block.
func (w *ColumnWriter) cutBlock() error {
	n := w.batch.Len()
	if n == 0 {
		return nil
	}
	w.raw, w.u64 = appendColumns(w.raw[:0], &w.batch, w.first, w.u64)
	w.comp = w.lza.Compress(w.comp[:0], w.raw)
	crc := crc32.Checksum(w.comp, castagnoli)

	hdr := append(w.hdr[:0], blockTag)
	hdr = binary.AppendUvarint(hdr, uint64(len(w.raw)))
	hdr = binary.AppendUvarint(hdr, uint64(len(w.comp)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc)
	hdr = binary.AppendVarint(hdr, int64(w.first))
	hdr = binary.AppendVarint(hdr, int64(w.last))
	hdr = binary.AppendUvarint(hdr, uint64(n))
	w.hdr = hdr
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.w.Write(w.comp); err != nil {
		return err
	}
	w.index = append(w.index, BlockInfo{Offset: w.off, CompLen: len(w.comp),
		UncompLen: len(w.raw), First: w.first, Last: w.last, Count: n})
	w.off += int64(len(hdr) + len(w.comp))
	w.batch.Reset()
	return nil
}

// Flush writes the final partial block, the footer index and the
// trailer. It must be the last call on the writer.
func (w *ColumnWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.cutBlock(); err != nil {
		w.err = err
		return err
	}
	idx := appendBlockIndex(w.hdr[:0], w.index, footerMagicColumnar)
	if _, err := w.w.Write(idx); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Sync cuts the current partial block and writes it out, so a streaming
// reader opening the file sees every record written so far. Unlike Flush
// it writes no index or footer: the file stays unsealed and the writer
// stays usable — the ingest segment store calls Sync before serving a
// query over an in-progress segment, whose missing footer routes readers
// onto the streaming (non-seeking) path.
func (w *ColumnWriter) Sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.cutBlock(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// columnDecoder is the streaming METR-3 decoder behind Reader.Next and
// BatchReader.Next: it decompresses one block at a time into a reused
// RecordBatch and serves records (or the whole batch) from it.
type columnDecoder struct {
	br    *bufio.Reader
	comp  []byte
	raw   []byte
	u64   []uint64
	batch RecordBatch
	idx   int
	rec   Record
	done  bool
}

func newColumnDecoder(br *bufio.Reader) *columnDecoder {
	return &columnDecoder{br: br}
}

// loadBlock reads and decodes the next block into the batch, returning
// io.EOF at a clean end of file.
func (d *columnDecoder) loadBlock() error {
	for {
		if d.done {
			return io.EOF
		}
		tag, err := d.br.ReadByte()
		if err == io.EOF {
			return io.EOF
		}
		if err != nil {
			return mapReadErr(err, ErrTruncated, "reading block tag")
		}
		if tag == indexTag {
			d.done = true
			if _, err := io.Copy(io.Discard, d.br); err != nil && ioFailure(err) {
				return fmt.Errorf("trace: draining index: %w", err)
			}
			return io.EOF
		}
		if tag != blockTag {
			return ErrCorrupt
		}
		h, err := readBlockHeader(d.br)
		if err != nil {
			return err
		}
		if cap(d.comp) < h.clen {
			d.comp = make([]byte, h.clen)
		}
		if _, err := io.ReadFull(d.br, d.comp[:h.clen]); err != nil {
			return mapReadErr(err, ErrTruncated, "reading block payload")
		}
		if crc32.Checksum(d.comp[:h.clen], castagnoli) != h.crc {
			return ErrCorrupt
		}
		if cap(d.raw) < h.ulen {
			d.raw = make([]byte, h.ulen)
		}
		d.raw = d.raw[:h.ulen]
		if err := lz.Decompress(d.raw, d.comp[:h.clen]); err != nil {
			return ErrCorrupt
		}
		if d.u64, err = decodeColumns(d.raw, h, &d.batch, d.u64); err != nil {
			return err
		}
		d.idx = 0
		if d.batch.Len() > 0 {
			return nil
		}
		// Zero-count block: keep scanning.
	}
}

// next returns the next record in file order.
func (d *columnDecoder) next() (*Record, error) {
	if d.idx >= d.batch.Len() {
		if err := d.loadBlock(); err != nil {
			return nil, err
		}
	}
	d.batch.Record(d.idx, &d.rec)
	d.idx++
	return &d.rec, nil
}

// nextBatch returns the next whole block as a RecordBatch, valid until
// the following call.
func (d *columnDecoder) nextBatch() (*RecordBatch, error) {
	if err := d.loadBlock(); err != nil {
		return nil, err
	}
	d.idx = d.batch.Len()
	return &d.batch, nil
}

// columnScratch is pooled per-block decode state for the parallel
// reader: the batch whose columns are reused across blocks plus the
// unpack scratch. The blob arena is not pooled — it aliases the
// freshly-allocated raw buffer retained by the decoded records.
type columnScratch struct {
	batch RecordBatch
	u64   []uint64
}

var columnScratchPool = sync.Pool{New: func() any { return new(columnScratch) }}

// decodeColumnBlockAt reads, verifies and fully decodes one indexed
// METR-3 block from ra into dst (len == b.Count). raw is the block's
// disjoint window of the caller's decode arena, len == b.UncompLen;
// record payloads alias it, so the arena must outlive the results.
func decodeColumnBlockAt(ra io.ReaderAt, b BlockInfo, next int64, dst []Record, raw []byte) error {
	span := next - b.Offset
	if span <= 0 || span > maxBlockLen+64 {
		return ErrCorrupt
	}
	sc := blockScratchPool.Get().(*blockScratch)
	defer blockScratchPool.Put(sc)
	if cap(sc.buf) < int(span) {
		sc.buf = make([]byte, span)
	}
	buf := sc.buf[:span]
	if _, err := ra.ReadAt(buf, b.Offset); err != nil {
		return fmt.Errorf("trace: reading block at %d: %w", b.Offset, err)
	}
	if buf[0] != blockTag {
		return ErrCorrupt
	}
	h, hdrLen, err := parseBlockHeader(buf[1:])
	if err != nil {
		return err
	}
	if h.clen != b.CompLen || h.ulen != b.UncompLen || h.count != b.Count {
		return fmt.Errorf("trace: block header disagrees with index at offset %d: %w", b.Offset, ErrCorrupt)
	}
	if len(buf) < 1+hdrLen+h.clen {
		return ErrTruncated
	}
	comp := buf[1+hdrLen : 1+hdrLen+h.clen]
	if crc32.Checksum(comp, castagnoli) != h.crc {
		return ErrCorrupt
	}
	if len(raw) != h.ulen || len(dst) != h.count {
		return ErrCorrupt
	}
	if err := lz.Decompress(raw, comp); err != nil {
		return ErrCorrupt
	}
	cs := columnScratchPool.Get().(*columnScratch)
	defer columnScratchPool.Put(cs)
	if cs.u64, err = decodeColumns(raw, h, &cs.batch, cs.u64); err != nil {
		return err
	}
	for i := range dst {
		cs.batch.Record(i, &dst[i])
	}
	return nil
}
