package trace

import "io"

// RecordBatch is the arena-backed columnar form of a run of records:
// parallel slices of per-record fields plus one shared byte arena for
// variable-length data (packet payloads and app names). The analysis and
// ingest hot paths consume batches column-at-a-time (analysis.FeedBatch,
// ingest shard apply), and the METR-3 container stores exactly these
// columns on disk, so a block decodes into a batch without per-record
// reshaping.
//
// Ownership: a batch built with Append owns its arena (Append copies the
// record's bytes in). A batch produced by a decoder may alias the
// decoder's block buffer instead — valid until the next block is loaded,
// like Reader.Next's Payload contract. Slice returns a read-only view
// sharing the parent's arrays; appending to a view corrupts the parent.
type RecordBatch struct {
	Types []RecordType
	TS    []Timestamp
	App   []uint32

	// Flags packs the single-bit fields: for RecPacket, bit 0 is the
	// Direction and bit 1 the Network; for RecScreen, bit 0 is ScreenOn.
	// Zero for other types.
	Flags []uint8

	// Aux is the per-type secondary byte: ProcState for RecPacket and
	// RecProcState, UIEventKind for RecUIEvent. Zero for other types.
	Aux []uint8

	// Off has Len()+1 entries: record i's variable-length bytes (packet
	// payload or app name) are Blob[Off[i]:Off[i+1]]. Offsets are
	// absolute into Blob, so views share the arena without rebasing.
	Off  []uint32
	Blob []byte
}

// packetFlags packs a packet's direction and network into a Flags byte.
func packetFlags(dir Direction, net Network) uint8 {
	return uint8(dir)&1 | (uint8(net)&1)<<1
}

// Len returns the number of records in the batch.
func (b *RecordBatch) Len() int { return len(b.Types) }

// Reset empties the batch, keeping capacity.
func (b *RecordBatch) Reset() {
	b.Types = b.Types[:0]
	b.TS = b.TS[:0]
	b.App = b.App[:0]
	b.Flags = b.Flags[:0]
	b.Aux = b.Aux[:0]
	b.Off = b.Off[:0]
	b.Blob = b.Blob[:0]
}

// Append adds one record, copying its payload or app name into the
// batch's arena.
func (b *RecordBatch) Append(r *Record) {
	if len(b.Off) == 0 {
		b.Off = append(b.Off, uint32(len(b.Blob)))
	}
	b.Types = append(b.Types, r.Type)
	b.TS = append(b.TS, r.TS)
	b.App = append(b.App, r.App)
	var flags, aux uint8
	switch r.Type {
	case RecAppName:
		b.Blob = append(b.Blob, r.AppName...)
	case RecPacket:
		flags = packetFlags(r.Dir, r.Net)
		aux = uint8(r.State)
		b.Blob = append(b.Blob, r.Payload...)
	case RecProcState:
		aux = uint8(r.State)
	case RecUIEvent:
		aux = uint8(r.UIKind)
	case RecScreen:
		if r.ScreenOn {
			flags = 1
		}
	}
	b.Flags = append(b.Flags, flags)
	b.Aux = append(b.Aux, aux)
	b.Off = append(b.Off, uint32(len(b.Blob)))
}

// Bytes returns record i's variable-length bytes (packet payload or app
// name), aliasing the arena.
func (b *RecordBatch) Bytes(i int) []byte {
	return b.Blob[b.Off[i]:b.Off[i+1]]
}

// Record materialises record i into dst in the canonical flat form:
// exactly the fields relevant to the type are set, the rest zero.
// Packet payloads alias the arena; app names are copied into a string.
func (b *RecordBatch) Record(i int, dst *Record) {
	typ := b.Types[i]
	*dst = Record{Type: typ, TS: b.TS[i]}
	switch typ {
	case RecAppName:
		dst.App = b.App[i]
		dst.AppName = string(b.Bytes(i))
	case RecPacket:
		dst.App = b.App[i]
		f := b.Flags[i]
		dst.Dir = Direction(f & 1)
		dst.Net = Network((f >> 1) & 1)
		dst.State = ProcState(b.Aux[i])
		dst.Payload = b.Bytes(i)
	case RecProcState:
		dst.App = b.App[i]
		dst.State = ProcState(b.Aux[i])
	case RecUIEvent:
		dst.App = b.App[i]
		dst.UIKind = UIEventKind(b.Aux[i])
	case RecScreen:
		dst.ScreenOn = b.Flags[i]&1 != 0
	}
}

// AppendFrom appends record i of src, copying its column values and
// variable-length bytes directly between arenas — no intermediate Record
// materialisation. The pushdown scan's app filter compacts matching rows
// with it so filtering stays columnar.
func (b *RecordBatch) AppendFrom(src *RecordBatch, i int) {
	if len(b.Off) == 0 {
		b.Off = append(b.Off, uint32(len(b.Blob)))
	}
	b.Types = append(b.Types, src.Types[i])
	b.TS = append(b.TS, src.TS[i])
	b.App = append(b.App, src.App[i])
	b.Flags = append(b.Flags, src.Flags[i])
	b.Aux = append(b.Aux, src.Aux[i])
	b.Blob = append(b.Blob, src.Bytes(i)...)
	b.Off = append(b.Off, uint32(len(b.Blob)))
}

// Slice returns a read-only view of records [lo, hi), sharing the
// parent's column arrays and arena.
func (b *RecordBatch) Slice(lo, hi int) RecordBatch {
	return RecordBatch{
		Types: b.Types[lo:hi],
		TS:    b.TS[lo:hi],
		App:   b.App[lo:hi],
		Flags: b.Flags[lo:hi],
		Aux:   b.Aux[lo:hi],
		Off:   b.Off[lo : hi+1],
		Blob:  b.Blob,
	}
}

// BatchReader streams a trace file as RecordBatches. For METR-3
// containers each batch is one decoded block served zero-copy; for the
// row-oriented containers records are assembled into batches of
// batchAssembleSize. The returned batch is only valid until the next
// call to Next.
type BatchReader struct {
	r     *Reader
	owned RecordBatch
	rec   Record
}

// batchAssembleSize is the batch length the row-format fallback
// assembles; one METR-3 block holds records of roughly the same span.
const batchAssembleSize = 4096

// NewBatchReader sniffs the container and returns a batch-at-a-time
// reader over it.
func NewBatchReader(r io.Reader) (*BatchReader, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return &BatchReader{r: tr}, nil
}

// Device returns the device identifier from the file header.
func (b *BatchReader) Device() string { return b.r.Device() }

// Start returns the trace start timestamp from the file header.
func (b *BatchReader) Start() Timestamp { return b.r.Start() }

// Format returns the container format the reader sniffed.
func (b *BatchReader) Format() Format { return b.r.Format() }

// Next returns the next batch of records in file order, or io.EOF at a
// clean end of stream.
func (b *BatchReader) Next() (*RecordBatch, error) {
	if b.r.col != nil {
		return b.r.col.nextBatch()
	}
	b.owned.Reset()
	for b.owned.Len() < batchAssembleSize {
		rec, err := b.r.Next()
		if err == io.EOF {
			if b.owned.Len() == 0 {
				return nil, io.EOF
			}
			return &b.owned, nil
		}
		if err != nil {
			return nil, err
		}
		b.owned.Append(rec)
	}
	return &b.owned, nil
}
