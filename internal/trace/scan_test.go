package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// scanRecords writes recs into a file of the given format and returns
// every record ScanFile delivers for opt, plus the stats.
func scanRecords(t *testing.T, format Format, recs []Record, opt ScanOptions) ([]Record, ScanStats) {
	t.Helper()
	path := writeScanFile(t, format, recs)
	var stats ScanStats
	var got []Record
	device, err := ScanFile(path, opt, &stats, func(b *RecordBatch) error {
		var rec Record
		for i := 0; i < b.Len(); i++ {
			b.Record(i, &rec)
			cp := rec
			cp.Payload = append([]byte(nil), rec.Payload...)
			got = append(got, cp)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ScanFile: %v", err)
	}
	if device != "scan-dev" {
		t.Fatalf("device = %q", device)
	}
	return got, stats
}

func writeScanFile(t *testing.T, format Format, recs []Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scan.metr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := Timestamp(0)
	if len(recs) > 0 {
		start = recs[0].TS
	}
	w, err := NewFormatWriter(f, format, "scan-dev", start)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

// scanFixture builds n packet records with 1 KiB payloads at ts =
// 1000*i, big enough to span several blocks in both blocked formats.
func scanFixture(n int) []Record {
	payload := bytes.Repeat([]byte{0x42}, 1024)
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Type: RecPacket, TS: Timestamp(1000 * i), App: uint32(i % 7),
			Dir: DirUp, Net: NetCellular, State: StateService, Payload: payload}
	}
	return recs
}

// TestWriterRejectsOutOfOrder is the satellite-1 regression: the block
// headers' firstTS/lastTS are positional, and pushdown treats them as
// min/max — so both blocked writers must reject an out-of-order record
// rather than write a block whose advertised range lies.
func TestWriterRejectsOutOfOrder(t *testing.T) {
	for _, format := range []Format{FormatBlocked, FormatColumnar} {
		t.Run(format.String(), func(t *testing.T) {
			var buf bytes.Buffer
			w, err := NewFormatWriter(&buf, format, "d", 1000)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Write(&Record{Type: RecScreen, TS: 1000, ScreenOn: true}); err != nil {
				t.Fatal(err)
			}
			// Equal timestamps are fine (ties are common in real traces).
			if err := w.Write(&Record{Type: RecScreen, TS: 1000, ScreenOn: false}); err != nil {
				t.Fatalf("equal ts rejected: %v", err)
			}
			if err := w.Write(&Record{Type: RecScreen, TS: 2000, ScreenOn: true}); err != nil {
				t.Fatal(err)
			}
			err = w.Write(&Record{Type: RecScreen, TS: 1999, ScreenOn: false})
			if !errors.Is(err, ErrOutOfOrder) {
				t.Fatalf("out-of-order write: got %v, want ErrOutOfOrder", err)
			}
			// The writer is poisoned: later in-order writes keep failing.
			if err := w.Write(&Record{Type: RecScreen, TS: 3000, ScreenOn: true}); !errors.Is(err, ErrOutOfOrder) {
				t.Fatalf("write after rejection: got %v, want ErrOutOfOrder", err)
			}
		})
	}
}

// TestWriterOutOfOrderAcrossBlocks forces a block cut between the
// in-order run and the regression record: the monotonicity reference
// must survive block boundaries (where the delta base resets).
func TestWriterOutOfOrderAcrossBlocks(t *testing.T) {
	for _, format := range []Format{FormatBlocked, FormatColumnar} {
		t.Run(format.String(), func(t *testing.T) {
			var buf bytes.Buffer
			w, err := NewFormatWriter(&buf, format, "d", 0)
			if err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte{1}, 4096)
			for i := 0; i < 100; i++ { // ~400 KiB: at least one cut block
				rec := Record{Type: RecPacket, TS: Timestamp(1000 * i), App: 1,
					Dir: DirDown, Net: NetWiFi, State: StateForeground, Payload: payload}
				if err := w.Write(&rec); err != nil {
					t.Fatal(err)
				}
			}
			err = w.Write(&Record{Type: RecScreen, TS: 500, ScreenOn: true})
			if !errors.Is(err, ErrOutOfOrder) {
				t.Fatalf("out-of-order write after block cut: got %v, want ErrOutOfOrder", err)
			}
		})
	}
}

// TestTimeRangeBoundaries is the satellite-2 boundary table for the two
// comparisons every pushdown decision reduces to: record membership in
// [from, to) and block overlap against a [first, last] record span.
func TestTimeRangeBoundaries(t *testing.T) {
	r := TimeRange{From: 100, To: 200}
	recordCases := []struct {
		ts   Timestamp
		want bool
	}{
		{99, false},
		{100, true}, // exactly at from: included
		{150, true},
		{199, true},
		{200, false}, // exactly at to: excluded
		{201, false},
	}
	for _, c := range recordCases {
		if got := r.Contains(c.ts); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.ts, got, c.want)
		}
	}
	blockCases := []struct {
		first, last Timestamp
		want        bool
	}{
		{0, 99, false},
		{0, 100, true}, // lastTS == from: the record at from is in range
		{0, 150, true},
		{150, 160, true},
		{199, 300, true}, // firstTS == to-1: the record at 199 is in range
		{200, 300, false},
		{201, 300, false},
		{100, 100, true},
		{199, 199, true},
		{200, 200, false},
	}
	for _, c := range blockCases {
		if got := r.overlapsBlock(c.first, c.last); got != c.want {
			t.Errorf("overlapsBlock(%d, %d) = %v, want %v", c.first, c.last, got, c.want)
		}
	}
}

// TestScanFileBoundaries runs the same boundary table end to end: a
// record exactly at to must never be delivered, a record exactly at
// from always, in every container format including the v1 fallback.
func TestScanFileBoundaries(t *testing.T) {
	recs := []Record{
		{Type: RecScreen, TS: 99, ScreenOn: true},
		{Type: RecScreen, TS: 100, ScreenOn: false},
		{Type: RecScreen, TS: 150, ScreenOn: true},
		{Type: RecScreen, TS: 199, ScreenOn: false},
		{Type: RecScreen, TS: 200, ScreenOn: true},
		{Type: RecScreen, TS: 201, ScreenOn: false},
	}
	for _, format := range []Format{FormatFlat, FormatDeflate, FormatBlocked, FormatColumnar} {
		t.Run(format.String(), func(t *testing.T) {
			got, _ := scanRecords(t, format, recs, ScanOptions{Range: TimeRange{From: 100, To: 200}})
			want := []Timestamp{100, 150, 199}
			if len(got) != len(want) {
				t.Fatalf("got %d records, want %d", len(got), len(want))
			}
			for i, w := range want {
				if got[i].TS != w {
					t.Fatalf("record %d: ts=%d, want %d", i, got[i].TS, w)
				}
			}
		})
	}
}

// TestScanPushdownSkipsBlocks proves the seek index prunes: a narrow
// window over a multi-block file must skip blocks (counter asserted)
// and still deliver exactly the records a full decode + filter would.
func TestScanPushdownSkipsBlocks(t *testing.T) {
	recs := scanFixture(2000) // several blocks in both blocked formats
	for _, format := range []Format{FormatBlocked, FormatColumnar} {
		t.Run(format.String(), func(t *testing.T) {
			r := TimeRange{From: 500_000, To: 600_000}
			got, stats := scanRecords(t, format, recs, ScanOptions{Range: r})

			var want []Record
			for i := range recs {
				if r.Contains(recs[i].TS) {
					want = append(want, recs[i])
				}
			}
			if len(got) != len(want) {
				t.Fatalf("got %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i].TS != want[i].TS || got[i].App != want[i].App {
					t.Fatalf("record %d: got ts=%d app=%d, want ts=%d app=%d",
						i, got[i].TS, got[i].App, want[i].TS, want[i].App)
				}
			}
			if stats.BlocksTotal < 4 {
				t.Fatalf("fixture too small: only %d blocks", stats.BlocksTotal)
			}
			if stats.BlocksSkipped == 0 {
				t.Fatalf("no blocks skipped: stats %+v", stats)
			}
			if stats.BlocksScanned+stats.BlocksSkipped != stats.BlocksTotal {
				t.Fatalf("block accounting broken: %+v", stats)
			}
			if stats.RecordsMatched != int64(len(want)) {
				t.Fatalf("RecordsMatched = %d, want %d", stats.RecordsMatched, len(want))
			}
		})
	}
}

// TestScanAppFilter checks the columnar app predicate: only records of
// the selected apps (plus device-global screen records) come back.
func TestScanAppFilter(t *testing.T) {
	recs := scanFixture(600)
	recs = append(recs, Record{Type: RecScreen, TS: recs[len(recs)-1].TS + 1, ScreenOn: true})
	for _, format := range []Format{FormatBlocked, FormatColumnar} {
		t.Run(format.String(), func(t *testing.T) {
			opt := ScanOptions{
				Range: TimeRange{From: 0, To: 1 << 62},
				Apps:  []uint32{2, 5},
			}
			got, stats := scanRecords(t, format, recs, opt)
			want := 0
			for i := range recs {
				if recs[i].Type == RecScreen || recs[i].App == 2 || recs[i].App == 5 {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("got %d records, want %d", len(got), want)
			}
			for i := range got {
				if got[i].Type != RecScreen && got[i].App != 2 && got[i].App != 5 {
					t.Fatalf("record %d: app %d leaked through the filter", i, got[i].App)
				}
			}
			if stats.RecordsMatched != int64(want) {
				t.Fatalf("RecordsMatched = %d, want %d", stats.RecordsMatched, want)
			}
		})
	}
}

// TestScanUnsealedFile scans an in-progress METR-3 segment: Sync makes
// every written record visible to a streaming reader while the file
// stays unsealed (no footer), which is exactly how the ingest segment
// store serves its live tail.
func TestScanUnsealedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.metr3")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := NewColumnWriter(f, "scan-dev", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		rec := Record{Type: RecScreen, TS: Timestamp(100 * i), ScreenOn: i%2 == 0}
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// No Flush: the file has no index, so the scan must stream.
	var stats ScanStats
	n := 0
	device, err := ScanFile(path, ScanOptions{Range: TimeRange{From: 1000, To: 2000}}, &stats, func(b *RecordBatch) error {
		n += b.Len()
		return nil
	})
	if err != nil {
		t.Fatalf("ScanFile: %v", err)
	}
	if device != "scan-dev" {
		t.Fatalf("device = %q", device)
	}
	if n != 10 { // ts 1000..1900
		t.Fatalf("got %d records, want 10", n)
	}
	if stats.BlocksTotal != 0 {
		t.Fatalf("streaming fallback counted index blocks: %+v", stats)
	}

	// The writer stays usable after Sync: more records, then a real seal.
	for i := 50; i < 60; i++ {
		rec := Record{Type: RecScreen, TS: Timestamp(100 * i), ScreenOn: true}
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	n = 0
	var sealed ScanStats
	if _, err := ScanFile(path, ScanOptions{Range: TimeRange{From: 0, To: 1 << 62}}, &sealed, func(b *RecordBatch) error {
		n += b.Len()
		return nil
	}); err != nil {
		t.Fatalf("ScanFile sealed: %v", err)
	}
	if n != 60 {
		t.Fatalf("sealed scan got %d records, want 60", n)
	}
	if sealed.BlocksTotal == 0 {
		t.Fatal("sealed file should scan via the index")
	}
}

// TestCorruptInvertedBlockRange: a header or index entry whose firstTS
// exceeds its lastTS cannot come from the monotonic writers and must
// read as corrupt, in both the streaming and the seeking paths.
func TestCorruptInvertedBlockRange(t *testing.T) {
	data := craftColumnFile([]byte{byte(RecScreen), 0, 1, 0}, 1, 200, 100)
	if _, err := ReadAll(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("streaming decode of inverted range: got %v, want ErrCorrupt", err)
	}
	path := filepath.Join(t.TempDir(), "inv.metr3")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFileParallel(path, 4); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("indexed decode of inverted range: got %v, want ErrCorrupt", err)
	}
}
