package trace

// Per-record wire codec. The ingest protocol (internal/ingest) ships METR
// records as individual frames over TCP rather than as a METR file, so the
// record encoding — type byte plus varint-packed, delta-timestamped body,
// byte-identical to the region a METR file CRC covers — is exposed here as
// a stateful encoder/decoder pair. Framing (length prefix, CRC) is the
// transport's concern.

// RecordEncoder encodes records into self-contained frame bodies. Like the
// file Writer, timestamps are delta-encoded against the previously encoded
// record, so one encoder corresponds to one ordered stream.
type RecordEncoder struct {
	last    Timestamp
	scratch []byte
}

// NewRecordEncoder returns an encoder whose first record's timestamp is
// delta-encoded against start (use the trace start, as in the file header).
func NewRecordEncoder(start Timestamp) *RecordEncoder {
	return &RecordEncoder{last: start, scratch: make([]byte, 0, 2048)}
}

// Encode returns the frame body for r: the type byte followed by the
// varint-packed record body. The returned slice is reused by the next call.
func (e *RecordEncoder) Encode(r *Record) ([]byte, error) {
	b := append(e.scratch[:0], byte(r.Type))
	b, err := appendBody(b, r, e.last)
	if err != nil {
		return nil, err
	}
	e.scratch = b
	e.last = r.TS
	return b, nil
}

// RecordDecoder decodes frame bodies produced by RecordEncoder. One decoder
// corresponds to one stream: the timestamp delta chain advances only on
// successful decodes, so a rejected frame shifts no state.
type RecordDecoder struct {
	last Timestamp
	rec  Record
}

// NewRecordDecoder returns a decoder with the timestamp chain anchored at
// start (the value the peer's RecordEncoder was created with).
func NewRecordDecoder(start Timestamp) *RecordDecoder {
	return &RecordDecoder{last: start}
}

// Decode parses one frame body. The returned Record (and any Payload it
// carries, which aliases frame) is only valid until the next call.
func (d *RecordDecoder) Decode(frame []byte) (*Record, error) {
	if len(frame) == 0 {
		return nil, ErrTruncated
	}
	ts, err := decodeBody(RecordType(frame[0]), frame[1:], d.last, &d.rec)
	if err != nil {
		return nil, err
	}
	d.last = ts
	return &d.rec, nil
}
