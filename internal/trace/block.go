package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
)

// The METR-2 blocked container:
//
//	file     := "METR2\n" header block* index footer
//	header   := deviceLen:uvarint device:bytes start:varint
//	block    := 'B' ulen:uvarint clen:uvarint crc32c:uint32le
//	            firstTS:varint lastTS:varint count:uvarint payload:clen-bytes
//	payload  := DEFLATE(record*)
//	record   := type:byte len:uvarint body:bytes       (body as in v1)
//	index    := 'I' count:uvarint entry*
//	entry    := offsetDelta:uvarint ulen:uvarint clen:uvarint
//	            firstTS:varint lastTS:varint count:uvarint
//	footer   := indexLen:uint64le indexCRC32C:uint32le "2RTEM\n"
//
// Records are grouped into blocks of ~256 KiB uncompressed; each block is
// DEFLATE-compressed independently, CRC32C-protected (Castagnoli, over the
// compressed payload, so corruption is caught before inflating), and
// carries its own first/last timestamp and record count. The timestamp
// delta chain restarts at firstTS in every block, so blocks decode
// independently of one another — the property the parallel reader exploits.
//
// The index repeats every block header plus its file offset
// (delta-encoded), and the fixed-size footer names the index so a reader
// holding an io.ReaderAt can seek straight to it. Streaming readers ignore
// the index: blocks are self-describing, so NewReader decodes a METR-2
// file front to back without seeking. Per-record CRCs are dropped — the
// block CRC already covers every byte — which is what makes the in-block
// record framing cheaper than v1's.

var (
	magicBlocked = []byte("METR2\n")
	footerMagic  = []byte("2RTEM\n")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	// targetBlockSize is the uncompressed payload size at which the writer
	// cuts a block. 256 KiB keeps per-block DEFLATE dictionaries effective
	// while leaving hundreds of blocks per device-file for the parallel
	// reader to spread over workers (Guner & Kosar: transfer granularity is
	// the dominant throughput/energy lever; this is the on-disk analogue).
	targetBlockSize = 256 << 10

	// maxBlockLen is a sanity cap on both sides of a block, bounding
	// allocation when reading crafted or corrupt headers.
	maxBlockLen = 1 << 24

	// footerLen is the fixed trailer: index length, index CRC32C, magic.
	footerLen = 8 + 4 + 6

	blockTag = 'B'
	indexTag = 'I'
)

// BlockInfo describes one block of a METR-2 file, as recorded in the
// footer index.
type BlockInfo struct {
	Offset    int64 // file offset of the block tag byte
	CompLen   int   // compressed payload bytes
	UncompLen int   // uncompressed payload bytes
	First     Timestamp
	Last      Timestamp
	Count     int // records in the block
}

// BlockWriter streams records into a METR-2 blocked container. It
// satisfies the same Write/Flush/Count contract as Writer; Flush must be
// the final call (it writes the last partial block, the index and the
// footer).
type BlockWriter struct {
	w     io.Writer
	off   int64
	fw    *flate.Writer
	comp  bytes.Buffer
	raw   []byte // uncompressed record frames of the current block
	hdr   []byte
	first Timestamp
	last  Timestamp
	prev  Timestamp // last timestamp accepted across the whole file
	n     int
	count uint64
	index []BlockInfo
	err   error
}

// NewBlockWriter writes the METR-2 file header and returns a BlockWriter.
func NewBlockWriter(w io.Writer, device string, start Timestamp) (*BlockWriter, error) {
	if err := checkDeviceName(device); err != nil {
		return nil, err
	}
	hdr := append([]byte(nil), magicBlocked...)
	hdr = appendFileHeader(hdr, device, start)
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	fw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	return &BlockWriter{w: w, off: int64(len(hdr)), fw: fw,
		raw: make([]byte, 0, targetBlockSize+4096)}, nil
}

// Count returns the number of records written so far.
func (w *BlockWriter) Count() uint64 { return w.count }

// Write encodes one record into the current block, cutting a block when
// the uncompressed target size is reached. It returns the first error
// encountered and is a no-op afterwards.
func (w *BlockWriter) Write(r *Record) error {
	if w.err != nil {
		return w.err
	}
	// Monotonicity gate: block headers record positional first/last
	// timestamps, and range pushdown treats them as min/max when pruning
	// blocks. A record older than its predecessor would fall outside its
	// block's advertised range and silently vanish from windowed scans, so
	// reject it here (equal timestamps are fine). w.last cannot serve as
	// the reference: it doubles as the delta-encoding base and resets at
	// each block start.
	if w.count > 0 && r.TS < w.prev {
		w.err = fmt.Errorf("trace: record %d (ts=%d) precedes ts=%d: %w",
			w.count, r.TS, w.prev, ErrOutOfOrder)
		return w.err
	}
	if w.n == 0 {
		w.first = r.TS
		w.last = r.TS
	}
	raw, err := w.appendFrame(w.raw, r)
	if err != nil {
		w.err = err
		return err
	}
	w.raw = raw
	w.last = r.TS
	w.prev = r.TS
	w.n++
	w.count++
	if len(w.raw) >= targetBlockSize {
		if err := w.cutBlock(); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

// appendFrame appends one in-block record frame (type, len, body) to b.
func (w *BlockWriter) appendFrame(b []byte, r *Record) ([]byte, error) {
	body, err := appendBody(w.hdr[:0], r, w.last)
	if err != nil {
		return b, err
	}
	w.hdr = body // keep grown capacity
	b = append(b, byte(r.Type))
	b = binary.AppendUvarint(b, uint64(len(body)))
	return append(b, body...), nil
}

// cutBlock compresses and writes the accumulated records as one block.
func (w *BlockWriter) cutBlock() error {
	if w.n == 0 {
		return nil
	}
	w.comp.Reset()
	w.fw.Reset(&w.comp)
	if _, err := w.fw.Write(w.raw); err != nil {
		return err
	}
	if err := w.fw.Close(); err != nil {
		return err
	}
	payload := w.comp.Bytes()
	crc := crc32.Checksum(payload, castagnoli)

	hdr := append(w.hdr[:0], blockTag)
	hdr = binary.AppendUvarint(hdr, uint64(len(w.raw)))
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc)
	hdr = binary.AppendVarint(hdr, int64(w.first))
	hdr = binary.AppendVarint(hdr, int64(w.last))
	hdr = binary.AppendUvarint(hdr, uint64(w.n))
	w.hdr = hdr
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	w.index = append(w.index, BlockInfo{Offset: w.off, CompLen: len(payload),
		UncompLen: len(w.raw), First: w.first, Last: w.last, Count: w.n})
	w.off += int64(len(hdr) + len(payload))
	w.raw = w.raw[:0]
	w.n = 0
	return nil
}

// Flush writes the final partial block, the footer index and the trailer.
// It must be the last call on the writer.
func (w *BlockWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.cutBlock(); err != nil {
		w.err = err
		return err
	}
	idx := appendBlockIndex(w.hdr[:0], w.index, footerMagic)
	if _, err := w.w.Write(idx); err != nil {
		w.err = err
		return err
	}
	return nil
}

// appendBlockIndex appends the footer index and trailer shared by the
// blocked containers (METR-2 and METR-3); magic selects the trailer
// magic and therefore the format.
func appendBlockIndex(idx []byte, index []BlockInfo, magic []byte) []byte {
	idx = append(idx, indexTag)
	idx = binary.AppendUvarint(idx, uint64(len(index)))
	prev := int64(0)
	for _, b := range index {
		idx = binary.AppendUvarint(idx, uint64(b.Offset-prev))
		prev = b.Offset
		idx = binary.AppendUvarint(idx, uint64(b.UncompLen))
		idx = binary.AppendUvarint(idx, uint64(b.CompLen))
		idx = binary.AppendVarint(idx, int64(b.First))
		idx = binary.AppendVarint(idx, int64(b.Last))
		idx = binary.AppendUvarint(idx, uint64(b.Count))
	}
	idx = binary.LittleEndian.AppendUint64(idx, uint64(len(idx)))
	idx = binary.LittleEndian.AppendUint32(idx, crc32.Checksum(idx[:len(idx)-8], castagnoli))
	return append(idx, magic...)
}

// blockDecoder is the streaming (non-seeking) METR-2 decoder behind
// Reader.Next: it inflates one block at a time into a reused buffer and
// serves records from it, allocation-free per record at steady state.
type blockDecoder struct {
	br      *bufio.Reader
	fr      io.ReadCloser
	compRd  *bytes.Reader
	comp    []byte
	raw     []byte
	pos     int
	left    int // records remaining in the current block
	last    Timestamp
	blkLast Timestamp
	rec     Record
	done    bool
}

func newBlockDecoder(br *bufio.Reader) *blockDecoder {
	return &blockDecoder{br: br, compRd: bytes.NewReader(nil)}
}

// blockHeader is a parsed per-block header.
type blockHeader struct {
	ulen, clen int
	crc        uint32
	first      Timestamp
	lastTS     Timestamp
	count      int
}

// readBlockHeader parses the post-tag block header fields.
func readBlockHeader(br *bufio.Reader) (blockHeader, error) {
	var h blockHeader
	ulen, err := binary.ReadUvarint(br)
	if err != nil {
		return h, mapReadErr(err, ErrTruncated, "reading block header")
	}
	clen, err := binary.ReadUvarint(br)
	if err != nil {
		return h, mapReadErr(err, ErrTruncated, "reading block header")
	}
	if ulen > maxBlockLen || clen > maxBlockLen {
		return h, ErrCorrupt
	}
	var crcb [4]byte
	if _, err := io.ReadFull(br, crcb[:]); err != nil {
		return h, mapReadErr(err, ErrTruncated, "reading block header")
	}
	first, err := binary.ReadVarint(br)
	if err != nil {
		return h, mapReadErr(err, ErrTruncated, "reading block header")
	}
	last, err := binary.ReadVarint(br)
	if err != nil {
		return h, mapReadErr(err, ErrTruncated, "reading block header")
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return h, mapReadErr(err, ErrTruncated, "reading block header")
	}
	// Every record frame is at least 2 bytes, and every uncompressed byte
	// must belong to a declared record (trailing undeclared bytes are
	// rejected after decoding, so a zero-count block cannot smuggle any).
	if count > ulen/2+1 || (count == 0 && ulen != 0) {
		return h, ErrCorrupt
	}
	// The writers enforce non-decreasing timestamps, so a header whose
	// first exceeds its last was never produced by them — reject rather
	// than let an inverted range corrupt pushdown decisions downstream.
	if count > 0 && first > last {
		return h, ErrCorrupt
	}
	h.ulen, h.clen, h.crc = int(ulen), int(clen), binary.LittleEndian.Uint32(crcb[:])
	h.first, h.lastTS, h.count = Timestamp(first), Timestamp(last), int(count)
	return h, nil
}

// inflateBlock verifies the CRC of comp and inflates it into raw (reusing
// fr via flate.Resetter), returning exactly ulen bytes.
func (d *blockDecoder) inflateBlock(h blockHeader) error {
	if crc32.Checksum(d.comp[:h.clen], castagnoli) != h.crc {
		return ErrCorrupt
	}
	d.compRd.Reset(d.comp[:h.clen])
	if d.fr == nil {
		d.fr = flate.NewReader(d.compRd)
	} else if err := d.fr.(flate.Resetter).Reset(d.compRd, nil); err != nil {
		return err
	}
	if cap(d.raw) < h.ulen {
		d.raw = make([]byte, h.ulen)
	}
	d.raw = d.raw[:h.ulen]
	if _, err := io.ReadFull(d.fr, d.raw); err != nil {
		return mapReadErr(err, ErrCorrupt, "inflating block")
	}
	return nil
}

// next returns the next record in file order, loading the next block when
// the current one is exhausted.
func (d *blockDecoder) next() (*Record, error) {
	for d.left == 0 {
		if d.done {
			return nil, io.EOF
		}
		tag, err := d.br.ReadByte()
		if err == io.EOF {
			// Missing index: tolerated on the streaming path — the blocks
			// themselves were all CRC-verified.
			return nil, io.EOF
		}
		if err != nil {
			return nil, mapReadErr(err, ErrTruncated, "reading block tag")
		}
		if tag == indexTag {
			// The streaming reader does not need the index; drain so the
			// underlying reader is left at EOF like the v1 path.
			d.done = true
			if _, err := io.Copy(io.Discard, d.br); err != nil && ioFailure(err) {
				return nil, fmt.Errorf("trace: draining index: %w", err)
			}
			return nil, io.EOF
		}
		if tag != blockTag {
			return nil, ErrCorrupt
		}
		h, err := readBlockHeader(d.br)
		if err != nil {
			return nil, err
		}
		if cap(d.comp) < h.clen {
			d.comp = make([]byte, h.clen)
		}
		if _, err := io.ReadFull(d.br, d.comp[:h.clen]); err != nil {
			return nil, mapReadErr(err, ErrTruncated, "reading block payload")
		}
		if err := d.inflateBlock(h); err != nil {
			return nil, err
		}
		d.pos = 0
		d.left = h.count
		d.last = h.first
		d.blkLast = h.lastTS
	}

	rec, ts, n, err := decodeFrame(d.raw[d.pos:], d.last, &d.rec)
	if err != nil {
		return nil, err
	}
	d.pos += n
	d.last = ts
	d.left--
	// The last record must land exactly on the block's declared end state:
	// a timestamp mismatch or leftover undeclared bytes mean the block was
	// crafted or mis-framed.
	if d.left == 0 && (ts != d.blkLast || d.pos != len(d.raw)) {
		return nil, ErrCorrupt
	}
	return rec, nil
}

// decodeFrame parses one in-block record frame (type, len, body) from b,
// returning the record, its absolute timestamp and the frame length.
func decodeFrame(b []byte, last Timestamp, rec *Record) (*Record, Timestamp, int, error) {
	if len(b) == 0 {
		return nil, 0, 0, ErrTruncated
	}
	typ := RecordType(b[0])
	blen, n := binary.Uvarint(b[1:])
	if n <= 0 || blen > maxRecordLen {
		return nil, 0, 0, ErrCorrupt
	}
	bodyStart := 1 + n
	if uint64(len(b)-bodyStart) < blen {
		return nil, 0, 0, ErrTruncated
	}
	body := b[bodyStart : bodyStart+int(blen)]
	ts, err := decodeBody(typ, body, last, rec)
	if err != nil {
		return nil, 0, 0, err
	}
	return rec, ts, bodyStart + int(blen), nil
}

// ReadBlockIndex reads the footer index of a blocked container (METR-2
// or METR-3) via ra. It returns the device, start timestamp and
// per-block index, or ok=false if the file is not a blocked container
// or carries no (intact) footer — the caller should fall back to
// streaming.
func ReadBlockIndex(ra io.ReaderAt, size int64) (device string, start Timestamp, blocks []BlockInfo, ok bool, err error) {
	device, start, blocks, _, ok, err = readBlockIndexFmt(ra, size)
	return device, start, blocks, ok, err
}

// readBlockIndexFmt is ReadBlockIndex plus the sniffed container
// format, which selects the per-block decoder on the parallel path.
func readBlockIndexFmt(ra io.ReaderAt, size int64) (device string, start Timestamp, blocks []BlockInfo, format Format, ok bool, err error) {
	var m [6]byte
	if size < int64(len(magicBlocked))+footerLen {
		return "", 0, nil, 0, false, nil
	}
	if _, err := ra.ReadAt(m[:], 0); err != nil {
		return "", 0, nil, 0, false, fmt.Errorf("trace: reading magic: %w", err)
	}
	var wantFooter []byte
	switch {
	case bytes.Equal(m[:], magicBlocked):
		format, wantFooter = FormatBlocked, footerMagic
	case bytes.Equal(m[:], magicColumnar):
		format, wantFooter = FormatColumnar, footerMagicColumnar
	default:
		return "", 0, nil, 0, false, nil
	}
	var foot [footerLen]byte
	if _, err := ra.ReadAt(foot[:], size-footerLen); err != nil {
		return "", 0, nil, 0, false, fmt.Errorf("trace: reading footer: %w", err)
	}
	if !bytes.Equal(foot[12:], wantFooter) {
		return "", 0, nil, 0, false, nil // truncated or still being written
	}
	idxLen := int64(binary.LittleEndian.Uint64(foot[:8]))
	wantCRC := binary.LittleEndian.Uint32(foot[8:12])
	if idxLen <= 0 || idxLen > size-footerLen || idxLen > maxBlockLen {
		return "", 0, nil, 0, false, ErrCorrupt
	}
	idx := make([]byte, idxLen)
	if _, err := ra.ReadAt(idx, size-footerLen-idxLen); err != nil {
		return "", 0, nil, 0, false, fmt.Errorf("trace: reading index: %w", err)
	}
	if crc32.Checksum(idx, castagnoli) != wantCRC {
		return "", 0, nil, 0, false, fmt.Errorf("trace: index crc mismatch: %w", ErrCorrupt)
	}
	if idx[0] != indexTag {
		return "", 0, nil, 0, false, ErrCorrupt
	}
	p := idx[1:]
	readU := func() (uint64, bool) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, false
		}
		p = p[n:]
		return v, true
	}
	readS := func() (int64, bool) {
		v, n := binary.Varint(p)
		if n <= 0 {
			return 0, false
		}
		p = p[n:]
		return v, true
	}
	// Each index entry is at least 6 bytes (six single-byte varints), so the
	// remaining index bytes bound the entry count — the pre-allocation below
	// can never exceed the index's own size.
	count, okc := readU()
	if !okc || count > uint64(idxLen)/6 {
		return "", 0, nil, 0, false, ErrCorrupt
	}
	// dataEnd is the first byte past the last block (the index tag). Every
	// field below comes from the (CRC-intact but possibly crafted) index, so
	// offsets must be strictly increasing within [1, dataEnd) and record
	// counts must satisfy the same minimum-2-bytes-per-frame invariant the
	// block headers enforce — otherwise a tiny file could declare arbitrary
	// offsets/counts and drive unbounded allocations downstream.
	dataEnd := size - footerLen - idxLen
	blocks = make([]BlockInfo, 0, count)
	prev := int64(0)
	prevLast := Timestamp(math.MinInt64)
	for i := uint64(0); i < count; i++ {
		od, ok1 := readU()
		ul, ok2 := readU()
		cl, ok3 := readU()
		ft, ok4 := readS()
		lt, ok5 := readS()
		rc, ok6 := readU()
		if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || !ok6 ||
			ul > maxBlockLen || cl > maxBlockLen || rc > ul/2+1 {
			return "", 0, nil, 0, false, ErrCorrupt
		}
		// Writers enforce non-decreasing timestamps, so first > last (or a
		// block starting before its predecessor ended) is a crafted index;
		// pushdown pruning relies on these ranges being honest min/max.
		if rc > 0 {
			if ft > lt || Timestamp(ft) < prevLast {
				return "", 0, nil, 0, false, ErrCorrupt
			}
			prevLast = Timestamp(lt)
		}
		if od == 0 || od >= uint64(dataEnd) || int64(od) > dataEnd-1-prev {
			return "", 0, nil, 0, false, ErrCorrupt
		}
		prev += int64(od)
		blocks = append(blocks, BlockInfo{Offset: prev, UncompLen: int(ul), CompLen: int(cl),
			First: Timestamp(ft), Last: Timestamp(lt), Count: int(rc)})
	}

	// Header: the first block (or the index, for an empty file) bounds it.
	hdrEnd := size - footerLen - idxLen
	if len(blocks) > 0 {
		hdrEnd = blocks[0].Offset
	}
	hdr := make([]byte, hdrEnd)
	if _, err := ra.ReadAt(hdr, 0); err != nil {
		return "", 0, nil, 0, false, fmt.Errorf("trace: reading header: %w", err)
	}
	r, err := newReader(bytes.NewReader(append(hdr, idx...)), 0)
	if err != nil {
		return "", 0, nil, 0, false, err
	}
	return r.Device(), r.Start(), blocks, format, true, nil
}

// blockScratch is the pooled per-block decode state shared by the parallel
// workers: the raw file-span buffer plus a reusable inflater. Pooling keeps
// the steady-state decode loop free of per-block reader/buffer churn.
type blockScratch struct {
	buf    []byte
	compRd *bytes.Reader
	fr     io.ReadCloser
}

var blockScratchPool = sync.Pool{
	New: func() any { return &blockScratch{compRd: bytes.NewReader(nil)} },
}

// parseBlockHeader parses a block header from b (starting after the tag
// byte), returning the header and its encoded length.
func parseBlockHeader(b []byte) (blockHeader, int, error) {
	var h blockHeader
	p := b
	ulen, n1 := binary.Uvarint(p)
	if n1 <= 0 {
		return h, 0, ErrTruncated
	}
	p = p[n1:]
	clen, n2 := binary.Uvarint(p)
	if n2 <= 0 {
		return h, 0, ErrTruncated
	}
	p = p[n2:]
	if ulen > maxBlockLen || clen > maxBlockLen {
		return h, 0, ErrCorrupt
	}
	if len(p) < 4 {
		return h, 0, ErrTruncated
	}
	crc := binary.LittleEndian.Uint32(p)
	p = p[4:]
	first, n3 := binary.Varint(p)
	if n3 <= 0 {
		return h, 0, ErrTruncated
	}
	p = p[n3:]
	last, n4 := binary.Varint(p)
	if n4 <= 0 {
		return h, 0, ErrTruncated
	}
	p = p[n4:]
	count, n5 := binary.Uvarint(p)
	if n5 <= 0 {
		return h, 0, ErrTruncated
	}
	p = p[n5:]
	if count > ulen/2+1 || (count == 0 && ulen != 0) {
		return h, 0, ErrCorrupt
	}
	// Same ordering invariant readBlockHeader enforces: an inverted
	// first/last range cannot come from the monotonic writers.
	if count > 0 && first > last {
		return h, 0, ErrCorrupt
	}
	h.ulen, h.clen, h.crc = int(ulen), int(clen), crc
	h.first, h.lastTS, h.count = Timestamp(first), Timestamp(last), int(count)
	return h, len(b) - len(p), nil
}

// decodeBlockAt reads, verifies and fully decodes one indexed block from
// ra into dst (which must have len == b.Count). Record payloads alias a
// freshly inflated buffer owned by the results, so they stay valid
// indefinitely (no per-record copy).
func decodeBlockAt(ra io.ReaderAt, b BlockInfo, next int64, dst []Record) error {
	span := next - b.Offset
	if span <= 0 || span > maxBlockLen+64 {
		return ErrCorrupt
	}
	sc := blockScratchPool.Get().(*blockScratch)
	defer blockScratchPool.Put(sc)
	if cap(sc.buf) < int(span) {
		sc.buf = make([]byte, span)
	}
	buf := sc.buf[:span]
	if _, err := ra.ReadAt(buf, b.Offset); err != nil {
		return fmt.Errorf("trace: reading block at %d: %w", b.Offset, err)
	}
	if buf[0] != blockTag {
		return ErrCorrupt
	}
	h, hdrLen, err := parseBlockHeader(buf[1:])
	if err != nil {
		return err
	}
	if h.clen != b.CompLen || h.ulen != b.UncompLen || h.count != b.Count {
		return fmt.Errorf("trace: block header disagrees with index at offset %d: %w", b.Offset, ErrCorrupt)
	}
	if len(buf) < 1+hdrLen+h.clen {
		return ErrTruncated
	}
	comp := buf[1+hdrLen : 1+hdrLen+h.clen]
	if crc32.Checksum(comp, castagnoli) != h.crc {
		return ErrCorrupt
	}
	sc.compRd.Reset(comp)
	if sc.fr == nil {
		sc.fr = flate.NewReader(sc.compRd)
	} else if err := sc.fr.(flate.Resetter).Reset(sc.compRd, nil); err != nil {
		return err
	}
	raw := make([]byte, h.ulen) // retained: record payloads alias it
	if _, err := io.ReadFull(sc.fr, raw); err != nil {
		return mapReadErr(err, ErrCorrupt, "inflating block")
	}
	if len(dst) != h.count {
		return ErrCorrupt
	}
	last := h.first
	pos := 0
	for i := 0; i < h.count; i++ {
		_, ts, n, err := decodeFrame(raw[pos:], last, &dst[i])
		if err != nil {
			return err
		}
		pos += n
		last = ts
	}
	if last != h.lastTS || pos != len(raw) {
		return ErrCorrupt
	}
	return nil
}

// decodeArena holds the two large per-file buffers the parallel METR-3
// reader fills: the record slice and the byte arena the decoded payloads
// alias. Buffers are recycled through decodeArenaPool by
// DeviceTrace.Recycle, which makes a steady-state decode loop (one file
// after another, as core.OpenParallel runs it) allocation-free for the
// dominant buffers. Reuse without re-zeroing is safe because every byte
// of the arena and every record is fully written before the DeviceTrace
// is returned: lz.Decompress fills each block window exactly, and block
// materialisation assigns every record.
type decodeArena struct {
	recs  []Record
	arena []byte
}

var decodeArenaPool = sync.Pool{New: func() any { return new(decodeArena) }}

// ReadFileParallel reads a trace file with up to workers blocks decoded
// concurrently. METR-2 and METR-3 files with an intact footer index are
// decoded block-parallel (record order, and therefore the resulting
// DeviceTrace, is identical to sequential reading); v1 containers — and
// blocked files whose index is missing — fall back to the streaming
// path.
func ReadFileParallel(path string, workers int) (*DeviceTrace, error) {
	if workers <= 1 {
		return ReadFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	device, start, blocks, format, ok, err := readBlockIndexFmt(f, st.Size())
	if err != nil {
		return nil, err
	}
	if !ok {
		return ReadAll(f)
	}

	// Block spans: each block ends where the next begins; the last ends at
	// the index.
	idxOff := st.Size() // recomputed below from the footer
	var foot [footerLen]byte
	if _, err := f.ReadAt(foot[:], st.Size()-footerLen); err != nil {
		return nil, err
	}
	idxOff = st.Size() - footerLen - int64(binary.LittleEndian.Uint64(foot[:8]))

	// The index gives every block's record count up front, so all blocks
	// decode straight into disjoint windows of one shared arena — workers
	// never allocate result slices and there is no post-decode assembly
	// copy. Record order is identical to sequential reading.
	offs := make([]int, len(blocks)+1)
	for i, b := range blocks {
		offs[i+1] = offs[i] + b.Count
	}

	// The columnar decoder also gets one shared byte arena, sliced into
	// per-block windows sized from the index: each block decompresses
	// straight into its window and the decoded payloads alias it, so one
	// large allocation replaces a buffer per block. Both the arena and
	// the record slice come from decodeArenaPool — every byte is
	// overwritten before the trace is returned, so stale pool contents
	// never escape.
	var recs []Record
	var arena []byte
	var uoffs []int
	var pooled *decodeArena
	if format == FormatColumnar {
		uoffs = make([]int, len(blocks)+1)
		for i, b := range blocks {
			uoffs[i+1] = uoffs[i] + b.UncompLen
		}
		pooled = decodeArenaPool.Get().(*decodeArena)
		pooled.recs = sliceCap(pooled.recs, offs[len(blocks)])
		pooled.arena = sliceCap(pooled.arena, uoffs[len(blocks)])
		recs, arena = pooled.recs, pooled.arena
	} else {
		recs = make([]Record, offs[len(blocks)])
	}
	decodeAt := func(i int, next int64) error {
		if format == FormatColumnar {
			return decodeColumnBlockAt(f, blocks[i], next, recs[offs[i]:offs[i+1]], arena[uoffs[i]:uoffs[i+1]])
		}
		return decodeBlockAt(f, blocks[i], next, recs[offs[i]:offs[i+1]])
	}

	errs := make([]error, len(blocks))
	if workers > len(blocks) {
		workers = len(blocks)
	}
	var nextBlock atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextBlock.Add(1)) - 1
				if i >= len(blocks) {
					return
				}
				next := idxOff
				if i+1 < len(blocks) {
					next = blocks[i+1].Offset
				}
				errs[i] = decodeAt(i, next)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			if pooled != nil {
				decodeArenaPool.Put(pooled)
			}
			return nil, err
		}
	}

	dt := &DeviceTrace{Device: device, Start: start, Apps: NewAppTable(), Records: recs, pooled: pooled}
	for i := range recs {
		if recs[i].Type == RecAppName {
			dt.Apps.Register(recs[i].App, recs[i].AppName)
		}
	}
	return dt, nil
}
