package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// AppTable maps collector app IDs to package names and back. The generator
// fills one per device; the reader rebuilds it from RecAppName records.
type AppTable struct {
	names []string
	ids   map[string]uint32
}

// NewAppTable returns an empty table.
func NewAppTable() *AppTable {
	return &AppTable{ids: make(map[string]uint32)}
}

// Intern returns the ID for name, registering it if new.
func (t *AppTable) Intern(name string) uint32 {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := uint32(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

// Register records an explicit (id, name) pair from a RecAppName record.
// Sparse IDs grow the table with empty names in between.
func (t *AppTable) Register(id uint32, name string) {
	for uint32(len(t.names)) <= id {
		t.names = append(t.names, "")
	}
	t.names[id] = name
	t.ids[name] = id
}

// Name returns the package name for id, or "app<id>" if unregistered.
func (t *AppTable) Name(id uint32) string {
	if int(id) < len(t.names) && t.names[id] != "" {
		return t.names[id]
	}
	return fmt.Sprintf("app%d", id)
}

// Len returns the number of registered names.
func (t *AppTable) Len() int { return len(t.names) }

// Names returns all registered names in ID order.
func (t *AppTable) Names() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// DeviceTrace is an in-memory trace for one device: the decoded records
// (with payloads copied so they remain valid) plus the app table. Small
// studies and tests use it directly; the full pipeline streams instead.
type DeviceTrace struct {
	Device  string
	Start   Timestamp
	Apps    *AppTable
	Records []Record

	// pooled is set when Records (and the arena its payloads alias) were
	// drawn from the parallel reader's buffer pool; Recycle returns them.
	pooled *decodeArena
}

// Recycle returns the trace's decode buffers to the internal pool so the
// next parallel read can reuse them without reallocating or re-zeroing.
// After Recycle the trace's Records — including their payloads — are
// invalid; the app table and header fields stay usable. Calling it on a
// trace that owns its records (sequential reads, synthetic traces) is a
// no-op. Pipelines that fold a trace into accumulators and move on, like
// core.OpenParallel, call this to make steady-state decoding
// allocation-free for the two dominant buffers.
func (d *DeviceTrace) Recycle() {
	p := d.pooled
	if p == nil {
		return
	}
	d.pooled = nil
	d.Records = nil
	decodeArenaPool.Put(p)
}

// ReadAll reads an entire METR stream into memory, copying packet payloads.
func ReadAll(r io.Reader) (*DeviceTrace, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	dt := &DeviceTrace{Device: tr.Device(), Start: tr.Start(), Apps: NewAppTable()}
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return dt, nil
		}
		if err != nil {
			return nil, err
		}
		cp := *rec
		if rec.Type == RecPacket {
			cp.Payload = append([]byte(nil), rec.Payload...)
		}
		if rec.Type == RecAppName {
			dt.Apps.Register(rec.App, rec.AppName)
		}
		dt.Records = append(dt.Records, cp)
	}
}

// ReadFile reads a METR file from disk.
func ReadFile(path string) (*DeviceTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}

// RecordWriter is the shared contract of the container writers (Writer,
// BlockWriter): stream records, then Flush exactly once to finish the file.
type RecordWriter interface {
	Write(*Record) error
	Flush() error
	Count() uint64
}

// NewFormatWriter returns a RecordWriter producing the given container.
func NewFormatWriter(w io.Writer, format Format, device string, start Timestamp) (RecordWriter, error) {
	switch format {
	case FormatFlat:
		return NewWriter(w, device, start)
	case FormatDeflate:
		return NewCompressedWriter(w, device, start)
	case FormatBlocked:
		return NewBlockWriter(w, device, start)
	case FormatColumnar:
		return NewColumnWriter(w, device, start)
	default:
		return nil, fmt.Errorf("trace: unknown format %v", format)
	}
}

// Serialize writes the whole DeviceTrace as a METR stream.
func (dt *DeviceTrace) Serialize(w io.Writer) error {
	return dt.SerializeFormat(w, FormatFlat)
}

// SerializeCompressed writes the trace in the DEFLATE-compressed container.
func (dt *DeviceTrace) SerializeCompressed(w io.Writer) error {
	return dt.SerializeFormat(w, FormatDeflate)
}

// SerializeBlocked writes the trace in the METR-2 blocked container.
func (dt *DeviceTrace) SerializeBlocked(w io.Writer) error {
	return dt.SerializeFormat(w, FormatBlocked)
}

// SerializeColumnar writes the trace in the METR-3 columnar container.
func (dt *DeviceTrace) SerializeColumnar(w io.Writer) error {
	return dt.SerializeFormat(w, FormatColumnar)
}

// SerializeFormat writes the trace in the given container format.
func (dt *DeviceTrace) SerializeFormat(w io.Writer, format Format) error {
	tw, err := NewFormatWriter(w, format, dt.Device, dt.Start)
	if err != nil {
		return err
	}
	return dt.writeRecords(tw)
}

func (dt *DeviceTrace) writeRecords(tw RecordWriter) error {
	for i := range dt.Records {
		if err := tw.Write(&dt.Records[i]); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// DetectFileFormat sniffs the container format of a trace file from its
// magic bytes without decoding it.
func DetectFileFormat(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var m [6]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return 0, mapReadErr(err, ErrBadMagic, "reading magic")
	}
	switch string(m[:]) {
	case string(magic):
		return FormatFlat, nil
	case string(magicFlat):
		return FormatDeflate, nil
	case string(magicBlocked):
		return FormatBlocked, nil
	case string(magicColumnar):
		return FormatColumnar, nil
	default:
		return 0, ErrBadMagic
	}
}

// Encode serialises the trace to a byte slice.
func (dt *DeviceTrace) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := dt.Serialize(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SortByTime stably sorts records by timestamp. Generators emitting from
// several app models call this before writing.
func (dt *DeviceTrace) SortByTime() {
	sort.SliceStable(dt.Records, func(i, j int) bool {
		return dt.Records[i].TS < dt.Records[j].TS
	})
}

// Packets returns the indices of packet records, in order.
func (dt *DeviceTrace) Packets() []int {
	var out []int
	for i := range dt.Records {
		if dt.Records[i].Type == RecPacket {
			out = append(out, i)
		}
	}
	return out
}

// jsonRecord is the NDJSON export shape.
type jsonRecord struct {
	Type   string  `json:"type"`
	TS     int64   `json:"ts_us"`
	App    string  `json:"app,omitempty"`
	Dir    string  `json:"dir,omitempty"`
	Net    string  `json:"net,omitempty"`
	State  string  `json:"state,omitempty"`
	Bytes  int     `json:"bytes,omitempty"`
	UIKind uint8   `json:"ui_kind,omitempty"`
	On     *bool   `json:"screen_on,omitempty"`
	Sec    float64 `json:"t_rel_s"`
}

// ExportNDJSON writes one JSON object per record, for inspection with
// standard text tooling. Packet payload bytes are summarised by length.
func (dt *DeviceTrace) ExportNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range dt.Records {
		r := &dt.Records[i]
		jr := jsonRecord{Type: r.Type.String(), TS: int64(r.TS), Sec: r.TS.Sub(dt.Start)}
		switch r.Type {
		case RecPacket:
			jr.App = dt.Apps.Name(r.App)
			jr.Dir = r.Dir.String()
			jr.Net = r.Net.String()
			jr.State = r.State.String()
			jr.Bytes = len(r.Payload)
		case RecProcState:
			jr.App = dt.Apps.Name(r.App)
			jr.State = r.State.String()
		case RecUIEvent:
			jr.App = dt.Apps.Name(r.App)
			jr.UIKind = uint8(r.UIKind)
		case RecScreen:
			on := r.ScreenOn
			jr.On = &on
		case RecAppName:
			jr.App = r.AppName
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	return nil
}

// Fleet is a set of device trace files comprising one study dataset.
type Fleet struct {
	Dir   string
	Paths []string // sorted METR file paths
}

// OpenFleet lists the *.metr files in dir.
func OpenFleet(dir string) (*Fleet, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.metr"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("trace: no .metr files in %s", dir)
	}
	sort.Strings(paths)
	return &Fleet{Dir: dir, Paths: paths}, nil
}

// EachDevice loads each device trace in turn and invokes fn. Traces are
// loaded one at a time so a fleet larger than memory still processes.
func (f *Fleet) EachDevice(fn func(*DeviceTrace) error) error {
	for _, p := range f.Paths {
		dt, err := ReadFile(p)
		if err != nil {
			return fmt.Errorf("trace: reading %s: %w", p, err)
		}
		if err := fn(dt); err != nil {
			return err
		}
	}
	return nil
}

// FilterApp returns a copy of the trace containing only records belonging
// to the given app (screen records, which are device-wide, are kept).
func (dt *DeviceTrace) FilterApp(app uint32) *DeviceTrace {
	out := &DeviceTrace{Device: dt.Device, Start: dt.Start, Apps: dt.Apps}
	for i := range dt.Records {
		r := dt.Records[i]
		switch r.Type {
		case RecScreen:
			out.Records = append(out.Records, r)
		case RecAppName:
			if r.App == app {
				out.Records = append(out.Records, r)
			}
		default:
			if r.App == app {
				out.Records = append(out.Records, r)
			}
		}
	}
	return out
}

// Window returns a copy of the trace restricted to records with
// from <= TS < to. App-name registrations are always kept so the table
// survives.
func (dt *DeviceTrace) Window(from, to Timestamp) *DeviceTrace {
	out := &DeviceTrace{Device: dt.Device, Start: from, Apps: dt.Apps}
	for i := range dt.Records {
		r := dt.Records[i]
		if r.Type == RecAppName || (r.TS >= from && r.TS < to) {
			out.Records = append(out.Records, r)
		}
	}
	return out
}
