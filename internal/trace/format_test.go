package trace

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"netenergy/internal/rng"
)

func sampleRecords() []Record {
	return []Record{
		{Type: RecAppName, TS: 1000, App: 0, AppName: "com.example.social"},
		{Type: RecAppName, TS: 1000, App: 1, AppName: "com.android.chrome"},
		{Type: RecScreen, TS: 1500, ScreenOn: true},
		{Type: RecUIEvent, TS: 2000, App: 1, UIKind: UILaunch},
		{Type: RecProcState, TS: 2001, App: 1, State: StateForeground},
		{Type: RecPacket, TS: 2500, App: 1, Dir: DirUp, Net: NetCellular,
			State: StateForeground, Payload: []byte{0x45, 0, 0, 20, 1, 2, 3}},
		{Type: RecPacket, TS: 2600, App: 0, Dir: DirDown, Net: NetWiFi,
			State: StateService, Payload: bytes.Repeat([]byte{7}, 1400)},
		{Type: RecProcState, TS: 9000, App: 1, State: StateBackground},
		{Type: RecScreen, TS: 9500, ScreenOn: false},
	}
}

func writeAll(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "device-00", 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	recs := sampleRecords()
	data := writeAll(t, recs)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Device() != "device-00" || r.Start() != 1000 {
		t.Fatalf("header: device=%q start=%d", r.Device(), r.Start())
	}
	for i := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want := recs[i]
		if got.Type != want.Type || got.TS != want.TS || got.App != want.App ||
			got.AppName != want.AppName || got.Dir != want.Dir || got.Net != want.Net ||
			got.State != want.State || got.UIKind != want.UIKind || got.ScreenOn != want.ScreenOn {
			t.Errorf("record %d mismatch:\n got %v\nwant %v", i, got, want)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("record %d payload mismatch: %d vs %d bytes", i, len(got.Payload), len(want.Payload))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestTimestampDeltaEncoding(t *testing.T) {
	// Out-of-order timestamps (negative deltas) must round-trip too.
	recs := []Record{
		{Type: RecScreen, TS: 5000, ScreenOn: true},
		{Type: RecScreen, TS: 4000, ScreenOn: false},
		{Type: RecScreen, TS: 6000, ScreenOn: true},
	}
	data := writeAll(t, recs)
	r, _ := NewReader(bytes.NewReader(data))
	for i, want := range []Timestamp{5000, 4000, 6000} {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got.TS != want {
			t.Errorf("record %d TS = %d, want %d", i, got.TS, want)
		}
	}
}

// nestedContainer builds a crafted file whose DEFLATE payload opens with
// another compressed-container magic — the input that used to nest flate
// readers without bound.
func nestedContainer(depth int, inner []byte) []byte {
	data := inner
	for i := 0; i < depth; i++ {
		var buf bytes.Buffer
		buf.Write([]byte("METZ1\n"))
		fw, _ := flate.NewWriter(&buf, flate.BestSpeed)
		fw.Write(data) //nolint:errcheck
		fw.Close()     //nolint:errcheck
		data = buf.Bytes()
	}
	return data
}

func TestNestedContainerRejected(t *testing.T) {
	// One compression layer is the format (v1-deflate)...
	valid := nestedContainer(1, writeAll(t, sampleRecords()))
	if _, err := NewReader(bytes.NewReader(valid)); err != nil {
		t.Fatalf("single-layer container rejected: %v", err)
	}
	// ...any deeper nesting is crafted or corrupt and must be refused, not
	// followed.
	for depth := 2; depth <= 5; depth++ {
		data := nestedContainer(depth, writeAll(t, sampleRecords()))
		_, err := NewReader(bytes.NewReader(data))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("depth %d: err = %v, want ErrCorrupt", depth, err)
		}
	}
	// A blocked container inside a compressed one is equally malformed.
	var inner bytes.Buffer
	bw, err := NewBlockWriter(&inner, "d", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(bytes.NewReader(nestedContainer(1, inner.Bytes()))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("blocked-in-compressed: err = %v, want ErrCorrupt", err)
	}
}

// failAfterReader serves its remaining bytes, then fails with err instead
// of EOF — a stand-in for a disk read failing mid-stream.
type failAfterReader struct {
	data []byte
	err  error
}

func (r *failAfterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	k := copy(p, r.data)
	r.data = r.data[k:]
	return k, nil
}

func TestIOErrorNotCollapsed(t *testing.T) {
	errDisk := errors.New("simulated disk failure")
	data := writeAll(t, sampleRecords())

	// Failure while reading the header: the underlying error must be
	// reachable with errors.Is, and must NOT read as corruption.
	for _, cut := range []int{2, 8, 14} {
		_, err := NewReader(&failAfterReader{data: data[:cut], err: errDisk})
		if !errors.Is(err, errDisk) {
			t.Fatalf("cut=%d: err = %v, want wrapped errDisk", cut, err)
		}
		if errors.Is(err, ErrBadMagic) || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: I/O failure reported as corruption: %v", cut, err)
		}
	}

	// Failure mid-record: same contract on the Next path.
	r, err := NewReader(&failAfterReader{data: data[:len(data)-10], err: errDisk})
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := r.Next()
		if err == nil {
			continue
		}
		if !errors.Is(err, errDisk) {
			t.Fatalf("Next: err = %v, want wrapped errDisk", err)
		}
		if errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt) {
			t.Fatalf("Next: I/O failure reported as corruption: %v", err)
		}
		break
	}

	// Truncation (EOF-shaped) still reads as the format errors, unchanged.
	if _, err := NewReader(bytes.NewReader(data[:3])); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("short magic: err = %v, want ErrBadMagic", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOTMETR")); err != ErrBadMagic {
		t.Errorf("bad magic: %v", err)
	}
	if _, err := NewReader(strings.NewReader("")); err != ErrBadMagic {
		t.Errorf("empty file: %v", err)
	}
}

func TestCorruptRecordDetected(t *testing.T) {
	data := writeAll(t, sampleRecords())
	// Flip one byte somewhere after the header in each trial; reading must
	// produce ErrCorrupt/ErrTruncated (or a clean earlier stop), never a
	// silently wrong record and never a panic.
	headerLen := 6 + 1 + len("device-00") + 2
	for pos := headerLen; pos < len(data); pos += 7 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0xff
		r, err := NewReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		for {
			_, err := r.Next()
			if err == io.EOF || err == ErrCorrupt || err == ErrTruncated {
				break
			}
			if err != nil {
				break
			}
		}
	}
}

func TestTruncatedFileDetected(t *testing.T) {
	data := writeAll(t, sampleRecords())
	sawError := false
	for cut := len(data) - 1; cut > len(data)-100 && cut > 0; cut-- {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			continue
		}
		for {
			_, err := r.Next()
			if err == nil {
				continue
			}
			if err != io.EOF {
				sawError = true
			}
			break
		}
	}
	if !sawError {
		t.Error("no truncation ever detected")
	}
}

func TestWriteUnknownType(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "d", 0)
	if err := w.Write(&Record{Type: RecInvalid}); err == nil {
		t.Error("writing invalid record type should fail")
	}
}

func TestRoundTripProperty(t *testing.T) {
	src := rng.New(123)
	f := func(n uint8) bool {
		count := int(n)%50 + 1
		recs := make([]Record, count)
		ts := Timestamp(src.Intn(1_000_000))
		for i := range recs {
			ts += Timestamp(src.Intn(100000))
			switch src.Intn(4) {
			case 0:
				recs[i] = Record{Type: RecPacket, TS: ts, App: uint32(src.Intn(100)),
					Dir: Direction(src.Intn(2)), Net: Network(src.Intn(2)),
					State:   ProcState(1 + src.Intn(5)),
					Payload: make([]byte, src.Intn(1500))}
				for j := range recs[i].Payload {
					recs[i].Payload[j] = byte(src.Intn(256))
				}
			case 1:
				recs[i] = Record{Type: RecProcState, TS: ts, App: uint32(src.Intn(100)), State: ProcState(1 + src.Intn(5))}
			case 2:
				recs[i] = Record{Type: RecUIEvent, TS: ts, App: uint32(src.Intn(100)), UIKind: UIEventKind(src.Intn(4))}
			default:
				recs[i] = Record{Type: RecScreen, TS: ts, ScreenOn: src.Bool(0.5)}
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "dev", 0)
		if err != nil {
			return false
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for i := range recs {
			got, err := r.Next()
			if err != nil {
				return false
			}
			if got.Type != recs[i].Type || got.TS != recs[i].TS || got.App != recs[i].App ||
				got.State != recs[i].State || !bytes.Equal(got.Payload, recs[i].Payload) {
				return false
			}
		}
		_, err = r.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWritePacketRecords(b *testing.B) {
	payload := bytes.Repeat([]byte{0xab}, 1000)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "dev", 0)
	rec := Record{Type: RecPacket, App: 3, Dir: DirUp, Net: NetCellular, State: StateService, Payload: payload}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.TS = Timestamp(i * 1000)
		if err := w.Write(&rec); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<24 {
			buf.Reset()
		}
	}
}

func BenchmarkReadPacketRecords(b *testing.B) {
	payload := bytes.Repeat([]byte{0xab}, 1000)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "dev", 0)
	rec := Record{Type: RecPacket, App: 3, Dir: DirUp, Net: NetCellular, State: StateService, Payload: payload}
	const n = 10000
	for i := 0; i < n; i++ {
		rec.TS = Timestamp(i * 1000)
		w.Write(&rec)
	}
	w.Flush()
	data := buf.Bytes()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		count := 0
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			count++
		}
		if count != n {
			b.Fatalf("read %d records", count)
		}
		b.SetBytes(int64(len(payload) * n))
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	w, err := NewCompressedWriter(&buf, "device-z", 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Device() != "device-z" {
		t.Fatalf("device = %q", r.Device())
	}
	n := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Type != recs[n].Type || rec.TS != recs[n].TS {
			t.Fatalf("record %d mismatch", n)
		}
		n++
	}
	if n != len(recs) {
		t.Fatalf("read %d records, want %d", n, len(recs))
	}
}

func TestCompressedSmaller(t *testing.T) {
	// A repetitive packet trace must compress well.
	mk := func(compress bool) int {
		var buf bytes.Buffer
		var w *Writer
		var err error
		if compress {
			w, err = NewCompressedWriter(&buf, "d", 0)
		} else {
			w, err = NewWriter(&buf, "d", 0)
		}
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{0x45, 0, 0, 60}, 24)
		for i := 0; i < 2000; i++ {
			w.Write(&Record{Type: RecPacket, TS: Timestamp(i * 100000), App: 3,
				Net: NetCellular, State: StateService, Payload: payload})
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	plain, compressed := mk(false), mk(true)
	if compressed*3 > plain {
		t.Errorf("compressed %d vs plain %d: expected >3x reduction", compressed, plain)
	}
}
