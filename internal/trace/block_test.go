package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"netenergy/internal/rng"
)

// genRecords builds a deterministic mixed-type record stream big enough to
// span several blocks (payloads are semi-repetitive so DEFLATE has real
// work, as in the synthetic fleets).
func genRecords(n int) []Record {
	src := rng.New(42)
	recs := make([]Record, 0, n+4)
	recs = append(recs,
		Record{Type: RecAppName, TS: 1000, App: 0, AppName: "com.example.social"},
		Record{Type: RecAppName, TS: 1000, App: 1, AppName: "com.android.chrome"},
	)
	ts := Timestamp(1000)
	for i := 0; i < n; i++ {
		ts += Timestamp(src.Intn(200000))
		switch src.Intn(5) {
		case 0:
			recs = append(recs, Record{Type: RecProcState, TS: ts,
				App: uint32(src.Intn(2)), State: ProcState(1 + src.Intn(5))})
		case 1:
			recs = append(recs, Record{Type: RecScreen, TS: ts, ScreenOn: src.Bool(0.5)})
		case 2:
			recs = append(recs, Record{Type: RecUIEvent, TS: ts,
				App: uint32(src.Intn(2)), UIKind: UIEventKind(src.Intn(4))})
		default:
			payload := make([]byte, 40+src.Intn(1400))
			for j := range payload {
				payload[j] = byte(j % 7)
			}
			payload[0] = byte(src.Intn(256))
			recs = append(recs, Record{Type: RecPacket, TS: ts, App: uint32(src.Intn(2)),
				Dir: Direction(src.Intn(2)), Net: Network(src.Intn(2)),
				State: ProcState(1 + src.Intn(5)), Payload: payload})
		}
	}
	return recs
}

func writeBlocked(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewBlockWriter(&buf, "device-b", 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}
	return buf.Bytes()
}

func sameRecord(a, b *Record) bool {
	return a.Type == b.Type && a.TS == b.TS && a.App == b.App &&
		a.AppName == b.AppName && a.Dir == b.Dir && a.Net == b.Net &&
		a.State == b.State && a.UIKind == b.UIKind && a.ScreenOn == b.ScreenOn &&
		bytes.Equal(a.Payload, b.Payload)
}

func TestBlockedRoundTrip(t *testing.T) {
	recs := genRecords(5000) // several 256 KiB blocks
	data := writeBlocked(t, recs)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Device() != "device-b" || r.Start() != 1000 {
		t.Fatalf("header: device=%q start=%d", r.Device(), r.Start())
	}
	if r.Format() != FormatBlocked {
		t.Fatalf("format = %v, want %v", r.Format(), FormatBlocked)
	}
	for i := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !sameRecord(got, &recs[i]) {
			t.Fatalf("record %d mismatch:\n got %v\nwant %v", i, got, recs[i])
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBlockedIndex(t *testing.T) {
	recs := genRecords(5000)
	data := writeBlocked(t, recs)
	device, start, blocks, ok, err := ReadBlockIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil || !ok {
		t.Fatalf("ReadBlockIndex: ok=%v err=%v", ok, err)
	}
	if device != "device-b" || start != 1000 {
		t.Fatalf("header: device=%q start=%d", device, start)
	}
	if len(blocks) < 3 {
		t.Fatalf("expected several blocks, got %d", len(blocks))
	}
	total := 0
	for i, b := range blocks {
		total += b.Count
		if b.First > b.Last {
			t.Errorf("block %d: First %d > Last %d", i, b.First, b.Last)
		}
		if b.UncompLen <= 0 || b.CompLen <= 0 {
			t.Errorf("block %d: degenerate lengths %+v", i, b)
		}
	}
	if total != len(recs) {
		t.Fatalf("index counts %d records, wrote %d", total, len(recs))
	}
}

func TestBlockedParallelMatchesSequential(t *testing.T) {
	recs := genRecords(5000)
	data := writeBlocked(t, recs)
	path := filepath.Join(t.TempDir(), "u.metr")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := ReadFileParallel(path, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Device != seq.Device || par.Start != seq.Start {
			t.Fatalf("workers=%d: header mismatch", workers)
		}
		if len(par.Records) != len(seq.Records) {
			t.Fatalf("workers=%d: %d records vs %d", workers, len(par.Records), len(seq.Records))
		}
		for i := range seq.Records {
			if !sameRecord(&par.Records[i], &seq.Records[i]) {
				t.Fatalf("workers=%d: record %d differs", workers, i)
			}
		}
		if got, want := par.Apps.Names(), seq.Apps.Names(); len(got) != len(want) {
			t.Fatalf("workers=%d: app tables differ", workers)
		}
	}
}

func TestBlockedParallelFallsBackOnV1(t *testing.T) {
	recs := sampleRecords()
	for _, format := range []Format{FormatFlat, FormatDeflate} {
		var buf bytes.Buffer
		dt := &DeviceTrace{Device: "d", Start: 1000, Records: recs}
		if err := dt.SerializeFormat(&buf, format); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "u.metr")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFileParallel(path, 4)
		if err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		if len(got.Records) != len(recs) {
			t.Fatalf("%v: %d records, want %d", format, len(got.Records), len(recs))
		}
	}
}

func TestBlockedTruncatedFooterStreamsAnyway(t *testing.T) {
	recs := genRecords(3000)
	data := writeBlocked(t, recs)
	// Cut off the footer and half the index: the seekable path must decline
	// (ok=false) and the streaming fallback must still deliver every block.
	cut := data[:len(data)-footerLen-10]
	if _, _, _, ok, _ := ReadBlockIndex(bytes.NewReader(cut), int64(len(cut))); ok {
		t.Fatal("truncated footer accepted")
	}
	path := filepath.Join(t.TempDir(), "u.metr")
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	dt, err := ReadFileParallel(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dt.Records) != len(recs) {
		t.Fatalf("read %d records, want %d", len(dt.Records), len(recs))
	}
}

func TestBlockedCorruptionDetected(t *testing.T) {
	recs := genRecords(800)
	data := writeBlocked(t, recs)
	headerLen := len(magicBlocked) + 1 + len("device-b") + 2
	for pos := headerLen; pos < len(data); pos += 997 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0xff
		r, err := NewReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		seen := 0
		for {
			rec, err := r.Next()
			if err != nil {
				break // any clean error is acceptable; silence is not
			}
			if !sameRecord(rec, &recs[seen]) {
				// A corrupted block must never decode to wrong records: the
				// CRC covers the whole payload.
				t.Fatalf("flip at %d: record %d silently wrong", pos, seen)
			}
			seen++
		}
	}
}

func TestBlockedEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewBlockWriter(&buf, "empty", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	_, _, blocks, ok, err := ReadBlockIndex(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil || !ok || len(blocks) != 0 {
		t.Fatalf("empty index: ok=%v blocks=%d err=%v", ok, len(blocks), err)
	}
}

// TestBlockDecodeAllocFree guards the pooled-scratch claim: once the reader
// is warm, serving records out of a decoded block allocates nothing, and
// block transitions amortize to well under 1/100 alloc per record.
func TestBlockDecodeAllocFree(t *testing.T) {
	recs := genRecords(20000)
	data := writeBlocked(t, recs)
	_, _, blocks, ok, err := ReadBlockIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil || !ok || len(blocks) < 2 {
		t.Fatalf("index: ok=%v blocks=%d err=%v", ok, len(blocks), err)
	}

	// Serving records out of an already-decoded block must allocate zero:
	// decode the first block (and consume the two RecAppName records, whose
	// name strings legitimately allocate), then count mallocs over the rest
	// of that block.
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 2; i < blocks[0].Count; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&m1)
	if got := m1.Mallocs - m0.Mallocs; got != 0 {
		t.Errorf("%d allocs serving %d records from a decoded block, want 0", got, blocks[0].Count-1)
	}

	// Whole-file amortized budget: block transitions pay for buffer growth
	// and the stdlib inflater's per-block Huffman tables, nothing scales
	// with the record count.
	n := len(recs)
	allocs := testing.AllocsPerRun(2, func() {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := r.Next(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if perRecord := allocs / float64(n); perRecord > 0.25 {
		t.Errorf("%.4f allocs/record amortized (total %v over %d records)", perRecord, allocs, n)
	}
}

// rawIndexEntry is one hand-crafted footer-index entry, fields as encoded.
type rawIndexEntry struct {
	od, ul, cl, rc uint64
	ft, lt         int64
}

// craftIndexFile assembles a METR-2 file consisting of only the header and
// a CRC-intact footer index carrying the given raw entries (declaredCount
// is what the index claims, independent of len(entries)). No blocks are
// written: the point is to probe ReadBlockIndex's validation of
// attacker-controlled index fields before any allocation they size.
func craftIndexFile(declaredCount uint64, entries []rawIndexEntry) []byte {
	out := append([]byte(nil), magicBlocked...)
	out = appendFileHeader(out, "d", 0)
	idx := []byte{indexTag}
	idx = binary.AppendUvarint(idx, declaredCount)
	for _, e := range entries {
		idx = binary.AppendUvarint(idx, e.od)
		idx = binary.AppendUvarint(idx, e.ul)
		idx = binary.AppendUvarint(idx, e.cl)
		idx = binary.AppendVarint(idx, e.ft)
		idx = binary.AppendVarint(idx, e.lt)
		idx = binary.AppendUvarint(idx, e.rc)
	}
	idx = binary.LittleEndian.AppendUint64(idx, uint64(len(idx)))
	idx = binary.LittleEndian.AppendUint32(idx, crc32.Checksum(idx[:len(idx)-8], castagnoli))
	idx = append(idx, footerMagic...)
	return append(out, idx...)
}

// TestBlockIndexRejectsCraftedEntries pins the fix for two OOM bugs: a
// tiny file whose CRC-valid index declared a huge block offset or record
// count made ReadBlockIndex/ReadFileParallel size allocations from those
// fields (make([]byte, offset) resp. make([]Record, count)) and abort the
// process. Every crafted variant must come back as ErrCorrupt instead.
func TestBlockIndexRejectsCraftedEntries(t *testing.T) {
	cases := []struct {
		name    string
		count   uint64
		entries []rawIndexEntry
	}{
		{"offset far beyond file size", 1,
			[]rawIndexEntry{{od: 1 << 40, ul: 16, cl: 16, rc: 1}}},
		{"offset delta overflows negative", 2,
			[]rawIndexEntry{{od: 5, ul: 16, cl: 16, rc: 1}, {od: 1 << 63, ul: 16, cl: 16, rc: 1}}},
		{"zero offset delta (not strictly increasing)", 2,
			[]rawIndexEntry{{od: 5, ul: 16, cl: 16, rc: 1}, {od: 0, ul: 16, cl: 16, rc: 1}}},
		{"record count bomb", 1,
			[]rawIndexEntry{{od: 5, ul: 16, cl: 16, rc: 1 << 50}}},
		{"declared count exceeds index capacity", 1 << 40, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := craftIndexFile(tc.count, tc.entries)
			_, _, _, ok, err := ReadBlockIndex(bytes.NewReader(data), int64(len(data)))
			if ok || !errors.Is(err, ErrCorrupt) {
				t.Fatalf("ok=%v err=%v, want ok=false ErrCorrupt", ok, err)
			}
		})
	}
}

// craftBlockFile assembles a METR-2 file with a single hand-built block
// (raw is the uncompressed frame stream, count/first/last the declared
// header fields) plus a matching CRC-intact footer index.
func craftBlockFile(raw []byte, count int, first, last Timestamp) []byte {
	var comp bytes.Buffer
	fw, _ := flate.NewWriter(&comp, flate.BestSpeed)
	fw.Write(raw)
	fw.Close()
	payload := comp.Bytes()

	out := append([]byte(nil), magicBlocked...)
	out = appendFileHeader(out, "d", 0)
	blkOff := int64(len(out))
	out = append(out, blockTag)
	out = binary.AppendUvarint(out, uint64(len(raw)))
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	out = binary.AppendVarint(out, int64(first))
	out = binary.AppendVarint(out, int64(last))
	out = binary.AppendUvarint(out, uint64(count))
	out = append(out, payload...)

	idx := []byte{indexTag}
	idx = binary.AppendUvarint(idx, 1)
	idx = binary.AppendUvarint(idx, uint64(blkOff))
	idx = binary.AppendUvarint(idx, uint64(len(raw)))
	idx = binary.AppendUvarint(idx, uint64(len(payload)))
	idx = binary.AppendVarint(idx, int64(first))
	idx = binary.AppendVarint(idx, int64(last))
	idx = binary.AppendUvarint(idx, 1)
	idx = binary.LittleEndian.AppendUint64(idx, uint64(len(idx)))
	idx = binary.LittleEndian.AppendUint32(idx, crc32.Checksum(idx[:len(idx)-8], castagnoli))
	idx = append(idx, footerMagic...)
	return append(out, idx...)
}

// TestBlockTrailingBytesRejected pins the fix for silent trailing bytes: a
// block whose uncompressed payload carries bytes past the last declared
// record must fail as ErrCorrupt on both the streaming and the indexed
// parallel path (and the same block without the trailing bytes must read
// cleanly, proving the check is not over-strict).
func TestBlockTrailingBytesRejected(t *testing.T) {
	// One RecScreen record at ts=100: frame = type, bodyLen, body
	// (body = tsDelta:varint(0) + on:byte).
	frame := []byte{byte(RecScreen), 0x02, 0x00, 0x01}

	readAllVia := func(t *testing.T, data []byte) error {
		t.Helper()
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return err
		}
		for {
			if _, err := r.Next(); err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
		}
	}

	clean := craftBlockFile(frame, 1, 100, 100)
	if err := readAllVia(t, clean); err != nil {
		t.Fatalf("clean crafted block: %v", err)
	}

	dirty := craftBlockFile(append(append([]byte(nil), frame...), 0xAA, 0xBB), 1, 100, 100)
	if err := readAllVia(t, dirty); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("streaming: err=%v, want ErrCorrupt", err)
	}
	path := filepath.Join(t.TempDir(), "u.metr")
	if err := os.WriteFile(path, dirty, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFileParallel(path, 4); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("parallel: err=%v, want ErrCorrupt", err)
	}
}

func TestBlockedDeviceNameBoundary(t *testing.T) {
	// The shared cap must round-trip at the boundary through every
	// container, and be rejected at write time one byte past it.
	atCap := strings.Repeat("d", maxDeviceName)
	past := atCap + "x"
	for _, format := range []Format{FormatFlat, FormatDeflate, FormatBlocked} {
		var buf bytes.Buffer
		w, err := NewFormatWriter(&buf, format, atCap, 7)
		if err != nil {
			t.Fatalf("%v: writer rejected %d-byte name: %v", format, maxDeviceName, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: reader rejected %d-byte name: %v", format, maxDeviceName, err)
		}
		if r.Device() != atCap {
			t.Fatalf("%v: device name did not round-trip", format)
		}
		if _, err := NewFormatWriter(io.Discard, format, past, 7); err == nil {
			t.Fatalf("%v: writer accepted %d-byte name the reader would refuse", format, len(past))
		}
	}
}
