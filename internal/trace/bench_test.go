package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// benchTrace holds one synthetic device trace serialized in every
// container, written once per benchmark binary. decode_mbps is reported
// against the flat (uncompressed-container) byte count for every format,
// so the metric compares decode throughput of the same logical records.
var benchTrace struct {
	once      sync.Once
	recs      []Record
	dir       string
	flatBytes int64
	paths     map[Format]string
}

func benchSetup(b *testing.B) {
	b.Helper()
	benchTrace.once.Do(func() {
		benchTrace.recs = genRecords(120000) // ~50 MB flat, dozens of blocks
		dir, err := os.MkdirTemp("", "tracebench")
		if err != nil {
			panic(err)
		}
		benchTrace.dir = dir
		benchTrace.paths = make(map[Format]string)
		dt := &DeviceTrace{Device: "bench-00", Start: 1000, Records: benchTrace.recs}
		for _, f := range []Format{FormatFlat, FormatDeflate, FormatBlocked, FormatColumnar} {
			var buf bytes.Buffer
			if err := dt.SerializeFormat(&buf, f); err != nil {
				panic(err)
			}
			path := filepath.Join(dir, "u00."+f.String()+".metr")
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				panic(err)
			}
			benchTrace.paths[f] = path
			if f == FormatFlat {
				benchTrace.flatBytes = int64(buf.Len())
			}
		}
	})
}

// benchDecode runs one full-file decode per iteration and reports
// decode_mbps: flat-container megabytes decoded per second.
func benchDecode(b *testing.B, format Format, workers int) {
	benchSetup(b)
	path := benchTrace.paths[format]
	want := len(benchTrace.recs)
	b.SetBytes(benchTrace.flatBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dt, err := ReadFileParallel(path, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(dt.Records) != want {
			b.Fatalf("decoded %d records, want %d", len(dt.Records), want)
		}
		// Steady-state decode loop, as core.OpenParallel runs it: fold
		// the trace, recycle its buffers, move to the next file.
		dt.Recycle()
	}
	b.StopTimer()
	mbps := float64(benchTrace.flatBytes) / 1e6 * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(mbps, "decode_mbps")
}

func BenchmarkDecodeV1Flat(b *testing.B)    { benchDecode(b, FormatFlat, 1) }
func BenchmarkDecodeV1Deflate(b *testing.B) { benchDecode(b, FormatDeflate, 1) }
func BenchmarkDecodeMETR2(b *testing.B)     { benchDecode(b, FormatBlocked, 1) }
func BenchmarkDecodeMETR2Parallel4(b *testing.B) {
	benchDecode(b, FormatBlocked, 4)
}
func BenchmarkDecodeMETR2Parallel8(b *testing.B) {
	benchDecode(b, FormatBlocked, 8)
}
func BenchmarkDecodeMETR3(b *testing.B) { benchDecode(b, FormatColumnar, 1) }
func BenchmarkDecodeMETR3Parallel4(b *testing.B) {
	benchDecode(b, FormatColumnar, 4)
}
func BenchmarkDecodeMETR3Parallel8(b *testing.B) {
	benchDecode(b, FormatColumnar, 8)
}

func BenchmarkEncodeMETR2(b *testing.B) {
	benchSetup(b)
	dt := &DeviceTrace{Device: "bench-00", Start: 1000, Records: benchTrace.recs}
	b.SetBytes(benchTrace.flatBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := NewBlockWriter(io.Discard, dt.Device, dt.Start)
		if err != nil {
			b.Fatal(err)
		}
		for j := range dt.Records {
			if err := w.Write(&dt.Records[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeMETR3(b *testing.B) {
	benchSetup(b)
	dt := &DeviceTrace{Device: "bench-00", Start: 1000, Records: benchTrace.recs}
	b.SetBytes(benchTrace.flatBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := NewColumnWriter(io.Discard, dt.Device, dt.Start)
		if err != nil {
			b.Fatal(err)
		}
		for j := range dt.Records {
			if err := w.Write(&dt.Records[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}
