// Package analysis implements the paper's measurement analyses: one
// function per figure and table of the evaluation (Figures 1-6, Table 1)
// plus the headline statistics quoted in the text (84% background energy,
// the first-minute criterion, browser background shares). Each analysis
// consumes DeviceData — the decoded, energy-attributed view of one device
// trace — and aggregates across the fleet.
package analysis

import (
	"fmt"
	"runtime"
	"sync"

	"netenergy/internal/energy"
	"netenergy/internal/flows"
	"netenergy/internal/procstate"
	"netenergy/internal/trace"
)

// DeviceData is the fully loaded view of one device: energy-attributed
// packets, per-app ledgers, the process-state tracker, and the screen
// timeline.
type DeviceData struct {
	Device  string
	Apps    *trace.AppTable
	Tracker *procstate.Tracker
	Energy  *energy.Result
	Flows   []*flows.Flow
	// ScreenOn holds the merged [on, off) screen intervals from the
	// collector's screen events, sorted by start.
	ScreenOn [][2]trace.Timestamp
	Span     [2]trace.Timestamp
	Days     int // observation days covered by the trace span
}

// ScreenOnAt reports whether the screen was on at ts.
func (d *DeviceData) ScreenOnAt(ts trace.Timestamp) bool {
	lo, hi := 0, len(d.ScreenOn)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.ScreenOn[mid][1] <= ts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(d.ScreenOn) && d.ScreenOn[lo][0] <= ts
}

// Load builds DeviceData from an in-memory device trace.
func Load(dt *trace.DeviceTrace, opts energy.Options) (*DeviceData, error) {
	res, err := energy.Process(dt, opts)
	if err != nil {
		return nil, fmt.Errorf("analysis: processing %s: %w", dt.Device, err)
	}
	tracker := procstate.FromTrace(dt)

	// Screen timeline from RecScreen events.
	var screen [][2]trace.Timestamp
	var onSince trace.Timestamp = -1
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type != trace.RecScreen {
			continue
		}
		if r.ScreenOn {
			if onSince < 0 {
				onSince = r.TS
			}
		} else if onSince >= 0 {
			screen = append(screen, [2]trace.Timestamp{onSince, r.TS})
			onSince = -1
		}
	}
	if onSince >= 0 {
		screen = append(screen, [2]trace.Timestamp{onSince, dt.Records[len(dt.Records)-1].TS + 1})
	}

	asm := flows.NewAssembler(flows.DefaultConfig())
	for i := range res.Packets {
		p := &res.Packets[i]
		asm.Add(flows.PacketInfo{
			TS: p.TS, App: p.App, Tuple: p.Tuple, Dir: p.Dir,
			Bytes: p.Bytes, State: p.State, Energy: p.Energy,
		})
	}

	span := res.Span
	days := int(span[1].Sub(span[0])/86400) + 1
	if span[1] == 0 && span[0] == 0 {
		days = 0
	}
	return &DeviceData{
		Device:   dt.Device,
		Apps:     dt.Apps,
		Tracker:  tracker,
		Energy:   res,
		Flows:    asm.Flows(),
		ScreenOn: screen,
		Span:     span,
		Days:     days,
	}, nil
}

// LoadFleet loads every device of a generated fleet from disk, one at a
// time.
func LoadFleet(fleet *trace.Fleet, opts energy.Options) ([]*DeviceData, error) {
	var out []*DeviceData
	err := fleet.EachDevice(func(dt *trace.DeviceTrace) error {
		dd, err := Load(dt, opts)
		if err != nil {
			return err
		}
		out = append(out, dd)
		return nil
	})
	return out, err
}

// LoadAll loads a slice of in-memory device traces, in parallel (Load is
// pure per device).
func LoadAll(dts []*trace.DeviceTrace, opts energy.Options) ([]*DeviceData, error) {
	out := make([]*DeviceData, len(dts))
	errs := make([]error, len(dts))
	var wg sync.WaitGroup
	par := runtime.GOMAXPROCS(0)
	if par > 6 {
		par = 6
	}
	sem := make(chan struct{}, par)
	for i := range dts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = Load(dts[i], opts)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// appID resolves a package name to its table ID on this device; ok=false if
// the app never appears.
func (d *DeviceData) appID(pkg string) (uint32, bool) {
	for i := 0; i < d.Apps.Len(); i++ {
		if d.Apps.Name(uint32(i)) == pkg {
			return uint32(i), true
		}
	}
	return 0, false
}

// MergedLedger returns the fleet-wide ledger (app IDs are comparable across
// devices because the generator interns profiles in a fixed order).
func MergedLedger(devs []*DeviceData) *energy.Ledger {
	ls := make([]*energy.Ledger, len(devs))
	for i, d := range devs {
		ls[i] = d.Energy.Ledger
	}
	return energy.MergeLedgers(ls)
}
