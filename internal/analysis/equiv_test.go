package analysis

// Differential equivalence harness for the columnar feed path: randomized
// fixed-seed traces are pushed through the per-record path (Feed), the
// columnar path (FeedBatch over randomly cut batches), and the on-disk
// METR-3 container (StreamBatches over a serialized round trip), and every
// observable — serialized accumulator state, finished result bytes, the
// headline numbers — must match bit-for-bit. Feed and FeedBatch share the
// same feed helpers by construction (stream.go), so any divergence here
// means the batch materialization or the METR-3 codec changed semantics.
//
// `make ci` runs this via the equiv target; equivSeeds fixed-seed traces
// keep the check deterministic across machines.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"netenergy/internal/energy"
	"netenergy/internal/netparse"
	"netenergy/internal/trace"
)

// equivSeeds is how many independent random traces the harness replays.
const equivSeeds = 120

// genEquivRecords builds a seed-deterministic randomized record stream
// exercising everything the accumulator consumes: valid TCP/UDP packets
// across apps, states, directions and networks; junk payloads (decode
// errors); screen flips; proc-state transitions; app names; UI events.
// Timestamps advance monotonically across day boundaries so per-day
// ledgers get multiple keys.
func genEquivRecords(seed int64) []trace.Record {
	r := rand.New(rand.NewSource(seed))
	n := 200 + r.Intn(400)
	recs := make([]trace.Record, 0, n)
	ts := trace.Timestamp(1000 + r.Int63n(1e6))
	buf := make([]byte, 2048)
	for i := 0; i < n; i++ {
		// Mostly small steps, occasionally a jump past radio tails or a
		// day boundary.
		switch r.Intn(20) {
		case 0:
			ts = ts.AddSeconds(float64(r.Intn(90000))) // up to ~a day
		case 1:
			ts = ts.AddSeconds(20 + float64(r.Intn(60))) // past the tail
		default:
			ts = ts.AddSeconds(r.Float64() * 2)
		}
		app := uint32(r.Intn(6))
		switch p := r.Intn(100); {
		case p < 8:
			recs = append(recs, trace.Record{
				Type: trace.RecScreen, TS: ts, ScreenOn: r.Intn(2) == 0,
			})
		case p < 20:
			recs = append(recs, trace.Record{
				Type: trace.RecProcState, TS: ts, App: app,
				State: trace.AllStates[r.Intn(len(trace.AllStates))],
			})
		case p < 24:
			recs = append(recs, trace.Record{
				Type: trace.RecAppName, TS: ts, App: app,
				AppName: fmt.Sprintf("app.pkg%d", app),
			})
		case p < 28:
			recs = append(recs, trace.Record{
				Type: trace.RecUIEvent, TS: ts, App: app,
				UIKind: trace.UIEventKind(r.Intn(3)),
			})
		default:
			rec := trace.Record{
				Type: trace.RecPacket, TS: ts, App: app,
				Dir:   trace.Direction(r.Intn(2)),
				Net:   trace.Network(r.Intn(2)),
				State: trace.AllStates[r.Intn(len(trace.AllStates))],
			}
			src := [4]byte{10, 0, 0, byte(1 + r.Intn(250))}
			dst := [4]byte{93, 184, 216, byte(1 + r.Intn(250))}
			var m int
			switch r.Intn(10) {
			case 0:
				// Junk payload: both paths must count the decode error.
				m = 1 + r.Intn(40)
				r.Read(buf[:m])
			case 1, 2, 3:
				m, _ = netparse.BuildUDPv4(buf, src, dst,
					uint16(1024+r.Intn(60000)), 443, r.Intn(1200))
			default:
				m, _ = netparse.BuildTCPv4(buf, src, dst,
					uint16(1024+r.Intn(60000)), 443, r.Uint32(), 0x18, r.Intn(1200))
			}
			rec.Payload = append([]byte(nil), buf[:m]...)
			recs = append(recs, rec)
		}
	}
	return recs
}

// feedPerRecord drives the canonical per-record path.
func feedPerRecord(recs []trace.Record, opts energy.Options) *StreamAccumulator {
	acc := NewStreamAccumulator("equiv-dev", opts)
	for i := range recs {
		acc.Feed(&recs[i])
	}
	return acc
}

// feedColumnar drives the batch path: the stream is cut into batches of
// random length (1..97 records, seed-deterministic) and fed via FeedBatch,
// mirroring how the ingest shard and the METR-3 reader deliver records.
func feedColumnar(recs []trace.Record, opts energy.Options, seed int64) *StreamAccumulator {
	r := rand.New(rand.NewSource(seed ^ 0x5eedba7c))
	acc := NewStreamAccumulator("equiv-dev", opts)
	var b trace.RecordBatch
	for i := 0; i < len(recs); {
		j := i + 1 + r.Intn(97)
		if j > len(recs) {
			j = len(recs)
		}
		b.Reset()
		for k := i; k < j; k++ {
			b.Append(&recs[k])
		}
		acc.FeedBatch(&b)
		i = j
	}
	return acc
}

// TestColumnarEquivalence is the differential harness proper.
func TestColumnarEquivalence(t *testing.T) {
	opts := energy.DefaultOptions()
	for seed := int64(0); seed < equivSeeds; seed++ {
		recs := genEquivRecords(seed)

		accA := feedPerRecord(recs, opts)
		accB := feedColumnar(recs, opts, seed)

		// Serialized accumulator state must be bit-identical before any
		// finalization — this covers every intermediate field, not just
		// what the report surfaces.
		stateA := accA.AppendState(nil)
		stateB := accB.AppendState(nil)
		if !bytes.Equal(stateA, stateB) {
			t.Fatalf("seed %d: accumulator state diverges between Feed and FeedBatch (%d vs %d bytes)",
				seed, len(stateA), len(stateB))
		}
		if accA.Records() != accB.Records() {
			t.Fatalf("seed %d: record counts diverge: %d vs %d", seed, accA.Records(), accB.Records())
		}

		resA := accA.Finish()
		resB := accB.Finish()
		binA := resA.AppendBinary(nil)
		if !bytes.Equal(binA, resB.AppendBinary(nil)) {
			t.Fatalf("seed %d: finished results diverge between Feed and FeedBatch", seed)
		}
		// Headlines, spelled out for diagnostics (already covered by the
		// byte compare above).
		if resA.Ledger.Total != resB.Ledger.Total {
			t.Fatalf("seed %d: total energy %v vs %v", seed, resA.Ledger.Total, resB.Ledger.Total)
		}
		if resA.Ledger.BackgroundFraction() != resB.Ledger.BackgroundFraction() {
			t.Fatalf("seed %d: background fraction diverges", seed)
		}
		if resA.DecodeErrors != resB.DecodeErrors {
			t.Fatalf("seed %d: decode errors %d vs %d", seed, resA.DecodeErrors, resB.DecodeErrors)
		}

		// Third path: through the METR-3 container on disk. StreamBatches
		// consumes the decoder's zero-copy batches, so this also proves the
		// codec round-trips every field the accumulator reads.
		dt := &trace.DeviceTrace{Device: "equiv-dev", Start: recs[0].TS, Records: recs}
		var buf bytes.Buffer
		if err := dt.SerializeFormat(&buf, trace.FormatColumnar); err != nil {
			t.Fatalf("seed %d: serialize: %v", seed, err)
		}
		br, err := trace.NewBatchReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		resC, err := StreamBatches(br, opts)
		if err != nil {
			t.Fatalf("seed %d: stream: %v", seed, err)
		}
		if !bytes.Equal(binA, resC.AppendBinary(nil)) {
			t.Fatalf("seed %d: METR-3 StreamBatches result diverges from per-record path", seed)
		}
	}
}
