package analysis

import (
	"netenergy/internal/energy"
	"netenergy/internal/radio"
	"netenergy/internal/trace"
)

// WeeklyTrend is the §3.1 longitudinal view: per-week background energy
// across the fleet. The paper reports that "background energy fluctuated by
// up to 60% from week to week throughout the study", obscuring clean
// longitudinal conclusions.
type WeeklyTrend struct {
	// Weeks holds total fleet background energy per week index (week 0 is
	// the first week with traffic).
	Weeks []float64
	// MaxWeekOverWeekChange is the largest relative change between
	// consecutive weeks (0.6 = 60%).
	MaxWeekOverWeekChange float64
}

// Weekly computes the fleet's per-week background energy trend.
func Weekly(devs []*DeviceData) WeeklyTrend {
	perWeek := map[int]float64{}
	minWeek := int(^uint(0) >> 1)
	maxWeek := 0
	for _, d := range devs {
		for _, days := range d.Energy.Ledger.ByAppDay {
			for day, ds := range days {
				w := day / 7
				perWeek[w] += ds.BgEnergy
				if w < minWeek {
					minWeek = w
				}
				if w > maxWeek {
					maxWeek = w
				}
			}
		}
	}
	var res WeeklyTrend
	if len(perWeek) == 0 {
		return res
	}
	for w := minWeek; w <= maxWeek; w++ {
		res.Weeks = append(res.Weeks, perWeek[w])
	}
	// Ignore the (possibly partial) first and last weeks when measuring
	// fluctuation.
	for i := 2; i < len(res.Weeks)-1; i++ {
		prev := res.Weeks[i-1]
		if prev <= 0 {
			continue
		}
		change := res.Weeks[i]/prev - 1
		if change < 0 {
			change = -change
		}
		if change > res.MaxWeekOverWeekChange {
			res.MaxWeekOverWeekChange = change
		}
	}
	return res
}

// NetworkComparison quantifies §3's premise — "we focus primarily on
// cellular traffic as it consumes far more energy than WiFi" — by
// accounting each interface's traffic against its own radio model.
type NetworkComparison struct {
	CellularJ     float64
	WiFiJ         float64
	CellularBytes int64
	WiFiBytes     int64
}

// Ratio returns cellular energy over WiFi energy (0 if no WiFi energy).
func (n NetworkComparison) Ratio() float64 {
	if n.WiFiJ == 0 {
		return 0
	}
	return n.CellularJ / n.WiFiJ
}

// CompareNetworks re-processes the given raw device traces under both
// interface filters. It needs the original traces (not DeviceData) because
// the standard pipeline only accounts cellular packets.
func CompareNetworks(dts []*trace.DeviceTrace) (NetworkComparison, error) {
	var out NetworkComparison
	for _, dt := range dts {
		cell := energy.DefaultOptions()
		cell.KeepPackets = false
		resC, err := energy.Process(dt, cell)
		if err != nil {
			return out, err
		}
		wifi := energy.DefaultOptions()
		wifi.KeepPackets = false
		wifi.Network = trace.NetWiFi
		wifi.Radio = radio.WiFi()
		resW, err := energy.Process(dt, wifi)
		if err != nil {
			return out, err
		}
		out.CellularJ += resC.Ledger.Total
		out.WiFiJ += resW.Ledger.Total
		for _, b := range resC.Ledger.BytesByApp {
			out.CellularBytes += b
		}
		for _, b := range resW.Ledger.BytesByApp {
			out.WiFiBytes += b
		}
	}
	return out, nil
}
