package analysis

import (
	"bytes"
	"testing"

	"netenergy/internal/energy"
	"netenergy/internal/trace"
)

// TestWindowedAccumulatorMatchesRestrictedRuns is the window-semantics
// contract: every window produced by WindowedAccumulator must be
// bit-identical to a standalone accumulator fed only that window's
// records — the "whole-trace batch run restricted to that window" the
// query engine's acceptance criterion compares against.
func TestWindowedAccumulatorMatchesRestrictedRuns(t *testing.T) {
	opts := energy.DefaultOptions()
	const width = trace.Timestamp(3600 * 1e6) // one hour
	for seed := int64(1); seed <= 10; seed++ {
		recs := genEquivRecords(seed)

		w := NewWindowedAccumulator("equiv-dev", width, opts)
		for i := range recs {
			w.Feed(&recs[i])
		}
		got := w.Finish()
		if len(got) == 0 {
			t.Fatalf("seed %d: no windows", seed)
		}

		// Reference: a fresh accumulator per window over the filtered
		// record run.
		for _, win := range got {
			ref := NewStreamAccumulator("equiv-dev", opts)
			for i := range recs {
				if recs[i].TS >= win.Start && recs[i].TS < win.Start+width {
					ref.Feed(&recs[i])
				}
			}
			want := ref.Finish()
			if !bytes.Equal(win.Res.AppendBinary(nil), want.AppendBinary(nil)) {
				t.Fatalf("seed %d window %d: windowed result differs from restricted run", seed, win.Start)
			}
		}
	}
}

// TestWindowedAccumulatorBatchSplit checks FeedBatch splits batches at
// window boundaries identically to per-record routing.
func TestWindowedAccumulatorBatchSplit(t *testing.T) {
	opts := energy.DefaultOptions()
	const width = trace.Timestamp(3600 * 1e6)
	recs := genEquivRecords(42)

	perRec := NewWindowedAccumulator("equiv-dev", width, opts)
	for i := range recs {
		perRec.Feed(&recs[i])
	}
	batched := NewWindowedAccumulator("equiv-dev", width, opts)
	var b trace.RecordBatch
	for lo := 0; lo < len(recs); lo += 57 {
		hi := lo + 57
		if hi > len(recs) {
			hi = len(recs)
		}
		b.Reset()
		for i := lo; i < hi; i++ {
			b.Append(&recs[i])
		}
		batched.FeedBatch(&b)
	}

	got, want := batched.Finish(), perRec.Finish()
	if len(got) != len(want) {
		t.Fatalf("window count: batch %d, per-record %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Start != want[i].Start {
			t.Fatalf("window %d start: %d vs %d", i, got[i].Start, want[i].Start)
		}
		if !bytes.Equal(got[i].Res.AppendBinary(nil), want[i].Res.AppendBinary(nil)) {
			t.Fatalf("window %d: batch path diverges from per-record path", i)
		}
	}
}

// TestWindowedAccumulatorUnbounded: width 0 is a single window equal to
// a plain StreamAccumulator run.
func TestWindowedAccumulatorUnbounded(t *testing.T) {
	opts := energy.DefaultOptions()
	recs := genEquivRecords(7)
	w := NewWindowedAccumulator("equiv-dev", 0, opts)
	for i := range recs {
		w.Feed(&recs[i])
	}
	got := w.Finish()
	if len(got) != 1 {
		t.Fatalf("want a single window, got %d", len(got))
	}
	want := feedPerRecord(recs, opts).Finish()
	if !bytes.Equal(got[0].Res.AppendBinary(nil), want.AppendBinary(nil)) {
		t.Fatal("unbounded window differs from plain accumulator")
	}
}
