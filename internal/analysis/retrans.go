package analysis

import (
	"netenergy/internal/stats"
	"netenergy/internal/tcpstream"
	"netenergy/internal/trace"
)

// RetransResult characterises TCP retransmission overhead: wire bytes (and
// therefore radio energy) that delivered no new application data. Cellular
// links lose packets; the overhead compounds the background-traffic energy
// problem the paper studies.
type RetransResult struct {
	Total tcpstream.Stats
	// PerApp ranks apps by retransmitted bytes, descending.
	PerApp []AppRetrans
	// WastedEnergyJ estimates the energy of retransmitted bytes, scaling
	// each packet's energy by its retransmitted fraction.
	WastedEnergyJ float64
}

// AppRetrans is one app's retransmission accounting.
type AppRetrans struct {
	App          string
	Bytes        int64
	RetransBytes int64
}

// Fraction returns the app's retransmitted share.
func (a AppRetrans) Fraction() float64 {
	if a.Bytes == 0 {
		return 0
	}
	return float64(a.RetransBytes) / float64(a.Bytes)
}

// Retransmissions replays every device's TCP segments through per-stream
// reassembly and aggregates the overhead. Streams are keyed by the
// canonical five-tuple hash plus direction.
func Retransmissions(devs []*DeviceData, topK int) RetransResult {
	var res RetransResult
	perAppBytes := map[string]int64{}
	perAppRetrans := map[string]int64{}
	for _, d := range devs {
		tr := tcpstream.NewTracker()
		for i := range d.Energy.Packets {
			p := &d.Energy.Packets[i]
			// Payload length: wire bytes minus the fixed 40-byte header
			// stack the generator emits.
			plen := p.Bytes - 40
			if plen < 0 {
				plen = 0
			}
			key := p.Tuple.FastHash()
			if p.Dir == trace.DirUp {
				key ^= 0x9e3779b97f4a7c15
			}
			kind := tr.Segment(key, p.Seq, plen)
			name := d.Apps.Name(p.App)
			perAppBytes[name] += int64(plen)
			switch kind {
			case tcpstream.KindRetrans:
				perAppRetrans[name] += int64(plen)
				res.WastedEnergyJ += p.Energy
			case tcpstream.KindPartial:
				// Apportion energy by the retransmitted share.
				// (Stats track exact bytes; energy is approximated.)
				res.WastedEnergyJ += p.Energy / 2
			}
		}
		t := tr.Total()
		res.Total.Segments += t.Segments
		res.Total.Bytes += t.Bytes
		res.Total.Goodput += t.Goodput
		res.Total.Retrans += t.Retrans
		res.Total.OutOfOrder += t.OutOfOrder
	}
	rank := map[string]float64{}
	for name, b := range perAppRetrans {
		rank[name] = float64(b)
	}
	for _, kv := range stats.TopK(rank, topK) {
		res.PerApp = append(res.PerApp, AppRetrans{
			App:          kv.Key,
			Bytes:        perAppBytes[kv.Key],
			RetransBytes: perAppRetrans[kv.Key],
		})
	}
	return res
}
