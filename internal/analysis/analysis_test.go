package analysis

import (
	"testing"

	"netenergy/internal/energy"
	"netenergy/internal/netparse"
	"netenergy/internal/radio"
	"netenergy/internal/trace"
)

// radioLTE is a tiny alias so DNS tests read naturally.
func radioLTE() radio.Params { return radio.LTE() }

const sec = trace.Timestamp(1_000_000)

// builder constructs hand-crafted device traces with real packet bytes.
type builder struct {
	dt   *trace.DeviceTrace
	port uint16
}

func newBuilder(device string) *builder {
	return &builder{
		dt:   &trace.DeviceTrace{Device: device, Start: 0, Apps: trace.NewAppTable()},
		port: 40000,
	}
}

func (b *builder) app(pkg string) uint32 {
	id := b.dt.Apps.Intern(pkg)
	b.dt.Records = append(b.dt.Records, trace.Record{Type: trace.RecAppName, TS: 0, App: id, AppName: pkg})
	return id
}

func (b *builder) state(app uint32, ts trace.Timestamp, s trace.ProcState) {
	b.dt.Records = append(b.dt.Records, trace.Record{Type: trace.RecProcState, TS: ts, App: app, State: s})
}

// pkt emits one packet; samePort keeps the five-tuple (and flow) of the
// previous packet.
func (b *builder) pkt(app uint32, ts trace.Timestamp, st trace.ProcState, bytes int, samePort bool) {
	if !samePort {
		b.port++
	}
	buf := make([]byte, 96)
	stored, _, err := netparse.BuildTCPv4Snapped(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 1, 2, 3},
		b.port, 443, 0, netparse.TCPAck, bytes, 96)
	if err != nil {
		panic(err)
	}
	b.dt.Records = append(b.dt.Records, trace.Record{
		Type: trace.RecPacket, TS: ts, App: app, Dir: trace.DirUp,
		Net: trace.NetCellular, State: st, Payload: buf[:stored],
	})
}

func (b *builder) load(t *testing.T) *DeviceData {
	t.Helper()
	b.dt.SortByTime()
	dd, err := Load(b.dt, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return dd
}

func TestLoadBasics(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.a")
	b.state(a, 0, trace.StateForeground)
	b.pkt(a, 10*sec, trace.StateForeground, 100, false)
	b.state(a, 20*sec, trace.StateBackground)
	b.pkt(a, 30*sec, trace.StateBackground, 200, true)
	dd := b.load(t)
	if dd.Energy.Ledger.Total <= 0 {
		t.Error("no energy")
	}
	if len(dd.Flows) != 1 {
		t.Errorf("flows = %d", len(dd.Flows))
	}
	if dd.Days != 1 {
		t.Errorf("days = %d", dd.Days)
	}
	if _, ok := dd.appID("com.a"); !ok {
		t.Error("appID lookup failed")
	}
	if _, ok := dd.appID("com.missing"); ok {
		t.Error("appID found a missing app")
	}
}

func TestTopApps(t *testing.T) {
	mk := func(dev string, hungry string) *DeviceData {
		b := newBuilder(dev)
		h := b.app(hungry)
		o := b.app("com.other")
		b.state(h, 0, trace.StateService)
		b.state(o, 0, trace.StateService)
		b.pkt(h, 10*sec, trace.StateService, 50000, false)
		b.pkt(o, 60*sec, trace.StateService, 100, false)
		return b.load(t)
	}
	devs := []*DeviceData{mk("d0", "com.shared"), mk("d1", "com.shared"), mk("d2", "com.solo")}
	res := TopApps(devs, 2)
	// com.shared appears in 2 top-10s; com.other in 3; com.solo only 1 (filtered).
	counts := map[string]float64{}
	for _, kv := range res.Counts {
		counts[kv.Key] = kv.Val
	}
	if counts["com.shared"] != 2 {
		t.Errorf("shared count = %v", counts["com.shared"])
	}
	if counts["com.other"] != 3 {
		t.Errorf("other count = %v", counts["com.other"])
	}
	if _, ok := counts["com.solo"]; ok {
		t.Error("solo app should be filtered by minUsers=2")
	}
}

func TestHungryApps(t *testing.T) {
	// com.data moves many bytes in one burst (cheap per byte); com.chatty
	// moves few bytes in many isolated bursts (expensive per byte).
	b := newBuilder("d0")
	data := b.app("com.data")
	chatty := b.app("com.chatty")
	b.state(data, 0, trace.StateService)
	b.state(chatty, 0, trace.StateService)
	t0 := 10 * sec
	for i := 0; i < 20; i++ { // one tight burst of 20 x 50 KB
		b.pkt(data, t0, trace.StateService, 50000, i > 0)
		t0 += sec / 10
	}
	for i := 0; i < 20; i++ { // 20 isolated 200-byte bursts, 60 s apart
		b.pkt(chatty, trace.Timestamp(1000+60*i)*sec, trace.StateService, 200, false)
	}
	devs := []*DeviceData{b.load(t)}
	res := HungryApps(devs, 2)
	if res.ByData[0].App != "com.data" {
		t.Errorf("top by data = %s", res.ByData[0].App)
	}
	if res.ByEnergy[0].App != "com.chatty" {
		t.Errorf("top by energy = %s", res.ByEnergy[0].App)
	}
	var dataJMB, chattyJMB float64
	for _, h := range res.ByData {
		if h.App == "com.data" {
			dataJMB = h.JPerMB
		}
		if h.App == "com.chatty" {
			chattyJMB = h.JPerMB
		}
	}
	if chattyJMB < 100*dataJMB {
		t.Errorf("chatty J/MB (%v) should dwarf bulk J/MB (%v)", chattyJMB, dataJMB)
	}
}

func TestStateBreakdowns(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.a")
	b.state(a, 0, trace.StateForeground)
	b.pkt(a, 10*sec, trace.StateForeground, 100, false)
	b.pkt(a, 100*sec, trace.StateService, 100, false)
	b.pkt(a, 200*sec, trace.StateBackground, 100, false)
	devs := []*DeviceData{b.load(t)}
	sbs := StateBreakdowns(devs, []string{"com.a"})
	if len(sbs) != 1 {
		t.Fatalf("breakdowns = %d", len(sbs))
	}
	sb := sbs[0]
	sum := 0.0
	for _, f := range sb.Fractions {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %v", sum)
	}
	if bg := sb.BackgroundShare(); bg < 0.6 || bg > 0.7 {
		t.Errorf("background share = %v", bg)
	}
	// nil packages selects top apps.
	auto := StateBreakdowns(devs, nil)
	if len(auto) != 1 || auto[0].App != "com.a" {
		t.Errorf("auto selection = %+v", auto)
	}
}

func TestPersistence(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.browser")
	// Session 1: fg packet at t=10 on flow F, backgrounded at t=20, flow F
	// persists until t=320 (300 s persistence).
	b.state(a, 5*sec, trace.StateForeground)
	b.pkt(a, 10*sec, trace.StateForeground, 1000, false)
	b.state(a, 20*sec, trace.StateBackground)
	b.pkt(a, 100*sec, trace.StateBackground, 500, true)
	b.pkt(a, 320*sec, trace.StateBackground, 500, true)
	// Session 2: clean exit, no persisting traffic.
	b.state(a, 1000*sec, trace.StateForeground)
	b.pkt(a, 1010*sec, trace.StateForeground, 1000, false)
	b.state(a, 1020*sec, trace.StateBackground)
	devs := []*DeviceData{b.load(t)}
	res := Persistence(devs, "com.browser")
	if len(res.Durations) != 2 {
		t.Fatalf("durations = %v", res.Durations)
	}
	// First transition: 300 s persistence; second: 0.
	var have300, have0 bool
	for _, d := range res.Durations {
		if d > 299 && d < 301 {
			have300 = true
		}
		if d == 0 {
			have0 = true
		}
	}
	if !have300 || !have0 {
		t.Errorf("durations = %v", res.Durations)
	}
	if res.CDF.Len() != 2 {
		t.Error("CDF missing samples")
	}
}

func TestPersistenceWindowedByReturn(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.app")
	b.state(a, 0, trace.StateForeground)
	b.pkt(a, 5*sec, trace.StateForeground, 1000, false)
	b.state(a, 10*sec, trace.StateBackground)
	// Flow continues past the next fg return at t=100.
	b.pkt(a, 50*sec, trace.StateBackground, 100, true)
	b.state(a, 100*sec, trace.StateForeground)
	b.pkt(a, 150*sec, trace.StateForeground, 100, true)
	b.state(a, 200*sec, trace.StateBackground)
	devs := []*DeviceData{b.load(t)}
	res := Persistence(devs, "com.app")
	for _, d := range res.Durations {
		if d > 190 {
			t.Errorf("duration %v not windowed at foreground return", d)
		}
	}
}

func TestSinceForeground(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.a")
	b.state(a, 0, trace.StateForeground)
	b.state(a, 10*sec, trace.StateBackground)
	// 5 KB right after backgrounding, 1 KB at 5 minutes.
	b.pkt(a, 15*sec, trace.StateBackground, 5000, false)
	b.pkt(a, 310*sec, trace.StateBackground, 1000, false)
	devs := []*DeviceData{b.load(t)}
	res := SinceForeground(devs, 10, 3600)
	if res.TotalBgBytes < 6000 {
		t.Errorf("binned bytes = %v", res.TotalBgBytes)
	}
	if res.FirstMinute < 0.7 || res.FirstMinute > 0.95 {
		t.Errorf("first minute share = %v", res.FirstMinute)
	}
}

func TestFirstMinuteCriterion(t *testing.T) {
	// App A: all bg bytes right after backgrounding (meets).
	// App B: bg bytes spread over hours (fails).
	// App C: never foregrounded (fails).
	b := newBuilder("d0")
	a := b.app("com.meets")
	bb := b.app("com.fails")
	c := b.app("com.service")
	b.state(a, 0, trace.StateForeground)
	b.state(a, 10*sec, trace.StateBackground)
	b.pkt(a, 15*sec, trace.StateBackground, 10000, false)
	b.state(bb, 0, trace.StateForeground)
	b.state(bb, 10*sec, trace.StateBackground)
	b.pkt(bb, 15*sec, trace.StateBackground, 100, false)
	for i := 1; i <= 5; i++ {
		b.pkt(bb, trace.Timestamp(i*1800)*sec, trace.StateBackground, 5000, false)
	}
	b.state(c, 0, trace.StateService)
	b.pkt(c, 100*sec, trace.StateService, 5000, false)
	devs := []*DeviceData{b.load(t)}
	res := FirstMinute(devs, 60, 0.8)
	if res.Total != 3 {
		t.Fatalf("total apps = %d", res.Total)
	}
	if res.Meeting != 1 {
		t.Errorf("meeting = %d, want 1 (only com.meets)", res.Meeting)
	}
	if res.PerApp["com.meets"] < 0.99 {
		t.Errorf("com.meets share = %v", res.PerApp["com.meets"])
	}
	if res.PerApp["com.service"] != 0 {
		t.Errorf("never-fg app share = %v", res.PerApp["com.service"])
	}
}

func TestBrowserShares(t *testing.T) {
	b := newBuilder("d0")
	leaky := b.app("com.leaky")
	clean := b.app("com.clean")
	b.state(leaky, 0, trace.StateForeground)
	b.pkt(leaky, 10*sec, trace.StateForeground, 1000, false)
	b.state(leaky, 20*sec, trace.StateBackground)
	b.pkt(leaky, 120*sec, trace.StateBackground, 1000, false)
	b.state(clean, 500*sec, trace.StateForeground)
	b.pkt(clean, 510*sec, trace.StateForeground, 1000, false)
	b.state(clean, 520*sec, trace.StateBackground)
	devs := []*DeviceData{b.load(t)}
	shares := BrowserShares(devs, []string{"com.leaky", "com.clean", "com.absent"})
	if shares["com.leaky"] < 0.3 {
		t.Errorf("leaky share = %v", shares["com.leaky"])
	}
	if shares["com.clean"] != 0 {
		t.Errorf("clean share = %v", shares["com.clean"])
	}
	if shares["com.absent"] != 0 {
		t.Errorf("absent share = %v", shares["com.absent"])
	}
}

func TestTimeline(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.chrome")
	b.state(a, 100*sec, trace.StateForeground)
	b.pkt(a, 110*sec, trace.StateForeground, 5000, false)
	b.state(a, 200*sec, trace.StateBackground)
	for i := 0; i < 10; i++ {
		b.pkt(a, trace.Timestamp(210+i*30)*sec, trace.StateBackground, 2000, true)
	}
	devs := []*DeviceData{b.load(t)}
	res, ok := Timeline(devs, "com.chrome", 120, 600, 10)
	if !ok {
		t.Fatal("no transition found")
	}
	if res.Transition != 200*sec {
		t.Errorf("transition = %v", res.Transition)
	}
	if len(res.Offsets) != int((120+600)/10) {
		t.Errorf("bins = %d", len(res.Offsets))
	}
	var pre, post float64
	for i, off := range res.Offsets {
		if off < 120 {
			pre += res.Bytes[i]
		} else {
			post += res.Bytes[i]
		}
	}
	if pre == 0 || post == 0 {
		t.Errorf("pre=%v post=%v", pre, post)
	}
	if post < pre {
		t.Errorf("leak traffic should dominate: pre=%v post=%v", pre, post)
	}
	if _, ok := Timeline(devs, "com.missing", 120, 600, 10); ok {
		t.Error("missing app should report not found")
	}
}

func TestCaseStudiesTable(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.poller")
	b.state(a, 0, trace.StateService)
	// 20 polls, 300 s apart, same connection in pairs (10 flows by port
	// rotation every 2 polls).
	for i := 0; i < 20; i++ {
		b.pkt(a, trace.Timestamp(10+i*300)*sec, trace.StateService, 5000, i%2 == 1)
	}
	devs := []*DeviceData{b.load(t)}
	rows := CaseStudies(devs, []string{"com.poller", "com.absent"}, []string{"Poller", ""})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Label != "Poller" {
		t.Errorf("label = %q", r.Label)
	}
	if r.Flows != 10 {
		t.Errorf("flows = %d", r.Flows)
	}
	if r.ActiveDays != 1 {
		t.Errorf("active days = %d", r.ActiveDays)
	}
	if r.JPerDay <= 0 || r.JPerFlow <= 0 || r.UJPerByte <= 0 {
		t.Errorf("row = %+v", r)
	}
	if r.Period.Seconds < 250 || r.Period.Seconds > 350 {
		t.Errorf("period = %v", r.Period.Seconds)
	}
	if !r.Period.IsPeriodic() {
		t.Error("poller not detected as periodic")
	}
	if rows[1].Flows != 0 || rows[1].JPerDay != 0 {
		t.Errorf("absent app row = %+v", rows[1])
	}
}

func TestComputeHeadlineOnHandTrace(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.a")
	b.state(a, 0, trace.StateForeground)
	b.pkt(a, 10*sec, trace.StateForeground, 100, false)
	b.pkt(a, 100*sec, trace.StateService, 100, false)
	devs := []*DeviceData{b.load(t)}
	h := ComputeHeadline(devs)
	if h.TotalEnergyJ <= 0 {
		t.Error("no energy")
	}
	if h.BackgroundFraction <= 0 || h.BackgroundFraction >= 1 {
		t.Errorf("bg fraction = %v", h.BackgroundFraction)
	}
}

func TestMergedLedger(t *testing.T) {
	mk := func(dev string) *DeviceData {
		b := newBuilder(dev)
		a := b.app("com.a")
		b.state(a, 0, trace.StateService)
		b.pkt(a, 10*sec, trace.StateService, 1000, false)
		return b.load(t)
	}
	devs := []*DeviceData{mk("d0"), mk("d1")}
	m := MergedLedger(devs)
	want := devs[0].Energy.Ledger.Total + devs[1].Energy.Ledger.Total
	if m.Total != want {
		t.Errorf("merged total = %v, want %v", m.Total, want)
	}
}

// pktHTTP emits a packet with an HTTP request prefix toward host.
func (b *builder) pktHTTP(app uint32, ts trace.Timestamp, st trace.ProcState, host string, bytes int, samePort bool) {
	if !samePort {
		b.port++
	}
	req := []byte("GET /r HTTP/1.1\r\nHost: " + host + "\r\n")
	buf := make([]byte, 4096)
	stored, _, err := netparse.BuildTCPv4SnappedPayload(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 1, 2, 3},
		b.port, 443, 0, netparse.TCPAck|netparse.TCPPsh, req, bytes, 96)
	if err != nil {
		panic(err)
	}
	b.dt.Records = append(b.dt.Records, trace.Record{
		Type: trace.RecPacket, TS: ts, App: app, Dir: trace.DirUp,
		Net: trace.NetCellular, State: st, Payload: buf[:stored],
	})
}

func TestHostBreakdown(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.browser")
	b.state(a, 0, trace.StateForeground)
	// Foreground page load to a content host.
	b.pktHTTP(a, 10*sec, trace.StateForeground, "www-000abc.content.example", 5000, false)
	b.state(a, 20*sec, trace.StateBackground)
	// Background leak: 3 requests to an ad host, 2 to analytics.
	for i := 0; i < 3; i++ {
		b.pktHTTP(a, trace.Timestamp(100+i*30)*sec, trace.StateBackground, "pix.adserver.example", 2000, i > 0)
	}
	for i := 0; i < 2; i++ {
		b.pktHTTP(a, trace.Timestamp(400+i*30)*sec, trace.StateBackground, "t.metrics.example", 1000, i > 0)
	}
	devs := []*DeviceData{b.load(t)}

	bg := HostBreakdown(devs, "com.browser", true)
	if len(bg.Hosts) != 2 {
		t.Fatalf("bg hosts = %+v", bg.Hosts)
	}
	var ads, analytics HostStat
	for _, h := range bg.Hosts {
		switch h.Host {
		case "pix.adserver.example":
			ads = h
		case "t.metrics.example":
			analytics = h
		}
	}
	if ads.Requests != 3 || analytics.Requests != 2 {
		t.Errorf("requests: ads=%d analytics=%d", ads.Requests, analytics.Requests)
	}
	if bg.ThirdPartyShare() < 0.99 {
		t.Errorf("third-party share = %v, want ~1 (all bg traffic is 3rd party)", bg.ThirdPartyShare())
	}

	all := HostBreakdown(devs, "com.browser", false)
	if len(all.Hosts) != 3 {
		t.Fatalf("all hosts = %+v", all.Hosts)
	}
	if all.ThirdPartyShare() > 0.9 {
		t.Errorf("with fg content included, third-party share = %v", all.ThirdPartyShare())
	}
}

func TestHostBreakdownResponsesInheritFlowHost(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.app")
	b.state(a, 0, trace.StateService)
	// Request with host, then a continuation packet on the same flow
	// without any HTTP prefix.
	b.pktHTTP(a, 10*sec, trace.StateService, "api.svc.content.example", 1000, false)
	b.pkt(a, 11*sec, trace.StateService, 50000, true)
	devs := []*DeviceData{b.load(t)}
	res := HostBreakdown(devs, "com.app", false)
	if len(res.Hosts) != 1 {
		t.Fatalf("hosts = %+v", res.Hosts)
	}
	if res.Hosts[0].Bytes < 50000 {
		t.Errorf("continuation bytes not attributed: %+v", res.Hosts[0])
	}
	if res.UnattributedBytes != 0 {
		t.Errorf("unattributed = %d", res.UnattributedBytes)
	}
}

func TestHostBreakdownUnattributed(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.app")
	b.state(a, 0, trace.StateService)
	b.pkt(a, 10*sec, trace.StateService, 3000, false) // no HTTP prefix at all
	devs := []*DeviceData{b.load(t)}
	res := HostBreakdown(devs, "com.app", false)
	if len(res.Hosts) != 0 || res.UnattributedBytes == 0 {
		t.Errorf("res = %+v", res)
	}
}

func (b *builder) screen(ts trace.Timestamp, on bool) {
	b.dt.Records = append(b.dt.Records, trace.Record{Type: trace.RecScreen, TS: ts, ScreenOn: on})
}

func TestScreenOnAt(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.a")
	b.state(a, 0, trace.StateService)
	b.pkt(a, 5*sec, trace.StateService, 100, false)
	b.screen(10*sec, true)
	b.screen(20*sec, false)
	b.screen(30*sec, true) // still on at trace end
	b.pkt(a, 40*sec, trace.StateService, 100, false)
	dd := b.load(t)
	cases := []struct {
		ts   trace.Timestamp
		want bool
	}{
		{5 * sec, false}, {10 * sec, true}, {15 * sec, true},
		{20 * sec, false}, {25 * sec, false}, {35 * sec, true},
	}
	for _, c := range cases {
		if got := dd.ScreenOnAt(c.ts); got != c.want {
			t.Errorf("ScreenOnAt(%d) = %v, want %v", c.ts/sec, got, c.want)
		}
	}
}

func TestScreenOff(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.night")
	bb := b.app("com.day")
	b.state(a, 0, trace.StateService)
	b.state(bb, 0, trace.StateService)
	b.screen(100*sec, true)
	b.screen(200*sec, false)
	// com.day's packet while screen on; com.night's two while off.
	b.pkt(bb, 150*sec, trace.StateService, 1000, false)
	b.pkt(a, 300*sec, trace.StateService, 1000, false)
	b.pkt(a, 400*sec, trace.StateService, 1000, false)
	devs := []*DeviceData{b.load(t)}
	res := ScreenOff(devs, 5)
	if res.OffBytes <= res.OnBytes {
		t.Errorf("off=%d on=%d", res.OffBytes, res.OnBytes)
	}
	if f := res.OffByteFraction(); f < 0.6 || f > 0.7 {
		t.Errorf("off byte fraction = %v", f)
	}
	if res.OffEnergyFraction() <= 0.5 {
		t.Errorf("off energy fraction = %v", res.OffEnergyFraction())
	}
	if len(res.TopOffApps) == 0 || res.TopOffApps[0].App != "com.night" {
		t.Errorf("top off apps = %+v", res.TopOffApps)
	}
}

func TestScreenOffEmpty(t *testing.T) {
	res := ScreenOff(nil, 5)
	if res.OffByteFraction() != 0 || res.OffEnergyFraction() != 0 {
		t.Error("empty fleet should have zero fractions")
	}
}

// pktSeq emits a packet with an explicit TCP sequence number.
func (b *builder) pktSeq(app uint32, ts trace.Timestamp, st trace.ProcState, bytes int, seq uint32, samePort bool) {
	if !samePort {
		b.port++
	}
	buf := make([]byte, 96)
	stored, _, err := netparse.BuildTCPv4Snapped(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 1, 2, 3},
		b.port, 443, seq, netparse.TCPAck, bytes, 96)
	if err != nil {
		panic(err)
	}
	b.dt.Records = append(b.dt.Records, trace.Record{
		Type: trace.RecPacket, TS: ts, App: app, Dir: trace.DirUp,
		Net: trace.NetCellular, State: st, Payload: buf[:stored],
	})
}

func TestRetransmissions(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.lossy")
	b.state(a, 0, trace.StateService)
	// 1000-byte payloads: seq 0, 1000 (new), then 1000 again (retrans),
	// then 2000 (new).
	b.pktSeq(a, 10*sec, trace.StateService, 1000, 0, false)
	b.pktSeq(a, 11*sec, trace.StateService, 1000, 1000, true)
	b.pktSeq(a, 12*sec, trace.StateService, 1000, 1000, true)
	b.pktSeq(a, 13*sec, trace.StateService, 1000, 2000, true)
	devs := []*DeviceData{b.load(t)}
	res := Retransmissions(devs, 5)
	if res.Total.Retrans != 1000 {
		t.Errorf("retrans bytes = %d", res.Total.Retrans)
	}
	if res.Total.Goodput != 3000 {
		t.Errorf("goodput = %d", res.Total.Goodput)
	}
	if res.WastedEnergyJ <= 0 {
		t.Error("no wasted energy attributed")
	}
	if len(res.PerApp) != 1 || res.PerApp[0].App != "com.lossy" {
		t.Fatalf("per app = %+v", res.PerApp)
	}
	if f := res.PerApp[0].Fraction(); f < 0.24 || f > 0.26 {
		t.Errorf("app retrans fraction = %v", f)
	}
}

func TestRetransmissionsDirectionsSeparate(t *testing.T) {
	// The same sequence numbers in opposite directions must not collide.
	b := newBuilder("d0")
	a := b.app("com.app")
	b.state(a, 0, trace.StateService)
	b.pktSeq(a, 10*sec, trace.StateService, 500, 0, false)
	// Down-direction packet, same tuple and seq.
	buf := make([]byte, 96)
	stored, _, err := netparse.BuildTCPv4Snapped(buf, [4]byte{23, 1, 2, 3}, [4]byte{10, 0, 0, 1},
		443, b.port, 0, netparse.TCPAck, 500, 96)
	if err != nil {
		t.Fatal(err)
	}
	b.dt.Records = append(b.dt.Records, trace.Record{
		Type: trace.RecPacket, TS: 11 * sec, App: a, Dir: trace.DirDown,
		Net: trace.NetCellular, State: trace.StateService, Payload: buf[:stored],
	})
	devs := []*DeviceData{b.load(t)}
	res := Retransmissions(devs, 5)
	if res.Total.Retrans != 0 {
		t.Errorf("cross-direction segments misclassified as retrans: %+v", res.Total)
	}
}

func TestWeekly(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.a")
	b.state(a, 0, trace.StateService)
	day := trace.Timestamp(86400) * sec
	// Week 0: 2 isolated bursts; week 1: 6; week 2: 2.
	for i := 0; i < 2; i++ {
		b.pkt(a, trace.Timestamp(i)*day+10*sec, trace.StateService, 500, false)
	}
	for i := 0; i < 6; i++ {
		b.pkt(a, 7*day+trace.Timestamp(i)*3600*sec, trace.StateService, 500, false)
	}
	for i := 0; i < 2; i++ {
		b.pkt(a, 14*day+trace.Timestamp(i)*3600*sec, trace.StateService, 500, false)
	}
	// Week 3 exists so the week-1 -> week-2 transition is interior.
	b.pkt(a, 21*day+10*sec, trace.StateService, 500, false)
	devs := []*DeviceData{b.load(t)}
	res := Weekly(devs)
	if len(res.Weeks) != 4 {
		t.Fatalf("weeks = %v", res.Weeks)
	}
	if res.Weeks[1] < 2*res.Weeks[0] {
		t.Errorf("week 1 (%v) should dwarf week 0 (%v)", res.Weeks[1], res.Weeks[0])
	}
	if res.MaxWeekOverWeekChange <= 0 {
		t.Errorf("fluctuation = %v", res.MaxWeekOverWeekChange)
	}
}

func TestWeeklyEmpty(t *testing.T) {
	res := Weekly(nil)
	if len(res.Weeks) != 0 || res.MaxWeekOverWeekChange != 0 {
		t.Errorf("empty trend = %+v", res)
	}
}

func TestCompareNetworks(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.a")
	b.state(a, 0, trace.StateService)
	// Identical burst patterns on each interface.
	for i := 0; i < 5; i++ {
		b.pkt(a, trace.Timestamp(100+i*60)*sec, trace.StateService, 2000, false)
	}
	// Clone the last five packets as WiFi.
	n := len(b.dt.Records)
	for i := n - 5; i < n; i++ {
		r := b.dt.Records[i]
		r.Net = trace.NetWiFi
		r.TS += 1000 * sec
		b.dt.Records = append(b.dt.Records, r)
	}
	b.dt.SortByTime()
	res, err := CompareNetworks([]*trace.DeviceTrace{b.dt})
	if err != nil {
		t.Fatal(err)
	}
	if res.CellularBytes != res.WiFiBytes {
		t.Errorf("bytes differ: %d vs %d", res.CellularBytes, res.WiFiBytes)
	}
	if res.Ratio() < 20 {
		t.Errorf("cellular/wifi ratio = %v, want >>1 for intermittent bursts", res.Ratio())
	}
}

func TestDNSAnalysis(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.a")
	b.state(a, 0, trace.StateService)
	// An isolated DNS lookup (wakes the radio), then a TCP burst, then a
	// DNS lookup inside the burst's tail (does not wake).
	addDNS := func(ts trace.Timestamp, up bool) {
		buf := make([]byte, 256)
		var n int
		var err error
		if up {
			n, err = netparse.BuildUDPv4(buf, [4]byte{10, 0, 0, 1}, [4]byte{198, 51, 100, 53}, 40001, 53, 40)
		} else {
			n, err = netparse.BuildUDPv4(buf, [4]byte{198, 51, 100, 53}, [4]byte{10, 0, 0, 1}, 53, 40001, 120)
		}
		if err != nil {
			t.Fatal(err)
		}
		dir := trace.DirUp
		if !up {
			dir = trace.DirDown
		}
		b.dt.Records = append(b.dt.Records, trace.Record{
			Type: trace.RecPacket, TS: ts, App: a, Dir: dir,
			Net: trace.NetCellular, State: trace.StateService, Payload: buf[:n],
		})
	}
	addDNS(10*sec, true)
	addDNS(10*sec+sec/10, false)
	b.pkt(a, 11*sec, trace.StateService, 5000, false)
	addDNS(13*sec, true) // within the TCP burst's tail
	addDNS(13*sec+sec/10, false)
	devs := []*DeviceData{b.load(t)}
	res := DNS(devs, radioLTE())
	if res.Lookups != 2 {
		t.Fatalf("lookups = %d", res.Lookups)
	}
	if res.WakeLookups != 1 {
		t.Errorf("wake lookups = %d, want 1", res.WakeLookups)
	}
	if res.WakeFraction() != 0.5 {
		t.Errorf("wake fraction = %v", res.WakeFraction())
	}
	if res.Bytes == 0 || res.Energy <= 0 {
		t.Errorf("dns bytes/energy: %+v", res)
	}
}

func TestTimelinePowerOverlay(t *testing.T) {
	b := newBuilder("d0")
	a := b.app("com.chrome")
	b.state(a, 100*sec, trace.StateForeground)
	b.pkt(a, 110*sec, trace.StateForeground, 5000, false)
	b.state(a, 200*sec, trace.StateBackground)
	for i := 0; i < 5; i++ {
		b.pkt(a, trace.Timestamp(210+i*30)*sec, trace.StateBackground, 2000, true)
	}
	devs := []*DeviceData{b.load(t)}
	res, ok := Timeline(devs, "com.chrome", 60, 300, 10)
	if !ok {
		t.Fatal("no transition")
	}
	if len(res.PowerW) != len(res.Offsets) {
		t.Fatalf("power bins = %d, offsets = %d", len(res.PowerW), len(res.Offsets))
	}
	// Power must be positive in bins right after each burst (tail) and
	// bounded by the LTE peak (~3.8 W during uplink transfer).
	var peak, total float64
	for _, p := range res.PowerW {
		if p < 0 {
			t.Fatalf("negative power: %v", res.PowerW)
		}
		if p > peak {
			peak = p
		}
		total += p
	}
	if total == 0 {
		t.Fatal("power overlay all zero")
	}
	if peak > 4.0 {
		t.Errorf("peak mean power = %v W, above any LTE state", peak)
	}
	// Tail bins (~1.06 W) should exist right after the bursts.
	sawTail := false
	for i, off := range res.Offsets {
		if off >= 60 && res.PowerW[i] > 0.9 && res.PowerW[i] < 1.4 {
			sawTail = true
		}
	}
	if !sawTail {
		t.Errorf("no tail-level power bins: %v", res.PowerW)
	}
}
