package analysis

import (
	"netenergy/internal/netparse"
	"netenergy/internal/radio"
)

// DNSResult characterises the cost of name resolution: tiny UDP exchanges
// that nevertheless wake the radio when they arrive in isolation. A DNS
// lookup that triggers an LTE promotion costs ~12 J for ~200 bytes — the
// most extreme instance of the small-transfer overhead the paper studies.
type DNSResult struct {
	Lookups     int     // query packets seen
	Bytes       int64   // total DNS bytes (both directions)
	Energy      float64 // J attributed to DNS packets
	WakeLookups int     // lookups that found the radio idle (paid promotion+tail)
}

// WakeFraction returns the share of lookups that woke the radio.
func (r DNSResult) WakeFraction() float64 {
	if r.Lookups == 0 {
		return 0
	}
	return float64(r.WakeLookups) / float64(r.Lookups)
}

// DNS computes the resolver-traffic overhead across the fleet. A lookup
// "wakes the radio" when the preceding packet on the device ended more
// than the radio's tail time earlier.
func DNS(devs []*DeviceData, p radio.Params) DNSResult {
	var res DNSResult
	tail := p.TailTime()
	for _, d := range devs {
		var prevTS float64
		havePrev := false
		for i := range d.Energy.Packets {
			pkt := &d.Energy.Packets[i]
			ts := pkt.TS.Seconds()
			isDNS := pkt.Tuple.Proto == netparse.IPProtoUDP &&
				(pkt.Tuple.PortA == 53 || pkt.Tuple.PortB == 53)
			if isDNS {
				res.Bytes += int64(pkt.Bytes)
				res.Energy += pkt.Energy
				// Queries are the uplink half of the exchange.
				if pkt.Tuple.PortB == 53 || pkt.Tuple.PortA == 53 {
					if pkt.Bytes < 100 { // queries are smaller than responses
						res.Lookups++
						if !havePrev || ts-prevTS > tail {
							res.WakeLookups++
						}
					}
				}
			}
			prevTS = ts
			havePrev = true
		}
	}
	return res
}
