package analysis

import (
	"io"
	"os"

	"netenergy/internal/energy"
	"netenergy/internal/netparse"
	"netenergy/internal/periodic"
	"netenergy/internal/radio"
	"netenergy/internal/stats"
	"netenergy/internal/trace"
)

// StreamResult is the bounded-memory subset of the study computed in one
// sequential pass over a trace stream: the energy ledgers, the Figure 6
// series, the first-minute byte counters and the screen-off split. Memory
// is O(apps + bins), independent of trace length — the mode that handles
// the paper's 125 GB dataset.
type StreamResult struct {
	Device       string
	Ledger       *energy.Ledger
	DecodeErrors int

	// Fig6 accumulators (10 s bins over 2 h).
	SinceFg *stats.TimeBins

	// First-minute criterion accumulators, keyed by app ID.
	BgBytesByApp    map[uint32]int64
	EarlyBytesByApp map[uint32]int64
	EverForeground  map[uint32]bool

	// Screen split.
	OffBytes, OnBytes   int64
	OffEnergy, OnEnergy float64

	Span [2]trace.Timestamp
}

// newStreamResult returns an empty result with all accumulators allocated.
func newStreamResult(device string) *StreamResult {
	return &StreamResult{
		Device:          device,
		Ledger:          energy.NewLedger(),
		SinceFg:         stats.NewTimeBins(10, 720),
		BgBytesByApp:    map[uint32]int64{},
		EarlyBytesByApp: map[uint32]int64{},
		EverForeground:  map[uint32]bool{},
	}
}

// NewStreamResult returns an empty result, for callers that accumulate via
// Merge (the ingest shards seed their fleet aggregate with one).
func NewStreamResult(device string) *StreamResult { return newStreamResult(device) }

// Clone returns a deep copy: mutating the clone (or continuing to feed the
// original) leaves the other untouched. Used to snapshot live accumulators.
func (r *StreamResult) Clone() *StreamResult {
	c := newStreamResult(r.Device)
	c.Merge(r)
	return c
}

// Merge adds other's accumulators into r, turning per-device stream results
// into fleet aggregates. App IDs must be comparable across devices (same
// caveat as energy.MergeLedgers). Fig6 bins merge by time offset, so
// differing bin layouts still combine correctly.
func (r *StreamResult) Merge(other *StreamResult) {
	r.DecodeErrors += other.DecodeErrors
	r.Ledger.Merge(other.Ledger)
	if r.SinceFg.Width == other.SinceFg.Width && len(r.SinceFg.Vals) == len(other.SinceFg.Vals) {
		for i, v := range other.SinceFg.Vals {
			r.SinceFg.Vals[i] += v
		}
	} else {
		for i, v := range other.SinceFg.Vals {
			r.SinceFg.Add(float64(i)*other.SinceFg.Width, v)
		}
	}
	for app, b := range other.BgBytesByApp {
		r.BgBytesByApp[app] += b
	}
	for app, b := range other.EarlyBytesByApp {
		r.EarlyBytesByApp[app] += b
	}
	for app, v := range other.EverForeground {
		if v {
			r.EverForeground[app] = true
		}
	}
	r.OffBytes += other.OffBytes
	r.OnBytes += other.OnBytes
	r.OffEnergy += other.OffEnergy
	r.OnEnergy += other.OnEnergy
	if r.Span[0] == 0 || (other.Span[0] != 0 && other.Span[0] < r.Span[0]) {
		r.Span[0] = other.Span[0]
	}
	if other.Span[1] > r.Span[1] {
		r.Span[1] = other.Span[1]
	}
}

// FirstMinuteFraction evaluates the §4.1 criterion over the streamed
// accumulators.
func (r *StreamResult) FirstMinuteFraction(threshold float64) float64 {
	total, meeting := 0, 0
	for app, b := range r.BgBytesByApp {
		if b <= 0 {
			continue
		}
		total++
		share := float64(r.EarlyBytesByApp[app]) / float64(b)
		if !r.EverForeground[app] {
			share = 0
		}
		if share >= threshold {
			meeting++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(meeting) / float64(total)
}

// SinceForeground converts the streamed bins into the Figure 6 result.
func (r *StreamResult) SinceForeground() SinceForegroundResult {
	offs, vals := r.SinceFg.Series()
	res := SinceForegroundResult{BinWidth: r.SinceFg.Width, Offsets: offs, Bytes: vals}
	res.TotalBgBytes = stats.Sum(vals)
	if res.TotalBgBytes > 0 {
		var first float64
		for i := range offs {
			if offs[i] < 60 {
				first += vals[i]
			}
		}
		res.FirstMinute = first / res.TotalBgBytes
	}
	res.Spike5m = periodic.SpikeScore(vals, int(300/r.SinceFg.Width), 6)
	res.Spike10m = periodic.SpikeScore(vals, int(600/r.SinceFg.Width), 6)
	return res
}

// StreamAccumulator is the push-mode form of the bounded-memory analyzer:
// records are fed to it one at a time (in timestamp order, as a device
// produces them) and the StreamResult advances in lockstep. The batch
// StreamDevice pass and the live ingest server are both built on it.
// Not safe for concurrent use; one accumulator per device stream.
type StreamAccumulator struct {
	opts   energy.Options
	res    *StreamResult
	parser *netparse.Parser
	acct   *radio.Accountant

	// Incremental per-app state: whether the app is foreground now and the
	// end of its latest foreground interval.
	lastFgEnd map[uint32]trace.Timestamp
	inFg      map[uint32]bool
	screenOn  bool

	prevApp   uint32
	prevState trace.ProcState
	prevDay   int
	havePrev  bool
	records   int64
}

// NewStreamAccumulator returns an accumulator for one device stream.
func NewStreamAccumulator(device string, opts energy.Options) *StreamAccumulator {
	if opts.Radio.Name == "" {
		opts.Radio = radio.LTE()
	}
	parser := netparse.NewParser()
	parser.VerifyChecksums = opts.VerifyChecksums
	parser.Snap = opts.Snap
	return &StreamAccumulator{
		opts:      opts,
		res:       newStreamResult(device),
		parser:    parser,
		acct:      radio.NewAccountant(opts.Radio),
		lastFgEnd: map[uint32]trace.Timestamp{},
		inFg:      map[uint32]bool{},
	}
}

// Records returns the number of records fed so far.
func (a *StreamAccumulator) Records() int64 { return a.records }

// Feed advances the accumulator by one record. Nothing is retained per
// packet: the radio accountant, the process-state snapshot, the screen flag
// and the aggregate bins advance in lockstep with the stream. The record
// (and its Payload) may be reused by the caller after Feed returns.
//
// Feed and FeedBatch share the per-type helpers below, so feeding a batch
// is bit-identical — same float operations in the same order — to feeding
// its records one at a time. The differential harness in equiv_test.go
// holds the two paths to that standard.
func (a *StreamAccumulator) Feed(rec *trace.Record) {
	a.records++
	switch rec.Type {
	case trace.RecProcState:
		a.feedProcState(rec.TS, rec.App, rec.State)
	case trace.RecScreen:
		a.feedScreen(rec.ScreenOn)
	case trace.RecPacket:
		a.feedPacket(rec.TS, rec.App, rec.Dir, rec.Net, rec.State, rec.Payload)
	}
}

// FeedBatch advances the accumulator over every record of a batch, reading
// the columns directly — no Record materialisation. Equivalent to calling
// Feed on each record in order.
//
//repolint:noalloc
func (a *StreamAccumulator) FeedBatch(b *trace.RecordBatch) {
	n := b.Len()
	a.records += int64(n)
	for i := 0; i < n; i++ {
		switch b.Types[i] {
		case trace.RecProcState:
			a.feedProcState(b.TS[i], b.App[i], trace.ProcState(b.Aux[i]))
		case trace.RecScreen:
			a.feedScreen(b.Flags[i]&1 != 0)
		case trace.RecPacket:
			f := b.Flags[i]
			a.feedPacket(b.TS[i], b.App[i], trace.Direction(f&1),
				trace.Network((f>>1)&1), trace.ProcState(b.Aux[i]), b.Bytes(i))
		}
	}
}

//repolint:noalloc
func (a *StreamAccumulator) feedProcState(ts trace.Timestamp, app uint32, state trace.ProcState) {
	if a.inFg[app] && !state.IsForeground() {
		a.lastFgEnd[app] = ts
	}
	a.inFg[app] = state.IsForeground()
	if state.IsForeground() {
		a.res.EverForeground[app] = true
	}
}

//repolint:noalloc
func (a *StreamAccumulator) feedScreen(on bool) {
	a.screenOn = on
}

//repolint:noalloc
func (a *StreamAccumulator) feedPacket(ts trace.Timestamp, app uint32, pdir trace.Direction,
	net trace.Network, state trace.ProcState, payload []byte) {
	res := a.res
	if net != a.opts.Network {
		return
	}
	d, err := a.parser.DecodePacket(payload)
	if err != nil {
		res.DecodeErrors++
		return
	}
	if !a.havePrev {
		res.Span[0] = ts
	}
	res.Span[1] = ts
	dir := radio.Down
	if pdir == trace.DirUp {
		dir = radio.Up
	}
	c := a.acct.OnPacket(ts.Seconds(), d.WireLen, dir)
	day := ts.Day()
	if c.GapTail > 0 && a.havePrev {
		res.Ledger.Charge(a.prevApp, a.prevState, a.prevDay, c.GapTail)
	} else if c.GapTail > 0 {
		res.Ledger.Charge(app, state, day, c.GapTail)
	}
	own := c.Promotion + c.Transfer
	res.Ledger.Charge(app, state, day, own)
	res.Ledger.AddPacket(app, day, state, int64(d.WireLen))

	if state.IsBackground() {
		res.BgBytesByApp[app] += int64(d.WireLen)
		fgEnd, wasFg := a.lastFgEnd[app]
		if a.inFg[app] {
			fgEnd, wasFg = ts, true
		}
		if wasFg {
			since := ts.Sub(fgEnd)
			res.SinceFg.Add(since, float64(d.WireLen))
			if since <= 60 {
				res.EarlyBytesByApp[app] += int64(d.WireLen)
			}
		}
	}
	if a.screenOn {
		res.OnBytes += int64(d.WireLen)
		res.OnEnergy += own + c.GapTail
	} else {
		res.OffBytes += int64(d.WireLen)
		res.OffEnergy += own + c.GapTail
	}
	a.prevApp, a.prevState, a.prevDay = app, state, day
	a.havePrev = true
}

// Finish closes the stream — the radio rides its final tail out and the
// idle baseline is settled — and returns the completed result. The
// accumulator must not be fed afterwards.
func (a *StreamAccumulator) Finish() *StreamResult {
	if fin := a.acct.Finish(); fin > 0 && a.havePrev {
		a.res.Ledger.Charge(a.prevApp, a.prevState, a.prevDay, fin)
	}
	a.res.Ledger.IdleEnergy = a.opts.Radio.IdlePower * a.res.Span[1].Sub(a.res.Span[0])
	return a.res
}

// Snapshot returns a deep copy of the result as if the stream ended now:
// the pending radio tail and idle baseline are charged on the copy, while
// the live accumulator continues unperturbed. This is what makes the fleet
// headline queryable mid-stream.
func (a *StreamAccumulator) Snapshot() *StreamResult {
	c := a.res.Clone()
	if a.havePrev && a.acct.State() != radio.Idle {
		c.Ledger.Charge(a.prevApp, a.prevState, a.prevDay, a.acct.Params().FullTailEnergy())
	}
	c.Ledger.IdleEnergy = a.opts.Radio.IdlePower * c.Span[1].Sub(c.Span[0])
	return c
}

// StreamDevice processes one METR stream record by record. Records must be
// in timestamp order (generated traces are).
func StreamDevice(r *trace.Reader, opts energy.Options) (*StreamResult, error) {
	acc := NewStreamAccumulator(r.Device(), opts)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		acc.Feed(rec)
	}
	return acc.Finish(), nil
}

// StreamBatches processes a trace stream batch-at-a-time through the
// columnar feed path: METR-3 blocks are served zero-copy as column
// batches, row containers are assembled into batches by the reader.
// Results are bit-identical to StreamDevice over the same records.
func StreamBatches(br *trace.BatchReader, opts energy.Options) (*StreamResult, error) {
	acc := NewStreamAccumulator(br.Device(), opts)
	for {
		b, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		acc.FeedBatch(b)
	}
	return acc.Finish(), nil
}

// StreamFleet runs StreamDevice over every file of a fleet, merging the
// aggregate accumulators. Peak memory is one device's O(apps) state.
func StreamFleet(fleet *trace.Fleet, opts energy.Options) (*StreamResult, error) {
	agg := newStreamResult("fleet")
	for _, path := range fleet.Paths {
		res, err := streamFile(path, opts)
		if err != nil {
			return nil, err
		}
		agg.Merge(res)
	}
	return agg, nil
}

func streamFile(path string, opts energy.Options) (*StreamResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br, err := trace.NewBatchReader(f)
	if err != nil {
		return nil, err
	}
	return StreamBatches(br, opts)
}
