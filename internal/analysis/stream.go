package analysis

import (
	"io"
	"os"

	"netenergy/internal/energy"
	"netenergy/internal/netparse"
	"netenergy/internal/periodic"
	"netenergy/internal/radio"
	"netenergy/internal/stats"
	"netenergy/internal/trace"
)

// StreamResult is the bounded-memory subset of the study computed in one
// sequential pass over a trace stream: the energy ledgers, the Figure 6
// series, the first-minute byte counters and the screen-off split. Memory
// is O(apps + bins), independent of trace length — the mode that handles
// the paper's 125 GB dataset.
type StreamResult struct {
	Device       string
	Ledger       *energy.Ledger
	DecodeErrors int

	// Fig6 accumulators (10 s bins over 2 h).
	SinceFg *stats.TimeBins

	// First-minute criterion accumulators, keyed by app ID.
	BgBytesByApp    map[uint32]int64
	EarlyBytesByApp map[uint32]int64
	EverForeground  map[uint32]bool

	// Screen split.
	OffBytes, OnBytes   int64
	OffEnergy, OnEnergy float64

	Span [2]trace.Timestamp
}

// FirstMinuteFraction evaluates the §4.1 criterion over the streamed
// accumulators.
func (r *StreamResult) FirstMinuteFraction(threshold float64) float64 {
	total, meeting := 0, 0
	for app, b := range r.BgBytesByApp {
		if b <= 0 {
			continue
		}
		total++
		share := float64(r.EarlyBytesByApp[app]) / float64(b)
		if !r.EverForeground[app] {
			share = 0
		}
		if share >= threshold {
			meeting++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(meeting) / float64(total)
}

// SinceForeground converts the streamed bins into the Figure 6 result.
func (r *StreamResult) SinceForeground() SinceForegroundResult {
	offs, vals := r.SinceFg.Series()
	res := SinceForegroundResult{BinWidth: r.SinceFg.Width, Offsets: offs, Bytes: vals}
	res.TotalBgBytes = stats.Sum(vals)
	if res.TotalBgBytes > 0 {
		var first float64
		for i := range offs {
			if offs[i] < 60 {
				first += vals[i]
			}
		}
		res.FirstMinute = first / res.TotalBgBytes
	}
	res.Spike5m = periodic.SpikeScore(vals, int(300/r.SinceFg.Width), 6)
	res.Spike10m = periodic.SpikeScore(vals, int(600/r.SinceFg.Width), 6)
	return res
}

// StreamDevice processes one METR stream record by record. Nothing is
// retained per packet: the radio accountant, the process-state snapshot,
// the screen flag and the aggregate bins advance in lockstep with the
// stream. Records must be in timestamp order (generated traces are).
func StreamDevice(r *trace.Reader, opts energy.Options) (*StreamResult, error) {
	if opts.Radio.Name == "" {
		opts.Radio = radio.LTE()
	}
	res := &StreamResult{
		Device:          r.Device(),
		Ledger:          energy.NewLedger(),
		SinceFg:         stats.NewTimeBins(10, 720),
		BgBytesByApp:    map[uint32]int64{},
		EarlyBytesByApp: map[uint32]int64{},
		EverForeground:  map[uint32]bool{},
	}
	parser := netparse.NewParser()
	parser.VerifyChecksums = opts.VerifyChecksums
	parser.Snap = opts.Snap
	acct := radio.NewAccountant(opts.Radio)

	// Incremental per-app state: whether the app is foreground now and the
	// end of its latest foreground interval.
	lastFgEnd := map[uint32]trace.Timestamp{}
	inFg := map[uint32]bool{}
	screenOn := false

	var prevApp uint32
	var prevState trace.ProcState
	var prevDay int
	havePrev := false

	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch rec.Type {
		case trace.RecProcState:
			if inFg[rec.App] && !rec.State.IsForeground() {
				lastFgEnd[rec.App] = rec.TS
			}
			inFg[rec.App] = rec.State.IsForeground()
			if rec.State.IsForeground() {
				res.EverForeground[rec.App] = true
			}
		case trace.RecScreen:
			screenOn = rec.ScreenOn
		case trace.RecPacket:
			if rec.Net != opts.Network {
				continue
			}
			d, err := parser.DecodePacket(rec.Payload)
			if err != nil {
				res.DecodeErrors++
				continue
			}
			if !havePrev {
				res.Span[0] = rec.TS
			}
			res.Span[1] = rec.TS
			dir := radio.Down
			if rec.Dir == trace.DirUp {
				dir = radio.Up
			}
			c := acct.OnPacket(rec.TS.Seconds(), d.WireLen, dir)
			day := rec.TS.Day()
			if c.GapTail > 0 && havePrev {
				res.Ledger.Charge(prevApp, prevState, prevDay, c.GapTail)
			} else if c.GapTail > 0 {
				res.Ledger.Charge(rec.App, rec.State, day, c.GapTail)
			}
			own := c.Promotion + c.Transfer
			res.Ledger.Charge(rec.App, rec.State, day, own)
			res.Ledger.AddPacket(rec.App, day, rec.State, int64(d.WireLen))

			if rec.State.IsBackground() {
				res.BgBytesByApp[rec.App] += int64(d.WireLen)
				fgEnd, wasFg := lastFgEnd[rec.App]
				if inFg[rec.App] {
					fgEnd, wasFg = rec.TS, true
				}
				if wasFg {
					since := rec.TS.Sub(fgEnd)
					res.SinceFg.Add(since, float64(d.WireLen))
					if since <= 60 {
						res.EarlyBytesByApp[rec.App] += int64(d.WireLen)
					}
				}
			}
			if screenOn {
				res.OnBytes += int64(d.WireLen)
				res.OnEnergy += own + c.GapTail
			} else {
				res.OffBytes += int64(d.WireLen)
				res.OffEnergy += own + c.GapTail
			}
			prevApp, prevState, prevDay = rec.App, rec.State, day
			havePrev = true
		}
	}
	if fin := acct.Finish(); fin > 0 && havePrev {
		res.Ledger.Charge(prevApp, prevState, prevDay, fin)
	}
	res.Ledger.IdleEnergy = opts.Radio.IdlePower * res.Span[1].Sub(res.Span[0])
	return res, nil
}

// StreamFleet runs StreamDevice over every file of a fleet, merging the
// aggregate accumulators. Peak memory is one device's O(apps) state.
func StreamFleet(fleet *trace.Fleet, opts energy.Options) (*StreamResult, error) {
	agg := &StreamResult{
		Device:          "fleet",
		Ledger:          energy.NewLedger(),
		SinceFg:         stats.NewTimeBins(10, 720),
		BgBytesByApp:    map[uint32]int64{},
		EarlyBytesByApp: map[uint32]int64{},
		EverForeground:  map[uint32]bool{},
	}
	for _, path := range fleet.Paths {
		res, err := streamFile(path, opts)
		if err != nil {
			return nil, err
		}
		agg.DecodeErrors += res.DecodeErrors
		agg.OffBytes += res.OffBytes
		agg.OnBytes += res.OnBytes
		agg.OffEnergy += res.OffEnergy
		agg.OnEnergy += res.OnEnergy
		merged := energy.MergeLedgers([]*energy.Ledger{agg.Ledger, res.Ledger})
		agg.Ledger = merged
		for i, v := range res.SinceFg.Vals {
			agg.SinceFg.Vals[i] += v
		}
		for app, b := range res.BgBytesByApp {
			agg.BgBytesByApp[app] += b
		}
		for app, b := range res.EarlyBytesByApp {
			agg.EarlyBytesByApp[app] += b
		}
		for app, v := range res.EverForeground {
			if v {
				agg.EverForeground[app] = true
			}
		}
		if agg.Span[0] == 0 || (res.Span[0] != 0 && res.Span[0] < agg.Span[0]) {
			agg.Span[0] = res.Span[0]
		}
		if res.Span[1] > agg.Span[1] {
			agg.Span[1] = res.Span[1]
		}
	}
	return agg, nil
}

func streamFile(path string, opts energy.Options) (*StreamResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return nil, err
	}
	return StreamDevice(r, opts)
}
