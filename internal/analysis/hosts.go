package analysis

import (
	"sort"

	"netenergy/internal/appproto"
)

// HostStat aggregates traffic to one destination host.
type HostStat struct {
	Host     string
	Category appproto.Category
	Bytes    int64
	Energy   float64
	Requests int
}

// HostBreakdownResult attributes one app's traffic to destination hosts
// and host categories — the §4.1 validation that leaked browser traffic
// includes "ad and analytics content".
type HostBreakdownResult struct {
	App        string
	BgOnly     bool
	Hosts      []HostStat                     // descending by energy
	ByCategory map[appproto.Category]HostStat // keyed aggregates
	// Unattributed counts bytes whose request host could not be parsed
	// (response packets, mid-flow segments, truncated headers).
	UnattributedBytes int64
}

// HostBreakdown computes the per-host attribution for pkg across the
// fleet. With bgOnly, only packets in background process states count —
// the leak-traffic view. Bytes and energy of a burst are attributed to the
// host of the most recent request seen on the same flow.
func HostBreakdown(devs []*DeviceData, pkg string, bgOnly bool) HostBreakdownResult {
	res := HostBreakdownResult{
		App: pkg, BgOnly: bgOnly,
		ByCategory: map[appproto.Category]HostStat{},
	}
	hostAgg := map[string]*HostStat{}
	for _, d := range devs {
		app, ok := d.appID(pkg)
		if !ok {
			continue
		}
		// Flow hash -> current host, so responses inherit the request's
		// host attribution.
		flowHost := map[uint64]string{}
		for i := range d.Energy.Packets {
			p := &d.Energy.Packets[i]
			if p.App != app {
				continue
			}
			if bgOnly && !p.State.IsBackground() {
				continue
			}
			key := p.Tuple.FastHash()
			host := p.Host
			isReq := host != ""
			if isReq {
				flowHost[key] = host
			} else {
				host = flowHost[key]
			}
			if host == "" {
				res.UnattributedBytes += int64(p.Bytes)
				continue
			}
			hs := hostAgg[host]
			if hs == nil {
				hs = &HostStat{Host: host, Category: appproto.Classify(host)}
				hostAgg[host] = hs
			}
			hs.Bytes += int64(p.Bytes)
			hs.Energy += p.Energy
			if isReq {
				hs.Requests++
			}
		}
	}
	// Fold in sorted host order: ByCategory accumulates floats, and float
	// addition is order-sensitive in the last bits, so map order here would
	// leak into the reported per-category energy.
	hostKeys := make([]string, 0, len(hostAgg))
	//repolint:ordered collection order is irrelevant: keys are sorted before use
	for host := range hostAgg {
		hostKeys = append(hostKeys, host)
	}
	sort.Strings(hostKeys)
	for _, host := range hostKeys {
		hs := hostAgg[host]
		res.Hosts = append(res.Hosts, *hs)
		agg := res.ByCategory[hs.Category]
		agg.Category = hs.Category
		agg.Bytes += hs.Bytes
		agg.Energy += hs.Energy
		agg.Requests += hs.Requests
		res.ByCategory[hs.Category] = agg
	}
	sort.Slice(res.Hosts, func(i, j int) bool {
		if res.Hosts[i].Energy != res.Hosts[j].Energy {
			return res.Hosts[i].Energy > res.Hosts[j].Energy
		}
		return res.Hosts[i].Host < res.Hosts[j].Host
	})
	return res
}

// ThirdPartyShare returns the fraction of attributed energy going to ad
// and analytics hosts.
func (r HostBreakdownResult) ThirdPartyShare() float64 {
	var third, total float64
	for cat, hs := range r.ByCategory {
		total += hs.Energy
		if cat == appproto.CatAds || cat == appproto.CatAnalytics {
			third += hs.Energy
		}
	}
	if total == 0 {
		return 0
	}
	return third / total
}
