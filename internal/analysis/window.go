package analysis

import (
	"sort"

	"netenergy/internal/energy"
	"netenergy/internal/trace"
)

// WindowedAccumulator partitions a device stream into fixed time windows
// aligned to the epoch (window k covers [k*width, (k+1)*width)) and runs
// an independent StreamAccumulator per window. Each window's result is
// therefore *by construction* identical to a whole-trace batch run
// restricted to that window's records: no radio state, process-state
// snapshot or screen flag leaks across a window boundary, exactly as if
// the window had been analysed standalone. That is the equivalence the
// query engine's acceptance test holds it to, and the price is the same
// one a batch rerun pays — tail energy is charged within the window
// where its triggering traffic happened.
//
// A width of 0 disables partitioning: every record lands in a single
// window starting at the first record's timestamp.
type WindowedAccumulator struct {
	device string
	opts   energy.Options
	width  trace.Timestamp
	accs   map[trace.Timestamp]*StreamAccumulator
}

// WindowResult pairs a window's start (its covered span is
// [Start, Start+width)) with the finished per-window stream result.
type WindowResult struct {
	Start trace.Timestamp
	Res   *StreamResult
}

// NewWindowedAccumulator returns an accumulator splitting the device's
// stream into windows of width microseconds (0 = one unbounded window).
func NewWindowedAccumulator(device string, width trace.Timestamp, opts energy.Options) *WindowedAccumulator {
	if width < 0 {
		width = 0
	}
	return &WindowedAccumulator{
		device: device,
		opts:   opts,
		width:  width,
		accs:   map[trace.Timestamp]*StreamAccumulator{},
	}
}

// windowStart maps a timestamp to its window's start. Epoch alignment
// (floor division, correct for negative timestamps too) keeps window
// boundaries identical across devices and nodes, so per-window results
// merge without re-bucketing.
func (w *WindowedAccumulator) windowStart(ts trace.Timestamp) trace.Timestamp {
	if w.width == 0 {
		return 0
	}
	k := ts / w.width
	if ts%w.width < 0 {
		k--
	}
	return k * w.width
}

// acc returns (creating on first use) the accumulator owning ts.
func (w *WindowedAccumulator) acc(ts trace.Timestamp) *StreamAccumulator {
	start := w.windowStart(ts)
	a := w.accs[start]
	if a == nil {
		a = NewStreamAccumulator(w.device, w.opts)
		w.accs[start] = a
	}
	return a
}

// Feed routes one record to its window's accumulator.
func (w *WindowedAccumulator) Feed(rec *trace.Record) {
	w.acc(rec.TS).Feed(rec)
}

// FeedBatch routes a batch, splitting it at window boundaries. Records
// within a batch are non-decreasing in time (writer-enforced), so each
// window's run is contiguous and feeds as a sub-batch view.
func (w *WindowedAccumulator) FeedBatch(b *trace.RecordBatch) {
	n := b.Len()
	if n == 0 {
		return
	}
	if w.width == 0 {
		w.acc(b.TS[0]).FeedBatch(b)
		return
	}
	lo := 0
	for lo < n {
		start := w.windowStart(b.TS[lo])
		end := start + w.width
		hi := lo + 1
		for hi < n && b.TS[hi] < end {
			hi++
		}
		view := b.Slice(lo, hi)
		w.acc(b.TS[lo]).FeedBatch(&view)
		lo = hi
	}
}

// Finish settles every window (radio tail + idle) and returns the
// results sorted by window start. The accumulator must not be fed
// afterwards.
func (w *WindowedAccumulator) Finish() []WindowResult {
	starts := make([]trace.Timestamp, 0, len(w.accs))
	//repolint:ordered collection order is irrelevant: starts are sorted before use
	for start := range w.accs {
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := make([]WindowResult, 0, len(starts))
	for _, start := range starts {
		out = append(out, WindowResult{Start: start, Res: w.accs[start].Finish()})
	}
	return out
}
