// Property tests for the accumulator checkpoint format: over randomized
// seeded device traces and random cut points, serialize→restore must be an
// exact identity, and the state encoding must be stable under repeated
// round-trips. Complements the fixed-scenario tests in marshal_test.go.
package analysis

import (
	"math/rand"
	"reflect"
	"testing"

	"netenergy/internal/synthgen"
)

// TestAppendStateRestoreProperty: for arbitrary generator seeds, trace
// lengths and snapshot points, restoring a serialized accumulator and
// feeding the remaining records is indistinguishable from never stopping.
func TestAppendStateRestoreProperty(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	rnd := rand.New(rand.NewSource(20151028)) // deterministic trials
	for trial := 0; trial < trials; trial++ {
		cfg := synthgen.Small(1, 1+rnd.Intn(3))
		cfg.Seed = rnd.Uint64()
		dt := synthgen.GenerateDevice(cfg, rnd.Intn(4))
		if len(dt.Records) < 2 {
			t.Fatalf("trial %d: degenerate trace (%d records)", trial, len(dt.Records))
		}
		cut := 1 + rnd.Intn(len(dt.Records)-1)

		ref := NewStreamAccumulator(dt.Device, marshalOpts())
		for i := range dt.Records {
			ref.Feed(&dt.Records[i])
		}
		want := ref.Finish()

		a := NewStreamAccumulator(dt.Device, marshalOpts())
		for i := 0; i < cut; i++ {
			a.Feed(&dt.Records[i])
		}
		restored, err := RestoreStreamAccumulator(a.AppendState(nil), marshalOpts())
		if err != nil {
			t.Fatalf("trial %d (seed %d, cut %d/%d): restore: %v",
				trial, cfg.Seed, cut, len(dt.Records), err)
		}
		for i := cut; i < len(dt.Records); i++ {
			restored.Feed(&dt.Records[i])
		}
		if got := restored.Finish(); !reflect.DeepEqual(got, want) {
			t.Errorf("trial %d (seed %d, cut %d/%d): restored run diverged from continuous run",
				trial, cfg.Seed, cut, len(dt.Records))
		}
	}
}

// TestAppendStateIdempotentProperty: a restore followed by a re-serialize
// must describe the same state — the format has one canonical size per
// state and survives arbitrarily many round-trips.
func TestAppendStateIdempotentProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		cfg := synthgen.Small(1, 1)
		cfg.Seed = rnd.Uint64()
		dt := synthgen.GenerateDevice(cfg, 0)
		n := 1 + rnd.Intn(len(dt.Records))

		a := NewStreamAccumulator(dt.Device, marshalOpts())
		for i := 0; i < n; i++ {
			a.Feed(&dt.Records[i])
		}
		blob := a.AppendState(nil)
		for hop := 0; hop < 3; hop++ {
			b, err := RestoreStreamAccumulator(blob, marshalOpts())
			if err != nil {
				t.Fatalf("trial %d hop %d: %v", trial, hop, err)
			}
			if b.Records() != int64(n) {
				t.Fatalf("trial %d hop %d: records %d, want %d", trial, hop, b.Records(), n)
			}
			blob2 := b.AppendState(nil)
			// Map iteration order may permute sections, so compare sizes
			// (canonical length) and final results, not raw bytes.
			if len(blob2) != len(blob) {
				t.Fatalf("trial %d hop %d: state size drifted %d -> %d",
					trial, hop, len(blob), len(blob2))
			}
			blob = blob2
		}
	}
}
