package analysis

// Binary serialization for the streaming analyzer's state, used by the
// ingest daemon's crash-safe checkpoints (internal/ingest/checkpoint).
//
// Two forms are serializable: a completed/aggregated StreamResult, and the
// full mid-stream state of a StreamAccumulator (its result plus the derived
// per-app foreground state and the radio state machine position). Restoring
// an accumulator state and feeding it the remainder of a stream produces
// bit-identical results to feeding the whole stream into one process — the
// property the ingest crash-recovery test asserts.
//
// The encoding is explicit little-endian varint/fixed64, hand-rolled rather
// than gob/JSON so that (a) float64 values round-trip exactly via their bit
// patterns, (b) the decoder is allocation-bounded and safe to run on
// attacker-controlled bytes (it is fuzzed through the checkpoint fuzz
// target), and (c) the format is versioned independently of Go releases.

import (
	"encoding/binary"
	"errors"
	"math"

	"netenergy/internal/energy"
	"netenergy/internal/radio"
	"netenergy/internal/stats"
	"netenergy/internal/trace"
)

// Encoding limits: a decoder must never allocate unboundedly on a corrupt
// length field. The caps are far above anything a real fleet produces.
const (
	marshalMaxMapLen = 1 << 22
	marshalMaxStrLen = 1 << 12
	marshalMaxBins   = 1 << 22
)

const (
	streamResultVersion = 1
	accumulatorVersion  = 1
)

// ErrBadSnapshot means a serialized StreamResult or accumulator state could
// not be decoded (truncated, corrupt, or an unknown version).
var ErrBadSnapshot = errors.New("analysis: bad state snapshot")

// ---- encoder helpers ----

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// ---- decoder ----

// dec is a cursor over a serialized snapshot. All reads are bounds-checked;
// the first failure latches err and turns every subsequent read into a
// cheap no-op, so call sites can decode a whole struct and check once.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrBadSnapshot
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) bool() bool { return d.byte() != 0 }

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > marshalMaxStrLen || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// mapLen validates a map/slice length field.
func (d *dec) mapLen() int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > marshalMaxMapLen {
		d.fail()
		return 0
	}
	return int(n)
}

// ---- Ledger ----

func appendLedger(b []byte, l *energy.Ledger) []byte {
	b = appendF64(b, l.Total)
	b = appendF64(b, l.IdleEnergy)
	b = appendUvarint(b, uint64(len(l.ByApp)))
	for _, app := range sortedKeys(l.ByApp) {
		b = appendUvarint(b, uint64(app))
		b = appendF64(b, l.ByApp[app])
	}
	b = appendUvarint(b, uint64(len(l.ByState)))
	for _, s := range sortedKeys(l.ByState) {
		b = append(b, byte(s))
		b = appendF64(b, l.ByState[s])
	}
	b = appendUvarint(b, uint64(len(l.ByAppState)))
	for _, app := range sortedKeys(l.ByAppState) {
		as := l.ByAppState[app]
		b = appendUvarint(b, uint64(app))
		b = appendUvarint(b, uint64(len(as)))
		for _, s := range sortedKeys(as) {
			b = append(b, byte(s))
			b = appendF64(b, as[s])
		}
	}
	b = appendUvarint(b, uint64(len(l.ByAppDay)))
	for _, app := range sortedKeys(l.ByAppDay) {
		days := l.ByAppDay[app]
		b = appendUvarint(b, uint64(app))
		b = appendUvarint(b, uint64(len(days)))
		for _, day := range sortedKeys(days) {
			ds := days[day]
			b = appendVarint(b, int64(day))
			b = appendF64(b, ds.Energy)
			b = appendF64(b, ds.FgEnergy)
			b = appendF64(b, ds.BgEnergy)
			b = appendVarint(b, ds.FgBytes)
			b = appendVarint(b, ds.BgBytes)
			b = appendVarint(b, int64(ds.Packets))
		}
	}
	b = appendUvarint(b, uint64(len(l.BytesByApp)))
	for _, app := range sortedKeys(l.BytesByApp) {
		b = appendUvarint(b, uint64(app))
		b = appendVarint(b, l.BytesByApp[app])
	}
	return b
}

func decodeLedger(d *dec, l *energy.Ledger) {
	l.Total = d.f64()
	l.IdleEnergy = d.f64()
	for i, n := 0, d.mapLen(); i < n && d.err == nil; i++ {
		app := uint32(d.uvarint())
		l.ByApp[app] = d.f64()
	}
	for i, n := 0, d.mapLen(); i < n && d.err == nil; i++ {
		s := trace.ProcState(d.byte())
		l.ByState[s] = d.f64()
	}
	for i, n := 0, d.mapLen(); i < n && d.err == nil; i++ {
		app := uint32(d.uvarint())
		m := d.mapLen()
		as := make(map[trace.ProcState]float64, m)
		for j := 0; j < m && d.err == nil; j++ {
			s := trace.ProcState(d.byte())
			as[s] = d.f64()
		}
		l.ByAppState[app] = as
	}
	for i, n := 0, d.mapLen(); i < n && d.err == nil; i++ {
		app := uint32(d.uvarint())
		m := d.mapLen()
		days := make(map[int]*energy.DayStats, m)
		for j := 0; j < m && d.err == nil; j++ {
			day := int(d.varint())
			ds := &energy.DayStats{}
			ds.Energy = d.f64()
			ds.FgEnergy = d.f64()
			ds.BgEnergy = d.f64()
			ds.FgBytes = d.varint()
			ds.BgBytes = d.varint()
			ds.Packets = int(d.varint())
			days[day] = ds
		}
		l.ByAppDay[app] = days
	}
	for i, n := 0, d.mapLen(); i < n && d.err == nil; i++ {
		app := uint32(d.uvarint())
		l.BytesByApp[app] = d.varint()
	}
}

// ---- StreamResult ----

// AppendBinary appends the serialized form of r to b and returns the
// extended slice. Float64 fields are encoded by bit pattern, so a decode
// reproduces the result exactly.
func (r *StreamResult) AppendBinary(b []byte) []byte {
	b = append(b, streamResultVersion)
	b = appendString(b, r.Device)
	b = appendVarint(b, int64(r.DecodeErrors))
	b = appendLedger(b, r.Ledger)
	b = appendF64(b, r.SinceFg.Width)
	b = appendUvarint(b, uint64(len(r.SinceFg.Vals)))
	for _, v := range r.SinceFg.Vals {
		b = appendF64(b, v)
	}
	b = appendUvarint(b, uint64(len(r.BgBytesByApp)))
	for _, app := range sortedKeys(r.BgBytesByApp) {
		b = appendUvarint(b, uint64(app))
		b = appendVarint(b, r.BgBytesByApp[app])
	}
	b = appendUvarint(b, uint64(len(r.EarlyBytesByApp)))
	for _, app := range sortedKeys(r.EarlyBytesByApp) {
		b = appendUvarint(b, uint64(app))
		b = appendVarint(b, r.EarlyBytesByApp[app])
	}
	b = appendUvarint(b, uint64(len(r.EverForeground)))
	for _, app := range sortedKeys(r.EverForeground) {
		b = appendUvarint(b, uint64(app))
		b = appendBool(b, r.EverForeground[app])
	}
	b = appendVarint(b, r.OffBytes)
	b = appendVarint(b, r.OnBytes)
	b = appendF64(b, r.OffEnergy)
	b = appendF64(b, r.OnEnergy)
	b = appendVarint(b, int64(r.Span[0]))
	b = appendVarint(b, int64(r.Span[1]))
	return b
}

func decodeStreamResult(d *dec) *StreamResult {
	if v := d.byte(); v != streamResultVersion {
		d.fail()
		return nil
	}
	dev := d.str()
	if d.err != nil {
		return nil
	}
	r := newStreamResult(dev)
	r.DecodeErrors = int(d.varint())
	decodeLedger(d, r.Ledger)
	width := d.f64()
	nbins := d.uvarint()
	if d.err != nil || nbins > marshalMaxBins || width <= 0 {
		d.fail()
		return nil
	}
	r.SinceFg = &stats.TimeBins{Width: width, Vals: make([]float64, nbins)}
	for i := range r.SinceFg.Vals {
		r.SinceFg.Vals[i] = d.f64()
	}
	for i, n := 0, d.mapLen(); i < n && d.err == nil; i++ {
		app := uint32(d.uvarint())
		r.BgBytesByApp[app] = d.varint()
	}
	for i, n := 0, d.mapLen(); i < n && d.err == nil; i++ {
		app := uint32(d.uvarint())
		r.EarlyBytesByApp[app] = d.varint()
	}
	for i, n := 0, d.mapLen(); i < n && d.err == nil; i++ {
		app := uint32(d.uvarint())
		r.EverForeground[app] = d.bool()
	}
	r.OffBytes = d.varint()
	r.OnBytes = d.varint()
	r.OffEnergy = d.f64()
	r.OnEnergy = d.f64()
	r.Span[0] = trace.Timestamp(d.varint())
	r.Span[1] = trace.Timestamp(d.varint())
	if d.err != nil {
		return nil
	}
	return r
}

// DecodeStreamResult decodes a blob produced by AppendBinary. Trailing bytes
// beyond the encoded result are an error.
func DecodeStreamResult(b []byte) (*StreamResult, error) {
	d := &dec{b: b}
	r := decodeStreamResult(d)
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, ErrBadSnapshot
	}
	return r, nil
}

// ---- StreamAccumulator ----

// AppendState appends the accumulator's complete mid-stream state to b: the
// partial StreamResult, the per-app foreground bookkeeping, the previous
// packet's attribution target and the radio state machine position. Feeding
// a restored accumulator the remaining records of the stream yields results
// bit-identical to never having stopped.
func (a *StreamAccumulator) AppendState(b []byte) []byte {
	b = append(b, accumulatorVersion)
	b = a.res.AppendBinary(b)
	b = appendUvarint(b, uint64(len(a.lastFgEnd)))
	for _, app := range sortedKeys(a.lastFgEnd) {
		b = appendUvarint(b, uint64(app))
		b = appendVarint(b, int64(a.lastFgEnd[app]))
	}
	b = appendUvarint(b, uint64(len(a.inFg)))
	for _, app := range sortedKeys(a.inFg) {
		b = appendUvarint(b, uint64(app))
		b = appendBool(b, a.inFg[app])
	}
	b = appendBool(b, a.screenOn)
	b = appendUvarint(b, uint64(a.prevApp))
	b = append(b, byte(a.prevState))
	b = appendVarint(b, int64(a.prevDay))
	b = appendBool(b, a.havePrev)
	b = appendVarint(b, a.records)
	rs := a.acct.SaveState()
	b = appendBool(b, rs.Started)
	b = append(b, byte(rs.State))
	b = appendF64(b, rs.LastEnd)
	b = appendF64(b, rs.Total)
	return b
}

// RestoreStreamAccumulator rebuilds an accumulator from a blob produced by
// AppendState. opts must match the options the original accumulator was
// built with (in particular the radio model): the derived components —
// parser, radio accountant parameters — are reconstructed from opts, and
// only the mutable state comes from the blob.
func RestoreStreamAccumulator(b []byte, opts energy.Options) (*StreamAccumulator, error) {
	d := &dec{b: b}
	if v := d.byte(); v != accumulatorVersion {
		d.fail()
	}
	res := decodeStreamResult(d)
	if d.err != nil {
		return nil, d.err
	}
	a := NewStreamAccumulator(res.Device, opts)
	a.res = res
	for i, n := 0, d.mapLen(); i < n && d.err == nil; i++ {
		app := uint32(d.uvarint())
		a.lastFgEnd[app] = trace.Timestamp(d.varint())
	}
	for i, n := 0, d.mapLen(); i < n && d.err == nil; i++ {
		app := uint32(d.uvarint())
		a.inFg[app] = d.bool()
	}
	a.screenOn = d.bool()
	a.prevApp = uint32(d.uvarint())
	a.prevState = trace.ProcState(d.byte())
	a.prevDay = int(d.varint())
	a.havePrev = d.bool()
	a.records = d.varint()
	var rs radioState
	rs.Started = d.bool()
	rs.State = d.byte()
	rs.LastEnd = d.f64()
	rs.Total = d.f64()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, ErrBadSnapshot
	}
	installRadioState(a, rs)
	return a, nil
}

// radioState mirrors radio.AccountantState with a raw state byte, keeping
// the decode loop free of cross-package enum casts until validation is done.
type radioState struct {
	Started bool
	State   byte
	LastEnd float64
	Total   float64
}

func installRadioState(a *StreamAccumulator, rs radioState) {
	a.acct.RestoreState(radio.AccountantState{
		Started: rs.Started,
		State:   radio.State(rs.State),
		LastEnd: rs.LastEnd,
		Total:   rs.Total,
	})
}
