package analysis

import (
	"netenergy/internal/appmodel"
	"netenergy/internal/trace"
)

// Headline bundles the statistics the paper quotes in prose: the §4 state
// shares, the §4.1 first-minute criterion, and the browser background
// shares.
type Headline struct {
	// BackgroundFraction is the share of all cellular network energy
	// consumed in background states (paper: 84%).
	BackgroundFraction float64
	// PerceptibleFraction and ServiceFraction break that down (paper: 8%
	// perceptible, 32% service).
	PerceptibleFraction float64
	ServiceFraction     float64
	// FirstMinute is the §4.1 criterion: fraction of apps sending >=80% of
	// their background bytes within 60 s of backgrounding (paper: 84%).
	FirstMinute FirstMinuteResult
	// BrowserBgShares maps browser package -> background energy fraction
	// (paper: Chrome ~30%, Firefox and stock near zero).
	BrowserBgShares map[string]float64
	// TotalEnergyJ is the fleet-wide attributed network energy.
	TotalEnergyJ float64
}

// ComputeHeadline evaluates all headline statistics over the fleet.
func ComputeHeadline(devs []*DeviceData) Headline {
	merged := MergedLedger(devs)
	return Headline{
		BackgroundFraction:  merged.BackgroundFraction(),
		PerceptibleFraction: merged.StateFraction(trace.StatePerceptible),
		ServiceFraction:     merged.StateFraction(trace.StateService),
		FirstMinute:         FirstMinute(devs, 60, 0.8),
		BrowserBgShares: BrowserShares(devs, []string{
			appmodel.PkgChrome, appmodel.PkgFirefox, appmodel.PkgStockBrowser,
		}),
		TotalEnergyJ: merged.Total,
	}
}
