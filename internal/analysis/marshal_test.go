package analysis

import (
	"bytes"
	"reflect"
	"testing"

	"netenergy/internal/energy"
	"netenergy/internal/synthgen"
)

func marshalOpts() energy.Options {
	opts := energy.DefaultOptions()
	opts.KeepPackets = false
	return opts
}

// TestStreamResultRoundtrip: encode/decode reproduces a non-trivial result
// exactly, field for field.
func TestStreamResultRoundtrip(t *testing.T) {
	cfg := synthgen.Small(2, 2)
	dts := synthgen.GenerateInMemory(cfg)
	agg := NewStreamResult("fleet")
	for _, dt := range dts {
		acc := NewStreamAccumulator(dt.Device, marshalOpts())
		for i := range dt.Records {
			acc.Feed(&dt.Records[i])
		}
		agg.Merge(acc.Finish())
	}

	blob := agg.AppendBinary(nil)
	got, err := DecodeStreamResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, agg) {
		t.Errorf("decoded result differs from original")
	}
	// Re-encoding the decode must yield a parseable blob of the same length
	// (map iteration order may differ, so bytes can permute).
	if blob2 := got.AppendBinary(nil); len(blob2) != len(blob) {
		t.Errorf("re-encoded length %d != %d", len(blob2), len(blob))
	}
}

// TestAccumulatorCheckpointExact is the durability contract: serializing an
// accumulator mid-stream, restoring it in a "new process", and feeding the
// remaining records must be indistinguishable from never having stopped —
// exact equality, not approximate.
func TestAccumulatorCheckpointExact(t *testing.T) {
	cfg := synthgen.Small(1, 2)
	dt := synthgen.GenerateInMemory(cfg)[0]
	if len(dt.Records) < 100 {
		t.Fatalf("trace too short: %d records", len(dt.Records))
	}

	for _, cut := range []int{1, len(dt.Records) / 3, len(dt.Records) / 2, len(dt.Records) - 1} {
		// Continuous reference.
		ref := NewStreamAccumulator(dt.Device, marshalOpts())
		for i := range dt.Records {
			ref.Feed(&dt.Records[i])
		}
		want := ref.Finish()

		// Checkpointed run: feed a prefix, serialize, restore, feed the rest.
		a := NewStreamAccumulator(dt.Device, marshalOpts())
		for i := 0; i < cut; i++ {
			a.Feed(&dt.Records[i])
		}
		blob := a.AppendState(nil)
		b, err := RestoreStreamAccumulator(blob, marshalOpts())
		if err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		if b.Records() != int64(cut) {
			t.Fatalf("cut %d: restored records = %d", cut, b.Records())
		}
		for i := cut; i < len(dt.Records); i++ {
			b.Feed(&dt.Records[i])
		}
		got := b.Finish()

		if got.Ledger.Total != want.Ledger.Total {
			t.Errorf("cut %d: total %v != %v", cut, got.Ledger.Total, want.Ledger.Total)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cut %d: checkpointed result differs from continuous run", cut)
		}
	}
}

// TestAccumulatorSnapshotUnperturbed: taking a state snapshot must not
// change what the live accumulator goes on to compute.
func TestAccumulatorSnapshotUnperturbed(t *testing.T) {
	cfg := synthgen.Small(1, 1)
	dt := synthgen.GenerateInMemory(cfg)[0]

	a := NewStreamAccumulator(dt.Device, marshalOpts())
	ref := NewStreamAccumulator(dt.Device, marshalOpts())
	for i := range dt.Records {
		a.Feed(&dt.Records[i])
		ref.Feed(&dt.Records[i])
		if i%97 == 0 {
			a.AppendState(nil)
		}
	}
	if got, want := a.Finish(), ref.Finish(); !reflect.DeepEqual(got, want) {
		t.Error("AppendState perturbed the live accumulator")
	}
}

// TestDecodeRejectsCorruption: truncations and bit flips must yield errors,
// never panics or silent misreads of the structural fields.
func TestDecodeRejectsCorruption(t *testing.T) {
	cfg := synthgen.Small(1, 1)
	dt := synthgen.GenerateInMemory(cfg)[0]
	a := NewStreamAccumulator(dt.Device, marshalOpts())
	for i := range dt.Records {
		a.Feed(&dt.Records[i])
	}
	blob := a.AppendState(nil)

	if _, err := RestoreStreamAccumulator(nil, marshalOpts()); err == nil {
		t.Error("empty blob accepted")
	}
	for _, cut := range []int{1, 2, len(blob) / 2, len(blob) - 1} {
		if _, err := RestoreStreamAccumulator(blob[:cut], marshalOpts()); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage must be rejected too.
	if _, err := RestoreStreamAccumulator(append(bytes.Clone(blob), 0xab), marshalOpts()); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Unknown version byte.
	bad := bytes.Clone(blob)
	bad[0] = 0x7f
	if _, err := RestoreStreamAccumulator(bad, marshalOpts()); err == nil {
		t.Error("unknown version accepted")
	}
}
