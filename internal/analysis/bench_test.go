// Benchmarks for the bounded-memory streaming analyzer: the per-record
// Feed hot path and the checkpoint state round-trip. scripts/bench.sh runs
// these alongside the ingest and obs benchmarks.
package analysis

import (
	"sync"
	"testing"

	"netenergy/internal/energy"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

var analysisBenchOnce sync.Once
var analysisBenchTrace *trace.DeviceTrace

func benchTrace() *trace.DeviceTrace {
	analysisBenchOnce.Do(func() {
		analysisBenchTrace = synthgen.GenerateDevice(synthgen.Small(1, 2), 0)
	})
	return analysisBenchTrace
}

func benchOpts() energy.Options {
	opts := energy.DefaultOptions()
	opts.KeepPackets = false
	return opts
}

// BenchmarkStreamFeed measures the per-record cost of the streaming
// accumulator — the inner loop of both analyze -stream and the ingest
// shard apply path.
func BenchmarkStreamFeed(b *testing.B) {
	dt := benchTrace()
	acc := NewStreamAccumulator(dt.Device, benchOpts())
	n := len(dt.Records)
	for i := 0; i < n; i++ { // warm: settle bins, day keys, app maps
		acc.Feed(&dt.Records[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Feed(&dt.Records[i%n])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkAppendState measures checkpoint serialization of a realistic
// per-device accumulator (the write half of the crash-safe snapshot).
func BenchmarkAppendState(b *testing.B) {
	dt := benchTrace()
	acc := NewStreamAccumulator(dt.Device, benchOpts())
	for i := range dt.Records {
		acc.Feed(&dt.Records[i])
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = acc.AppendState(buf[:0])
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkRestoreState measures deserialization — the restart path that
// bounds ingest recovery time after a crash.
func BenchmarkRestoreState(b *testing.B) {
	dt := benchTrace()
	acc := NewStreamAccumulator(dt.Device, benchOpts())
	for i := range dt.Records {
		acc.Feed(&dt.Records[i])
	}
	state := acc.AppendState(nil)
	b.SetBytes(int64(len(state)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RestoreStreamAccumulator(state, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}
