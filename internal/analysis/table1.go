package analysis

import (
	"sort"

	"netenergy/internal/periodic"
	"netenergy/internal/trace"
)

// CaseStudy is one row of Table 1: per-day and per-flow energy, flow sizes,
// energy per byte and the detected background update period for one app.
type CaseStudy struct {
	App        string
	Label      string
	JPerDay    float64 // average energy per active day (paper's "MJ/day" column, joules)
	JPerFlow   float64
	MBPerFlow  float64
	UJPerByte  float64 // µJ/B, the paper's "Avg. J/B" column
	Flows      int
	ActiveDays int
	Period     periodic.Period // dominant background update period
}

// CaseStudies computes Table 1 rows for the given packages (with optional
// display labels; pass nil labels to reuse package names). Only background
// traffic drives the period detection, mirroring the paper's focus on
// transfers initiated in the background.
func CaseStudies(devs []*DeviceData, packages, labels []string) []CaseStudy {
	out := make([]CaseStudy, 0, len(packages))
	for i, pkg := range packages {
		label := pkg
		if labels != nil && i < len(labels) && labels[i] != "" {
			label = labels[i]
		}
		cs := CaseStudy{App: pkg, Label: label}
		var totalEnergy float64
		var totalBytes int64
		activeDays := map[[2]interface{}]bool{} // (device, day)
		var periods []periodic.Period

		for _, d := range devs {
			app, ok := d.appID(pkg)
			if !ok {
				continue
			}
			totalEnergy += d.Energy.Ledger.ByApp[app]
			totalBytes += d.Energy.Ledger.BytesByApp[app]
			for day, ds := range d.Energy.Ledger.ByAppDay[app] {
				if ds.Packets > 0 {
					activeDays[[2]interface{}{d.Device, day}] = true
				}
			}
			for _, f := range d.Flows {
				if f.App == app {
					cs.Flows++
				}
			}
			// Update-period detection is per device: burst schedules are
			// independent across users, so mixing them would destroy the
			// interval structure.
			var bgBurstTimes []float64
			for i := range d.Energy.Packets {
				p := &d.Energy.Packets[i]
				if p.App == app && p.State.IsBackground() && p.Dir == trace.DirUp {
					bgBurstTimes = append(bgBurstTimes, p.TS.Seconds())
				}
			}
			bursts := periodic.Bursts(bgBurstTimes, 15)
			if pd := periodic.DominantPeriod(bursts); pd.Samples >= 5 {
				periods = append(periods, pd)
			}
		}
		cs.ActiveDays = len(activeDays)
		if cs.ActiveDays > 0 {
			cs.JPerDay = totalEnergy / float64(cs.ActiveDays)
		}
		if cs.Flows > 0 {
			cs.JPerFlow = totalEnergy / float64(cs.Flows)
			cs.MBPerFlow = float64(totalBytes) / float64(cs.Flows) / 1e6
		}
		if totalBytes > 0 {
			cs.UJPerByte = totalEnergy / float64(totalBytes) * 1e6
		}
		// The reported period is the median across devices.
		if len(periods) > 0 {
			sort.Slice(periods, func(i, j int) bool { return periods[i].Seconds < periods[j].Seconds })
			cs.Period = periods[len(periods)/2]
		}
		out = append(out, cs)
	}
	return out
}
