package analysis

import (
	"bytes"
	"math"
	"testing"

	"netenergy/internal/energy"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

// TestStreamMatchesInMemory is the equivalence check: the bounded-memory
// streaming pass must produce the same ledgers and aggregates as the
// in-memory pipeline on the same trace.
func TestStreamMatchesInMemory(t *testing.T) {
	dt := synthgen.GenerateDevice(synthgen.Small(1, 5), 0)

	mem, err := Load(dt, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	data, err := dt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	str, err := StreamDevice(r, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	if str.DecodeErrors != mem.Energy.DecodeErrors {
		t.Errorf("decode errors: %d vs %d", str.DecodeErrors, mem.Energy.DecodeErrors)
	}
	if math.Abs(str.Ledger.Total-mem.Energy.Ledger.Total) > 1e-6*(1+mem.Energy.Ledger.Total) {
		t.Errorf("total energy: stream %v vs memory %v", str.Ledger.Total, mem.Energy.Ledger.Total)
	}
	for app, e := range mem.Energy.Ledger.ByApp {
		if got := str.Ledger.ByApp[app]; math.Abs(got-e) > 1e-6*(1+e) {
			t.Errorf("app %d energy: stream %v vs memory %v", app, got, e)
		}
	}
	for st, e := range mem.Energy.Ledger.ByState {
		if got := str.Ledger.ByState[st]; math.Abs(got-e) > 1e-6*(1+e) {
			t.Errorf("state %v energy: stream %v vs memory %v", st, got, e)
		}
	}
	// Fig6 bins must match the in-memory analysis.
	memFig6 := SinceForeground([]*DeviceData{mem}, 10, 7200)
	strFig6 := str.SinceForeground()
	if math.Abs(memFig6.TotalBgBytes-strFig6.TotalBgBytes) > 1 {
		t.Errorf("fig6 bytes: stream %v vs memory %v", strFig6.TotalBgBytes, memFig6.TotalBgBytes)
	}
	for i := range memFig6.Bytes {
		if math.Abs(memFig6.Bytes[i]-strFig6.Bytes[i]) > 1 {
			t.Fatalf("fig6 bin %d: stream %v vs memory %v", i, strFig6.Bytes[i], memFig6.Bytes[i])
		}
	}
	// First-minute criterion agrees.
	memFM := FirstMinute([]*DeviceData{mem}, 60, 0.8)
	if got := str.FirstMinuteFraction(0.8); math.Abs(got-memFM.Fraction) > 1e-9 {
		t.Errorf("first minute: stream %v vs memory %v", got, memFM.Fraction)
	}
	// Screen split sums to the same totals.
	memSO := ScreenOff([]*DeviceData{mem}, 0)
	if str.OffBytes+str.OnBytes != memSO.OffBytes+memSO.OnBytes {
		t.Errorf("screen byte totals: stream %d vs memory %d",
			str.OffBytes+str.OnBytes, memSO.OffBytes+memSO.OnBytes)
	}
	if str.OffBytes != memSO.OffBytes {
		t.Errorf("screen-off bytes: stream %d vs memory %d", str.OffBytes, memSO.OffBytes)
	}
}

// TestMergedStreamMatchesHeadline extends the stream-vs-batch equivalence
// to the merged path: per-device StreamResults combined with Merge must
// reproduce the in-memory Study.Headline() (ComputeHeadline is exactly
// what core.Study.Headline delegates to) — the property the ingest
// server's live fleet headline rests on.
func TestMergedStreamMatchesHeadline(t *testing.T) {
	cfg := synthgen.Small(3, 4)
	dts := synthgen.GenerateInMemory(cfg)

	// Merged per-device streaming pass, as the ingest shards run it.
	merged := NewStreamResult("fleet")
	for _, dt := range dts {
		data, err := dt.Encode()
		if err != nil {
			t.Fatal(err)
		}
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		res, err := StreamDevice(r, energy.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		merged.Merge(res)
	}

	devs, err := LoadAll(dts, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := ComputeHeadline(devs)

	if got := merged.Ledger.BackgroundFraction(); math.Abs(got-want.BackgroundFraction) > 1e-9 {
		t.Errorf("merged background fraction %v vs headline %v", got, want.BackgroundFraction)
	}
	if got := merged.Ledger.StateFraction(trace.StatePerceptible); math.Abs(got-want.PerceptibleFraction) > 1e-9 {
		t.Errorf("merged perceptible fraction %v vs headline %v", got, want.PerceptibleFraction)
	}
	if got := merged.Ledger.StateFraction(trace.StateService); math.Abs(got-want.ServiceFraction) > 1e-9 {
		t.Errorf("merged service fraction %v vs headline %v", got, want.ServiceFraction)
	}
	if got := merged.FirstMinuteFraction(0.8); math.Abs(got-want.FirstMinute.Fraction) > 1e-9 {
		t.Errorf("merged first minute %v vs headline %v", got, want.FirstMinute.Fraction)
	}
	if math.Abs(merged.Ledger.Total-want.TotalEnergyJ) > 1e-6*(1+want.TotalEnergyJ) {
		t.Errorf("merged total %v vs headline %v", merged.Ledger.Total, want.TotalEnergyJ)
	}
	// Merging in a different order must not change anything beyond float
	// association noise.
	reversed := NewStreamResult("fleet")
	for i := len(dts) - 1; i >= 0; i-- {
		data, _ := dts[i].Encode()
		r, _ := trace.NewReader(bytes.NewReader(data))
		res, err := StreamDevice(r, energy.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		reversed.Merge(res)
	}
	if math.Abs(reversed.Ledger.Total-merged.Ledger.Total) > 1e-6*(1+merged.Ledger.Total) {
		t.Errorf("merge order changed total: %v vs %v", reversed.Ledger.Total, merged.Ledger.Total)
	}
	if reversed.OffBytes != merged.OffBytes || reversed.Span != merged.Span {
		t.Errorf("merge order changed aggregates: %+v vs %+v",
			reversed.Span, merged.Span)
	}
}

// TestSnapshotMatchesFinish: a Snapshot taken after the last record equals
// Finish, and snapshotting never perturbs the live accumulator.
func TestSnapshotMatchesFinish(t *testing.T) {
	dt := synthgen.GenerateDevice(synthgen.Small(1, 2), 0)
	acc := NewStreamAccumulator(dt.Device, energy.DefaultOptions())
	for i := range dt.Records {
		acc.Feed(&dt.Records[i])
		if i == len(dt.Records)/2 {
			acc.Snapshot() // mid-stream snapshot must be side-effect free
		}
	}
	snap := acc.Snapshot()
	fin := acc.Finish()
	if math.Abs(snap.Ledger.Total-fin.Ledger.Total) > 1e-9*(1+fin.Ledger.Total) {
		t.Errorf("snapshot total %v vs finish %v", snap.Ledger.Total, fin.Ledger.Total)
	}
	if math.Abs(snap.Ledger.IdleEnergy-fin.Ledger.IdleEnergy) > 1e-9 {
		t.Errorf("snapshot idle %v vs finish %v", snap.Ledger.IdleEnergy, fin.Ledger.IdleEnergy)
	}
	if snap.OffBytes != fin.OffBytes || snap.OnBytes != fin.OnBytes {
		t.Errorf("snapshot screen split %d/%d vs finish %d/%d",
			snap.OffBytes, snap.OnBytes, fin.OffBytes, fin.OnBytes)
	}
}

func TestStreamFleet(t *testing.T) {
	dir := t.TempDir()
	cfg := synthgen.Small(2, 3)
	fleet, err := synthgen.GenerateFleet(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := StreamFleet(fleet, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if agg.Ledger.Total <= 0 {
		t.Error("no energy streamed")
	}
	if agg.Ledger.BackgroundFraction() < 0.4 {
		t.Errorf("bg fraction = %v", agg.Ledger.BackgroundFraction())
	}
	if agg.Span[1] <= agg.Span[0] {
		t.Errorf("span = %v", agg.Span)
	}
}
