package analysis

import (
	"bytes"
	"math"
	"testing"

	"netenergy/internal/energy"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

// TestStreamMatchesInMemory is the equivalence check: the bounded-memory
// streaming pass must produce the same ledgers and aggregates as the
// in-memory pipeline on the same trace.
func TestStreamMatchesInMemory(t *testing.T) {
	dt := synthgen.GenerateDevice(synthgen.Small(1, 5), 0)

	mem, err := Load(dt, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	data, err := dt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	str, err := StreamDevice(r, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	if str.DecodeErrors != mem.Energy.DecodeErrors {
		t.Errorf("decode errors: %d vs %d", str.DecodeErrors, mem.Energy.DecodeErrors)
	}
	if math.Abs(str.Ledger.Total-mem.Energy.Ledger.Total) > 1e-6*(1+mem.Energy.Ledger.Total) {
		t.Errorf("total energy: stream %v vs memory %v", str.Ledger.Total, mem.Energy.Ledger.Total)
	}
	for app, e := range mem.Energy.Ledger.ByApp {
		if got := str.Ledger.ByApp[app]; math.Abs(got-e) > 1e-6*(1+e) {
			t.Errorf("app %d energy: stream %v vs memory %v", app, got, e)
		}
	}
	for st, e := range mem.Energy.Ledger.ByState {
		if got := str.Ledger.ByState[st]; math.Abs(got-e) > 1e-6*(1+e) {
			t.Errorf("state %v energy: stream %v vs memory %v", st, got, e)
		}
	}
	// Fig6 bins must match the in-memory analysis.
	memFig6 := SinceForeground([]*DeviceData{mem}, 10, 7200)
	strFig6 := str.SinceForeground()
	if math.Abs(memFig6.TotalBgBytes-strFig6.TotalBgBytes) > 1 {
		t.Errorf("fig6 bytes: stream %v vs memory %v", strFig6.TotalBgBytes, memFig6.TotalBgBytes)
	}
	for i := range memFig6.Bytes {
		if math.Abs(memFig6.Bytes[i]-strFig6.Bytes[i]) > 1 {
			t.Fatalf("fig6 bin %d: stream %v vs memory %v", i, strFig6.Bytes[i], memFig6.Bytes[i])
		}
	}
	// First-minute criterion agrees.
	memFM := FirstMinute([]*DeviceData{mem}, 60, 0.8)
	if got := str.FirstMinuteFraction(0.8); math.Abs(got-memFM.Fraction) > 1e-9 {
		t.Errorf("first minute: stream %v vs memory %v", got, memFM.Fraction)
	}
	// Screen split sums to the same totals.
	memSO := ScreenOff([]*DeviceData{mem}, 0)
	if str.OffBytes+str.OnBytes != memSO.OffBytes+memSO.OnBytes {
		t.Errorf("screen byte totals: stream %d vs memory %d",
			str.OffBytes+str.OnBytes, memSO.OffBytes+memSO.OnBytes)
	}
	if str.OffBytes != memSO.OffBytes {
		t.Errorf("screen-off bytes: stream %d vs memory %d", str.OffBytes, memSO.OffBytes)
	}
}

func TestStreamFleet(t *testing.T) {
	dir := t.TempDir()
	cfg := synthgen.Small(2, 3)
	fleet, err := synthgen.GenerateFleet(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := StreamFleet(fleet, energy.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if agg.Ledger.Total <= 0 {
		t.Error("no energy streamed")
	}
	if agg.Ledger.BackgroundFraction() < 0.4 {
		t.Errorf("bg fraction = %v", agg.Ledger.BackgroundFraction())
	}
	if agg.Span[1] <= agg.Span[0] {
		t.Errorf("span = %v", agg.Span)
	}
}
