package analysis

import "netenergy/internal/stats"

// ScreenOffResult is the screen-off traffic characterisation (the Huang et
// al. IMC'12 view the paper builds on): how much traffic and energy flows
// while the screen is off, and which apps drive it.
type ScreenOffResult struct {
	OffBytes  int64
	OnBytes   int64
	OffEnergy float64
	OnEnergy  float64
	// TopOffApps ranks apps by screen-off energy, descending.
	TopOffApps []HungryApp
}

// OffByteFraction returns the share of bytes moved with the screen off.
func (r ScreenOffResult) OffByteFraction() float64 {
	total := r.OffBytes + r.OnBytes
	if total == 0 {
		return 0
	}
	return float64(r.OffBytes) / float64(total)
}

// OffEnergyFraction returns the share of energy spent with the screen off.
func (r ScreenOffResult) OffEnergyFraction() float64 {
	total := r.OffEnergy + r.OnEnergy
	if total == 0 {
		return 0
	}
	return r.OffEnergy / total
}

// ScreenOff computes the screen-off characterisation across the fleet.
func ScreenOff(devs []*DeviceData, topK int) ScreenOffResult {
	var res ScreenOffResult
	offByApp := map[string]*HungryApp{}
	for _, d := range devs {
		for i := range d.Energy.Packets {
			p := &d.Energy.Packets[i]
			if d.ScreenOnAt(p.TS) {
				res.OnBytes += int64(p.Bytes)
				res.OnEnergy += p.Energy
				continue
			}
			res.OffBytes += int64(p.Bytes)
			res.OffEnergy += p.Energy
			name := d.Apps.Name(p.App)
			h := offByApp[name]
			if h == nil {
				h = &HungryApp{App: name}
				offByApp[name] = h
			}
			h.Bytes += int64(p.Bytes)
			h.Energy += p.Energy
		}
	}
	rank := map[string]float64{}
	for name, h := range offByApp {
		rank[name] = h.Energy
	}
	for _, kv := range stats.TopK(rank, topK) {
		h := offByApp[kv.Key]
		if h.Bytes > 0 {
			h.JPerMB = h.Energy / (float64(h.Bytes) / 1e6)
		}
		res.TopOffApps = append(res.TopOffApps, *h)
	}
	return res
}
