package analysis

import (
	"cmp"
	"slices"

	"netenergy/internal/periodic"
	"netenergy/internal/radio"
	"netenergy/internal/stats"
	"netenergy/internal/trace"
)

// --- Figure 1: app popularity across users' top-10 lists ---

// TopAppsResult is Figure 1: for each app appearing in at least MinUsers
// users' top-10-by-data lists, how many users list it.
type TopAppsResult struct {
	Counts []stats.KV // app package -> number of users, descending
}

// TopApps computes Figure 1. minUsers is the paper's "at least two users"
// filter.
func TopApps(devs []*DeviceData, minUsers int) TopAppsResult {
	appearances := map[string]float64{}
	for _, d := range devs {
		perApp := map[string]float64{}
		for app, b := range d.Energy.Ledger.BytesByApp {
			perApp[d.Apps.Name(app)] = float64(b)
		}
		for _, kv := range stats.TopK(perApp, 10) {
			appearances[kv.Key]++
		}
	}
	for k, v := range appearances {
		if v < float64(minUsers) {
			delete(appearances, k)
		}
	}
	return TopAppsResult{Counts: stats.TopK(appearances, 0)}
}

// --- Figure 2: data- and energy-hungry apps ---

// HungryAppsResult is Figure 2: the top apps by total cellular data and by
// total network energy across all users, with both metrics reported for
// each so the data/energy contrast (email vs media server) is visible.
type HungryAppsResult struct {
	ByData   []HungryApp // descending by bytes
	ByEnergy []HungryApp // descending by joules
}

// HungryApp is one app's fleet-wide totals.
type HungryApp struct {
	App    string
	Bytes  int64
	Energy float64 // J
	JPerMB float64 // J per megabyte — the efficiency contrast
}

// HungryApps computes Figure 2, returning the top k apps by each metric.
func HungryApps(devs []*DeviceData, k int) HungryAppsResult {
	type acc struct {
		bytes  int64
		energy float64
	}
	byApp := map[string]*acc{}
	for _, d := range devs {
		for app, b := range d.Energy.Ledger.BytesByApp {
			name := d.Apps.Name(app)
			a := byApp[name]
			if a == nil {
				a = &acc{}
				byApp[name] = a
			}
			a.bytes += b
			a.energy += d.Energy.Ledger.ByApp[app]
		}
	}
	mk := func(name string) HungryApp {
		a := byApp[name]
		h := HungryApp{App: name, Bytes: a.bytes, Energy: a.energy}
		if a.bytes > 0 {
			h.JPerMB = a.energy / (float64(a.bytes) / 1e6)
		}
		return h
	}
	dataRank := map[string]float64{}
	energyRank := map[string]float64{}
	for name, a := range byApp {
		dataRank[name] = float64(a.bytes)
		energyRank[name] = a.energy
	}
	var res HungryAppsResult
	for _, kv := range stats.TopK(dataRank, k) {
		res.ByData = append(res.ByData, mk(kv.Key))
	}
	for _, kv := range stats.TopK(energyRank, k) {
		res.ByEnergy = append(res.ByEnergy, mk(kv.Key))
	}
	return res
}

// --- Figure 3: energy by process state ---

// StateBreakdown is Figure 3: for each app, the fraction of its energy in
// each of the five Android process states.
type StateBreakdown struct {
	App       string
	Total     float64 // J
	Fractions map[trace.ProcState]float64
}

// StateBreakdowns computes Figure 3 for the named packages (pass nil to use
// the top-12 apps by energy, as the paper selects "twelve data- or
// energy-hungry apps").
func StateBreakdowns(devs []*DeviceData, packages []string) []StateBreakdown {
	energyByAppState := map[string]map[trace.ProcState]float64{}
	totals := map[string]float64{}
	for _, d := range devs {
		for app, states := range d.Energy.Ledger.ByAppState {
			name := d.Apps.Name(app)
			dst := energyByAppState[name]
			if dst == nil {
				dst = map[trace.ProcState]float64{}
				energyByAppState[name] = dst
			}
			for s, e := range states {
				dst[s] += e
				totals[name] += e
			}
		}
	}
	if packages == nil {
		for _, kv := range stats.TopK(totals, 12) {
			packages = append(packages, kv.Key)
		}
	}
	var out []StateBreakdown
	for _, pkg := range packages {
		states := energyByAppState[pkg]
		total := totals[pkg]
		sb := StateBreakdown{App: pkg, Total: total, Fractions: map[trace.ProcState]float64{}}
		if total > 0 {
			for s, e := range states {
				sb.Fractions[s] = e / total
			}
		}
		out = append(out, sb)
	}
	return out
}

// BackgroundShare returns the fraction of a breakdown's energy in
// background states.
func (sb StateBreakdown) BackgroundShare() float64 {
	var f float64
	for s, v := range sb.Fractions {
		if s.IsBackground() {
			f += v
		}
	}
	return f
}

// --- Figure 4: one app's traffic timeline around a background transition ---

// TimelineResult is Figure 4: binned traffic of one app on one device
// around a foreground→background transition, with the transition instant
// marked (the grey region of the paper's figure starts there).
type TimelineResult struct {
	Device     string
	App        string
	Transition trace.Timestamp
	BinWidth   float64   // seconds
	Offsets    []float64 // bin start offsets relative to (Transition - Before)
	Bytes      []float64
	// PowerW is the app-attributed mean radio power per bin (watts),
	// reconstructed with the RRC timeline — the Monsoon-monitor overlay.
	PowerW []float64
	Before float64 // seconds of context before the transition
}

// Timeline extracts the Figure 4 view for the given package: the background
// transition with the most post-transition traffic across the fleet, with
// before/after seconds of context in binWidth-second bins.
func Timeline(devs []*DeviceData, pkg string, before, after, binWidth float64) (TimelineResult, bool) {
	best := TimelineResult{App: pkg, BinWidth: binWidth, Before: before}
	bestBytes := int64(-1)
	for _, d := range devs {
		app, ok := d.appID(pkg)
		if !ok {
			continue
		}
		// Packet times/bytes for this app.
		var pts []int // indexes into d.Energy.Packets
		for i := range d.Energy.Packets {
			if d.Energy.Packets[i].App == app {
				pts = append(pts, i)
			}
		}
		for _, tr := range d.Tracker.BackgroundTransitions(app) {
			var post int64
			for _, pi := range pts {
				p := &d.Energy.Packets[pi]
				dt := p.TS.Sub(tr.TS)
				if dt > 0 && dt <= after && p.State.IsBackground() {
					post += int64(p.Bytes)
				}
			}
			if post > bestBytes {
				bestBytes = post
				best.Device = d.Device
				best.Transition = tr.TS
			}
		}
	}
	if bestBytes < 0 {
		return best, false
	}
	// Build the binned series and the radio-power overlay for the winning
	// transition.
	for _, d := range devs {
		if d.Device != best.Device {
			continue
		}
		app, _ := d.appID(pkg)
		tb := stats.NewTimeBins(binWidth, int((before+after)/binWidth))
		origin := best.Transition.AddSeconds(-before)
		rt := radio.NewTimelineBuilder(radio.LTE())
		for i := range d.Energy.Packets {
			p := &d.Energy.Packets[i]
			if p.App != app {
				continue
			}
			tb.Add(p.TS.Sub(origin), float64(p.Bytes))
			dir := radio.Down
			if p.Dir == trace.DirUp {
				dir = radio.Up
			}
			rt.OnPacket(p.TS.Seconds(), p.Bytes, dir)
		}
		best.Offsets, best.Bytes = tb.Series()
		// Integrate the power timeline into the same bins.
		best.PowerW = make([]float64, len(best.Offsets))
		o := origin.Seconds()
		for _, span := range rt.Finish() {
			if span.State == radio.Idle {
				continue
			}
			lo := span.Start - o
			hi := span.End - o
			if hi <= 0 || lo >= before+after {
				continue
			}
			for b := int(max(lo, 0) / binWidth); b < len(best.PowerW); b++ {
				bs, be := float64(b)*binWidth, float64(b+1)*binWidth
				ov := min(hi, be) - max(lo, bs)
				if ov <= 0 {
					break
				}
				best.PowerW[b] += ov * span.Power / binWidth
			}
		}
	}
	return best, true
}

// --- Figure 5: persistence of traffic after backgrounding ---

// PersistenceCDF is Figure 5: the distribution of how long an app's traffic
// persists after each foreground→background transition. Each sample is one
// transition; the duration is the time from the transition to the last
// packet of a flow that was active at the transition (0 if none persisted),
// windowed to the next return to the foreground.
type PersistenceCDF struct {
	App       string
	Durations []float64 // seconds, one per transition
	CDF       *stats.CDF
}

// Persistence computes Figure 5 for one package across the fleet.
func Persistence(devs []*DeviceData, pkg string) PersistenceCDF {
	out := PersistenceCDF{App: pkg}
	for _, d := range devs {
		app, ok := d.appID(pkg)
		if !ok {
			continue
		}
		// This app's flows, sorted by start (Flows() guarantees order).
		var fs []int
		for i, f := range d.Flows {
			if f.App == app {
				fs = append(fs, i)
			}
		}
		transitions := d.Tracker.BackgroundTransitions(app)
		for ti, tr := range transitions {
			// Window ends when the app returns to the foreground (next
			// transition's preceding fg interval) or at trace end.
			windowEnd := d.Span[1]
			if ti+1 < len(transitions) {
				// The next fg->bg transition implies a fg return before it;
				// find it from the timeline: use the next session's start,
				// approximated by the next transition's own fg entry. A
				// simple, robust bound: the app's state at t is fg again
				// somewhere before transitions[ti+1].TS.
				windowEnd = transitions[ti+1].TS
			}
			var last trace.Timestamp = tr.TS
			for _, fi := range fs {
				f := d.Flows[fi]
				if f.Start > tr.TS {
					break
				}
				if f.End > tr.TS {
					end := f.End
					if end > windowEnd {
						end = windowEnd
					}
					if end > last {
						last = end
					}
				}
			}
			out.Durations = append(out.Durations, last.Sub(tr.TS))
		}
	}
	out.CDF = stats.NewCDF(out.Durations)
	return out
}

// --- Figure 6: background data vs time since foreground ---

// SinceForegroundResult is Figure 6: total background bytes across all apps
// and users as a function of the time since the app was last in the
// foreground, in fixed bins, plus spike diagnostics at the 5- and 10-minute
// marks.
type SinceForegroundResult struct {
	BinWidth     float64
	Offsets      []float64
	Bytes        []float64
	FirstMinute  float64 // fraction of windowed bg bytes in the first 60 s
	Spike5m      float64 // periodic.SpikeScore at the 5-minute bin
	Spike10m     float64
	TotalBgBytes float64 // all binned bg bytes
}

// SinceForeground computes Figure 6 with the given bin width and horizon
// (both seconds).
func SinceForeground(devs []*DeviceData, binWidth, horizon float64) SinceForegroundResult {
	tb := stats.NewTimeBins(binWidth, int(horizon/binWidth))
	for _, d := range devs {
		for i := range d.Energy.Packets {
			p := &d.Energy.Packets[i]
			if !p.State.IsBackground() {
				continue
			}
			fgEnd, ok := d.Tracker.LastForegroundEnd(p.App, p.TS)
			if !ok {
				continue // never-foreground apps are outside this figure
			}
			tb.Add(p.TS.Sub(fgEnd), float64(p.Bytes))
		}
	}
	offs, vals := tb.Series()
	res := SinceForegroundResult{BinWidth: binWidth, Offsets: offs, Bytes: vals}
	res.TotalBgBytes = stats.Sum(vals)
	if res.TotalBgBytes > 0 {
		var first float64
		for i := range offs {
			if offs[i] < 60 {
				first += vals[i]
			}
		}
		res.FirstMinute = first / res.TotalBgBytes
	}
	res.Spike5m = periodic.SpikeScore(vals, int(300/binWidth), 6)
	res.Spike10m = periodic.SpikeScore(vals, int(600/binWidth), 6)
	return res
}

// FirstMinuteShare computes, per app, the fraction of its background bytes
// sent within windowSec of leaving the foreground, and returns the
// fraction of apps for which that share is at least threshold — the §4.1
// "84% of apps" criterion. Apps with no background bytes after a foreground
// exit are skipped; never-foregrounded apps count as failing (their traffic
// is all far from any foreground use).
type FirstMinuteResult struct {
	PerApp   map[string]float64 // app -> share of bg bytes in first window
	Meeting  int                // apps meeting the criterion
	Total    int                // apps with background traffic
	Fraction float64
}

// FirstMinute computes the criterion across the fleet.
func FirstMinute(devs []*DeviceData, windowSec, threshold float64) FirstMinuteResult {
	early := map[string]float64{}
	total := map[string]float64{}
	everFg := map[string]bool{}
	for _, d := range devs {
		for i := range d.Energy.Packets {
			p := &d.Energy.Packets[i]
			if !p.State.IsBackground() {
				continue
			}
			name := d.Apps.Name(p.App)
			total[name] += float64(p.Bytes)
			fgEnd, ok := d.Tracker.LastForegroundEnd(p.App, p.TS)
			if !ok {
				continue
			}
			everFg[name] = true
			if p.TS.Sub(fgEnd) <= windowSec {
				early[name] += float64(p.Bytes)
			}
		}
	}
	res := FirstMinuteResult{PerApp: map[string]float64{}}
	for name, tot := range total {
		if tot <= 0 {
			continue
		}
		share := early[name] / tot
		if !everFg[name] {
			share = 0
		}
		res.PerApp[name] = share
		res.Total++
		if share >= threshold {
			res.Meeting++
		}
	}
	if res.Total > 0 {
		res.Fraction = float64(res.Meeting) / float64(res.Total)
	}
	return res
}

// BrowserShares returns each browser package's background energy fraction
// (§4.1: Chrome ~30%, Firefox and the stock browser near zero).
func BrowserShares(devs []*DeviceData, packages []string) map[string]float64 {
	eBg := map[string]float64{}
	eTot := map[string]float64{}
	for _, d := range devs {
		for app, states := range d.Energy.Ledger.ByAppState {
			name := d.Apps.Name(app)
			for s, e := range states {
				eTot[name] += e
				if s.IsBackground() {
					eBg[name] += e
				}
			}
		}
	}
	out := map[string]float64{}
	for _, pkg := range packages {
		if eTot[pkg] > 0 {
			out[pkg] = eBg[pkg] / eTot[pkg]
		} else {
			out[pkg] = 0
		}
	}
	return out
}

// sortedKeys returns m's keys in ascending order. Report and serialization
// loops iterate maps through it so their output is a pure function of the
// map's content, never of iteration order.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	//repolint:ordered collection order is irrelevant: keys are sorted before return
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
