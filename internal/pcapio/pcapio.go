// Package pcapio reads and writes classic libpcap capture files
// (the tcpdump format), so traces produced by this repository can be
// inspected with standard tools and real captures can be fed to the energy
// profiler.
//
// Only the classic format (magic 0xa1b2c3d4, microsecond timestamps,
// version 2.4) is produced; both byte orders and both microsecond and
// nanosecond variants are accepted on read. The link type used is
// LINKTYPE_RAW (101): packets begin directly with the IP header, matching
// the payloads of METR packet records.
package pcapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"netenergy/internal/trace"
)

// LinkTypeRaw is the pcap link type for raw IP packets.
const LinkTypeRaw = 101

// Magic numbers.
const (
	magicMicro = 0xa1b2c3d4
	magicNano  = 0xa1b23c4d
)

// Format errors.
var (
	ErrBadMagic  = errors.New("pcapio: not a pcap file")
	ErrTruncated = errors.New("pcapio: truncated packet record")
)

// Packet is one captured packet.
type Packet struct {
	TS      trace.Timestamp
	OrigLen int    // length on the wire
	Data    []byte // captured bytes (may be shorter than OrigLen)
}

// Writer emits a classic pcap stream.
type Writer struct {
	w       *bufio.Writer
	snaplen uint32
	hdr     [16]byte
}

// NewWriter writes the global header and returns a Writer. snaplen is
// recorded in the header; packets are not re-truncated by the writer.
func NewWriter(w io.Writer, snaplen int) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], magicMicro)
	le.PutUint16(hdr[4:], 2) // version major
	le.PutUint16(hdr[6:], 4) // version minor
	// thiszone, sigfigs zero.
	if snaplen <= 0 {
		snaplen = 65535
	}
	le.PutUint32(hdr[16:], uint32(snaplen))
	le.PutUint32(hdr[20:], LinkTypeRaw)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, snaplen: uint32(snaplen)}, nil
}

// WritePacket appends one packet record.
func (w *Writer) WritePacket(p Packet) error {
	le := binary.LittleEndian
	usec := int64(p.TS)
	le.PutUint32(w.hdr[0:], uint32(usec/1e6))
	le.PutUint32(w.hdr[4:], uint32(usec%1e6))
	le.PutUint32(w.hdr[8:], uint32(len(p.Data)))
	orig := p.OrigLen
	if orig < len(p.Data) {
		orig = len(p.Data)
	}
	le.PutUint32(w.hdr[12:], uint32(orig))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(p.Data)
	return err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader consumes a pcap stream.
type Reader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	nano     bool
	snaplen  int
	linkType uint32
	buf      []byte
}

// NewReader validates the global header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, ErrBadMagic
	}
	rd := &Reader{r: br}
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case magicMicro:
		rd.order = binary.LittleEndian
	case magicNano:
		rd.order, rd.nano = binary.LittleEndian, true
	default:
		switch binary.BigEndian.Uint32(hdr[0:]) {
		case magicMicro:
			rd.order = binary.BigEndian
		case magicNano:
			rd.order, rd.nano = binary.BigEndian, true
		default:
			return nil, ErrBadMagic
		}
	}
	rd.snaplen = int(rd.order.Uint32(hdr[16:]))
	rd.linkType = rd.order.Uint32(hdr[20:])
	return rd, nil
}

// SnapLen returns the capture's snap length.
func (r *Reader) SnapLen() int { return r.snaplen }

// LinkType returns the capture's link type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// Next returns the next packet, or io.EOF at a clean end. The Data slice
// aliases an internal buffer overwritten by the following call.
func (r *Reader) Next() (Packet, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, ErrTruncated
	}
	sec := int64(r.order.Uint32(hdr[0:]))
	frac := int64(r.order.Uint32(hdr[4:]))
	incl := int(r.order.Uint32(hdr[8:]))
	orig := int(r.order.Uint32(hdr[12:]))
	if incl < 0 || incl > 1<<26 {
		return Packet{}, fmt.Errorf("pcapio: implausible capture length %d", incl)
	}
	if cap(r.buf) < incl {
		r.buf = make([]byte, incl)
	}
	data := r.buf[:incl]
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, ErrTruncated
	}
	usec := frac
	if r.nano {
		usec = frac / 1000
	}
	return Packet{
		TS:      trace.Timestamp(sec*1e6 + usec),
		OrigLen: orig,
		Data:    data,
	}, nil
}

// ReadAll decodes an entire stream, copying packet data.
func ReadAll(r io.Reader) ([]Packet, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Packet
	for {
		p, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		p.Data = append([]byte(nil), p.Data...)
		out = append(out, p)
	}
}

// FromTrace exports a device trace's packet records (optionally filtered to
// one network interface) as a pcap stream. Process mappings, directions and
// process states have no pcap representation and are dropped; the IP
// header's total-length field preserves the original wire size.
func FromTrace(w io.Writer, dt *trace.DeviceTrace, only trace.Network, filter bool) (int, error) {
	pw, err := NewWriter(w, 0)
	if err != nil {
		return 0, err
	}
	n := 0
	for i := range dt.Records {
		r := &dt.Records[i]
		if r.Type != trace.RecPacket {
			continue
		}
		if filter && r.Net != only {
			continue
		}
		orig := len(r.Payload)
		if len(r.Payload) >= 4 && r.Payload[0]>>4 == 4 {
			orig = int(binary.BigEndian.Uint16(r.Payload[2:4]))
		}
		if err := pw.WritePacket(Packet{TS: r.TS, OrigLen: orig, Data: r.Payload}); err != nil {
			return n, err
		}
		n++
	}
	return n, pw.Flush()
}

// ToTrace imports a pcap stream as a minimal device trace: every packet is
// assigned to a single synthetic app (pcap has no process mapping) on the
// cellular interface in an unknown process state. The result is directly
// consumable by the energy profiler.
func ToTrace(r io.Reader, device string) (*trace.DeviceTrace, error) {
	pkts, err := ReadAll(r)
	if err != nil {
		return nil, err
	}
	dt := &trace.DeviceTrace{Device: device, Apps: trace.NewAppTable()}
	app := dt.Apps.Intern("pcap.unknown")
	dt.Records = append(dt.Records, trace.Record{Type: trace.RecAppName, App: app, AppName: "pcap.unknown"})
	for _, p := range pkts {
		if dt.Start == 0 || p.TS < dt.Start {
			dt.Start = p.TS
		}
		dt.Records = append(dt.Records, trace.Record{
			Type: trace.RecPacket, TS: p.TS, App: app,
			Dir: trace.DirUp, Net: trace.NetCellular,
			State: trace.StateUnknown, Payload: p.Data,
		})
	}
	dt.SortByTime()
	return dt, nil
}
