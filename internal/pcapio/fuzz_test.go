package pcapio

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the pcap reader.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 96)
	w.WritePacket(Packet{TS: 1_000_000, OrigLen: 100, Data: []byte{0x45, 1, 2, 3}})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			p, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if len(p.Data) > 1<<26 {
				t.Fatalf("oversized packet accepted: %d", len(p.Data))
			}
		}
	})
}
