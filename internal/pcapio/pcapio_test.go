package pcapio

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"netenergy/internal/netparse"
	"netenergy/internal/trace"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 96)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []Packet{
		{TS: 1_500_000, OrigLen: 1000, Data: []byte{0x45, 1, 2, 3}},
		{TS: 2_000_001, OrigLen: 4, Data: []byte{0x45, 9, 9, 9}},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.SnapLen() != 96 || r.LinkType() != LinkTypeRaw {
		t.Errorf("header: snaplen=%d linktype=%d", r.SnapLen(), r.LinkType())
	}
	for i, want := range pkts {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if got.TS != want.TS || got.OrigLen != want.OrigLen || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("packet %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestReadAllCopies(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.WritePacket(Packet{TS: 1, Data: []byte{0x45, 1}})
	w.WritePacket(Packet{TS: 2, Data: []byte{0x45, 2}})
	w.Flush()
	pkts, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 || pkts[0].Data[1] != 1 || pkts[1].Data[1] != 2 {
		t.Errorf("packets = %+v", pkts)
	}
}

func TestBigEndianAndNano(t *testing.T) {
	// Hand-build a big-endian nanosecond capture with one packet.
	var buf bytes.Buffer
	be := binary.BigEndian
	hdr := make([]byte, 24)
	be.PutUint32(hdr[0:], magicNano)
	be.PutUint16(hdr[4:], 2)
	be.PutUint16(hdr[6:], 4)
	be.PutUint32(hdr[16:], 65535)
	be.PutUint32(hdr[20:], LinkTypeRaw)
	buf.Write(hdr)
	rec := make([]byte, 16)
	be.PutUint32(rec[0:], 10)          // 10 s
	be.PutUint32(rec[4:], 500_000_000) // 0.5 s in ns
	be.PutUint32(rec[8:], 2)
	be.PutUint32(rec[12:], 2)
	buf.Write(rec)
	buf.Write([]byte{0x45, 0xff})

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.TS != 10_500_000 {
		t.Errorf("nano timestamp = %d, want 10500000 us", p.TS)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file at all !"))); err != ErrBadMagic {
		t.Errorf("bad magic: %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err != ErrBadMagic {
		t.Errorf("empty: %v", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.WritePacket(Packet{TS: 1, Data: []byte{0x45, 1, 2, 3}})
	w.Flush()
	data := buf.Bytes()
	for cut := len(data) - 1; cut > 24; cut-- {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); err == nil {
			t.Fatalf("cut %d: truncated record accepted", cut)
		}
	}
}

func TestImplausibleLength(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.Flush()
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[8:], 1<<30) // absurd incl_len
	buf.Write(rec)
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.Next(); err == nil {
		t.Error("absurd length accepted")
	}
}

func buildTrace(t *testing.T) *trace.DeviceTrace {
	t.Helper()
	dt := &trace.DeviceTrace{Device: "d", Start: 0, Apps: trace.NewAppTable()}
	app := dt.Apps.Intern("com.a")
	buf := make([]byte, 4096)
	add := func(ts trace.Timestamp, net trace.Network, payloadLen int) {
		stored, _, err := netparse.BuildTCPv4Snapped(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 0, 0, 1},
			40000, 443, 0, netparse.TCPAck, payloadLen, 96)
		if err != nil {
			t.Fatal(err)
		}
		dt.Records = append(dt.Records, trace.Record{
			Type: trace.RecPacket, TS: ts, App: app, Net: net,
			State: trace.StateService, Payload: append([]byte(nil), buf[:stored]...),
		})
	}
	add(1_000_000, trace.NetCellular, 2000)
	add(2_000_000, trace.NetWiFi, 100)
	add(3_000_000, trace.NetCellular, 50)
	return dt
}

func TestFromTraceFilter(t *testing.T) {
	dt := buildTrace(t)
	var buf bytes.Buffer
	n, err := FromTrace(&buf, dt, trace.NetCellular, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("exported %d packets, want 2 (cellular only)", n)
	}
	pkts, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 {
		t.Fatalf("read back %d packets", len(pkts))
	}
	// OrigLen must reflect the true wire size of the snapped packet.
	if pkts[0].OrigLen != 2040 {
		t.Errorf("orig len = %d, want 2040", pkts[0].OrigLen)
	}
	if len(pkts[0].Data) != 96 {
		t.Errorf("captured = %d, want 96 (snapped)", len(pkts[0].Data))
	}

	// Unfiltered export includes the WiFi packet.
	buf.Reset()
	n, err = FromTrace(&buf, dt, trace.NetCellular, false)
	if err != nil || n != 3 {
		t.Errorf("unfiltered export = %d packets (%v)", n, err)
	}
}

func TestToTraceRoundTrip(t *testing.T) {
	dt := buildTrace(t)
	var buf bytes.Buffer
	if _, err := FromTrace(&buf, dt, trace.NetCellular, true); err != nil {
		t.Fatal(err)
	}
	got, err := ToTrace(bytes.NewReader(buf.Bytes()), "imported")
	if err != nil {
		t.Fatal(err)
	}
	if got.Device != "imported" {
		t.Errorf("device = %q", got.Device)
	}
	pkts := got.Packets()
	if len(pkts) != 2 {
		t.Fatalf("imported %d packets", len(pkts))
	}
	if got.Start != 1_000_000 {
		t.Errorf("start = %d", got.Start)
	}
	// The imported trace must decode with the snap-aware parser.
	p := netparse.NewParser()
	p.Snap = true
	for _, idx := range pkts {
		if _, err := p.DecodePacket(got.Records[idx].Payload); err != nil {
			t.Errorf("imported packet undecodable: %v", err)
		}
	}
}
