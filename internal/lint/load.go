package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// This file is the standalone package loader: it resolves patterns with
// `go list -deps -export -json`, parses the matched packages' sources, and
// type-checks them against the compiler's export data — the same inputs
// `go vet` hands a vettool through its .cfg file, gathered without a
// dependency on golang.org/x/tools/go/packages.

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	Export       string
	Match        []string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	Module       *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// goList runs `go list -deps -export -json` in dir and decodes the stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter type-imports packages from compiler export data files.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// parseOne parses a single file with comments (directives live there).
// Legacy ast.Object resolution is skipped: every analyzer resolves
// identifiers through types.Info, never Ident.Obj.
func parseOne(fset *token.FileSet, name string) (*ast.File, error) {
	return parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
}

// newInfo allocates a types.Info with exactly the maps the analyzers
// read: Types, Defs, Uses (ObjectOf/TypeOf) and Selections. Implicits,
// Instances and Scopes are left nil so the checker skips recording them —
// the whole-module load is the suite's dominant cost.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// typeCheck parses and checks one package's files under the given import
// path, resolving imports through exports.
func typeCheck(fset *token.FileSet, path, srcDir string, goFiles []string, exports map[string]string, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(srcDir, name)
		}
		f, err := parseOne(fset, name)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := &types.Config{
		Importer: exportImporter(fset, exports),
		Error:    func(error) {}, // collect everything; first error returned below
	}
	if goVersion != "" {
		conf.GoVersion = "go" + strings.TrimPrefix(goVersion, "go")
	}
	info := newInfo()
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// Load resolves patterns (e.g. "./...") relative to dir and returns the
// matched packages, parsed and type-checked. Dependency packages are
// imported from export data, not re-checked.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	var matched []*listedPackage
	for _, p := range listed {
		if len(p.Match) == 0 {
			continue // dependency, not a match for the patterns
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Name == "" || len(p.GoFiles) == 0 {
			continue
		}
		matched = append(matched, p)
	}

	// Parse and type-check the matched packages in parallel. A token.FileSet
	// is safe for concurrent use, and each package gets its own importer, so
	// the only shared mutable state is the file set's internal table. Results
	// land by index, keeping the output order deterministic (go list order).
	fset := token.NewFileSet()
	out := make([]*Package, len(matched))
	errs := make([]error, len(matched))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range matched {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			goVersion := ""
			if p.Module != nil {
				goVersion = p.Module.GoVersion
			}
			out[i], errs[i] = typeCheck(fset, p.ImportPath, p.Dir, p.GoFiles, exports, goVersion)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Run loads the patterns and applies the analyzers to every matched
// package, returning all surviving diagnostics sorted per package.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	diags, fset, err := RunAll(dir, patterns, analyzers)
	if err != nil {
		return nil, nil, err
	}
	active := diags[:0]
	for _, d := range diags {
		if !d.Suppressed {
			active = append(active, d)
		}
	}
	return active, fset, nil
}

// RunAll is Run keeping suppressed diagnostics (Suppressed set, with the
// directive's justification attached) — the input of `repolint -json`.
// Packages are analyzed in parallel; diagnostics keep package load order.
func RunAll(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			diags, err := CheckPackageAll(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %v", pkg.Path, err)
				return
			}
			perPkg[i] = diags
		}()
	}
	wg.Wait()
	var all []Diagnostic
	for i := range pkgs {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
		all = append(all, perPkg[i]...)
	}
	return all, fset, nil
}
