package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// This file is the standalone package loader: it resolves patterns with
// `go list -deps -export -json`, parses the matched packages' sources, and
// type-checks them against the compiler's export data — the same inputs
// `go vet` hands a vettool through its .cfg file, gathered without a
// dependency on golang.org/x/tools/go/packages.

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Match      []string
	GoFiles    []string
	Standard   bool
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// goList runs `go list -deps -export -json` in dir and decodes the stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter type-imports packages from compiler export data files.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// parseOne parses a single file with comments (directives live there).
func parseOne(fset *token.FileSet, name string) (*ast.File, error) {
	return parser.ParseFile(fset, name, nil, parser.ParseComments)
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// typeCheck parses and checks one package's files under the given import
// path, resolving imports through exports.
func typeCheck(fset *token.FileSet, path, srcDir string, goFiles []string, exports map[string]string, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(srcDir, name)
		}
		f, err := parseOne(fset, name)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := &types.Config{
		Importer: exportImporter(fset, exports),
		Error:    func(error) {}, // collect everything; first error returned below
	}
	if goVersion != "" {
		conf.GoVersion = "go" + strings.TrimPrefix(goVersion, "go")
	}
	info := newInfo()
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// Load resolves patterns (e.g. "./...") relative to dir and returns the
// matched packages, parsed and type-checked. Dependency packages are
// imported from export data, not re-checked.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	var out []*Package
	fset := token.NewFileSet()
	for _, p := range listed {
		if len(p.Match) == 0 {
			continue // dependency, not a match for the patterns
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Name == "" || len(p.GoFiles) == 0 {
			continue
		}
		goVersion := ""
		if p.Module != nil {
			goVersion = p.Module.GoVersion
		}
		pkg, err := typeCheck(fset, p.ImportPath, p.Dir, p.GoFiles, exports, goVersion)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Run loads the patterns and applies the analyzers to every matched
// package, returning all surviving diagnostics sorted per package.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	var all []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		diags, err := CheckPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %v", pkg.Path, err)
		}
		all = append(all, diags...)
	}
	return all, fset, nil
}
