package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the fixed-seed reproducibility contract (PAPER §3,
// ROADMAP "bit-deterministic pipeline") on the packages whose output feeds
// the headline artifacts: no wall clock, no global math/rand, and no map
// iteration whose order can reach an output or serialization call.
//
// Escape hatches: //repolint:ordered on a map-range loop asserts the loop
// is order-insensitive (or intentionally unordered) with a written reason;
// //repolint:allow determinism covers the other checks (e.g. telemetry
// timing that never reaches an artifact).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/time.Since, global math/rand, and order-sensitive " +
		"map ranges in the deterministic pipeline packages",
	Run: runDeterminism,
}

// deterministicPkgs is the scope: the synthetic generator, the models it
// drives, the trace codec, the analyzers and the study driver. ingest and
// obs are deliberately out: they are wall-clock subsystems whose outputs
// are reconciled against the deterministic pipeline by the golden harness.
var deterministicPkgs = map[string]bool{
	"netenergy/internal/synthgen":  true,
	"netenergy/internal/appmodel":  true,
	"netenergy/internal/usermodel": true,
	"netenergy/internal/trace":     true,
	"netenergy/internal/analysis":  true,
	"netenergy/internal/whatif":    true,
	"netenergy/internal/core":      true,
	"netenergy/internal/tsq":       true,
}

// seededRandCtors are the only math/rand package-level functions allowed in
// deterministic code: constructors that take an explicit seeded source.
// Everything else at package level draws from the global, racy, time-seeded
// generator.
var seededRandCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *rand.Rand; cannot reach the global state
	"NewPCG":     true, // math/rand/v2 explicit-seed source
	"NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	if !deterministicPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves a call to the package-level function or method it
// invokes, or nil.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
			pass.Reportf(call.Pos(),
				"time.%s in deterministic package %s: fixed-seed runs must not read the wall clock",
				fn.Name(), pass.Pkg.Path())
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on an explicit *rand.Rand are fine
		}
		if seededRandCtors[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(),
			"global %s.%s in deterministic package %s: use internal/rng or an explicit rand.New(rand.NewSource(seed))",
			fn.Pkg().Name(), fn.Name(), pass.Pkg.Path())
	}
}

// checkMapRange flags `range m` over a map when the loop body emits
// per-iteration output whose order the map does not define: an append to a
// slice, a write/print/encode call, or a channel send. Bodies that only
// fold into order-insensitive sinks (sums, map writes, max/min) pass; a
// loop that is order-insensitive for a deeper reason (e.g. the slice is
// sorted afterwards) carries //repolint:ordered with the reason.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if pass.HasDirective(rng.Pos(), "ordered") {
		return
	}
	if sink := orderSensitiveSink(pass, rng.Body); sink != "" {
		pass.Reportf(rng.Pos(),
			"map iteration order reaches %s: emit in sorted order or annotate //repolint:ordered with why order cannot matter",
			sink)
	}
}

// orderSensitiveSink scans a loop body for a statement whose effect depends
// on iteration order, returning a short description of the first one.
func orderSensitiveSink(pass *Pass, body *ast.BlockStmt) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "a channel send"
			return false
		case *ast.CallExpr:
			if name, ok := orderedSinkCall(pass, n); ok {
				sink = name
				return false
			}
		}
		return true
	})
	return sink
}

// orderedSinkPrefixes are name families that emit or accumulate in call
// order: sequential writers, printers, encoders, and append-style helpers
// (appendUvarint, AppendBinary, binary.AppendVarint, ...).
var orderedSinkPrefixes = []string{
	"Write", "Print", "Fprint", "Encode", "Marshal", "Append", "append",
}

func orderedSinkCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	// The append builtin grows a sequence in iteration order.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" {
			return "an append (sequence grows in map order)", true
		}
	}
	if fn := calleeFunc(pass, call); fn != nil {
		for _, prefix := range orderedSinkPrefixes {
			if strings.HasPrefix(fn.Name(), prefix) {
				return "a " + fn.Name() + " call (emits in map order)", true
			}
		}
	}
	return "", false
}
