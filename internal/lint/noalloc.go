package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Noalloc is the static complement to TestApplyAllocFree and the DESIGN.md
// zero-allocation policy: a function annotated //repolint:noalloc (the
// ingest apply path, the frame codec, the obs observe paths) may not
// contain the construct classes that force heap allocations on every call:
//
//   - calls into package fmt (Sprintf and friends always allocate),
//   - non-constant string concatenation,
//   - append whose destination escapes the function (a field, a deref, an
//     element of non-local storage) — append into a local or into the
//     caller's buffer via the append-style return idiom is the sanctioned
//     amortized-growth pattern,
//   - implicit or explicit conversion of a non-pointer concrete value to an
//     interface (boxing),
//   - closures that capture variables (the closure context is heap-allocated).
//
// The dynamic test measures allocs/op == 0; this analyzer points at the
// exact expression when a refactor is about to break that, before a
// benchmark run ever sees it. //repolint:allow noalloc suppresses one line
// with a written reason.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "forbid allocating constructs in functions annotated //repolint:noalloc",
	Run:  runNoalloc,
}

func runNoalloc(pass *Pass) error {
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !noallocAnnotated(pass, fn) {
				continue
			}
			checkNoallocBody(pass, fn)
		}
	}
	return nil
}

// noallocAnnotated reports whether fn carries //repolint:noalloc in its doc
// comment or on the line above/of the declaration.
func noallocAnnotated(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if d := parseDirective(c.Pos(), c.Text); d.name == "noalloc" {
				return true
			}
		}
	}
	return pass.HasDirective(fn.Pos(), "noalloc")
}

func checkNoallocBody(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkClosureCapture(pass, fn, n)
			return false // the literal runs later; its body is its own scope
		case *ast.CallExpr:
			checkNoallocCall(pass, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringConcat(info, n) {
				pass.Reportf(n.OpPos, "string concatenation allocates in noalloc function %s", fn.Name.Name)
			}
		case *ast.AssignStmt:
			checkNoallocAssign(pass, fn, n)
		case *ast.ReturnStmt:
			checkNoallocReturn(pass, fn, n)
		}
		return true
	})
}

// checkNoallocCall flags fmt calls, escaping appends in argument position,
// and interface-boxing arguments.
func checkNoallocCall(pass *Pass, call *ast.CallExpr) {
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			pass.Reportf(call.Pos(), "fmt.%s allocates; format off the hot path", fn.Name())
			return
		}
	}
	// Arguments: an append result handed to a callee escapes; a concrete
	// non-pointer handed to an interface parameter is boxed.
	sig := callSignature(pass, call)
	for i, arg := range call.Args {
		if isAppendCall(pass, arg) {
			pass.Reportf(arg.Pos(), "append result passed to a call escapes (allocates); append into a local or the caller's buffer")
		}
		if sig != nil {
			if pt := paramTypeAt(sig, i, call); pt != nil && boxesIntoInterface(pass.TypesInfo, pt, arg) {
				pass.Reportf(arg.Pos(), "non-pointer value boxed into interface argument (allocates)")
			}
		}
	}
}

// callSignature returns the callee signature when the call is a function
// call (not a conversion).
func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// paramTypeAt maps an argument index to the parameter type, unrolling the
// variadic tail.
func paramTypeAt(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if call.Ellipsis.IsValid() {
			return sig.Params().At(n - 1).Type()
		}
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// boxesIntoInterface reports whether assigning expr to target type boxes a
// concrete non-pointer value into an interface.
func boxesIntoInterface(info *types.Info, target types.Type, expr ast.Expr) bool {
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		// Already an interface, or a pointer-shaped value: stored
		// directly in the interface word, no heap copy of the payload.
		return false
	}
	return true
}

func isStringConcat(info *types.Info, b *ast.BinaryExpr) bool {
	tv, ok := info.Types[b]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.Value != nil {
		return false // folded at compile time
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isAppendCall reports whether expr is a call of the append builtin.
func isAppendCall(pass *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// checkNoallocAssign flags append results stored into escaping locations
// and interface-boxing assignments.
func checkNoallocAssign(pass *Pass, fn *ast.FuncDecl, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		var lhs ast.Expr
		if len(as.Lhs) == len(as.Rhs) {
			lhs = as.Lhs[i]
		}
		if isAppendCall(pass, rhs) && lhs != nil && !isLocalVar(pass, fn, lhs) {
			pass.Reportf(rhs.Pos(), "append into escaping destination %s (allocates beyond the local buffer)", exprString(lhs))
		}
		if lhs != nil {
			if lt := pass.TypesInfo.TypeOf(lhs); lt != nil && boxesIntoInterface(pass.TypesInfo, lt, rhs) {
				pass.Reportf(rhs.Pos(), "non-pointer value boxed into interface on assignment (allocates)")
			}
		}
	}
}

// checkNoallocReturn allows the append-style idiom `return append(param,
// ...)` (continuing the caller's buffer) and flags returning an append of
// anything else, plus interface-boxing returns.
func checkNoallocReturn(pass *Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	var results *types.Tuple
	if sig, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
		results = sig.Type().(*types.Signature).Results()
	}
	for i, expr := range ret.Results {
		if call, ok := ast.Unparen(expr).(*ast.CallExpr); ok && isAppendCall(pass, expr) {
			if len(call.Args) == 0 || !isParamVar(pass, fn, call.Args[0]) {
				pass.Reportf(expr.Pos(), "returned append does not continue a caller-owned buffer (allocates)")
			}
		}
		if results != nil && i < results.Len() && len(ret.Results) == results.Len() {
			if boxesIntoInterface(pass.TypesInfo, results.At(i).Type(), expr) {
				pass.Reportf(expr.Pos(), "non-pointer value boxed into interface return (allocates)")
			}
		}
	}
}

// isLocalVar reports whether expr is a bare identifier naming a variable
// declared inside fn (parameters included).
func isLocalVar(pass *Pass, fn *ast.FuncDecl, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return fn.Pos() <= v.Pos() && v.Pos() <= fn.End()
}

// isParamVar reports whether expr is a bare identifier naming one of fn's
// parameters — the first argument of the sanctioned `return append(dst,
// ...)` idiom.
func isParamVar(pass *Pass, fn *ast.FuncDecl, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok || fn.Type.Params == nil {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if pass.TypesInfo.ObjectOf(name) == obj {
				return true
			}
		}
	}
	return false
}

// checkClosureCapture flags closures that capture variables from the
// enclosing noalloc function: the capture context lives on the heap.
func checkClosureCapture(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) {
	var captured *ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared inside the enclosing function but outside
		// the literal. Package-level variables are direct references,
		// not captures.
		if v.Pos() >= fn.Pos() && v.Pos() <= fn.End() && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			captured = id
			return false
		}
		return true
	})
	if captured != nil {
		pass.Reportf(lit.Pos(), "closure captures %q: the capture context allocates in noalloc function %s",
			captured.Name, fn.Name.Name)
	}
}

// exprString renders a short description of an lvalue for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return "expression"
	}
}
