package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SeverErr enforces the ingest error contract (DESIGN.md "sever on
// corruption"): inside internal/ingest and internal/ingest/checkpoint,
// an error returned by a decode/CRC/sequence-validation function is a
// trust boundary. The frame it guards cannot be used, and the timestamp
// delta chain behind it cannot be trusted, so the error must flow into a
// sever/reject path — propagate to the caller, terminate the connection
// loop, or abandon the item. Three failure shapes are flagged:
//
//   - the error is discarded (expression statement, or assigned to _),
//   - the error is bound to a variable that is never checked,
//   - the error branch logs and falls through to keep using the data
//     ("logged-and-continued").
//
// A branch counts as severing when it leaves the code path that would
// consume the corrupt value: return, panic, goto, break/continue (abandon
// the item), or os.Exit/log.Fatal. //repolint:allow severerr suppresses a
// call site with a written reason.
var SeverErr = &Analyzer{
	Name: "severerr",
	Doc:  "decode/CRC/seq errors in ingest must sever, not be dropped or logged-and-continued",
	Run:  runSeverErr,
}

// severErrPkgs is the scope: the wire protocol, its checkpoint codec, and
// the cluster tier (membership snapshots and checkpoint transfers cross
// the same trust boundary — a corrupt pull or handoff must be dropped,
// never blended into a fleet merge). PR 9 widened the scope to the trace
// container and LZ block codecs: their block/batch decode paths consume the
// same untrusted bytes, and a swallowed CRC or length error there silently
// corrupts everything downstream.
var severErrPkgs = map[string]bool{
	"netenergy/internal/ingest":            true,
	"netenergy/internal/ingest/checkpoint": true,
	"netenergy/internal/cluster":           true,
	"netenergy/internal/lz":                true,
	"netenergy/internal/trace":             true,
}

func runSeverErr(pass *Pass) error {
	if !severErrPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			if body, ok := stmtList(n); ok {
				checkStmtList(pass, body)
			}
			return true
		})
	}
	return nil
}

// stmtList extracts the statement list from any node that owns one.
func stmtList(n ast.Node) ([]ast.Stmt, bool) {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List, true
	case *ast.CaseClause:
		return n.Body, true
	case *ast.CommClause:
		return n.Body, true
	}
	return nil, false
}

// guardedCall reports whether call invokes a decode/CRC/seq-family
// function that returns an error, returning the callee name.
func guardedCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return "", false
	}
	if !isGuardedName(fn.Name()) {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if errorResultIndex(sig) < 0 {
		return "", false
	}
	return fn.Name(), true
}

// isGuardedName matches the decode/CRC/seq function families named by the
// ingest contract, plus the read* wire helpers and the frame reader's
// next() which surface CRC and framing errors.
func isGuardedName(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range []string{"decode", "crc", "seq"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return strings.HasPrefix(lower, "read") || name == "next"
}

// errorResultIndex returns the index of the (last) error result, or -1.
func errorResultIndex(sig *types.Signature) int {
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if isErrorType(res.At(i).Type()) {
			return i
		}
	}
	return -1
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorIface)
}

// checkStmtList examines each statement for guarded calls and traces the
// error result forward through the list.
func checkStmtList(pass *Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if name, ok := guardedCall(pass, call); ok {
					pass.Reportf(call.Pos(), "error from %s discarded: decode/CRC/seq failures must sever", name)
				}
			}
		case *ast.AssignStmt:
			checkGuardedAssign(pass, s, stmts[i+1:])
		case *ast.IfStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok {
				if name, errObj, ok := guardedAssign(pass, init); ok {
					if errObj == nil {
						pass.Reportf(init.Pos(), "error from %s assigned to _: decode/CRC/seq failures must sever", name)
					} else if condMentions(pass, s.Cond, errObj) {
						checkErrBranches(pass, s, errObj, name)
					}
				}
			}
		case *ast.ReturnStmt:
			// A guarded call in return position propagates the error to
			// the caller: the canonical sever-by-propagation shape.
		}
	}
}

// guardedAssign reports whether as binds the results of a guarded call,
// returning the callee name and the object the error result is bound to
// (nil when bound to the blank identifier).
func guardedAssign(pass *Pass, as *ast.AssignStmt) (string, types.Object, bool) {
	if len(as.Rhs) != 1 {
		return "", nil, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return "", nil, false
	}
	name, ok := guardedCall(pass, call)
	if !ok {
		return "", nil, false
	}
	fn := calleeFunc(pass, call)
	sig := fn.Type().(*types.Signature)
	idx := errorResultIndex(sig)
	if sig.Results().Len() == 1 {
		idx = 0
	}
	if idx >= len(as.Lhs) {
		return "", nil, false
	}
	id, ok := as.Lhs[idx].(*ast.Ident)
	if !ok {
		return "", nil, false
	}
	if id.Name == "_" {
		return name, nil, true
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return "", nil, false
	}
	return name, obj, true
}

// checkGuardedAssign handles `x, err := guarded()` as a standalone
// statement: the error object must be checked by a following if/switch
// (or returned) before the block ends or the variable is overwritten.
func checkGuardedAssign(pass *Pass, as *ast.AssignStmt, rest []ast.Stmt) {
	name, errObj, ok := guardedAssign(pass, as)
	if !ok {
		return
	}
	if errObj == nil {
		pass.Reportf(as.Pos(), "error from %s assigned to _: decode/CRC/seq failures must sever", name)
		return
	}
	for _, stmt := range rest {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			if condMentions(pass, s.Cond, errObj) {
				checkErrBranches(pass, s, errObj, name)
				return
			}
		case *ast.SwitchStmt:
			if switchMentions(pass, s, errObj) {
				checkErrSwitch(pass, s, errObj, name)
				return
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if exprMentions(pass, r, errObj) {
					return // propagated to the caller
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == errObj {
					// Overwritten before any check.
					pass.Reportf(as.Pos(), "error from %s overwritten before being checked", name)
					return
				}
			}
		}
	}
	pass.Reportf(as.Pos(), "error from %s never checked: decode/CRC/seq failures must sever", name)
}

// condMentions reports whether the expression references obj.
func condMentions(pass *Pass, cond ast.Expr, obj types.Object) bool {
	return cond != nil && exprMentions(pass, cond, obj)
}

func exprMentions(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// checkErrBranches verifies the error branch of `if <cond involving err>`:
// for `err == nil` the error branch is the else; otherwise it is the body.
func checkErrBranches(pass *Pass, s *ast.IfStmt, errObj types.Object, name string) {
	errBranch := ast.Stmt(s.Body)
	if isEqNil(pass, s.Cond, errObj) {
		errBranch = s.Else
		if errBranch == nil {
			pass.Reportf(s.Pos(), "error from %s checked with == nil but the failure case is missing", name)
			return
		}
	}
	if !branchSevers(errBranch) {
		pass.Reportf(errBranch.Pos(),
			"error from %s logged-and-continued: the failure branch must sever (return, panic, or abandon the item)", name)
	}
}

// checkErrSwitch verifies a tagless switch over err (the frame-reader
// idiom): every clause except `case err == nil` must sever.
func checkErrSwitch(pass *Pass, s *ast.SwitchStmt, errObj types.Object, name string) {
	for _, clause := range s.Body.List {
		cc := clause.(*ast.CaseClause)
		if len(cc.List) == 1 && isEqNil(pass, cc.List[0], errObj) {
			continue // the success clause
		}
		body := &ast.BlockStmt{List: cc.Body}
		if !branchSevers(body) {
			pass.Reportf(cc.Pos(),
				"error from %s logged-and-continued in switch clause: the failure case must sever", name)
		}
	}
}

// switchMentions reports whether any case expression references obj.
func switchMentions(pass *Pass, s *ast.SwitchStmt, obj types.Object) bool {
	if s.Tag != nil && exprMentions(pass, s.Tag, obj) {
		return true
	}
	for _, clause := range s.Body.List {
		for _, e := range clause.(*ast.CaseClause).List {
			if exprMentions(pass, e, obj) {
				return true
			}
		}
	}
	return false
}

// isEqNil reports whether cond is exactly `obj == nil`.
func isEqNil(pass *Pass, cond ast.Expr, obj types.Object) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.EQL {
		return false
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if exprIsObj(pass, x, obj) && isNilIdent(pass, y) {
		return true
	}
	return exprIsObj(pass, y, obj) && isNilIdent(pass, x)
}

func exprIsObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == obj
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.ObjectOf(id).(*types.Nil)
	return isNil
}

// branchSevers reports whether the statement (an if-body, else branch, or
// case body) abandons the corrupt item: it contains a return, panic, goto,
// break/continue, or process-terminating call on some path. Logging alone
// does not qualify — control falling off the end of the branch re-enters
// the code that would consume the bad data.
func branchSevers(stmt ast.Stmt) bool {
	if stmt == nil {
		return false
	}
	severs := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if severs {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested closure's returns do not sever this path
		case *ast.ReturnStmt, *ast.BranchStmt:
			severs = true
			return false
		case *ast.CallExpr:
			if isTerminalCall(n) {
				severs = true
				return false
			}
		}
		return true
	})
	return severs
}

// isTerminalCall matches panic, os.Exit and the log.Fatal family.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		return name == "Exit" || strings.HasPrefix(name, "Fatal")
	}
	return false
}
