package lint

import (
	"go/ast"
)

// This file is the forward-dataflow half of the engine: a worklist solver
// over the funcCFG of cfg.go. An analysis supplies three things — a state
// lattice (clone/join), a transfer function over the nodes of a block, and
// an edge refinement that learns facts from branch conditions. Reporting
// happens inside the transfer function once the solver has reached a
// fixpoint, so diagnostics see the join of every path into their block.

// flowState is one analysis's abstract state at a program point.
type flowState interface {
	// clone returns an independent copy.
	clone() flowState
	// join folds other into the receiver (lattice join) and reports
	// whether the receiver changed. other is never mutated.
	join(other flowState) bool
}

// flowAnalysis defines the semantics of one dataflow problem.
type flowAnalysis interface {
	// transfer applies the effect of one node to st in place. report is
	// true on the final reporting pass, false while solving.
	transfer(n ast.Node, st flowState, report bool)
	// refine applies what an edge's branch condition being val teaches
	// about st, in place. cond is never nil.
	refine(cond ast.Expr, val bool, st flowState)
}

// maxFlowIterations bounds the solver; real decode/serve functions
// converge in a handful of passes, so hitting the cap means a lattice bug
// and the analysis degrades to whatever was computed (no diagnostics are
// invented, some may be missed).
const maxFlowIterations = 64

// runFlow solves the dataflow problem over cfg starting from entry and
// then makes one reporting pass with transfer(report=true) over every
// reached block's fixpoint in-state.
func runFlow(cfg *funcCFG, an flowAnalysis, entry flowState) {
	in := map[*cfgBlock]flowState{cfg.entry: entry}
	work := []*cfgBlock{cfg.entry}
	queued := map[*cfgBlock]bool{cfg.entry: true}
	for rounds := 0; len(work) > 0 && rounds < maxFlowIterations*len(cfg.blocks); rounds++ {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		st := in[blk].clone()
		for _, n := range blk.nodes {
			an.transfer(n, st, false)
		}
		for _, e := range blk.succs {
			next := st.clone()
			if e.cond != nil {
				an.refine(e.cond, e.val, next)
			}
			if prev, ok := in[e.to]; !ok {
				in[e.to] = next
				if !queued[e.to] {
					work = append(work, e.to)
					queued[e.to] = true
				}
			} else if prev.join(next) {
				if !queued[e.to] {
					work = append(work, e.to)
					queued[e.to] = true
				}
			}
		}
	}

	// Reporting pass: apply transfers once more over the solved in-states.
	for _, blk := range cfg.blocks {
		st, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		st = st.clone()
		for _, n := range blk.nodes {
			an.transfer(n, st, true)
		}
	}
}

// funcBodies yields every function body in the file in source order —
// declarations first, then each nested function literal as its own unit —
// so an analysis can treat closures as independent functions.
func funcBodies(f *ast.File, fn func(body *ast.BlockStmt, decl *ast.FuncDecl, lit *ast.FuncLit)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Body, n, nil)
			}
		case *ast.FuncLit:
			fn(n.Body, nil, n)
		}
		return true
	})
}
