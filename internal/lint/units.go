package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Units is a lightweight dimensional-analysis pass over the energy math.
// The radio model (PAPER §3.1) mixes joules, watts, seconds, bytes and
// Mbps in one expression tree; transposing two factors still type-checks
// (everything is float64) and still produces plausible-looking numbers.
// This analyzer assigns each traced value a dimension vector over
// {energy, time, data} plus a scale, propagates it through * and /, and
// flags +, - and comparisons whose operands carry incompatible units —
// adding joules to watts, or comparing seconds against milliseconds.
//
// Values are traced from two sources, both declared in this file:
//
//   - a types-anchored table for the fields and methods of
//     internal/radio.Params, internal/radio.TailPhase and the
//     internal/energy aggregates;
//   - a name-suffix table (Joules, Millijoules, Watts, MilliWatts, Watts
//     per Mbps via the Alpha fields, Seconds, Millis, Mbps, Bytes, Bits,
//     Energy, Power, Time) applied to numeric identifiers.
//
// Anything else — constants, unsuffixed locals — is unknown, and any
// operation touching an unknown stays unknown. That is deliberate: an
// explicit conversion factor (`* 1e3`, `* 8`) makes the expression
// unknown and silences the check, so converting is always expressible.
// //repolint:allow units suppresses a line with a written reason.
var Units = &Analyzer{
	Name: "units",
	Doc:  "flag +,- and comparisons mixing incompatible energy/time/data units",
	Run:  runUnits,
}

// A unit is a dimension vector (exponents of energy, time, data) and a
// scale factor relative to the base units joule, second, bit.
type unit struct {
	known   bool
	e, t, d int
	scale   float64
}

func (u unit) mul(v unit) unit {
	if !u.known || !v.known {
		return unit{}
	}
	return unit{known: true, e: u.e + v.e, t: u.t + v.t, d: u.d + v.d, scale: u.scale * v.scale}
}

func (u unit) div(v unit) unit {
	if !u.known || !v.known {
		return unit{}
	}
	return unit{known: true, e: u.e - v.e, t: u.t - v.t, d: u.d - v.d, scale: u.scale / v.scale}
}

// compatible reports whether two known units may be added or compared.
func (u unit) compatible(v unit) bool {
	return u.e == v.e && u.t == v.t && u.d == v.d && u.scale == v.scale
}

func (u unit) String() string {
	if !u.known {
		return "?"
	}
	var parts []string
	dim := func(name string, exp int) {
		switch {
		case exp == 1:
			parts = append(parts, name)
		case exp != 0:
			parts = append(parts, name+"^"+itoa(exp))
		}
	}
	dim("J", u.e)
	dim("s", u.t)
	dim("bit", u.d)
	s := strings.Join(parts, "·")
	if s == "" {
		s = "1"
	}
	if u.scale != 1 {
		s += "×" + ftoa(u.scale)
	}
	return s
}

func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + itoa(n%10)
}

func ftoa(f float64) string {
	switch f {
	case 1e-3:
		return "1e-3"
	case 1e-6:
		return "1e-6"
	case 1e6:
		return "1e6"
	case 8:
		return "8"
	case 0.125:
		return "1/8"
	}
	return "non-unit scale"
}

// Base units.
var (
	joules    = unit{known: true, e: 1, scale: 1}
	watts     = unit{known: true, e: 1, t: -1, scale: 1}
	seconds   = unit{known: true, t: 1, scale: 1}
	mbps      = unit{known: true, d: 1, t: -1, scale: 1e6}
	bits      = unit{known: true, d: 1, scale: 1}
	dataBytes = unit{known: true, d: 1, scale: 8}
	// wattsPerMbps is the dimension of the Alpha rate coefficients.
	wattsPerMbps = watts.div(mbps)
)

func milli(u unit) unit { u.scale *= 1e-3; return u }

// unitSuffixes is the declared name-suffix table, checked longest-first.
// A suffix applies only to identifiers of numeric type (so PayloadBytes
// []byte is a buffer, not a quantity) and never to time.Duration, whose
// arithmetic the standard library already keeps honest.
var unitSuffixes = []struct {
	suffix string
	u      unit
}{
	{"Millijoules", milli(joules)},
	{"MilliWatts", milli(watts)},
	{"Joules", joules},
	{"Watts", watts},
	{"Seconds", seconds},
	{"Millis", milli(seconds)},
	{"Mbps", mbps},
	{"Bytes", dataBytes},
	{"Bits", bits},
	{"Energy", joules},
	{"Power", watts},
	{"Time", seconds},
}

// unitByName resolves an identifier (or method) name via the suffix table.
func unitByName(name string) unit {
	for _, entry := range unitSuffixes {
		if strings.HasSuffix(name, entry.suffix) {
			return entry.u
		}
		lower := strings.ToLower(entry.suffix)
		if name == lower || strings.HasSuffix(name, "_"+lower) {
			return entry.u
		}
	}
	return unit{}
}

// fieldUnits is the types-anchored table: fields whose unit the suffix
// rules cannot derive, keyed by "package-path.Type.Field".
var fieldUnits = map[string]unit{
	"netenergy/internal/radio.Params.Base":        watts,
	"netenergy/internal/radio.Params.AlphaUp":     wattsPerMbps,
	"netenergy/internal/radio.Params.AlphaDown":   wattsPerMbps,
	"netenergy/internal/radio.TailPhase.Duration": seconds,
	"netenergy/internal/radio.TailPhase.Power":    watts,
}

func runUnits(pass *Pass) error {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch b.Op {
			case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				x := unitOf(pass, b.X)
				y := unitOf(pass, b.Y)
				if x.known && y.known && !x.compatible(y) {
					pass.Reportf(b.OpPos,
						"unit mismatch: %s %s %s (left is %s, right is %s); convert explicitly or annotate //repolint:allow units",
						render(b.X), b.Op, render(b.Y), x, y)
				}
			}
			return true
		})
	}
	return nil
}

// unitOf derives the unit of an expression, or unknown.
func unitOf(pass *Pass, e ast.Expr) unit {
	e = ast.Unparen(e)

	// Constants (literals, folded expressions) are unitless conversion
	// material: always unknown.
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return unit{}
	}

	switch e := e.(type) {
	case *ast.Ident:
		return unitOfObject(pass, e, pass.TypesInfo.ObjectOf(e))
	case *ast.SelectorExpr:
		if u, ok := fieldUnit(pass, e); ok {
			return u
		}
		return unitOfObject(pass, e.Sel, pass.TypesInfo.ObjectOf(e.Sel))
	case *ast.CallExpr:
		if fn := calleeFunc(pass, e); fn != nil {
			if u, ok := methodUnit(fn); ok {
				return u
			}
			if numericExpr(pass, e) {
				return unitByName(fn.Name())
			}
		}
		// A single-argument conversion (float64(x)) preserves the unit.
		if len(e.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				return unitOf(pass, e.Args[0])
			}
		}
		return unit{}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.MUL:
			return unitOf(pass, e.X).mul(unitOf(pass, e.Y))
		case token.QUO:
			return unitOf(pass, e.X).div(unitOf(pass, e.Y))
		case token.ADD, token.SUB:
			x := unitOf(pass, e.X)
			if x.known {
				y := unitOf(pass, e.Y)
				if y.known && x.compatible(y) {
					return x
				}
			}
			return unit{}
		}
		return unit{}
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return unitOf(pass, e.X)
		}
		return unit{}
	}
	return unit{}
}

// unitOfObject applies the suffix table to a named numeric value.
func unitOfObject(pass *Pass, id *ast.Ident, obj types.Object) unit {
	v, ok := obj.(*types.Var)
	if !ok {
		return unit{}
	}
	if !numericType(v.Type()) {
		return unit{}
	}
	return unitByName(id.Name)
}

// fieldUnit consults the types-anchored table for sel's field.
func fieldUnit(pass *Pass, sel *ast.SelectorExpr) (unit, bool) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return unit{}, false
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return unit{}, false
	}
	recv := selection.Recv()
	named := namedOf(recv)
	if named == nil {
		return unit{}, false
	}
	key := field.Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
	u, ok := fieldUnits[key]
	return u, ok
}

// methodUnit anchors the radio.Params method results that the suffix
// table already names correctly; listed here so the anchoring does not
// depend on spelling alone.
func methodUnit(fn *types.Func) (unit, bool) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "netenergy/internal/radio" {
		return unit{}, false
	}
	switch fn.Name() {
	case "TransferEnergy", "PromotionEnergy", "FullTailEnergy", "tailEnergy":
		return joules, true
	case "TailTime", "txTime":
		return seconds, true
	case "txPower":
		return watts, true
	}
	return unit{}, false
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// numericType reports whether t is a basic numeric type, excluding
// time.Duration (nanosecond arithmetic is the stdlib's concern).
func numericType(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration" {
			return false
		}
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsNumeric != 0
}

func numericExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && numericType(t)
}

// render prints a compact source form of an expression for diagnostics.
func render(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return render(e.Fun) + "(...)"
	case *ast.BinaryExpr:
		return render(e.X) + " " + e.Op.String() + " " + render(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + render(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.IndexExpr:
		return render(e.X) + "[...]"
	default:
		return "expr"
	}
}
