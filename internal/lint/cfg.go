package lint

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of the dataflow engine behind the
// wiresize, goexit and lockhold analyzers: it lowers one function body
// (FuncDecl or FuncLit) into a graph of basic blocks with branch-labelled
// edges. The lowering is intraprocedural and deliberately small — no SSA,
// no interprocedural summaries — because the invariants it feeds
// (bound-before-allocate, no-blocking-under-lock) are stated per function
// in DESIGN.md and the repo's decode/serving code follows that shape.
//
// Edges out of an if/for condition carry the condition expression and the
// polarity of the branch, which is what lets the taint analysis learn
// `n <= max` on the fall-through edge of `if n > max { return ErrCorrupt }`.

// cfgBlock is one basic block: nodes executed in order, then a branch.
type cfgBlock struct {
	nodes []ast.Node
	succs []cfgEdge
}

// cfgEdge is a control transfer. When cond is non-nil the edge is taken
// exactly when cond evaluates to val, so a dataflow can refine facts about
// the operands of cond separately on each side of a branch.
type cfgEdge struct {
	to   *cfgBlock
	cond ast.Expr
	val  bool
}

// funcCFG is the lowered body of one function.
type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
}

// cfgBuilder tracks the current insertion point plus the break/continue
// targets of the enclosing loops and switches.
type cfgBuilder struct {
	cfg *funcCFG
	cur *cfgBlock // nil after a terminator (return, branch)

	// breakTo/continueTo are stacks, innermost last. Each entry carries
	// the statement label (or "") so labeled break/continue resolve.
	breakTo    []labeledTarget
	continueTo []labeledTarget

	// gotos are patched once all labels are seen.
	labels map[string]*cfgBlock
	gotos  []pendingGoto
}

type labeledTarget struct {
	label string
	block *cfgBlock
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

// buildCFG lowers body into a funcCFG. It never descends into nested
// function literals: a FuncLit is a value in the enclosing graph and a
// separate analysis unit of its own.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{cfg: &funcCFG{}, labels: map[string]*cfgBlock{}}
	b.cfg.entry = b.newBlock()
	b.cur = b.cfg.entry
	b.stmtList(body.List, "")
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			g.from.succs = append(g.from.succs, cfgEdge{to: target})
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.cfg.blocks = append(b.cfg.blocks, blk)
	return blk
}

// emit appends a node to the current block, reviving a dead insertion
// point (unreachable code after return) into a fresh disconnected block so
// later statements are still analyzed with an empty in-state.
func (b *cfgBuilder) emit(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

// jump adds an unconditional edge from the current block and kills the
// insertion point.
func (b *cfgBuilder) jump(to *cfgBlock) {
	if b.cur != nil {
		b.cur.succs = append(b.cur.succs, cfgEdge{to: to})
	}
	b.cur = nil
}

// branch adds the true/false pair of edges for cond from the current block.
func (b *cfgBuilder) branch(cond ast.Expr, onTrue, onFalse *cfgBlock) {
	if b.cur == nil {
		return
	}
	if cond == nil {
		// `for {}` — only the body edge exists.
		b.cur.succs = append(b.cur.succs, cfgEdge{to: onTrue})
	} else {
		b.cur.succs = append(b.cur.succs,
			cfgEdge{to: onTrue, cond: cond, val: true},
			cfgEdge{to: onFalse, cond: cond, val: false})
	}
	b.cur = nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, label string) {
	for i, s := range list {
		// Only the first statement of the list can consume the label.
		if i > 0 {
			label = ""
		}
		b.stmt(s, label)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List, "")

	case *ast.LabeledStmt:
		// The label marks a join point so goto can land there.
		target := b.newBlock()
		b.jump(target)
		b.cur = target
		b.labels[s.Label.Name] = target
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Cond) // evaluate the condition (it may contain calls)
		thenB, exit := b.newBlock(), b.newBlock()
		elseB := exit
		if s.Else != nil {
			elseB = b.newBlock()
		}
		b.branch(s.Cond, thenB, elseB)
		b.cur = thenB
		b.stmtList(s.Body.List, "")
		b.jump(exit)
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else, "")
			b.jump(exit)
		}
		b.cur = exit

	case *ast.ForStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		head, body, exit := b.newBlock(), b.newBlock(), b.newBlock()
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.emit(s.Cond)
		}
		b.branch(s.Cond, body, exit)
		post := b.newBlock()
		b.pushLoop(label, exit, post)
		b.cur = body
		b.stmtList(s.Body.List, "")
		b.popLoop()
		b.jump(post)
		b.cur = post
		if s.Post != nil {
			b.emit(s.Post)
		}
		b.jump(head)
		b.cur = exit

	case *ast.RangeStmt:
		head, body, exit := b.newBlock(), b.newBlock(), b.newBlock()
		// The RangeStmt node itself carries the key/value assignment and
		// the ranged expression; transfers see it at the head of the loop.
		b.emit(s)
		b.jump(head)
		b.cur = head
		b.cur.succs = append(b.cur.succs, cfgEdge{to: body}, cfgEdge{to: exit})
		b.cur = nil
		b.pushLoop(label, exit, head)
		b.cur = body
		b.stmtList(s.Body.List, "")
		b.popLoop()
		b.jump(head)
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.caseBodies(s.Body.List, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Assign)
		b.caseBodies(s.Body.List, label, nil)

	case *ast.SelectStmt:
		// The select itself is a (blocking) operation; each comm clause
		// then runs its communication and body.
		b.emit(s)
		b.caseBodies(s.Body.List, label, s)

	case *ast.ReturnStmt:
		b.emit(s)
		b.cur = nil

	case *ast.BranchStmt:
		b.emit(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(b.breakTo, s.Label); t != nil {
				b.jump(t)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if t := b.findTarget(b.continueTo, s.Label); t != nil {
				b.jump(t)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			if b.cur != nil && s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// caseBodies wires the fallthrough edge; nothing to do here.
		}

	default:
		// Expression, assignment, declaration, send, inc/dec, go, defer,
		// empty: straight-line nodes.
		b.emit(s)
	}
}

// caseBodies lowers the clause list of a switch/type-switch/select. sel is
// non-nil for selects, whose clauses carry a communication statement.
func (b *cfgBuilder) caseBodies(clauses []ast.Stmt, label string, sel *ast.SelectStmt) {
	exit := b.newBlock()
	entry := b.cur
	b.cur = nil
	bodies := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
		if entry != nil {
			entry.succs = append(entry.succs, cfgEdge{to: bodies[i]})
		}
	}
	if entry != nil && sel == nil && !hasDefaultClause(clauses) {
		// A switch without a default can match nothing and fall through.
		entry.succs = append(entry.succs, cfgEdge{to: exit})
	}
	for i, clause := range clauses {
		b.cur = bodies[i]
		var body []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				b.emit(e)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				b.emit(c.Comm)
			}
			body = c.Body
		}
		b.pushSwitch(label, exit)
		b.stmtList(body, "")
		b.popSwitch()
		// An explicit fallthrough jumps into the next clause body.
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(bodies) {
				b.jump(bodies[i+1])
				continue
			}
		}
		b.jump(exit)
	}
	b.cur = exit
}

// hasDefaultClause reports whether a switch clause list contains default.
func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, clause := range clauses {
		if c, ok := clause.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *cfgBlock) {
	b.breakTo = append(b.breakTo, labeledTarget{label: label, block: brk})
	b.continueTo = append(b.continueTo, labeledTarget{label: label, block: cont})
}

func (b *cfgBuilder) popLoop() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

func (b *cfgBuilder) pushSwitch(label string, brk *cfgBlock) {
	b.breakTo = append(b.breakTo, labeledTarget{label: label, block: brk})
}

func (b *cfgBuilder) popSwitch() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
}

// findTarget resolves a (possibly labeled) break/continue target.
func (b *cfgBuilder) findTarget(stack []labeledTarget, label *ast.Ident) *cfgBlock {
	if len(stack) == 0 {
		return nil
	}
	if label == nil {
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}
