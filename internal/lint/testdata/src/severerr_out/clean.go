// Test fixture for the severerr analyzer, type-checked under the fake
// import path netenergy/internal/flows — outside the ingest scope, so the
// same shapes that are violations in severerr/ report nothing here.
package flows

import (
	"io"
	"log"
)

func decodeRec(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, io.EOF
	}
	return int(b[0]), nil
}

func checkCRC(b []byte) error { return nil }

func use(v int) {}

func OutOfScope(b []byte) {
	checkCRC(b)
	v, err := decodeRec(b)
	if err != nil {
		log.Printf("decode failed: %v", err)
	}
	use(v)
}
