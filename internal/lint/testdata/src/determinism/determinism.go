// Test fixture for the determinism analyzer, type-checked under the fake
// import path netenergy/internal/synthgen (in scope).
package synthgen

import (
	"math/rand"
	"time"
)

var sink []int

// WallClock exercises the time.Now/Since/Until bans.
func WallClock() {
	_ = time.Now() // want "time.Now in deterministic package"
	var t0 time.Time
	_ = time.Since(t0)  // want "time.Since in deterministic package"
	_ = time.Until(t0)  // want "time.Until in deterministic package"
	_ = time.Unix(0, 0) // conversions of fixed instants are fine
	_ = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
}

// GlobalRand exercises the math/rand rules: package-level draws are
// banned, explicit seeded sources are fine.
func GlobalRand() {
	_ = rand.Int()     // want "global rand.Int in deterministic package"
	_ = rand.Float64() // want "global rand.Float64 in deterministic package"
	r := rand.New(rand.NewSource(42))
	_ = r.Int()     // methods on an explicit *rand.Rand are fine
	_ = r.Float64() // ditto
	z := rand.NewZipf(r, 1.1, 1, 100)
	_ = z.Uint64()
}

// MapOrder exercises the map-range sink heuristic.
func MapOrder(m map[string]int, ch chan string) {
	for k := range m { // want "map iteration order reaches an append"
		sink = append(sink, m[k])
	}
	for k := range m { // want "map iteration order reaches a channel send"
		ch <- k
	}
	for _, v := range m { // want "map iteration order reaches a EncodeThing call"
		EncodeThing(v)
	}
	// Order-insensitive folds are fine without any annotation.
	total := 0
	for _, v := range m {
		total += v
	}
	inverse := make(map[int]string, len(m))
	for k, v := range m {
		inverse[v] = k
	}
	//repolint:ordered keys are sorted by the caller before use
	for k := range m {
		sink = append(sink, len(k))
	}
	_ = total
}

// Allowed shows the generic allow escape hatch.
func Allowed() {
	_ = time.Now() //repolint:allow determinism fixture: timing is test-local telemetry
}

// EncodeThing stands in for an order-sensitive serializer.
func EncodeThing(v int) {}
