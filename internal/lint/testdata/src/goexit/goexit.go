// Fixture for the goexit analyzer, type-checked under the in-scope import
// path netenergy/internal/ingest: every `go` statement must show a
// recognized shutdown tie, be a run-to-completion helper, or carry an
// explicit suppression.
package ingest

import (
	"context"
	"sync"
)

type server struct {
	stop chan struct{}
	ch   chan int
	wg   sync.WaitGroup
}

// leak loops forever with nothing tying it to shutdown.
func (s *server) leak() {
	go func() { // want "goroutine loops without a recognized shutdown tie"
		for {
			process()
		}
	}()
}

// worker ranges over a channel: it terminates when the producer closes it.
func (s *server) worker() {
	go func() {
		for v := range s.ch {
			use(v)
		}
	}()
}

// stopLoop selects on a shutdown-named channel.
func (s *server) stopLoop() {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			case v := <-s.ch:
				use(v)
			}
		}
	}()
}

// ctxLoop selects on ctx.Done().
func (s *server) ctxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-s.ch:
				use(v)
			}
		}
	}()
}

// handle is the handleConn shape: the WaitGroup tie lives inside a deferred
// closure, which runs in this goroutine and therefore counts.
func (s *server) handle() {
	s.wg.Add(1)
	go func() {
		defer func() {
			cleanup()
			s.wg.Done()
		}()
		for {
			if !step() {
				return
			}
		}
	}()
}

// notify is loop-free: it runs to completion when its statements finish.
func (s *server) notify() {
	go func() {
		s.ch <- 1
	}()
}

// spin launches a named same-package function; the analyzer resolves its
// body one level deep and finds an untied loop.
func (s *server) spin() {
	go s.spinLoop() // want "goroutine spinLoop loops without a recognized shutdown tie"
}

func (s *server) spinLoop() {
	for {
		process()
	}
}

// external launches through a function value, which the analyzer cannot
// see into.
func (s *server) external(fn func()) {
	go fn() // want "goroutine runs fn, whose body repolint cannot see"
}

// suppressed is the same unanalyzable launch with a justified escape hatch.
func (s *server) suppressed(fn func()) {
	//repolint:allow goexit — fixture: the callback runs to completion by contract
	go fn()
}

func process()   {}
func use(_ int)  {}
func step() bool { return false }
func cleanup()   {}
