// Test fixture for the noalloc analyzer. Only functions annotated
// //repolint:noalloc are checked; Unannotated at the bottom proves the
// same constructs pass elsewhere.
package nalloc

import "fmt"

var sink []int
var anySink interface{}

type buf struct{ b []byte }

// Fmt calls into package fmt.
//
//repolint:noalloc
func Fmt(n int) {
	_ = fmt.Sprintf("%d", n) // want "fmt.Sprintf allocates"
	fmt.Println(n)           // want "fmt.Println allocates"
}

// Concat builds strings at runtime.
//
//repolint:noalloc
func Concat(name string) string {
	const prefix = "a" + "b" // constant-folded: fine
	s := name + "!"          // want "string concatenation allocates"
	return s + prefix        // want "string concatenation allocates"
}

// EscapingAppend grows storage that outlives the call.
//
//repolint:noalloc
func EscapingAppend(b *buf, n int) {
	sink = append(sink, n)     // want "append into escaping destination sink"
	b.b = append(b.b, byte(n)) // want "append into escaping destination b.b"
	local := make([]int, 0, 8)
	local = append(local, n) // growing a local is the amortized pattern: fine
	_ = local
}

// ReturnAppend may only continue a caller-owned buffer.
//
//repolint:noalloc
func ReturnAppend(dst []byte, n byte) []byte {
	return append(dst, n) // the append-style codec idiom: fine
}

//repolint:noalloc
func ReturnFreshAppend(n byte) []byte {
	local := []byte{}
	return append(local, n) // want "returned append does not continue a caller-owned buffer"
}

// Boxing converts non-pointer values to interfaces.
//
//repolint:noalloc
func Boxing(n int, p *int) {
	useAny(n)   // want "non-pointer value boxed into interface argument"
	useAny(p)   // a pointer fits in the interface word: fine
	anySink = n // want "non-pointer value boxed into interface on assignment"
	anySink = p // fine
	anySink = nil
}

//repolint:noalloc
func BoxingReturn(n int) interface{} {
	return n // want "non-pointer value boxed into interface return"
}

// Closures that capture variables allocate their context.
//
//repolint:noalloc
func Capture(n int) func() int {
	grow(func() int { return 42 }) // captures nothing: fine
	return func() int { return n } // want "closure captures \"n\""
}

type pool struct{}

func (pool) Put(v interface{}) {}

// MethodBoxing mirrors the pooled-batch idiom on the ingest hot path:
// recycling a *RecordBatch through sync.Pool.Put is free (a pointer fits
// the interface word), but putting a value type would box per call.
//
//repolint:noalloc
func MethodBoxing(p pool, n int, b *buf) {
	p.Put(b) // pointer: fine
	p.Put(n) // want "non-pointer value boxed into interface argument"
}

// Allowed shows the per-line escape hatch.
//
//repolint:noalloc
func Allowed(n int) {
	_ = fmt.Sprintf("%d", n) //repolint:allow noalloc fixture: cold error path, formatting acceptable
}

// Unannotated is identical to the violations above but carries no
// annotation, so nothing is reported.
func Unannotated(name string, n int) string {
	_ = fmt.Sprintf("%d", n)
	sink = append(sink, n)
	useAny(n)
	return name + "!"
}

func useAny(v interface{}) {}

func grow(f func() int) {}
