// Fixture for the severerr analyzer under the import path
// netenergy/internal/trace, added to the scope in PR 9: the container's
// block and batch decode paths read untrusted files, so a CRC or header
// error must sever the stream, never be blended into the decoded output.
package trace

import (
	"errors"
	"io"
	"log"
)

var errHeader = errors.New("trace: bad block header")

func readBlockHeader(b []byte) (int, error) {
	if len(b) < 8 {
		return 0, io.ErrUnexpectedEOF
	}
	return int(b[0]), nil
}

func checkBlockCRC(b []byte) error {
	if len(b) == 0 {
		return errHeader
	}
	return nil
}

func emit(n int) {}

// UncheckedHeader binds the error and never looks at it.
func UncheckedHeader(b []byte) {
	n, err := readBlockHeader(b) // want "error from readBlockHeader never checked"
	emit(n)
	_ = err
}

// LoggedCRC verifies the block checksum, logs a mismatch, and keeps the
// block anyway.
func LoggedCRC(b []byte) {
	n, err := readBlockHeader(b)
	if err != nil {
		return
	}
	if err := checkBlockCRC(b); err != nil { // want "error from checkBlockCRC logged-and-continued"
		log.Printf("trace: %v", err)
	}
	emit(n)
}

// SeveredNext is the Reader.Next shape: every failure path leaves the
// loop: clean.
func SeveredNext(b []byte) error {
	for {
		n, err := readBlockHeader(b)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if err := checkBlockCRC(b); err != nil {
			return err
		}
		emit(n)
	}
}
