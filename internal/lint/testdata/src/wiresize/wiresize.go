// Fixture for the wiresize analyzer, type-checked under the in-scope
// import path netenergy/internal/trace. The positive cases reconstruct the
// two bug shapes the analyzer exists to catch: the PR 5 crafted-index OOM
// (a record count read straight off the wire sizing an allocation) and the
// PR 8 width overflow (a per-column width byte sizing a decode buffer).
package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
)

const (
	maxEntries = 1 << 16
	maxWidth   = 8
)

var errCorrupt = errors.New("corrupt")

type blockInfo struct {
	off, n uint64
}

// indexOOM is the PR 5 shape: a ~30-byte file can declare a 2^50 entry
// count and the allocation happens before any bound is checked.
func indexOOM(buf []byte) []blockInfo {
	count, _ := binary.Uvarint(buf)
	return make([]blockInfo, 0, count) // want "make sized by count, which derives from untrusted wire/file bytes"
}

// indexGuarded is the fixed shape: the count passes an upper-bound guard
// before it sizes anything.
func indexGuarded(buf []byte) ([]blockInfo, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 || count > maxEntries {
		return nil, errCorrupt
	}
	return make([]blockInfo, 0, count), nil
}

// widthOOM is the PR 8 shape: a width byte read from the header sizes the
// decode buffer unguarded.
func widthOOM(hdr []byte) []uint64 {
	n := int(hdr[0])
	return make([]uint64, n) // want "make sized by n, which derives from untrusted wire/file bytes"
}

func widthGuarded(hdr []byte) ([]uint64, error) {
	n := int(hdr[0])
	if n > maxWidth {
		return nil, errCorrupt
	}
	return make([]uint64, n), nil
}

// growOOM exercises the bytes.Buffer.Grow sink.
func growOOM(buf []byte) *bytes.Buffer {
	n, _ := binary.Uvarint(buf)
	var b bytes.Buffer
	b.Grow(int(n)) // want "bytes.Grow sized by int\\(n\\)"
	return &b
}

// modBounded: x % m with an untainted modulus is a recognized clamp.
func modBounded(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	return make([]byte, n%4096)
}

// minClamped: min(x, cap) with an untainted cap is the sanctioned clamp.
func minClamped(buf []byte) []int {
	n := int(buf[0])
	return make([]int, min(n, maxWidth))
}

// helperChecked: passing the value to a check*/valid* helper vouches for it.
func helperChecked(buf []byte) ([]byte, error) {
	n, _ := binary.Uvarint(buf)
	if err := checkLen(n); err != nil {
		return nil, err
	}
	return make([]byte, n), nil
}

func checkLen(n uint64) error {
	if n > maxEntries {
		return errCorrupt
	}
	return nil
}

// lowerBoundOnly: n > 0 is not an upper bound; the allocation stays flagged.
func lowerBoundOnly(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	if n == 0 {
		return nil
	}
	return make([]byte, n) // want "make sized by n, which derives from untrusted wire/file bytes"
}

// rangeTaint: bytes ranged out of a wire buffer taint what they feed.
func rangeTaint(buf []byte) []byte {
	total := 0
	for _, b := range buf {
		total += int(b)
	}
	return make([]byte, total) // want "make sized by total, which derives from untrusted wire/file bytes"
}

// suppressed: the allow directive absorbs the finding (CheckPackage drops
// it), so this line carries no want.
func suppressed(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	//repolint:allow wiresize — fixture: the caller validated n against the footer length
	return make([]byte, n)
}
