// Test fixture for the units analyzer. Quantities get dimensions from the
// name-suffix table (…Joules, …Watts, …Seconds, …Millis, …Bytes, …Bits) and
// from the types-anchored radio.Params / radio.TailPhase tables; + - and
// comparisons between incompatible dimensions are flagged.
package unitcases

import "netenergy/internal/radio"

func Mixups(p *radio.Params, energyJoules, powerWatts, tSeconds, tMillis float64, nBytes, nBits int) {
	_ = p.Base + p.PromotionTime                            // want "unit mismatch: p.Base \\+ p.PromotionTime"
	_ = p.PromotionTime*p.PromotionPower + p.Base           // want "unit mismatch: .*left is J, right is J·s\\^-1"
	_ = p.Base + p.AlphaUp                                  // want "unit mismatch: p.Base \\+ p.AlphaUp"
	_ = energyJoules + powerWatts                           // want "unit mismatch: energyJoules \\+ powerWatts"
	_ = tSeconds > tMillis                                  // want "unit mismatch: tSeconds > tMillis"
	_ = nBytes + nBits                                      // want "unit mismatch: nBytes \\+ nBits"
	_ = energyJoules < p.Base                               // want "unit mismatch: energyJoules < p.Base"
	_ = p.TransferEnergy(1500, radio.Dir(0)) + p.TailTime() // want "unit mismatch: p.TransferEnergy\\(...\\) \\+ p.TailTime\\(...\\)"
}

func Compatible(p *radio.Params, energyJoules, tSeconds, tMillis float64, nBytes, nBits int) {
	// Same dimension and scale on both sides: fine.
	energy := p.PromotionTime * p.PromotionPower
	_ = energy + p.TailPhases[0].Duration*p.TailPhases[0].Power
	_ = energy + energyJoules
	_ = p.AlphaUp + p.AlphaDown
	// Alpha (watts per Mbps) times a rate (Mbps) is watts again.
	_ = p.AlphaUp*p.UplinkMbps + p.Base
	_ = p.TransferEnergy(1500, radio.Dir(0)) + p.PromotionEnergy()
	// An explicit conversion factor makes the operand unknown, which is the
	// sanctioned way to convert between scales.
	_ = tSeconds + tMillis*1e-3
	_ = float64(nBits)/8 + float64(nBytes)
}

func Unknowns(x float64, energyJoules float64) {
	// Untraced operands stay unknown and are never flagged.
	_ = x + energyJoules
	_ = x + 3.5
}

func Allowed(energyJoules, powerWatts float64) {
	_ = energyJoules + powerWatts //repolint:allow units fixture: deliberate mixed sum feeding a unitless score
}
