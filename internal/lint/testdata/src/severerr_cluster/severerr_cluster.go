// Test fixture for the severerr analyzer under the fake import path
// netenergy/internal/cluster (newly in scope): snapshot pulls and
// checkpoint-transfer decodes are trust boundaries, so their errors must
// sever — skip the node for the cycle, reject the transfer — never be
// logged and blended into a fleet merge.
package cluster

import (
	"errors"
	"log"
)

var errCorrupt = errors.New("corrupt")

func decodeSnapshot(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, errCorrupt
	}
	return int(b[0]), nil
}

func readTransfer(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, errCorrupt
	}
	return b, nil
}

func merge(v int)     {}
func adopt(b []byte)  {}
func logOnly(e error) { log.Println(e) }

// A corrupt pull blended into the merge: flagged.
func PullLoop(pulls [][]byte) {
	for _, b := range pulls {
		v, err := decodeSnapshot(b)
		if err != nil { // want "error from decodeSnapshot logged-and-continued"
			logOnly(err)
		}
		merge(v)
	}
}

// Discarded transfer verification: flagged.
func Transfer(b []byte) {
	readTransfer(b) // want "error from readTransfer discarded"
	adopt(b)
}

// The contract shape: a failed pull severs by abandoning the node for
// this cycle, a failed transfer severs by rejecting the request.
func PullLoopClean(pulls [][]byte) {
	for _, b := range pulls {
		v, err := decodeSnapshot(b)
		if err != nil {
			logOnly(err)
			continue
		}
		merge(v)
	}
}

func TransferClean(b []byte) error {
	body, err := readTransfer(b)
	if err != nil {
		return err
	}
	adopt(body)
	return nil
}
