// Test fixture for directive validation: every escape hatch needs a
// written justification, and unknown directives are rejected outright.
// Checked under a deterministic-pipeline import path so the suppressions
// below have real diagnostics to absorb.
package synthgen

import "time"

var sink []int

func MissingJustifications(m map[string]int) {
	//repolint:allow determinism // want "repolint:allow determinism needs a written justification"
	_ = time.Now()

	//repolint:ordered // want "repolint:ordered needs a written justification"
	for k := range m {
		sink = append(sink, len(k))
	}
}

func WellFormed(m map[string]int) {
	//repolint:allow determinism fixture: timing is local telemetry, never serialized
	_ = time.Now()

	//repolint:ordered fixture: the caller sorts sink before use
	for k := range m {
		sink = append(sink, len(k))
	}
}

//repolint:allow nosuchanalyzer the reason is recorded but the name is wrong // want "unknown analyzer"

//repolint:bogus scratch note // want "unknown repolint directive"
