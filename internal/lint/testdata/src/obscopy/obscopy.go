// Test fixture for the obscopy analyzer: obs metric handles must travel
// as pointers. HistogramSnapshot is the sanctioned value copy.
package obscases

import "netenergy/internal/obs"

var declared obs.Counter // want "obs.Counter declared by value"

var fn = func(c obs.Counter) {} // want "obs.Counter passed by value forks the metric"

func byValParam(c obs.Counter) {} // want "obs.Counter passed by value forks the metric"

func byValHist(h obs.Histogram) {} // want "obs.Histogram passed by value forks the metric"

func byValResult(g *obs.Gauge) obs.Gauge { // want "obs.Gauge passed by value forks the metric"
	return *g // want "obs.Gauge copied by value in return value"
}

func derefCopy(c *obs.Counter) {
	v := *c // want "obs.Counter copied by value in assignment"
	v.Inc()
}

func take(cs ...interface{}) {}

func callArg(c *obs.Counter) {
	take(*c) // want "obs.Counter copied by value in call argument"
	take(c)  // passing the pointer: fine
}

func rangeCopy(cs []obs.Counter, ps []*obs.Counter) {
	for _, c := range cs { // want "ranging copies obs.Counter elements by value"
		c.Load()
	}
	for _, p := range ps { // pointer elements: fine
		p.Inc()
	}
}

func pointersAreFine(r *obs.Registry) {
	c := r.Counter("x", "a counter")
	c.Inc()
	g := r.Gauge("y", "a gauge")
	g.Set(3)
	h := r.Histogram("z", "a histogram", obs.SizeBuckets())
	h.Observe(1)
}

func snapshotIsFine(h *obs.Histogram) obs.HistogramSnapshot {
	s := h.Snapshot() // HistogramSnapshot is the designed immutable copy
	return s
}

func construct() *obs.Counter {
	c := obs.Counter{} // composite literal is construction, not a copy
	return &c
}

func allowed(c *obs.Counter) {
	v := *c //repolint:allow obscopy fixture: comparing the raw struct in a test helper
	v.Load()
}
