// Test fixture for the severerr analyzer, type-checked under the fake
// import path netenergy/internal/ingest (in scope). decodeRec, readHeader
// and checkCRC match the guarded decode/read/CRC name families.
package ingest

import (
	"errors"
	"io"
	"log"
)

var errCRC = errors.New("crc mismatch")

func decodeRec(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, io.EOF
	}
	return int(b[0]), nil
}

func readHeader(b []byte) error {
	if len(b) < 4 {
		return io.ErrUnexpectedEOF
	}
	return nil
}

func checkCRC(b []byte) error {
	if len(b) == 0 {
		return errCRC
	}
	return nil
}

func use(v int) {}

// Discarded errors.
func Discarded(b []byte) {
	checkCRC(b)         // want "error from checkCRC discarded"
	readHeader(b)       // want "error from readHeader discarded"
	_, _ = decodeRec(b) // want "error from decodeRec assigned to _"
}

// Unchecked errors.
func Unchecked(b []byte) {
	v, err := decodeRec(b) // want "error from decodeRec never checked"
	use(v)
	_ = err
}

// Overwritten before any check.
func Overwritten(b []byte) {
	v, err := decodeRec(b) // want "error from decodeRec overwritten before being checked"
	err = readHeader(b)
	if err != nil {
		return
	}
	use(v)
}

// LoggedAndContinued: the failure branch logs and falls through.
func LoggedAndContinued(b []byte) {
	v, err := decodeRec(b)
	if err != nil { // want "error from decodeRec logged-and-continued"
		log.Printf("decode failed: %v", err)
	}
	use(v)
}

// EqNilWithoutElse: only the success path is handled.
func EqNilWithoutElse(b []byte) {
	v, err := decodeRec(b)
	if err == nil { // want "error from decodeRec checked with == nil but the failure case is missing"
		use(v)
	}
}

// Propagated: returning the error is sever-by-propagation.
func Propagated(b []byte) (int, error) {
	v, err := decodeRec(b)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// PropagatedDirect: a guarded call in return position flows to the caller.
func PropagatedDirect(b []byte) (int, error) {
	return decodeRec(b)
}

// InitForm: the canonical `if err := f(); err != nil { return }` shape.
func InitForm(b []byte) error {
	if err := readHeader(b); err != nil {
		return err
	}
	if err := checkCRC(b); err != nil { // want "error from checkCRC logged-and-continued"
		log.Printf("crc: %v", err)
	}
	return nil
}

// SwitchSevered mirrors the frame-reader loop: every failure clause leaves
// the loop.
func SwitchSevered(b []byte) {
	for {
		v, err := decodeRec(b)
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			return
		default:
			panic(err)
		}
		use(v)
	}
}

// SwitchLeaky has a failure clause that logs and falls through.
func SwitchLeaky(b []byte) {
	v, err := decodeRec(b)
	switch {
	case err == nil:
	default: // want "error from decodeRec logged-and-continued in switch clause"
		log.Printf("decode: %v", err)
	}
	use(v)
}

// Allowed shows the escape hatch.
func Allowed(b []byte) {
	checkCRC(b) //repolint:allow severerr fixture: probing call, result intentionally unused
}

// UnguardedNames are not decode/CRC/seq functions; their errors are the
// errcheck analyzer's business, not this one's.
func openThing() error { return nil }

func Unguarded() {
	openThing()
}
