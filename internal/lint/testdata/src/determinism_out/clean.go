// Test fixture for the determinism analyzer, type-checked under the fake
// import path netenergy/internal/obsworker — NOT one of the deterministic
// pipeline packages, so wall clocks and global randomness are allowed.
package obsworker

import (
	"math/rand"
	"time"
)

var sink []int

func WallClockIsFine() time.Time { return time.Now() }

func GlobalRandIsFine() int { return rand.Int() }

func MapOrderIsFine(m map[string]int) {
	for k := range m {
		sink = append(sink, m[k])
	}
}
