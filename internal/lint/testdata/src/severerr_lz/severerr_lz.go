// Fixture for the severerr analyzer under the import path
// netenergy/internal/lz, added to the scope in PR 9: block decode errors in
// the LZ codec are trust boundaries — a swallowed corrupt-block error
// propagates garbage bytes into every downstream consumer.
package lz

import (
	"errors"
	"log"
)

var errBlock = errors.New("lz: corrupt block")

func decodeBlock(dst, src []byte) (int, error) {
	if len(src) == 0 {
		return 0, errBlock
	}
	return len(src), nil
}

func readBlockLen(src []byte) (int, error) {
	if len(src) < 4 {
		return 0, errBlock
	}
	return int(src[0]), nil
}

func consume(n int) {}

// DiscardedDecode drops the decode error on the floor.
func DiscardedDecode(dst, src []byte) {
	decodeBlock(dst, src) // want "error from decodeBlock discarded"
}

// LoggedBatch is the batch-decode shape: the loop logs a corrupt block and
// keeps feeding the output.
func LoggedBatch(dst []byte, blocks [][]byte) {
	for _, src := range blocks {
		n, err := decodeBlock(dst, src)
		if err != nil { // want "error from decodeBlock logged-and-continued"
			log.Printf("lz: %v", err)
		}
		consume(n)
	}
}

// SeveredBatch abandons the corrupt block: clean.
func SeveredBatch(dst []byte, blocks [][]byte) error {
	for _, src := range blocks {
		n, err := decodeBlock(dst, src)
		if err != nil {
			return err
		}
		consume(n)
	}
	return nil
}

// PropagatedLen: returning the error severs by propagation: clean.
func PropagatedLen(src []byte) (int, error) {
	return readBlockLen(src)
}
