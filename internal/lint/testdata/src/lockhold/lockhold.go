// Fixture for the lockhold analyzer, type-checked under the in-scope
// import path netenergy/internal/ingest: no mutex may be held across a
// blocking operation.
package ingest

import (
	"sync"
	"time"
)

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

// sendLocked parks on a channel send while holding the lock.
func (s *store) sendLocked(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while holding s.mu"
	s.mu.Unlock()
}

// recvLocked parks on a receive while holding the read lock.
func (s *store) recvLocked() int {
	s.rw.RLock()
	v := <-s.ch // want "channel receive while holding s.rw"
	s.rw.RUnlock()
	return v
}

// sleepDeferred: a deferred Unlock keeps the lock held to return, which is
// exactly the window under scrutiny.
func (s *store) sleepDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding s.mu"
}

// selectLocked blocks on a default-less select under the lock.
func (s *store) selectLocked() {
	s.mu.Lock()
	select { // want "select with no default while holding s.mu"
	case v := <-s.ch:
		_ = v
	}
	s.mu.Unlock()
}

// waitLocked parks on a WaitGroup under the lock.
func (s *store) waitLocked(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "WaitGroup.Wait while holding s.mu"
	s.mu.Unlock()
}

// drainLocked ranges over a channel under the lock.
func (s *store) drainLocked() {
	s.mu.Lock()
	for v := range s.ch { // want "range over channel while holding s.mu"
		_ = v
	}
	s.mu.Unlock()
}

// bothHeld: the lock survives the join of both branches, so the send after
// the if is still under it.
func (s *store) bothHeld(v int, alt bool) {
	s.mu.Lock()
	if alt {
		v++
	}
	s.ch <- v // want "channel send while holding s.mu"
	s.mu.Unlock()
}

// sendUnlocked releases before blocking: clean.
func (s *store) sendUnlocked(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// trySend: a select with a default never parks: clean.
func (s *store) trySend(v int) {
	s.mu.Lock()
	select {
	case s.ch <- v:
	default:
	}
	s.mu.Unlock()
}

// oneBranchReleases: must-hold semantics — the lock is not provably held
// after the if (one path released it), so the send is clean by design.
func (s *store) oneBranchReleases(v int, fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
	}
	s.ch <- v
	if !fast {
		s.mu.Unlock()
	}
}

// suppressed carries the justified escape hatch the serving tier uses for
// its guarded shard-queue sends.
func (s *store) suppressed(v int) {
	s.mu.Lock()
	//repolint:allow lockhold — fixture: the consumer never takes this lock, so the send always drains
	s.ch <- v
	s.mu.Unlock()
}
