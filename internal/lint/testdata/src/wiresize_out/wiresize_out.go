// The same unguarded-allocation shape as the wiresize fixture, but
// type-checked under an import path outside the analyzer's scope: analysis
// packages consume already-validated records, so the rule does not apply
// and no diagnostics are expected.
package analysis

import "encoding/binary"

func indexLike(buf []byte) []uint64 {
	count, _ := binary.Uvarint(buf)
	return make([]uint64, 0, count)
}
