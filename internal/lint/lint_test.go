package lint

import (
	"encoding/json"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The analyzer tests follow the golang.org/x/tools analysistest convention:
// each testdata/src/<case> directory holds a small package whose lines are
// annotated with `// want "regex"` comments naming the diagnostics the
// analyzer must report there. The harness type-checks the package under a
// chosen (possibly fake) import path — so path-scoped analyzers like
// determinism and severerr can be pointed into or out of their scope — runs
// one analyzer, and requires an exact match: every want satisfied, no
// unexpected diagnostics.

// repoRoot is the module root relative to this package.
const repoRoot = "../.."

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

// testExports builds the export-data map the testdata packages' imports
// resolve against: the std packages they use plus the real module packages
// (obs, radio) the obscopy and units cases import.
func testExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		pkgs, err := goList(repoRoot, []string{
			"bytes", "context", "encoding/binary", "errors", "fmt", "io",
			"log", "math/rand", "sync", "time",
			"netenergy/internal/obs", "netenergy/internal/radio",
		})
		if err != nil {
			exportsErr = err
			return
		}
		exportsMap = map[string]string{}
		for _, p := range pkgs {
			if p.Export != "" {
				exportsMap[p.ImportPath] = p.Export
			}
		}
	})
	if exportsErr != nil {
		t.Fatalf("resolving export data: %v", exportsErr)
	}
	return exportsMap
}

// expectation is one `// want` annotation.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// parseWants extracts expectations from the files' source text.
func parseWants(t *testing.T, files []string) []*expectation {
	t.Helper()
	var out []*expectation
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quotedRE.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				t.Fatalf("%s:%d: malformed want comment (no quoted regexp)", name, i+1)
			}
			for _, q := range quoted {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", name, i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, pat, err)
				}
				out = append(out, &expectation{file: name, line: i + 1, re: re})
			}
		}
	}
	return out
}

// runCase type-checks testdata/src/<dir> under importPath and checks the
// analyzer's diagnostics against the package's want annotations.
func runCase(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	srcDir := filepath.Join("testdata", "src", dir)
	matches, err := filepath.Glob(filepath.Join(srcDir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no testdata in %s (%v)", srcDir, err)
	}
	sort.Strings(matches)

	fset, exports := token.NewFileSet(), testExports(t)
	pkg, err := typeCheck(fset, importPath, ".", matches, exports, "")
	if err != nil {
		t.Fatalf("typecheck %s: %v", srcDir, err)
	}
	diags, err := CheckPackage(fset, pkg.Files, pkg.Types, pkg.Info, []*Analyzer{a})
	if err != nil {
		t.Fatalf("analyze %s: %v", srcDir, err)
	}

	wants := parseWants(t, matches)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// runCaseNoWants re-checks a fixture under an out-of-scope import path and
// requires zero diagnostics, ignoring the in-scope want annotations.
func runCaseNoWants(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	srcDir := filepath.Join("testdata", "src", dir)
	matches, err := filepath.Glob(filepath.Join(srcDir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no testdata in %s (%v)", srcDir, err)
	}
	sort.Strings(matches)
	fset, exports := token.NewFileSet(), testExports(t)
	pkg, err := typeCheck(fset, importPath, ".", matches, exports, "")
	if err != nil {
		t.Fatalf("typecheck %s: %v", srcDir, err)
	}
	diags, err := CheckPackage(fset, pkg.Files, pkg.Types, pkg.Info, []*Analyzer{a})
	if err != nil {
		t.Fatalf("analyze %s: %v", srcDir, err)
	}
	for _, d := range diags {
		t.Errorf("%s: unexpected out-of-scope diagnostic: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

func TestDeterminism(t *testing.T) {
	// In scope: the fake import path is one of the deterministic pipeline
	// packages, so the wall-clock/rand/map-order rules apply.
	runCase(t, Determinism, "determinism", "netenergy/internal/synthgen")
}

func TestDeterminismOutOfScope(t *testing.T) {
	// The same kind of code under a non-pipeline import path is clean:
	// ingest and obs are wall-clock subsystems by design.
	runCase(t, Determinism, "determinism_out", "netenergy/internal/obsworker")
}

func TestNoalloc(t *testing.T) {
	runCase(t, Noalloc, "noalloc", "netenergy/internal/nalloc")
}

func TestSeverErr(t *testing.T) {
	runCase(t, SeverErr, "severerr", "netenergy/internal/ingest")
}

func TestSeverErrCluster(t *testing.T) {
	runCase(t, SeverErr, "severerr_cluster", "netenergy/internal/cluster")
}

func TestSeverErrOutOfScope(t *testing.T) {
	runCase(t, SeverErr, "severerr_out", "netenergy/internal/flows")
}

func TestSeverErrLZ(t *testing.T) {
	runCase(t, SeverErr, "severerr_lz", "netenergy/internal/lz")
}

func TestSeverErrTrace(t *testing.T) {
	runCase(t, SeverErr, "severerr_trace", "netenergy/internal/trace")
}

func TestWireSize(t *testing.T) {
	runCase(t, WireSize, "wiresize", "netenergy/internal/trace")
}

func TestWireSizeOutOfScope(t *testing.T) {
	// The same unguarded shape outside the decoder packages is clean.
	runCase(t, WireSize, "wiresize_out", "netenergy/internal/analysis")
}

func TestGoExit(t *testing.T) {
	runCase(t, GoExit, "goexit", "netenergy/internal/ingest")
}

func TestGoExitOutOfScope(t *testing.T) {
	// Outside the serving tier the same launches are nobody's business.
	runCaseNoWants(t, GoExit, "goexit", "netenergy/internal/flows")
}

func TestLockHold(t *testing.T) {
	runCase(t, LockHold, "lockhold", "netenergy/internal/ingest")
}

func TestLockHoldOutOfScope(t *testing.T) {
	runCaseNoWants(t, LockHold, "lockhold", "netenergy/internal/flows")
}

func TestUnits(t *testing.T) {
	runCase(t, Units, "units", "netenergy/internal/unitcases")
}

func TestObsCopy(t *testing.T) {
	runCase(t, ObsCopy, "obscopy", "netenergy/internal/obscases")
}

// TestSuiteCleanAtHead is the acceptance gate: the full analyzer suite
// reports zero diagnostics over the repository, so every committed escape
// hatch is annotated and justified.
func TestSuiteCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	diags, fset, err := Run(repoRoot, []string{"./..."}, All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// TestRepolintBinarySmoke builds and runs the actual cmd/repolint binary
// over ./... — the same invocation `make lint` performs — and requires a
// clean exit.
func TestRepolintBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs cmd/repolint over the whole module")
	}
	cmd := exec.Command("go", "run", "./cmd/repolint", "./...")
	cmd.Dir = repoRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cmd/repolint ./... failed: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Errorf("cmd/repolint ./... produced output on a clean tree:\n%s", out)
	}
}

// TestDirectiveValidation: escape hatches without justifications are
// themselves diagnostics, and unknown directives are rejected.
func TestDirectiveValidation(t *testing.T) {
	runCase(t, Determinism, "directives", "netenergy/internal/synthgen")
}

// TestJSONRoundTrip runs `repolint -json` over a package that carries
// suppressed findings and decodes the output back into []lint.Finding: the
// machine-readable archive must round-trip losslessly, keep suppressed
// findings, and carry their justifications.
func TestJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs cmd/repolint")
	}
	cmd := exec.Command("go", "run", "./cmd/repolint", "-json", "./internal/ingest/")
	cmd.Dir = repoRoot
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("repolint -json: %v\n%s", err, out)
	}
	var findings []Finding
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out)
	}
	if len(findings) == 0 {
		t.Fatal("repolint -json ./internal/ingest/ returned no findings; the suppressed goexit/lockhold findings must be archived")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding in -json output: %+v", f)
		}
		if !f.Suppressed {
			t.Errorf("active finding on a clean tree: %+v", f)
		}
		if f.Suppressed && f.Justification == "" {
			t.Errorf("suppressed finding with no justification: %+v", f)
		}
	}
	// Round-trip: re-encoding must reproduce the decoded value.
	re, err := json.Marshal(findings)
	if err != nil {
		t.Fatal(err)
	}
	var again []Finding
	if err := json.Unmarshal(re, &again); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(findings, again) {
		t.Error("findings do not round-trip through encoding/json")
	}
}

// TestAuditJustified is the escape-hatch audit: every //repolint: allow or
// ordered directive anywhere in the repo — test files included — must carry
// a written justification.
func TestAuditJustified(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	sups, err := Audit(repoRoot, []string{"./..."})
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if len(sups) == 0 {
		t.Fatal("audit found no //repolint: directives; the repo is known to carry suppressions")
	}
	for _, s := range sups {
		if s.NeedsJustification() && s.Justification == "" {
			t.Errorf("%s:%d: repolint:%s %s has no written justification", s.File, s.Line, s.Directive, s.Analyzer)
		}
	}
}
