package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GoExit enforces goroutine lifecycle hygiene in the serving tier: every
// `go` statement in internal/ingest, internal/cluster and cmd/* must be
// tied to a shutdown path, so prober/aggregator/shard goroutines provably
// terminate when the process drains. A goroutine qualifies when its body
// (a function literal, or a same-package function resolved one level deep)
// shows one of the recognized ties:
//
//   - it selects on (or receives from) a done/stop/quit channel or
//     ctx.Done(),
//   - it ranges over a channel, terminating when the producer closes it
//     (the shard-worker shape: `for req := range sh.ch`),
//   - it signals a sync.WaitGroup via wg.Done(), tying it to a Wait in
//     Close/drain,
//   - it is loop-free: a run-to-completion helper that ends when its calls
//     return (the errc <- srv.ListenAndServe() shape).
//
// Goroutines whose body repolint cannot see — calls through function
// values, methods of other packages — are reported so the launch site
// carries an explicit //repolint:allow goexit justification naming the
// termination path.
var GoExit = &Analyzer{
	Name: "goexit",
	Doc:  "goroutines in the serving tier must be tied to a shutdown path (done channel, context, or waited WaitGroup)",
	Run:  runGoExit,
}

// goExitPkgs holds the exact-match scope; cmd/* is matched by prefix.
var goExitPkgs = map[string]bool{
	"netenergy/internal/ingest":  true,
	"netenergy/internal/cluster": true,
}

const goExitCmdPrefix = "netenergy/cmd/"

func inGoExitScope(path string) bool {
	return goExitPkgs[path] || strings.HasPrefix(path, goExitCmdPrefix)
}

func runGoExit(pass *Pass) error {
	if !inGoExitScope(pass.Pkg.Path()) {
		return nil
	}
	decls := packageFuncDecls(pass)
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, g, decls)
			return true
		})
	}
	return nil
}

// packageFuncDecls indexes this package's function declarations by object,
// so `go s.acceptLoop()` resolves to the loop body it launches.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	idx := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.ObjectOf(fd.Name); obj != nil {
				idx[obj] = fd
			}
		}
	}
	return idx
}

func checkGoStmt(pass *Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if why := goroutineUntied(pass, fun.Body); why != "" {
			pass.Reportf(g.Pos(), "goroutine %s: tie it to a done channel, context, or a WaitGroup waited at shutdown", why)
		}
		return
	default:
		fn := calleeFunc(pass, g.Call)
		if fn != nil {
			if fd, ok := decls[types.Object(fn)]; ok {
				if why := goroutineUntied(pass, fd.Body); why != "" {
					pass.Reportf(g.Pos(), "goroutine %s %s: tie it to a done channel, context, or a WaitGroup waited at shutdown", fn.Name(), why)
				}
				return
			}
		}
		pass.Reportf(g.Pos(),
			"goroutine runs %s, whose body repolint cannot see: annotate the launch with its termination path",
			types.ExprString(g.Call.Fun))
	}
}

// shutdownNameRE matches identifiers conventionally carrying a shutdown
// signal.
var shutdownNameRE = regexp.MustCompile(`(?i)(done|stop|quit|shut|close|closing|drain|exit|cancel|ctx)`)

// goroutineUntied inspects a goroutine body and returns "" when a
// recognized termination tie is present, or a short description of the
// problem otherwise. Nested function literals are skipped — their lifetime
// is their own launch site's problem — with one exception: a closure that
// is directly deferred runs in this goroutine before it exits, so a
// wg.Done() inside `defer func() { ... }()` is this goroutine's tie.
func goroutineUntied(pass *Pass, body *ast.BlockStmt) string {
	deferred := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if fl, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
				deferred[fl] = true
			}
		}
		return true
	})
	hasLoop := false
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return deferred[n]
		case *ast.ForStmt:
			hasLoop = true
		case *ast.RangeStmt:
			hasLoop = true
			// Ranging over a channel ends when the producer closes it.
			if t := pass.TypesInfo.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tied = true
					return false
				}
			}
		case *ast.UnaryExpr:
			// A receive from a shutdown-named channel (bare or in a select
			// case) is the canonical tie.
			if n.Op == token.ARROW && isShutdownChan(pass, n.X) {
				tied = true
				return false
			}
		case *ast.CallExpr:
			if isCtxDoneCall(pass, n) {
				tied = true
				return false
			}
			if isWaitGroupDone(pass, n) {
				tied = true
				return false
			}
		}
		return true
	})
	if tied {
		return ""
	}
	if !hasLoop {
		// Run-to-completion: terminates when its calls return.
		return ""
	}
	return "loops without a recognized shutdown tie"
}

// isShutdownChan reports whether e is a channel-typed expression whose
// name suggests a shutdown signal (done, stop, quit, ...).
func isShutdownChan(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		return isCtxDoneCall(pass, call)
	}
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		return shutdownNameRE.MatchString(e.Name)
	case *ast.SelectorExpr:
		return shutdownNameRE.MatchString(e.Sel.Name)
	}
	return false
}

// isCtxDoneCall matches ctx.Done() for any context.Context receiver.
func isCtxDoneCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// isWaitGroupDone matches wg.Done() / wg.Add(-1)? — only Done; Add is a
// launch-side call — on a sync.WaitGroup receiver.
func isWaitGroupDone(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Name() != "Done" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return strings.Contains(sig.Recv().Type().String(), "sync.WaitGroup")
}
