package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WireSize is the taint analyzer behind the "bound before allocate"
// invariant DESIGN.md states for every decoder: an allocation whose size
// derives from untrusted wire or file bytes — decoded lengths, index and
// footer fields, binary.* reads, frame headers — must flow through a
// recognized upper-bound guard first. This is the exact bug class behind
// the crafted-index OOMs fixed after PR 5 (a ~30-byte file declaring a
// 2^50 record count) and the width-overflow guards of PR 8.
//
// The analysis is an intraprocedural forward dataflow over the cfg.go CFG:
//
//	sources     results of encoding/binary reads; integer results of
//	            read*/decode*/parse*/*varint* functions; bytes loaded from
//	            a []byte (frame headers, index entries)
//	sinks       make(T, n) / make(T, n, c); bytes.Buffer.Grow and
//	            strings.Builder.Grow; slices.Grow
//	sanitizers  a branch comparing the value against an upper bound on the
//	            edge where the bound holds (`if n > max { return ErrCorrupt }`
//	            cleanses n on the fall-through edge); x % m, x & mask and
//	            min(x, cap) with an untrusted bound; passing the value to a
//	            valid*/check*/clamp* helper
//
// Cross-function flows are out of scope by design: the repo's decoders
// validate header fields at parse time (readBlockHeader, ReadBlockIndex),
// so a struct returned by a parse helper is treated as already vetted.
// //repolint:allow wiresize suppresses one line with a written reason.
var WireSize = &Analyzer{
	Name: "wiresize",
	Doc:  "allocations sized from untrusted wire/file bytes must pass an upper-bound guard first",
	Run:  runWireSize,
}

// wireSizePkgs is the scope: every package that decodes attacker-supplied
// bytes — the trace containers, the LZ codec, the ingest wire protocol and
// its checkpoint files, and the pcap reader.
var wireSizePkgs = map[string]bool{
	"netenergy/internal/trace":             true,
	"netenergy/internal/lz":                true,
	"netenergy/internal/ingest":            true,
	"netenergy/internal/ingest/checkpoint": true,
	"netenergy/internal/pcapio":            true,
}

func runWireSize(pass *Pass) error {
	if !wireSizePkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		funcBodies(f, func(body *ast.BlockStmt, decl *ast.FuncDecl, lit *ast.FuncLit) {
			if !hasSizingSink(body) {
				return // no make/Grow: nothing to flow taint into
			}
			an := &wireSizeFlow{pass: pass, reported: map[token.Pos]bool{}}
			runFlow(buildCFG(body), an, newTaintState())
		})
	}
	return nil
}

// hasSizingSink cheaply pre-screens a body for a make call or a Grow
// method before paying for CFG construction and the fixpoint solve.
func hasSizingSink(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == "make" {
				found = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "Grow" {
				found = true
			}
		}
		return !found
	})
	return found
}

// Taint lattice: unknown (not wire-derived) < bounded (wire-derived but
// guarded) < tainted (wire-derived, unguarded).
const (
	taintUnknown = iota
	taintBounded
	taintTainted
)

// taintState maps trackable references (locals, parameters, struct fields
// written in this function) to their taint.
type taintState struct {
	taint map[types.Object]int
}

func newTaintState() *taintState { return &taintState{taint: map[types.Object]int{}} }

func (s *taintState) clone() flowState {
	c := newTaintState()
	for k, v := range s.taint {
		c.taint[k] = v
	}
	return c
}

// join is per-object max: tainted on any path wins; bounded beats unknown
// (a value guarded on one path and non-wire on the other is safe).
func (s *taintState) join(other flowState) bool {
	o := other.(*taintState)
	changed := false
	for k, v := range o.taint {
		if v > s.taint[k] {
			s.taint[k] = v
			changed = true
		}
	}
	return changed
}

// wireSizeFlow implements flowAnalysis for one function body.
type wireSizeFlow struct {
	pass     *Pass
	reported map[token.Pos]bool
}

func (w *wireSizeFlow) transfer(n ast.Node, fst flowState, report bool) {
	st := fst.(*taintState)
	if report {
		w.findSinks(n, st)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		w.assign(n, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.set(st, name, w.taintOf(vs.Values[i], st))
					}
				}
			}
		}
	case *ast.RangeStmt:
		w.rangeAssign(n, st)
	}
	// A call into a validation helper vouches for its integer arguments:
	// the repo's pattern is validate-then-use, and the helper's own body is
	// analyzed when it lives in a scoped package.
	w.applySanitizerCalls(n, st)
}

// assign updates the state for one assignment statement.
func (w *wireSizeFlow) assign(as *ast.AssignStmt, st *taintState) {
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		// Multi-value: x, y, err := call(). Integer results of a source
		// call are tainted; everything else resets to unknown.
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		src := ok && w.isSourceCall(call)
		var results *types.Tuple
		if ok {
			if sig, sok := w.pass.TypesInfo.Types[call.Fun].Type.(*types.Signature); sok {
				results = sig.Results()
			}
		}
		for i, lhs := range as.Lhs {
			t := taintUnknown
			if src && results != nil && i < results.Len() && isIntegerType(results.At(i).Type()) {
				t = taintTainted
			}
			w.set(st, lhs, t)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		t := w.taintOf(as.Rhs[i], st)
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			// Compound assignment: x op= rhs behaves like x = x op rhs.
			if cur := w.refTaint(lhs, st); cur > t {
				t = cur
			}
		}
		w.set(st, lhs, t)
	}
}

// rangeAssign taints the value variable of `for _, b := range buf` when buf
// is a byte source, and the key of `range n` when n is tainted (Go 1.22
// integer ranges).
func (w *wireSizeFlow) rangeAssign(r *ast.RangeStmt, st *taintState) {
	xt := w.pass.TypesInfo.Types[r.X].Type
	if r.Key != nil {
		t := taintUnknown
		if xt != nil && isIntegerType(xt) {
			t = w.taintOf(r.X, st)
		}
		w.set(st, r.Key, t)
	}
	if r.Value != nil {
		t := taintUnknown
		if isByteSeqType(xt) {
			t = taintTainted
		}
		w.set(st, r.Value, t)
	}
}

// set records the taint of an assignable reference (ident or field
// selector); other shapes (index expressions, derefs) are not tracked.
func (w *wireSizeFlow) set(st *taintState, lhs ast.Expr, t int) {
	obj := w.refObject(lhs)
	if obj == nil {
		return
	}
	if t == taintUnknown {
		delete(st.taint, obj)
		return
	}
	st.taint[obj] = t
}

// refObject resolves an ident or field selector to its object.
func (w *wireSizeFlow) refObject(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		return w.pass.TypesInfo.ObjectOf(e)
	case *ast.SelectorExpr:
		obj := w.pass.TypesInfo.ObjectOf(e.Sel)
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
	}
	return nil
}

func (w *wireSizeFlow) refTaint(e ast.Expr, st *taintState) int {
	if obj := w.refObject(e); obj != nil {
		return st.taint[obj]
	}
	return taintUnknown
}

// taintOf computes the taint of an expression under st.
func (w *wireSizeFlow) taintOf(e ast.Expr, st *taintState) int {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pass.TypesInfo.ObjectOf(e)
		if obj == nil {
			return taintUnknown
		}
		if _, isConst := obj.(*types.Const); isConst {
			return taintUnknown
		}
		return st.taint[obj]
	case *ast.SelectorExpr:
		if obj := w.refObject(e); obj != nil {
			return st.taint[obj]
		}
		return taintUnknown
	case *ast.BinaryExpr:
		lt, rt := w.taintOf(e.X, st), w.taintOf(e.Y, st)
		switch e.Op {
		case token.REM, token.AND:
			// x % m and x & mask are bounded by an untainted m/mask.
			if lt == taintTainted && rt != taintTainted {
				return taintBounded
			}
			if rt == taintTainted && lt != taintTainted {
				return taintBounded
			}
		case token.LAND, token.LOR, token.EQL, token.NEQ,
			token.LSS, token.LEQ, token.GTR, token.GEQ:
			return taintUnknown // boolean result
		}
		return maxTaint(lt, rt)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return taintUnknown // channel receives carry internal values
		}
		return w.taintOf(e.X, st)
	case *ast.IndexExpr:
		if isByteSeqType(w.pass.TypesInfo.Types[e.X].Type) {
			return taintTainted // a raw wire/file byte
		}
		return taintUnknown
	case *ast.CallExpr:
		return w.callTaint(e, st)
	}
	return taintUnknown
}

// callTaint classifies a call expression in value position.
func (w *wireSizeFlow) callTaint(call *ast.CallExpr, st *taintState) int {
	// Conversions propagate the operand's taint: int(n), uint64(n), ...
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return w.taintOf(call.Args[0], st)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.pass.TypesInfo.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				return taintUnknown
			case "min":
				// min(tainted, untainted-cap) is the sanctioned clamp.
				t := taintTainted
				for _, a := range call.Args {
					if at := w.taintOf(a, st); at < t {
						t = at
					}
				}
				if t == taintUnknown {
					return taintBounded
				}
				return t
			case "max":
				t := taintUnknown
				for _, a := range call.Args {
					t = maxTaint(t, w.taintOf(a, st))
				}
				return t
			}
			return taintUnknown
		}
	}
	if w.isSourceCall(call) {
		if tv, ok := w.pass.TypesInfo.Types[call]; ok && tv.Type != nil && isIntegerType(tv.Type) {
			return taintTainted
		}
	}
	return taintUnknown
}

// isSourceCall reports whether call reads untrusted wire/file values: any
// encoding/binary decoder, or a function from the read*/decode*/parse*/
// *varint* families (by name, so closures like readU() count too).
func (w *wireSizeFlow) isSourceCall(call *ast.CallExpr) bool {
	if fn := calleeFunc(w.pass, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
			return true
		}
		return isWireReadName(fn.Name())
	}
	// Calls through function-typed variables (closures over a cursor).
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return isWireReadName(fun.Name)
	case *ast.SelectorExpr:
		return isWireReadName(fun.Sel.Name)
	}
	return false
}

// isWireReadName matches the naming families the repo's decoders use for
// functions that surface wire-controlled integers.
func isWireReadName(name string) bool {
	lower := strings.ToLower(name)
	if strings.HasPrefix(lower, "read") {
		return true
	}
	for _, frag := range []string{"varint", "decode", "parse"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}

// isSanitizerName matches validation helpers that vouch for their
// arguments.
func isSanitizerName(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range []string{"valid", "check", "clamp", "bound"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}

// applySanitizerCalls downgrades tainted arguments of valid*/check*
// helpers to bounded.
func (w *wireSizeFlow) applySanitizerCalls(n ast.Node, st *taintState) {
	flowScan(n, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if !isSanitizerName(name) {
			return
		}
		for _, a := range call.Args {
			if obj := w.refObject(a); obj != nil && st.taint[obj] == taintTainted {
				st.taint[obj] = taintBounded
			}
		}
	})
}

// refine learns bounds from branch conditions, following the short-circuit
// structure: on the false edge of `a || b` both disjuncts are false; on the
// true edge of `a && b` both conjuncts hold. Conjuncts are applied left to
// right so a bound established earlier in the condition (ul) untaints a
// later comparison's bound expression (rc > ul/2+1).
func (w *wireSizeFlow) refine(cond ast.Expr, val bool, fst flowState) {
	st := fst.(*taintState)
	w.refineCond(cond, val, st)
}

func (w *wireSizeFlow) refineCond(cond ast.Expr, val bool, st *taintState) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			w.refineCond(e.X, !val, st)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if val {
				w.refineCond(e.X, true, st)
				w.refineCond(e.Y, true, st)
			}
		case token.LOR:
			if !val {
				w.refineCond(e.X, false, st)
				w.refineCond(e.Y, false, st)
			}
		case token.LSS, token.LEQ:
			// x < B (true) bounds x; B < x (false) bounds x.
			if val {
				w.bound(e.X, e.Y, st)
			} else {
				w.bound(e.Y, e.X, st)
			}
		case token.GTR, token.GEQ:
			// x > B (false) bounds x; B > x (true) bounds x.
			if val {
				w.bound(e.Y, e.X, st)
			} else {
				w.bound(e.X, e.Y, st)
			}
		case token.EQL:
			if val {
				w.bound(e.X, e.Y, st)
				w.bound(e.Y, e.X, st)
			}
		case token.NEQ:
			if !val {
				w.bound(e.X, e.Y, st)
				w.bound(e.Y, e.X, st)
			}
		}
	}
}

// bound marks x as guarded when the comparison's other side is itself
// untainted. Conversions around the guarded value are unwrapped so
// `uint64(n) > limit` guards n.
func (w *wireSizeFlow) bound(x, boundExpr ast.Expr, st *taintState) {
	if w.taintOf(boundExpr, st) == taintTainted {
		return // comparing against another wire value proves nothing
	}
	x = ast.Unparen(x)
	for {
		call, ok := x.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			break
		}
		if tv, ok := w.pass.TypesInfo.Types[call.Fun]; !ok || !tv.IsType() {
			break
		}
		x = ast.Unparen(call.Args[0])
	}
	if obj := w.refObject(x); obj != nil && st.taint[obj] == taintTainted {
		st.taint[obj] = taintBounded
	}
}

// findSinks reports allocations inside n sized by a tainted expression.
func (w *wireSizeFlow) findSinks(n ast.Node, st *taintState) {
	flowScan(n, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := w.pass.TypesInfo.ObjectOf(id).(*types.Builtin); ok && b.Name() == "make" {
				for _, arg := range call.Args[1:] {
					w.reportTainted(arg, "make", st)
				}
				return
			}
		}
		if fn := calleeFunc(w.pass, call); fn != nil && fn.Name() == "Grow" && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "bytes", "strings", "slices":
				if len(call.Args) > 0 {
					w.reportTainted(call.Args[len(call.Args)-1], fn.Pkg().Name()+".Grow", st)
				}
			}
		}
	})
}

func (w *wireSizeFlow) reportTainted(arg ast.Expr, sink string, st *taintState) {
	if w.taintOf(arg, st) != taintTainted {
		return
	}
	if w.reported[arg.Pos()] {
		return
	}
	w.reported[arg.Pos()] = true
	w.pass.Reportf(arg.Pos(),
		"%s sized by %s, which derives from untrusted wire/file bytes with no upper-bound guard on this path",
		sink, types.ExprString(arg))
}

func maxTaint(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isByteSeqType reports []byte, [N]byte or string.
func isByteSeqType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Uint8
	case *types.Array:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Uint8
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// inspectNoFuncLit walks n without descending into nested function
// literals — those are separate analysis units with their own CFGs.
func inspectNoFuncLit(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// flowScan visits the expressions a CFG node evaluates itself, skipping
// sub-statements the CFG re-emits in their own blocks (select clause
// bodies, range bodies) so they are not scanned twice under the wrong
// state.
func flowScan(n ast.Node, fn func(ast.Node)) {
	switch n := n.(type) {
	case *ast.SelectStmt:
		return // comm statements and bodies live in their clause blocks
	case *ast.RangeStmt:
		inspectNoFuncLit(n.X, fn)
		return
	}
	inspectNoFuncLit(n, fn)
}
