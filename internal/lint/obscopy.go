package lint

import (
	"go/ast"
	"go/types"
)

// ObsCopy is the repo-specific copylocks: obs.Counter, obs.Gauge and
// obs.Histogram wrap atomics, so a value copy silently forks the metric —
// increments land on the copy and the registry's handle stops moving,
// which corrupts dashboards without any failing test. Handles must travel
// as pointers (the obs.Registry constructors already return pointers).
// Flagged shapes:
//
//   - a parameter, result or receiver declared with a bare metric type,
//   - an assignment or short declaration whose right-hand side is a
//     metric value (dereferences included; composite literals are
//     construction, not copies),
//   - a metric value passed as a call argument or returned.
//
// obs.HistogramSnapshot is exempt by design: it is the immutable copy a
// reader takes. //repolint:allow obscopy suppresses a line with a reason.
var ObsCopy = &Analyzer{
	Name: "obscopy",
	Doc:  "obs metric handles (Counter, Gauge, Histogram) must not be copied by value",
	Run:  runObsCopy,
}

const obsPkgPath = "netenergy/internal/obs"

var obsHandleNames = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// metricValueType reports whether t is a bare (non-pointer) obs handle
// type, returning its name.
func metricValueType(t types.Type) (string, bool) {
	named := asNamed(t)
	if named == nil {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != obsPkgPath || !obsHandleNames[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

// asNamed unwraps aliases but NOT pointers: *obs.Counter is the correct
// way to hold a handle.
func asNamed(t types.Type) *types.Named {
	named, _ := t.(*types.Named)
	return named
}

func runObsCopy(pass *Pass) error {
	// The obs package itself may lay out its types (embed an atomic in a
	// struct, construct values to return as pointers); the copy rule
	// binds its consumers.
	if pass.Pkg.Path() == obsPkgPath {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, n)
			case *ast.FuncLit:
				checkFieldList(pass, n.Type.Params)
				checkFieldList(pass, n.Type.Results)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkCopyExpr(pass, rhs, "assignment")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopyExpr(pass, v, "assignment")
				}
				if n.Type != nil {
					if name, ok := metricValueType(pass.TypesInfo.TypeOf(n.Type)); ok {
						pass.Reportf(n.Type.Pos(),
							"obs.%s declared by value: construct through the obs.Registry and hold a *obs.%s", name, name)
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					checkCopyExpr(pass, arg, "call argument")
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkCopyExpr(pass, r, "return value")
				}
			case *ast.RangeStmt:
				checkRangeCopy(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkFuncSig(pass *Pass, fn *ast.FuncDecl) {
	checkFieldList(pass, fn.Recv)
	checkFieldList(pass, fn.Type.Params)
	checkFieldList(pass, fn.Type.Results)
}

func checkFieldList(pass *Pass, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if name, ok := metricValueType(t); ok {
			pass.Reportf(field.Type.Pos(),
				"obs.%s passed by value forks the metric: declare *obs.%s", name, name)
		}
	}
}

// checkCopyExpr flags an expression whose evaluation copies a metric
// value into the given context. Composite literals and conversions from
// literals are construction; everything else of bare handle type copies.
func checkCopyExpr(pass *Pass, e ast.Expr, context string) {
	e = ast.Unparen(e)
	if _, ok := e.(*ast.CompositeLit); ok {
		return
	}
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		return // taking the address of a literal or variable: no copy
	}
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return
	}
	if name, ok := metricValueType(t); ok {
		pass.Reportf(e.Pos(),
			"obs.%s copied by value in %s: increments on the copy are lost; use *obs.%s", name, context, name)
	}
}

// checkRangeCopy flags ranging over a container of bare handles: the
// iteration variable is a fresh copy each step.
func checkRangeCopy(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	var elem types.Type
	switch tt := t.Underlying().(type) {
	case *types.Slice:
		elem = tt.Elem()
	case *types.Array:
		elem = tt.Elem()
	case *types.Map:
		elem = tt.Elem()
	}
	if elem == nil {
		return
	}
	if name, ok := metricValueType(elem); ok && rng.Value != nil {
		pass.Reportf(rng.Value.Pos(),
			"ranging copies obs.%s elements by value; store *obs.%s in the container", name, name)
	}
}
