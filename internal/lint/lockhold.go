package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHold forbids holding a mutex across a blocking operation — the
// deadlock shape the cluster handoff/fence paths are most exposed to: a
// goroutine parks on a channel or a network round trip while holding the
// lock another goroutine needs to make the awaited event happen.
//
// The analysis is a must-hold lock-set dataflow over the cfg.go CFG:
// mu.Lock()/mu.RLock() adds the lock (named by its receiver expression),
// Unlock/RUnlock removes it, and a deferred Unlock removes nothing — the
// lock is held until return, which is precisely the window being checked.
// Blocking operations are the ones the serving tier performs: channel
// sends and receives, selects without a default, ranging over a channel,
// net reads/writes/accepts/dials, net/http round trips, (*os.File).Sync,
// sync.WaitGroup.Wait and time.Sleep. Calls whose bodies hide their
// blocking (a helper that does I/O) are out of intraprocedural reach;
// the analyzer checks what the locked function does directly.
// //repolint:allow lockhold suppresses a site with a written reason.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "no mutex may be held across a blocking operation (channel op, network I/O, fsync, HTTP)",
	Run:  runLockHold,
}

// lockHoldPkgs is the scope: the serving tier, where shard workers,
// checkpoint saves and cluster pulls mix locks with channels and sockets.
var lockHoldPkgs = map[string]bool{
	"netenergy/internal/ingest":            true,
	"netenergy/internal/ingest/checkpoint": true,
	"netenergy/internal/cluster":           true,
}

func runLockHold(pass *Pass) error {
	if !lockHoldPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		selectComms := selectCommStmts(f)
		funcBodies(f, func(body *ast.BlockStmt, decl *ast.FuncDecl, lit *ast.FuncLit) {
			if !hasLockAcquire(body) {
				return // no Lock call: the lock set stays empty throughout
			}
			an := &lockHoldFlow{pass: pass, selectComms: selectComms, reported: map[token.Pos]bool{}}
			runFlow(buildCFG(body), an, newLockSet())
		})
	}
	return nil
}

// hasLockAcquire cheaply pre-screens a body for a Lock-family method call
// before paying for CFG construction and the fixpoint solve.
func hasLockAcquire(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Lock", "RLock", "TryLock", "TryRLock":
				found = true
			}
		}
		return !found
	})
	return found
}

// selectCommStmts collects the communication statements of every select in
// the file: the select itself is reported as the blocking point, so its
// comm clauses must not be re-flagged when they run in their clause blocks.
func selectCommStmts(f *ast.File) map[ast.Node]bool {
	comms := map[ast.Node]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
				comms[cc.Comm] = true
			}
		}
		return true
	})
	return comms
}

// lockSet is the must-hold set of lock names ("s.mu", "b.mu").
type lockSet struct {
	held map[string]bool
}

func newLockSet() *lockSet { return &lockSet{held: map[string]bool{}} }

func (s *lockSet) clone() flowState {
	c := newLockSet()
	for k := range s.held {
		c.held[k] = true
	}
	return c
}

// join is set intersection: a lock is held at a point only if it is held
// on every path into it, so merge points cannot invent held locks. The
// solver only joins states from paths that actually reach the block, so
// no artificial top element is needed.
func (s *lockSet) join(other flowState) bool {
	o := other.(*lockSet)
	changed := false
	for k := range s.held {
		if !o.held[k] {
			delete(s.held, k)
			changed = true
		}
	}
	return changed
}

func (s *lockSet) names() string {
	var out []string
	for k := range s.held {
		out = append(out, k)
	}
	// Deterministic order for diagnostics.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return strings.Join(out, ", ")
}

// lockHoldFlow implements flowAnalysis.
type lockHoldFlow struct {
	pass        *Pass
	selectComms map[ast.Node]bool
	reported    map[token.Pos]bool
}

func (l *lockHoldFlow) refine(cond ast.Expr, val bool, st flowState) {}

func (l *lockHoldFlow) transfer(n ast.Node, fst flowState, report bool) {
	st := fst.(*lockSet)
	if report && len(st.held) > 0 {
		l.findBlocking(n, st)
	}
	// Lock-set updates. Deferred unlocks are intentionally ignored: the
	// lock stays held for the rest of the function, which is the window
	// under scrutiny.
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return
	}
	flowScan(n, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		name, key, ok := mutexOp(l.pass, call)
		if !ok {
			return
		}
		switch name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			st.held[key] = true
		case "Unlock", "RUnlock":
			delete(st.held, key)
		}
	})
}

// mutexOp matches a method call on a sync.Mutex/RWMutex receiver and
// returns the method name and the lock's identity (its receiver
// expression, e.g. "s.mu").
func mutexOp(pass *Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", false
	}
	recv := sig.Recv().Type().String()
	if !strings.Contains(recv, "sync.Mutex") && !strings.Contains(recv, "sync.RWMutex") {
		return "", "", false
	}
	return fn.Name(), types.ExprString(sel.X), true
}

// findBlocking reports blocking operations inside n while locks are held.
func (l *lockHoldFlow) findBlocking(n ast.Node, st *lockSet) {
	if l.selectComms[n] {
		return // already reported at its select
	}
	switch n := n.(type) {
	case *ast.SelectStmt:
		if !selectHasDefault(n) {
			l.report(n.Pos(), "select with no default", st)
		}
		return
	case *ast.SendStmt:
		l.report(n.Pos(), "channel send", st)
		return
	case *ast.RangeStmt:
		if t := l.pass.TypesInfo.Types[n.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				l.report(n.Pos(), "range over channel", st)
			}
		}
		return
	}
	flowScan(n, func(sub ast.Node) {
		switch sub := sub.(type) {
		case *ast.UnaryExpr:
			if sub.Op == token.ARROW {
				l.report(sub.Pos(), "channel receive", st)
			}
		case *ast.SendStmt:
			l.report(sub.Pos(), "channel send", st)
		case *ast.CallExpr:
			if desc, ok := blockingCall(l.pass, sub); ok {
				l.report(sub.Pos(), desc, st)
			}
		}
	})
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall classifies calls that park the goroutine: network I/O,
// HTTP round trips, fsync, WaitGroup.Wait, Sleep.
func blockingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "net":
		switch name {
		case "Read", "Write", "Accept", "Dial", "DialTimeout", "DialTCP", "Listen", "ReadFrom", "WriteTo":
			return "net." + name, true
		}
	case "net/http":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head", "RoundTrip", "ListenAndServe", "Serve", "Shutdown":
			return "http." + name, true
		}
	case "os":
		if name == "Sync" {
			return "fsync", true
		}
	case "sync":
		if name == "Wait" {
			sig, ok := fn.Type().(*types.Signature)
			if ok && sig.Recv() != nil && strings.Contains(sig.Recv().Type().String(), "WaitGroup") {
				return "WaitGroup.Wait", true
			}
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep", true
		}
	case "os/exec":
		switch name {
		case "Run", "Wait", "Output", "CombinedOutput":
			return "exec." + name, true
		}
	}
	return "", false
}

func (l *lockHoldFlow) report(pos token.Pos, what string, st *lockSet) {
	if l.reported[pos] {
		return
	}
	l.reported[pos] = true
	l.pass.Reportf(pos, "%s while holding %s: blocking operations must not run under a mutex", what, st.names())
}
