// Package lint is the repo's static-analysis suite: a small go/analysis-style
// framework plus the five repolint analyzers that machine-check the
// correctness invariants the paper's reproduction depends on — determinism of
// the fixed-seed pipeline, zero-allocation hot paths, sever-on-error ingest
// semantics, dimensional consistency of the energy math, and by-reference
// metric handles. cmd/repolint drives the suite both standalone and under
// `go vet -vettool`.
//
// The framework is deliberately dependency-free: golang.org/x/tools is not a
// module dependency, so Analyzer/Pass/Diagnostic are re-declared here with
// the same shape, packages are loaded through `go list -deps -export -json`,
// and types are imported from the compiler's export data via go/importer.
// DESIGN.md ("Statically enforced invariants") documents each analyzer and
// its escape hatches.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //repolint:allow suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package and reports diagnostics via pass.Report.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic. Suppression (//repolint:allow) and
	// test-file filtering are applied by the framework afterwards.
	Report func(Diagnostic)

	dirs *directiveIndex
}

// A Diagnostic is one finding at a source position. Suppressed marks a
// finding covered by a //repolint:allow directive (with its written
// justification); CheckPackage drops suppressed findings, CheckPackageAll
// keeps them for the -json archive.
type Diagnostic struct {
	Pos           token.Pos
	Analyzer      string
	Message       string
	Suppressed    bool
	Justification string
}

// Position resolves the diagnostic's position against a file set.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// SourceFiles returns the package files that are not _test.go files.
// Invariant checks apply to shipped code; tests legitimately use wall
// clocks, global randomness and discarded errors.
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if !strings.HasSuffix(name, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// HasDirective reports whether the line containing pos, or the line above
// it, carries the named repolint directive (e.g. "ordered", "noalloc").
func (p *Pass) HasDirective(pos token.Pos, name string) bool {
	return p.dirs.at(p.Fset, pos, name) != nil
}

// ---- repolint directives ----
//
// Every escape hatch is an explicit comment of the form
//
//	//repolint:<directive> [args] — justification text
//
// where <directive> is one of:
//
//	allow <analyzer>  suppress that analyzer's diagnostics on this line
//	                  (or the line directly below the comment)
//	ordered           assert a map-range loop is intentionally emitting in
//	                  map order or is order-insensitive (determinism)
//	noalloc           mark a function as a zero-allocation hot path,
//	                  enabling the noalloc analyzer on its body
//
// A suppression without a written justification is itself a diagnostic:
// the acceptance bar is that every escape hatch carries a reason a
// reviewer can audit.

// directive is one parsed //repolint: comment.
type directive struct {
	pos  token.Pos
	name string // "allow", "ordered", "noalloc"
	arg  string // analyzer name for "allow", "" otherwise
	why  string // justification text
}

// directiveIndex maps file+line to the directives attached there. A
// directive on line N covers diagnostics on line N and line N+1, matching
// the two idiomatic placements (end-of-line and line-above).
type directiveIndex struct {
	byLine map[string]map[int][]*directive
	all    []*directive
}

const directivePrefix = "//repolint:"

// parseDirectives scans every comment in the files.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{byLine: map[string]map[int][]*directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d := parseDirective(c.Pos(), c.Text)
				idx.all = append(idx.all, d)
				pos := fset.Position(c.Pos())
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*directive{}
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return idx
}

// parseDirective splits "//repolint:allow units mixing is intentional" into
// its directive name, argument and justification.
func parseDirective(pos token.Pos, text string) *directive {
	body := strings.TrimPrefix(text, directivePrefix)
	// A ` //` inside the directive starts an ordinary trailing comment, not
	// part of the justification.
	if i := strings.Index(body, " //"); i >= 0 {
		body = body[:i]
	}
	fields := strings.Fields(body)
	d := &directive{pos: pos}
	if len(fields) == 0 {
		return d
	}
	d.name = fields[0]
	rest := fields[1:]
	if d.name == "allow" && len(rest) > 0 {
		d.arg = rest[0]
		rest = rest[1:]
	}
	why := strings.Join(rest, " ")
	why = strings.TrimLeft(why, "-—:– ")
	d.why = strings.TrimSpace(why)
	return d
}

// at returns a directive named name covering pos: on the same line, or on
// the line directly above (a comment line attached to the statement).
func (idx *directiveIndex) at(fset *token.FileSet, pos token.Pos, name string) *directive {
	p := fset.Position(pos)
	lines := idx.byLine[p.Filename]
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range lines[line] {
			if d.name == name {
				return d
			}
		}
	}
	return nil
}

// allowing returns the directive suppressing a diagnostic by analyzer at
// pos, or nil. "ordered" is accepted as sugar for "allow determinism" so a
// map-range justification reads naturally at the loop.
func (idx *directiveIndex) allowing(fset *token.FileSet, d Diagnostic) *directive {
	p := fset.Position(d.Pos)
	lines := idx.byLine[p.Filename]
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, dir := range lines[line] {
			if dir.name == "allow" && dir.arg == d.Analyzer {
				return dir
			}
			if dir.name == "ordered" && d.Analyzer == "determinism" {
				return dir
			}
		}
	}
	return nil
}

// validate reports malformed directives: unknown names, allow without a
// known analyzer, and any escape hatch missing a written justification.
func (idx *directiveIndex) validate(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range idx.all {
		switch d.name {
		case "allow":
			if !known[d.arg] {
				out = append(out, Diagnostic{Pos: d.pos, Analyzer: "repolint",
					Message: fmt.Sprintf("repolint:allow names unknown analyzer %q", d.arg)})
				continue
			}
			if d.why == "" {
				out = append(out, Diagnostic{Pos: d.pos, Analyzer: "repolint",
					Message: fmt.Sprintf("repolint:allow %s needs a written justification", d.arg)})
			}
		case "ordered":
			if d.why == "" {
				out = append(out, Diagnostic{Pos: d.pos, Analyzer: "repolint",
					Message: "repolint:ordered needs a written justification"})
			}
		case "noalloc":
			// The annotation is its own statement of intent; no
			// justification required to opt in to stricter checking.
		default:
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "repolint",
				Message: fmt.Sprintf("unknown repolint directive %q", d.name)})
		}
	}
	return out
}

// All returns the full repolint analyzer suite: the five AST-level
// analyzers from PR 4 plus the three dataflow analyzers (wiresize, goexit,
// lockhold) built on the cfg.go/dataflow.go engine.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Noalloc,
		SeverErr,
		Units,
		ObsCopy,
		WireSize,
		GoExit,
		LockHold,
	}
}

// CheckPackage runs the analyzers over one type-checked package and returns
// the surviving diagnostics, sorted by position: analyzer findings minus
// //repolint:allow suppressions, plus any malformed-directive findings.
func CheckPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, err := CheckPackageAll(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	active := diags[:0]
	for _, d := range diags {
		if !d.Suppressed {
			active = append(active, d)
		}
	}
	return active, nil
}

// CheckPackageAll is CheckPackage keeping suppressed diagnostics: findings
// covered by a //repolint:allow directive are returned with Suppressed set
// and the directive's justification attached, which is what `repolint
// -json` archives so CI can track the escape-hatch population over time.
func CheckPackageAll(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := parseDirectives(fset, files)
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			dirs:      dirs,
		}
		pass.Report = func(d Diagnostic) {
			if d.Analyzer == "" {
				d.Analyzer = a.Name
			}
			if dir := dirs.allowing(fset, d); dir != nil {
				d.Suppressed = true
				d.Justification = dir.why
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	for _, d := range dirs.validate(known) {
		if !strings.HasSuffix(fset.Position(d.Pos).Filename, "_test.go") {
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

func (a *Analyzer) String() string { return a.Name }
