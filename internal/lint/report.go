package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the machine-readable half of the suite: the Finding record
// `repolint -json` emits (one per diagnostic, suppressed ones included so
// CI can track the escape-hatch population over time), and the suppression
// audit behind `repolint -audit`, which lists every //repolint: directive
// in the repo — test files included — with its written justification.

// A Finding is one diagnostic in the -json output. Suppressed findings are
// kept (with the directive's justification) so the archive records not just
// what fired but what was waved through and why.
type Finding struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Column        int    `json:"column"`
	Analyzer      string `json:"analyzer"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed"`
	Justification string `json:"justification,omitempty"`
}

// Findings resolves diagnostics into the portable Finding shape.
func Findings(diags []Diagnostic, fset *token.FileSet) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		out = append(out, Finding{
			File:          p.Filename,
			Line:          p.Line,
			Column:        p.Column,
			Analyzer:      d.Analyzer,
			Message:       d.Message,
			Suppressed:    d.Suppressed,
			Justification: d.Justification,
		})
	}
	return out
}

// A Suppression is one //repolint: directive found by the audit: where it
// is, what it suppresses, and the justification it carries. An empty
// Justification on an "allow" or "ordered" directive is an audit failure.
type Suppression struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Directive     string `json:"directive"` // "allow", "ordered", "noalloc"
	Analyzer      string `json:"analyzer,omitempty"`
	Justification string `json:"justification,omitempty"`
}

// NeedsJustification reports whether this directive class requires a
// written reason: every escape hatch does; noalloc opts in to stricter
// checking and is its own statement of intent.
func (s Suppression) NeedsJustification() bool {
	return s.Directive == "allow" || s.Directive == "ordered"
}

// Audit lists every //repolint: directive in the packages matched by
// patterns. Unlike analysis, the audit covers _test.go files too: a
// suppression is a suppression wherever it lives, and each one must carry
// a justification a reviewer can read.
func Audit(dir string, patterns []string) ([]Suppression, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []Suppression
	for _, p := range listed {
		if len(p.Match) == 0 || p.Standard {
			continue
		}
		var files []string
		files = append(files, p.GoFiles...)
		files = append(files, p.TestGoFiles...)
		files = append(files, p.XTestGoFiles...)
		for _, name := range files {
			full := name
			if !filepath.IsAbs(full) {
				full = filepath.Join(p.Dir, name)
			}
			f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("audit: %v", err)
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					d := parseDirective(c.Pos(), c.Text)
					pos := fset.Position(c.Pos())
					out = append(out, Suppression{
						File:          pos.Filename,
						Line:          pos.Line,
						Directive:     d.name,
						Analyzer:      d.arg,
						Justification: d.why,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}
