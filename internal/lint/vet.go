package lint

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
)

// This file implements the `go vet -vettool` side of cmd/repolint: the go
// command hands the tool a JSON .cfg file describing one compilation unit
// (sources, import map, export-data files) and expects diagnostics on
// stderr, a fact file at VetxOutput, and a non-zero exit on findings. The
// schema and sequencing mirror golang.org/x/tools/go/analysis/unitchecker,
// which defines the protocol; implementing it here keeps x/tools out of the
// module while letting `make lint` ride go vet's per-package result cache.

// VetConfig is the compilation-unit description `go vet` writes for a
// vettool. Field names and JSON shape are fixed by the protocol.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// vetImporter resolves source import paths through the cfg's ImportMap and
// reads type information from the per-package export-data files.
func vetImporter(fset *token.FileSet, cfg *VetConfig) types.Importer {
	compiler := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		return compiler.Import(path)
	})
}

// RunVet analyzes the single compilation unit described by cfgFile and
// writes diagnostics to w. It returns the number of diagnostics (the caller
// maps >0 to exit status 1, which go vet treats as "findings").
func RunVet(cfgFile string, analyzers []*Analyzer, w io.Writer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		return 0, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}

	// The protocol requires a fact file even from a tool with no facts:
	// go vet caches it and feeds it back through PackageVetx. Write it
	// first so every exit path (including VetxOnly) satisfies the cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only invocation: repolint defines no facts, so
		// there is nothing to compute for downstream packages.
		return 0, nil
	}

	fset := token.NewFileSet()
	conf := &types.Config{
		Importer: vetImporter(fset, cfg),
		Error:    func(error) {},
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	var files []string
	files = append(files, cfg.GoFiles...)
	pkg, err := typeCheckVet(fset, cfg, conf, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	diags, err := CheckPackage(fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return len(diags), nil
}

// typeCheckVet parses and checks the unit's files with the vet importer.
func typeCheckVet(fset *token.FileSet, cfg *VetConfig, conf *types.Config, goFiles []string) (*Package, error) {
	p := &Package{Path: cfg.ImportPath, Fset: fset}
	for _, name := range goFiles {
		f, err := parseOne(fset, name)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	p.Info = newInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, p.Files, p.Info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}
	p.Types = pkg
	return p, nil
}
