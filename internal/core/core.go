// Package core orchestrates the full study end-to-end: synthesise (or open)
// a fleet of device traces, run the energy attribution, and evaluate every
// figure, table and headline statistic of the paper. It is the high-level
// API the command-line tools, the examples and the benchmark harness build
// on.
package core

import (
	"fmt"
	"io"
	"sync"
	"time"

	"netenergy/internal/analysis"
	"netenergy/internal/appmodel"
	"netenergy/internal/energy"
	"netenergy/internal/obs"
	"netenergy/internal/radio"
	"netenergy/internal/report"
	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
	"netenergy/internal/whatif"
)

// Study is a loaded dataset plus everything needed to reproduce the paper's
// evaluation artifacts.
type Study struct {
	Config  synthgen.Config
	Devices []*analysis.DeviceData
	// Networks compares cellular vs WiFi energy for the same fleet (§3's
	// premise); computed at load time while the raw traces are in hand.
	Networks analysis.NetworkComparison

	// LoadSeconds is how long generation/loading took (recorded by
	// Run/OpenParallel, exposed as analyze_load_seconds when instrumented).
	LoadSeconds float64

	metrics *obs.Registry
}

// Instrument attaches a metrics registry: every subsequent figure/table
// evaluation records its wall time into an
// analyze_stage_seconds{stage="..."} histogram, and the load duration is
// exposed as the analyze_load_seconds gauge. Nil detaches.
func (s *Study) Instrument(reg *obs.Registry) {
	s.metrics = reg
	if reg != nil {
		reg.GaugeFunc("analyze_load_seconds", "fleet generation/load wall time",
			func() float64 { return s.LoadSeconds })
		reg.GaugeFunc("analyze_devices", "devices in the loaded fleet",
			func() float64 { return float64(len(s.Devices)) })
	}
}

// stage returns a completion callback timing one named evaluation stage.
// With no registry attached it costs two branches and no allocation beyond
// the closure.
func (s *Study) stage(name string) func() {
	if s.metrics == nil {
		return func() {}
	}
	h := s.metrics.Histogram(`analyze_stage_seconds{stage="`+name+`"}`,
		"per-stage evaluation wall time", obs.DurationBuckets())
	t0 := time.Now()                                      //repolint:allow determinism stage timing is telemetry; it feeds -stats-json, never an artifact
	return func() { h.Observe(time.Since(t0).Seconds()) } //repolint:allow determinism stage timing is telemetry; it feeds -stats-json, never an artifact
}

// Run generates the configured fleet in memory and loads it.
func Run(cfg synthgen.Config) (*Study, error) {
	t0 := time.Now() //repolint:allow determinism load wall-time telemetry for operators; LoadSeconds never reaches a report or golden artifact
	dts := synthgen.GenerateInMemory(cfg)
	devs, err := analysis.LoadAll(dts, energy.DefaultOptions())
	if err != nil {
		return nil, err
	}
	nets, err := analysis.CompareNetworks(dts)
	if err != nil {
		return nil, err
	}
	return &Study{Config: cfg, Devices: devs, Networks: nets,
		LoadSeconds: time.Since(t0).Seconds()}, nil //repolint:allow determinism load wall-time telemetry for operators; LoadSeconds never reaches a report or golden artifact
}

// Open loads an on-disk fleet previously written by cmd/gentrace.
func Open(dir string) (*Study, error) { return OpenParallel(dir, 1) }

// OpenParallel loads an on-disk fleet with up to workers device files in
// flight at once. Per-device files are independent, so loading — read,
// decode, energy replay — parallelises cleanly; results are folded in path
// order, so the Study is identical regardless of worker count (modulo
// float association in the network totals, which are summed in order too).
// workers <= 1 degrades to the sequential one-trace-in-memory behaviour;
// higher counts trade peak memory for wall time. When the fleet has fewer
// files than workers, the surplus is spent inside each file: METR-2
// containers decode their blocks in parallel (v1 containers just stream).
func OpenParallel(dir string, workers int) (*Study, error) {
	t0 := time.Now() //repolint:allow determinism load wall-time telemetry for operators; LoadSeconds never reaches a report or golden artifact
	fleet, err := trace.OpenFleet(dir)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	inner := 1
	if len(fleet.Paths) > 0 && workers > len(fleet.Paths) {
		inner = (workers + len(fleet.Paths) - 1) / len(fleet.Paths)
		workers = len(fleet.Paths)
	}

	type loaded struct {
		dev  *analysis.DeviceData
		nets analysis.NetworkComparison
	}
	results := make([]loaded, len(fleet.Paths))
	errs := make([]error, len(fleet.Paths))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, path := range fleet.Paths {
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dt, err := trace.ReadFileParallel(path, inner)
			if err != nil {
				errs[i] = fmt.Errorf("core: reading %s: %w", path, err)
				return
			}
			dd, err := analysis.Load(dt, energy.DefaultOptions())
			if err != nil {
				errs[i] = err
				return
			}
			nets, err := analysis.CompareNetworks([]*trace.DeviceTrace{dt})
			if err != nil {
				errs[i] = err
				return
			}
			// Everything retained from dt (app table strings, parsed
			// packet tuples, energy sums) is copied by now, so the
			// decode buffers can be reused for the next file.
			dt.Recycle()
			results[i] = loaded{dev: dd, nets: nets}
		}(i, path)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s := &Study{}
	for _, r := range results {
		s.Devices = append(s.Devices, r.dev)
		s.Networks.CellularJ += r.nets.CellularJ
		s.Networks.WiFiJ += r.nets.WiFiJ
		s.Networks.CellularBytes += r.nets.CellularBytes
		s.Networks.WiFiBytes += r.nets.WiFiBytes
	}
	s.LoadSeconds = time.Since(t0).Seconds() //repolint:allow determinism load wall-time telemetry for operators; LoadSeconds never reaches a report or golden artifact
	return s, nil
}

// Table1Packages is the fixed row order of the paper's Table 1.
var Table1Packages = []string{
	appmodel.PkgWeibo, appmodel.PkgTwitter, appmodel.PkgFacebook, appmodel.PkgPlus,
	appmodel.PkgSamsungPush, appmodel.PkgUrbanairship, appmodel.PkgMaps, appmodel.PkgGmail,
	appmodel.PkgGoWeatherWdg, appmodel.PkgGoWeather, appmodel.PkgAccuweather, appmodel.PkgAccuweatherW,
	appmodel.PkgSpotify, appmodel.PkgPandora,
	appmodel.PkgPocketcasts, appmodel.PkgPodcastaddict,
}

// Table1Labels are the display names matching Table1Packages.
var Table1Labels = []string{
	"Weibo", "Twitter", "Facebook", "Plus",
	"Samsung Push", "Urbanairship", "Maps", "Gmail",
	"Go Weather widget", "Go Weather", "Accuweather", "Accuweather widget",
	"Spotify", "Pandora",
	"Pocketcasts", "Podcastaddict",
}

// Table2Packages is the fixed column order of the paper's Table 2 (the
// extracted header names are garbled in the source; DESIGN.md documents the
// mapping).
var Table2Packages = []string{
	appmodel.PkgSamsungPush, appmodel.PkgWeibo, appmodel.PkgMessenger,
	appmodel.PkgESPN, appmodel.PkgForecast, appmodel.PkgGoWeather,
}

// Table2Labels are the display names matching Table2Packages.
var Table2Labels = []string{
	"SamsungPush", "Weibo", "Messenger", "ESPN", "Forecast", "GoWeather",
}

// Headline computes the prose statistics (84% background, first-minute
// criterion, browser shares).
func (s *Study) Headline() analysis.Headline {
	defer s.stage("headline")()
	return analysis.ComputeHeadline(s.Devices)
}

// Fig1 computes Figure 1 (apps in users' top-10 lists, >=2 users).
func (s *Study) Fig1() analysis.TopAppsResult {
	defer s.stage("fig1")()
	return analysis.TopApps(s.Devices, 2)
}

// Fig2 computes Figure 2 (top data and energy consumers).
func (s *Study) Fig2() analysis.HungryAppsResult {
	defer s.stage("fig2")()
	return analysis.HungryApps(s.Devices, 12)
}

// Fig3 computes Figure 3 (per-state energy for the top-12 apps).
func (s *Study) Fig3() []analysis.StateBreakdown {
	defer s.stage("fig3")()
	return analysis.StateBreakdowns(s.Devices, nil)
}

// Fig4 computes Figure 4 (Chrome traffic around a background transition).
func (s *Study) Fig4() (analysis.TimelineResult, bool) {
	defer s.stage("fig4")()
	return analysis.Timeline(s.Devices, appmodel.PkgChrome, 300, 900, 10)
}

// Fig5 computes Figure 5 (persistence of Chrome traffic after
// backgrounding).
func (s *Study) Fig5() analysis.PersistenceCDF {
	defer s.stage("fig5")()
	return analysis.Persistence(s.Devices, appmodel.PkgChrome)
}

// Fig6 computes Figure 6 (background bytes vs time since foreground, 10 s
// bins over 2 hours).
func (s *Study) Fig6() analysis.SinceForegroundResult {
	defer s.stage("fig6")()
	return analysis.SinceForeground(s.Devices, 10, 7200)
}

// LeakHosts attributes Chrome's background traffic to destination hosts
// and categories — the §4.1 validation that leaked traffic includes ad and
// analytics content.
func (s *Study) LeakHosts() analysis.HostBreakdownResult {
	defer s.stage("leak_hosts")()
	return analysis.HostBreakdown(s.Devices, appmodel.PkgChrome, true)
}

// ScreenOff computes the screen-off traffic characterisation (extension).
func (s *Study) ScreenOff() analysis.ScreenOffResult {
	defer s.stage("screen_off")()
	return analysis.ScreenOff(s.Devices, 10)
}

// WeeklyTrend computes the §3.1 longitudinal background-energy view.
func (s *Study) WeeklyTrend() analysis.WeeklyTrend {
	defer s.stage("weekly")()
	return analysis.Weekly(s.Devices)
}

// DNSOverhead computes the resolver-traffic overhead (extension).
func (s *Study) DNSOverhead() analysis.DNSResult {
	defer s.stage("dns")()
	return analysis.DNS(s.Devices, radio.LTE())
}

// Batching simulates the §6 batch-your-updates recommendation at the given
// coalescing factor.
func (s *Study) Batching(factor int) whatif.BatchResult {
	defer s.stage("batching")()
	return whatif.SimulateBatchingFleet(s.Devices, radio.LTE(), factor)
}

// Retrans computes the TCP retransmission overhead (extension).
func (s *Study) Retrans() analysis.RetransResult {
	defer s.stage("retrans")()
	return analysis.Retransmissions(s.Devices, 10)
}

// Table1 computes the sixteen case-study rows.
func (s *Study) Table1() []analysis.CaseStudy {
	defer s.stage("table1")()
	return analysis.CaseStudies(s.Devices, Table1Packages, Table1Labels)
}

// Table2 computes the what-if rows for the paper's six example apps.
func (s *Study) Table2(killAfterDays int) []whatif.AppResult {
	defer s.stage("table2")()
	return whatif.Evaluate(s.Devices, Table2Packages, Table2Labels, killAfterDays)
}

// Sweep runs the kill-threshold ablation over 1..maxDays.
func (s *Study) Sweep(maxDays int) []whatif.SweepPoint {
	defer s.stage("sweep")()
	return whatif.SweepThresholds(s.Devices, maxDays)
}

// WriteReport renders every artifact to w — the full `cmd/analyze` output.
func (s *Study) WriteReport(w io.Writer) error {
	sections := []func() error{
		func() error { return report.Headline(w, s.Headline()) },
		func() error { return report.TopApps(w, s.Fig1()) },
		func() error { return report.HungryApps(w, s.Fig2()) },
		func() error { return report.StateBreakdowns(w, s.Fig3()) },
		func() error {
			tl, ok := s.Fig4()
			if !ok {
				_, err := fmt.Fprintln(w, "Figure 4: no Chrome background transition found")
				return err
			}
			return report.Timeline(w, tl)
		},
		func() error { return report.Persistence(w, s.Fig5()) },
		func() error { return report.HostBreakdown(w, s.LeakHosts()) },
		func() error { return report.SinceForeground(w, s.Fig6()) },
		func() error { return report.CaseStudies(w, s.Table1()) },
		func() error { return report.WhatIf(w, s.Table2(3), 3) },
		func() error { return report.ScreenOff(w, s.ScreenOff()) },
		func() error { return report.Retransmissions(w, s.Retrans()) },
		func() error { return report.Longitudinal(w, s.WeeklyTrend(), s.Networks) },
		func() error { return report.DNS(w, s.DNSOverhead()) },
	}
	for i, fn := range sections {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := fn(); err != nil {
			return err
		}
	}
	return nil
}
