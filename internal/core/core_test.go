package core

import (
	"bytes"
	"strings"
	"testing"

	"netenergy/internal/synthgen"
)

func runStudy(t *testing.T, users, days int) *Study {
	t.Helper()
	s, err := Run(synthgen.Small(users, days))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunSmallStudy(t *testing.T) {
	s := runStudy(t, 3, 7)
	if len(s.Devices) != 3 {
		t.Fatalf("devices = %d", len(s.Devices))
	}
	h := s.Headline()
	if h.TotalEnergyJ <= 0 {
		t.Error("no energy in study")
	}
	if h.BackgroundFraction < 0.5 || h.BackgroundFraction > 0.98 {
		t.Errorf("background fraction = %v", h.BackgroundFraction)
	}
}

func TestFiguresNonEmpty(t *testing.T) {
	s := runStudy(t, 4, 10)

	if f1 := s.Fig1(); len(f1.Counts) == 0 {
		t.Error("Fig1 empty")
	}
	f2 := s.Fig2()
	if len(f2.ByData) == 0 || len(f2.ByEnergy) == 0 {
		t.Error("Fig2 empty")
	}
	f3 := s.Fig3()
	if len(f3) == 0 {
		t.Error("Fig3 empty")
	}
	for _, sb := range f3 {
		sum := 0.0
		for _, v := range sb.Fractions {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("Fig3 %s fractions sum to %v", sb.App, sum)
		}
	}
	if _, ok := s.Fig4(); !ok {
		t.Error("Fig4: no Chrome transition in 4x10 study")
	}
	if f5 := s.Fig5(); len(f5.Durations) == 0 {
		t.Error("Fig5 empty")
	}
	f6 := s.Fig6()
	if f6.TotalBgBytes <= 0 {
		t.Error("Fig6 empty")
	}
	if f6.FirstMinute <= 0.08 {
		t.Errorf("Fig6 first-minute share = %v", f6.FirstMinute)
	}
}

func TestTable1Rows(t *testing.T) {
	s := runStudy(t, 6, 10)
	rows := s.Table1()
	if len(rows) != len(Table1Packages) {
		t.Fatalf("rows = %d", len(rows))
	}
	byLabel := map[string]int{}
	for i, r := range rows {
		byLabel[r.Label] = i
	}
	// Key shape checks that should hold even on a small fleet, when the
	// relevant apps were installed by at least one user.
	weibo, twitter := rows[byLabel["Weibo"]], rows[byLabel["Twitter"]]
	if weibo.Flows > 0 && twitter.Flows > 0 {
		if weibo.JPerDay <= twitter.JPerDay {
			t.Errorf("Weibo J/day (%v) should exceed Twitter (%v)", weibo.JPerDay, twitter.JPerDay)
		}
		if weibo.UJPerByte <= twitter.UJPerByte {
			t.Errorf("Weibo uJ/B (%v) should exceed Twitter (%v)", weibo.UJPerByte, twitter.UJPerByte)
		}
	}
	app, wdg := rows[byLabel["Accuweather"]], rows[byLabel["Accuweather widget"]]
	if app.Flows > 0 && wdg.Flows > 0 && app.JPerDay <= wdg.JPerDay {
		t.Errorf("Accuweather app J/day (%v) should exceed its widget (%v)", app.JPerDay, wdg.JPerDay)
	}
	pc, pa := rows[byLabel["Pocketcasts"]], rows[byLabel["Podcastaddict"]]
	if pc.Flows > 0 && pa.Flows > 0 && pa.UJPerByte <= pc.UJPerByte*0.8 {
		t.Errorf("Podcastaddict uJ/B (%v) should not be far below Pocketcasts (%v)", pa.UJPerByte, pc.UJPerByte)
	}
}

func TestTable2Rows(t *testing.T) {
	s := runStudy(t, 8, 21)
	rows := s.Table2(3)
	if len(rows) != len(Table2Packages) {
		t.Fatalf("rows = %d", len(rows))
	}
	var anySavings bool
	for _, r := range rows {
		if r.AvgEnergyReductionPct < 0 || r.AvgEnergyReductionPct > 100 {
			t.Errorf("%s reduction = %v", r.Label, r.AvgEnergyReductionPct)
		}
		if r.AvgEnergyReductionPct > 1 {
			anySavings = true
		}
		if r.PctBgOnlyDays < 0 || r.PctBgOnlyDays > 100 {
			t.Errorf("%s bg-only days = %v", r.Label, r.PctBgOnlyDays)
		}
	}
	if !anySavings {
		t.Error("no app shows kill-after-3-days savings")
	}
}

func TestSweepMonotone(t *testing.T) {
	s := runStudy(t, 3, 14)
	pts := s.Sweep(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FleetSavedJ > pts[i-1].FleetSavedJ+1e-6 {
			t.Error("savings should be non-increasing in the threshold")
		}
	}
}

func TestWriteReport(t *testing.T) {
	s := runStudy(t, 3, 7)
	var buf bytes.Buffer
	if err := s.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Headline statistics", "Figure 1", "Figure 2", "Figure 3",
		"Figure 5", "Figure 6", "Table 1", "Table 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestOpenFromDisk(t *testing.T) {
	dir := t.TempDir()
	cfg := synthgen.Small(2, 3)
	if _, err := synthgen.GenerateFleet(cfg, dir); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Devices) != 2 {
		t.Fatalf("devices = %d", len(s.Devices))
	}
	if s.Headline().TotalEnergyJ <= 0 {
		t.Error("no energy from disk-loaded study")
	}
}

func TestExtensionAccessors(t *testing.T) {
	s := runStudy(t, 3, 10)

	dns := s.DNSOverhead()
	if dns.Lookups == 0 || dns.Energy <= 0 {
		t.Errorf("dns = %+v", dns)
	}
	if dns.WakeFraction() <= 0 || dns.WakeFraction() > 1 {
		t.Errorf("dns wake fraction = %v", dns.WakeFraction())
	}

	batch := s.Batching(4)
	if batch.SavedPct <= 0 || batch.SavedPct >= 100 {
		t.Errorf("batching saved = %v%%", batch.SavedPct)
	}

	so := s.ScreenOff()
	if so.OffEnergyFraction() <= 0 {
		t.Errorf("screen-off energy fraction = %v", so.OffEnergyFraction())
	}

	re := s.Retrans()
	if re.Total.Bytes == 0 {
		t.Error("no bytes through retransmission accounting")
	}
	if f := re.Total.RetransFraction(); f < 0.001 || f > 0.1 {
		t.Errorf("retrans fraction = %v, configured ~1%%", f)
	}

	trend := s.WeeklyTrend()
	if len(trend.Weeks) == 0 {
		t.Error("no weekly trend")
	}

	if s.Networks.CellularJ <= 0 {
		t.Error("no cellular energy in network comparison")
	}
	if s.Networks.WiFiJ > 0 && s.Networks.Ratio() < 1 {
		t.Errorf("cellular should out-cost wifi: ratio %v", s.Networks.Ratio())
	}

	hosts := s.LeakHosts()
	if len(hosts.Hosts) == 0 {
		t.Error("no leak hosts attributed")
	}
	if tp := hosts.ThirdPartyShare(); tp < 0 || tp > 1 {
		t.Errorf("third-party share = %v", tp)
	}
}
