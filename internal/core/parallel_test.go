package core

import (
	"math"
	"runtime"
	"strconv"
	"testing"

	"netenergy/internal/synthgen"
	"netenergy/internal/trace"
)

// genFleetDir writes a small on-disk fleet once per test/benchmark run.
func genFleetDir(tb testing.TB, users, days int) string {
	return genFleetDirFormat(tb, users, days, trace.FormatFlat)
}

func genFleetDirFormat(tb testing.TB, users, days int, f trace.Format) string {
	tb.Helper()
	dir := tb.TempDir()
	cfg := synthgen.Small(users, days)
	cfg.Format = f
	if _, err := synthgen.GenerateFleet(cfg, dir); err != nil {
		tb.Fatal(err)
	}
	return dir
}

// TestOpenParallelMatchesOpen: the parallel loader must produce the same
// study as the sequential one, device order included.
func TestOpenParallelMatchesOpen(t *testing.T) {
	dir := genFleetDir(t, 4, 2)
	seq, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	par, err := OpenParallel(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Devices) != len(par.Devices) {
		t.Fatalf("device counts differ: %d vs %d", len(seq.Devices), len(par.Devices))
	}
	for i := range seq.Devices {
		if seq.Devices[i].Device != par.Devices[i].Device {
			t.Errorf("device order differs at %d: %s vs %s",
				i, seq.Devices[i].Device, par.Devices[i].Device)
		}
		a, b := seq.Devices[i].Energy.Ledger.Total, par.Devices[i].Energy.Ledger.Total
		if math.Abs(a-b) > 1e-9*(1+a) {
			t.Errorf("device %s energy differs: %v vs %v", seq.Devices[i].Device, a, b)
		}
	}
	hs, hp := seq.Headline(), par.Headline()
	if math.Abs(hs.BackgroundFraction-hp.BackgroundFraction) > 1e-12 {
		t.Errorf("headline differs: %v vs %v", hs.BackgroundFraction, hp.BackgroundFraction)
	}
	if math.Abs(seq.Networks.CellularJ-par.Networks.CellularJ) > 1e-9*(1+seq.Networks.CellularJ) {
		t.Errorf("network totals differ: %v vs %v", seq.Networks.CellularJ, par.Networks.CellularJ)
	}
}

// TestOpenParallelBlockedFleet: a fleet stored in the METR-2 blocked
// container must load identically to the flat one — including when the
// worker budget exceeds the file count, which turns on intra-file
// block-parallel decoding.
func TestOpenParallelBlockedFleet(t *testing.T) {
	users, days := 3, 2
	flat := genFleetDir(t, users, days)
	blocked := genFleetDirFormat(t, users, days, trace.FormatBlocked)
	ref, err := Open(flat)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 16} { // 16 > 3 files -> inner block parallelism
		got, err := OpenParallel(blocked, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Devices) != len(ref.Devices) {
			t.Fatalf("workers=%d: device counts differ: %d vs %d",
				workers, len(got.Devices), len(ref.Devices))
		}
		for i := range ref.Devices {
			if ref.Devices[i].Device != got.Devices[i].Device {
				t.Errorf("workers=%d: device order differs at %d", workers, i)
			}
			a, b := ref.Devices[i].Energy.Ledger.Total, got.Devices[i].Energy.Ledger.Total
			if math.Abs(a-b) > 1e-9*(1+a) {
				t.Errorf("workers=%d: device %s energy differs: %v vs %v",
					workers, ref.Devices[i].Device, a, b)
			}
		}
		if math.Abs(ref.Networks.CellularJ-got.Networks.CellularJ) > 1e-9*(1+ref.Networks.CellularJ) {
			t.Errorf("workers=%d: network totals differ", workers)
		}
	}
}

// BenchmarkOpenParallel shows the loader speedup on a multi-device fleet:
// compare the workers=1 sub-benchmark against the wider ones (the gain
// tracks available cores; on a single-core box they tie).
func BenchmarkOpenParallel(b *testing.B) {
	dir := genFleetDir(b, 6, 2)
	workerCounts := []int{1, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := OpenParallel(dir, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
