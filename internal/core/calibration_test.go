package core

import (
	"testing"

	"netenergy/internal/appmodel"
	"netenergy/internal/synthgen"
)

// TestCalibrationTargets is the integration-level check that the default
// workload reproduces the paper's headline regime. It runs a mid-sized
// fleet (10 users x 28 days), so it is skipped under -short.
func TestCalibrationTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration study is slow; run without -short")
	}
	s, err := Run(synthgen.Small(10, 28))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Headline()

	check := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %.3f, want in [%.2f, %.2f]", name, got, lo, hi)
		} else {
			t.Logf("%s = %.3f (paper-target regime [%.2f, %.2f])", name, got, lo, hi)
		}
	}
	// Paper: 84% background, 8% perceptible, 32% service.
	check("background fraction", h.BackgroundFraction, 0.75, 0.93)
	check("perceptible fraction", h.PerceptibleFraction, 0.01, 0.15)
	check("service fraction", h.ServiceFraction, 0.25, 0.60)
	// Paper: 84% of apps send >=80% of bg bytes within 60 s.
	check("first-minute criterion", h.FirstMinute.Fraction, 0.70, 0.92)
	// Paper: Chrome ~30% background energy; Firefox/stock ~0.
	check("chrome bg share", h.BrowserBgShares[appmodel.PkgChrome], 0.12, 0.55)
	if v := h.BrowserBgShares[appmodel.PkgFirefox]; v > 0.05 {
		t.Errorf("firefox bg share = %.3f, want ~0", v)
	}
	if v := h.BrowserBgShares[appmodel.PkgStockBrowser]; v > 0.05 {
		t.Errorf("stock browser bg share = %.3f, want ~0", v)
	}

	// Table 1 orderings.
	rows := s.Table1()
	get := func(label string) float64 {
		for _, r := range rows {
			if r.Label == label {
				return r.JPerDay
			}
		}
		return 0
	}
	if w, tw := get("Weibo"), get("Twitter"); w > 0 && tw > 0 && w < 2*tw {
		t.Errorf("Weibo (%v J/day) should be well above Twitter (%v)", w, tw)
	}
	if app, wdg := get("Accuweather"), get("Accuweather widget"); app > 0 && wdg > 0 && app < 5*wdg {
		t.Errorf("Accuweather app (%v) should dwarf its widget (%v)", app, wdg)
	}

	// Cellular must dwarf WiFi energy (§3 premise).
	if s.Networks.WiFiJ > 0 && s.Networks.Ratio() < 3 {
		t.Errorf("cellular/wifi energy ratio = %v, want >> 1", s.Networks.Ratio())
	}

	// Fig6 must show both alignment spikes.
	f6 := s.Fig6()
	if f6.Spike5m < 1.1 && f6.Spike10m < 1.1 {
		t.Errorf("no 5/10-minute spikes: %v / %v", f6.Spike5m, f6.Spike10m)
	}

	// Weekly fluctuation exists (paper: up to 60%).
	if trend := s.WeeklyTrend(); trend.MaxWeekOverWeekChange < 0.02 {
		t.Errorf("weekly fluctuation = %v, implausibly flat", trend.MaxWeekOverWeekChange)
	}
}
