// Package tcpstream performs lightweight TCP stream accounting in the
// style of gopacket's tcpassembly: given the sequence numbers of one
// direction of a TCP flow, it classifies each segment as new data, a
// retransmission, or an out-of-order arrival, and tracks goodput versus
// wire bytes.
//
// The analyzer uses it to measure retransmission overhead — wire bytes
// (which cost radio energy) that deliver no new application data. Sequence
// numbers wrap modulo 2^32; comparisons use serial-number arithmetic
// (RFC 1982 style), so long streams account correctly across wraps.
package tcpstream

// Kind classifies one segment.
type Kind uint8

// Segment classifications.
const (
	KindEmpty   Kind = iota // zero-length (pure ACK)
	KindNew                 // advances the stream: all-new data
	KindRetrans             // entirely at or before the expected sequence
	KindPartial             // overlaps: part old, part new
	KindFuture              // beyond the expected sequence (a gap precedes it)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindEmpty:
		return "empty"
	case KindNew:
		return "new"
	case KindRetrans:
		return "retransmission"
	case KindPartial:
		return "partial-retransmission"
	case KindFuture:
		return "out-of-order"
	default:
		return "invalid"
	}
}

// Stats accumulates one direction's accounting.
type Stats struct {
	Segments   int
	Bytes      int64 // wire payload bytes
	Goodput    int64 // bytes of new data delivered
	Retrans    int64 // bytes already seen (wasted)
	OutOfOrder int   // segments that arrived beyond the expected seq
}

// RetransFraction returns the fraction of payload bytes that were
// retransmissions.
func (s Stats) RetransFraction() float64 {
	if s.Bytes == 0 {
		return 0
	}
	return float64(s.Retrans) / float64(s.Bytes)
}

// Stream tracks one direction of one TCP connection.
type Stream struct {
	stats   Stats
	started bool
	next    uint32 // next expected sequence number
}

// seqLess reports a < b in serial-number arithmetic.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// Segment records a segment with the given sequence number and payload
// length and returns its classification.
func (st *Stream) Segment(seq uint32, length int) Kind {
	st.stats.Segments++
	if length <= 0 {
		return KindEmpty
	}
	st.stats.Bytes += int64(length)
	end := seq + uint32(length)
	if !st.started {
		st.started = true
		st.next = end
		st.stats.Goodput += int64(length)
		return KindNew
	}
	switch {
	case seq == st.next:
		st.next = end
		st.stats.Goodput += int64(length)
		return KindNew
	case !seqLess(st.next, end): // end <= next: entirely old data
		st.stats.Retrans += int64(length)
		return KindRetrans
	case seqLess(seq, st.next): // overlaps the boundary
		oldPart := int64(st.next - seq)
		newPart := int64(length) - oldPart
		st.stats.Retrans += oldPart
		st.stats.Goodput += newPart
		st.next = end
		return KindPartial
	default: // seq > next: a gap; accept and jump forward
		st.stats.OutOfOrder++
		st.stats.Goodput += int64(length)
		st.next = end
		return KindFuture
	}
}

// Stats returns the accumulated accounting.
func (st *Stream) Stats() Stats { return st.stats }

// Tracker keys streams by an opaque identifier (flow hash + direction) and
// aggregates totals.
type Tracker struct {
	streams map[uint64]*Stream
}

// NewTracker returns an empty Tracker.
func NewTracker() *Tracker { return &Tracker{streams: make(map[uint64]*Stream)} }

// Segment routes one segment to its stream, creating it on first sight.
func (t *Tracker) Segment(key uint64, seq uint32, length int) Kind {
	st := t.streams[key]
	if st == nil {
		st = &Stream{}
		t.streams[key] = st
	}
	return st.Segment(seq, length)
}

// Total sums all streams' stats.
func (t *Tracker) Total() Stats {
	var out Stats
	for _, st := range t.streams {
		s := st.Stats()
		out.Segments += s.Segments
		out.Bytes += s.Bytes
		out.Goodput += s.Goodput
		out.Retrans += s.Retrans
		out.OutOfOrder += s.OutOfOrder
	}
	return out
}

// Streams returns the number of tracked streams.
func (t *Tracker) Streams() int { return len(t.streams) }
