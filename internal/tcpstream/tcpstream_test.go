package tcpstream

import (
	"math"
	"testing"
	"testing/quick"

	"netenergy/internal/rng"
)

func TestInOrderStream(t *testing.T) {
	var st Stream
	seq := uint32(1000)
	for i := 0; i < 10; i++ {
		if k := st.Segment(seq, 500); k != KindNew {
			t.Fatalf("segment %d classified %v", i, k)
		}
		seq += 500
	}
	s := st.Stats()
	if s.Goodput != 5000 || s.Bytes != 5000 || s.Retrans != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.RetransFraction() != 0 {
		t.Errorf("retrans fraction = %v", s.RetransFraction())
	}
}

func TestPureRetransmission(t *testing.T) {
	var st Stream
	st.Segment(0, 1000)
	if k := st.Segment(0, 1000); k != KindRetrans {
		t.Fatalf("duplicate classified %v", k)
	}
	if k := st.Segment(500, 500); k != KindRetrans {
		t.Fatalf("tail duplicate classified %v", k)
	}
	s := st.Stats()
	if s.Goodput != 1000 || s.Retrans != 1500 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.RetransFraction()-0.6) > 1e-9 {
		t.Errorf("retrans fraction = %v", s.RetransFraction())
	}
}

func TestPartialOverlap(t *testing.T) {
	var st Stream
	st.Segment(0, 1000)
	// Overlaps 400 old bytes, brings 600 new.
	if k := st.Segment(600, 1000); k != KindPartial {
		t.Fatalf("overlap classified %v", k)
	}
	s := st.Stats()
	if s.Goodput != 1600 || s.Retrans != 400 {
		t.Errorf("stats = %+v", s)
	}
}

func TestOutOfOrderGap(t *testing.T) {
	var st Stream
	st.Segment(0, 100)
	if k := st.Segment(500, 100); k != KindFuture {
		t.Fatalf("future segment classified %v", k)
	}
	s := st.Stats()
	if s.OutOfOrder != 1 {
		t.Errorf("out of order = %d", s.OutOfOrder)
	}
	// Stream resumes from the jumped position.
	if k := st.Segment(600, 100); k != KindNew {
		t.Errorf("post-gap segment classified %v", k)
	}
}

func TestEmptySegments(t *testing.T) {
	var st Stream
	if k := st.Segment(123, 0); k != KindEmpty {
		t.Fatalf("ack classified %v", k)
	}
	s := st.Stats()
	if s.Segments != 1 || s.Bytes != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.RetransFraction() != 0 {
		t.Error("empty stream retrans fraction should be 0")
	}
}

func TestSequenceWraparound(t *testing.T) {
	var st Stream
	start := uint32(0xffffff00) // 256 bytes below wrap
	st.Segment(start, 256)      // ends exactly at 0
	if k := st.Segment(0, 512); k != KindNew {
		t.Fatalf("post-wrap segment classified %v", k)
	}
	// A duplicate of the pre-wrap segment is still a retransmission.
	if k := st.Segment(start, 256); k != KindRetrans {
		t.Fatalf("pre-wrap duplicate classified %v", k)
	}
	s := st.Stats()
	if s.Goodput != 768 || s.Retrans != 256 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTrackerMultipleStreams(t *testing.T) {
	tr := NewTracker()
	tr.Segment(1, 0, 100)
	tr.Segment(2, 0, 200)
	tr.Segment(1, 0, 100) // retransmission on stream 1
	if tr.Streams() != 2 {
		t.Fatalf("streams = %d", tr.Streams())
	}
	total := tr.Total()
	if total.Bytes != 400 || total.Goodput != 300 || total.Retrans != 100 {
		t.Errorf("total = %+v", total)
	}
}

func TestConservationProperty(t *testing.T) {
	// Goodput + Retrans == Bytes for any segment sequence.
	src := rng.New(9)
	f := func(n uint8) bool {
		var st Stream
		count := int(n)%200 + 1
		seq := uint32(src.Uint64())
		for i := 0; i < count; i++ {
			// Random mix of advances, duplicates and jumps.
			switch src.Intn(4) {
			case 0: // duplicate of recent data
				st.Segment(seq-uint32(src.Intn(2000)), 1+src.Intn(1000))
			case 1: // jump forward
				seq += uint32(src.Intn(5000))
				fallthrough
			default:
				l := 1 + src.Intn(1400)
				st.Segment(seq, l)
				seq += uint32(l)
			}
		}
		s := st.Stats()
		return s.Goodput+s.Retrans == s.Bytes && s.Goodput >= 0 && s.Retrans >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindEmpty: "empty", KindNew: "new", KindRetrans: "retransmission",
		KindPartial: "partial-retransmission", KindFuture: "out-of-order",
		Kind(99): "invalid",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
