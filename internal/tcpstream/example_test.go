package tcpstream_test

import (
	"fmt"

	"netenergy/internal/tcpstream"
)

// Stream classifies each segment and keeps goodput/retransmission
// accounting; wire bytes that deliver no new data still cost radio energy.
func ExampleStream() {
	var st tcpstream.Stream
	fmt.Println(st.Segment(0, 1000))   // first data
	fmt.Println(st.Segment(1000, 500)) // in order
	fmt.Println(st.Segment(1000, 500)) // lost ACK: sender retransmits
	fmt.Println(st.Segment(1200, 600)) // overlaps the boundary
	fmt.Println(st.Segment(5000, 100)) // a gap: out-of-order arrival
	s := st.Stats()
	fmt.Printf("bytes=%d goodput=%d retrans=%d\n", s.Bytes, s.Goodput, s.Retrans)
	// Output:
	// new
	// new
	// retransmission
	// partial-retransmission
	// out-of-order
	// bytes=2700 goodput=1900 retrans=800
}
