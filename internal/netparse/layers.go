package netparse

import "encoding/binary"

// IPv4 is a decoded (or to-be-serialised) IPv4 header. Options are not
// supported; IHL is always 5 on serialisation and options are skipped on
// decode.
type IPv4 struct {
	TOS        uint8
	ID         uint16
	TTL        uint8
	Protocol   uint8
	SrcIP      [4]byte
	DstIP      [4]byte
	Length     uint16 // total length incl. header, filled on decode/serialise
	headerLen  int
	payloadLen int
}

// HeaderLen returns the decoded header length in bytes.
func (ip *IPv4) HeaderLen() int { return ip.headerLen }

// SrcEndpoint returns the source address as a hashable Endpoint.
func (ip *IPv4) SrcEndpoint() Endpoint { return NewEndpoint(EndpointIPv4, ip.SrcIP[:]) }

// DstEndpoint returns the destination address as a hashable Endpoint.
func (ip *IPv4) DstEndpoint() Endpoint { return NewEndpoint(EndpointIPv4, ip.DstIP[:]) }

// DecodeFromBytes parses an IPv4 header from data, returning the payload.
func (ip *IPv4) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < 20 {
		return nil, ErrTruncated
	}
	if data[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return nil, ErrBadHeader
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < ihl || total > len(data) {
		return nil, ErrTruncated
	}
	if checksum(data[:ihl], 0) != 0 {
		return nil, ErrBadChecksum
	}
	ip.TOS = data[1]
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ip.TTL = data[8]
	ip.Protocol = data[9]
	copy(ip.SrcIP[:], data[12:16])
	copy(ip.DstIP[:], data[16:20])
	ip.Length = uint16(total)
	ip.headerLen = ihl
	ip.payloadLen = total - ihl
	return data[ihl:total], nil
}

// SerializeTo writes a 20-byte header followed by payload into buf, which
// must be at least 20+len(payload) bytes. It returns the bytes written.
func (ip *IPv4) SerializeTo(buf []byte, payload []byte) (int, error) {
	total := 20 + len(payload)
	if len(buf) < total {
		return 0, ErrTruncated
	}
	if total > 0xffff {
		return 0, ErrBadHeader
	}
	b := buf[:20]
	b[0] = 0x45 // version 4, IHL 5
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], 0x4000) // DF, no fragmentation
	b[8] = ip.TTL
	b[9] = ip.Protocol
	b[10], b[11] = 0, 0
	copy(b[12:16], ip.SrcIP[:])
	copy(b[16:20], ip.DstIP[:])
	cs := checksum(b, 0)
	binary.BigEndian.PutUint16(b[10:12], cs)
	copy(buf[20:total], payload)
	ip.Length = uint16(total)
	ip.headerLen = 20
	ip.payloadLen = len(payload)
	return total, nil
}

// pseudoHeaderSum computes the IPv4 pseudo-header partial checksum used by
// TCP and UDP.
func (ip *IPv4) pseudoHeaderSum(proto uint8, segLen int) uint32 {
	var sum uint32
	sum += uint32(ip.SrcIP[0])<<8 | uint32(ip.SrcIP[1])
	sum += uint32(ip.SrcIP[2])<<8 | uint32(ip.SrcIP[3])
	sum += uint32(ip.DstIP[0])<<8 | uint32(ip.DstIP[1])
	sum += uint32(ip.DstIP[2])<<8 | uint32(ip.DstIP[3])
	sum += uint32(proto)
	sum += uint32(segLen)
	return sum
}

// IPv6 is a decoded/serialisable IPv6 fixed header (no extension headers).
type IPv6 struct {
	TrafficClass uint8
	NextHeader   uint8
	HopLimit     uint8
	SrcIP        [16]byte
	DstIP        [16]byte
	PayloadLen   uint16
}

// SrcEndpoint returns the source address as a hashable Endpoint.
func (ip *IPv6) SrcEndpoint() Endpoint { return NewEndpoint(EndpointIPv6, ip.SrcIP[:]) }

// DstEndpoint returns the destination address as a hashable Endpoint.
func (ip *IPv6) DstEndpoint() Endpoint { return NewEndpoint(EndpointIPv6, ip.DstIP[:]) }

// DecodeFromBytes parses an IPv6 fixed header, returning the payload.
func (ip *IPv6) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < 40 {
		return nil, ErrTruncated
	}
	if data[0]>>4 != 6 {
		return nil, ErrBadVersion
	}
	plen := int(binary.BigEndian.Uint16(data[4:6]))
	if len(data) < 40+plen {
		return nil, ErrTruncated
	}
	ip.TrafficClass = data[0]<<4 | data[1]>>4
	ip.PayloadLen = uint16(plen)
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	copy(ip.SrcIP[:], data[8:24])
	copy(ip.DstIP[:], data[24:40])
	return data[40 : 40+plen], nil
}

// SerializeTo writes the 40-byte header followed by payload into buf.
func (ip *IPv6) SerializeTo(buf []byte, payload []byte) (int, error) {
	total := 40 + len(payload)
	if len(buf) < total {
		return 0, ErrTruncated
	}
	if len(payload) > 0xffff {
		return 0, ErrBadHeader
	}
	b := buf[:40]
	b[0] = 0x60 | ip.TrafficClass>>4
	b[1] = ip.TrafficClass << 4
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:6], uint16(len(payload)))
	b[6] = ip.NextHeader
	b[7] = ip.HopLimit
	copy(b[8:24], ip.SrcIP[:])
	copy(b[24:40], ip.DstIP[:])
	copy(buf[40:total], payload)
	ip.PayloadLen = uint16(len(payload))
	return total, nil
}

func (ip *IPv6) pseudoHeaderSum(proto uint8, segLen int) uint32 {
	var sum uint32
	for i := 0; i < 16; i += 2 {
		sum += uint32(ip.SrcIP[i])<<8 | uint32(ip.SrcIP[i+1])
		sum += uint32(ip.DstIP[i])<<8 | uint32(ip.DstIP[i+1])
	}
	sum += uint32(segLen)
	sum += uint32(proto)
	return sum
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
)

// TCP is a decoded/serialisable TCP header (no options on serialisation).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	headerLen        int
}

// HeaderLen returns the decoded header length in bytes.
func (t *TCP) HeaderLen() int { return t.headerLen }

// DecodeFromBytes parses a TCP header from data, verifying the checksum
// against the enclosing IP pseudo-header (pass nil net to skip the check —
// used when only flow identification matters).
func (t *TCP) DecodeFromBytes(data []byte, net pseudoHeader) (payload []byte, err error) {
	if len(data) < 20 {
		return nil, ErrTruncated
	}
	off := int(data[12]>>4) * 4
	if off < 20 || len(data) < off {
		return nil, ErrBadHeader
	}
	if net != nil {
		if checksum(data, net.pseudoHeaderSum(IPProtoTCP, len(data))) != 0 {
			return nil, ErrBadChecksum
		}
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.Flags = data[13] & 0x1f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.headerLen = off
	return data[off:], nil
}

// SerializeTo writes a 20-byte TCP header plus payload into buf and fills
// in the checksum using the enclosing IP header.
func (t *TCP) SerializeTo(buf []byte, payload []byte, net pseudoHeader) (int, error) {
	total := 20 + len(payload)
	if len(buf) < total {
		return 0, ErrTruncated
	}
	b := buf[:total]
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = 5 << 4
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	b[16], b[17] = 0, 0 // checksum placeholder
	b[18], b[19] = 0, 0 // urgent pointer
	copy(b[20:], payload)
	if net != nil {
		cs := checksum(b, net.pseudoHeaderSum(IPProtoTCP, total))
		binary.BigEndian.PutUint16(b[16:18], cs)
	}
	t.headerLen = 20
	return total, nil
}

// UDP is a decoded/serialisable UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
}

// DecodeFromBytes parses a UDP header, verifying the checksum when a
// pseudo-header is provided and the packet carries one (checksum != 0).
func (u *UDP) DecodeFromBytes(data []byte, net pseudoHeader) (payload []byte, err error) {
	if len(data) < 8 {
		return nil, ErrTruncated
	}
	ulen := int(binary.BigEndian.Uint16(data[4:6]))
	if ulen < 8 || ulen > len(data) {
		return nil, ErrBadHeader
	}
	if net != nil && binary.BigEndian.Uint16(data[6:8]) != 0 {
		if checksum(data[:ulen], net.pseudoHeaderSum(IPProtoUDP, ulen)) != 0 {
			return nil, ErrBadChecksum
		}
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = uint16(ulen)
	return data[8:ulen], nil
}

// SerializeTo writes an 8-byte UDP header plus payload into buf.
func (u *UDP) SerializeTo(buf []byte, payload []byte, net pseudoHeader) (int, error) {
	total := 8 + len(payload)
	if len(buf) < total {
		return 0, ErrTruncated
	}
	if total > 0xffff {
		return 0, ErrBadHeader
	}
	b := buf[:total]
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(total))
	b[6], b[7] = 0, 0
	copy(b[8:], payload)
	if net != nil {
		cs := checksum(b, net.pseudoHeaderSum(IPProtoUDP, total))
		if cs == 0 {
			cs = 0xffff // RFC 768: transmitted zero checksum means "none"
		}
		binary.BigEndian.PutUint16(b[6:8], cs)
	}
	u.Length = uint16(total)
	return total, nil
}

// pseudoHeader is implemented by IPv4 and IPv6 headers to supply the
// transport checksum pseudo-header sum.
type pseudoHeader interface {
	pseudoHeaderSum(proto uint8, segLen int) uint32
}
