package netparse

import (
	"testing"
)

// FuzzDecodePacket throws arbitrary bytes at both the strict and the
// snap-tolerant parser: any input must produce a clean error or a decoded
// packet, never a panic, and decoded lengths must stay within bounds.
func FuzzDecodePacket(f *testing.F) {
	// Seed corpus: valid TCP, valid UDP, snapped TCP, and junk.
	buf := make([]byte, 2048)
	n, _ := BuildTCPv4(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 0, 0, 1}, 1234, 443, 7, TCPAck, 64)
	f.Add(append([]byte(nil), buf[:n]...))
	n, _ = BuildUDPv4(buf, [4]byte{10, 0, 0, 1}, [4]byte{8, 8, 8, 8}, 5353, 53, 32)
	f.Add(append([]byte(nil), buf[:n]...))
	s, _, _ := BuildTCPv4Snapped(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 0, 0, 1}, 1234, 443, 7, TCPAck, 5000, 96)
	f.Add(append([]byte(nil), buf[:s]...))
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add([]byte{0x60, 0, 0, 0})

	strict := NewParser()
	snap := NewParser()
	snap.Snap = true
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, p := range []*Parser{strict, snap} {
			d, err := p.DecodePacket(data)
			if err != nil {
				continue
			}
			if d.WireLen < 0 || d.WireLen > 0xffff+40 {
				t.Fatalf("wire length out of bounds: %d", d.WireLen)
			}
			if len(d.Payload) > len(data) {
				t.Fatalf("payload longer than input: %d > %d", len(d.Payload), len(data))
			}
		}
	})
}
