package netparse

import (
	"bytes"
	"testing"
	"testing/quick"

	"netenergy/internal/rng"
)

func TestEndpointString(t *testing.T) {
	e4 := NewEndpoint(EndpointIPv4, []byte{10, 0, 0, 1})
	if e4.String() != "10.0.0.1" {
		t.Errorf("IPv4 endpoint = %q", e4.String())
	}
	ep := NewEndpoint(EndpointPort, []byte{0x01, 0xbb})
	if ep.String() != "443" {
		t.Errorf("port endpoint = %q", ep.String())
	}
	var v6 [16]byte
	v6[15] = 1
	e6 := NewEndpoint(EndpointIPv6, v6[:])
	if e6.String() != "0:0:0:0:0:0:0:1" {
		t.Errorf("IPv6 endpoint = %q", e6.String())
	}
	bad := NewEndpoint(EndpointIPv4, make([]byte, 17))
	if bad.Type() != EndpointInvalid || bad.String() != "invalid" {
		t.Errorf("oversized raw should yield invalid endpoint, got %v", bad)
	}
}

func TestEndpointRawCopy(t *testing.T) {
	raw := []byte{1, 2, 3, 4}
	e := NewEndpoint(EndpointIPv4, raw)
	got := e.Raw()
	got[0] = 99
	if e.Raw()[0] != 1 {
		t.Error("Raw must return a copy")
	}
}

func TestEndpointHashable(t *testing.T) {
	m := map[Endpoint]int{}
	a := NewEndpoint(EndpointIPv4, []byte{1, 2, 3, 4})
	b := NewEndpoint(EndpointIPv4, []byte{1, 2, 3, 4})
	m[a] = 1
	if m[b] != 1 {
		t.Error("equal endpoints must be equal map keys")
	}
}

func TestFlowReverse(t *testing.T) {
	a := NewEndpoint(EndpointIPv4, []byte{1, 1, 1, 1})
	b := NewEndpoint(EndpointIPv4, []byte{2, 2, 2, 2})
	f := NewFlow(a, b)
	r := f.Reverse()
	if r.Src() != b || r.Dst() != a {
		t.Error("Reverse did not swap endpoints")
	}
	if f.String() != "1.1.1.1->2.2.2.2" {
		t.Errorf("flow string = %q", f.String())
	}
}

func TestFiveTupleCanonicalSymmetric(t *testing.T) {
	a := NewEndpoint(EndpointIPv4, []byte{10, 0, 0, 1})
	b := NewEndpoint(EndpointIPv4, []byte{93, 184, 216, 34})
	fwd := FiveTuple{AddrA: a, AddrB: b, PortA: 49152, PortB: 443, Proto: IPProtoTCP}
	rev := FiveTuple{AddrA: b, AddrB: a, PortA: 443, PortB: 49152, Proto: IPProtoTCP}
	if fwd.Canonical() != rev.Canonical() {
		t.Error("canonical tuples differ across directions")
	}
	if fwd.FastHash() != rev.FastHash() {
		t.Error("FastHash not symmetric")
	}
}

func TestFiveTupleHashDistinguishes(t *testing.T) {
	a := NewEndpoint(EndpointIPv4, []byte{10, 0, 0, 1})
	b := NewEndpoint(EndpointIPv4, []byte{10, 0, 0, 2})
	t1 := FiveTuple{AddrA: a, AddrB: b, PortA: 1000, PortB: 443, Proto: IPProtoTCP}
	t2 := FiveTuple{AddrA: a, AddrB: b, PortA: 1001, PortB: 443, Proto: IPProtoTCP}
	if t1.FastHash() == t2.FastHash() {
		t.Error("distinct tuples should (almost surely) hash differently")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 style example.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := checksum(data, 0); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
	// Odd length.
	if got := checksum([]byte{0xab}, 0); got != ^uint16(0xab00) {
		t.Errorf("odd checksum = %#x", got)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{TOS: 0x10, ID: 0x1234, TTL: 61, Protocol: IPProtoTCP,
		SrcIP: [4]byte{192, 168, 1, 10}, DstIP: [4]byte{8, 8, 8, 8}}
	payload := []byte{1, 2, 3, 4, 5}
	buf := make([]byte, 64)
	n, err := ip.SerializeTo(buf, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("serialised %d bytes", n)
	}
	var got IPv4
	pl, err := got.DecodeFromBytes(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pl, payload) {
		t.Errorf("payload = %v", pl)
	}
	if got.SrcIP != ip.SrcIP || got.DstIP != ip.DstIP || got.TTL != 61 || got.ID != 0x1234 || got.Protocol != IPProtoTCP || got.TOS != 0x10 {
		t.Errorf("decoded header mismatch: %+v", got)
	}
	if got.HeaderLen() != 20 {
		t.Errorf("header len = %d", got.HeaderLen())
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	var ip IPv4
	if _, err := ip.DecodeFromBytes(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short packet: %v", err)
	}
	buf := make([]byte, 64)
	good := IPv4{TTL: 64, Protocol: IPProtoUDP, SrcIP: [4]byte{1, 2, 3, 4}, DstIP: [4]byte{5, 6, 7, 8}}
	n, _ := good.SerializeTo(buf, []byte{9, 9})
	// Corrupt a header byte -> checksum error.
	corrupt := append([]byte(nil), buf[:n]...)
	corrupt[8] ^= 0xff
	if _, err := ip.DecodeFromBytes(corrupt); err != ErrBadChecksum {
		t.Errorf("corrupt header: %v", err)
	}
	// Wrong version nibble.
	v := append([]byte(nil), buf[:n]...)
	v[0] = 0x55
	if _, err := ip.DecodeFromBytes(v); err != ErrBadVersion {
		t.Errorf("bad version: %v", err)
	}
	// Total length beyond buffer.
	short := append([]byte(nil), buf[:n]...)
	if _, err := ip.DecodeFromBytes(short[:n-1]); err != ErrTruncated {
		t.Errorf("truncated body: %v", err)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	var src, dst [16]byte
	src[15], dst[15] = 1, 2
	ip := IPv6{TrafficClass: 3, NextHeader: IPProtoUDP, HopLimit: 60, SrcIP: src, DstIP: dst}
	payload := []byte{0xaa, 0xbb}
	buf := make([]byte, 64)
	n, err := ip.SerializeTo(buf, payload)
	if err != nil {
		t.Fatal(err)
	}
	var got IPv6
	pl, err := got.DecodeFromBytes(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pl, payload) || got.SrcIP != src || got.DstIP != dst ||
		got.HopLimit != 60 || got.NextHeader != IPProtoUDP || got.TrafficClass != 3 {
		t.Errorf("round trip mismatch: %+v payload=%v", got, pl)
	}
}

func TestTCPRoundTripWithChecksum(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: IPProtoTCP, SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}}
	tcp := TCP{SrcPort: 5000, DstPort: 443, Seq: 7, Ack: 9, Flags: TCPAck | TCPPsh, Window: 1024}
	payload := []byte("hello")
	buf := make([]byte, 128)
	n, err := tcp.SerializeTo(buf, payload, &ip)
	if err != nil {
		t.Fatal(err)
	}
	var got TCP
	pl, err := got.DecodeFromBytes(buf[:n], &ip)
	if err != nil {
		t.Fatal(err)
	}
	if string(pl) != "hello" || got.SrcPort != 5000 || got.DstPort != 443 ||
		got.Seq != 7 || got.Ack != 9 || got.Flags != TCPAck|TCPPsh || got.Window != 1024 {
		t.Errorf("mismatch: %+v payload=%q", got, pl)
	}
	// Flip a payload bit: checksum must fail.
	buf[n-1] ^= 1
	if _, err := got.DecodeFromBytes(buf[:n], &ip); err != ErrBadChecksum {
		t.Errorf("corrupted payload: %v", err)
	}
	// Without pseudo-header the check is skipped.
	if _, err := got.DecodeFromBytes(buf[:n], nil); err != nil {
		t.Errorf("nil net should skip checksum: %v", err)
	}
}

func TestUDPRoundTripWithChecksum(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: IPProtoUDP, SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 9}}
	udp := UDP{SrcPort: 1234, DstPort: 53}
	payload := []byte{1, 2, 3}
	buf := make([]byte, 64)
	n, err := udp.SerializeTo(buf, payload, &ip)
	if err != nil {
		t.Fatal(err)
	}
	var got UDP
	pl, err := got.DecodeFromBytes(buf[:n], &ip)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pl, payload) || got.SrcPort != 1234 || got.DstPort != 53 {
		t.Errorf("mismatch: %+v %v", got, pl)
	}
	buf[n-1] ^= 1
	if _, err := got.DecodeFromBytes(buf[:n], &ip); err != ErrBadChecksum {
		t.Errorf("corrupted payload: %v", err)
	}
}

func TestParserTCPv4(t *testing.T) {
	buf := make([]byte, 2048)
	n, err := BuildTCPv4(buf, [4]byte{10, 0, 0, 5}, [4]byte{93, 184, 216, 34}, 40000, 443, 100, TCPAck, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1040 {
		t.Fatalf("built %d bytes, want 1040", n)
	}
	p := NewParser()
	d, err := p.DecodePacket(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if d.Network != LayerTypeIPv4 || d.Transport != LayerTypeTCP {
		t.Errorf("layers = %v/%v", d.Network, d.Transport)
	}
	if d.Tuple.PortA != 40000 || d.Tuple.PortB != 443 || d.Tuple.Proto != IPProtoTCP {
		t.Errorf("tuple = %+v", d.Tuple)
	}
	if len(d.Payload) != 1000 || d.WireLen != 1040 {
		t.Errorf("payload=%d wire=%d", len(d.Payload), d.WireLen)
	}
}

func TestParserUDPv4(t *testing.T) {
	buf := make([]byte, 256)
	n, err := BuildUDPv4(buf, [4]byte{10, 0, 0, 5}, [4]byte{8, 8, 4, 4}, 9999, 53, 64)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser()
	d, err := p.DecodePacket(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if d.Transport != LayerTypeUDP || d.Tuple.PortB != 53 || len(d.Payload) != 64 {
		t.Errorf("decoded %+v payload=%d", d.Tuple, len(d.Payload))
	}
}

func TestParserErrors(t *testing.T) {
	p := NewParser()
	if _, err := p.DecodePacket(nil); err != ErrTruncated {
		t.Errorf("empty: %v", err)
	}
	if _, err := p.DecodePacket([]byte{0x00}); err != ErrBadVersion {
		t.Errorf("bad version: %v", err)
	}
	// Unsupported transport protocol.
	ip := IPv4{TTL: 64, Protocol: 47 /* GRE */, SrcIP: [4]byte{1, 1, 1, 1}, DstIP: [4]byte{2, 2, 2, 2}}
	buf := make([]byte, 64)
	n, _ := ip.SerializeTo(buf, []byte{0, 0, 0, 0})
	if _, err := p.DecodePacket(buf[:n]); err != ErrUnsupported {
		t.Errorf("unsupported proto: %v", err)
	}
}

func TestParserReusesDecoded(t *testing.T) {
	p := NewParser()
	buf := make([]byte, 256)
	n, _ := BuildTCPv4(buf, [4]byte{1, 0, 0, 1}, [4]byte{2, 0, 0, 2}, 1, 2, 0, TCPSyn, 10)
	d1, err := p.DecodePacket(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	d2, err := p.DecodePacket(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("parser should reuse its Decoded struct")
	}
}

func TestBuildRoundTripProperty(t *testing.T) {
	src := rng.New(99)
	p := NewParser()
	buf := make([]byte, 65536)
	f := func(sp, dp uint16, plen uint16) bool {
		n := int(plen) % 1400
		var a, b [4]byte
		a[0], a[1], a[2], a[3] = byte(src.Intn(256)), byte(src.Intn(256)), byte(src.Intn(256)), byte(src.Intn(256))
		b[0], b[1], b[2], b[3] = byte(src.Intn(256)), byte(src.Intn(256)), byte(src.Intn(256)), byte(src.Intn(256))
		var wire int
		var err error
		if src.Bool(0.5) {
			wire, err = BuildTCPv4(buf, a, b, sp, dp, uint32(plen), TCPAck, n)
		} else {
			wire, err = BuildUDPv4(buf, a, b, sp, dp, n)
		}
		if err != nil {
			return false
		}
		d, err := p.DecodePacket(buf[:wire])
		if err != nil {
			return false
		}
		return d.Tuple.PortA == sp && d.Tuple.PortB == dp && len(d.Payload) == n &&
			d.Tuple.AddrA == NewEndpoint(EndpointIPv4, a[:]) &&
			d.Tuple.AddrB == NewEndpoint(EndpointIPv4, b[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTruncationNeverPanics(t *testing.T) {
	p := NewParser()
	buf := make([]byte, 256)
	n, _ := BuildTCPv4(buf, [4]byte{1, 2, 3, 4}, [4]byte{5, 6, 7, 8}, 10, 20, 0, TCPAck, 50)
	for cut := 0; cut < n; cut++ {
		// Any prefix must decode cleanly or error, never panic.
		p.DecodePacket(buf[:cut])
	}
}

func BenchmarkDecodeTCPv4(b *testing.B) {
	buf := make([]byte, 2048)
	n, _ := BuildTCPv4(buf, [4]byte{10, 0, 0, 5}, [4]byte{93, 184, 216, 34}, 40000, 443, 100, TCPAck, 1200)
	p := NewParser()
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.DecodePacket(buf[:n]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildTCPv4(b *testing.B) {
	buf := make([]byte, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTCPv4(buf, [4]byte{10, 0, 0, 5}, [4]byte{93, 184, 216, 34}, 40000, 443, uint32(i), TCPAck, 1200); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSnapDecode(t *testing.T) {
	buf := make([]byte, 4096)
	n, err := BuildTCPv4(buf, [4]byte{10, 0, 0, 7}, [4]byte{1, 2, 3, 4}, 1111, 443, 5, TCPAck, 3000)
	if err != nil {
		t.Fatal(err)
	}
	snapped := Snap(buf[:n], 64)
	if len(snapped) != 64 {
		t.Fatalf("snapped to %d", len(snapped))
	}
	p := NewParser()
	p.Snap = true
	d, err := p.DecodePacket(snapped)
	if err != nil {
		t.Fatal(err)
	}
	if d.WireLen != n {
		t.Errorf("WireLen = %d, want %d", d.WireLen, n)
	}
	if d.Tuple.PortA != 1111 || d.Tuple.PortB != 443 {
		t.Errorf("tuple = %+v", d.Tuple)
	}
	if len(d.Payload) != 64-40 {
		t.Errorf("captured payload = %d", len(d.Payload))
	}
	// Without Snap, a truncated packet must be rejected, not mis-sized.
	strict := NewParser()
	if _, err := strict.DecodePacket(snapped); err == nil {
		t.Error("strict parser accepted truncated packet")
	}
}

func TestSnapDecodeUDP(t *testing.T) {
	buf := make([]byte, 4096)
	n, err := BuildUDPv4(buf, [4]byte{10, 0, 0, 7}, [4]byte{8, 8, 8, 8}, 5353, 53, 2000)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser()
	p.Snap = true
	d, err := p.DecodePacket(Snap(buf[:n], 48))
	if err != nil {
		t.Fatal(err)
	}
	if d.WireLen != n || d.Transport != LayerTypeUDP || d.Tuple.PortB != 53 {
		t.Errorf("snap UDP: wire=%d transport=%v tuple=%+v", d.WireLen, d.Transport, d.Tuple)
	}
}

func TestSnapFullPacketStillVerified(t *testing.T) {
	// A snap-mode parser must still fully verify packets that are complete.
	buf := make([]byte, 256)
	n, _ := BuildTCPv4(buf, [4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}, 1, 2, 0, TCPAck, 20)
	p := NewParser()
	p.Snap = true
	if _, err := p.DecodePacket(buf[:n]); err != nil {
		t.Fatalf("full packet: %v", err)
	}
	buf[n-1] ^= 1
	if _, err := p.DecodePacket(buf[:n]); err != ErrBadChecksum {
		t.Errorf("corrupt full packet in snap mode: %v", err)
	}
}

func TestSnapTooShortForHeaders(t *testing.T) {
	buf := make([]byte, 256)
	n, _ := BuildTCPv4(buf, [4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}, 1, 2, 0, TCPAck, 100)
	p := NewParser()
	p.Snap = true
	// 30 bytes: IP header complete, TCP header truncated.
	if _, err := p.DecodePacket(Snap(buf[:n], 30)); err != ErrTruncated {
		t.Errorf("truncated transport header: %v", err)
	}
}

func TestSnapHelper(t *testing.T) {
	pkt := []byte{1, 2, 3, 4}
	if got := Snap(pkt, 0); len(got) != 4 {
		t.Error("snaplen 0 means no truncation")
	}
	if got := Snap(pkt, 10); len(got) != 4 {
		t.Error("snaplen beyond packet is identity")
	}
	if got := Snap(pkt, 2); len(got) != 2 {
		t.Error("snap failed")
	}
}

func TestBuildTCPv4SnappedMatchesFull(t *testing.T) {
	// The snapped builder must produce byte-identical output to the full
	// builder over the captured prefix, including a checksum that verifies
	// when the packet is small enough to be complete.
	full := make([]byte, 65536)
	snap := make([]byte, 65536)
	for _, plen := range []int{0, 1, 56, 1000, 60000} {
		n, err := BuildTCPv4(full, [4]byte{10, 1, 2, 3}, [4]byte{23, 4, 5, 6}, 40000, 443, 77, TCPAck, plen)
		if err != nil {
			t.Fatal(err)
		}
		stored, wire, err := BuildTCPv4Snapped(snap, [4]byte{10, 1, 2, 3}, [4]byte{23, 4, 5, 6}, 40000, 443, 77, TCPAck, plen, 96)
		if err != nil {
			t.Fatal(err)
		}
		if wire != n {
			t.Fatalf("plen %d: wire %d != full %d", plen, wire, n)
		}
		// The full builder uses window 65535 too? No - it uses the TCP
		// struct default from BuildTCPv4 (65535). Compare prefixes.
		if !bytes.Equal(full[:stored], snap[:stored]) {
			t.Errorf("plen %d: stored bytes differ from full build", plen)
		}
	}
}

func TestBuildTCPv4SnappedDecodes(t *testing.T) {
	buf := make([]byte, 4096)
	stored, wire, err := BuildTCPv4Snapped(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 0, 0, 1}, 5555, 80, 0, TCPPsh|TCPAck, 50000, 96)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 96 || wire != 50040 {
		t.Fatalf("stored=%d wire=%d", stored, wire)
	}
	p := NewParser()
	p.Snap = true
	d, err := p.DecodePacket(buf[:stored])
	if err != nil {
		t.Fatal(err)
	}
	if d.WireLen != 50040 || d.Tuple.PortA != 5555 {
		t.Errorf("decoded wire=%d tuple=%+v", d.WireLen, d.Tuple)
	}
	// A small packet is complete and must checksum-verify strictly.
	stored, wire, err = BuildTCPv4Snapped(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 0, 0, 1}, 5555, 80, 0, TCPAck, 20, 96)
	if err != nil {
		t.Fatal(err)
	}
	if stored != wire {
		t.Fatalf("small packet should be complete: %d vs %d", stored, wire)
	}
	strict := NewParser()
	if _, err := strict.DecodePacket(buf[:stored]); err != nil {
		t.Errorf("small snapped packet failed strict decode: %v", err)
	}
}

func TestBuildTCPv4SnappedTooBig(t *testing.T) {
	buf := make([]byte, 4096)
	if _, _, err := BuildTCPv4Snapped(buf, [4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}, 1, 2, 0, TCPAck, 70000, 96); err != ErrBadHeader {
		t.Errorf("oversized payload: %v", err)
	}
	if _, _, err := BuildTCPv4Snapped(buf[:10], [4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}, 1, 2, 0, TCPAck, 100, 96); err != ErrTruncated {
		t.Errorf("small buffer: %v", err)
	}
}

func TestParserIPv6TCP(t *testing.T) {
	var src, dst [16]byte
	src[0], dst[0] = 0x20, 0x20
	src[15], dst[15] = 1, 2
	ip := IPv6{NextHeader: IPProtoTCP, HopLimit: 64, SrcIP: src, DstIP: dst}
	tcp := TCP{SrcPort: 1234, DstPort: 443, Flags: TCPAck, Window: 1000}
	seg := make([]byte, 256)
	segLen, err := tcp.SerializeTo(seg, []byte("payload"), &ip)
	if err != nil {
		t.Fatal(err)
	}
	pkt := make([]byte, 512)
	n, err := ip.SerializeTo(pkt, seg[:segLen])
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser()
	d, err := p.DecodePacket(pkt[:n])
	if err != nil {
		t.Fatal(err)
	}
	if d.Network != LayerTypeIPv6 || d.Transport != LayerTypeTCP {
		t.Errorf("layers = %v/%v", d.Network, d.Transport)
	}
	if d.WireLen != n || string(d.Payload) != "payload" {
		t.Errorf("wire=%d payload=%q", d.WireLen, d.Payload)
	}
	if d.Tuple.AddrA.Type() != EndpointIPv6 {
		t.Errorf("addr family = %v", d.Tuple.AddrA.Type())
	}
}

func TestParserIPv6UDP(t *testing.T) {
	var src, dst [16]byte
	src[15], dst[15] = 3, 4
	ip := IPv6{NextHeader: IPProtoUDP, HopLimit: 64, SrcIP: src, DstIP: dst}
	udp := UDP{SrcPort: 5353, DstPort: 53}
	seg := make([]byte, 64)
	segLen, err := udp.SerializeTo(seg, []byte{1, 2, 3}, &ip)
	if err != nil {
		t.Fatal(err)
	}
	pkt := make([]byte, 128)
	n, err := ip.SerializeTo(pkt, seg[:segLen])
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser()
	d, err := p.DecodePacket(pkt[:n])
	if err != nil {
		t.Fatal(err)
	}
	if d.Transport != LayerTypeUDP || d.Tuple.PortA != 5353 || len(d.Payload) != 3 {
		t.Errorf("decoded %+v payload=%d", d.Tuple, len(d.Payload))
	}
}

func TestLayerTypeStrings(t *testing.T) {
	for lt, want := range map[LayerType]string{
		LayerTypeIPv4: "IPv4", LayerTypeIPv6: "IPv6", LayerTypeTCP: "TCP",
		LayerTypeUDP: "UDP", LayerTypePayload: "Payload", LayerTypeZero: "Unknown",
	} {
		if lt.String() != want {
			t.Errorf("%d.String() = %q, want %q", lt, lt.String(), want)
		}
	}
}

func TestFiveTupleString(t *testing.T) {
	a := NewEndpoint(EndpointIPv4, []byte{10, 0, 0, 1})
	b := NewEndpoint(EndpointIPv4, []byte{8, 8, 8, 8})
	ft := FiveTuple{AddrA: a, AddrB: b, PortA: 1000, PortB: 53, Proto: IPProtoUDP}
	if got := ft.String(); got != "10.0.0.1:1000<->8.8.8.8:53/17" {
		t.Errorf("tuple string = %q", got)
	}
}

func TestBuildTCPv4SnappedPayload(t *testing.T) {
	buf := make([]byte, 4096)
	prefix := []byte("GET /poll HTTP/1.1\r\nHost: api.example.com\r\n\r\n")
	// Complete packet (payload = prefix only): must strictly verify.
	stored, wire, err := BuildTCPv4SnappedPayload(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 0, 0, 9},
		40001, 80, 7, TCPPsh|TCPAck, prefix, len(prefix), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if stored != wire || wire != 40+len(prefix) {
		t.Fatalf("stored=%d wire=%d", stored, wire)
	}
	strict := NewParser()
	d, err := strict.DecodePacket(buf[:stored])
	if err != nil {
		t.Fatalf("strict decode: %v", err)
	}
	if string(d.Payload) != string(prefix) {
		t.Errorf("payload = %q", d.Payload)
	}

	// Odd-length prefix: checksum composition must still hold.
	odd := []byte("GET / HTTP/1.1\r\nHost: x.y\r\n")
	if len(odd)%2 == 0 {
		odd = append(odd, '\n')
	}
	stored, wire, err = BuildTCPv4SnappedPayload(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 0, 0, 9},
		40002, 80, 0, TCPAck, odd, len(odd), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.DecodePacket(buf[:stored]); err != nil {
		t.Fatalf("odd prefix decode: %v", err)
	}

	// Large payload snapped: prefix is always fully captured and the wire
	// length preserved; checksum covers prefix + implicit zeros.
	stored, wire, err = BuildTCPv4SnappedPayload(buf, [4]byte{10, 0, 0, 1}, [4]byte{23, 0, 0, 9},
		40003, 80, 0, TCPAck, prefix, 50000, 96)
	if err != nil {
		t.Fatal(err)
	}
	if wire != 40+50000 {
		t.Fatalf("wire = %d", wire)
	}
	if stored < 40+len(prefix) {
		t.Fatalf("prefix truncated: stored=%d", stored)
	}
	snap := NewParser()
	snap.Snap = true
	d, err = snap.DecodePacket(buf[:stored])
	if err != nil {
		t.Fatal(err)
	}
	if d.WireLen != wire {
		t.Errorf("wirelen = %d", d.WireLen)
	}
	if string(d.Payload[:len(prefix)]) != string(prefix) {
		t.Errorf("captured prefix = %q", d.Payload[:len(prefix)])
	}

	// Zero-fill equivalence: with an empty prefix the output matches
	// BuildTCPv4Snapped byte for byte.
	a := make([]byte, 4096)
	bb := make([]byte, 4096)
	sa, wa, _ := BuildTCPv4SnappedPayload(a, [4]byte{1, 2, 3, 4}, [4]byte{5, 6, 7, 8}, 1, 2, 3, TCPAck, nil, 500, 96)
	sb, wb, _ := BuildTCPv4Snapped(bb, [4]byte{1, 2, 3, 4}, [4]byte{5, 6, 7, 8}, 1, 2, 3, TCPAck, 500, 96)
	if sa != sb || wa != wb || !bytes.Equal(a[:sa], bb[:sb]) {
		t.Error("empty-prefix build differs from zero build")
	}
}

func TestCanonicalIdempotentProperty(t *testing.T) {
	src := rng.New(44)
	f := func(pa, pb uint16, proto uint8) bool {
		mk := func() Endpoint {
			raw := make([]byte, 4)
			for i := range raw {
				raw[i] = byte(src.Intn(256))
			}
			return NewEndpoint(EndpointIPv4, raw)
		}
		ft := FiveTuple{AddrA: mk(), AddrB: mk(), PortA: pa, PortB: pb, Proto: proto}
		c := ft.Canonical()
		if c.Canonical() != c {
			return false // idempotence
		}
		rev := FiveTuple{AddrA: ft.AddrB, AddrB: ft.AddrA, PortA: ft.PortB, PortB: ft.PortA, Proto: proto}
		return rev.Canonical() == c // direction symmetry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
