// Package netparse is a small, allocation-free packet layer codec in the
// style of gopacket: packets are decoded layer by layer into preallocated
// structs, and flows are identified by hashable Endpoint/Flow values.
//
// The synthetic trace generator serialises real IPv4/IPv6 + TCP/UDP headers
// with this package, and the analysis pipeline decodes those bytes back —
// the analyzer therefore exercises a genuine wire-format path rather than
// passing structs around in memory.
package netparse

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// LayerType identifies a protocol layer.
type LayerType uint8

// Known layer types.
const (
	LayerTypeZero LayerType = iota
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeTCP
	LayerTypeUDP
	LayerTypePayload
)

// String returns the conventional protocol name.
func (t LayerType) String() string {
	switch t {
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeIPv6:
		return "IPv6"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypePayload:
		return "Payload"
	default:
		return "Unknown"
	}
}

// Decoding errors.
var (
	ErrTruncated   = errors.New("netparse: packet truncated")
	ErrBadVersion  = errors.New("netparse: unexpected IP version")
	ErrBadHeader   = errors.New("netparse: malformed header")
	ErrBadChecksum = errors.New("netparse: checksum mismatch")
	ErrUnsupported = errors.New("netparse: unsupported next protocol")
)

// IP protocol numbers used by this codec.
const (
	IPProtoTCP = 6
	IPProtoUDP = 17
)

// EndpointType distinguishes address families within Endpoint values.
type EndpointType uint8

// Endpoint address families.
const (
	EndpointInvalid EndpointType = iota
	EndpointIPv4
	EndpointIPv6
	EndpointPort
)

// Endpoint is a hashable network address: a fixed-size array plus length,
// usable as a map key (the same trick gopacket uses to avoid allocating).
type Endpoint struct {
	typ EndpointType
	len uint8
	raw [16]byte
}

// NewEndpoint builds an Endpoint from raw bytes. Raw longer than 16 bytes
// is rejected by returning the invalid endpoint.
func NewEndpoint(typ EndpointType, raw []byte) Endpoint {
	var e Endpoint
	if len(raw) > len(e.raw) {
		return Endpoint{}
	}
	e.typ = typ
	e.len = uint8(len(raw))
	copy(e.raw[:], raw)
	return e
}

// Type returns the endpoint's address family.
func (e Endpoint) Type() EndpointType { return e.typ }

// Raw returns a copy of the endpoint's address bytes.
func (e Endpoint) Raw() []byte {
	out := make([]byte, e.len)
	copy(out, e.raw[:e.len])
	return out
}

// String renders the endpoint in conventional notation.
func (e Endpoint) String() string {
	switch e.typ {
	case EndpointIPv4:
		if e.len == 4 {
			return fmt.Sprintf("%d.%d.%d.%d", e.raw[0], e.raw[1], e.raw[2], e.raw[3])
		}
	case EndpointIPv6:
		if e.len == 16 {
			return fmt.Sprintf("%x:%x:%x:%x:%x:%x:%x:%x",
				binary.BigEndian.Uint16(e.raw[0:]), binary.BigEndian.Uint16(e.raw[2:]),
				binary.BigEndian.Uint16(e.raw[4:]), binary.BigEndian.Uint16(e.raw[6:]),
				binary.BigEndian.Uint16(e.raw[8:]), binary.BigEndian.Uint16(e.raw[10:]),
				binary.BigEndian.Uint16(e.raw[12:]), binary.BigEndian.Uint16(e.raw[14:]))
		}
	case EndpointPort:
		if e.len == 2 {
			return fmt.Sprintf("%d", binary.BigEndian.Uint16(e.raw[:2]))
		}
	}
	return "invalid"
}

// Flow is an ordered (src, dst) pair of Endpoints; like gopacket's Flow it
// is hashable and comparable, so it can key maps directly.
type Flow struct {
	src, dst Endpoint
}

// NewFlow builds a Flow from src to dst.
func NewFlow(src, dst Endpoint) Flow { return Flow{src: src, dst: dst} }

// Src returns the flow's source endpoint.
func (f Flow) Src() Endpoint { return f.src }

// Dst returns the flow's destination endpoint.
func (f Flow) Dst() Endpoint { return f.dst }

// Reverse returns the flow with src and dst swapped.
func (f Flow) Reverse() Flow { return Flow{src: f.dst, dst: f.src} }

// String renders "src->dst".
func (f Flow) String() string { return f.src.String() + "->" + f.dst.String() }

// FiveTuple is the canonical bidirectional flow key: the (addr, port)
// pairs are ordered so that both directions of a connection map to the
// same key, plus the transport protocol.
type FiveTuple struct {
	AddrA, AddrB Endpoint
	PortA, PortB uint16
	Proto        uint8
}

// Canonical returns the five-tuple with (AddrA,PortA) <= (AddrB,PortB) in
// byte order, so both directions of a connection compare equal.
func (ft FiveTuple) Canonical() FiveTuple {
	if lessEndpointPort(ft.AddrB, ft.PortB, ft.AddrA, ft.PortA) {
		return FiveTuple{AddrA: ft.AddrB, AddrB: ft.AddrA, PortA: ft.PortB, PortB: ft.PortA, Proto: ft.Proto}
	}
	return ft
}

func lessEndpointPort(a Endpoint, ap uint16, b Endpoint, bp uint16) bool {
	if a.typ != b.typ {
		return a.typ < b.typ
	}
	n := int(a.len)
	if int(b.len) < n {
		n = int(b.len)
	}
	for i := 0; i < n; i++ {
		if a.raw[i] != b.raw[i] {
			return a.raw[i] < b.raw[i]
		}
	}
	if a.len != b.len {
		return a.len < b.len
	}
	return ap < bp
}

// String renders the canonical tuple.
func (ft FiveTuple) String() string {
	return fmt.Sprintf("%s:%d<->%s:%d/%d", ft.AddrA, ft.PortA, ft.AddrB, ft.PortB, ft.Proto)
}

// FastHash returns a 64-bit non-cryptographic hash of the canonical tuple,
// symmetric across directions (FNV-1a over canonical ordering).
func (ft FiveTuple) FastHash() uint64 {
	c := ft.Canonical()
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	mix(byte(c.AddrA.typ))
	for i := uint8(0); i < c.AddrA.len; i++ {
		mix(c.AddrA.raw[i])
	}
	mix(byte(c.PortA >> 8))
	mix(byte(c.PortA))
	mix(byte(c.AddrB.typ))
	for i := uint8(0); i < c.AddrB.len; i++ {
		mix(c.AddrB.raw[i])
	}
	mix(byte(c.PortB >> 8))
	mix(byte(c.PortB))
	mix(c.Proto)
	return h
}

// checksum computes the 16-bit one's-complement internet checksum over data
// with an initial partial sum (for pseudo-headers).
func checksum(data []byte, initial uint32) uint16 {
	sum := initial
	for len(data) >= 2 {
		sum += uint32(data[0])<<8 | uint32(data[1])
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}
