package netparse

import "encoding/binary"

// Decoded is the result of parsing one packet with Parser: which layers were
// present, the five-tuple, and payload length. The struct is reused across
// DecodePacket calls, in the DecodingLayerParser style — callers must copy
// anything they want to keep.
type Decoded struct {
	Network   LayerType // LayerTypeIPv4 or LayerTypeIPv6
	Transport LayerType // LayerTypeTCP or LayerTypeUDP
	IPv4      IPv4
	IPv6      IPv6
	TCP       TCP
	UDP       UDP
	Tuple     FiveTuple
	Payload   []byte // sub-slice of the input packet; valid until next decode
	WireLen   int    // total bytes consumed from the input
}

// Parser decodes packets into preallocated layers without per-packet
// allocation. A Parser is not safe for concurrent use; create one per
// goroutine.
type Parser struct {
	// VerifyChecksums controls whether IP/TCP/UDP checksums are validated.
	// The trace analyzer enables it; fuzz-style tests may disable it.
	VerifyChecksums bool
	// Snap accepts snap-length-truncated captures: packets whose stored
	// bytes are shorter than the IP header's total length decode normally
	// (headers must be complete), Payload holds only the captured bytes,
	// WireLen reports the true on-wire size, and checksums are skipped for
	// truncated packets (they cannot be verified without the full body).
	Snap bool
	dec  Decoded
}

// NewParser returns a Parser with checksum verification enabled.
func NewParser() *Parser { return &Parser{VerifyChecksums: true} }

// DecodePacket parses a raw IP packet (IPv4 or IPv6, selected by the
// version nibble) down to its transport layer. The returned Decoded is
// owned by the Parser and overwritten by the next call.
func (p *Parser) DecodePacket(data []byte) (*Decoded, error) {
	d := &p.dec
	*d = Decoded{}
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	if p.Snap && data[0]>>4 == 4 && len(data) >= 20 {
		if total := int(binary.BigEndian.Uint16(data[2:4])); total > len(data) {
			return p.decodeSnappedV4(data)
		}
	}
	var (
		transport []byte
		err       error
		proto     uint8
		net       pseudoHeader
	)
	switch data[0] >> 4 {
	case 4:
		transport, err = d.IPv4.DecodeFromBytes(data)
		if err != nil {
			return nil, err
		}
		d.Network = LayerTypeIPv4
		proto = d.IPv4.Protocol
		d.Tuple.AddrA = d.IPv4.SrcEndpoint()
		d.Tuple.AddrB = d.IPv4.DstEndpoint()
		d.WireLen = int(d.IPv4.Length)
		if p.VerifyChecksums {
			net = &d.IPv4
		}
	case 6:
		transport, err = d.IPv6.DecodeFromBytes(data)
		if err != nil {
			return nil, err
		}
		d.Network = LayerTypeIPv6
		proto = d.IPv6.NextHeader
		d.Tuple.AddrA = d.IPv6.SrcEndpoint()
		d.Tuple.AddrB = d.IPv6.DstEndpoint()
		d.WireLen = 40 + int(d.IPv6.PayloadLen)
		if p.VerifyChecksums {
			net = &d.IPv6
		}
	default:
		return nil, ErrBadVersion
	}
	d.Tuple.Proto = proto
	switch proto {
	case IPProtoTCP:
		d.Payload, err = d.TCP.DecodeFromBytes(transport, net)
		if err != nil {
			return nil, err
		}
		d.Transport = LayerTypeTCP
		d.Tuple.PortA = d.TCP.SrcPort
		d.Tuple.PortB = d.TCP.DstPort
	case IPProtoUDP:
		d.Payload, err = d.UDP.DecodeFromBytes(transport, net)
		if err != nil {
			return nil, err
		}
		d.Transport = LayerTypeUDP
		d.Tuple.PortA = d.UDP.SrcPort
		d.Tuple.PortB = d.UDP.DstPort
	default:
		return nil, ErrUnsupported
	}
	return d, nil
}

// decodeSnappedV4 handles an IPv4 packet whose capture was cut short of the
// wire length by a snap limit. All headers must be present; checksums are
// not verified (the body they cover is missing).
func (p *Parser) decodeSnappedV4(data []byte) (*Decoded, error) {
	d := &p.dec
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return nil, ErrBadHeader
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < ihl {
		return nil, ErrBadHeader
	}
	ip := &d.IPv4
	ip.TOS = data[1]
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ip.TTL = data[8]
	ip.Protocol = data[9]
	copy(ip.SrcIP[:], data[12:16])
	copy(ip.DstIP[:], data[16:20])
	ip.Length = uint16(total)
	ip.headerLen = ihl
	ip.payloadLen = total - ihl
	d.Network = LayerTypeIPv4
	d.WireLen = total
	d.Tuple.AddrA = ip.SrcEndpoint()
	d.Tuple.AddrB = ip.DstEndpoint()
	d.Tuple.Proto = ip.Protocol
	seg := data[ihl:]
	switch ip.Protocol {
	case IPProtoTCP:
		if len(seg) < 20 {
			return nil, ErrTruncated
		}
		t := &d.TCP
		t.SrcPort = binary.BigEndian.Uint16(seg[0:2])
		t.DstPort = binary.BigEndian.Uint16(seg[2:4])
		t.Seq = binary.BigEndian.Uint32(seg[4:8])
		t.Ack = binary.BigEndian.Uint32(seg[8:12])
		off := int(seg[12]>>4) * 4
		if off < 20 {
			return nil, ErrBadHeader
		}
		t.Flags = seg[13] & 0x1f
		t.Window = binary.BigEndian.Uint16(seg[14:16])
		t.headerLen = off
		d.Transport = LayerTypeTCP
		d.Tuple.PortA, d.Tuple.PortB = t.SrcPort, t.DstPort
		if len(seg) > off {
			d.Payload = seg[off:]
		}
	case IPProtoUDP:
		if len(seg) < 8 {
			return nil, ErrTruncated
		}
		u := &d.UDP
		u.SrcPort = binary.BigEndian.Uint16(seg[0:2])
		u.DstPort = binary.BigEndian.Uint16(seg[2:4])
		u.Length = binary.BigEndian.Uint16(seg[4:6])
		d.Transport = LayerTypeUDP
		d.Tuple.PortA, d.Tuple.PortB = u.SrcPort, u.DstPort
		if len(seg) > 8 {
			d.Payload = seg[8:]
		}
	default:
		return nil, ErrUnsupported
	}
	return d, nil
}

// Snap truncates a serialised packet to at most snaplen captured bytes,
// mirroring tcpdump's -s flag. The returned slice aliases pkt.
func Snap(pkt []byte, snaplen int) []byte {
	if snaplen <= 0 || len(pkt) <= snaplen {
		return pkt
	}
	return pkt[:snaplen]
}

// BuildTCPv4 serialises an IPv4+TCP packet with the given addressing and a
// zero-filled payload of payloadLen bytes into buf, returning the bytes
// written. buf must hold at least 40+payloadLen bytes.
func BuildTCPv4(buf []byte, src, dst [4]byte, srcPort, dstPort uint16, seq uint32, flags uint8, payloadLen int) (int, error) {
	total := 40 + payloadLen
	if len(buf) < total {
		return 0, ErrTruncated
	}
	ip := IPv4{TTL: 64, Protocol: IPProtoTCP, SrcIP: src, DstIP: dst}
	tcp := TCP{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Flags: flags, Window: 65535}
	// Serialise the transport segment directly into its final position so
	// the checksum covers the real payload bytes.
	seg := buf[20:total]
	if _, err := tcp.SerializeTo(seg, zeroPayload(buf[40:total]), &ip); err != nil {
		return 0, err
	}
	return serializeIPv4WithSegment(buf, &ip, total-20)
}

// BuildUDPv4 serialises an IPv4+UDP packet analogous to BuildTCPv4.
func BuildUDPv4(buf []byte, src, dst [4]byte, srcPort, dstPort uint16, payloadLen int) (int, error) {
	total := 28 + payloadLen
	if len(buf) < total {
		return 0, ErrTruncated
	}
	ip := IPv4{TTL: 64, Protocol: IPProtoUDP, SrcIP: src, DstIP: dst}
	udp := UDP{SrcPort: srcPort, DstPort: dstPort}
	seg := buf[20:total]
	if _, err := udp.SerializeTo(seg, zeroPayload(buf[28:total]), &ip); err != nil {
		return 0, err
	}
	return serializeIPv4WithSegment(buf, &ip, total-20)
}

// serializeIPv4WithSegment writes the IPv4 header into buf[:20] assuming the
// transport segment of segLen bytes is already in place at buf[20:].
func serializeIPv4WithSegment(buf []byte, ip *IPv4, segLen int) (int, error) {
	total := 20 + segLen
	if total > 0xffff {
		return 0, ErrBadHeader
	}
	var binb = buf[:20]
	binb[0] = 0x45
	binb[1] = ip.TOS
	binb[2] = byte(total >> 8)
	binb[3] = byte(total)
	binb[4] = byte(ip.ID >> 8)
	binb[5] = byte(ip.ID)
	binb[6], binb[7] = 0x40, 0x00
	binb[8] = ip.TTL
	binb[9] = ip.Protocol
	binb[10], binb[11] = 0, 0
	copy(binb[12:16], ip.SrcIP[:])
	copy(binb[16:20], ip.DstIP[:])
	cs := checksum(binb, 0)
	binb[10] = byte(cs >> 8)
	binb[11] = byte(cs)
	ip.Length = uint16(total)
	ip.headerLen = 20
	ip.payloadLen = segLen
	return total, nil
}

// BuildTCPv4Snapped serialises an IPv4+TCP packet with a zero payload of
// payloadLen bytes, storing at most snaplen captured bytes (like a capture
// taken with tcpdump -s). The IP total-length field carries the true wire
// size; the TCP checksum is valid for the full (all-zero) payload because
// zero bytes contribute nothing to the one's-complement sum. It returns the
// stored byte count and the wire length. Runtime is O(snaplen), which is
// what makes generating multi-month traces practical.
func BuildTCPv4Snapped(buf []byte, src, dst [4]byte, srcPort, dstPort uint16,
	seq uint32, flags uint8, payloadLen, snaplen int) (stored, wire int, err error) {
	wire = 40 + payloadLen
	if wire > 0xffff {
		return 0, 0, ErrBadHeader
	}
	stored = wire
	if snaplen > 0 && stored > snaplen {
		stored = snaplen
	}
	if stored < 40 {
		stored = 40 // headers are always captured in full
	}
	if len(buf) < stored {
		return 0, 0, ErrTruncated
	}
	ip := IPv4{TTL: 64, Protocol: IPProtoTCP, SrcIP: src, DstIP: dst}

	// TCP header at buf[20:40].
	t := buf[20:40]
	t[0], t[1] = byte(srcPort>>8), byte(srcPort)
	t[2], t[3] = byte(dstPort>>8), byte(dstPort)
	t[4], t[5], t[6], t[7] = byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq)
	t[8], t[9], t[10], t[11] = 0, 0, 0, 0
	t[12] = 5 << 4
	t[13] = flags
	t[14], t[15] = 0xff, 0xff // window 65535
	t[16], t[17] = 0, 0
	t[18], t[19] = 0, 0
	cs := checksum(t, ip.pseudoHeaderSum(IPProtoTCP, 20+payloadLen))
	t[16], t[17] = byte(cs>>8), byte(cs)

	// Captured payload slice is zeroed (matches the checksum above).
	for i := 40; i < stored; i++ {
		buf[i] = 0
	}
	if _, err := serializeIPv4WithSegment(buf, &ip, 20+payloadLen); err != nil {
		return 0, 0, err
	}
	return stored, wire, nil
}

// BuildTCPv4SnappedPayload is BuildTCPv4Snapped with an application-layer
// prefix: the payload consists of prefix followed by zeros up to
// payloadLen bytes. The TCP checksum covers the real prefix bytes (the
// zero remainder contributes nothing), so complete packets still verify.
// Runtime is O(snaplen + len(prefix)).
func BuildTCPv4SnappedPayload(buf []byte, src, dst [4]byte, srcPort, dstPort uint16,
	seq uint32, flags uint8, prefix []byte, payloadLen, snaplen int) (stored, wire int, err error) {
	if len(prefix) > payloadLen {
		payloadLen = len(prefix)
	}
	wire = 40 + payloadLen
	if wire > 0xffff {
		return 0, 0, ErrBadHeader
	}
	stored = wire
	if snaplen > 0 && stored > snaplen {
		stored = snaplen
	}
	if stored < 40 {
		stored = 40
	}
	if min := 40 + len(prefix); stored < min && wire >= min {
		stored = min // always capture the full application prefix
	}
	if len(buf) < stored {
		return 0, 0, ErrTruncated
	}
	ip := IPv4{TTL: 64, Protocol: IPProtoTCP, SrcIP: src, DstIP: dst}

	t := buf[20:40]
	t[0], t[1] = byte(srcPort>>8), byte(srcPort)
	t[2], t[3] = byte(dstPort>>8), byte(dstPort)
	t[4], t[5], t[6], t[7] = byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq)
	t[8], t[9], t[10], t[11] = 0, 0, 0, 0
	t[12] = 5 << 4
	t[13] = flags
	t[14], t[15] = 0xff, 0xff
	t[16], t[17] = 0, 0
	t[18], t[19] = 0, 0
	copy(buf[40:], prefix)
	for i := 40 + len(prefix); i < stored; i++ {
		buf[i] = 0
	}
	sum := ip.pseudoHeaderSum(IPProtoTCP, 20+payloadLen)
	sum += uint32(0xffff ^ checksum(t, 0)) // fold header words
	cs := checksum(prefix, sum)
	t[16], t[17] = byte(cs>>8), byte(cs)
	if _, err := serializeIPv4WithSegment(buf, &ip, 20+payloadLen); err != nil {
		return 0, 0, err
	}
	return stored, wire, nil
}

// zeroPayload zeroes b and returns it, so builders produce deterministic
// packet bytes regardless of buffer reuse.
func zeroPayload(b []byte) []byte {
	for i := range b {
		b[i] = 0
	}
	return b
}
