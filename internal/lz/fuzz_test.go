package lz

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip compresses arbitrary input and requires exact recovery.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello hello hello hello"))
	f.Add(bytes.Repeat([]byte{1, 2, 3}, 500))
	f.Fuzz(func(t *testing.T, src []byte) {
		var a Appender
		comp := a.Compress(nil, src)
		dst := make([]byte, len(src))
		if err := Decompress(dst, comp); err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecompress feeds arbitrary streams to the decoder with a range of
// declared sizes; it must either fill dst exactly or fail with
// ErrCorrupt — never panic and never write outside dst.
func FuzzDecompress(f *testing.F) {
	var a Appender
	f.Add([]byte{0x00}, uint16(0))
	f.Add(a.Compress(nil, bytes.Repeat([]byte("abc"), 100)), uint16(300))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint16(512))
	f.Fuzz(func(t *testing.T, src []byte, ulen uint16) {
		dst := make([]byte, int(ulen))
		if err := Decompress(dst, src); err != nil && err != ErrCorrupt {
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}
