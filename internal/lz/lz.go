// Package lz implements a dependency-free byte-oriented LZ77 codec used
// by the METR-3 columnar trace container. The format is LZ4-flavoured:
// a stream of sequences, each a token byte whose high nibble is the
// literal length and low nibble the match length minus minMatch, with
// 255-run extension bytes for either field, the literals themselves,
// and a 2-byte little-endian match offset. The final sequence carries
// literals only (no offset). Decompression writes into a caller-sized
// destination and fails closed: any read or write that would leave the
// declared bounds returns ErrCorrupt, so a hostile block can never make
// the decoder allocate or write beyond what the container header
// already promised.
package lz

import (
	"encoding/binary"
	"errors"
)

// ErrCorrupt is returned when a compressed block is malformed: a
// truncated sequence, an offset pointing before the start of output, or
// a declared output size that the stream does not exactly produce.
var ErrCorrupt = errors.New("lz: corrupt block")

const (
	minMatch = 4      // shortest encodable match
	maxDist  = 0xffff // 2-byte offsets
	hashBits = 15
	hashLen  = 1 << hashBits
)

// hash4 maps a 4-byte sequence to a table slot. The multiplier is the
// usual Knuth/Fibonacci constant truncated to 32 bits.
func hash4(v uint32) uint32 {
	return (v * 2654435761) >> (32 - hashBits)
}

func load32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// Appender is the subset of compressor state that callers may reuse
// across blocks to keep the hash table allocation out of the hot path.
type Appender struct {
	table [hashLen]int32 // candidate position + 1; 0 = empty
}

// Compress appends the compressed form of src to dst and returns the
// extended slice. The same Appender must not be used concurrently.
//
//repolint:noalloc
func (a *Appender) Compress(dst, src []byte) []byte {
	for i := range a.table {
		a.table[i] = 0
	}
	n := len(src)
	if n == 0 {
		return dst
	}
	var (
		pos     int // next byte to examine
		litHead int // start of pending literal run
	)
	// Leave a 12-byte tail uncompressed so match extension below never
	// needs per-byte bounds checks near the end of the block.
	limit := n - 12
	for pos < limit {
		seq := load32(src, pos)
		slot := hash4(seq)
		cand := int(a.table[slot]) - 1
		a.table[slot] = int32(pos) + 1
		if cand < 0 || pos-cand > maxDist || load32(src, cand) != seq {
			pos++
			continue
		}
		// Extend the match forward.
		mlen := minMatch
		for pos+mlen < limit && src[cand+mlen] == src[pos+mlen] {
			mlen++
		}
		dst = appendSeq(dst, src[litHead:pos], pos-cand, mlen)
		// Seed the table inside the match so overlapping repeats are found.
		end := pos + mlen
		for p := pos + 1; p < end && p < limit; p += 2 {
			a.table[hash4(load32(src, p))] = int32(p) + 1
		}
		pos = end
		litHead = pos
	}
	// Final literal-only sequence.
	return appendSeq(dst, src[litHead:], 0, 0)
}

// appendSeq encodes one sequence: token, length extensions, literals,
// and (when mlen > 0) the 2-byte offset. mlen == 0 marks the
// terminal literal-only sequence.
//
//repolint:noalloc
func appendSeq(dst, lits []byte, dist, mlen int) []byte {
	llen := len(lits)
	tok := byte(0)
	if llen < 15 {
		tok = byte(llen) << 4
	} else {
		tok = 15 << 4
	}
	if mlen > 0 {
		m := mlen - minMatch
		if m < 15 {
			tok |= byte(m)
		} else {
			tok |= 15
		}
	}
	dst = append(dst, tok)
	if llen >= 15 {
		dst = appendExt(dst, llen-15)
	}
	dst = append(dst, lits...)
	if mlen > 0 {
		dst = append(dst, byte(dist), byte(dist>>8))
		if m := mlen - minMatch; m >= 15 {
			dst = appendExt(dst, m-15)
		}
	}
	return dst
}

//repolint:noalloc
func appendExt(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// Decompress fills dst exactly from the compressed stream src. dst must
// be sized to the block's declared uncompressed length; any mismatch,
// truncation, or out-of-range offset returns ErrCorrupt. dst is the
// only buffer written, so decompression cost is bounded by len(dst) +
// len(src) regardless of stream contents.
//
//repolint:noalloc
func Decompress(dst, src []byte) error {
	if len(src) == 0 {
		if len(dst) != 0 {
			return ErrCorrupt
		}
		return nil
	}
	var d, s int
	for {
		if s >= len(src) {
			return ErrCorrupt
		}
		tok := src[s]
		s++
		llen := int(tok >> 4)
		if llen == 15 {
			var err error
			llen, s, err = readExt(src, s, llen)
			if err != nil {
				return err
			}
		}
		if llen > len(src)-s || llen > len(dst)-d {
			return ErrCorrupt
		}
		copy(dst[d:], src[s:s+llen])
		d += llen
		s += llen
		if s == len(src) {
			// Terminal sequence: token must not promise a match.
			if tok&0x0f != 0 || d != len(dst) {
				return ErrCorrupt
			}
			return nil
		}
		if len(src)-s < 2 {
			return ErrCorrupt
		}
		dist := int(src[s]) | int(src[s+1])<<8
		s += 2
		mlen := int(tok & 0x0f)
		if mlen == 15 {
			var err error
			mlen, s, err = readExt(src, s, mlen)
			if err != nil {
				return err
			}
		}
		mlen += minMatch
		if dist == 0 || dist > d || mlen > len(dst)-d {
			return ErrCorrupt
		}
		if dist >= mlen {
			// Non-overlapping match. Short matches dominate generic
			// data, so copy them with a pair of fixed-width loads and
			// stores (the second pair overlaps the first rather than
			// overshooting past d+mlen) instead of paying a memmove
			// call per match.
			m := d - dist
			switch {
			case mlen <= 8:
				x := binary.LittleEndian.Uint32(dst[m:])
				y := binary.LittleEndian.Uint32(dst[m+mlen-4:])
				binary.LittleEndian.PutUint32(dst[d:], x)
				binary.LittleEndian.PutUint32(dst[d+mlen-4:], y)
			case mlen <= 16:
				x := binary.LittleEndian.Uint64(dst[m:])
				y := binary.LittleEndian.Uint64(dst[m+mlen-8:])
				binary.LittleEndian.PutUint64(dst[d:], x)
				binary.LittleEndian.PutUint64(dst[d+mlen-8:], y)
			default:
				copy(dst[d:d+mlen], dst[m:])
			}
			d += mlen
		} else {
			// Overlapping match: a run with period dist.
			start := d - dist
			end := d + mlen
			switch {
			case end-start < 16:
				// Too short for any vector trick; a bounded byte loop
				// beats a memmove call.
				for d < end {
					dst[d] = dst[d-dist]
					d++
				}
			case dist <= 8:
				// Small period: seed one 8-byte pattern window, then
				// lay it down with 8-byte stores advanced by the
				// period (or by 8 when the period divides 8), each
				// phase-aligned to the run so overlapping stores write
				// identical bytes. Stores are bounded by end, so the
				// run never spills past the match even when dst is a
				// shared arena window.
				for d < start+8 {
					dst[d] = dst[d-dist]
					d++
				}
				v := binary.LittleEndian.Uint64(dst[start:])
				step := dist
				if 8%dist == 0 {
					step = 8
				}
				w := start + step
				for w+8 <= end {
					binary.LittleEndian.PutUint64(dst[w:], v)
					w += step
				}
				d = w - step + 8
				for d < end {
					dst[d] = dst[d-dist]
					d++
				}
			default:
				// Wide period: seed the window to a multiple of the
				// period, then replicate by doubling. Source [start:d]
				// ends exactly where the destination begins, so each
				// copy is non-overlapping and the window doubles per
				// pass while preserving the run's phase.
				if dist < 32 {
					seedEnd := start + (31/dist+1)*dist
					if seedEnd > end {
						seedEnd = end
					}
					for d < seedEnd {
						dst[d] = dst[d-dist]
						d++
					}
				}
				for d < end {
					d += copy(dst[d:end], dst[start:d])
				}
			}
		}
	}
}

// readExt accumulates 255-run extension bytes onto base.
//
//repolint:noalloc
func readExt(src []byte, s, base int) (int, int, error) {
	for {
		if s >= len(src) {
			return 0, 0, ErrCorrupt
		}
		b := src[s]
		s++
		base += int(b)
		if base < 0 { // overflow from a hostile run
			return 0, 0, ErrCorrupt
		}
		if b != 255 {
			return base, s, nil
		}
	}
}
