package lz

import (
	"bytes"
	"testing"

	"netenergy/internal/rng"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	var a Appender
	comp := a.Compress(nil, src)
	dst := make([]byte, len(src))
	if err := Decompress(dst, comp); err != nil {
		t.Fatalf("decompress (%d bytes -> %d): %v", len(src), len(comp), err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(src), len(dst))
	}
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, []byte{})
}

func TestRoundTripSmall(t *testing.T) {
	roundTrip(t, []byte("a"))
	roundTrip(t, []byte("hello world"))
	roundTrip(t, []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
}

func TestRoundTripRepetitive(t *testing.T) {
	var b bytes.Buffer
	for i := 0; i < 4000; i++ {
		b.WriteString("packet-flow-record-")
		b.WriteByte(byte(i % 7))
	}
	src := b.Bytes()
	var a Appender
	comp := a.Compress(nil, src)
	if len(comp) >= len(src)/4 {
		t.Fatalf("repetitive data barely compressed: %d -> %d", len(src), len(comp))
	}
	roundTrip(t, src)
}

func TestRoundTripIncompressible(t *testing.T) {
	r := rng.New(7)
	src := make([]byte, 64<<10)
	for i := range src {
		src[i] = byte(r.Intn(256))
	}
	roundTrip(t, src)
}

func TestRoundTripLongRuns(t *testing.T) {
	// Long literal runs (> 15+255) and long matches exercise the
	// 255-run extension encoding on both fields.
	r := rng.New(11)
	lit := make([]byte, 5000)
	for i := range lit {
		lit[i] = byte(r.Intn(256))
	}
	src := append(append([]byte{}, lit...), bytes.Repeat([]byte{0xAB}, 9000)...)
	src = append(src, lit...)
	roundTrip(t, src)
}

func TestRoundTripRandomizedSeeds(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		r := rng.New(seed)
		n := r.Intn(20000)
		src := make([]byte, n)
		mode := r.Intn(3)
		for i := range src {
			switch mode {
			case 0:
				src[i] = byte(r.Intn(256))
			case 1:
				src[i] = byte(r.Intn(4))
			default:
				src[i] = byte(i % (1 + r.Intn(40)))
			}
		}
		roundTrip(t, src)
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	cases := []struct {
		name string
		dst  int
		src  []byte
	}{
		{"empty stream nonzero dst", 4, nil},
		{"truncated literals", 8, []byte{0x50, 'a', 'b'}},
		{"literal overrun dst", 2, []byte{0x50, 'a', 'b', 'c', 'd', 'e'}},
		{"match with zero offset", 8, []byte{0x40, 'a', 'b', 'c', 'd', 0, 0, 0x00}},
		{"offset before start", 8, []byte{0x11, 'a', 0xff, 0xff, 0x00}},
		{"match overruns dst", 5, []byte{0x4f, 'a', 'b', 'c', 'd', 1, 0, 200, 0x00}},
		{"terminal with match nibble", 4, []byte{0x41, 'a', 'b', 'c', 'd'}},
		{"short output", 16, []byte{0x20, 'a', 'b'}},
		{"truncated offset", 8, []byte{0x11, 'a', 0x01}},
		{"truncated extension", 8, []byte{0xf1}},
		{"extension overflow", 8, append([]byte{0xf0}, bytes.Repeat([]byte{255}, 1<<20)...)},
	}
	for _, tc := range cases {
		dst := make([]byte, tc.dst)
		if err := Decompress(dst, tc.src); err != ErrCorrupt {
			t.Errorf("%s: got %v, want ErrCorrupt", tc.name, err)
		}
	}
}

func TestCompressAllocFree(t *testing.T) {
	r := rng.New(3)
	src := make([]byte, 32<<10)
	for i := range src {
		src[i] = byte(r.Intn(8))
	}
	var a Appender
	comp := a.Compress(nil, src)
	dst := make([]byte, len(src))
	buf := comp[:0]
	allocs := testing.AllocsPerRun(100, func() {
		buf = a.Compress(buf[:0], src)
		if err := Decompress(dst, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state compress+decompress allocates: %.1f allocs/op", allocs)
	}
}

func BenchmarkCompress(b *testing.B) {
	r := rng.New(3)
	src := make([]byte, 256<<10)
	for i := range src {
		src[i] = byte(r.Intn(16))
	}
	var a Appender
	buf := a.Compress(nil, src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = a.Compress(buf[:0], src)
	}
}

func BenchmarkDecompress(b *testing.B) {
	r := rng.New(3)
	src := make([]byte, 256<<10)
	for i := range src {
		src[i] = byte(r.Intn(16))
	}
	var a Appender
	comp := a.Compress(nil, src)
	dst := make([]byte, len(src))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Decompress(dst, comp); err != nil {
			b.Fatal(err)
		}
	}
}
