package tsq

import (
	"sort"

	"netenergy/internal/trace"
)

// AppRow is one app's aggregate inside a window or a whole result.
// EnergyJ is radio energy attributed to the app by the accountant
// (idle floor excluded, matching the ingest headline's total_energy_j);
// Bytes is the app's wire bytes.
type AppRow struct {
	App     uint32  `json:"app"`
	Name    string  `json:"name,omitempty"`
	EnergyJ float64 `json:"energy_j"`
	Bytes   int64   `json:"bytes"`
}

// WindowRow is one epoch-aligned rollup window [StartUS, EndUS).
type WindowRow struct {
	StartUS int64    `json:"start_us"`
	EndUS   int64    `json:"end_us"`
	EnergyJ float64  `json:"energy_j"`
	Bytes   int64    `json:"bytes"`
	Apps    []AppRow `json:"apps,omitempty"`
}

// ScanStats mirrors trace.ScanStats with JSON tags: the pushdown
// counters are part of the result so callers (and tests) can assert
// that the seek index actually skipped blocks.
type ScanStats struct {
	Files          int   `json:"files"`
	BlocksTotal    int   `json:"blocks_total"`
	BlocksSkipped  int   `json:"blocks_skipped"`
	BlocksScanned  int   `json:"blocks_scanned"`
	RecordsScanned int64 `json:"records_scanned"`
	RecordsMatched int64 `json:"records_matched"`
}

func statsOf(s trace.ScanStats) ScanStats {
	return ScanStats{
		Files:          s.Files,
		BlocksTotal:    s.BlocksTotal,
		BlocksSkipped:  s.BlocksSkipped,
		BlocksScanned:  s.BlocksScanned,
		RecordsScanned: s.RecordsScanned,
		RecordsMatched: s.RecordsMatched,
	}
}

func (s *ScanStats) add(o ScanStats) {
	s.Files += o.Files
	s.BlocksTotal += o.BlocksTotal
	s.BlocksSkipped += o.BlocksSkipped
	s.BlocksScanned += o.BlocksScanned
	s.RecordsScanned += o.RecordsScanned
	s.RecordsMatched += o.RecordsMatched
}

// Result is one query's answer. Rows are sorted by energy descending
// (app ID ascending on ties) — deterministic for identical inputs.
type Result struct {
	// Node attributes the result to one cluster member (empty offline;
	// the aggregator stamps its merged document "fleet").
	Node string `json:"node_id,omitempty"`

	FromUS   int64 `json:"from_us"`
	ToUS     int64 `json:"to_us"`
	WindowUS int64 `json:"window_us,omitempty"`

	Devices      int     `json:"devices"`
	Records      int64   `json:"records"`
	TotalEnergyJ float64 `json:"total_energy_j"`
	TotalBytes   int64   `json:"total_bytes"`

	Apps    []AppRow    `json:"apps"`
	Windows []WindowRow `json:"windows,omitempty"`

	// Downsampled marks results that include retention rollups: those
	// contributions are window-granular, so a query bound cutting
	// through a rollup window includes the whole window.
	Downsampled bool `json:"downsampled,omitempty"`

	Scan ScanStats `json:"scan"`
}

// Merge folds other into r: app rows merge by ID, windows by start,
// counters add. Used by the aggregator to combine per-node results —
// window boundaries are epoch-aligned on every node, so rows line up
// without re-bucketing. Call Finalize afterwards to re-sort and apply
// top-N.
func (r *Result) Merge(other *Result) {
	if other.FromUS < r.FromUS {
		r.FromUS = other.FromUS
	}
	if other.ToUS > r.ToUS {
		r.ToUS = other.ToUS
	}
	if r.WindowUS == 0 {
		r.WindowUS = other.WindowUS
	}
	r.Devices += other.Devices
	r.Records += other.Records
	r.TotalEnergyJ += other.TotalEnergyJ
	r.TotalBytes += other.TotalBytes
	r.Apps = mergeAppRows(r.Apps, other.Apps)
	r.Windows = mergeWindows(r.Windows, other.Windows)
	r.Downsampled = r.Downsampled || other.Downsampled
	r.Scan.add(other.Scan)
}

// Finalize sorts every row list (energy desc, app asc) and truncates to
// topn (0 = keep all). Idempotent.
func (r *Result) Finalize(topn int) {
	r.Apps = sortTruncApps(r.Apps, topn)
	sort.Slice(r.Windows, func(i, j int) bool { return r.Windows[i].StartUS < r.Windows[j].StartUS })
	for i := range r.Windows {
		r.Windows[i].Apps = sortTruncApps(r.Windows[i].Apps, topn)
	}
}

func sortTruncApps(rows []AppRow, topn int) []AppRow {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].EnergyJ != rows[j].EnergyJ {
			return rows[i].EnergyJ > rows[j].EnergyJ
		}
		return rows[i].App < rows[j].App
	})
	if topn > 0 && len(rows) > topn {
		rows = rows[:topn]
	}
	return rows
}

func mergeAppRows(a, b []AppRow) []AppRow {
	if len(b) == 0 {
		return a
	}
	byID := make(map[uint32]int, len(a))
	for i := range a {
		byID[a[i].App] = i
	}
	for _, row := range b {
		if i, ok := byID[row.App]; ok {
			a[i].EnergyJ += row.EnergyJ
			a[i].Bytes += row.Bytes
			if a[i].Name == "" {
				a[i].Name = row.Name
			}
		} else {
			byID[row.App] = len(a)
			a = append(a, row)
		}
	}
	return a
}

func mergeWindows(a, b []WindowRow) []WindowRow {
	if len(b) == 0 {
		return a
	}
	byStart := make(map[int64]int, len(a))
	for i := range a {
		byStart[a[i].StartUS] = i
	}
	for _, w := range b {
		if i, ok := byStart[w.StartUS]; ok {
			a[i].EnergyJ += w.EnergyJ
			a[i].Bytes += w.Bytes
			a[i].Apps = mergeAppRows(a[i].Apps, w.Apps)
		} else {
			byStart[w.StartUS] = len(a)
			a = append(a, w)
		}
	}
	return a
}
