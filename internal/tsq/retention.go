package tsq

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"netenergy/internal/trace"
)

// Retention: sealed segments wholly older than a cutoff are folded into
// a downsampled rollup (per-window, per-app energy at a fixed width)
// stored as rollup.json beside the segments, then deleted. Queries over
// a retained range are answered from the rollup at window granularity —
// Result.Downsampled marks such answers. Unsealed segments (no footer
// index) are never retained: they are still being written.

// rollupName is the sidecar file QueryDir merges and ApplyRetention
// maintains. It is atomically replaced (tmp + rename), so a crashed
// retention pass leaves either the old or the new rollup, never a torn
// one — though it may leave an already-folded segment on disk, which is
// benign double-retention work, not data loss, because folding happens
// before deletion.
const rollupName = "rollup.json"

// rollupFile is the on-disk schema.
type rollupFile struct {
	Version  int         `json:"version"`
	WindowUS int64       `json:"window_us"`
	Devices  int         `json:"devices"`
	Records  int64       `json:"records"`
	Windows  []WindowRow `json:"windows"`
}

// RetentionReport summarises one ApplyRetention pass.
type RetentionReport struct {
	FilesRemoved  int   `json:"files_removed"`
	FilesKept     int   `json:"files_kept"`
	RecordsFolded int64 `json:"records_folded"`
}

// ApplyRetention folds every sealed segment in dir whose newest record
// is older than cutoff into the directory rollup at the given window
// width, then removes the segment. The width must match an existing
// rollup's (mixing widths would mis-bucket history).
func (e Engine) ApplyRetention(dir string, cutoff, window trace.Timestamp) (RetentionReport, error) {
	var rep RetentionReport
	if window <= 0 {
		return rep, fmt.Errorf("tsq: retention window must be positive")
	}
	roll, err := readRollup(dir)
	if err != nil {
		return rep, err
	}
	if roll == nil {
		roll = &rollupFile{Version: 1, WindowUS: int64(window)}
	} else if roll.WindowUS != int64(window) {
		return rep, fmt.Errorf("tsq: rollup window %dus does not match requested %dus",
			roll.WindowUS, int64(window))
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return rep, err
	}
	// Removable segments are folded per device, not per file: the radio
	// accountant is stateful across a device's stream, so a device split
	// over several segments must replay as one ordered stream — exactly
	// what QueryFiles does — or tail energy at each split boundary would
	// be mis-bucketed.
	byDevice := map[string][]string{}
	var devices []string
	for _, ent := range entries {
		if ent.IsDir() || ent.Name() == rollupName {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		last, sealed, err := segmentLast(path)
		if err != nil || !sealed || last >= cutoff {
			if err == nil {
				rep.FilesKept++
			}
			continue // unsealed, too new, or not a segment at all
		}
		device, _, err := peekHeader(path)
		if err != nil {
			return rep, err
		}
		if _, ok := byDevice[device]; !ok {
			devices = append(devices, device)
		}
		byDevice[device] = append(byDevice[device], path)
	}
	sort.Strings(devices)
	for _, device := range devices {
		paths := byDevice[device]
		// Fold the device's segments at window granularity. The
		// full-range query bound keeps every record; TopN 0 keeps every
		// app row.
		q := Query{From: math.MinInt64 / 2, To: math.MaxInt64 / 2, Window: window}
		res, err := e.QueryFiles(paths, q)
		if err != nil {
			return rep, fmt.Errorf("tsq: folding %s: %w", device, err)
		}
		roll.Windows = mergeWindows(roll.Windows, res.Windows)
		roll.Devices += res.Devices
		roll.Records += res.Records
		rep.RecordsFolded += res.Records

		// Persist the rollup before deleting the segments: a crash between
		// the two leaves double-countable segments, never lost ones — and
		// the next pass re-folding them is detectable by the count.
		if err := writeRollup(dir, roll); err != nil {
			return rep, err
		}
		for _, path := range paths {
			if err := os.Remove(path); err != nil {
				return rep, err
			}
			rep.FilesRemoved++
		}
	}
	if rep.FilesRemoved == 0 && roll.Records == 0 {
		return rep, nil // nothing folded, don't create an empty rollup
	}
	return rep, writeRollup(dir, roll)
}

// segmentLast returns the newest record timestamp of a sealed segment
// via its footer index, or sealed=false for unsealed/foreign files.
func segmentLast(path string) (last trace.Timestamp, sealed bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, false, err
	}
	_, _, blocks, ok, err := trace.ReadBlockIndex(f, st.Size())
	if err != nil || !ok || len(blocks) == 0 {
		return 0, false, err
	}
	return blocks[len(blocks)-1].Last, true, nil
}

func readRollup(dir string) (*rollupFile, error) {
	b, err := os.ReadFile(filepath.Join(dir, rollupName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var roll rollupFile
	if err := json.Unmarshal(b, &roll); err != nil {
		return nil, fmt.Errorf("tsq: corrupt %s: %w", rollupName, err)
	}
	if roll.WindowUS <= 0 {
		return nil, fmt.Errorf("tsq: corrupt %s: non-positive window", rollupName)
	}
	return &roll, nil
}

func writeRollup(dir string, roll *rollupFile) error {
	// Deterministic bytes: windows sorted by start, rows by energy.
	tmp := Result{Windows: roll.Windows}
	tmp.Finalize(0)
	roll.Windows = tmp.Windows
	b, err := json.MarshalIndent(roll, "", "  ")
	if err != nil {
		return err
	}
	tmpPath := filepath.Join(dir, rollupName+".tmp")
	if err := os.WriteFile(tmpPath, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmpPath, filepath.Join(dir, rollupName))
}

// mergeRollup folds the directory rollup's overlapping windows into a
// fresh query result. Contributions are window-granular: a query bound
// cutting through a rollup window includes the whole window, and the
// result is marked Downsampled.
func mergeRollup(res *Result, dir string, q Query) error {
	roll, err := readRollup(dir)
	if err != nil {
		return err
	}
	if roll == nil {
		return nil
	}
	filter := map[uint32]bool{}
	for _, a := range q.Apps {
		filter[a] = true
	}
	touched := false
	for _, w := range roll.Windows {
		if w.StartUS >= int64(q.To) || w.EndUS <= int64(q.From) {
			continue
		}
		rows := w.Apps
		if len(filter) > 0 {
			rows = nil
			for _, row := range w.Apps {
				if filter[row.App] {
					rows = append(rows, row)
				}
			}
		}
		var energy float64
		var bytes int64
		for _, row := range rows {
			energy += row.EnergyJ
			bytes += row.Bytes
		}
		if len(filter) == 0 {
			energy = w.EnergyJ // includes tail energy of unattributed rows, if any
			bytes = w.Bytes
		}
		touched = true
		res.TotalEnergyJ += energy
		res.TotalBytes += bytes
		res.Apps = mergeAppRows(res.Apps, append([]AppRow(nil), rows...))
		if q.Window > 0 && int64(q.Window) == roll.WindowUS {
			res.Windows = mergeWindows(res.Windows, []WindowRow{{
				StartUS: w.StartUS, EndUS: w.EndUS,
				EnergyJ: energy, Bytes: bytes,
				Apps: append([]AppRow(nil), rows...),
			}})
		}
	}
	if touched {
		res.Downsampled = true
	}
	return nil
}
