package tsq

import (
	"net/url"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"netenergy/internal/trace"
)

// fixedNow anchors every relative form in these tests: 2013-01-15T12:00:00Z.
var fixedNow = time.Date(2013, 1, 15, 12, 0, 0, 0, time.UTC)

func TestParseQueryForms(t *testing.T) {
	nowUS := trace.TimestampOf(fixedNow)
	hour := trace.Timestamp(time.Hour.Microseconds())
	cases := []struct {
		name string
		raw  string
		want Query
	}{
		{"empty-defaults", "",
			Query{From: nowUS - hour, To: nowUS}},
		{"unix-micros", "from=1000&to=2000",
			Query{From: 1000, To: 2000}},
		{"rfc3339", "from=2013-01-15T10:00:00Z&to=2013-01-15T11:00:00Z",
			Query{From: nowUS - 2*hour, To: nowUS - hour}},
		{"relative", "from=-30m&to=-15m",
			Query{From: nowUS - hour/2, To: nowUS - hour/4}},
		{"last", "last=2h",
			Query{From: nowUS - 2*hour, To: nowUS}},
		{"last-with-to", "last=1h&to=1000000000",
			Query{From: 1000000000 - hour, To: 1000000000}},
		{"window-hour", "from=0&to=7200000000&window=hour",
			Query{From: 0, To: 7200000000, Window: hour}},
		{"window-day", "from=0&to=86400000000&window=day",
			Query{From: 0, To: 86400000000, Window: 24 * hour}},
		{"window-duration", "from=0&to=1000000&window=5m",
			Query{From: 0, To: 1000000, Window: trace.Timestamp(5 * time.Minute.Microseconds())}},
		{"apps-comma", "from=0&to=10&app=3,1,2",
			Query{From: 0, To: 10, Apps: []uint32{1, 2, 3}}},
		{"apps-repeated-dedup", "from=0&to=10&app=5&app=2,5",
			Query{From: 0, To: 10, Apps: []uint32{2, 5}}},
		{"topn", "from=0&to=10&topn=7",
			Query{From: 0, To: 10, TopN: 7}},
		{"topn-zero", "from=0&to=10&topn=0",
			Query{From: 0, To: 10}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := mustParse(t, c.raw, fixedNow)
			if !reflect.DeepEqual(got, c.want) {
				t.Fatalf("ParseQuery(%q) = %+v, want %+v", c.raw, got, c.want)
			}
		})
	}
}

func TestParseQueryRejects(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"unknown-param", "frm=0&to=10"},
		{"empty-window-range", "from=10&to=10"},
		{"inverted-range", "from=20&to=10"},
		{"from-and-last", "from=0&last=1h"},
		{"negative-last", "last=-1h"},
		{"zero-last", "last=0s"},
		{"garbage-time", "from=yesterday&to=10"},
		{"window-too-small", "from=0&to=10&window=1us"},
		{"window-garbage", "from=0&to=10&window=big"},
		{"window-explosion", "from=0&to=400000000000&window=1ms"},
		{"app-garbage", "from=0&to=10&app=chrome"},
		{"app-negative", "from=0&to=10&app=-1"},
		{"app-overflow", "from=0&to=10&app=4294967296"},
		{"topn-garbage", "from=0&to=10&topn=all"},
		{"topn-negative", "from=0&to=10&topn=-1"},
		{"topn-huge", "from=0&to=10&topn=9999999"},
		{"duration-overflow", "last=999999h"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v, err := url.ParseQuery(c.raw)
			if err != nil {
				t.Fatal(err)
			}
			if q, err := ParseQuery(v, fixedNow); err == nil {
				t.Fatalf("ParseQuery(%q) accepted: %+v", c.raw, q)
			}
		})
	}
}

func TestParseQueryAppCap(t *testing.T) {
	v := url.Values{"from": {"0"}, "to": {"10"}}
	ids := make([]string, maxQueryApps+1)
	for i := range ids {
		ids[i] = strconv.Itoa(i)
	}
	v["app"] = []string{strings.Join(ids, ",")}
	if _, err := ParseQuery(v, fixedNow); err == nil {
		t.Fatalf("%d app predicates accepted", maxQueryApps+1)
	}
	// Exactly at the cap is fine.
	v["app"] = []string{strings.Join(ids[:maxQueryApps], ",")}
	if _, err := ParseQuery(v, fixedNow); err != nil {
		t.Fatalf("%d app predicates rejected: %v", maxQueryApps, err)
	}
}

// TestQueryValuesRoundTrip: the canonical wire form re-parses to the
// same query — the contract the aggregator fan-out relies on.
func TestQueryValuesRoundTrip(t *testing.T) {
	queries := []Query{
		{From: 1000, To: 2000},
		{From: 0, To: 86400000000, Window: 3600000000},
		{From: 5, To: 10, Apps: []uint32{1, 7, 42}, TopN: 3},
		{From: -500, To: 500, Window: 1000},
	}
	for _, q := range queries {
		for _, includeTopN := range []bool{true, false} {
			v := q.Values(includeTopN)
			got, err := ParseQuery(v, fixedNow)
			if err != nil {
				t.Fatalf("round-trip of %+v failed: %v", q, err)
			}
			want := q
			if !includeTopN {
				want.TopN = 0
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round-trip of %+v (topn=%v) = %+v", q, includeTopN, got)
			}
		}
	}
}

func TestQueryRangeBoundary(t *testing.T) {
	q := mustParse(t, "from=100&to=200", fixedNow)
	r := q.Range()
	if !r.Contains(100) {
		t.Fatal("from is inclusive")
	}
	if r.Contains(200) {
		t.Fatal("to is exclusive: a record exactly at to must not appear")
	}
	if !r.Contains(199) {
		t.Fatal("to-1 is in range")
	}
}
