package tsq

import (
	"net/url"
	"reflect"
	"testing"
	"time"
)

// FuzzQueryParse throws arbitrary query strings at ParseQuery. Accepted
// queries must satisfy the engine's invariants (non-empty half-open
// window, canonical sorted app list, bounded dimensions) and round-trip
// through the canonical wire form — the property the aggregator fan-out
// depends on.
func FuzzQueryParse(f *testing.F) {
	seeds := []string{
		"",
		"from=1000&to=2000",
		"from=2013-01-15T10:00:00Z&to=2013-01-15T11:00:00Z",
		"from=-30m&to=-15m",
		"last=2h",
		"from=0&to=7200000000&window=hour",
		"from=0&to=86400000000&window=day&topn=10",
		"from=0&to=10&app=3,1,2&app=7",
		"from=20&to=10",
		"frm=0&to=10",
		"window=1us&from=0&to=10",
		"last=999999h",
		"app=4294967296&from=0&to=10",
		"topn=-1&from=0&to=10",
		"from=9223372036854775807&to=1",
		"from=%zz",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	now := time.Date(2013, 1, 15, 12, 0, 0, 0, time.UTC)
	f.Fuzz(func(t *testing.T, raw string) {
		v, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		q, err := ParseQuery(v, now)
		if err != nil {
			return
		}
		// Invariants of every accepted query.
		if q.From >= q.To {
			t.Fatalf("accepted empty window [%d, %d)", q.From, q.To)
		}
		if q.Window < 0 {
			t.Fatalf("negative window %d", q.Window)
		}
		if q.Window > 0 {
			if int64(q.To-q.From)/int64(q.Window) > maxQueryWindows {
				t.Fatalf("window %d over span [%d, %d) exceeds the rollup cap", q.Window, q.From, q.To)
			}
		}
		if len(q.Apps) > maxQueryApps {
			t.Fatalf("%d app predicates exceed the cap", len(q.Apps))
		}
		for i := 1; i < len(q.Apps); i++ {
			if q.Apps[i] <= q.Apps[i-1] {
				t.Fatalf("app list not sorted+deduped: %v", q.Apps)
			}
		}
		if q.TopN < 0 || q.TopN > 1<<20 {
			t.Fatalf("topn %d out of bounds", q.TopN)
		}
		// Canonical form round-trips exactly.
		q2, err := ParseQuery(q.Values(true), now)
		if err != nil {
			t.Fatalf("canonical form of %+v rejected: %v", q, err)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Fatalf("canonical round-trip drifted: %+v -> %+v", q, q2)
		}
	})
}
