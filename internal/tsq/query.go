// Package tsq is the embedded time-series query engine over METR
// segment directories: block-pushdown scans driven by the containers'
// per-block firstTS/lastTS seek index, columnar app predicates, and
// windowed per-app energy rollups computed by the radio accountant
// (internal/analysis) over exactly the records inside the half-open
// query window [from, to).
//
// The package is deliberately deterministic: given the same segment
// bytes and the same Query, every code path — ingestd's GET /query,
// aggregatord's fleet fan-out, and the offline cmd/tsq CLI — produces
// byte-identical results. Anything wall-clock-shaped (resolving
// "last=1h") happens at the edges: ParseQuery takes the reference time
// as an argument.
package tsq

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"netenergy/internal/trace"
)

// Query is a parsed, validated query.
type Query struct {
	// From and To bound the half-open window [From, To): a record
	// exactly at To is out of range.
	From, To trace.Timestamp

	// Window is the rollup width in microseconds; 0 means a single
	// unwindowed aggregate. Windows are epoch-aligned (window k covers
	// [k*Window, (k+1)*Window)), so results merge across nodes without
	// re-bucketing.
	Window trace.Timestamp

	// Apps, when non-empty, restricts the scan to these app IDs
	// (device-global screen records always pass — they gate the
	// screen-on/off energy split).
	Apps []uint32

	// TopN, when > 0, truncates the per-app rows (globally and per
	// window) after sorting by energy. 0 keeps all rows.
	TopN int
}

// Parse limits: queries are parsed from untrusted HTTP input, so every
// dimension that sizes an allocation or a loop is capped.
const (
	maxQueryApps = 1024
	// maxQueryWindows bounds (To-From)/Window: a 1 µs window over a year
	// must not materialise 3e13 rollup rows.
	maxQueryWindows = 200_000
)

// defaultSpan is the window when from/to/last are all absent: the last
// hour before the reference time.
const defaultSpan = time.Hour

// ParseQuery parses and validates URL query parameters:
//
//	from, to  RFC3339, integer unix microseconds, or a signed duration
//	          relative to now ("-15m"); to defaults to now, from to
//	          to-1h
//	last      duration shorthand: from = to - last
//	window    rollup width: a duration ("5m", "1h") or "hour"/"day"
//	app       app IDs, comma-separated and/or repeated
//	topn      keep the top-N apps by energy (0 = all)
//
// now anchors the relative forms; callers pass time.Now() at the edge
// (or a fixed instant in tests) so the engine itself stays clock-free.
// Unknown parameters are rejected — a typo like "frm" must not silently
// widen a query to the default window.
func ParseQuery(v url.Values, now time.Time) (Query, error) {
	var q Query
	for key := range v {
		switch key {
		case "from", "to", "last", "window", "app", "topn":
		default:
			return q, fmt.Errorf("tsq: unknown query parameter %q", key)
		}
	}

	to, err := parseTime(v.Get("to"), now, now)
	if err != nil {
		return q, fmt.Errorf("tsq: to: %w", err)
	}
	q.To = to

	defFrom := to.Time().Add(-defaultSpan)
	if last := v.Get("last"); last != "" {
		if v.Get("from") != "" {
			return q, fmt.Errorf("tsq: from and last are mutually exclusive")
		}
		d, err := parseDuration(last)
		if err != nil {
			return q, fmt.Errorf("tsq: last: %w", err)
		}
		if d <= 0 {
			return q, fmt.Errorf("tsq: last must be positive, got %v", d)
		}
		defFrom = to.Time().Add(-d)
	}
	from, err := parseTime(v.Get("from"), now, defFrom)
	if err != nil {
		return q, fmt.Errorf("tsq: from: %w", err)
	}
	q.From = from

	if q.From >= q.To {
		return q, fmt.Errorf("tsq: empty window: from (%d) must precede to (%d)", q.From, q.To)
	}

	if w := v.Get("window"); w != "" {
		var d time.Duration
		switch w {
		case "hour":
			d = time.Hour
		case "day":
			d = 24 * time.Hour
		default:
			d, err = parseDuration(w)
			if err != nil {
				return q, fmt.Errorf("tsq: window: %w", err)
			}
		}
		if d < time.Millisecond {
			return q, fmt.Errorf("tsq: window must be at least 1ms, got %v", d)
		}
		q.Window = trace.Timestamp(d.Microseconds())
		if span := int64(q.To - q.From); span/int64(q.Window) > maxQueryWindows {
			return q, fmt.Errorf("tsq: window %v over span %dus exceeds %d rollup windows", d, span, maxQueryWindows)
		}
	}

	for _, raw := range v["app"] {
		for _, part := range strings.Split(raw, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			id, err := strconv.ParseUint(part, 10, 32)
			if err != nil {
				return q, fmt.Errorf("tsq: app: %q is not an app ID", part)
			}
			q.Apps = append(q.Apps, uint32(id))
		}
	}
	if len(q.Apps) > maxQueryApps {
		return q, fmt.Errorf("tsq: %d app predicates exceed the %d cap", len(q.Apps), maxQueryApps)
	}
	// Canonical form: sorted, deduplicated — Values() round-trips and
	// fan-out requests are byte-stable.
	sort.Slice(q.Apps, func(i, j int) bool { return q.Apps[i] < q.Apps[j] })
	q.Apps = dedupU32(q.Apps)

	if t := v.Get("topn"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n < 0 {
			return q, fmt.Errorf("tsq: topn: %q is not a non-negative integer", t)
		}
		if n > 1<<20 {
			return q, fmt.Errorf("tsq: topn %d exceeds the %d cap", n, 1<<20)
		}
		q.TopN = n
	}
	return q, nil
}

// parseTime parses one from/to value: empty falls back to def, an
// optionally-signed integer means unix microseconds, a signed duration
// ("-15m") is relative to now, anything else must be RFC3339.
func parseTime(s string, now, def time.Time) (trace.Timestamp, error) {
	if s == "" {
		return trace.TimestampOf(def), nil
	}
	digits := s
	if s[0] == '-' || s[0] == '+' {
		digits = s[1:]
	}
	if isDigits(digits) {
		us, err := strconv.ParseInt(strings.TrimPrefix(s, "+"), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("microsecond timestamp %q: %w", s, err)
		}
		return trace.Timestamp(us), nil
	}
	if s[0] == '-' || s[0] == '+' {
		d, err := parseDuration(s)
		if err != nil {
			return 0, err
		}
		return trace.TimestampOf(now.Add(d)), nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return 0, fmt.Errorf("%q is neither RFC3339, unix microseconds, nor a relative duration", s)
	}
	return trace.TimestampOf(t), nil
}

// parseDuration is time.ParseDuration with a range guard: ±100 years
// of microsecond timestamps stay far inside int64, so queries cannot
// overflow timestamp arithmetic.
func parseDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	const maxSpan = 100 * 365 * 24 * time.Hour
	if d > maxSpan || d < -maxSpan {
		return 0, fmt.Errorf("duration %v out of range", d)
	}
	return d, nil
}

func isDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

func dedupU32(s []uint32) []uint32 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Values renders q in the canonical wire form ParseQuery accepts —
// integer microsecond bounds, microsecond window — used by the
// aggregator fan-out and the CLI so every tier speaks one grammar.
// TopN is intentionally omittable: fan-out requests raw (untruncated)
// rows and applies TopN after merging.
func (q Query) Values(includeTopN bool) url.Values {
	v := url.Values{}
	v.Set("from", strconv.FormatInt(int64(q.From), 10))
	v.Set("to", strconv.FormatInt(int64(q.To), 10))
	if q.Window > 0 {
		v.Set("window", strconv.FormatInt(int64(q.Window), 10)+"us")
	}
	if len(q.Apps) > 0 {
		parts := make([]string, len(q.Apps))
		for i, a := range q.Apps {
			parts[i] = strconv.FormatUint(uint64(a), 10)
		}
		v.Set("app", strings.Join(parts, ","))
	}
	if includeTopN && q.TopN > 0 {
		v.Set("topn", strconv.Itoa(q.TopN))
	}
	return v
}

// Range returns the scan window as a trace.TimeRange.
func (q Query) Range() trace.TimeRange {
	return trace.TimeRange{From: q.From, To: q.To}
}
